// Benchmarks regenerating the paper's tables and figures (one bench per
// artifact) plus ablations over the heuristic's design choices and
// micro-benchmarks of the evaluation inner loop.
//
// Figure benches run the full experiment pipeline at the Tiny preset —
// real topologies and workloads with reduced search budgets — and report
// the headline metric (peak RL, etc.) via b.ReportMetric. Regenerate
// publication-scale results with: go run ./cmd/dtrexp -run all -preset small
package dualtopo_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"dualtopo"
	"dualtopo/internal/benchkit"
	"dualtopo/internal/spf"
)

// benchExperiment runs one registered experiment per iteration and reports
// the peak L-cost ratio (or first table row count) as a metric.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	preset := dualtopo.TinyPreset()
	var peakRL float64
	for i := 0; i < b.N; i++ {
		rep, err := dualtopo.RunExperiment(id, preset)
		if err != nil {
			b.Fatal(err)
		}
		peakRL = benchkit.PeakRL(rep)
	}
	if peakRL > 0 {
		b.ReportMetric(peakRL, "peakRL")
	}
}

// Fig. 2: cost ratios across topologies and cost functions.
func BenchmarkFig2RandomLoad(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig2PowerLoad(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig2ISPLoad(b *testing.B)    { benchExperiment(b, "fig2c") }
func BenchmarkFig2RandomSLA(b *testing.B)  { benchExperiment(b, "fig2d") }
func BenchmarkFig2PowerSLA(b *testing.B)   { benchExperiment(b, "fig2e") }
func BenchmarkFig2ISPSLA(b *testing.B)     { benchExperiment(b, "fig2f") }

// Fig. 1 / §3.3.1 joint-cost example.
func BenchmarkFig1Triangle(b *testing.B) { benchExperiment(b, "fig1") }

// Fig. 3: link-utilization histograms.
func BenchmarkFig3Histograms(b *testing.B) {
	for _, id := range []string{"fig3a", "fig3b", "fig3c"} {
		b.Run(id, func(b *testing.B) { benchExperiment(b, id) })
	}
}

// Fig. 4: high-priority volume fraction.
func BenchmarkFig4TrafficFraction(b *testing.B) { benchExperiment(b, "fig4") }

// Fig. 5: SD-pair density under both cost functions.
func BenchmarkFig5Density(b *testing.B) {
	for _, id := range []string{"fig5a", "fig5b"} {
		b.Run(id, func(b *testing.B) { benchExperiment(b, id) })
	}
}

// Fig. 6: sorted H-utilization under STR.
func BenchmarkFig6HUtilization(b *testing.B) { benchExperiment(b, "fig6") }

// Fig. 7: load vs propagation delay.
func BenchmarkFig7DelayLoad(b *testing.B) { benchExperiment(b, "fig7") }

// Fig. 8: sink traffic patterns.
func BenchmarkFig8SinkPattern(b *testing.B) {
	for _, id := range []string{"fig8a", "fig8b"} {
		b.Run(id, func(b *testing.B) { benchExperiment(b, id) })
	}
}

// Fig. 9: SLA-bound relaxation.
func BenchmarkFig9SLARelaxation(b *testing.B) { benchExperiment(b, "fig9") }

// Table 1: ε-relaxed STR vs DTR.
func BenchmarkTable1Relaxation(b *testing.B) { benchExperiment(b, "table1") }

// Extension: single-link-failure robustness.
func BenchmarkExtFailureRobustness(b *testing.B) { benchExperiment(b, "extfail") }

// BenchmarkScenarioEngine measures campaign throughput (trials/sec) of the
// bundled tiny campaign at 1, 4 and GOMAXPROCS engine workers, tracking how
// the worker pool scales what-if execution.
func BenchmarkScenarioEngine(b *testing.B) {
	spec, ok := dualtopo.ScenarioPreset("tiny")
	if !ok {
		b.Fatal("tiny preset missing")
	}
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		// Keep the work-list at least as wide as the pool, or the engine
		// clamps the worker count and the sub-benchmarks collapse into one
		// configuration.
		spec.Trials = (workers + len(spec.Loads) - 1) / len(spec.Loads)
		if spec.Trials < 2 {
			spec.Trials = 2
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			trials := 0
			for i := 0; i < b.N; i++ {
				res, err := dualtopo.RunScenario(spec, dualtopo.ScenarioOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				trials += len(res.Trials)
			}
			b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/sec")
		})
	}
}

// benchInstance builds the standard 30-node random instance.
func benchInstance(b *testing.B, kind dualtopo.ObjectiveKind) *dualtopo.Evaluator {
	b.Helper()
	ev, err := benchkit.EvalInstance(kind)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// Ablation: heavy-tail rank-selection exponent τ of Algorithm 2. τ=0 picks
// links uniformly; τ→∞ always attacks the extreme-cost links; the paper
// argues τ=1.5 balances the two.
func BenchmarkAblationTau(b *testing.B) {
	for _, tau := range []float64{0, 1.5, 5} {
		b.Run(tauName(tau), func(b *testing.B) {
			ev := benchInstance(b, dualtopo.LoadBased)
			var phiL float64
			for i := 0; i < b.N; i++ {
				p := dualtopo.DTRDefaults()
				p.N, p.K, p.M, p.Workers = 300, 200, 80, 1
				p.Tau = tau
				res, err := dualtopo.OptimizeDTR(ev, p)
				if err != nil {
					b.Fatal(err)
				}
				phiL = res.Result.PhiL
			}
			b.ReportMetric(phiL, "PhiL")
		})
	}
}

func tauName(tau float64) string {
	switch tau {
	case 0:
		return "tau=0(uniform)"
	case 1.5:
		return "tau=1.5(paper)"
	default:
		return "tau=5(greedy)"
	}
}

// Ablation: neighborhood size m of Algorithm 2 (paper: m=5).
func BenchmarkAblationNeighbors(b *testing.B) {
	for _, m := range []int{1, 5, 10} {
		b.Run(mName(m), func(b *testing.B) {
			ev := benchInstance(b, dualtopo.LoadBased)
			var phiL float64
			for i := 0; i < b.N; i++ {
				p := dualtopo.DTRDefaults()
				p.N, p.K, p.M, p.Workers = 300, 200, 80, 1
				p.Neighbors = m
				res, err := dualtopo.OptimizeDTR(ev, p)
				if err != nil {
					b.Fatal(err)
				}
				phiL = res.Result.PhiL
			}
			b.ReportMetric(phiL, "PhiL")
		})
	}
}

func mName(m int) string {
	switch m {
	case 1:
		return "m=1"
	case 5:
		return "m=5(paper)"
	default:
		return "m=10"
	}
}

// Ablation: Algorithm 1's third routine (joint refinement). K=0 disables it.
func BenchmarkAblationRefinement(b *testing.B) {
	for _, k := range []int{0, 400} {
		name := "with-refinement"
		if k == 0 {
			name = "no-refinement"
		}
		b.Run(name, func(b *testing.B) {
			ev := benchInstance(b, dualtopo.LoadBased)
			var phiL float64
			for i := 0; i < b.N; i++ {
				p := dualtopo.DTRDefaults()
				p.N, p.K, p.M, p.Workers = 300, k, 80, 1
				res, err := dualtopo.OptimizeDTR(ev, p)
				if err != nil {
					b.Fatal(err)
				}
				phiL = res.Result.PhiL
			}
			b.ReportMetric(phiL, "PhiL")
		})
	}
}

// Ablation: Eq. (3)'s ΦH,l/Cl approximation vs the exact M/M/1 delay term.
func BenchmarkAblationDelayModel(b *testing.B) {
	for _, exact := range []bool{false, true} {
		name := "phi-approx(paper)"
		if exact {
			name = "exact-mm1"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(7, 7))
			g, _ := dualtopo.RandomTopology(30, 75, dualtopo.DefaultCapacity, rng)
			dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
			tl := dualtopo.GravityMatrix(30, rng)
			th, _ := dualtopo.RandomHighPriorityMatrix(30, 0.1, 0.3, tl.Total(), rng)
			opts := dualtopo.Options{Kind: dualtopo.SLABased, SLA: dualtopo.DefaultSLA(), ExactDelay: exact}
			h, err := dualtopo.NewTopologyHandle(name, g, th, tl, opts, dualtopo.SessionPool{Size: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			sess, err := h.Session(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			defer h.Release(sess)   //nolint:errcheck // bench teardown
			sess.SetRouteWorkers(0) // sole lease: restore parallel routing
			ev := sess.Evaluator()
			var lambda float64
			for i := 0; i < b.N; i++ {
				p := dualtopo.DTRDefaults()
				p.N, p.K, p.M, p.Workers = 200, 100, 60, 1
				res, err := dualtopo.OptimizeDTR(ev, p)
				if err != nil {
					b.Fatal(err)
				}
				lambda = res.Result.Lambda
			}
			b.ReportMetric(lambda, "Lambda")
		})
	}
}

// Micro-benchmarks of the evaluation inner loop.

func BenchmarkEvaluateSTR(b *testing.B) {
	ev := benchInstance(b, dualtopo.LoadBased)
	w := dualtopo.UniformWeights(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateSTR(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateDTR(b *testing.B) {
	ev := benchInstance(b, dualtopo.LoadBased)
	w := dualtopo.UniformWeights(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateDTR(w, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectiveSTRFastPath(b *testing.B) {
	ev := benchInstance(b, dualtopo.LoadBased)
	w := dualtopo.UniformWeights(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ObjectiveSTR(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectiveSTRSLA(b *testing.B) {
	ev := benchInstance(b, dualtopo.SLABased)
	w := dualtopo.UniformWeights(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ObjectiveSTR(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPFTree pins the cost and allocation count of one CSR-based
// single-destination shortest-path computation (steady state: zero allocs),
// comparing the monotone bucket queue (new default) against the indexed
// 4-ary heap fallback (the old-style comparison-based core).
func BenchmarkSPFTree(b *testing.B) {
	for _, mode := range []string{"bucket", "heap"} {
		b.Run(mode, func(b *testing.B) {
			g, w, err := benchkit.SPFInstance()
			if err != nil {
				b.Fatal(err)
			}
			comp := dualtopo.NewSPFComputer(g)
			comp.SetForceHeap(mode == "heap")
			var tr dualtopo.SPFTree
			comp.Tree(0, w, &tr) // warm the tree's buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				comp.Tree(0, w, &tr)
			}
		})
	}
}

// BenchmarkDeltaVsFullRoute compares a full re-route of every destination
// against the incremental DeltaRouter for single-arc weight changes on the
// largest bundled topology — the paper's standard 30-node, 150-arc random
// instance with a gravity matrix activating every destination. The speedup
// sub-benchmark reports the full/delta ratio directly.
func BenchmarkDeltaVsFullRoute(b *testing.B) {
	build := func(b *testing.B) (*dualtopo.Graph, *dualtopo.TrafficMatrix, dualtopo.Weights) {
		b.Helper()
		g, tm, w, err := benchkit.RouteInstance()
		if err != nil {
			b.Fatal(err)
		}
		return g, tm, w
	}
	// Each iteration moves one arc's weight by ±1 — the FindH/FindL step
	// size — cycling through the arcs, and re-evaluates all per-arc loads.
	step := benchkit.Step
	// The full side carries a worker-count dimension: workers=1 is the
	// sequential baseline, higher counts shard destinations across the SPF
	// worker pool (bitwise-identical loads, wall-clock scaling with cores).
	fullWorkers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		fullWorkers = append(fullWorkers, n)
	}
	for _, workers := range fullWorkers {
		name := "full"
		if workers > 1 {
			name = fmt.Sprintf("full-workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			g, tm, w := build(b)
			base := w.Clone()
			plan := dualtopo.NewRoutingPlan(g, tm)
			plan.SetWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(w, base, i, g.NumEdges())
				if err := plan.Route(w, tm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("delta", func(b *testing.B) {
		g, tm, w := build(b)
		base := w.Clone()
		// The raw single-matrix router, below the session layer: this bench
		// isolates Apply itself, without a handle's paired-matrix state.
		dr := spf.NewDeltaRouter(g, tm)
		if err := dr.Route(w); err != nil {
			b.Fatal(err)
		}
		changed := make([]dualtopo.EdgeID, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			changed[0] = dualtopo.EdgeID(step(w, base, i, g.NumEdges()))
			if _, err := dr.Apply(w, changed); err != nil {
				b.Fatal(err)
			}
		}
	})
	// speedup interleaves both engines over the identical change sequence
	// and reports the wall-clock ratio as a metric.
	b.Run("speedup", func(b *testing.B) {
		g, tm, w := build(b)
		base := w.Clone()
		plan := dualtopo.NewRoutingPlan(g, tm)
		dr := spf.NewDeltaRouter(g, tm)
		if err := dr.Route(w); err != nil {
			b.Fatal(err)
		}
		changed := make([]dualtopo.EdgeID, 1)
		var tFull, tDelta time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			changed[0] = dualtopo.EdgeID(step(w, base, i, g.NumEdges()))
			t0 := time.Now()
			if err := plan.Route(w, tm); err != nil {
				b.Fatal(err)
			}
			t1 := time.Now()
			if _, err := dr.Apply(w, changed); err != nil {
				b.Fatal(err)
			}
			tFull += t1.Sub(t0)
			tDelta += time.Since(t1)
		}
		b.ReportMetric(float64(tFull)/float64(tDelta), "full/delta-x")
	})
}

// BenchmarkDTRSearch pins the Algorithm 1 search cost with incremental
// candidate evaluation (default) against forced full evaluation, allocation
// counts included.
func BenchmarkDTRSearch(b *testing.B) {
	for _, mode := range []string{"delta", "full"} {
		b.Run(mode, func(b *testing.B) {
			ev := benchInstance(b, dualtopo.LoadBased)
			p := dualtopo.DTRDefaults()
			p.N, p.K, p.M, p.Workers = 300, 200, 80, 1
			p.FullEval = mode == "full"
			var phiL float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dualtopo.OptimizeDTR(ev, p)
				if err != nil {
					b.Fatal(err)
				}
				phiL = res.Result.PhiL
			}
			b.ReportMetric(phiL, "PhiL")
		})
	}
}

// BenchmarkDTRSearchGuided pins the guided-search speedup on the 500-node
// hierarchical ISP instance (benchkit.SearchInstance): the "plain" series is
// the PR 6 search at the budget it needs on this instance (N=150, K=100,
// M=40); the "guided" series runs attribution-guided steps with the
// routing-invariance prune at roughly a third of that budget (N=40, K=30,
// M=12) and must land on an equal-or-better ΦL with ≥3× fewer delta
// evaluations and ≥3× less wall-clock. The hier family's dual-plane symmetry
// makes the uniform start already optimal here, so both series converge to
// the same ΦL — the series pins evaluation cost and that guidance loses no
// quality at a third of the budget; quality-improvement behaviour is pinned
// by the search package tests on asymmetric instances.
func BenchmarkDTRSearchGuided(b *testing.B) {
	ev, err := benchkit.SearchInstance(dualtopo.LoadBased)
	if err != nil {
		b.Fatal(err)
	}
	n := ev.Graph().NumEdges()
	for _, tc := range []struct {
		name    string
		n, k, m int
		guide   float64
		prune   bool
	}{
		{"plain", 150, 100, 40, 0, false},
		{"guided", 40, 30, 12, 0.9, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := dualtopo.DTRDefaults()
			p.N, p.K, p.M, p.Workers = tc.n, tc.k, tc.m, 1
			p.Seed = 11
			p.Guide = tc.guide
			p.Prune = tc.prune
			var phiL float64
			var deltas, pruned int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dualtopo.OptimizeDTRFrom(ev,
					dualtopo.UniformWeights(n), dualtopo.UniformWeights(n), p)
				if err != nil {
					b.Fatal(err)
				}
				phiL = res.Result.PhiL
				deltas = res.DeltaEvals
				pruned = res.Pruned
			}
			b.ReportMetric(phiL, "PhiL")
			b.ReportMetric(float64(deltas), "delta-evals")
			b.ReportMetric(float64(pruned), "pruned")
		})
	}
}

func BenchmarkRouteLoads(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	g, err := dualtopo.RandomTopology(30, 75, dualtopo.DefaultCapacity, rng)
	if err != nil {
		b.Fatal(err)
	}
	tm := dualtopo.GravityMatrix(30, rng)
	plan := dualtopo.NewRoutingPlan(g, tm)
	w := dualtopo.UniformWeights(g.NumEdges())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOSPFConvergence(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	g, err := dualtopo.RandomTopology(30, 75, dualtopo.DefaultCapacity, rng)
	if err != nil {
		b.Fatal(err)
	}
	w := dualtopo.UniformWeights(g.NumEdges())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dualtopo.BuildOSPFNetwork(g, w, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueueSimulation(b *testing.B) {
	cfg := dualtopo.QueueConfig{
		ArrivalH: 0.25, ArrivalL: 0.35, ServiceRate: 1,
		Discipline: dualtopo.PreemptiveResume, Packets: 50000, Warmup: 1000, Seed: 5,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := dualtopo.SimulateQueue(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
