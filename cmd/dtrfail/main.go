// Command dtrfail runs a failure sweep over one optimized instance: it
// builds the topology and traffic, optimizes STR and DTR weights, then
// evaluates every failure state of the chosen model (single/dual link, node,
// or SRLG) through the incremental sweep engine and reports the
// low-priority cost degradation of both schemes.
//
// Usage:
//
//	dtrfail -topology random -load 0.6 -kind link
//	dtrfail -topology isp -kind link -count 2 -sample 40 -budget small
//	dtrfail -kind link -count 2 -robust
//	dtrfail -kind srlg -srlgs "0,1,2;3,4"
//	dtrfail -mode verify        # assert delta == full on every state
//	dtrfail -mode full          # timing baseline: full re-evaluation
//
// Note on -kind node: a node failure strands every demand sourced at or
// destined to the failed node, and the bundled instances give every node
// gravity-model demand, so every node state disconnects and the sweep
// errors out. Node sweeps are meant for instances with demand-free transit
// nodes (see the resilience package tests).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dualtopo/internal/engine"
	"dualtopo/internal/eval"
	"dualtopo/internal/obs"
	"dualtopo/internal/render"
	"dualtopo/internal/resilience"
	"dualtopo/internal/scenario"
	"dualtopo/internal/search"
	"dualtopo/internal/stats"
	"dualtopo/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtrfail: ")

	topology := flag.String("topology", "random", "topology family: "+topo.FamilyList())
	nodes := flag.Int("nodes", 0, "synthetic topology nodes (0 = paper's 30)")
	links := flag.Int("links", 0, "synthetic topology links (0 = paper default)")
	load := flag.Float64("load", 0.6, "target average link utilization")
	objective := flag.String("objective", "load", "objective kind: load|sla")
	seed := flag.Uint64("seed", 1, "instance seed")
	budget := flag.String("budget", "tiny", "search budget tier: tiny|small|paper")
	kind := flag.String("kind", "link", "failure model: link|node|srlg")
	count := flag.Int("count", 1, "simultaneous link failures for -kind link (1 or 2)")
	srlgs := flag.String("srlgs", "", `SRLG groups as link indexes, e.g. "0,1,2;3,4"`)
	sample := flag.Int("sample", 0, "seeded uniform sample of states (0 = all)")
	fseed := flag.Uint64("fseed", 1, "failure sampling seed")
	robust := flag.Bool("robust", false, "make the DTR search failure-aware (scored on the same model)")
	mode := flag.String("mode", "delta", "sweep mode: delta|full|verify")
	routeWorkers := flag.Int("route-workers", 0, "SPF workers for full/verify evaluations: 0 = auto, 1 = sequential, n > 1 = fixed (results are identical)")
	guide := flag.Float64("guide", 0, "guided-step probability in [0,1] for the DTR search (0 = paper's blind sampling)")
	prune := flag.Bool("prune", false, "enable the routing-invariance candidate prune in the DTR search")
	var obsCLI obs.CLI
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()

	manifest := obs.NewManifest("dtrfail", os.Args[1:])
	manifest.SetSeed(*seed)
	if err := obsCLI.Start(manifest); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := obsCLI.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	kindName := map[string]eval.Kind{"load": eval.LoadBased, "sla": eval.SLABased}
	objKind, ok := kindName[*objective]
	if !ok {
		log.Fatalf("unknown objective %q (load|sla)", *objective)
	}
	b, err := scenario.BudgetByName(*budget)
	if err != nil {
		log.Fatal(err)
	}
	b.DTR.Guide = *guide
	b.DTR.Prune = *prune
	model := resilience.Model{
		Kind:   *kind,
		Count:  *count,
		SRLGs:  parseSRLGs(*srlgs),
		Sample: *sample,
		Seed:   *fseed,
	}
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	var opts resilience.Options
	switch *mode {
	case "delta":
	case "full":
		opts.FullEval = true
	case "verify":
		opts.Verify = true
	default:
		log.Fatalf("unknown mode %q (delta|full|verify)", *mode)
	}
	opts.RouteWorkers = *routeWorkers

	spec := scenario.InstanceSpec{
		Topology:   *topology,
		Nodes:      *nodes,
		Links:      *links,
		Kind:       objKind,
		TargetUtil: *load,
		Seed:       *seed,
	}
	if *robust {
		rm := model
		if rm.Sample == 0 {
			rm.Sample = scenario.RobustDefaultSample // bound the per-candidate sweep cost
		}
		spec.Robust = &rm
	}

	manifest.SpecHash = obs.SpecHash(struct {
		Spec  scenario.InstanceSpec
		Model resilience.Model
		Mode  string
	}{spec, model, *mode})
	if line, err := manifest.JSONLine(); err == nil {
		os.Stderr.Write(line) //nolint:errcheck
	}

	fmt.Fprintf(os.Stderr, "optimizing %s (budget %s)...\n", spec.Describe(), *budget)
	pt, err := scenario.RunPoint(spec, b)
	if err != nil {
		log.Fatal(err)
	}
	states, err := resilience.Enumerate(pt.Inst.G, model)
	if err != nil {
		log.Fatal(err)
	}
	// Lease the sweep's evaluator through the engine — the same entry point
	// the dtrd daemon serves what-ifs from — keeping batch and served sweeps
	// bitwise-identical. The custom Options (mode, route workers) still apply:
	// the sweeper is wired around the leased session's evaluator.
	h, err := engine.New("dtrfail", pt.Inst, engine.PoolConfig{Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(sess) //nolint:errcheck // process exits right after
	sw := resilience.NewSweeperFrom(sess.Evaluator(), opts)
	start := time.Now()
	fs, err := resilience.CompareSchemes(sw, pt.STR.W, pt.DTR.WH, pt.DTR.WL, states)
	if err != nil {
		if model.Kind == resilience.KindNode {
			log.Fatalf("%v\n(node failures strand every demand at the failed node; with gravity "+
				"demand on every node, node sweeps need instances with demand-free transit nodes)", err)
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	sum := fs.Summary(model.String())
	fmt.Printf("failure model %s: %d states (%d disconnecting) swept in %s (%s mode)\n",
		sum.Model, sum.Evaluated, sum.Disconnecting, elapsed.Round(time.Microsecond), *mode)
	row := func(name string, xs []float64, cs resilience.ClassSummary) []string {
		return []string{
			name,
			fmt.Sprintf("%.3f", cs.MeanDegr),
			fmt.Sprintf("%.3f", cs.P50Degr),
			fmt.Sprintf("%.3f", cs.P95Degr),
			fmt.Sprintf("%.3f", stats.Max(xs)),
			cs.WorstState,
		}
	}
	fmt.Println(render.Table(
		[]string{"scheme", "mean", "p50", "p95", "max", "worst state"},
		[][]string{
			row("STR", fs.STR, sum.STR),
			row("DTR", fs.DTR, sum.DTR),
		}))
	fmt.Printf("DTR keeps the lower absolute ΦL after %d/%d surviving failures\n",
		sum.DTRStillBetter, len(fs.STR))
	printRobust(pt.DTR.Robust)
}

func printRobust(rs *search.RobustScore) {
	if rs == nil {
		return
	}
	fmt.Printf("robust search: %d states scored per candidate; mean ΦL %.4g, worst ΦL %.4g (%s), composite %.4g\n",
		rs.States, rs.MeanPhiL, rs.WorstPhiL, rs.WorstState, rs.Composite)
}

// parseSRLGs decodes "0,1,2;3,4" into [][]int{{0,1,2},{3,4}}.
func parseSRLGs(s string) [][]int {
	if s == "" {
		return nil
	}
	var groups [][]int
	for _, part := range strings.Split(s, ";") {
		var grp []int
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			li, err := strconv.Atoi(tok)
			if err != nil {
				log.Fatalf("bad SRLG link index %q", tok)
			}
			grp = append(grp, li)
		}
		if len(grp) > 0 {
			groups = append(groups, grp)
		}
	}
	return groups
}
