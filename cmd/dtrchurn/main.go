// Command dtrchurn drives churn timelines — link flaps, node outages,
// weight reconfigurations — through optimized dual-topology routings and
// reports how the SLA degrades while the network is in flux.
//
// Usage:
//
//	dtrchurn generate -topology torus -link-mtbf 300 -o trace.jsonl
//	dtrchurn replay -link-mtbf 300 -weight-rate 0.05
//	dtrchurn replay -trace trace.jsonl -convergence -o records.jsonl
//	dtrchurn replay -counterfactual            # per-event what-if vs intact
//	dtrchurn replay -verify                    # assert delta == full per event
//	dtrchurn compare -link-mtbf 120            # instantaneous vs convergence
//
// generate writes a deterministic JSONL event trace for the instance's
// topology (a manifest-style header line, then one event per line); the
// same trace replays bit-identically on any machine.
//
// replay optimizes STR and DTR weights for the instance, then steps the
// timeline through the delta-routing replay engine, streaming one JSON
// record per event (prefixed by an observability manifest line) and
// closing with a {"churn_summary": ...} line holding the time-integrated
// SLA-violation and transient-loss masses. SIGINT/SIGTERM interrupts the
// replay cleanly: completed records are flushed, the summary line is
// marked partial, and the exit status is non-zero.
//
// compare replays the same timeline twice — instantaneous reconvergence
// vs OSPF-convergence emulation — and reports the transient traffic mass
// the instantaneous model misses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dualtopo/internal/churn"
	"dualtopo/internal/eval"
	"dualtopo/internal/obs"
	"dualtopo/internal/scenario"
	"dualtopo/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtrchurn: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "generate":
		os.Exit(cmdGenerate(os.Args[2:]))
	case "replay":
		os.Exit(cmdReplay(os.Args[2:]))
	case "compare":
		os.Exit(cmdCompare(os.Args[2:]))
	case "-h", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  dtrchurn generate [flags]   write a deterministic churn event trace (JSONL)
  dtrchurn replay   [flags]   optimize the instance and replay churn through it
  dtrchurn compare  [flags]   instantaneous vs OSPF-convergence replay

common flags (see -h of each subcommand):
  instance: -topology -nodes -links -load -objective -seed -budget
  churn:    -horizon -link-mtbf -link-mttr -node-mtbf -node-mttr
            -weight-rate -intensity -gen-seed | -trace file.jsonl
`)
}

// instanceConfig selects and optimizes the problem instance.
type instanceConfig struct {
	topology  string
	nodes     int
	links     int
	load      float64
	objective string
	seed      uint64
	budget    string
}

func (c *instanceConfig) register(fs *flag.FlagSet) {
	fs.StringVar(&c.topology, "topology", "torus", "topology family: "+topo.FamilyList())
	fs.IntVar(&c.nodes, "nodes", 0, "synthetic topology nodes (0 = family default)")
	fs.IntVar(&c.links, "links", 0, "synthetic topology links (0 = family default)")
	fs.Float64Var(&c.load, "load", 0.6, "target average link utilization")
	fs.StringVar(&c.objective, "objective", "sla", "objective kind: load|sla")
	fs.Uint64Var(&c.seed, "seed", 1, "instance seed")
	fs.StringVar(&c.budget, "budget", "tiny", "search budget tier: tiny|small|paper")
}

func (c *instanceConfig) spec() (scenario.InstanceSpec, error) {
	kind, ok := map[string]eval.Kind{"load": eval.LoadBased, "sla": eval.SLABased}[c.objective]
	if !ok {
		return scenario.InstanceSpec{}, fmt.Errorf("unknown objective %q (load|sla)", c.objective)
	}
	return scenario.InstanceSpec{
		Topology:   c.topology,
		Nodes:      c.nodes,
		Links:      c.links,
		Kind:       kind,
		TargetUtil: c.load,
		Seed:       c.seed,
	}, nil
}

// genConfig parameterizes the timeline generator.
type genConfig struct {
	horizon    float64
	linkMTBF   float64
	linkMTTR   float64
	nodeMTBF   float64
	nodeMTTR   float64
	weightRate float64
	intensity  float64
	genSeed    uint64
	trace      string
}

func (c *genConfig) register(fs *flag.FlagSet, withTrace bool) {
	fs.Float64Var(&c.horizon, "horizon", 600, "simulated duration in seconds")
	fs.Float64Var(&c.linkMTBF, "link-mtbf", 300, "mean link up-time between failures, seconds (0 = no link flaps)")
	fs.Float64Var(&c.linkMTTR, "link-mttr", 10, "mean link repair time, seconds")
	fs.Float64Var(&c.nodeMTBF, "node-mtbf", 0, "mean node up-time between outages, seconds (0 = no node churn)")
	fs.Float64Var(&c.nodeMTTR, "node-mttr", 60, "mean node repair time, seconds")
	fs.Float64Var(&c.weightRate, "weight-rate", 0, "operator weight-reset rate, events/second")
	fs.Float64Var(&c.intensity, "intensity", 1, "global churn multiplier (scales failure and reset rates)")
	fs.Uint64Var(&c.genSeed, "gen-seed", 1, "timeline generator seed")
	if withTrace {
		fs.StringVar(&c.trace, "trace", "", "replay this JSONL event trace instead of generating one")
	}
}

func (c *genConfig) genSpec() churn.GenSpec {
	return churn.GenSpec{
		Seed:       c.genSeed,
		Horizon:    c.horizon,
		LinkMTBF:   c.linkMTBF,
		LinkMTTR:   c.linkMTTR,
		NodeMTBF:   c.nodeMTBF,
		NodeMTTR:   c.nodeMTTR,
		WeightRate: c.weightRate,
		Intensity:  c.intensity,
	}
}

// timeline produces the events to replay on g: a read-and-validated trace
// file when -trace is set, a generated timeline otherwise.
func (c *genConfig) timeline(inst *scenario.Instance) (*churn.Timeline, error) {
	if c.trace != "" {
		f, err := os.Open(c.trace)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tl, err := churn.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		if err := tl.Validate(inst.G); err != nil {
			return nil, fmt.Errorf("%s: %w", c.trace, err)
		}
		return tl, nil
	}
	return churn.Generate(inst.G, c.genSpec())
}

func cmdGenerate(args []string) int {
	var inst instanceConfig
	var gen genConfig
	out := ""
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	inst.register(fs)
	gen.register(fs, false)
	fs.StringVar(&out, "o", "", "write the trace to this file instead of stdout")
	fs.Parse(args)

	spec, err := inst.spec()
	if err != nil {
		log.Fatal(err)
	}
	built, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	tl, err := churn.Generate(built.G, gen.genSpec())
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tl.WriteTrace(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d events over %gs on %s (%d nodes, %d arcs)\n",
		len(tl.Events), tl.Horizon, inst.topology, built.G.NumNodes(), built.G.NumEdges())
	return 0
}

// replayConfig bundles the replay-only knobs.
type replayConfig struct {
	counterfactual bool
	verify         bool
	convergence    bool
	floodHopMs     float64
	spfMs          float64
	routeWorkers   int
	out            string
	obs            obs.CLI
}

func (c *replayConfig) register(fs *flag.FlagSet) {
	fs.BoolVar(&c.counterfactual, "counterfactual", false, "score each event against the intact baseline (checkpoint/revert) instead of accumulating state")
	fs.BoolVar(&c.verify, "verify", false, "re-evaluate every event from scratch and fail on any bitwise disagreement with the delta path")
	fs.BoolVar(&c.convergence, "convergence", false, "emulate OSPF convergence: score stale-tree transients per event")
	fs.Float64Var(&c.floodHopMs, "flood-hop-ms", 0, "per-adjacency LSA propagation delay, ms (0 = default 2)")
	fs.Float64Var(&c.spfMs, "spf-ms", 0, "SPF recompute + FIB install time, ms (0 = default 50)")
	fs.IntVar(&c.routeWorkers, "route-workers", 0, "SPF workers for full/verify evaluations: 0 = auto (results are identical)")
	fs.StringVar(&c.out, "o", "", "write JSON-lines records to this file instead of stdout")
	c.obs.RegisterFlags(fs)
}

func (c *replayConfig) options() churn.Options {
	return churn.Options{
		Counterfactual: c.counterfactual,
		Verify:         c.verify,
		RouteWorkers:   c.routeWorkers,
		Convergence: churn.ConvergenceOptions{
			Enabled:    c.convergence,
			FloodHopMs: c.floodHopMs,
			SpfMs:      c.spfMs,
		},
	}
}

// optimize builds the instance and runs both weight searches.
func optimize(inst instanceConfig) (*scenario.Point, error) {
	spec, err := inst.spec()
	if err != nil {
		return nil, err
	}
	b, err := scenario.BudgetByName(inst.budget)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "optimizing %s (budget %s)...\n", spec.Describe(), inst.budget)
	return scenario.RunPoint(spec, b)
}

func cmdReplay(args []string) int {
	var inst instanceConfig
	var gen genConfig
	var rc replayConfig
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	inst.register(fs)
	gen.register(fs, true)
	rc.register(fs)
	fs.Parse(args)

	manifest := obs.NewManifest("dtrchurn replay", args)
	manifest.SetSeed(inst.seed)
	manifest.SpecHash = obs.SpecHash(struct {
		Inst instanceConfig
		Gen  genConfig
		Opts churn.Options
	}{inst, gen, rc.options()})
	if err := rc.obs.Start(manifest); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := rc.obs.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	pt, err := optimize(inst)
	if err != nil {
		log.Fatal(err)
	}
	tl, err := gen.timeline(pt.Inst)
	if err != nil {
		log.Fatal(err)
	}
	e, err := pt.Inst.Evaluator()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := churn.NewReplayer(e, pt.DTR.WH, pt.DTR.WL, rc.options())
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if rc.out != "" {
		f, err := os.Create(rc.out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if line, err := manifest.JSONLine(); err == nil {
		if _, err := out.Write(line); err != nil {
			log.Fatal(err)
		}
	}
	enc := json.NewEncoder(out)

	// SIGINT/SIGTERM flips the context: the step loop below flushes what
	// completed, marks the summary partial, and exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rec, err := rep.Start()
	if err != nil {
		log.Fatal(err)
	}
	if err := enc.Encode(rec); err != nil {
		log.Fatal(err)
	}
	interrupted := false
	for i := range tl.Events {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		rec, err := rep.Step(&tl.Events[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := enc.Encode(rec); err != nil {
			log.Fatal(err)
		}
	}
	horizon := tl.Horizon
	if interrupted {
		horizon = 0 // integrate only through the last replayed event
	}
	sum := rep.Finish(horizon)
	sum.Partial = interrupted
	if err := enc.Encode(map[string]churn.Summary{"churn_summary": sum}); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"replayed %d/%d events: %d disconnected, %d full routes, violation %.4g Mbps·s, transient %.4g Mbps·s, peak util %.3f\n",
		sum.Events, len(tl.Events), sum.Disconnects, sum.FullRoutes,
		sum.ViolationMbpsSec, sum.TransientMbpsSec, sum.PeakUtil)
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: summary is partial")
		return 1
	}
	return 0
}

func cmdCompare(args []string) int {
	var inst instanceConfig
	var gen genConfig
	var rc replayConfig
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	inst.register(fs)
	gen.register(fs, true)
	rc.register(fs)
	fs.Parse(args)
	if rc.counterfactual {
		log.Fatal("compare needs cumulative replays; drop -counterfactual")
	}

	manifest := obs.NewManifest("dtrchurn compare", args)
	manifest.SetSeed(inst.seed)
	if err := rc.obs.Start(manifest); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := rc.obs.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	pt, err := optimize(inst)
	if err != nil {
		log.Fatal(err)
	}
	tl, err := gen.timeline(pt.Inst)
	if err != nil {
		log.Fatal(err)
	}
	run := func(convergence bool) (*churn.Summary, error) {
		e, err := pt.Inst.Evaluator()
		if err != nil {
			return nil, err
		}
		opts := rc.options()
		opts.Convergence.Enabled = convergence
		rep, err := churn.NewReplayer(e, pt.DTR.WH, pt.DTR.WL, opts)
		if err != nil {
			return nil, err
		}
		return rep.Run(tl, nil)
	}
	instant, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := run(true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d events over %gs; %d disconnected\n", instant.Events, tl.Horizon, instant.Disconnects)
	fmt.Printf("%-16s %14s %14s\n", "", "instantaneous", "convergence")
	fmt.Printf("%-16s %14.4g %14.4g\n", "violation Mbps·s", instant.ViolationMbpsSec, conv.ViolationMbpsSec)
	fmt.Printf("%-16s %14.4g %14.4g\n", "transient Mbps·s", instant.TransientMbpsSec, conv.TransientMbpsSec)
	fmt.Printf("%-16s %14.4g %14.4g\n", "total Mbps·s", instant.TotalMbpsSec, conv.TotalMbpsSec)
	fmt.Printf("convergence adds %d micro-loops, %d blackholes; worst window %.1f ms\n",
		conv.MicroLoops, conv.Blackholes, conv.MaxWindowMs)
	if conv.ViolationMbpsSec != instant.ViolationMbpsSec {
		log.Fatalf("steady-state integrals diverged: %g vs %g (replay engine bug)",
			conv.ViolationMbpsSec, instant.ViolationMbpsSec)
	}
	if conv.TotalMbpsSec < instant.TotalMbpsSec {
		log.Fatalf("convergence total %g below instantaneous %g (replay engine bug)",
			conv.TotalMbpsSec, instant.TotalMbpsSec)
	}
	return 0
}
