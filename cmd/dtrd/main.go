// Command dtrd is the routing-as-a-service daemon: it keeps topologies and
// their routing state hot behind an HTTP+JSON API, so route evaluations,
// failure what-ifs and weight searches cost an evaluation instead of a
// process start.
//
// Usage:
//
//	dtrd -addr 127.0.0.1:8080
//	dtrd -addr 127.0.0.1:0 -pool 8 -lease-timeout 2s
//
// The API lives under /v1 (see internal/dtrd); the standard telemetry
// surface — /metrics, /metrics.json, /manifest.json, /debug/pprof/* — is
// served on the same listener. On SIGINT/SIGTERM the daemon drains: new API
// requests get 503, in-flight requests and search jobs finish (bounded by
// -drain-timeout), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualtopo/internal/dtrd"
	"dualtopo/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtrd: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		pool         = flag.Int("pool", 0, "default per-topology session pool size (0 = GOMAXPROCS)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "how long a request waits for a pooled session (0 = 5s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
	)
	flag.Parse()

	manifest := obs.NewManifest("dtrd", os.Args[1:])
	srv := dtrd.New(dtrd.Config{
		PoolSize:     *pool,
		LeaseTimeout: *leaseTimeout,
		Manifest:     manifest,
	})
	defer srv.Close()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	// The stderr announcement is the machine-readable handle scripts grep
	// for, matching the obs metrics server's convention.
	log.Printf("listening on http://%s", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(lis) }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (up to %s)", *drainTimeout)
	srv.Drain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.WaitIdle(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Print("stopped")
}
