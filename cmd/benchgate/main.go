// Command benchgate compares a freshly generated dtrbench report against
// the committed baseline and fails (exit 1) on performance regressions:
//
//   - any benchmark series present in the baseline but missing from the
//     current report;
//   - any allocs/op increase on a series the baseline holds at zero allocs
//     (allocation counts are deterministic, so this gate applies on every
//     machine);
//   - any ns/op regression beyond -max-regress (default 25%), checked only
//     when both reports ran at the same GOMAXPROCS — cross-shape timings
//     are not comparable, and the gate says so instead of guessing;
//   - any "-x"-suffixed ratio metric (e.g. par_speedup-x, higher is better)
//     shrinking below baseline*(1 - max-regress), under the same
//     same-GOMAXPROCS rule as timings;
//   - any par_speedup-x metric below the absolute -min-speedup floor
//     (default 1.5), enforced only when the current report ran on a
//     machine with >= 4 CPUs — this is the gate that proves parallel
//     routing actually pays off, independent of what the baseline machine
//     could do (a single-core box honestly reports ~1.0 and is skipped).
//
// Usage:
//
//	go run ./cmd/dtrbench -o bench_new.json
//	go run ./cmd/benchgate -baseline BENCH_PR10.json -current bench_new.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dualtopo/internal/benchrep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	baseline := flag.String("baseline", "BENCH_PR10.json", "committed baseline report")
	current := flag.String("current", "", "freshly generated report to gate")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated ns/op regression (0.25 = +25%)")
	minSpeedup := flag.Float64("min-speedup", 1.5, "absolute par_speedup-x floor, enforced only when the current report ran on >= 4 CPUs (0 disables)")
	flag.Parse()
	if *current == "" {
		log.Fatal("missing -current report")
	}

	base, err := benchrep.LoadFile(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := benchrep.LoadFile(*current)
	if err != nil {
		log.Fatal(err)
	}

	res := benchrep.Compare(base, cur, *maxRegress)
	if res.TimingSkipped {
		fmt.Printf("note: ns/op comparison skipped (baseline GOMAXPROCS=%d, current=%d); alloc gate still applies\n",
			base.GOMAXPROCS, cur.GOMAXPROCS)
	}
	if floorFindings, applied := benchrep.SpeedupFloor(cur, *minSpeedup); applied {
		res.Findings = append(res.Findings, floorFindings...)
	} else if *minSpeedup > 0 {
		fmt.Printf("note: par_speedup-x absolute floor skipped (report ran on %d CPUs, need >= %d)\n",
			cur.NumCPU, benchrep.SpeedupFloorMinCPU)
	}
	for _, f := range res.Findings {
		fmt.Printf("FAIL %s\n", f)
	}
	if !res.Pass() {
		os.Exit(1)
	}
	fmt.Printf("ok: %d baseline series gated against %s\n", len(base.Benchmarks), *current)
}
