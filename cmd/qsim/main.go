// Command qsim runs the two-priority queue simulator and compares measured
// sojourn times with the analytic models the paper's cost functions rely on
// (M/M/1 priority formulas and the residual-capacity approximation).
//
// Usage:
//
//	qsim -rho-h 0.3 -rho-l 0.4
//	qsim -rho-h 0.3 -rho-l 0.4 -discipline nonpreemptive -packets 1000000
package main

import (
	"flag"
	"fmt"
	"log"

	"dualtopo/internal/qsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qsim: ")
	var (
		rhoH       = flag.Float64("rho-h", 0.3, "high-priority utilization λH/μ")
		rhoL       = flag.Float64("rho-l", 0.4, "low-priority utilization λL/μ")
		discipline = flag.String("discipline", "preemptive", "preemptive|nonpreemptive")
		packets    = flag.Int("packets", 500000, "measured packets")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	d := qsim.PreemptiveResume
	if *discipline == "nonpreemptive" {
		d = qsim.NonPreemptive
	}
	cfg := qsim.Config{
		ArrivalH: *rhoH, ArrivalL: *rhoL, ServiceRate: 1,
		Discipline: d, Packets: *packets, Warmup: *packets / 20, Seed: *seed,
	}
	res, err := qsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var thH, thL float64
	if d == qsim.PreemptiveResume {
		thH, thL = qsim.TheoryPreemptive(*rhoH, *rhoL, 1)
	} else {
		thH, thL = qsim.TheoryNonPreemptive(*rhoH, *rhoL, 1)
	}
	resid := qsim.TheoryResidualCapacity(*rhoH, *rhoL, 1)

	fmt.Printf("discipline=%v  rhoH=%.2f rhoL=%.2f  (times normalized to 1/mu)\n\n", d, *rhoH, *rhoL)
	fmt.Printf("%-28s %10s %10s\n", "", "simulated", "theory")
	fmt.Printf("%-28s %10.3f %10.3f\n", "high-priority sojourn", res.H.MeanSojourn, thH)
	fmt.Printf("%-28s %10.3f %10.3f\n", "low-priority sojourn", res.L.MeanSojourn, thL)
	fmt.Printf("%-28s %10s %10.3f\n", "residual-capacity model", "-", resid)
	fmt.Printf("\nserver busy fraction: %.3f (offered load %.3f)\n", res.BusyFraction, *rhoH+*rhoL)
	fmt.Println("\nThe residual-capacity model (the paper's C̃ = C − H abstraction) is")
	fmt.Printf("optimistic for the low class by a factor 1/(1−ρH) = %.3f.\n", 1/(1-*rhoH))
}
