// Command topogen generates, describes and exports topologies from the
// generator registry: the paper's three families plus Waxman geometric
// graphs, ring/grid/torus lattices, two-tier hierarchical ISPs, and
// GML/adjacency-list imports of real networks. Output is the JSON graph
// format consumed by cmd/dtropt and campaign tooling.
//
// Usage:
//
//	topogen list                         # families, one per line
//	topogen describe waxman              # description + default params
//	topogen gen -topo waxman -o w.json
//	topogen gen -topo torus -params '{"rows":6,"cols":6}'
//	topogen gen -topo import -path zoo.gml -o zoo.json   # GML -> JSON export
//	topogen -topo random -nodes 30 -links 75 -o r.json   # legacy spelling of gen
//
// gen flags override fields of -params; unset parameters resolve to the
// family's registered defaults.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strings"

	"dualtopo/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "list":
			cmdList(args[1:])
			return
		case "describe":
			cmdDescribe(args[1:])
			return
		case "gen":
			cmdGen(args[1:])
			return
		case "-h", "--help", "help":
			usage()
			return
		}
	}
	// Legacy spelling: bare flags mean gen.
	cmdGen(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  topogen list [-q]            list registered topology families
  topogen describe <family>    show a family's description and default params
  topogen gen [flags]          generate a topology as JSON (also the default
                               subcommand: 'topogen -topo ...' works)

gen flags:
`)
	genFlags(nil).PrintDefaults()
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print family names only (one per line, for scripts)")
	fs.Parse(args)
	for _, name := range topo.Families() {
		if *quiet {
			fmt.Println(name)
			continue
		}
		gen, _ := topo.Lookup(name)
		fmt.Printf("%-10s %s\n", name, gen.Description)
	}
}

func cmdDescribe(args []string) {
	if len(args) != 1 {
		log.Fatalf("describe: want exactly one family name (%s)", topo.FamilyList())
	}
	gen, ok := topo.Lookup(args[0])
	if !ok {
		log.Fatalf("unknown family %q (%s)", args[0], topo.FamilyList())
	}
	out := struct {
		Name        string      `json:"name"`
		Description string      `json:"description"`
		Defaults    topo.Params `json:"defaults"`
	}{gen.Name, gen.Description, gen.Defaults}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// genConfig receives the gen flag values.
type genConfig struct {
	family     string
	paramsJSON string
	path       string
	nodes      int
	links      int
	capacity   float64
	minDelay   float64
	maxDelay   float64
	delayModel string
	seed       uint64
	out        string
	quiet      bool
}

func genFlags(cfg *genConfig) *flag.FlagSet {
	if cfg == nil {
		cfg = &genConfig{}
	}
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	fs.StringVar(&cfg.family, "topo", "random", "topology family: "+topo.FamilyList())
	fs.StringVar(&cfg.paramsJSON, "params", "", `family parameters as JSON, e.g. '{"alpha":0.4}' (@file reads a file)`)
	fs.StringVar(&cfg.path, "path", "", "import family: GML or adjacency-list file")
	fs.IntVar(&cfg.nodes, "nodes", 0, "node count (0 = family default)")
	fs.IntVar(&cfg.links, "links", 0, "bidirectional link budget, random/powerlaw only (0 = family default)")
	fs.Float64Var(&cfg.capacity, "capacity", 0, "per-arc capacity in Mbps (0 = family default)")
	fs.Float64Var(&cfg.minDelay, "min-delay", 0, "min propagation delay in ms (0 = family default)")
	fs.Float64Var(&cfg.maxDelay, "max-delay", 0, "max propagation delay in ms (0 = family default)")
	fs.StringVar(&cfg.delayModel, "delay-model", "", "delay model: uniform|distance|keep|none (empty = family default)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	fs.StringVar(&cfg.out, "o", "", "output file (default stdout)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress the summary line on stderr")
	return fs
}

func cmdGen(args []string) {
	var cfg genConfig
	fs := genFlags(&cfg)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("gen: unexpected argument %q", fs.Arg(0))
	}

	var p topo.Params
	if cfg.paramsJSON != "" {
		raw := cfg.paramsJSON
		if strings.HasPrefix(raw, "@") {
			data, err := os.ReadFile(raw[1:])
			if err != nil {
				log.Fatal(err)
			}
			raw = string(data)
		}
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			log.Fatalf("bad -params: %v", err)
		}
	}
	// Individual flags override -params fields.
	if cfg.path != "" {
		p.Path = cfg.path
	}
	if cfg.nodes != 0 {
		p.Nodes = cfg.nodes
	}
	if cfg.links != 0 {
		p.Links = cfg.links
	}
	if cfg.capacity != 0 {
		p.CapacityMbps = cfg.capacity
	}
	if cfg.minDelay != 0 {
		p.MinDelayMs = cfg.minDelay
	}
	if cfg.maxDelay != 0 {
		p.MaxDelayMs = cfg.maxDelay
	}
	if cfg.delayModel != "" {
		p.DelayModel = cfg.delayModel
	}

	rng := rand.New(rand.NewPCG(cfg.seed, 0x7090))
	g, err := topo.Generate(cfg.family, p, rng)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if cfg.out != "" {
		file, err := os.Create(cfg.out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := g.Write(w); err != nil {
		log.Fatal(err)
	}
	if !cfg.quiet {
		fmt.Fprintf(os.Stderr, "%s: %d nodes, %d arcs (%d links)\n",
			cfg.family, g.NumNodes(), g.NumEdges(), g.NumEdges()/2)
	}
}
