// Command topogen generates the paper's topologies as JSON files consumable
// by cmd/dtropt and downstream tools.
//
// Usage:
//
//	topogen -topo random -nodes 30 -links 75 -o random30.json
//	topogen -topo powerlaw -nodes 30 -links 81 -o power30.json
//	topogen -topo isp -o isp.json
package main

import (
	"flag"
	"log"
	"math/rand/v2"
	"os"

	"dualtopo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")
	var (
		topoName = flag.String("topo", "random", "topology: random|powerlaw|isp")
		nodes    = flag.Int("nodes", 30, "node count")
		links    = flag.Int("links", 75, "bidirectional link count")
		capacity = flag.Float64("capacity", dualtopo.DefaultCapacity, "per-arc capacity (Mbps)")
		minDelay = flag.Float64("min-delay", 1.2, "min propagation delay (ms, synthetic topologies)")
		maxDelay = flag.Float64("max-delay", 15, "max propagation delay (ms, synthetic topologies)")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewPCG(*seed, 0x7090))
	var g *dualtopo.Graph
	var err error
	switch *topoName {
	case "random":
		g, err = dualtopo.RandomTopology(*nodes, *links, *capacity, rng)
		if err == nil {
			dualtopo.AssignUniformDelays(g, *minDelay, *maxDelay, rng)
		}
	case "powerlaw":
		g, err = dualtopo.PowerLawTopology(*nodes, *links, *capacity, rng)
		if err == nil {
			dualtopo.AssignUniformDelays(g, *minDelay, *maxDelay, rng)
		}
	case "isp":
		g = dualtopo.ISPBackbone(*capacity)
	default:
		log.Fatalf("unknown topology %q (random|powerlaw|isp)", *topoName)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := g.Write(w); err != nil {
		log.Fatal(err)
	}
}
