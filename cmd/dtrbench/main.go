// Command dtrbench runs the canonical dualtopo benchmark set and emits a
// machine-readable JSON report (default BENCH_PR10.json) so the performance
// trajectory of the routing core is tracked across PRs: per-benchmark
// ns/op, bytes/op, allocs/op, and any extra metrics (full/delta speedup,
// parallel-route speedup, churn replay events/sec, steady-state and
// high-water heap per scale instance, experiment peakRL). CI runs it on
// every push and uploads the report as an artifact; compare reports across
// commits to spot regressions.
//
// Usage:
//
//	go run ./cmd/dtrbench [-o BENCH_PR10.json] [-benchtime 1s] [-quick]
//	go run ./cmd/dtrbench -zoo examples/campaigns/topologies
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dualtopo"
	"dualtopo/internal/benchkit"
	"dualtopo/internal/benchrep"
	"dualtopo/internal/churn"
	"dualtopo/internal/cost"
	"dualtopo/internal/engine"
	"dualtopo/internal/eval"
	"dualtopo/internal/obs"
	"dualtopo/internal/scenario"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// The report schema lives in internal/benchrep, shared with the
// cmd/benchgate regression gate.
type (
	Report = benchrep.Report
	Entry  = benchrep.Entry
)

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", "BENCH_PR10.json", "output report path ('-' for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target time per benchmark")
	quick := flag.Bool("quick", false, "skip the slow series (scale instances, search, experiment)")
	zoo := flag.String("zoo", "", "directory of Topology-Zoo GML exports: adds one route_zoo/<name> series per file")
	var obsCLI obs.CLI
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()

	manifest := obs.NewManifest("dtrbench", os.Args[1:])
	if err := obsCLI.Start(manifest); err != nil {
		fatal(err)
	}
	defer func() {
		if err := obsCLI.Stop(); err != nil {
			fatal(err)
		}
	}()

	// testing.Benchmark honors the -test.benchtime flag; set it explicitly so
	// the report's cost is predictable.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fatal(err)
	}

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	type namedBench struct {
		name string
		fn   func(*testing.B)
	}
	benches := []namedBench{
		{"spf_tree/bucket", benchSPFTree(false)},
		{"spf_tree/heap", benchSPFTree(true)},
		{"route_full/workers=1", benchRouteFull(1)},
		{"route_full/workers=2", benchRouteFull(2)},
		{"route_full/workers=4", benchRouteFull(4)},
		{"delta_apply", benchDeltaApply},
		{"delta_vs_full_speedup", benchDeltaVsFull},
		{"evaluate_dtr/workers=1", benchEvaluateDTR(1)},
		{"evaluate_dtr/workers=4", benchEvaluateDTR(4)},
		{"churn_replay/instant", benchChurnReplay(false)},
		{"churn_replay/convergence", benchChurnReplay(true)},
		{"dtrd_route/warm", benchDTRDRouteWarm},
	}
	if !*quick {
		benches = append(benches,
			namedBench{"dtr_search/plain", benchDTRSearch(150, 100, 40, 0, false)},
			namedBench{"dtr_search/guided", benchDTRSearch(40, 30, 12, 0.9, true)},
			namedBench{"experiment_fig2a_tiny", benchExperiment("fig2a")},
		)
		for _, spec := range benchkit.ScaleSpecs() {
			spec := spec
			benches = append(benches,
				namedBench{"spf_scale/" + spec.Name, benchSPFScale(spec)},
				namedBench{"route_scale/" + spec.Name + "/workers=1", benchRouteScale(spec, 1)},
			)
			// The parallel series and the sequential-vs-4-worker speedup
			// ratio stay on the 10k instances; at 100k one series keeps the
			// report's wall-clock budget honest.
			if spec.Nodes <= 10_000 {
				benches = append(benches,
					namedBench{"route_scale/" + spec.Name + "/workers=4", benchRouteScale(spec, 4)},
					namedBench{"route_scale/" + spec.Name + "/speedup", benchRouteScaleSpeedup(spec)},
				)
			}
		}
	}
	if *zoo != "" {
		files, err := benchkit.ZooFiles(*zoo)
		if err != nil {
			fatal(err)
		}
		for _, path := range files {
			path := path
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			benches = append(benches, namedBench{"route_zoo/" + name, benchRouteZoo(path)})
		}
	}

	for _, nb := range benches {
		fmt.Fprintf(os.Stderr, "running %-28s ", nb.name+"...")
		res := testing.Benchmark(nb.fn)
		e := Entry{
			Name:        nb.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if len(res.Extra) > 0 {
			e.Metrics = res.Extra
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op  %3d allocs/op\n", e.NsPerOp, e.AllocsPerOp)
	}

	rep.Manifest = manifest.Finish()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtrbench:", err)
	os.Exit(1)
}

// routeInstance builds the 30-node full-route instance used by the delta
// and worker-scaling benchmarks (every destination active).
func routeInstance(b *testing.B) (*dualtopo.Graph, *dualtopo.TrafficMatrix, dualtopo.Weights) {
	b.Helper()
	g, tm, w, err := benchkit.RouteInstance()
	if err != nil {
		b.Fatal(err)
	}
	return g, tm, w
}

func benchSPFTree(forceHeap bool) func(*testing.B) {
	return func(b *testing.B) {
		g, w, err := benchkit.SPFInstance()
		if err != nil {
			b.Fatal(err)
		}
		comp := dualtopo.NewSPFComputer(g)
		comp.SetForceHeap(forceHeap)
		var tr dualtopo.SPFTree
		comp.Tree(0, w, &tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp.Tree(0, w, &tr)
		}
	}
}

func benchRouteFull(workers int) func(*testing.B) {
	return func(b *testing.B) {
		g, tm, w := routeInstance(b)
		plan := dualtopo.NewRoutingPlan(g, tm)
		plan.SetWorkers(workers)
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Route(w, tm); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDeltaApply(b *testing.B) {
	g, tm, w := routeInstance(b)
	base := w.Clone()
	dr := spf.NewDeltaRouter(g, tm)
	if err := dr.Route(w); err != nil {
		b.Fatal(err)
	}
	changed := make([]dualtopo.EdgeID, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed[0] = dualtopo.EdgeID(benchkit.Step(w, base, i, g.NumEdges()))
		if _, err := dr.Apply(w, changed); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDeltaVsFull(b *testing.B) {
	g, tm, w := routeInstance(b)
	base := w.Clone()
	plan := dualtopo.NewRoutingPlan(g, tm)
	dr := spf.NewDeltaRouter(g, tm)
	if err := dr.Route(w); err != nil {
		b.Fatal(err)
	}
	changed := make([]dualtopo.EdgeID, 1)
	var tFull, tDelta time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed[0] = dualtopo.EdgeID(benchkit.Step(w, base, i, g.NumEdges()))
		t0 := time.Now()
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := dr.Apply(w, changed); err != nil {
			b.Fatal(err)
		}
		tFull += t1.Sub(t0)
		tDelta += time.Since(t1)
	}
	b.ReportMetric(float64(tFull)/float64(tDelta), "full/delta-x")
}

func benchEvaluateDTR(routeWorkers int) func(*testing.B) {
	return func(b *testing.B) {
		ev, err := benchkit.EvalInstance(dualtopo.LoadBased)
		if err != nil {
			b.Fatal(err)
		}
		ev.SetRouteWorkers(routeWorkers)
		w := dualtopo.UniformWeights(ev.Graph().NumEdges())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.EvaluateDTR(w, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchDTRDRouteWarm measures the dtrd daemon's warm per-request serving
// path: a pooled engine session scoring one-arc weight updates on the
// standard 30-node instance — exactly what a POST /v1/topologies/{id}/route
// costs once the topology is hot. requests_per_sec is the serving-throughput
// figure; the warm loop must stay at 0 allocs/op (the session's evaluator
// reuses its delta state across requests).
func benchDTRDRouteWarm(b *testing.B) {
	spec := scenario.InstanceSpec{
		Topology: "random", Nodes: 30, Links: 75, TargetUtil: 0.6, Seed: 7,
	}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	h, err := engine.New("dtrbench", inst, engine.PoolConfig{Size: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	defer h.Release(sess) //nolint:errcheck // bench teardown
	w := dualtopo.UniformWeights(inst.G.NumEdges())
	base := w.Clone()
	if _, err := sess.ScoreSTR(w); err != nil { // warm the session
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchkit.Step(w, base, i, inst.G.NumEdges())
		if _, err := sess.ScoreSTR(w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "requests_per_sec")
}

// benchChurnReplay replays a generated churn timeline — link flaps plus
// weight perturbations over a 150 s horizon on an 8x8 torus — through a
// warm Replayer, in instant-reroute or OSPF-convergence scoring mode. One
// op is the whole timeline (~170 events, kept short enough that the
// harness runs several iterations and per-run noise amortizes away);
// events_per_sec is the throughput figure and the warm loop must stay at
// 0 allocs/op (pooled delta routers, no per-event garbage) — benchgate
// holds both.
func benchChurnReplay(convergence bool) func(*testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewPCG(7, 99))
		g, err := topo.Generate("torus", topo.Params{Rows: 8, Cols: 8}, rng)
		if err != nil {
			b.Fatal(err)
		}
		tlLow := traffic.Gravity(g.NumNodes(), rng)
		th, err := traffic.RandomHighPriority(g.NumNodes(), 0.1, 0.1, tlLow.Total(), rng)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := eval.New(g, th, tlLow, eval.Options{Kind: eval.SLABased, SLA: cost.DefaultSLA()})
		if err != nil {
			b.Fatal(err)
		}
		wH := make(spf.Weights, g.NumEdges())
		wL := make(spf.Weights, g.NumEdges())
		for i := range wH {
			wH[i] = 1 + rng.IntN(20)
			wL[i] = 1 + rng.IntN(20)
		}
		tl, err := churn.Generate(g, churn.GenSpec{
			Seed: 7, Horizon: 150, LinkMTBF: 240, LinkMTTR: 4, WeightRate: 0.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var opts churn.Options
		opts.Convergence.Enabled = convergence
		rep, err := churn.NewReplayer(ev, wH, wL, opts)
		if err != nil {
			b.Fatal(err)
		}
		replay := func() {
			if _, err := rep.Start(); err != nil {
				b.Fatal(err)
			}
			for i := range tl.Events {
				if _, err := rep.Step(&tl.Events[i]); err != nil {
					b.Fatal(err)
				}
			}
			rep.Finish(tl.Horizon)
		}
		replay() // warm the pooled routers and scratch buffers
		// Collect the setup garbage now, then warm once more: a GC inside
		// the timed region would refill runtime pools and smear a handful
		// of allocations over the 0-alloc claim this series gates.
		runtime.GC()
		replay()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			replay()
		}
		b.StopTimer() // keep the metric bookkeeping out of the alloc count
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(len(tl.Events))*float64(b.N)/s, "events_per_sec")
		}
	}
}

// heapMB converts a HeapInuse delta to megabytes, clamping negative deltas
// (a GC shrinking the heap below the baseline) to zero.
func heapMB(after, before uint64) float64 {
	if after <= before {
		return 0
	}
	return float64(after-before) / (1 << 20)
}

// benchSPFScale times one single-destination SPF tree on a scale instance.
func benchSPFScale(spec benchkit.ScaleSpec) func(*testing.B) {
	return func(b *testing.B) {
		g, _, w, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		comp := dualtopo.NewSPFComputer(g)
		var tr dualtopo.SPFTree
		comp.Tree(0, w, &tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp.Tree(0, w, &tr)
		}
	}
}

// benchRouteScale times the warm full route of a scale instance and, on the
// sequential series, records the instance's heap footprint: heap_peak_mb is
// the HeapInuse high-water right after the cold build+route (before any GC),
// heap_mb the steady state after collection. Both are deltas against the
// benchmark's starting heap, so other series don't leak into the figure.
func benchRouteScale(spec benchkit.ScaleSpec, workers int) func(*testing.B) {
	return func(b *testing.B) {
		var msBase runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msBase)
		g, tm, w, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		plan := dualtopo.NewRoutingPlan(g, tm)
		plan.SetWorkers(workers)
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		var peakMB, steadyMB float64
		if workers == 1 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			peakMB = heapMB(ms.HeapInuse, msBase.HeapInuse)
			runtime.GC()
			runtime.ReadMemStats(&ms)
			steadyMB = heapMB(ms.HeapInuse, msBase.HeapInuse)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Route(w, tm); err != nil {
				b.Fatal(err)
			}
		}
		// Reported after the loop: ResetTimer clears any metrics set during
		// setup.
		if workers == 1 {
			b.ReportMetric(peakMB, "heap_peak_mb")
			b.ReportMetric(steadyMB, "heap_mb")
		}
	}
}

// benchRouteScaleSpeedup measures the same warm route sequentially and with
// 4 block-sharded workers in every iteration and reports the ratio as
// par_speedup-x — the higher-is-better metric the regression gate tracks
// (only across runs at the same GOMAXPROCS; on a single-core runner the
// ratio is honestly ~1.0).
func benchRouteScaleSpeedup(spec benchkit.ScaleSpec) func(*testing.B) {
	return func(b *testing.B) {
		g, tm, w, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		seq := dualtopo.NewRoutingPlan(g, tm)
		seq.SetWorkers(1)
		par := dualtopo.NewRoutingPlan(g, tm)
		par.SetWorkers(4)
		if err := seq.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		if err := par.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		var tSeq, tPar time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if err := seq.Route(w, tm); err != nil {
				b.Fatal(err)
			}
			t1 := time.Now()
			if err := par.Route(w, tm); err != nil {
				b.Fatal(err)
			}
			tSeq += t1.Sub(t0)
			tPar += time.Since(t1)
		}
		if tPar > 0 {
			b.ReportMetric(float64(tSeq)/float64(tPar), "par_speedup-x")
		}
	}
}

// benchRouteZoo times the warm full route of one imported Topology-Zoo
// graph under dense gravity demand.
func benchRouteZoo(path string) func(*testing.B) {
	return func(b *testing.B) {
		g, tm, w, err := benchkit.ZooInstance(path)
		if err != nil {
			b.Fatal(err)
		}
		plan := dualtopo.NewRoutingPlan(g, tm)
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Route(w, tm); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchDTRSearch mirrors the root suite's BenchmarkDTRSearchGuided series on
// the 500-node hierarchical instance: "plain" is the PR 6 search at the
// budget it needs there (N=150, K=100, M=40); "guided" runs
// attribution-guided steps with the routing-invariance prune at a third of
// that budget and must match ΦL with ≥3× fewer delta evaluations and ≥3×
// less wall-clock — the acceptance ratios benchgate tracks across PRs.
func benchDTRSearch(n, k, m int, guide float64, prune bool) func(*testing.B) {
	return func(b *testing.B) {
		ev, err := benchkit.SearchInstance(dualtopo.LoadBased)
		if err != nil {
			b.Fatal(err)
		}
		arcs := ev.Graph().NumEdges()
		p := dualtopo.DTRDefaults()
		p.N, p.K, p.M, p.Workers = n, k, m, 1
		p.Seed = 11
		p.Guide = guide
		p.Prune = prune
		var phiL float64
		var deltas, pruned int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := dualtopo.OptimizeDTRFrom(ev,
				dualtopo.UniformWeights(arcs), dualtopo.UniformWeights(arcs), p)
			if err != nil {
				b.Fatal(err)
			}
			phiL = res.Result.PhiL
			deltas = res.DeltaEvals
			pruned = res.Pruned
		}
		b.ReportMetric(phiL, "PhiL")
		b.ReportMetric(float64(deltas), "delta-evals")
		b.ReportMetric(float64(pruned), "pruned")
	}
}

// benchExperiment replays the root benchmark suite's figure runner at the
// tiny preset and reports peakRL, the headline reproduction metric.
func benchExperiment(id string) func(*testing.B) {
	return func(b *testing.B) {
		preset := dualtopo.TinyPreset()
		var peakRL float64
		for i := 0; i < b.N; i++ {
			rep, err := dualtopo.RunExperiment(id, preset)
			if err != nil {
				b.Fatal(err)
			}
			peakRL = benchkit.PeakRL(rep)
		}
		if peakRL > 0 {
			b.ReportMetric(peakRL, "peakRL")
		}
	}
}
