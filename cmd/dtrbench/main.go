// Command dtrbench runs the canonical dualtopo benchmark set and emits a
// machine-readable JSON report (default BENCH_PR7.json) so the performance
// trajectory of the routing core is tracked across PRs: per-benchmark
// ns/op, bytes/op, allocs/op, and any extra metrics (full/delta speedup,
// experiment peakRL). CI runs it on every push and uploads the report as an
// artifact; compare reports across commits to spot regressions.
//
// Usage:
//
//	go run ./cmd/dtrbench [-o BENCH_PR7.json] [-benchtime 1s] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dualtopo"
	"dualtopo/internal/benchkit"
	"dualtopo/internal/benchrep"
	"dualtopo/internal/obs"
)

// The report schema lives in internal/benchrep, shared with the
// cmd/benchgate regression gate.
type (
	Report = benchrep.Report
	Entry  = benchrep.Entry
)

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", "BENCH_PR7.json", "output report path ('-' for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target time per benchmark")
	quick := flag.Bool("quick", false, "skip the slow experiment benchmark")
	var obsCLI obs.CLI
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()

	manifest := obs.NewManifest("dtrbench", os.Args[1:])
	if err := obsCLI.Start(manifest); err != nil {
		fatal(err)
	}
	defer func() {
		if err := obsCLI.Stop(); err != nil {
			fatal(err)
		}
	}()

	// testing.Benchmark honors the -test.benchtime flag; set it explicitly so
	// the report's cost is predictable.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fatal(err)
	}

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	type namedBench struct {
		name string
		fn   func(*testing.B)
	}
	benches := []namedBench{
		{"spf_tree/bucket", benchSPFTree(false)},
		{"spf_tree/heap", benchSPFTree(true)},
		{"route_full/workers=1", benchRouteFull(1)},
		{"route_full/workers=2", benchRouteFull(2)},
		{"route_full/workers=4", benchRouteFull(4)},
		{"delta_apply", benchDeltaApply},
		{"delta_vs_full_speedup", benchDeltaVsFull},
		{"evaluate_dtr/workers=1", benchEvaluateDTR(1)},
		{"evaluate_dtr/workers=4", benchEvaluateDTR(4)},
	}
	if !*quick {
		benches = append(benches,
			namedBench{"dtr_search/plain", benchDTRSearch(150, 100, 40, 0, false)},
			namedBench{"dtr_search/guided", benchDTRSearch(40, 30, 12, 0.9, true)},
			namedBench{"experiment_fig2a_tiny", benchExperiment("fig2a")},
		)
	}

	for _, nb := range benches {
		fmt.Fprintf(os.Stderr, "running %-28s ", nb.name+"...")
		res := testing.Benchmark(nb.fn)
		e := Entry{
			Name:        nb.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if len(res.Extra) > 0 {
			e.Metrics = res.Extra
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op  %3d allocs/op\n", e.NsPerOp, e.AllocsPerOp)
	}

	rep.Manifest = manifest.Finish()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtrbench:", err)
	os.Exit(1)
}

// routeInstance builds the 30-node full-route instance used by the delta
// and worker-scaling benchmarks (every destination active).
func routeInstance(b *testing.B) (*dualtopo.Graph, *dualtopo.TrafficMatrix, dualtopo.Weights) {
	b.Helper()
	g, tm, w, err := benchkit.RouteInstance()
	if err != nil {
		b.Fatal(err)
	}
	return g, tm, w
}

func benchSPFTree(forceHeap bool) func(*testing.B) {
	return func(b *testing.B) {
		g, w, err := benchkit.SPFInstance()
		if err != nil {
			b.Fatal(err)
		}
		comp := dualtopo.NewSPFComputer(g)
		comp.SetForceHeap(forceHeap)
		var tr dualtopo.SPFTree
		comp.Tree(0, w, &tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp.Tree(0, w, &tr)
		}
	}
}

func benchRouteFull(workers int) func(*testing.B) {
	return func(b *testing.B) {
		g, tm, w := routeInstance(b)
		plan := dualtopo.NewRoutingPlan(g, tm)
		plan.SetWorkers(workers)
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Route(w, tm); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDeltaApply(b *testing.B) {
	g, tm, w := routeInstance(b)
	base := w.Clone()
	dr := dualtopo.NewDeltaRouter(g, tm)
	if err := dr.Route(w); err != nil {
		b.Fatal(err)
	}
	changed := make([]dualtopo.EdgeID, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed[0] = dualtopo.EdgeID(benchkit.Step(w, base, i, g.NumEdges()))
		if _, err := dr.Apply(w, changed); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDeltaVsFull(b *testing.B) {
	g, tm, w := routeInstance(b)
	base := w.Clone()
	plan := dualtopo.NewRoutingPlan(g, tm)
	dr := dualtopo.NewDeltaRouter(g, tm)
	if err := dr.Route(w); err != nil {
		b.Fatal(err)
	}
	changed := make([]dualtopo.EdgeID, 1)
	var tFull, tDelta time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed[0] = dualtopo.EdgeID(benchkit.Step(w, base, i, g.NumEdges()))
		t0 := time.Now()
		if err := plan.Route(w, tm); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := dr.Apply(w, changed); err != nil {
			b.Fatal(err)
		}
		tFull += t1.Sub(t0)
		tDelta += time.Since(t1)
	}
	b.ReportMetric(float64(tFull)/float64(tDelta), "full/delta-x")
}

func benchEvaluateDTR(routeWorkers int) func(*testing.B) {
	return func(b *testing.B) {
		ev, err := benchkit.EvalInstance(dualtopo.LoadBased)
		if err != nil {
			b.Fatal(err)
		}
		ev.SetRouteWorkers(routeWorkers)
		w := dualtopo.UniformWeights(ev.Graph().NumEdges())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.EvaluateDTR(w, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchDTRSearch mirrors the root suite's BenchmarkDTRSearchGuided series on
// the 500-node hierarchical instance: "plain" is the PR 6 search at the
// budget it needs there (N=150, K=100, M=40); "guided" runs
// attribution-guided steps with the routing-invariance prune at a third of
// that budget and must match ΦL with ≥3× fewer delta evaluations and ≥3×
// less wall-clock — the acceptance ratios benchgate tracks across PRs.
func benchDTRSearch(n, k, m int, guide float64, prune bool) func(*testing.B) {
	return func(b *testing.B) {
		ev, err := benchkit.SearchInstance(dualtopo.LoadBased)
		if err != nil {
			b.Fatal(err)
		}
		arcs := ev.Graph().NumEdges()
		p := dualtopo.DTRDefaults()
		p.N, p.K, p.M, p.Workers = n, k, m, 1
		p.Seed = 11
		p.Guide = guide
		p.Prune = prune
		var phiL float64
		var deltas, pruned int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := dualtopo.OptimizeDTRFrom(ev,
				dualtopo.UniformWeights(arcs), dualtopo.UniformWeights(arcs), p)
			if err != nil {
				b.Fatal(err)
			}
			phiL = res.Result.PhiL
			deltas = res.DeltaEvals
			pruned = res.Pruned
		}
		b.ReportMetric(phiL, "PhiL")
		b.ReportMetric(float64(deltas), "delta-evals")
		b.ReportMetric(float64(pruned), "pruned")
	}
}

// benchExperiment replays the root benchmark suite's figure runner at the
// tiny preset and reports peakRL, the headline reproduction metric.
func benchExperiment(id string) func(*testing.B) {
	return func(b *testing.B) {
		preset := dualtopo.TinyPreset()
		var peakRL float64
		for i := 0; i < b.N; i++ {
			rep, err := dualtopo.RunExperiment(id, preset)
			if err != nil {
				b.Fatal(err)
			}
			peakRL = benchkit.PeakRL(rep)
		}
		if peakRL > 0 {
			b.ReportMetric(peakRL, "peakRL")
		}
	}
}
