// Command dtropt computes optimized link weights for a topology and traffic
// demand: the STR baseline (one weight set) and the paper's DTR heuristic
// (two weight sets), printing per-class costs and the resulting weights.
//
// Usage:
//
//	dtropt -topo random -nodes 30 -links 75 -util 0.6 -kind load
//	dtropt -topo isp -kind sla -theta 25 -json weights.json
//
// With -graph FILE, a JSON topology (see cmd/topogen) replaces the generated
// one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"dualtopo"
	"dualtopo/internal/engine"
	"dualtopo/internal/eval"
	"dualtopo/internal/experiments"
	"dualtopo/internal/graph"
	"dualtopo/internal/obs"
	"dualtopo/internal/search"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtropt: ")
	var (
		topoName  = flag.String("topo", "random", "topology: "+topo.FamilyList())
		graphFile = flag.String("graph", "", "JSON topology file (overrides -topo)")
		nodes     = flag.Int("nodes", 0, "node count (0 = family default; structurally sized families derive it)")
		links     = flag.Int("links", 0, "bidirectional link count (0 = paper default)")
		kind      = flag.String("kind", "load", "objective: load|sla")
		theta     = flag.Float64("theta", 25, "SLA delay bound in ms")
		f         = flag.Float64("f", 0.30, "high-priority volume fraction")
		k         = flag.Float64("k", 0.10, "high-priority SD-pair density")
		hpModel   = flag.String("hp", "random", "high-priority traffic model: "+traffic.ModelList())
		sinks     = flag.Int("sinks", 0, "sink-model server count (0 = model default)")
		lpSinks   = flag.Int("lp-sinks", 0, "low-priority gravity sink count: 0 = dense n x n gravity; s > 0 = sink-limited gravity with s destinations (O(s*n) memory, required past a few thousand nodes)")
		util      = flag.Float64("util", 0.6, "target average link utilization")
		seed      = flag.Uint64("seed", 1, "random seed")
		budget    = flag.String("budget", "small", "search budget preset: smoke|tiny|small|paper")
		jsonOut   = flag.String("json", "", "write weights and costs as JSON to this file")
		traceOut  = flag.String("trace", "", "write the DTR search trajectory as JSONL to this file")
		multi     = flag.Int("multistart", 1, "portfolio size: run this many diverse seeded DTR trajectories and keep the best (1 = plain search)")
		guide     = flag.Float64("guide", 0, "guided-step probability in [0,1]: bias moves toward cost-attributed arcs (0 = paper's blind rank sampling)")
		prune     = flag.Bool("prune", false, "skip provably routing-invariant candidates before evaluation")
	)
	var obsCLI obs.CLI
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()

	manifest := obs.NewManifest("dtropt", os.Args[1:])
	manifest.SetSeed(*seed)
	if err := obsCLI.Start(manifest); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := obsCLI.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	preset, err := experiments.PresetByName(*budget)
	if err != nil {
		log.Fatal(err)
	}

	var inst *experiments.Instance
	if *graphFile != "" {
		inst, err = instanceFromFile(*graphFile, *kind, *hpModel, *theta, *f, *k, *util, *sinks, *lpSinks, *seed)
	} else {
		spec := experiments.InstanceSpec{
			Topology: *topoName, Nodes: *nodes, Links: *links,
			Kind: parseKind(*kind), ThetaMs: *theta,
			F: *f, K: *k, HPModel: *hpModel, Sinks: *sinks,
			LPSinks: *lpSinks, TargetUtil: *util, Seed: *seed,
		}
		inst, err = spec.Build()
	}
	if err != nil {
		log.Fatal(err)
	}
	// Construct the evaluator through the engine: same entry point the dtrd
	// daemon serves from, so batch and served results stay bitwise-identical.
	h, err := engine.New("dtropt", inst, engine.PoolConfig{Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(sess)   //nolint:errcheck // process exits right after
	sess.SetRouteWorkers(0) // sole lease: restore the parallel batch default
	ev := sess.Evaluator()
	manifest.SpecHash = obs.SpecHash(struct {
		Topo, Graph, Kind, Budget string
		Nodes, Links              int
		Theta, F, K, Util         float64
		Seed                      uint64
	}{*topoName, *graphFile, *kind, *budget, *nodes, *links, *theta, *f, *k, *util, *seed})

	strParams := preset.STR
	strParams.Seed = *seed
	str, err := search.STR(ev, strParams)
	if err != nil {
		log.Fatal(err)
	}
	dtrParams := preset.DTR
	dtrParams.Seed = *seed + 1
	dtrParams.Guide = *guide
	dtrParams.Prune = *prune
	var tw *search.TraceWriter
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tw = search.NewTraceWriter(tf)
		defer func() {
			if err := tw.Err(); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	var dtr *search.DTRResult
	var pf *search.PortfolioResult
	if *multi > 1 {
		strategies := search.DefaultPortfolio(*multi)
		// Explicit -guide/-prune override every trajectory; otherwise each
		// strategy keeps its own guidance mix (strategy 0 stays faithful).
		for i := range strategies {
			if *guide > 0 {
				strategies[i].Guide = *guide
			}
			if *prune {
				strategies[i].Prune = true
			}
		}
		pp := search.PortfolioParams{Base: dtrParams, Strategies: strategies}
		if tw != nil {
			pp.OnEvent = tw.OnEvent // TraceWriter serializes internally
		}
		pf, err = search.Portfolio(ev, str.W, str.W, pp)
		if err != nil {
			log.Fatal(err)
		}
		dtr = pf.Best
	} else {
		if tw != nil {
			dtrParams.OnEvent = tw.OnEvent
		}
		dtr, err = search.DTRFrom(ev, str.W, str.W, dtrParams)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("instance: %d nodes, %d arcs, objective=%s, target util=%.2f\n",
		inst.G.NumNodes(), inst.G.NumEdges(), *kind, *util)
	fmt.Printf("%-6s  PhiH=%-12.4g PhiL=%-12.4g Lambda=%-10.4g violations=%d\n",
		"STR", str.Result.PhiH, str.Result.PhiL, str.Result.Lambda, str.Result.Violations)
	fmt.Printf("%-6s  PhiH=%-12.4g PhiL=%-12.4g Lambda=%-10.4g violations=%d\n",
		"DTR", dtr.Result.PhiH, dtr.Result.PhiL, dtr.Result.Lambda, dtr.Result.Violations)
	rl := str.Result.PhiL / dtr.Result.PhiL
	fmt.Printf("L-cost ratio RL = %.2f (DTR evaluations: %d, STR evaluations: %d)\n",
		rl, dtr.Evaluations, str.Evaluations)
	if dtr.Pruned > 0 {
		fmt.Printf("bound-pruned candidates: %d (%.0f%% of generated)\n",
			dtr.Pruned, 100*float64(dtr.Pruned)/float64(dtr.Pruned+dtr.Evaluations))
	}
	var trajectories []trajectorySummary
	if pf != nil {
		fmt.Printf("portfolio: %d trajectories, best is %d (%s)\n",
			len(pf.Trajectories), pf.BestIndex, pf.Trajectories[pf.BestIndex].Strategy.Name)
		for i, tr := range pf.Trajectories {
			marker := " "
			if i == pf.BestIndex {
				marker = "*"
			}
			fmt.Printf(" %s traj %d %-16s start=%-7s guide=%.2f PhiH=%-12.4g PhiL=%-12.4g evals=%d pruned=%d\n",
				marker, i, tr.Strategy.Name, tr.Strategy.Start, tr.Strategy.Guide,
				tr.Result.Result.PhiH, tr.Result.Result.PhiL, tr.Result.Evaluations, tr.Result.Pruned)
			trajectories = append(trajectories, trajectorySummary{
				Name: tr.Strategy.Name, Start: tr.Strategy.Start.String(),
				Guide: tr.Strategy.Guide, Prune: tr.Strategy.Prune,
				PhiH: tr.Result.Result.PhiH, PhiL: tr.Result.Result.PhiL,
				Evaluations: tr.Result.Evaluations, Pruned: tr.Result.Pruned,
				Best: i == pf.BestIndex,
			})
		}
	}

	if *jsonOut != "" {
		out := struct {
			Manifest   *obs.Manifest       `json:"manifest"`
			STRWeights spf.Weights         `json:"str_weights"`
			WH         spf.Weights         `json:"dtr_high_weights"`
			WL         spf.Weights         `json:"dtr_low_weights"`
			STRPhiH    float64             `json:"str_phi_h"`
			STRPhiL    float64             `json:"str_phi_l"`
			DTRPhiH    float64             `json:"dtr_phi_h"`
			DTRPhiL    float64             `json:"dtr_phi_l"`
			Portfolio  []trajectorySummary `json:"portfolio,omitempty"`
		}{manifest.Finish(), str.W, dtr.WH, dtr.WL, str.Result.PhiH, str.Result.PhiL, dtr.Result.PhiH, dtr.Result.PhiL, trajectories}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weights written to %s\n", *jsonOut)
	}
}

// trajectorySummary is the per-trajectory portfolio record in -json output.
type trajectorySummary struct {
	Name        string  `json:"name"`
	Start       string  `json:"start"`
	Guide       float64 `json:"guide"`
	Prune       bool    `json:"prune"`
	PhiH        float64 `json:"phi_h"`
	PhiL        float64 `json:"phi_l"`
	Evaluations int64   `json:"evaluations"`
	Pruned      int64   `json:"pruned"`
	Best        bool    `json:"best"`
}

func parseKind(s string) eval.Kind {
	if s == "sla" {
		return eval.SLABased
	}
	return eval.LoadBased
}

// instanceFromFile loads a JSON topology and synthesizes traffic for it with
// the same models the generated instances use.
func instanceFromFile(path, kind, hpModel string, theta, f, k, util float64, sinks, lpSinks int, seed uint64) (*experiments.Instance, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	g, err := graph.Read(file)
	if err != nil {
		return nil, err
	}
	if err := g.RequireStronglyConnected(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xf11e))
	var tl *traffic.Matrix
	if lpSinks > 0 {
		tl = traffic.GravitySinks(g.NumNodes(), lpSinks, rng)
	} else {
		tl = traffic.Gravity(g.NumNodes(), rng)
	}
	hp := traffic.Params{}.WithShorthand(f, k, sinks)
	th, err := traffic.GenerateHighPriority(hpModel, g, tl.Total(), hp, rng)
	if err != nil {
		return nil, err
	}
	// Scale to the target utilization under unit-weight routing.
	loads, err := spf.Loads(g, spf.Uniform(g.NumEdges()), tl)
	if err != nil {
		return nil, err
	}
	hLoads, err := spf.Loads(g, spf.Uniform(g.NumEdges()), th)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for i := range loads {
		sum += (loads[i] + hLoads[i]) / g.Edge(graph.EdgeID(i)).Capacity
	}
	avg := sum / float64(g.NumEdges())
	th.Scale(util / avg)
	tl.Scale(util / avg)

	opts := eval.Options{Kind: parseKind(kind), SLA: dualtopo.DefaultSLA()}
	opts.SLA.ThetaMs = theta
	return &experiments.Instance{G: g, TH: th, TL: tl, Opts: opts}, nil
}
