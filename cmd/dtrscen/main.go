// Command dtrscen runs declarative what-if campaigns over dual-topology
// routing through the scenario engine.
//
// Usage:
//
//	dtrscen list
//	dtrscen validate spec.json [spec2.json ...]
//	dtrscen run -preset tiny
//	dtrscen run -preset random-load -budget small -workers 8
//	dtrscen run -o results.jsonl my-campaign.json
//
// run streams one JSON line per completed trial (in deterministic work-list
// order) to stdout or -o, reports progress on stderr, and finishes with a
// per-load-point mean/p50/p95 summary table. Re-running the same spec with
// the same seed yields identical trial records and aggregates regardless of
// -workers.
//
// Campaign specs can attach a failure model ({"failures": {"kind": "link",
// "count": 2, "sample": 20, "robust": true}}; kinds link|node|srlg): each
// trial's final weights are swept over the model's states through the
// incremental sweep engine, and "robust" additionally makes the DTR search
// failure-aware. See cmd/dtrfail for one-off sweeps outside a campaign.
// A "churn" spec ({"churn": {"link_mtbf_s": 300, "convergence": true}})
// additionally replays a generated churn timeline against each trial's DTR
// weights (see cmd/dtrchurn for one-off replays).
//
// SIGINT/SIGTERM interrupts a campaign cleanly: no new trials start,
// in-flight trials finish and their records flush, the summary table is
// printed from the completed subset (marked INTERRUPTED), and the exit
// status is non-zero.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualtopo/internal/obs"
	"dualtopo/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtrscen: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "validate":
		cmdValidate(os.Args[2:])
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "-h", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dtrscen list                         list bundled campaign presets
  dtrscen validate <spec.json>...      check spec files and print their shape
  dtrscen run [flags] [<spec.json>...] execute campaigns

run flags:
`)
	runFlags(nil).PrintDefaults()
}

// runFlags builds the run flag set; cfg receives parsed values when non-nil.
type runConfig struct {
	preset       string
	budget       string
	workers      int
	routeWorkers int
	guide        float64
	prune        bool
	trials       int
	seed         int64
	out          string
	quiet        bool
	progress     bool
	obs          obs.CLI
}

func runFlags(cfg *runConfig) *flag.FlagSet {
	if cfg == nil {
		cfg = &runConfig{}
	}
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	fs.StringVar(&cfg.preset, "preset", "", "bundled preset name (see 'dtrscen list')")
	fs.StringVar(&cfg.budget, "budget", "", "override search budget tier: tiny|small|paper")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent trials (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.routeWorkers, "route-workers", 0, "SPF workers inside each trial's full evaluations: 0 = auto from instance size and GOMAXPROCS (sequential while several trials run at once), 1 = sequential, n > 1 = fixed pool (results are identical either way)")
	fs.Float64Var(&cfg.guide, "guide", 0, "guided-step probability in [0,1] for every trial's DTR search (0 = paper's blind sampling)")
	fs.BoolVar(&cfg.prune, "prune", false, "enable the routing-invariance candidate prune in every trial's DTR search")
	fs.IntVar(&cfg.trials, "trials", 0, "override trials per load point")
	fs.Int64Var(&cfg.seed, "seed", -1, "override campaign seed (-1 = keep spec's)")
	fs.StringVar(&cfg.out, "o", "", "write JSON-lines trial records to this file instead of stdout")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress progress reporting")
	fs.BoolVar(&cfg.progress, "progress", false, "report done/total, trials/sec and ETA on stderr after every trial")
	cfg.obs.RegisterFlags(fs)
	return fs
}

func cmdList() {
	for _, s := range scenario.Presets() {
		n := s.Normalize()
		fmt.Printf("%-24s %2d loads x %d trials  %s\n", s.Name, len(n.Loads), n.Trials, s.Description)
	}
}

func cmdValidate(paths []string) {
	if len(paths) == 0 {
		log.Fatal("validate: no spec files given")
	}
	failed := false
	for _, path := range paths {
		spec, err := scenario.LoadFile(path)
		if err == nil {
			err = spec.Validate()
		}
		if err != nil {
			failed = true
			fmt.Printf("%s: INVALID: %v\n", path, err)
			continue
		}
		n := spec.Normalize()
		items := n.WorkList()
		fmt.Printf("%s: ok: campaign %q, %d loads x %d trials = %d work items (budget %s)\n",
			path, n.Name, len(n.Loads), n.Trials, len(items), n.Budget.Tier)
	}
	if failed {
		os.Exit(1)
	}
}

func cmdRun(args []string) int {
	var cfg runConfig
	fs := runFlags(&cfg)
	fs.Parse(args)

	manifest := obs.NewManifest("dtrscen run", args)
	if err := cfg.obs.Start(manifest); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cfg.obs.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	// SIGINT/SIGTERM cancels the campaign: in-flight trials finish, their
	// records flush, the partial aggregates print, and the exit is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var specs []scenario.Spec
	if cfg.preset != "" {
		spec, ok := scenario.PresetByName(cfg.preset)
		if !ok {
			log.Fatalf("unknown preset %q; run 'dtrscen list'", cfg.preset)
		}
		specs = append(specs, spec)
	}
	for _, path := range fs.Args() {
		spec, err := scenario.LoadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		log.Fatal("run: nothing to run; pass -preset and/or spec files")
	}

	out := os.Stdout
	summaryOut := os.Stderr
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
		summaryOut = os.Stdout
	}
	enc := json.NewEncoder(out)

	for _, spec := range specs {
		if cfg.budget != "" {
			spec.Budget.Tier = cfg.budget
		}
		if cfg.trials > 0 {
			spec.Trials = cfg.trials
		}
		if cfg.seed >= 0 {
			spec.Seed = uint64(cfg.seed)
		}
		if err := spec.Validate(); err != nil {
			log.Fatal(err)
		}

		// Prepend this campaign's manifest line to the trial stream: the
		// normalized spec's fingerprint and seed pin what produced the records
		// that follow.
		norm := spec.Normalize()
		manifest.SpecHash = obs.SpecHash(norm)
		manifest.SetSeed(norm.Seed)
		line, err := manifest.JSONLine()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := out.Write(line); err != nil {
			log.Fatal(err)
		}

		opts := scenario.Options{
			Context:      ctx,
			Workers:      cfg.workers,
			RouteWorkers: cfg.routeWorkers,
			Guide:        cfg.guide,
			Prune:        cfg.prune,
			OnTrial: func(tr scenario.TrialResult) {
				if err := enc.Encode(tr); err != nil {
					log.Fatal(err)
				}
			},
		}
		switch {
		case cfg.progress:
			// One line per completed trial: throughput and a remaining-work
			// estimate from the mean trial rate so far.
			opts.OnProgress = func(p scenario.Progress) {
				rate := 0.0
				if s := p.Elapsed.Seconds(); s > 0 {
					rate = float64(p.Done) / s
				}
				eta := "?"
				if rate > 0 {
					left := time.Duration(float64(p.Total-p.Done) / rate * float64(time.Second))
					eta = left.Round(time.Second).String()
				}
				fmt.Fprintf(os.Stderr, "%s: %d/%d trials, %.2f trials/s, ETA %s\n",
					norm.Name, p.Done, p.Total, rate, eta)
			}
		case !cfg.quiet:
			opts.OnProgress = func(p scenario.Progress) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials (%s)   ",
					norm.Name, p.Done, p.Total, p.Elapsed.Round(time.Millisecond))
			}
		}
		res, err := scenario.Run(spec, opts)
		interrupted := errors.Is(err, scenario.ErrInterrupted)
		if err != nil && !interrupted {
			log.Fatal(err)
		}
		if !cfg.quiet && !cfg.progress {
			fmt.Fprintln(os.Stderr)
		}
		status := ""
		if interrupted {
			status = " [INTERRUPTED: partial aggregates]"
		}
		fmt.Fprintf(summaryOut, "== campaign %s: %d trials in %.0f ms (trial latency p50 %.0f ms, p95 %.0f ms)%s ==\n%s\n",
			res.Spec.Name, len(res.Trials), res.ElapsedMs,
			res.TrialLatency.P50, res.TrialLatency.P95, status, res.SummaryTable())
		if interrupted {
			return 1
		}
	}
	return 0
}
