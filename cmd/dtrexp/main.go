// Command dtrexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dtrexp -list
//	dtrexp -run fig2a -preset small
//	dtrexp -run all -preset tiny -o results/
//
// Each experiment prints a text report (series tables and/or tables); with
// -o, reports are additionally written one file per experiment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dualtopo/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtrexp: ")
	var (
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		run    = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		preset = flag.String("preset", "small", "search budget preset: tiny|small|paper")
		outDir = flag.String("o", "", "directory to write per-experiment report files")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			r, _ := experiments.Lookup(id)
			fmt.Printf("%-8s %s\n", id, r.Title)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := experiments.PresetByName(*preset)
	if err != nil {
		log.Fatal(err)
	}
	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = experiments.IDs()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := experiments.Run(id, p)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		out := rep.String()
		fmt.Println(out)
		fmt.Printf("(%s finished in %s under preset %q)\n\n", id, time.Since(start).Round(time.Millisecond), p.Name)
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				log.Fatalf("%s: write %s: %v", id, path, err)
			}
		}
	}
}
