// Command ospfsim demonstrates the multi-topology OSPF control plane: it
// optimizes DTR weights for a topology, floods them as per-topology metrics,
// verifies convergence, and traces per-class forwarding paths for sample
// flows.
//
// Usage:
//
//	ospfsim                      # ISP backbone demo
//	ospfsim -topo random -nodes 20 -links 50 -flows 5
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"dualtopo"
	"dualtopo/internal/experiments"
	"dualtopo/internal/search"
	"dualtopo/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ospfsim: ")
	var (
		topoName = flag.String("topo", "isp", "topology: "+topo.FamilyList())
		nodes    = flag.Int("nodes", 0, "node count (0 = family default; structurally sized families derive it)")
		links    = flag.Int("links", 0, "bidirectional links (0 = paper default)")
		flows    = flag.Int("flows", 3, "sample flows to trace")
		seed     = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()

	spec := experiments.InstanceSpec{
		Topology: *topoName, Nodes: *nodes, Links: *links,
		TargetUtil: 0.6, Seed: *seed,
	}
	inst, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	ev, err := inst.Evaluator()
	if err != nil {
		log.Fatal(err)
	}
	params := search.Defaults()
	params.N, params.K, params.M = 800, 500, 150
	params.Seed = *seed
	dtr, err := search.DTR(ev, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized DTR weights: PhiH=%.4g PhiL=%.4g (%d evaluations)\n",
		dtr.Result.PhiH, dtr.Result.PhiL, dtr.Evaluations)

	net, err := dualtopo.BuildOSPFNetwork(inst.G, dtr.WH, dtr.WL)
	if err != nil {
		log.Fatal(err)
	}
	if !net.Converged() {
		log.Fatal("network failed to converge")
	}
	fmt.Printf("control plane converged: %d routers, full LSDBs, 2 topologies\n\n", inst.G.NumNodes())

	rng := rand.New(rand.NewPCG(*seed, 2))
	for i := 0; i < *flows; i++ {
		src := dualtopo.NodeID(rng.IntN(inst.G.NumNodes()))
		dst := dualtopo.NodeID(rng.IntN(inst.G.NumNodes()))
		if src == dst {
			continue
		}
		fmt.Printf("flow %s -> %s:\n", inst.G.Name(src), inst.G.Name(dst))
		for _, class := range []dualtopo.TopologyID{dualtopo.TopoHigh, dualtopo.TopoLow} {
			path, err := net.Forward(dualtopo.Packet{Src: src, Dst: dst, Class: class, FlowHash: uint32(i)})
			if err != nil {
				log.Fatal(err)
			}
			delay, err := net.PathDelay(path)
			if err != nil {
				log.Fatal(err)
			}
			label := "high"
			if class == dualtopo.TopoLow {
				label = "low "
			}
			fmt.Printf("  %s: %v (%.1f ms)\n", label, names(inst.G, path), delay)
		}
	}
}

func names(g *dualtopo.Graph, path []dualtopo.NodeID) []string {
	out := make([]string, len(path))
	for i, u := range path {
		out[i] = g.Name(u)
	}
	return out
}
