// Package dualtopo is a library for studying and deploying service
// differentiation through routing in IP networks, reproducing
// "Improving Service Differentiation in IP Networks through Dual Topology
// Routing" (Kwong, Guérin, Shaikh, Tao — ACM CoNEXT 2007).
//
// The core idea: with multi-topology OSPF (RFC 4915) a network can route its
// high- and low-priority traffic classes on two different sets of link
// weights (dual-topology routing, DTR) instead of one (single-topology
// routing, STR). Under strict priority queueing, the high-priority class is
// unaffected by the low-priority class, so a second topology lets the
// low-priority traffic escape links the high-priority traffic has loaded —
// at no cost to the high-priority class.
//
// The library provides:
//
//   - topology generators (random, power-law, a 16-node ISP backbone) and
//     traffic-matrix models (gravity, random high-priority, sink) from the
//     paper's evaluation (§5.1);
//   - the OSPF forwarding model: per-destination ECMP shortest-path DAGs,
//     load aggregation, expected end-to-end delays;
//   - both objective families (§3): the load-based Fortz–Thorup cost with
//     residual capacities, and the SLA penalty cost with per-pair delay
//     bounds;
//   - the paper's search heuristics (§4): the three-routine DTR search
//     (Algorithm 1, FindH/FindL of Algorithm 2) and the Fortz–Thorup
//     single-weight-change STR baseline with ε-relaxation records;
//   - an MT-OSPF control-plane simulation (LSA flooding, per-topology FIBs,
//     classified forwarding) to deploy and verify computed weights;
//   - a discrete-event priority-queue simulator validating the analytic
//     delay models;
//   - runners regenerating every table and figure of the paper (§5);
//   - a session/handle engine and the dtrd daemon serving routing queries
//     over HTTP+JSON (route, what-if, weight search) from pooled sessions.
//
// # Quick start
//
// The engine API is the front door: load (or wrap) a problem instance once
// into a TopologyHandle, lease a RoutingSession per unit of work, and hand
// its evaluator to the search and analysis routines.
//
//	rng := rand.New(rand.NewPCG(1, 1))
//	g, _ := dualtopo.RandomTopology(30, 75, 500, rng)
//	dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
//	tl := dualtopo.GravityMatrix(30, rng)
//	th, _ := dualtopo.RandomHighPriorityMatrix(30, 0.1, 0.3, tl.Total(), rng)
//	h, _ := dualtopo.NewTopologyHandle("quickstart", g, th, tl, dualtopo.DefaultOptions(), dualtopo.SessionPool{})
//	sess, _ := h.Session(context.Background())
//	defer h.Release(sess)
//	str, _ := dualtopo.OptimizeSTR(sess.Evaluator(), dualtopo.STRDefaults())
//	dtr, _ := dualtopo.OptimizeDTR(sess.Evaluator(), dualtopo.DTRDefaults())
//	fmt.Println(str.Result.PhiL / dtr.Result.PhiL) // the paper's RL
//
// One handle serves any number of concurrent sessions; results are bitwise
// independent of pooling and lease order. cmd/dtrd exposes the same engine
// over HTTP for long-lived serving.
//
// See examples/ for complete programs and EXPERIMENTS.md for measured
// reproductions of the paper's results.
package dualtopo

import (
	"math/rand/v2"

	"dualtopo/internal/cost"
	"dualtopo/internal/engine"
	"dualtopo/internal/eval"
	"dualtopo/internal/experiments"
	"dualtopo/internal/graph"
	"dualtopo/internal/ospf"
	"dualtopo/internal/qsim"
	"dualtopo/internal/resilience"
	"dualtopo/internal/scenario"
	"dualtopo/internal/search"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// Engine: the session/handle serving core. A TopologyHandle owns one
// immutable problem instance (graph, matrices, objective options) and a
// bounded pool of RoutingSessions; each session owns private routing state
// — an evaluator clone, an incremental router with checkpoint/revert, a
// failure sweeper — leased per unit of work and returned with Release.
type (
	// TopologyHandle is the immutable, concurrency-safe half of a loaded
	// topology plus its session pool.
	TopologyHandle = engine.Handle
	// RoutingSession is one leased unit of mutable routing state.
	RoutingSession = engine.Session
	// SessionPool sizes a handle's session pool (Size, LeaseTimeout).
	SessionPool = engine.PoolConfig
	// EngineSpec describes an instance to load through the topology and
	// traffic registries.
	EngineSpec = engine.Spec
	// InstanceSpec is the declarative problem-instance description shared
	// by the engine, the scenario campaigns and the batch CLIs.
	InstanceSpec = scenario.InstanceSpec
	// Instance is a fully built problem: topology, matrices, options.
	Instance = scenario.Instance
)

// Engine session-lifecycle errors.
var (
	// ErrSessionLeaseTimeout: every pooled session stayed leased past the
	// lease timeout.
	ErrSessionLeaseTimeout = engine.ErrLeaseTimeout
	// ErrHandleClosed: Session was called on a closed handle.
	ErrHandleClosed = engine.ErrClosed
	// ErrLeakedCheckpoint: a session was released with an armed checkpoint
	// (it is reset before pooling; the leak is a caller bug).
	ErrLeakedCheckpoint = engine.ErrLeakedCheckpoint
)

// LoadTopology builds the instance described by spec through the generator
// registries and returns its handle — the programmatic equivalent of the
// dtrd daemon's POST /v1/topologies.
func LoadTopology(spec EngineSpec) (*TopologyHandle, error) { return engine.Load(spec) }

// NewTopologyHandle wraps an already-built problem (an imported graph,
// hand-constructed matrices) in a handle. The inputs must not be mutated
// afterwards: every session reads them.
func NewTopologyHandle(name string, g *Graph, th, tl *TrafficMatrix, opts Options, pool SessionPool) (*TopologyHandle, error) {
	return engine.New(name, &scenario.Instance{G: g, TH: th, TL: tl, Opts: opts}, pool)
}

// Graph types.
type (
	// Graph is a directed graph with per-arc capacities (Mbps) and
	// propagation delays (ms).
	Graph = graph.Graph
	// NodeID is a dense node index.
	NodeID = graph.NodeID
	// EdgeID is a dense directed-arc index.
	EdgeID = graph.EdgeID
	// Edge is one directed arc.
	Edge = graph.Edge
)

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Topology generation (§5.1.1).

// DefaultCapacity is the paper's 500 Mbps per-arc capacity.
const DefaultCapacity = topo.DefaultCapacity

// RandomTopology generates a connected topology with near-uniform degrees.
func RandomTopology(nodes, links int, capacity float64, rng *rand.Rand) (*Graph, error) {
	return topo.Random(nodes, links, capacity, rng)
}

// PowerLawTopology generates a Barabási–Albert preferential-attachment
// topology with exactly the requested link count.
func PowerLawTopology(nodes, links int, capacity float64, rng *rand.Rand) (*Graph, error) {
	return topo.PowerLaw(nodes, links, capacity, rng)
}

// ISPBackbone returns the 16-node, 70-arc North-American backbone with
// geography-derived propagation delays (8–15 ms).
func ISPBackbone(capacity float64) *Graph { return topo.ISPBackbone(capacity) }

// AssignUniformDelays draws symmetric per-link propagation delays uniformly
// from [minMs, maxMs].
func AssignUniformDelays(g *Graph, minMs, maxMs float64, rng *rand.Rand) {
	topo.AssignUniformDelays(g, minMs, maxMs, rng)
}

// Generator registry: every topology family (the three above plus Waxman
// geometric graphs, ring/grid/torus lattices, two-tier hierarchical ISPs
// and GML/adjacency-list imports) is reachable by name with a validated,
// JSON-serializable parameter set.

// TopologyParams parameterizes a registered topology family; zero fields
// resolve to the family's defaults.
type TopologyParams = topo.Params

// TopologyFamilies lists every registered topology family name.
func TopologyFamilies() []string { return topo.Families() }

// GenerateTopology builds a strongly connected topology from any registered
// family, validating p against the family's rules.
func GenerateTopology(family string, p TopologyParams, rng *rand.Rand) (*Graph, error) {
	return topo.Generate(family, p, rng)
}

// ImportTopology reads a real-world topology from a GML or adjacency-list
// file, applying p's capacity and delay settings (unset fields resolve to
// the import family's defaults; the result is connectivity-checked).
func ImportTopology(path string, p TopologyParams, rng *rand.Rand) (*Graph, error) {
	p.Path = path
	return topo.Generate("import", p, rng)
}

// Traffic matrices (§5.1.2).
type (
	// TrafficMatrix is a |V|×|V| demand matrix in Mbps, stored column-major
	// with all-zero destination columns left unallocated — sink-limited
	// matrices cost O(destinations·n), not O(n²).
	TrafficMatrix = traffic.Matrix
	// Demand is one nonzero matrix entry.
	Demand = traffic.Demand
	// SinkPlacement selects where sink-model clients live.
	SinkPlacement = traffic.SinkPlacement
)

// Sink-model client placements.
const (
	UniformClients = traffic.UniformClients
	LocalClients   = traffic.LocalClients
)

// NewTrafficMatrix returns an all-zero n×n matrix.
func NewTrafficMatrix(n int) *TrafficMatrix { return traffic.NewMatrix(n) }

// GravityMatrix generates the low-priority gravity-model matrix (Eq. 6–7).
func GravityMatrix(n int, rng *rand.Rand) *TrafficMatrix { return traffic.Gravity(n, rng) }

// GravitySinksMatrix generates a sink-limited gravity matrix: every source
// sends to sinks destinations spread evenly over the ID space, costing
// O(sinks·n) memory instead of the dense model's O(n²) — the only feasible
// shape past a few thousand nodes.
func GravitySinksMatrix(n, sinks int, rng *rand.Rand) *TrafficMatrix {
	return traffic.GravitySinks(n, sinks, rng)
}

// RandomHighPriorityMatrix generates the random high-priority model: density
// k of SD pairs, total volume a fraction f of all traffic.
func RandomHighPriorityMatrix(n int, k, f, etaL float64, rng *rand.Rand) (*TrafficMatrix, error) {
	return traffic.RandomHighPriority(n, k, f, etaL, rng)
}

// SinkHighPriorityMatrix generates the sink ("popular server") model with
// bidirectional client-sink demands.
func SinkHighPriorityMatrix(g *Graph, sinks int, k, f, etaL float64, placement SinkPlacement, rng *rand.Rand) (*TrafficMatrix, error) {
	return traffic.SinkHighPriority(g, sinks, k, f, etaL, placement, rng)
}

// TrafficParams parameterizes a registered high-priority traffic model;
// zero fields resolve to the model's defaults.
type TrafficParams = traffic.Params

// TrafficModels lists every registered high-priority model name: the
// paper's three placements plus capacity-weighted gravity, bimodal hotspot
// and the uniform baseline.
func TrafficModels() []string { return traffic.Models() }

// GenerateHighPriorityMatrix builds TH from any registered model, validating
// p against the model's rules; etaL is the total low-priority volume the
// f-fraction scales against.
func GenerateHighPriorityMatrix(model string, g *Graph, etaL float64, p TrafficParams, rng *rand.Rand) (*TrafficMatrix, error) {
	return traffic.GenerateHighPriority(model, g, etaL, p, rng)
}

// Routing substrate.
type (
	// Weights assigns a routing weight (≥1) to every arc.
	Weights = spf.Weights
	// RoutingPlan routes one traffic matrix and answers delay queries.
	RoutingPlan = spf.Plan
	// DeltaRouter incrementally maintains routing trees and loads under
	// evolving weights, recomputing only invalidated destinations.
	DeltaRouter = spf.DeltaRouter
	// DeltaRouterStats counts incremental-engine work (trees reused vs
	// recomputed, full-route fallbacks).
	DeltaRouterStats = spf.DeltaStats
	// SPFComputer runs repeated single-destination shortest-path
	// computations over one graph, reusing buffers.
	SPFComputer = spf.Computer
	// SPFTree is one destination's shortest-path DAG.
	SPFTree = spf.Tree
)

// NewSPFComputer returns a single-destination SPF computer for g.
func NewSPFComputer(g *Graph) *SPFComputer { return spf.NewComputer(g) }

// UniformWeights returns unit weights (hop-count routing).
func UniformWeights(n int) Weights { return spf.Uniform(n) }

// RouteLoads routes tm under w and returns per-arc loads (even ECMP split).
func RouteLoads(g *Graph, w Weights, tm *TrafficMatrix) ([]float64, error) {
	return spf.Loads(g, w, tm)
}

// NewRoutingPlan prepares repeated routing of tm's destinations.
func NewRoutingPlan(g *Graph, tm *TrafficMatrix) *RoutingPlan { return spf.NewPlan(g, tm) }

// NewDeltaRouter prepares incremental routing of the given matrices'
// destinations. Call Route once, then Apply per weight change; results are
// bitwise-equal to routing from scratch.
//
// Deprecated: lease a RoutingSession from a TopologyHandle and use its
// Router method — the session scopes the router's mutable state to one
// lease and catches leaked checkpoints at Release.
func NewDeltaRouter(g *Graph, tms ...*TrafficMatrix) *DeltaRouter {
	return spf.NewDeltaRouter(g, tms...)
}

// DisabledWeight is the sentinel weight that removes an arc from routing
// (link failure).
const DisabledWeight = spf.Disabled

// Objectives (§3).
type (
	// Evaluator computes both classes' costs for candidate weight settings.
	Evaluator = eval.Evaluator
	// EvalResult carries every metric of one evaluated routing.
	EvalResult = eval.Result
	// Options selects and parameterizes the objective.
	Options = eval.Options
	// ObjectiveKind is the objective family (load-based or SLA-based).
	ObjectiveKind = eval.Kind
	// SLA holds the SLA cost parameters (θ, a, b, packet size).
	SLA = cost.SLA
	// Lex is a lexicographically ordered cost pair.
	Lex = cost.Lex
)

// Objective kinds.
const (
	LoadBased = eval.LoadBased
	SLABased  = eval.SLABased
)

// DefaultOptions returns load-based evaluation with paper defaults.
func DefaultOptions() Options { return eval.DefaultOptions() }

// DefaultSLA returns θ=25ms, a=100, b=1, 1000-byte packets.
func DefaultSLA() SLA { return cost.DefaultSLA() }

// FortzThorupCost evaluates the piecewise-linear link cost Φ(load, capacity)
// of Eq. (1).
func FortzThorupCost(load, capacity float64) float64 { return cost.Phi(load, capacity) }

// NewEvaluator builds an evaluator for one problem instance.
//
// Deprecated: wrap the instance in a handle with NewTopologyHandle (or
// LoadTopology) and use Session(ctx).Evaluator() — the handle shares the
// immutable instance across concurrent sessions and pools the mutable
// routing state.
func NewEvaluator(g *Graph, th, tl *TrafficMatrix, opts Options) (*Evaluator, error) {
	return eval.New(g, th, tl, opts)
}

// Weight search (§4).
type (
	// DTRParams configures Algorithm 1.
	DTRParams = search.Params
	// STRParams configures the single-weight-change baseline.
	STRParams = search.STRParams
	// DTRResult is the outcome of the DTR search.
	DTRResult = search.DTRResult
	// STRResult is the outcome of the STR baseline search.
	STRResult = search.STRResult
	// RelaxedRecord is the ε-relaxed best low-priority solution (§5.3.1).
	RelaxedRecord = search.RelaxedRecord
	// PortfolioParams configures a multi-start portfolio of DTR searches.
	PortfolioParams = search.PortfolioParams
	// PortfolioResult is the outcome of a portfolio run.
	PortfolioResult = search.PortfolioResult
	// SearchStrategy describes one portfolio trajectory.
	SearchStrategy = search.Strategy
)

// DefaultSearchPortfolio returns s diverse portfolio strategies; see
// search.DefaultPortfolio.
func DefaultSearchPortfolio(s int) []SearchStrategy { return search.DefaultPortfolio(s) }

// OptimizePortfolio runs a multi-start portfolio of DTR searches and returns
// the deterministically selected best trajectory.
func OptimizePortfolio(e *Evaluator, wH0, wL0 Weights, pp PortfolioParams) (*PortfolioResult, error) {
	return search.Portfolio(e, wH0, wL0, pp)
}

// DTRDefaults returns the paper's Algorithm 1 parameters (§5.1.3).
func DTRDefaults() DTRParams { return search.Defaults() }

// STRDefaults returns a matched-budget STR baseline configuration.
func STRDefaults() STRParams { return search.STRDefaults() }

// OptimizeDTR runs Algorithm 1 from unit weights.
func OptimizeDTR(e *Evaluator, p DTRParams) (*DTRResult, error) { return search.DTR(e, p) }

// OptimizeDTRFrom runs Algorithm 1 from the given initial weights, e.g. to
// warm-start from an STR solution.
func OptimizeDTRFrom(e *Evaluator, wH, wL Weights, p DTRParams) (*DTRResult, error) {
	return search.DTRFrom(e, wH, wL, p)
}

// OptimizeSTR runs the single-topology baseline search from unit weights.
func OptimizeSTR(e *Evaluator, p STRParams) (*STRResult, error) { return search.STR(e, p) }

// Control plane (RFC 4915 deployment model).
type (
	// OSPFNetwork is a converged multi-topology OSPF control plane.
	OSPFNetwork = ospf.Network
	// Packet is a classified datagram for forwarding.
	Packet = ospf.Packet
	// TopologyID selects a routing topology (MT-ID).
	TopologyID = ospf.TopologyID
)

// Topology identifiers.
const (
	TopoHigh = ospf.TopoHigh
	TopoLow  = ospf.TopoLow
)

// BuildOSPFNetwork floods per-topology link metrics to convergence and
// installs per-class FIBs on every router.
func BuildOSPFNetwork(g *Graph, wH, wL Weights) (*OSPFNetwork, error) {
	return ospf.BuildNetwork(g, wH, wL)
}

// Queueing validation substrate.
type (
	// QueueConfig parameterizes the two-priority M/M/1 simulation.
	QueueConfig = qsim.Config
	// QueueResult is a simulation outcome.
	QueueResult = qsim.Result
)

// Queue disciplines.
const (
	PreemptiveResume = qsim.PreemptiveResume
	NonPreemptive    = qsim.NonPreemptive
)

// SimulateQueue runs the discrete-event priority-queue simulation.
func SimulateQueue(cfg QueueConfig) (*QueueResult, error) { return qsim.Run(cfg) }

// Path-level queueing validation.
type (
	// PathLink is one hop of a tandem priority-queue path.
	PathLink = qsim.PathLink
	// PathConfig simulates a probe flow through a chain of priority queues.
	PathConfig = qsim.PathConfig
	// PathResult reports simulated vs analytic end-to-end delay.
	PathResult = qsim.PathResult
)

// SimulatePath validates the additive end-to-end delay model (ξ = Σ Dl)
// behind the SLA cost function by simulating a probe flow across a chain of
// two-priority queues.
func SimulatePath(cfg PathConfig) (*PathResult, error) { return qsim.SimulatePath(cfg) }

// Scenario engine: declarative, parallel, deterministic what-if campaigns.
type (
	// Scenario is a declarative campaign spec (JSON-encodable).
	Scenario = scenario.Spec
	// ScenarioOptions configures campaign execution (workers, callbacks).
	ScenarioOptions = scenario.Options
	// ScenarioResult is a fully executed campaign with per-point aggregates.
	ScenarioResult = scenario.CampaignResult
	// ScenarioTrial is one completed trial of a campaign.
	ScenarioTrial = scenario.TrialResult
	// ScenarioProgress reports execution state after each completed trial.
	ScenarioProgress = scenario.Progress
)

// RunScenario expands the campaign into its deterministic work-list and
// executes it on a bounded worker pool. Aggregates depend only on the spec,
// never on worker count or scheduling.
func RunScenario(spec Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	return scenario.Run(spec, opts)
}

// ScenarioPresets returns the bundled campaign library.
func ScenarioPresets() []Scenario { return scenario.Presets() }

// ScenarioPreset resolves one bundled campaign by name.
func ScenarioPreset(name string) (Scenario, bool) { return scenario.PresetByName(name) }

// Resilience: failure models and delta-powered failure sweeps.
type (
	// FailureModel selects a failure-state family (single/dual link, node,
	// SRLG) plus seeded sampling.
	FailureModel = resilience.Model
	// FailureState is one failure state: the arcs that go down together.
	FailureState = resilience.State
	// FailureSweeper evaluates routings under failure states through the
	// incremental routing core (disable → delta objective → repair).
	FailureSweeper = resilience.Sweeper
	// FailureSweepOptions toggles full re-evaluation or delta/full verify.
	FailureSweepOptions = resilience.Options
	// FailureSamples holds both schemes' per-state ΦL degradation factors.
	FailureSamples = resilience.Samples
	// FailureSummary condenses FailureSamples for records and aggregates.
	FailureSummary = resilience.Summary
	// RobustParams makes the DTR search failure-aware.
	RobustParams = search.RobustParams
	// RobustScore reports a robust search's failure-aware solution metrics.
	RobustScore = search.RobustScore
)

// Failure-model kinds.
const (
	FailLink = resilience.KindLink
	FailNode = resilience.KindNode
	FailSRLG = resilience.KindSRLG
)

// EnumerateFailures expands a failure model into its deterministic
// (optionally seeded-sampled) state list over g.
func EnumerateFailures(g *Graph, m FailureModel) ([]FailureState, error) {
	return resilience.Enumerate(g, m)
}

// NewFailureSweeper builds a sweeper over e's problem instance.
//
// Deprecated: use RoutingSession.SweepSTR / SweepDTR, which scope the
// sweeper's incremental state to one lease.
func NewFailureSweeper(e *Evaluator, opts FailureSweepOptions) *FailureSweeper {
	return resilience.NewSweeper(e, opts)
}

// CompareUnderFailures sweeps both schemes' weight settings over the same
// failure states and pairs the ΦL degradations.
//
// Deprecated: use RoutingSession.CompareUnderFailures, which owns its
// sweeper and needs no hand-wired plumbing.
func CompareUnderFailures(sw *FailureSweeper, wSTR, wH, wL Weights, states []FailureState) (*FailureSamples, error) {
	return resilience.CompareSchemes(sw, wSTR, wH, wL, states)
}

// Experiments (§5).
type (
	// Experiment runs one of the paper's tables or figures.
	Experiment = experiments.Runner
	// ExperimentReport is a rendered experiment outcome.
	ExperimentReport = experiments.Report
	// ExperimentPreset scales search budgets.
	ExperimentPreset = experiments.Preset
)

// ExperimentIDs lists all registered experiments (fig1..fig9, table1).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes one experiment under a preset.
func RunExperiment(id string, p ExperimentPreset) (*ExperimentReport, error) {
	return experiments.Run(id, p)
}

// TinyPreset returns the fast integration-test preset.
func TinyPreset() ExperimentPreset { return experiments.Tiny() }

// SmallPreset returns the default laptop-scale preset.
func SmallPreset() ExperimentPreset { return experiments.Small() }

// PaperPreset returns the publication search budgets (very slow).
func PaperPreset() ExperimentPreset { return experiments.PaperPreset() }
