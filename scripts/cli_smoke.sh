#!/usr/bin/env bash
# CLI smoke test: build every command and drive its primary paths — every
# registered topology family through topogen, the bundled campaign examples
# through dtrscen validate, a 1-trial preset run, dtropt on an imported
# graph, a dtrfail sweep, and the benchgate self-comparison — so no command,
# preset or generator family can rot unnoticed. CI runs this as the
# cli-smoke job; it is equally runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

echo "== build all commands"
go build -o "$bin" ./cmd/...

echo "== topogen: list, describe, generate every registered family"
"$bin/topogen" list >/dev/null
"$bin/topogen" describe waxman >/dev/null
for fam in $("$bin/topogen" list -q); do
  case "$fam" in
  import)
    "$bin/topogen" gen -topo import -path examples/campaigns/topologies/abilene.gml \
      -quiet -o "$bin/$fam.json"
    ;;
  *)
    "$bin/topogen" gen -topo "$fam" -quiet -o "$bin/$fam.json"
    ;;
  esac
  test -s "$bin/$fam.json"
  echo "   $fam ok"
done

echo "== dtrscen: list presets, validate bundled example campaigns"
"$bin/dtrscen" list >/dev/null
"$bin/dtrscen" validate examples/campaigns/*.json

echo "== dtrscen: run the tiny preset (1 trial per load point)"
"$bin/dtrscen" run -preset tiny -trials 1 -quiet >"$bin/tiny.jsonl"
test -s "$bin/tiny.jsonl"

echo "== dtrscen: run a new-family example campaign (1 trial per load point)"
"$bin/dtrscen" run -trials 1 -quiet examples/campaigns/waxman-load.json >"$bin/waxman.jsonl"
test -s "$bin/waxman.jsonl"

echo "== dtropt: optimize the imported Abilene topology at the tiny budget"
"$bin/dtropt" -budget tiny -graph "$bin/import.json" -json "$bin/weights.json" >/dev/null
test -s "$bin/weights.json"

echo "== dtrfail: sampled single-link sweep at the tiny budget"
"$bin/dtrfail" -budget tiny -kind link -sample 4 >/dev/null

echo "== benchgate: committed baseline gates against itself"
"$bin/benchgate" -baseline BENCH_PR4.json -current BENCH_PR4.json >/dev/null

echo "ok: CLI smoke passed"
