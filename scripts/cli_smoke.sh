#!/usr/bin/env bash
# CLI smoke test: build every command and drive its primary paths — every
# registered topology family through topogen, the bundled campaign examples
# through dtrscen validate, a 1-trial preset run, dtropt on an imported
# graph, a dtrfail sweep, a dtrchurn generate/replay/compare cycle, a dtrd
# serve/load/route/whatif/search/drain round-trip, and the benchgate
# self-comparison — so no command, preset or generator family can rot
# unnoticed. CI runs this as the cli-smoke job; it is equally runnable
# locally.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
# On exit, also reap any backgrounded server still running: a failed check
# would otherwise orphan it holding our stdout pipe open.
trap 'kill "${scen_pid:-}" "${dtrd_pid:-}" 2>/dev/null || :; rm -rf "$bin"' EXIT

echo "== build all commands"
go build -o "$bin" ./cmd/...

echo "== topogen: list, describe, generate every registered family"
"$bin/topogen" list >/dev/null
"$bin/topogen" describe waxman >/dev/null
for fam in $("$bin/topogen" list -q); do
  case "$fam" in
  import)
    "$bin/topogen" gen -topo import -path examples/campaigns/topologies/abilene.gml \
      -quiet -o "$bin/$fam.json"
    ;;
  *)
    "$bin/topogen" gen -topo "$fam" -quiet -o "$bin/$fam.json"
    ;;
  esac
  test -s "$bin/$fam.json"
  echo "   $fam ok"
done

echo "== dtrscen: list presets, validate bundled example campaigns"
"$bin/dtrscen" list >/dev/null
"$bin/dtrscen" validate examples/campaigns/*.json

echo "== dtrscen: run the tiny preset (1 trial per load point)"
"$bin/dtrscen" run -preset tiny -trials 1 -quiet >"$bin/tiny.jsonl"
test -s "$bin/tiny.jsonl"

echo "== dtrscen: run a new-family example campaign (1 trial per load point)"
"$bin/dtrscen" run -trials 1 -quiet examples/campaigns/waxman-load.json >"$bin/waxman.jsonl"
test -s "$bin/waxman.jsonl"

echo "== dtrscen: manifest line leads the trial stream"
head -1 "$bin/tiny.jsonl" | grep -q '"manifest"' || {
  echo "FAIL: tiny.jsonl does not start with a run manifest"; exit 1; }
head -1 "$bin/tiny.jsonl" | grep -q '"spec_hash"' || {
  echo "FAIL: run manifest lacks a spec hash"; exit 1; }

echo "== dtrscen: serve /metrics during a run and scrape it"
"$bin/dtrscen" run -preset tiny -trials 1 -quiet \
  -metrics-addr 127.0.0.1:0 -metrics-linger 30s \
  -metrics-dump "$bin/metrics.json" >"$bin/obs.jsonl" 2>"$bin/obs.stderr" &
scen_pid=$!
metrics_url=""
for _ in $(seq 1 100); do
  metrics_url="$(sed -n 's#^obs: metrics listening on \(http://[^ ]*\)$#\1#p' "$bin/obs.stderr" | head -1)"
  [ -n "$metrics_url" ] && break
  kill -0 "$scen_pid" 2>/dev/null || { cat "$bin/obs.stderr"; echo "FAIL: dtrscen exited before announcing metrics"; exit 1; }
  sleep 0.1
done
[ -n "$metrics_url" ] || { cat "$bin/obs.stderr"; echo "FAIL: metrics address never announced"; exit 1; }
scrape="$(curl -sf "$metrics_url")"
echo "$scrape" | grep -q '^# TYPE scenario_trials_total counter$' || {
  echo "FAIL: /metrics exposition missing scenario_trials_total TYPE header"; exit 1; }
echo "$scrape" | grep -q '^# TYPE spf_delta_applies_total counter$' || {
  echo "FAIL: /metrics exposition missing spf metrics"; exit 1; }
curl -sf "${metrics_url%/metrics}/debug/pprof/" | grep -q goroutine || {
  echo "FAIL: pprof index not served"; exit 1; }
curl -sf "${metrics_url%/metrics}/manifest.json" | grep -q '"command":"dtrscen run"' || {
  echo "FAIL: manifest endpoint not served"; exit 1; }
kill "$scen_pid" 2>/dev/null || true
wait "$scen_pid" 2>/dev/null || true

echo "== dtrscen: -metrics-dump snapshot with manifest"
"$bin/dtrscen" run -preset tiny -trials 1 -quiet -metrics-dump "$bin/dump.json" >/dev/null
grep -q '"scenario_trials_total"' "$bin/dump.json" || {
  echo "FAIL: metrics dump missing scenario_trials_total"; exit 1; }
grep -q '"manifest"' "$bin/dump.json" || {
  echo "FAIL: metrics dump missing run manifest"; exit 1; }

echo "== dtropt: optimize the imported Abilene topology at the tiny budget"
"$bin/dtropt" -budget tiny -graph "$bin/import.json" -json "$bin/weights.json" \
  -trace "$bin/trace.jsonl" >/dev/null
test -s "$bin/weights.json"
grep -q '"manifest"' "$bin/weights.json" || {
  echo "FAIL: dtropt -json output missing run manifest"; exit 1; }
test -s "$bin/trace.jsonl"
head -1 "$bin/trace.jsonl" | grep -q '"kind"' || {
  echo "FAIL: dtropt -trace output is not a trajectory event stream"; exit 1; }

echo "== dtropt: guided multi-start portfolio with per-trajectory traces"
"$bin/dtropt" -budget tiny -graph "$bin/import.json" -multistart 4 -guide 0.9 -prune \
  -json "$bin/portfolio.json" -trace "$bin/ptrace.jsonl" >/dev/null
grep -q '"portfolio"' "$bin/portfolio.json" || {
  echo "FAIL: dtropt -multistart JSON output missing the portfolio section"; exit 1; }
grep -q '"manifest"' "$bin/portfolio.json" || {
  echo "FAIL: dtropt -multistart JSON output missing run manifest"; exit 1; }
grep -q '"trajectory"' "$bin/ptrace.jsonl" || {
  echo "FAIL: dtropt -multistart trace events lack trajectory indexes"; exit 1; }

echo "== dtropt: 10k-node hier topology with sink-limited traffic (scale path)"
"$bin/topogen" gen -topo hier -params '{"pops":100,"routers_per_pop":100}' -quiet \
  -o "$bin/hier10k.json"
"$bin/dtropt" -budget smoke -graph "$bin/hier10k.json" -lp-sinks 8 \
  -hp sink-uniform -k 0.00001 >"$bin/hier10k.out"
grep -q '10000 nodes' "$bin/hier10k.out" || {
  echo "FAIL: dtropt did not route the 10k-node instance"; exit 1; }

echo "== dtrfail: sampled single-link sweep at the tiny budget"
"$bin/dtrfail" -budget tiny -kind link -sample 4 >/dev/null

echo "== dtrchurn: generate a trace, replay it cumulatively and verified"
"$bin/dtrchurn" generate -horizon 120 -link-mtbf 60 -link-mttr 4 \
  -weight-rate 0.05 -o "$bin/churn.jsonl" 2>/dev/null
test -s "$bin/churn.jsonl"
head -1 "$bin/churn.jsonl" | grep -q '"churn_trace"' || {
  echo "FAIL: churn trace lacks its header line"; exit 1; }
"$bin/dtrchurn" replay -budget tiny -trace "$bin/churn.jsonl" -verify \
  >"$bin/churn-replay.jsonl" 2>/dev/null
head -1 "$bin/churn-replay.jsonl" | grep -q '"manifest"' || {
  echo "FAIL: churn replay stream does not start with a run manifest"; exit 1; }
tail -1 "$bin/churn-replay.jsonl" | grep -q '"churn_summary"' || {
  echo "FAIL: churn replay stream does not end with a summary"; exit 1; }
grep -q '"kind":"link-down"' "$bin/churn-replay.jsonl" || {
  echo "FAIL: churn replay emitted no link-down records"; exit 1; }

echo "== dtrchurn: instant-vs-convergence comparison on a generated timeline"
"$bin/dtrchurn" compare -budget tiny -horizon 120 -link-mtbf 60 \
  -link-mttr 4 >"$bin/churn-compare.out" 2>/dev/null
grep -q 'transient' "$bin/churn-compare.out" || {
  echo "FAIL: dtrchurn compare printed no transient row"; exit 1; }

echo "== dtrd: boot the daemon, load a topology, route/whatif/search, drain"
"$bin/dtrd" -addr 127.0.0.1:0 2>"$bin/dtrd.stderr" &
dtrd_pid=$!
base_url=""
for _ in $(seq 1 100); do
  base_url="$(sed -n 's#^dtrd: listening on \(http://[^ ]*\)$#\1#p' "$bin/dtrd.stderr" | head -1)"
  [ -n "$base_url" ] && break
  kill -0 "$dtrd_pid" 2>/dev/null || { cat "$bin/dtrd.stderr"; echo "FAIL: dtrd exited before announcing its address"; exit 1; }
  sleep 0.1
done
[ -n "$base_url" ] || { cat "$bin/dtrd.stderr"; echo "FAIL: dtrd address never announced"; exit 1; }

curl -sf -d @examples/dtrd/load.json "$base_url/v1/topologies" | grep -q '"id": "t1"' || {
  echo "FAIL: dtrd load did not create topology t1"; exit 1; }
curl -sf -d @examples/dtrd/route.json "$base_url/v1/topologies/t1/route" | grep -q '"phi_l"' || {
  echo "FAIL: dtrd route returned no costs"; exit 1; }
curl -sf -d @examples/dtrd/whatif.json "$base_url/v1/topologies/t1/whatif" | grep -q '"survivors"' || {
  echo "FAIL: dtrd whatif returned no sweep summary"; exit 1; }
curl -sf -d @examples/dtrd/search.json "$base_url/v1/topologies/t1/search" | grep -q '"id": "j1"' || {
  echo "FAIL: dtrd search did not start job j1"; exit 1; }
job=""
for _ in $(seq 1 300); do
  job="$(curl -sf "$base_url/v1/jobs/j1")"
  echo "$job" | grep -q '"status": "running"' || break
  sleep 0.1
done
echo "$job" | grep -q '"status": "done"' || {
  echo "$job"; echo "FAIL: dtrd search job did not finish"; exit 1; }
echo "$job" | grep -q '"dtr_low_weights"' || {
  echo "FAIL: dtrd search result carries no DTR weights"; exit 1; }
# Capture the (large) exposition before grepping: `curl | grep -q` under
# pipefail fails spuriously when grep exits on an early match and curl
# takes the resulting EPIPE.
dtrd_scrape="$(curl -sf "$base_url/metrics")"
echo "$dtrd_scrape" | grep -q '^# TYPE dtrd_request_seconds histogram$' || {
  echo "FAIL: dtrd /metrics missing the request latency histogram"; exit 1; }
kill -TERM "$dtrd_pid"
wait "$dtrd_pid" || { cat "$bin/dtrd.stderr"; echo "FAIL: dtrd exited non-zero on SIGTERM"; exit 1; }
grep -q '^dtrd: stopped$' "$bin/dtrd.stderr" || {
  cat "$bin/dtrd.stderr"; echo "FAIL: dtrd did not drain to 'stopped'"; exit 1; }

echo "== benchgate: committed baseline gates against itself"
"$bin/benchgate" -baseline BENCH_PR10.json -current BENCH_PR10.json >/dev/null

echo "ok: CLI smoke passed"
