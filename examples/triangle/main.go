// Triangle walks through the paper's §3.3.1 example: on a 3-node network, a
// joint cost function J = α·ΦH + ΦL cannot be tuned safely — α=35 starves
// the low-priority class while α=30 causes a priority inversion — whereas
// dual-topology routing with a lexicographic objective gets the best of
// both. All numbers are exact rationals from the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"dualtopo"
)

func main() {
	log.SetFlags(0)

	// Nodes: A=0, B=1, C=2; unit-capacity links A-B, B-C, A-C.
	g := dualtopo.NewGraph(3)
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.SetName(2, "C")
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	g.AddLink(0, 2, 1, 1)

	th := dualtopo.NewTrafficMatrix(3)
	th.Set(0, 2, 1.0/3) // 1/3 unit of high-priority A->C
	tl := dualtopo.NewTrafficMatrix(3)
	tl.Set(0, 2, 2.0/3) // 2/3 unit of low-priority A->C

	h, err := dualtopo.NewTopologyHandle("triangle", g, th, tl, dualtopo.DefaultOptions(), dualtopo.SessionPool{Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(sess) //nolint:errcheck // process exits right after
	ev := sess.Evaluator()

	// Candidate STR routings from the paper.
	direct, err := ev.EvaluateSTR(dualtopo.UniformWeights(g.NumEdges()))
	if err != nil {
		log.Fatal(err)
	}
	wSplit := dualtopo.UniformWeights(g.NumEdges())
	ac, _ := g.ArcBetween(0, 2)
	wSplit[ac] = 2 // equal-cost paths A-C and A-B-C: even ECMP split
	split, err := ev.EvaluateSTR(wSplit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("STR routings for 1/3 high + 2/3 low priority units A->C:")
	fmt.Printf("  direct on A-C:  PhiH = %.4f (1/3),  PhiL = %.4f (64/9)\n", direct.PhiH, direct.PhiL)
	fmt.Printf("  even split:     PhiH = %.4f (1/2),  PhiL = %.4f (4/3)\n", split.PhiH, split.PhiL)

	fmt.Println("\nJoint cost J = alpha*PhiH + PhiL:")
	for _, alpha := range []float64{35, 30} {
		jd := alpha*direct.PhiH + direct.PhiL
		js := alpha*split.PhiH + split.PhiL
		pick := "direct"
		if js < jd {
			pick = "split (priority inversion: PhiH degrades 50%)"
		}
		fmt.Printf("  alpha=%2.0f: J(direct)=%6.3f  J(split)=%6.3f  -> %s\n", alpha, jd, js, pick)
	}

	// DTR needs no alpha: optimize lexicographically with two topologies.
	p := dualtopo.DTRDefaults()
	p.N, p.K, p.M = 200, 200, 50
	dtr, err := dualtopo.OptimizeDTR(ev, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDTR lexicographic optimum: PhiH = %.4f (1/3), PhiL = %.4f (11/9)\n",
		dtr.Result.PhiH, dtr.Result.PhiL)
	fmt.Println("High priority keeps its best cost; low priority improves 5.8x over STR.")
}
