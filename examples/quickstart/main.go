// Quickstart: generate a random 30-node network with two traffic classes,
// optimize routing with single-topology (STR) and dual-topology (DTR)
// weights, and compare the per-class costs — the paper's headline
// experiment in miniature.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"dualtopo"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewPCG(1, 1))

	// The paper's standard instance: 30 nodes, 150 arcs, 500 Mbps links,
	// 30% high-priority volume spread over 10% of the SD pairs.
	g, err := dualtopo.RandomTopology(30, 75, dualtopo.DefaultCapacity, rng)
	if err != nil {
		log.Fatal(err)
	}
	dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
	tl := dualtopo.GravityMatrix(30, rng)
	th, err := dualtopo.RandomHighPriorityMatrix(30, 0.10, 0.30, tl.Total(), rng)
	if err != nil {
		log.Fatal(err)
	}
	// Scale demand to a moderately loaded network (where DTR helps most).
	loads, err := dualtopo.RouteLoads(g, dualtopo.UniformWeights(g.NumEdges()), tl)
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	scale := 0.55 * dualtopo.DefaultCapacity * float64(g.NumEdges()) / (total / (1 - 0.30))
	th.Scale(scale)
	tl.Scale(scale)

	// Wrap the instance in a handle and lease a session: the handle holds the
	// immutable problem, the session the mutable routing state. A batch
	// program like this one needs a single session for its whole run.
	h, err := dualtopo.NewTopologyHandle("quickstart", g, th, tl, dualtopo.DefaultOptions(), dualtopo.SessionPool{Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(sess)   //nolint:errcheck // process exits right after
	sess.SetRouteWorkers(0) // sole lease: use all cores
	ev := sess.Evaluator()

	strParams := dualtopo.STRDefaults()
	strParams.Iterations, strParams.Candidates = 2000, 5
	str, err := dualtopo.OptimizeSTR(ev, strParams)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STR (one topology):   PhiH = %10.1f   PhiL = %10.1f\n",
		str.Result.PhiH, str.Result.PhiL)

	dtrParams := dualtopo.DTRDefaults()
	dtrParams.N, dtrParams.K = 1000, 600
	dtr, err := dualtopo.OptimizeDTRFrom(ev, str.W, str.W, dtrParams)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DTR (two topologies): PhiH = %10.1f   PhiL = %10.1f\n",
		dtr.Result.PhiH, dtr.Result.PhiL)

	fmt.Printf("\ncost ratios (STR/DTR):  RH = %.2f   RL = %.2f\n",
		str.Result.PhiH/dtr.Result.PhiH, str.Result.PhiL/dtr.Result.PhiL)
	fmt.Println("\nThe high-priority class performs the same under both schemes;")
	fmt.Println("the low-priority class improves because its own topology routes")
	fmt.Println("it away from links the high-priority traffic has loaded.")
}
