// isp_sla optimizes an ISP backbone for SLA compliance — the scenario that
// motivates the paper's second cost function (§3.2): premium customers pay
// for end-to-end delay bounds, and the provider pays penalties for
// violations. The example optimizes STR and DTR weights for the 16-node
// North-American backbone, then deploys the DTR weights on the simulated
// MT-OSPF control plane and traces per-class forwarding paths.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"dualtopo"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewPCG(2007, 12))

	g := dualtopo.ISPBackbone(dualtopo.DefaultCapacity)
	n := g.NumNodes()
	tl := dualtopo.GravityMatrix(n, rng)
	th, err := dualtopo.RandomHighPriorityMatrix(n, 0.10, 0.30, tl.Total(), rng)
	if err != nil {
		log.Fatal(err)
	}
	// Load the backbone to ~60% average utilization.
	loads, err := dualtopo.RouteLoads(g, dualtopo.UniformWeights(g.NumEdges()), tl)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	scale := 0.60 * dualtopo.DefaultCapacity * float64(g.NumEdges()) / (sum / 0.70)
	th.Scale(scale)
	tl.Scale(scale)

	opts := dualtopo.Options{Kind: dualtopo.SLABased, SLA: dualtopo.DefaultSLA()}
	h, err := dualtopo.NewTopologyHandle("isp-sla", g, th, tl, opts, dualtopo.SessionPool{Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(sess)   //nolint:errcheck // process exits right after
	sess.SetRouteWorkers(0) // sole lease: use all cores
	ev := sess.Evaluator()

	strParams := dualtopo.STRDefaults()
	strParams.Iterations, strParams.Candidates = 1500, 5
	str, err := dualtopo.OptimizeSTR(ev, strParams)
	if err != nil {
		log.Fatal(err)
	}
	dtrParams := dualtopo.DTRDefaults()
	dtrParams.N, dtrParams.K = 800, 500
	dtr, err := dualtopo.OptimizeDTRFrom(ev, str.W, str.W, dtrParams)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SLA bound θ = %.0f ms, penalty = %g + %g per excess ms\n\n",
		opts.SLA.ThetaMs, opts.SLA.PenaltyA, opts.SLA.PenaltyB)
	fmt.Printf("%-22s %12s %10s %14s\n", "scheme", "SLA penalty", "violations", "low-pri cost")
	fmt.Printf("%-22s %12.1f %10d %14.1f\n", "STR (single topology)",
		str.Result.Lambda, str.Result.Violations, str.Result.PhiL)
	fmt.Printf("%-22s %12.1f %10d %14.1f\n\n", "DTR (dual topology)",
		dtr.Result.Lambda, dtr.Result.Violations, dtr.Result.PhiL)

	// Deploy the DTR weights on the MT-OSPF control plane and trace one
	// coast-to-coast flow per class.
	net, err := dualtopo.BuildOSPFNetwork(g, dtr.WH, dtr.WL)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := g.NodeByName("Seattle")
	dst, _ := g.NodeByName("Miami")
	for _, class := range []dualtopo.TopologyID{dualtopo.TopoHigh, dualtopo.TopoLow} {
		path, err := net.Forward(dualtopo.Packet{Src: src, Dst: dst, Class: class, FlowHash: 99})
		if err != nil {
			log.Fatal(err)
		}
		delay, err := net.PathDelay(path)
		if err != nil {
			log.Fatal(err)
		}
		name := "high-priority"
		if class == dualtopo.TopoLow {
			name = "low-priority "
		}
		fmt.Printf("%s Seattle->Miami: %s (%.1f ms propagation)\n", name, pathNames(g, path), delay)
	}
	fmt.Println("\nWith MT-OSPF the two classes follow their own topologies;")
	fmt.Println("the low-priority path avoids the links premium traffic loads.")
}

func pathNames(g *dualtopo.Graph, path []dualtopo.NodeID) string {
	out := ""
	for i, u := range path {
		if i > 0 {
			out += " > "
		}
		out += g.Name(u)
	}
	return out
}
