// sink_datacenter models the enterprise scenario from the paper's
// introduction: critical data-center traffic (e.g. backups) shares an IP
// network with ordinary best-effort load. Data centers are "sinks" — a few
// high-degree nodes exchanging premium traffic with many clients (§5.1.2's
// sink model). The example compares DTR's benefit when clients are scattered
// across the network vs clustered next to the data centers (Fig. 8), and
// validates the priority-queueing abstraction on the busiest link with the
// discrete-event queue simulator.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"dualtopo"
)

func main() {
	log.SetFlags(0)

	for _, placement := range []dualtopo.SinkPlacement{dualtopo.UniformClients, dualtopo.LocalClients} {
		name := "uniform clients (scattered offices)"
		if placement == dualtopo.LocalClients {
			name = "local clients (offices next to the data centers)"
		}
		fmt.Printf("== %s ==\n", name)
		runScenario(placement)
		fmt.Println()
	}
}

func runScenario(placement dualtopo.SinkPlacement) {
	rng := rand.New(rand.NewPCG(88, uint64(placement)))
	g, err := dualtopo.PowerLawTopology(30, 81, dualtopo.DefaultCapacity, rng)
	if err != nil {
		log.Fatal(err)
	}
	dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
	tl := dualtopo.GravityMatrix(30, rng)
	// 3 data centers, 20% of traffic is premium, pair density 10%.
	th, err := dualtopo.SinkHighPriorityMatrix(g, 3, 0.10, 0.20, tl.Total(), placement, rng)
	if err != nil {
		log.Fatal(err)
	}
	loads, err := dualtopo.RouteLoads(g, dualtopo.UniformWeights(g.NumEdges()), tl)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	scale := 0.55 * dualtopo.DefaultCapacity * float64(g.NumEdges()) / (sum / 0.80)
	th.Scale(scale)
	tl.Scale(scale)

	h, err := dualtopo.NewTopologyHandle("sink-datacenter", g, th, tl, dualtopo.DefaultOptions(), dualtopo.SessionPool{Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(sess)   //nolint:errcheck // process exits right after
	sess.SetRouteWorkers(0) // sole lease: use all cores
	ev := sess.Evaluator()
	strParams := dualtopo.STRDefaults()
	strParams.Iterations, strParams.Candidates = 1500, 5
	str, err := dualtopo.OptimizeSTR(ev, strParams)
	if err != nil {
		log.Fatal(err)
	}
	dtrParams := dualtopo.DTRDefaults()
	dtrParams.N, dtrParams.K = 800, 500
	dtr, err := dualtopo.OptimizeDTRFrom(ev, str.W, str.W, dtrParams)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  STR low-priority cost: %12.1f\n", str.Result.PhiL)
	fmt.Printf("  DTR low-priority cost: %12.1f   (RL = %.2f)\n",
		dtr.Result.PhiL, str.Result.PhiL/dtr.Result.PhiL)

	// Validate the priority-queueing model on the busiest DTR link: simulate
	// the two classes' packets through a strict-priority queue and compare
	// the high-priority sojourn with the M/M/1 prediction.
	busiest, hUtil, lUtil := busiestLink(g, dtr.Result)
	mu := 1.0 // normalize service rate; arrival rates are utilizations
	res, err := dualtopo.SimulateQueue(dualtopo.QueueConfig{
		ArrivalH: hUtil, ArrivalL: lUtil, ServiceRate: mu,
		Discipline: dualtopo.PreemptiveResume, Packets: 200000, Warmup: 2000, Seed: 9,
	})
	if err != nil {
		fmt.Printf("  queue validation skipped: %v\n", err)
		return
	}
	predicted := 1 / (mu - hUtil) // M/M/1 for the high class alone
	fmt.Printf("  busiest link %d: H-util %.2f, L-util %.2f\n", busiest, hUtil, lUtil)
	fmt.Printf("  premium sojourn on it: simulated %.2f vs M/M/1 prediction %.2f (normalized)\n",
		res.H.MeanSojourn, predicted)
}

func busiestLink(g *dualtopo.Graph, r *dualtopo.EvalResult) (dualtopo.EdgeID, float64, float64) {
	best := dualtopo.EdgeID(0)
	bestUtil := -1.0
	for i := range r.HLoads {
		cap := g.Edge(dualtopo.EdgeID(i)).Capacity
		h, l := r.HLoads[i]/cap, r.LLoads[i]/cap
		// Keep the queue stable for the simulation while picking a loaded link.
		if h+l > bestUtil && h+l < 0.95 {
			bestUtil = h + l
			best = dualtopo.EdgeID(i)
		}
	}
	cap := g.Edge(best).Capacity
	return best, r.HLoads[best] / cap, r.LLoads[best] / cap
}
