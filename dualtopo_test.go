package dualtopo_test

import (
	"context"
	"math"
	"math/rand/v2"
	"os"
	"testing"

	"dualtopo"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow: generate
// an instance, optimize STR and DTR, deploy the DTR weights on the OSPF
// control plane, and forward a packet per class.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	g, err := dualtopo.RandomTopology(15, 35, dualtopo.DefaultCapacity, rng)
	if err != nil {
		t.Fatal(err)
	}
	dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
	tl := dualtopo.GravityMatrix(15, rng)
	th, err := dualtopo.RandomHighPriorityMatrix(15, 0.1, 0.3, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dualtopo.NewTopologyHandle("e2e", g, th, tl, dualtopo.DefaultOptions(), dualtopo.SessionPool{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	sess, err := h.Session(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := h.Release(sess); err != nil {
			t.Errorf("release: %v", err)
		}
	}()
	ev := sess.Evaluator()

	strParams := dualtopo.STRDefaults()
	strParams.Iterations, strParams.Candidates, strParams.Workers = 200, 4, 1
	str, err := dualtopo.OptimizeSTR(ev, strParams)
	if err != nil {
		t.Fatal(err)
	}
	dtrParams := dualtopo.DTRDefaults()
	dtrParams.N, dtrParams.K, dtrParams.M, dtrParams.Workers = 100, 60, 30, 1
	dtr, err := dualtopo.OptimizeDTRFrom(ev, str.W, str.W, dtrParams)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started DTR can never be lexicographically worse than STR.
	if str.Best.Less(dtr.Best) {
		t.Fatalf("DTR %+v worse than its STR warm start %+v", dtr.Best, str.Best)
	}

	net, err := dualtopo.BuildOSPFNetwork(g, dtr.WH, dtr.WL)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []dualtopo.TopologyID{dualtopo.TopoHigh, dualtopo.TopoLow} {
		path, err := net.Forward(dualtopo.Packet{Src: 0, Dst: 7, Class: class, FlowHash: 9})
		if err != nil {
			t.Fatalf("class %d: %v", class, err)
		}
		if path[0] != 0 || path[len(path)-1] != 7 {
			t.Fatalf("class %d path endpoints: %v", class, path)
		}
	}
}

func TestGeneratorFacades(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	fams := dualtopo.TopologyFamilies()
	if len(fams) < 9 {
		t.Fatalf("families = %v, want >= 9", fams)
	}
	g, err := dualtopo.GenerateTopology("torus", dualtopo.TopologyParams{Rows: 4, Cols: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 {
		t.Fatalf("torus nodes = %d", g.NumNodes())
	}
	if len(dualtopo.TrafficModels()) < 6 {
		t.Fatalf("models = %v, want >= 6", dualtopo.TrafficModels())
	}
	tl := dualtopo.GravityMatrix(16, rng)
	th, err := dualtopo.GenerateHighPriorityMatrix("hotspot", g, tl.Total(), dualtopo.TrafficParams{F: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	frac := th.Total() / (th.Total() + tl.Total())
	if math.Abs(frac-0.2) > 1e-9 {
		t.Fatalf("hotspot fraction = %g", frac)
	}
}

func TestImportTopologyFacadeResolvesDefaults(t *testing.T) {
	// The wrapper must go through the registry: unset capacity resolves to
	// the family default (not zero) and the result is connectivity-checked.
	path := t.TempDir() + "/net.adj"
	if err := writeAdj(path, "a b\nb c\nc a\n"); err != nil {
		t.Fatal(err)
	}
	g, err := dualtopo.ImportTopology(path, dualtopo.TopologyParams{}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Capacity != dualtopo.DefaultCapacity {
			t.Fatalf("arc %d capacity = %g, want default %d", e.ID, e.Capacity, dualtopo.DefaultCapacity)
		}
	}
	if err := writeAdj(path, "a b\nc d\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := dualtopo.ImportTopology(path, dualtopo.TopologyParams{}, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("disconnected import accepted")
	}
}

func writeAdj(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}

func TestFortzThorupCostFacade(t *testing.T) {
	if got := dualtopo.FortzThorupCost(1.0/3, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Phi(1/3,1) = %v", got)
	}
}

func TestQueueFacade(t *testing.T) {
	res, err := dualtopo.SimulateQueue(dualtopo.QueueConfig{
		ArrivalH: 0.2, ArrivalL: 0.3, ServiceRate: 1,
		Discipline: dualtopo.PreemptiveResume, Packets: 20000, Warmup: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.MeanSojourn <= 0 || res.L.MeanSojourn <= res.H.MeanSojourn {
		t.Fatalf("implausible sojourns: H=%v L=%v", res.H.MeanSojourn, res.L.MeanSojourn)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := dualtopo.ExperimentIDs()
	if len(ids) != 20 {
		t.Fatalf("experiments = %d, want 20 (19 paper artifacts + extfail)", len(ids))
	}
	rep, err := dualtopo.RunExperiment("fig1", dualtopo.TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig1" {
		t.Fatalf("report id = %q", rep.ID)
	}
}

func TestPresetFacades(t *testing.T) {
	if dualtopo.TinyPreset().Name != "tiny" ||
		dualtopo.SmallPreset().Name != "small" ||
		dualtopo.PaperPreset().Name != "paper" {
		t.Fatal("preset names wrong")
	}
	// The paper preset must carry the publication budgets.
	if p := dualtopo.PaperPreset(); p.DTR.N != 300000 || p.DTR.K != 800000 {
		t.Fatalf("paper preset budgets = N=%d K=%d", p.DTR.N, p.DTR.K)
	}
}
