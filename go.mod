module dualtopo

go 1.23
