module dualtopo

go 1.24
