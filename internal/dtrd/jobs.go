package dtrd

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"dualtopo/internal/engine"
	"dualtopo/internal/experiments"
	"dualtopo/internal/search"
)

// job is one asynchronous weight search. Searches run for seconds to hours
// depending on budget, so POST .../search returns 202 with a job ID
// immediately; the goroutine holds one pooled session for the duration and
// clients poll GET /v1/jobs/{id}.
type job struct {
	id     string
	topoID string

	mu     sync.Mutex
	status string // running | done | failed
	result *SearchResult
	errMsg string
}

func (j *job) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{
		ID:       j.id,
		Topology: j.topoID,
		Status:   j.status,
		Result:   j.result,
		Error:    j.errMsg,
	}
}

func (j *job) finish(res *SearchResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.status = "failed"
		j.errMsg = err.Error()
		return
	}
	j.status = "done"
	j.result = res
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid search request: "+err.Error())
		return
	}
	if req.Budget == "" {
		req.Budget = "tiny"
	}
	preset, err := experiments.PresetByName(req.Budget)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if req.Guide < 0 || req.Guide > 1 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "guide must be in [0,1]")
		return
	}

	s.mu.Lock()
	s.nextJob++
	j := &job{id: fmt.Sprintf("j%d", s.nextJob), topoID: t.info.ID, status: "running"}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.mu.Unlock()

	s.jobsWG.Add(1)
	s.met.jobsRunning.Add(1)
	go func() {
		defer s.jobsWG.Done()
		defer s.met.jobsRunning.Add(-1)
		j.finish(s.runSearch(t, preset, req))
	}()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runSearch executes the dtropt pipeline on a pooled session: STR from unit
// weights (seed = request seed), then the paper's DTR heuristic warm-started
// from the STR setting (seed+1). Budgets and seeding match dtropt exactly,
// so a daemon search reproduces the batch CLI bit for bit.
func (s *Server) runSearch(t *topology, preset experiments.Preset, req SearchRequest) (*SearchResult, error) {
	sess, err := t.handle.Session(context.Background())
	if err != nil {
		if err == engine.ErrLeaseTimeout {
			return nil, fmt.Errorf("no session available for search: %w", err)
		}
		return nil, err
	}
	defer func() {
		sess.Reset()           // a search touches everything; hand the pool a clean slate
		t.handle.Release(sess) //nolint:errcheck // Reset just cleared any checkpoint
	}()

	ev := sess.Evaluator()
	strParams := preset.STR
	strParams.Seed = req.Seed
	str, err := search.STR(ev, strParams)
	if err != nil {
		return nil, err
	}
	dtrParams := preset.DTR
	dtrParams.Seed = req.Seed + 1
	dtrParams.Guide = req.Guide
	dtrParams.Prune = req.Prune
	dtr, err := search.DTRFrom(ev, str.W, str.W, dtrParams)
	if err != nil {
		return nil, err
	}
	return &SearchResult{
		STRWeights:  str.W,
		WH:          dtr.WH,
		WL:          dtr.WL,
		STRPhiH:     str.Result.PhiH,
		STRPhiL:     str.Result.PhiL,
		DTRPhiH:     dtr.Result.PhiH,
		DTRPhiL:     dtr.Result.PhiL,
		Evaluations: str.Evaluations + dtr.Evaluations,
	}, nil
}
