package dtrd

import (
	"strconv"
	"sync/atomic"
	"time"

	"dualtopo/internal/obs"
)

// metrics is the server's request-scoped telemetry: per-endpoint latency
// histograms (the p50/p99 source), request counts by endpoint and status
// code, an in-flight gauge, and a once-a-second QPS + quantile refresher.
type metrics struct {
	latency        *obs.HistogramVec // dtrd_request_seconds{endpoint}
	latencyAll     *obs.Histogram    // aggregate across endpoints
	requests       *obs.CounterVec   // dtrd_requests_total{endpoint,code}
	inflight       *obs.Gauge
	topologies     *obs.Gauge
	jobsRunning    *obs.Gauge
	leakedReleases *obs.Counter
	qps            *obs.Gauge
	p50, p99       *obs.Gauge

	total    atomic.Int64 // all requests, the QPS numerator
	lastSeen int64        // total at the previous tick (ticker goroutine only)
	stopCh   chan struct{}
	stopOnce atomic.Bool
}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		latency: r.HistogramVec("dtrd_request_seconds",
			"API request latency by endpoint.", obs.DefBuckets, "endpoint"),
		latencyAll: r.Histogram("dtrd_request_seconds_all",
			"API request latency across all endpoints.", obs.DefBuckets),
		requests: r.CounterVec("dtrd_requests_total",
			"API requests by endpoint and status code.", "endpoint", "code"),
		inflight: r.Gauge("dtrd_requests_inflight",
			"API requests currently being served."),
		topologies: r.Gauge("dtrd_topologies",
			"Topologies currently loaded."),
		jobsRunning: r.Gauge("dtrd_jobs_running",
			"Search jobs currently running."),
		leakedReleases: r.Counter("dtrd_leaked_releases_total",
			"Session releases that tripped the engine's checkpoint-leak assertion."),
		qps: r.Gauge("dtrd_qps",
			"API requests served in the last second."),
		p50: r.Gauge("dtrd_request_p50_seconds",
			"Estimated p50 API request latency (bucket upper bound)."),
		p99: r.Gauge("dtrd_request_p99_seconds",
			"Estimated p99 API request latency (bucket upper bound)."),
		stopCh: make(chan struct{}),
	}
	go m.tick()
	return m
}

func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.latency.With(endpoint).Observe(seconds)
	m.latencyAll.Observe(seconds)
	m.requests.With(endpoint, strconv.Itoa(code)).Inc()
	m.total.Add(1)
}

// tick refreshes the derived gauges once a second: QPS from the request
// counter delta, p50/p99 from the aggregate latency histogram.
func (m *metrics) tick() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			now := m.total.Load()
			m.qps.Set(float64(now - m.lastSeen))
			m.lastSeen = now
			if m.latencyAll.Count() > 0 {
				m.p50.Set(m.latencyAll.Quantile(0.50))
				m.p99.Set(m.latencyAll.Quantile(0.99))
			}
		}
	}
}

func (m *metrics) stop() {
	if m.stopOnce.CompareAndSwap(false, true) {
		close(m.stopCh)
	}
}
