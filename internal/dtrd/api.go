// Package dtrd implements the routing-as-a-service daemon: a long-lived
// HTTP+JSON server over the internal/engine session/handle API. Topologies
// are loaded once and kept hot; route evaluations, failure what-ifs and
// bounded-budget weight searches run against pooled engine sessions, so a
// request costs an evaluation — never a construction.
//
// The versioned JSON surface lives under /v1:
//
//	POST   /v1/topologies            load or generate a topology
//	GET    /v1/topologies            list loaded topologies
//	GET    /v1/topologies/{id}       describe one topology
//	DELETE /v1/topologies/{id}       unload (in-flight requests finish)
//	POST   /v1/topologies/{id}/route evaluate STR or DTR weights
//	POST   /v1/topologies/{id}/whatif sweep or compare under failures
//	POST   /v1/topologies/{id}/search start an async weight search
//	GET    /v1/jobs                  list search jobs
//	GET    /v1/jobs/{id}             poll one job
//	GET    /healthz                  liveness (503 while draining)
//
// plus the standard telemetry surface (/metrics, /metrics.json,
// /manifest.json, /debug/pprof/*) mounted on the same listener.
//
// Responses carry no timestamps and IDs are sequential ("t1", "j1", ...),
// so equal requests against a fresh server produce byte-equal responses —
// the property the golden tests pin.
package dtrd

// Error is the uniform failure envelope: every non-2xx response is
// {"error":{"code":..., "message":...}}.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse wraps Error for transport.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Error codes.
const (
	CodeBadRequest    = "bad_request"    // malformed JSON, invalid parameters (400)
	CodeNotFound      = "not_found"      // unknown topology or job ID (404)
	CodeUnroutable    = "unroutable"     // evaluation failed on this instance (422)
	CodePoolExhausted = "pool_exhausted" // every session leased past the timeout (503)
	CodeDraining      = "draining"       // server is shutting down (503)
	CodeInternal      = "internal"       // unexpected failure (500)
)

// LoadRequest describes a topology to generate through the scenario
// registries — the same parameter set dtropt/dtrfail accept, so a daemon
// load is bitwise the instance the equivalent batch invocation builds.
type LoadRequest struct {
	// Name is an optional caller label echoed in responses.
	Name string `json:"name,omitempty"`
	// Topology names the generator family (random, powerlaw, isp, waxman,
	// ring, grid, torus, hier); empty means random.
	Topology string `json:"topology,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`
	Links    int    `json:"links,omitempty"`
	// CapacityMbps is the per-arc capacity; 0 means the paper's 500.
	CapacityMbps float64 `json:"capacity_mbps,omitempty"`
	// Objective selects the evaluation kind: "load" (default) or "sla".
	Objective string  `json:"objective,omitempty"`
	ThetaMs   float64 `json:"theta_ms,omitempty"`
	// F and K are the paper's high-priority volume fraction and SD-pair
	// density.
	F       float64 `json:"f,omitempty"`
	K       float64 `json:"k,omitempty"`
	HPModel string  `json:"hp_model,omitempty"`
	Sinks   int     `json:"sinks,omitempty"`
	LPSinks int     `json:"lp_sinks,omitempty"`
	// TargetUtil scales traffic to this average link utilization (default
	// 0.6).
	TargetUtil float64 `json:"target_util,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// PoolSize bounds concurrently leased sessions for this topology; 0
	// means the server default (GOMAXPROCS).
	PoolSize int `json:"pool_size,omitempty"`
}

// TopologyInfo describes a loaded topology.
type TopologyInfo struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Topology  string `json:"topology"`
	Nodes     int    `json:"nodes"`
	Arcs      int    `json:"arcs"`
	Objective string `json:"objective"`
	Seed      uint64 `json:"seed"`
	PoolSize  int    `json:"pool_size"`
}

// TopologyList is the GET /v1/topologies response.
type TopologyList struct {
	Topologies []TopologyInfo `json:"topologies"`
}

// RouteRequest evaluates one weight setting. Exactly one form is valid:
// weights (STR — one topology carries both classes) or weights_high +
// weights_low (DTR). Weights are per-arc, positive, in arc-ID order; use
// 2147483647 (spf.Disabled) to exclude an arc.
type RouteRequest struct {
	Weights     []int `json:"weights,omitempty"`
	WeightsHigh []int `json:"weights_high,omitempty"`
	WeightsLow  []int `json:"weights_low,omitempty"`
}

// RouteResponse reports the evaluation of one weight setting.
type RouteResponse struct {
	Scheme string `json:"scheme"` // "str" or "dtr"
	// PhiH and PhiL are the class costs; Lambda and Violations are the SLA
	// penalty and violating-pair count (zero for load-based topologies).
	PhiH       float64 `json:"phi_h"`
	PhiL       float64 `json:"phi_l"`
	Lambda     float64 `json:"lambda"`
	Violations int     `json:"violations"`
	// AvgUtilization and MaxUtilization summarize per-arc (H+L)/C.
	AvgUtilization float64 `json:"avg_utilization"`
	MaxUtilization float64 `json:"max_utilization"`
}

// FailureModel selects the failure states a what-if sweeps: every
// single-link failure by default; "node", "srlg" and dual-link ("link",
// count 2) models as in the resilience package, with optional seeded
// sampling.
type FailureModel struct {
	Kind   string  `json:"kind,omitempty"`  // link | node | srlg
	Count  int     `json:"count,omitempty"` // links down per state (link kind)
	SRLGs  [][]int `json:"srlgs,omitempty"`
	Sample int     `json:"sample,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
}

// WhatIfRequest sweeps failure states under a routing scheme via the
// engine's checkpoint → delta → revert path. Weight forms:
//
//   - weights only: STR sweep
//   - weights_high + weights_low: DTR sweep
//   - all three: STR-vs-DTR comparison over the same states
type WhatIfRequest struct {
	Weights     []int         `json:"weights,omitempty"`
	WeightsHigh []int         `json:"weights_high,omitempty"`
	WeightsLow  []int         `json:"weights_low,omitempty"`
	Failures    *FailureModel `json:"failures,omitempty"`
}

// WhatIfState is one swept failure state. PhiL is absent for states that
// disconnect some demand.
type WhatIfState struct {
	Label        string   `json:"label"`
	PhiL         *float64 `json:"phi_l,omitempty"`
	Disconnected bool     `json:"disconnected,omitempty"`
}

// WhatIfCompare pairs the two schemes' per-state degradation factors
// (ΦL(state)/ΦL(intact)) over the states both survive.
type WhatIfCompare struct {
	Labels  []string  `json:"labels"`
	STR     []float64 `json:"str"`
	DTR     []float64 `json:"dtr"`
	BaseSTR float64   `json:"base_str_phi_l"`
	BaseDTR float64   `json:"base_dtr_phi_l"`
}

// WhatIfResponse reports a failure sweep or comparison.
type WhatIfResponse struct {
	Scheme        string         `json:"scheme"` // "str", "dtr" or "compare"
	States        int            `json:"states"`
	Survivors     int            `json:"survivors"`
	Disconnecting int            `json:"disconnecting"`
	BasePhiL      *float64       `json:"base_phi_l,omitempty"` // sweep forms
	Results       []WhatIfState  `json:"results,omitempty"`    // sweep forms
	Compare       *WhatIfCompare `json:"compare,omitempty"`    // compare form
}

// SearchRequest starts an asynchronous weight search: the STR baseline
// followed by the paper's DTR heuristic warm-started from it, exactly the
// dtropt pipeline (STR seed = seed, DTR seed = seed+1).
type SearchRequest struct {
	// Budget names a search preset: smoke, tiny, small or paper. Default
	// tiny.
	Budget string `json:"budget,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Guide biases DTR moves toward cost-attributed arcs; Prune skips
	// provably routing-invariant candidates.
	Guide float64 `json:"guide,omitempty"`
	Prune bool    `json:"prune,omitempty"`
}

// SearchResult is the completed search outcome.
type SearchResult struct {
	STRWeights  []int   `json:"str_weights"`
	WH          []int   `json:"dtr_high_weights"`
	WL          []int   `json:"dtr_low_weights"`
	STRPhiH     float64 `json:"str_phi_h"`
	STRPhiL     float64 `json:"str_phi_l"`
	DTRPhiH     float64 `json:"dtr_phi_h"`
	DTRPhiL     float64 `json:"dtr_phi_l"`
	Evaluations int64   `json:"evaluations"`
}

// JobInfo is the async-job envelope returned by POST .../search (202) and
// GET /v1/jobs/{id}.
type JobInfo struct {
	ID       string        `json:"id"`
	Topology string        `json:"topology"`
	Status   string        `json:"status"` // running | done | failed
	Result   *SearchResult `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// JobList is the GET /v1/jobs response.
type JobList struct {
	Jobs []JobInfo `json:"jobs"`
}
