package dtrd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dualtopo/internal/engine"
	"dualtopo/internal/eval"
	"dualtopo/internal/obs"
	"dualtopo/internal/resilience"
	"dualtopo/internal/scenario"
	"dualtopo/internal/spf"
)

// Config parameterizes a Server.
type Config struct {
	// PoolSize is the default per-topology session pool size; 0 means
	// GOMAXPROCS. A LoadRequest's pool_size overrides it per topology.
	PoolSize int
	// LeaseTimeout bounds how long a request waits for a pooled session
	// before 503 pool_exhausted; 0 means the engine default (5s).
	LeaseTimeout time.Duration
	// Registry receives the server's metrics and backs /metrics; nil means
	// obs.Default().
	Registry *obs.Registry
	// Manifest, when non-nil, is served at /manifest.json.
	Manifest *obs.Manifest
}

// Server is the routing-as-a-service daemon core: topology registry, job
// registry, the /v1 handlers and the telemetry surface, all on one mux. It
// owns no listener — cmd/dtrd (and the tests) wrap Handler() in an
// http.Server.
type Server struct {
	cfg Config
	mux *http.ServeMux
	met *metrics

	mu        sync.Mutex
	topos     map[string]*topology
	topoOrder []string
	jobs      map[string]*job
	jobOrder  []string
	nextTopo  int
	nextJob   int

	draining atomic.Bool
	inflight sync.WaitGroup // HTTP requests in handlers
	jobsWG   sync.WaitGroup // background search jobs
}

// topology is one loaded instance: its engine handle plus the static info
// the API reports.
type topology struct {
	info   TopologyInfo
	handle *engine.Handle
}

// New builds a server. Call Close when done to stop its metrics ticker.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		met:   newMetrics(cfg.Registry),
		topos: make(map[string]*topology),
		jobs:  make(map[string]*job),
	}
	s.routes()
	obs.Mount(s.mux, cfg.Registry, cfg.Manifest)
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/topologies", s.wrap("load", s.handleLoad))
	s.mux.HandleFunc("GET /v1/topologies", s.wrap("list", s.handleList))
	s.mux.HandleFunc("GET /v1/topologies/{id}", s.wrap("get", s.handleGet))
	s.mux.HandleFunc("DELETE /v1/topologies/{id}", s.wrap("delete", s.handleDelete))
	s.mux.HandleFunc("POST /v1/topologies/{id}/route", s.wrap("route", s.handleRoute))
	s.mux.HandleFunc("POST /v1/topologies/{id}/whatif", s.wrap("whatif", s.handleWhatIf))
	s.mux.HandleFunc("POST /v1/topologies/{id}/search", s.wrap("search", s.handleSearch))
	s.mux.HandleFunc("GET /v1/jobs", s.wrap("jobs", s.handleJobs))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.wrap("job", s.handleJob))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// Handler returns the server's full HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the server's background resources (the metrics ticker) and
// closes every loaded topology. It does not drain; call Drain/WaitIdle
// first for a graceful stop.
func (s *Server) Close() {
	s.met.stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.topos {
		t.handle.Close()
	}
}

// Drain flips the server into shutdown mode: every new /v1 request is
// refused with 503 draining while in-flight requests (and the telemetry
// endpoints) keep working.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until every in-flight request and background job has
// finished, or ctx expires.
func (s *Server) WaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusWriter captures the response code for the requests-by-code counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap is the per-endpoint middleware: drain gate, in-flight accounting,
// latency and request metrics.
func (s *Server) wrap(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		fn(sw, r)
		elapsed := time.Since(start).Seconds()
		s.met.observe(endpoint, sw.code, elapsed)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-write
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: Error{Code: code, Message: msg}})
}

// decode strictly parses the request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// topo resolves {id}, writing 404 when unknown.
func (s *Server) topo(w http.ResponseWriter, r *http.Request) *topology {
	id := r.PathValue("id")
	s.mu.Lock()
	t := s.topos[id]
	s.mu.Unlock()
	if t == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown topology "+id)
		return nil
	}
	return t
}

// session leases an engine session for the request, mapping lease failures
// to their HTTP shapes.
func (s *Server) session(w http.ResponseWriter, r *http.Request, t *topology) *engine.Session {
	sess, err := t.handle.Session(r.Context())
	switch {
	case err == nil:
		return sess
	case errors.Is(err, engine.ErrLeaseTimeout):
		writeError(w, http.StatusServiceUnavailable, CodePoolExhausted,
			"all sessions leased; retry or raise pool_size")
	case errors.Is(err, engine.ErrClosed):
		writeError(w, http.StatusNotFound, CodeNotFound, "topology was deleted")
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
	return nil
}

// release returns a session, surfacing the leaked-checkpoint assertion as a
// 500 if the handler forgot to revert (response may already be written; the
// metric and log-visible counter are the real signal).
func (s *Server) release(t *topology, sess *engine.Session) {
	if err := t.handle.Release(sess); err != nil {
		s.met.leakedReleases.Inc()
	}
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid load request: "+err.Error())
		return
	}
	kind := eval.LoadBased
	switch req.Objective {
	case "", "load":
		req.Objective = "load"
	case "sla":
		kind = eval.SLABased
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown objective %q (load|sla)", req.Objective))
		return
	}
	poolSize := req.PoolSize
	if poolSize == 0 {
		poolSize = s.cfg.PoolSize
	}
	spec := engine.Spec{
		Name: req.Name,
		Instance: scenario.InstanceSpec{
			Topology:   req.Topology,
			Nodes:      req.Nodes,
			Links:      req.Links,
			Capacity:   req.CapacityMbps,
			Kind:       kind,
			ThetaMs:    req.ThetaMs,
			F:          req.F,
			K:          req.K,
			HPModel:    req.HPModel,
			Sinks:      req.Sinks,
			LPSinks:    req.LPSinks,
			TargetUtil: req.TargetUtil,
			Seed:       req.Seed,
		},
		Pool: engine.PoolConfig{Size: poolSize, LeaseTimeout: s.cfg.LeaseTimeout},
	}
	h, err := engine.Load(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	family := req.Topology
	if family == "" {
		family = scenario.TopoRandom
	}
	s.mu.Lock()
	s.nextTopo++
	id := fmt.Sprintf("t%d", s.nextTopo)
	info := TopologyInfo{
		ID:        id,
		Name:      req.Name,
		Topology:  family,
		Nodes:     h.Graph().NumNodes(),
		Arcs:      h.Graph().NumEdges(),
		Objective: req.Objective,
		Seed:      req.Seed,
		PoolSize:  h.PoolSize(),
	}
	s.topos[id] = &topology{info: info, handle: h}
	s.topoOrder = append(s.topoOrder, id)
	s.mu.Unlock()
	s.met.topologies.Add(1)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := TopologyList{Topologies: []TopologyInfo{}}
	for _, id := range s.topoOrder {
		if t, ok := s.topos[id]; ok {
			list.Topologies = append(list.Topologies, t.info)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, t.info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	t := s.topos[id]
	delete(s.topos, id)
	s.mu.Unlock()
	if t == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown topology "+id)
		return
	}
	t.handle.Close()
	s.met.topologies.Add(-1)
	w.WriteHeader(http.StatusNoContent)
}

// weightsFor validates the request's weight vectors against the topology,
// returning (scheme, w, wH, wL). A scheme of "" means the request was
// invalid and the response is written.
func weightsFor(w http.ResponseWriter, t *topology, ws, wh, wl []int, allowCompare bool) (string, spf.Weights, spf.Weights, spf.Weights) {
	g := t.handle.Graph()
	check := func(name string, v []int) spf.Weights {
		if len(v) != g.NumEdges() {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("%s: got %d weights, topology has %d arcs", name, len(v), g.NumEdges()))
			return nil
		}
		wt := spf.Weights(v)
		if err := wt.Validate(g); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, name+": "+err.Error())
			return nil
		}
		return wt
	}
	hasSTR := len(ws) > 0
	hasDTR := len(wh) > 0 || len(wl) > 0
	switch {
	case hasSTR && hasDTR && allowCompare:
		wS, wH2, wL2 := check("weights", ws), check("weights_high", wh), check("weights_low", wl)
		if wS == nil || wH2 == nil || wL2 == nil {
			return "", nil, nil, nil
		}
		return "compare", wS, wH2, wL2
	case hasSTR && !hasDTR:
		wS := check("weights", ws)
		if wS == nil {
			return "", nil, nil, nil
		}
		return "str", wS, nil, nil
	case hasDTR && !hasSTR:
		wH2, wL2 := check("weights_high", wh), check("weights_low", wl)
		if wH2 == nil || wL2 == nil {
			return "", nil, nil, nil
		}
		return "dtr", nil, wH2, wL2
	default:
		msg := "provide weights (STR) or weights_high+weights_low (DTR)"
		if allowCompare {
			msg += ", or all three to compare"
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, msg)
		return "", nil, nil, nil
	}
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	var req RouteRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid route request: "+err.Error())
		return
	}
	scheme, ws, wh, wl := weightsFor(w, t, req.Weights, req.WeightsHigh, req.WeightsLow, false)
	if scheme == "" {
		return
	}
	sess := s.session(w, r, t)
	if sess == nil {
		return
	}
	defer s.release(t, sess)
	var res *eval.Result
	var err error
	if scheme == "str" {
		res, err = sess.EvaluateSTR(ws)
	} else {
		res, err = sess.EvaluateDTR(wh, wl)
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnroutable, err.Error())
		return
	}
	g := t.handle.Graph()
	writeJSON(w, http.StatusOK, RouteResponse{
		Scheme:         scheme,
		PhiH:           res.PhiH,
		PhiL:           res.PhiL,
		Lambda:         res.Lambda,
		Violations:     res.Violations,
		AvgUtilization: res.AvgUtilization(g),
		MaxUtilization: res.MaxUtilization(g),
	})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	var req WhatIfRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid whatif request: "+err.Error())
		return
	}
	scheme, ws, wh, wl := weightsFor(w, t, req.Weights, req.WeightsHigh, req.WeightsLow, true)
	if scheme == "" {
		return
	}
	fm := FailureModel{}
	if req.Failures != nil {
		fm = *req.Failures
	}
	model := resilience.Model{
		Kind: fm.Kind, Count: fm.Count, SRLGs: fm.SRLGs,
		Sample: fm.Sample, Seed: fm.Seed,
	}
	states, err := resilience.Enumerate(t.handle.Graph(), model)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "failure model: "+err.Error())
		return
	}
	sess := s.session(w, r, t)
	if sess == nil {
		return
	}
	defer s.release(t, sess)
	if scheme == "compare" {
		samples, err := sess.CompareUnderFailures(ws, wh, wl, states)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, CodeUnroutable, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, WhatIfResponse{
			Scheme:        "compare",
			States:        len(states),
			Survivors:     len(samples.Labels),
			Disconnecting: samples.Disconnecting,
			Compare: &WhatIfCompare{
				Labels:  samples.Labels,
				STR:     samples.STR,
				DTR:     samples.DTR,
				BaseSTR: samples.BaseSTR,
				BaseDTR: samples.BaseDTR,
			},
		})
		return
	}
	var sweep *resilience.Sweep
	if scheme == "str" {
		sweep, err = sess.SweepSTR(ws, states)
	} else {
		sweep, err = sess.SweepDTR(wh, wl, states)
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnroutable, err.Error())
		return
	}
	resp := WhatIfResponse{
		Scheme:        scheme,
		States:        len(states),
		Survivors:     sweep.Survivors,
		Disconnecting: sweep.Disconnecting,
		BasePhiL:      &sweep.Base,
		Results:       make([]WhatIfState, len(states)),
	}
	for i := range states {
		st := WhatIfState{Label: states[i].Label}
		if math.IsNaN(sweep.PhiL[i]) {
			st.Disconnected = true
		} else {
			phi := sweep.PhiL[i]
			st.PhiL = &phi
		}
		resp.Results[i] = st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := JobList{Jobs: []JobInfo{}}
	for _, id := range s.jobOrder {
		if j, ok := s.jobs[id]; ok {
			list.Jobs = append(list.Jobs, j.snapshot())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+id)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}
