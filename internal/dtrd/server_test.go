package dtrd

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dualtopo/internal/eval"
	"dualtopo/internal/experiments"
	"dualtopo/internal/obs"
	"dualtopo/internal/resilience"
	"dualtopo/internal/scenario"
	"dualtopo/internal/search"
	"dualtopo/internal/spf"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// testServer boots a fresh daemon on an isolated registry; every test gets
// its own so IDs (t1, j1, ...) are deterministic.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// do issues one request and returns (status, body).
func do(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// golden asserts got matches testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test ./internal/dtrd -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n got: %s\nwant: %s", name, got, want)
	}
}

// marshalReq fixes the request wire format and pins it as a fixture too, so
// the testdata directory documents both sides of each exchange.
func marshalReq(t *testing.T, name string, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	golden(t, name, data)
	return data
}

// testLoad is the instance every API test loads: 12 nodes, 30 links, 60
// arcs, seeded.
func testLoad() LoadRequest {
	return LoadRequest{
		Name:       "golden",
		Topology:   "random",
		Nodes:      12,
		Links:      30,
		TargetUtil: 0.6,
		Seed:       5,
	}
}

func testSpec() scenario.InstanceSpec {
	return scenario.InstanceSpec{
		Topology:   "random",
		Nodes:      12,
		Links:      30,
		TargetUtil: 0.6,
		Seed:       5,
	}
}

// perturb derives the q-th deterministic weight setting for n arcs.
func perturb(n, q int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1 + (i*7+q*13)%9
	}
	return w
}

// loadTestTopo loads the standard instance and returns its arc count.
func loadTestTopo(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	body, err := json.Marshal(testLoad())
	if err != nil {
		t.Fatal(err)
	}
	code, resp := do(t, "POST", ts.URL+"/v1/topologies", body)
	if code != http.StatusCreated {
		t.Fatalf("load: code %d: %s", code, resp)
	}
	var info TopologyInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		t.Fatal(err)
	}
	return info.Arcs
}

func TestGoldenTopologyLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})

	// POST /v1/topologies
	req := marshalReq(t, "load_request.json", testLoad())
	code, body := do(t, "POST", ts.URL+"/v1/topologies", req)
	if code != http.StatusCreated {
		t.Fatalf("load code %d: %s", code, body)
	}
	golden(t, "load_response.json", body)

	// POST with an invalid objective — error shape
	bad := marshalReq(t, "load_bad_request.json", LoadRequest{Objective: "fastest"})
	code, body = do(t, "POST", ts.URL+"/v1/topologies", bad)
	if code != http.StatusBadRequest {
		t.Fatalf("bad load code %d: %s", code, body)
	}
	golden(t, "load_bad_response.json", body)

	// GET /v1/topologies
	code, body = do(t, "GET", ts.URL+"/v1/topologies", nil)
	if code != http.StatusOK {
		t.Fatalf("list code %d: %s", code, body)
	}
	golden(t, "list_response.json", body)

	// GET /v1/topologies/t1
	code, body = do(t, "GET", ts.URL+"/v1/topologies/t1", nil)
	if code != http.StatusOK {
		t.Fatalf("get code %d: %s", code, body)
	}
	golden(t, "get_response.json", body)

	// GET unknown — error shape
	code, body = do(t, "GET", ts.URL+"/v1/topologies/t99", nil)
	if code != http.StatusNotFound {
		t.Fatalf("get unknown code %d: %s", code, body)
	}
	golden(t, "get_missing_response.json", body)

	// DELETE /v1/topologies/t1
	code, body = do(t, "DELETE", ts.URL+"/v1/topologies/t1", nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete code %d: %s", code, body)
	}
	if len(body) != 0 {
		t.Fatalf("delete body = %q, want empty", body)
	}
	// ...and it is gone.
	code, _ = do(t, "GET", ts.URL+"/v1/topologies/t1", nil)
	if code != http.StatusNotFound {
		t.Fatalf("get after delete code %d", code)
	}
}

func TestGoldenRoute(t *testing.T) {
	_, ts := testServer(t, Config{})
	arcs := loadTestTopo(t, ts)

	// STR
	req := marshalReq(t, "route_str_request.json", RouteRequest{Weights: perturb(arcs, 3)})
	code, body := do(t, "POST", ts.URL+"/v1/topologies/t1/route", req)
	if code != http.StatusOK {
		t.Fatalf("route str code %d: %s", code, body)
	}
	golden(t, "route_str_response.json", body)

	// DTR
	req = marshalReq(t, "route_dtr_request.json", RouteRequest{
		WeightsHigh: perturb(arcs, 5), WeightsLow: perturb(arcs, 8),
	})
	code, body = do(t, "POST", ts.URL+"/v1/topologies/t1/route", req)
	if code != http.StatusOK {
		t.Fatalf("route dtr code %d: %s", code, body)
	}
	golden(t, "route_dtr_response.json", body)

	// Wrong weight count — error shape
	req = marshalReq(t, "route_bad_request.json", RouteRequest{Weights: []int{1, 2, 3}})
	code, body = do(t, "POST", ts.URL+"/v1/topologies/t1/route", req)
	if code != http.StatusBadRequest {
		t.Fatalf("route bad code %d: %s", code, body)
	}
	golden(t, "route_bad_response.json", body)

	// No weights at all — error shape
	code, body = do(t, "POST", ts.URL+"/v1/topologies/t1/route", []byte("{}"))
	if code != http.StatusBadRequest {
		t.Fatalf("route empty code %d: %s", code, body)
	}
	golden(t, "route_empty_response.json", body)
}

func TestGoldenWhatIf(t *testing.T) {
	_, ts := testServer(t, Config{})
	arcs := loadTestTopo(t, ts)

	// STR sweep over every single-link failure
	req := marshalReq(t, "whatif_str_request.json", WhatIfRequest{Weights: perturb(arcs, 3)})
	code, body := do(t, "POST", ts.URL+"/v1/topologies/t1/whatif", req)
	if code != http.StatusOK {
		t.Fatalf("whatif str code %d: %s", code, body)
	}
	golden(t, "whatif_str_response.json", body)

	// STR-vs-DTR comparison on a seeded sample
	req = marshalReq(t, "whatif_compare_request.json", WhatIfRequest{
		Weights:     perturb(arcs, 3),
		WeightsHigh: perturb(arcs, 5),
		WeightsLow:  perturb(arcs, 8),
		Failures:    &FailureModel{Kind: "link", Sample: 6, Seed: 42},
	})
	code, body = do(t, "POST", ts.URL+"/v1/topologies/t1/whatif", req)
	if code != http.StatusOK {
		t.Fatalf("whatif compare code %d: %s", code, body)
	}
	golden(t, "whatif_compare_response.json", body)

	// Invalid failure model — error shape
	req = marshalReq(t, "whatif_bad_request.json", WhatIfRequest{
		Weights:  perturb(arcs, 3),
		Failures: &FailureModel{Kind: "meteor"},
	})
	code, body = do(t, "POST", ts.URL+"/v1/topologies/t1/whatif", req)
	if code != http.StatusBadRequest {
		t.Fatalf("whatif bad code %d: %s", code, body)
	}
	golden(t, "whatif_bad_response.json", body)
}

func TestGoldenSearchJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	loadTestTopo(t, ts)

	req := marshalReq(t, "search_request.json", SearchRequest{Budget: "smoke", Seed: 9})
	code, body := do(t, "POST", ts.URL+"/v1/topologies/t1/search", req)
	if code != http.StatusAccepted {
		t.Fatalf("search code %d: %s", code, body)
	}
	golden(t, "search_accepted_response.json", body)

	final := pollJob(t, ts, "j1")
	golden(t, "job_done_response.json", final)

	// GET /v1/jobs lists it.
	code, body = do(t, "GET", ts.URL+"/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("jobs code %d: %s", code, body)
	}
	golden(t, "jobs_response.json", body)

	// Unknown job — error shape
	code, body = do(t, "GET", ts.URL+"/v1/jobs/j99", nil)
	if code != http.StatusNotFound {
		t.Fatalf("job unknown code %d: %s", code, body)
	}
	golden(t, "job_missing_response.json", body)

	// Unknown budget — error shape
	code, body = do(t, "POST", ts.URL+"/v1/topologies/t1/search",
		[]byte(`{"budget":"galactic"}`))
	if code != http.StatusBadRequest {
		t.Fatalf("search bad code %d: %s", code, body)
	}
	golden(t, "search_bad_response.json", body)
}

// pollJob waits for the job to leave "running" and returns its final body.
func pollJob(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body := do(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("job poll code %d: %s", code, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status != "running" {
			if info.Status != "done" {
				t.Fatalf("job %s failed: %s", id, info.Error)
			}
			return body
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func sameFloat(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestRouteParityWithBatchEvaluator pins the acceptance criterion: an HTTP
// route evaluation is bitwise-identical to the hand-wired evaluator the
// batch CLIs (dtropt) construct for the same instance spec.
func TestRouteParityWithBatchEvaluator(t *testing.T) {
	_, ts := testServer(t, Config{})
	arcs := loadTestTopo(t, ts)

	inst, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatal(err)
	}

	w := perturb(arcs, 3)
	want, err := ev.EvaluateSTR(w)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(RouteRequest{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := do(t, "POST", ts.URL+"/v1/topologies/t1/route", body)
	if code != http.StatusOK {
		t.Fatalf("route code %d: %s", code, resp)
	}
	var got RouteResponse
	if err := json.Unmarshal(resp, &got); err != nil {
		t.Fatal(err)
	}
	if !sameFloat(got.PhiH, want.PhiH) || !sameFloat(got.PhiL, want.PhiL) ||
		!sameFloat(got.Lambda, want.Lambda) || got.Violations != want.Violations ||
		!sameFloat(got.AvgUtilization, want.AvgUtilization(inst.G)) ||
		!sameFloat(got.MaxUtilization, want.MaxUtilization(inst.G)) {
		t.Fatalf("HTTP route %+v differs bitwise from batch evaluator", got)
	}
}

// TestWhatIfParityWithBatchSweeper pins the same criterion for what-ifs
// against the dtrfail pipeline: Enumerate + Sweeper + CompareSchemes.
func TestWhatIfParityWithBatchSweeper(t *testing.T) {
	_, ts := testServer(t, Config{})
	arcs := loadTestTopo(t, ts)

	inst, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatal(err)
	}
	states, err := resilience.Enumerate(inst.G, resilience.Model{Kind: "link"})
	if err != nil {
		t.Fatal(err)
	}
	sweeper := resilience.NewSweeper(ev, resilience.Options{})
	wSTR, wH, wL := perturb(arcs, 3), perturb(arcs, 5), perturb(arcs, 8)
	want, err := resilience.CompareSchemes(sweeper, wSTR, wH, wL, states)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(WhatIfRequest{Weights: wSTR, WeightsHigh: wH, WeightsLow: wL})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := do(t, "POST", ts.URL+"/v1/topologies/t1/whatif", body)
	if code != http.StatusOK {
		t.Fatalf("whatif code %d: %s", code, resp)
	}
	var got WhatIfResponse
	if err := json.Unmarshal(resp, &got); err != nil {
		t.Fatal(err)
	}
	if got.Compare == nil {
		t.Fatal("no compare section in response")
	}
	if !sameFloat(got.Compare.BaseSTR, want.BaseSTR) || !sameFloat(got.Compare.BaseDTR, want.BaseDTR) ||
		got.Disconnecting != want.Disconnecting || len(got.Compare.STR) != len(want.STR) {
		t.Fatalf("HTTP compare header differs from batch sweeper")
	}
	for i := range want.STR {
		if got.Compare.Labels[i] != want.Labels[i] ||
			!sameFloat(got.Compare.STR[i], want.STR[i]) ||
			!sameFloat(got.Compare.DTR[i], want.DTR[i]) {
			t.Fatalf("sample %d differs bitwise from batch sweeper", i)
		}
	}
}

// TestSearchParityWithBatchPipeline pins job results against the dtropt
// pipeline run directly: STR (seed) then DTRFrom (seed+1) on the same
// budget.
func TestSearchParityWithBatchPipeline(t *testing.T) {
	_, ts := testServer(t, Config{})
	loadTestTopo(t, ts)

	body, err := json.Marshal(SearchRequest{Budget: "smoke", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := do(t, "POST", ts.URL+"/v1/topologies/t1/search", body)
	if code != http.StatusAccepted {
		t.Fatalf("search code %d: %s", code, resp)
	}
	var info JobInfo
	if err := json.Unmarshal(pollJob(t, ts, "j1"), &info); err != nil {
		t.Fatal(err)
	}

	inst, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatal(err)
	}
	preset, err := experiments.PresetByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	strParams := preset.STR
	strParams.Seed = 9
	str, err := search.STR(ev, strParams)
	if err != nil {
		t.Fatal(err)
	}
	dtrParams := preset.DTR
	dtrParams.Seed = 10
	dtr, err := search.DTRFrom(ev, str.W, str.W, dtrParams)
	if err != nil {
		t.Fatal(err)
	}

	got := info.Result
	if got == nil {
		t.Fatal("job finished without a result")
	}
	if !equalInts(got.STRWeights, str.W) || !equalInts(got.WH, dtr.WH) || !equalInts(got.WL, dtr.WL) {
		t.Fatal("job weights differ from batch pipeline")
	}
	if !sameFloat(got.STRPhiL, str.Result.PhiL) || !sameFloat(got.DTRPhiL, dtr.Result.PhiL) {
		t.Fatal("job costs differ bitwise from batch pipeline")
	}
}

func equalInts(a []int, b spf.Weights) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentRequestsMatchSequential replays the same query mix
// sequentially and then from 16 goroutines; every response body must be
// byte-identical, proving pooled sessions leak no state across requests.
func TestConcurrentRequestsMatchSequential(t *testing.T) {
	_, ts := testServer(t, Config{PoolSize: 4})
	arcs := loadTestTopo(t, ts)

	const queries = 16
	type query struct {
		path string
		body []byte
	}
	qs := make([]query, queries)
	for i := range qs {
		if i%2 == 0 {
			b, err := json.Marshal(RouteRequest{Weights: perturb(arcs, i)})
			if err != nil {
				t.Fatal(err)
			}
			qs[i] = query{"/v1/topologies/t1/route", b}
		} else {
			b, err := json.Marshal(WhatIfRequest{
				Weights:  perturb(arcs, i),
				Failures: &FailureModel{Kind: "link", Sample: 5, Seed: uint64(i)},
			})
			if err != nil {
				t.Fatal(err)
			}
			qs[i] = query{"/v1/topologies/t1/whatif", b}
		}
	}

	want := make([][]byte, queries)
	for i, q := range qs {
		code, body := do(t, "POST", ts.URL+q.path, q.body)
		if code != http.StatusOK {
			t.Fatalf("sequential %d: code %d: %s", i, code, body)
		}
		want[i] = body
	}

	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q query) {
			defer wg.Done()
			code, body := do(t, "POST", ts.URL+q.path, q.body)
			if code != http.StatusOK {
				t.Errorf("concurrent %d: code %d: %s", i, code, body)
				return
			}
			if !bytes.Equal(body, want[i]) {
				t.Errorf("concurrent %d: body differs from sequential", i)
			}
		}(i, q)
	}
	wg.Wait()
}

// TestGracefulDrain drives the full drain protocol deterministically: with
// the topology's only session held, an in-flight request blocks on the
// lease; Drain() makes new requests 503 while the blocked one completes
// once the session frees; WaitIdle then returns.
func TestGracefulDrain(t *testing.T) {
	srv, ts := testServer(t, Config{})

	body, err := json.Marshal(LoadRequest{
		Topology: "random", Nodes: 12, Links: 30, TargetUtil: 0.6, Seed: 5,
		PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := do(t, "POST", ts.URL+"/v1/topologies", body)
	if code != http.StatusCreated {
		t.Fatalf("load code %d: %s", code, resp)
	}
	var info TopologyInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		t.Fatal(err)
	}

	// Hold the topology's only session so the next request must wait.
	srv.mu.Lock()
	h := srv.topos["t1"].handle
	srv.mu.Unlock()
	held, err := h.Session(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	routeBody, err := json.Marshal(RouteRequest{Weights: perturb(info.Arcs, 1)})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body []byte
	}
	inFlight := make(chan result, 1)
	go func() {
		code, body := do(t, "POST", ts.URL+"/v1/topologies/t1/route", routeBody)
		inFlight <- result{code, body}
	}()

	// Wait until the request is inside the handler (blocked on the lease).
	waitFor(t, func() bool { return srv.met.inflight.Value() == 1 })

	srv.Drain()

	// New API requests are refused with the draining error shape.
	code, resp = do(t, "POST", ts.URL+"/v1/topologies/t1/route", routeBody)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request code %d: %s", code, resp)
	}
	golden(t, "draining_response.json", resp)
	if code, _ := do(t, "GET", ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", code)
	}
	// Telemetry keeps serving during the drain.
	if code, _ := do(t, "GET", ts.URL+"/metrics", nil); code != http.StatusOK {
		t.Fatalf("metrics while draining = %d, want 200", code)
	}

	// Free the session: the in-flight request must now complete normally.
	if err := h.Release(held); err != nil {
		t.Fatal(err)
	}
	r := <-inFlight
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request code %d: %s", r.code, r.body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

// TestMetricsSurface loads, routes, and asserts the serving metrics appear
// on /metrics with their TYPE headers.
func TestMetricsSurface(t *testing.T) {
	_, ts := testServer(t, Config{})
	arcs := loadTestTopo(t, ts)
	body, err := json.Marshal(RouteRequest{Weights: perturb(arcs, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if code, resp := do(t, "POST", ts.URL+"/v1/topologies/t1/route", body); code != http.StatusOK {
		t.Fatalf("route code %d: %s", code, resp)
	}
	code, metrics := do(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics code %d", code)
	}
	text := string(metrics)
	for _, want := range []string{
		"# TYPE dtrd_request_seconds histogram",
		"# TYPE dtrd_requests_total counter",
		"# TYPE dtrd_request_p50_seconds gauge",
		"# TYPE dtrd_request_p99_seconds gauge",
		"# TYPE dtrd_qps gauge",
		`endpoint="route"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("dtrd_topologies %d", 1)) {
		t.Errorf("metrics output missing dtrd_topologies 1")
	}
}
