package cost

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPhiExactValuesFromPaper(t *testing.T) {
	// The §3.3.1 triangle example gives exact rational values.
	// High priority: 1/3 units on a unit-capacity link costs 1/3.
	if got := Phi(1.0/3, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Phi(1/3, 1) = %v, want 1/3", got)
	}
	// Low priority: 2/3 units against residual 2/3 costs 64/9.
	if got := Phi(2.0/3, 2.0/3); math.Abs(got-64.0/9) > 1e-12 {
		t.Fatalf("Phi(2/3, 2/3) = %v, want 64/9", got)
	}
	// Split case: 1/3 units against residual 5/6 costs 4/9.
	if got := Phi(1.0/3, 5.0/6); math.Abs(got-4.0/9) > 1e-12 {
		t.Fatalf("Phi(1/3, 5/6) = %v, want 4/9", got)
	}
}

func TestPhiSegments(t *testing.T) {
	const c = 300.0
	cases := []struct {
		util float64
		want float64
	}{
		{0.2, 0.2 * c},                      // segment 1: Φ = x
		{0.5, 3*0.5*c - 2.0/3*c},            // segment 2
		{0.8, 10*0.8*c - 16.0/3*c},          // segment 3
		{0.95, 70*0.95*c - 178.0/3*c},       // segment 4
		{1.05, 500*1.05*c - 1468.0/3*c},     // segment 5
		{1.5, 5000*1.5*c - 16318.0/3*c},     // segment 6
		{11.0 / 10, 500*1.1*c - 1468.0/3*c}, // boundary belongs to lower segment
	}
	for _, tc := range cases {
		if got := Phi(tc.util*c, c); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Phi(util=%.3f) = %g, want %g", tc.util, got, tc.want)
		}
	}
}

func TestPhiZeroLoadAndZeroCapacity(t *testing.T) {
	if got := Phi(0, 100); got != 0 {
		t.Fatalf("Phi(0, 100) = %g", got)
	}
	if got := Phi(-1, 100); got != 0 {
		t.Fatalf("Phi(-1, 100) = %g, want 0", got)
	}
	if got := Phi(2, 0); got != 10000 {
		t.Fatalf("Phi(2, 0) = %g, want 10000 (steepest slope)", got)
	}
}

func TestPhiContinuityAtBreakpoints(t *testing.T) {
	const c = 500.0
	const eps = 1e-9
	// Crossing a breakpoint by 2·eps·c load can legitimately change the cost
	// by slope·2·eps·c; anything beyond that is a jump.
	const maxSlope = 5000.0
	tol := 2*maxSlope*eps*c + 1e-6
	for _, b := range []float64{1.0 / 3, 2.0 / 3, 9.0 / 10, 1, 11.0 / 10} {
		lo := Phi((b-eps)*c, c)
		hi := Phi((b+eps)*c, c)
		if math.Abs(hi-lo) > tol {
			t.Errorf("discontinuity at u=%.4f: %g vs %g", b, lo, hi)
		}
	}
}

// TestPhiMonotoneConvex: Phi is nondecreasing and convex in load for any
// capacity — properties the local search relies on.
func TestPhiMonotoneConvex(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		c := 1 + rng.Float64()*999
		x1 := rng.Float64() * 2 * c
		x2 := x1 + rng.Float64()*c
		p1, p2 := Phi(x1, c), Phi(x2, c)
		tol := 1e-9 * (math.Abs(p1) + math.Abs(p2) + 1)
		if p1 > p2+tol {
			return false // not monotone
		}
		// Convexity: midpoint below chord.
		mid := Phi((x1+x2)/2, c)
		chord := (p1 + p2) / 2
		return mid <= chord+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPhiDerivative(t *testing.T) {
	if got := PhiDerivative(10, 100); got != 1 {
		t.Fatalf("slope at 10%% = %g", got)
	}
	if got := PhiDerivative(95, 100); got != 70 {
		t.Fatalf("slope at 95%% = %g", got)
	}
	if got := PhiDerivative(200, 100); got != 5000 {
		t.Fatalf("slope at 200%% = %g", got)
	}
	if got := PhiDerivative(5, 0); got != 5000 {
		t.Fatalf("slope at zero capacity = %g", got)
	}
}

func TestResidual(t *testing.T) {
	if got := Residual(500, 200); got != 300 {
		t.Fatalf("Residual = %g", got)
	}
	if got := Residual(500, 700); got != 0 {
		t.Fatalf("over-capacity residual = %g, want 0", got)
	}
	if got := Residual(500, 500); got != 0 {
		t.Fatalf("exact residual = %g, want 0", got)
	}
}

func TestLexOrdering(t *testing.T) {
	cases := []struct {
		l, r Lex
		want int
	}{
		{Lex{1, 9}, Lex{2, 0}, -1}, // primary dominates
		{Lex{2, 0}, Lex{1, 9}, 1},
		{Lex{1, 1}, Lex{1, 2}, -1}, // secondary breaks ties
		{Lex{1, 2}, Lex{1, 2}, 0},
	}
	for _, tc := range cases {
		if got := tc.l.Compare(tc.r); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.l, tc.r, got, tc.want)
		}
	}
	if !(Lex{0, 1}).Less(Lex{0, 2}) {
		t.Fatal("Less on secondary failed")
	}
}

// TestLexTransitive: lexicographic order must be a strict weak order.
func TestLexTransitive(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 float64) bool {
		a, b, c := Lex{a1, a2}, Lex{b1, b2}, Lex{c1, c2}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false // asymmetry
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSLA(t *testing.T) {
	s := DefaultSLA()
	if s.ThetaMs != 25 || s.PenaltyA != 100 || s.PenaltyB != 1 {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestPairPenalty(t *testing.T) {
	s := DefaultSLA()
	if got := s.PairPenalty(20); got != 0 {
		t.Fatalf("penalty within bound = %g", got)
	}
	if got := s.PairPenalty(25); got != 0 {
		t.Fatalf("penalty at bound = %g, want 0", got)
	}
	if got := s.PairPenalty(30); got != 105 {
		t.Fatalf("penalty 5ms over = %g, want 105 (a=100 + b*5)", got)
	}
	if got := s.PairPenalty(math.Inf(1)); !math.IsInf(got, 1) {
		t.Fatalf("penalty for unreachable = %g, want +Inf", got)
	}
	if !s.Violated(25.01) || s.Violated(25) {
		t.Fatal("Violated boundary wrong")
	}
}

func TestLinkDelayExact(t *testing.T) {
	s := DefaultSLA()
	// Unloaded 500 Mbps link: delay = transmission + propagation.
	want := 8000.0/(500*1000) + 10
	if got := s.LinkDelayExact(0, 500, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("unloaded delay = %g, want %g", got, want)
	}
	// At 50% load the M/M/1 factor doubles the queueing term.
	want = 8000.0 / (500 * 1000) * 2 // + 0 propagation
	if got := s.LinkDelayExact(250, 500, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("half-load delay = %g, want %g", got, want)
	}
	if got := s.LinkDelayExact(500, 500, 0); !math.IsInf(got, 1) {
		t.Fatalf("saturated exact delay = %g, want +Inf", got)
	}
}

func TestLinkDelayApproxTracksExact(t *testing.T) {
	// In the stable region the Φ/C approximation from [18] should stay
	// within a small factor of the exact M/M/1 delay.
	s := DefaultSLA()
	for _, util := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		h := util * 500
		exact := s.LinkDelayExact(h, 500, 0)
		approx := s.LinkDelayApprox(Phi(h, 500), 500, 0)
		ratio := approx / exact
		if ratio < 0.3 || ratio > 3.5 {
			t.Errorf("util %.1f: approx/exact = %.2f (approx %g, exact %g)", util, ratio, approx, exact)
		}
	}
}

func TestLinkDelayApproxFiniteWhenOverloaded(t *testing.T) {
	s := DefaultSLA()
	got := s.LinkDelayApprox(Phi(600, 500), 500, 5)
	if math.IsInf(got, 1) || got <= 5 {
		t.Fatalf("overloaded approx delay = %g, want finite > propagation", got)
	}
}

func TestRelaxed(t *testing.T) {
	s := DefaultSLA()
	r := s.Relaxed(0.2)
	if math.Abs(r.ThetaMs-30) > 1e-12 {
		t.Fatalf("relaxed theta = %g, want 30", r.ThetaMs)
	}
	if s.ThetaMs != 25 {
		t.Fatal("Relaxed mutated receiver")
	}
}
