// Package cost implements the paper's two objective families (§3): the
// load-based Fortz–Thorup piecewise-linear cost (Eq. 1) applied per class —
// with the low-priority class charged against residual capacity — and the
// SLA-based cost (Eq. 3–4) built from per-link delays and per-pair delay
// bounds, plus the lexicographic tuples used to order solutions (Eq. 2, 5).
package cost

import "math"

// Piecewise-linear segment boundaries (as utilization x = load/capacity) and
// slopes from Eq. (1). Intercepts (×capacity) make the function continuous.
var (
	ftBounds     = []float64{1.0 / 3, 2.0 / 3, 9.0 / 10, 1.0, 11.0 / 10}
	ftSlopes     = []float64{1, 3, 10, 70, 500, 5000}
	ftIntercepts = []float64{0, -2.0 / 3, -16.0 / 3, -178.0 / 3, -1468.0 / 3, -16318.0 / 3}
)

// Phi evaluates the Fortz–Thorup piecewise-linear link cost of Eq. (1) for
// the given load and capacity. For capacity <= 0 (a fully consumed residual
// link) the cost continues on the steepest segment, Phi = 5000·load, keeping
// the objective finite and monotone in load.
func Phi(load, capacity float64) float64 {
	if load <= 0 {
		return 0
	}
	if capacity <= 0 {
		return ftSlopes[len(ftSlopes)-1] * load
	}
	u := load / capacity
	seg := len(ftSlopes) - 1
	for i, b := range ftBounds {
		if u <= b {
			seg = i
			break
		}
	}
	return ftSlopes[seg]*load + ftIntercepts[seg]*capacity
}

// PhiDerivative returns the slope of Phi with respect to load at the given
// operating point — useful for ablations and sanity checks.
func PhiDerivative(load, capacity float64) float64 {
	if capacity <= 0 {
		return ftSlopes[len(ftSlopes)-1]
	}
	u := load / capacity
	for i, b := range ftBounds {
		if u <= b {
			return ftSlopes[i]
		}
	}
	return ftSlopes[len(ftSlopes)-1]
}

// Residual returns the capacity left for low-priority traffic on a link
// carrying h units of high-priority traffic: max(C − h, 0).
func Residual(capacity, h float64) float64 {
	if r := capacity - h; r > 0 {
		return r
	}
	return 0
}

// Lex is a lexicographically ordered pair ⟨Primary, Secondary⟩. The paper
// orders solutions by ⟨ΦH, ΦL⟩ (Eq. 2) or ⟨Λ, ΦL⟩ (Eq. 5), and links inside
// FindH by ⟨ΦH,l, ΦL,l⟩ or ⟨Dl, ΦL,l⟩.
type Lex struct {
	Primary, Secondary float64
}

// Less reports whether l precedes r in lexicographic order.
func (l Lex) Less(r Lex) bool {
	if l.Primary != r.Primary {
		return l.Primary < r.Primary
	}
	return l.Secondary < r.Secondary
}

// Compare returns -1, 0 or +1 as l is before, equal to, or after r.
func (l Lex) Compare(r Lex) int {
	switch {
	case l.Less(r):
		return -1
	case r.Less(l):
		return 1
	default:
		return 0
	}
}

// SLA holds the SLA-based cost parameters of §3.2 with the paper's defaults.
type SLA struct {
	ThetaMs        float64 // per-pair end-to-end delay bound θ (ms)
	PenaltyA       float64 // fixed penalty per violated pair (a)
	PenaltyB       float64 // penalty per ms of excess delay (b)
	PacketSizeBits float64 // average packet size s used in Eq. (3)
}

// DefaultSLA returns the paper's parameters: θ = 25 ms, a = 100, b = 1, and
// a 1000-byte average packet.
func DefaultSLA() SLA {
	return SLA{ThetaMs: 25, PenaltyA: 100, PenaltyB: 1, PacketSizeBits: 8000}
}

// transmissionMs returns s/C in milliseconds for capacity in Mbps.
func (s SLA) transmissionMs(capacityMbps float64) float64 {
	return s.PacketSizeBits / (capacityMbps * 1000)
}

// LinkDelayApprox computes the paper's Eq. (3) link delay (ms), using the
// piecewise cost ratio ΦH,l/Cl to approximate the M/M/1 term Hl/(Cl−Hl):
//
//	Dl = s/Cl (ΦH,l/Cl + 1) + pl
func (s SLA) LinkDelayApprox(phiH, capacityMbps, propDelayMs float64) float64 {
	return s.transmissionMs(capacityMbps)*(phiH/capacityMbps+1) + propDelayMs
}

// LinkDelayExact computes the exact M/M/1 link delay (ms). For loads at or
// beyond capacity the delay is +Inf.
func (s SLA) LinkDelayExact(h, capacityMbps, propDelayMs float64) float64 {
	if h >= capacityMbps {
		return math.Inf(1)
	}
	return s.transmissionMs(capacityMbps)*(h/(capacityMbps-h)+1) + propDelayMs
}

// PairPenalty computes Λ(s,t) of Eq. (4) for a pair with expected delay
// xiMs: zero when within the bound, a + b·(ξ−θ) beyond it. An infinite
// delay (unreachable pair) yields an infinite penalty.
func (s SLA) PairPenalty(xiMs float64) float64 {
	if xiMs <= s.ThetaMs {
		return 0
	}
	return s.PenaltyA + s.PenaltyB*(xiMs-s.ThetaMs)
}

// Violated reports whether a pair with expected delay xiMs breaks the SLA.
func (s SLA) Violated(xiMs float64) bool { return xiMs > s.ThetaMs }

// Relaxed returns a copy of s with the delay bound loosened to (1+eps)·θ,
// the STR relaxation of §3.3.2 / §5.3.2.
func (s SLA) Relaxed(eps float64) SLA {
	r := s
	r.ThetaMs *= 1 + eps
	return r
}
