package ospf

import (
	"math/rand/v2"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
)

func TestFailLinkReroutes(t *testing.T) {
	// Diamond 0-{1,2}-3: failing 0-1 must push all traffic via 2.
	g := graph.New(4)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(0, 2, 1, 0)
	g.AddLink(1, 3, 1, 0)
	g.AddLink(2, 3, 1, 0)
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	// Before: ECMP over both branches.
	if hops := net.Router(0).NextHops(TopoHigh, 3); len(hops) != 2 {
		t.Fatalf("pre-failure hops = %v, want both branches", hops)
	}
	if err := net.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	hops := net.Router(0).NextHops(TopoHigh, 3)
	if len(hops) != 1 || hops[0] != 2 {
		t.Fatalf("post-failure hops = %v, want [2]", hops)
	}
	path, err := net.Forward(Packet{Src: 0, Dst: 3, Class: TopoLow})
	if err != nil {
		t.Fatal(err)
	}
	if path[1] != 2 {
		t.Fatalf("post-failure path = %v, want via 2", path)
	}
}

func TestFailLinkDisconnects(t *testing.T) {
	// A chain 0-1-2: failing 1-2 cuts node 2 off.
	g := graph.New(3)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(1, 2, 1, 0)
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward(Packet{Src: 0, Dst: 2, Class: TopoHigh}); err == nil {
		t.Fatal("forwarding across a cut delivered")
	}
}

func TestFailLinkUnknown(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(1, 2, 1, 0)
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.FailLink(0, 2); err == nil {
		t.Fatal("failing a non-existent link succeeded")
	}
}

// TestFailLinkMatchesRebuiltNetwork: after a failure, the reconverged FIBs
// must equal those of a network built from scratch without the failed link —
// and both must match the analytic SPF with the arc disabled.
func TestFailLinkMatchesRebuiltNetwork(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 1))
	g, err := topo.Random(12, 30, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	wH := make(spf.Weights, g.NumEdges())
	wL := make(spf.Weights, g.NumEdges())
	for i := range wH {
		wH[i] = 1 + rng.IntN(30)
		wL[i] = 1 + rng.IntN(30)
	}
	net, err := BuildNetwork(g, wH, wL)
	if err != nil {
		t.Fatal(err)
	}

	// Fail the link between the endpoints of arc 0.
	u, v := g.Edge(0).From, g.Edge(0).To
	if err := net.FailLink(u, v); err != nil {
		t.Fatal(err)
	}

	uv, _ := g.ArcBetween(u, v)
	vu, _ := g.ArcBetween(v, u)
	wHf := wH.WithFailedArcs(uv, vu)
	wLf := wL.WithFailedArcs(uv, vu)
	rebuilt, err := BuildNetwork(g, wHf, wLf)
	if err != nil {
		t.Fatal(err)
	}

	comp := spf.NewComputer(g)
	var tree spf.Tree
	for topoID, w := range map[TopologyID]spf.Weights{TopoHigh: wHf, TopoLow: wLf} {
		for dest := 0; dest < g.NumNodes(); dest++ {
			comp.Tree(graph.NodeID(dest), w, &tree)
			for src := 0; src < g.NumNodes(); src++ {
				if src == dest {
					continue
				}
				want := tree.NextHops(g, graph.NodeID(src))
				gotFailed := net.Router(graph.NodeID(src)).NextHops(topoID, graph.NodeID(dest))
				gotRebuilt := rebuilt.Router(graph.NodeID(src)).NextHops(topoID, graph.NodeID(dest))
				if !sameHops(gotFailed, want) || !sameHops(gotRebuilt, want) {
					t.Fatalf("topo %d %d->%d: failed-net %v, rebuilt %v, spf %v",
						topoID, src, dest, gotFailed, gotRebuilt, want)
				}
			}
		}
	}
}

func sameHops(got, want []graph.NodeID) bool {
	if len(got) != len(want) {
		return false
	}
	seen := map[graph.NodeID]bool{}
	for _, h := range got {
		seen[h] = true
	}
	for _, h := range want {
		if !seen[h] {
			return false
		}
	}
	return true
}

// TestSequentialFailures exercises repeated reconvergence.
func TestSequentialFailures(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 2))
	g, err := topo.Random(10, 25, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for arc := 0; arc < g.NumEdges() && failed < 3; arc += 7 {
		u, v := g.Edge(graph.EdgeID(arc)).From, g.Edge(graph.EdgeID(arc)).To
		if err := net.FailLink(u, v); err != nil {
			continue // already failed via its twin arc
		}
		failed++
	}
	if failed == 0 {
		t.Fatal("no links failed")
	}
	// Forwarding must still work (or error cleanly) for every pair.
	for src := 0; src < g.NumNodes(); src++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			path, err := net.Forward(Packet{Src: graph.NodeID(src), Dst: graph.NodeID(dst), Class: TopoHigh})
			if err != nil {
				continue // disconnection is legitimate after failures
			}
			if path[len(path)-1] != graph.NodeID(dst) {
				t.Fatalf("delivered to wrong node: %v", path)
			}
		}
	}
}
