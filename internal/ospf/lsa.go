// Package ospf simulates the multi-topology OSPF control plane (RFC 4915)
// that deploys the paper's dual-topology routing: every router floods
// link-state advertisements carrying one metric per topology, builds a
// link-state database, runs one SPF per topology, and installs per-class
// forwarding tables. Packets are classified (e.g. by DSCP) to a topology and
// forwarded hop by hop.
//
// The package cross-validates the analytic SPF substrate: the FIBs computed
// by the distributed simulation must match internal/spf's next hops exactly.
package ospf

import (
	"encoding/binary"
	"fmt"

	"dualtopo/internal/graph"
)

// TopologyID identifies one routing topology (the MT-ID of RFC 4915).
type TopologyID uint8

const (
	// TopoHigh is the topology routing the high-priority class (MT-ID 0,
	// the default topology).
	TopoHigh TopologyID = 0
	// TopoLow is the topology routing the low-priority class.
	TopoLow TopologyID = 1
	// NumTopologies is the number of topologies this simulation carries.
	NumTopologies = 2
)

// LinkInfo describes one adjacency inside an LSA: the neighbor router and
// the per-topology metrics of the arc toward it.
type LinkInfo struct {
	Neighbor graph.NodeID
	Metric   [NumTopologies]uint16
}

// LSA is a router link-state advertisement: the originating router, a
// sequence number for freshness, and the router's adjacencies with
// multi-topology metrics.
type LSA struct {
	Origin graph.NodeID
	Seq    uint32
	Links  []LinkInfo
}

// Newer reports whether l should replace other in a database (higher
// sequence number from the same origin).
func (l *LSA) Newer(other *LSA) bool {
	if other == nil {
		return true
	}
	return l.Seq > other.Seq
}

// Marshal encodes the LSA into a compact binary form. The simulation floods
// encoded LSAs to mimic a real protocol exchange (and to guarantee receivers
// cannot share memory with the originator).
func (l *LSA) Marshal() []byte {
	buf := make([]byte, 0, 12+len(l.Links)*(4+2*NumTopologies))
	buf = binary.BigEndian.AppendUint32(buf, uint32(l.Origin))
	buf = binary.BigEndian.AppendUint32(buf, l.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(l.Links)))
	for _, li := range l.Links {
		buf = binary.BigEndian.AppendUint32(buf, uint32(li.Neighbor))
		for t := 0; t < NumTopologies; t++ {
			buf = binary.BigEndian.AppendUint16(buf, li.Metric[t])
		}
	}
	return buf
}

// UnmarshalLSA decodes an LSA from Marshal's encoding.
func UnmarshalLSA(data []byte) (*LSA, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("ospf: LSA too short (%d bytes)", len(data))
	}
	l := &LSA{
		Origin: graph.NodeID(binary.BigEndian.Uint32(data[0:4])),
		Seq:    binary.BigEndian.Uint32(data[4:8]),
	}
	count := int(binary.BigEndian.Uint32(data[8:12]))
	const per = 4 + 2*NumTopologies
	if len(data) != 12+count*per {
		return nil, fmt.Errorf("ospf: LSA length %d does not match %d links", len(data), count)
	}
	l.Links = make([]LinkInfo, count)
	for i := 0; i < count; i++ {
		off := 12 + i*per
		l.Links[i].Neighbor = graph.NodeID(binary.BigEndian.Uint32(data[off : off+4]))
		for t := 0; t < NumTopologies; t++ {
			l.Links[i].Metric[t] = binary.BigEndian.Uint16(data[off+4+2*t : off+6+2*t])
		}
	}
	return l, nil
}

// LSDB is a link-state database: the freshest LSA from every known origin.
type LSDB struct {
	byOrigin map[graph.NodeID]*LSA
}

// NewLSDB returns an empty database.
func NewLSDB() *LSDB {
	return &LSDB{byOrigin: make(map[graph.NodeID]*LSA)}
}

// Install stores l if it is newer than the current entry for its origin,
// reporting whether the database changed.
func (db *LSDB) Install(l *LSA) bool {
	cur := db.byOrigin[l.Origin]
	if !l.Newer(cur) {
		return false
	}
	db.byOrigin[l.Origin] = l
	return true
}

// Get returns the freshest LSA from origin, or nil.
func (db *LSDB) Get(origin graph.NodeID) *LSA { return db.byOrigin[origin] }

// Len reports the number of distinct origins.
func (db *LSDB) Len() int { return len(db.byOrigin) }

// Origins lists all known origins (order unspecified).
func (db *LSDB) Origins() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(db.byOrigin))
	for o := range db.byOrigin {
		out = append(out, o)
	}
	return out
}
