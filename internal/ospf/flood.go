package ospf

import (
	"dualtopo/internal/graph"
)

// FloodSchedule computes the deterministic shape of an LSA flood without
// running the goroutine protocol in runFlood: the minimum number of
// adjacency hops an update originated at any of a set of routers needs to
// reach each other router. runFlood delivers along every adjacency and a
// router forwards the first copy it installs, so the earliest possible
// arrival at router r is exactly the BFS distance from the origin set over
// the surviving adjacencies — this is what churn replay uses to turn a
// topology event into per-router convergence times (stale-tree windows).
//
// The schedule holds reusable buffers; Hops is allocation-free after the
// first call and a FloodSchedule is not safe for concurrent use.
type FloodSchedule struct {
	g     *graph.Graph
	hops  []int32
	queue []graph.NodeID
}

// NewFloodSchedule prepares a schedule for g.
func NewFloodSchedule(g *graph.Graph) *FloodSchedule {
	n := g.NumNodes()
	return &FloodSchedule{
		g:     g,
		hops:  make([]int32, n),
		queue: make([]graph.NodeID, 0, n),
	}
}

// Unreachable marks a router the flood never reaches (it is partitioned
// from every originator and keeps its stale LSDB indefinitely).
const Unreachable = int32(-1)

// Hops returns the per-router flood hop counts for an update originated
// simultaneously at origins, flooding only over adjacencies for which
// enabled reports true (an adjacency floods when either directed arc is
// usable, mirroring how FailLink removes both directions of a cut link).
// Originators are at hop 0; routers the flood cannot reach are Unreachable.
// The returned slice is owned by the schedule and overwritten by the next
// call.
func (f *FloodSchedule) Hops(enabled func(graph.EdgeID) bool, origins ...graph.NodeID) []int32 {
	for i := range f.hops {
		f.hops[i] = Unreachable
	}
	q := f.queue[:0]
	for _, o := range origins {
		if f.hops[o] != Unreachable {
			continue // duplicate origin
		}
		f.hops[o] = 0
		q = append(q, o)
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		d := f.hops[u] + 1
		for _, id := range f.g.Out(u) {
			if !enabled(id) {
				rev, ok := f.g.Reverse(id)
				if !ok || !enabled(rev) {
					continue
				}
			}
			v := f.g.Edge(id).To
			if f.hops[v] == Unreachable {
				f.hops[v] = d
				q = append(q, v)
			}
		}
	}
	f.queue = q[:0]
	return f.hops
}
