package ospf

import (
	"math"
	"sort"

	"dualtopo/internal/graph"
)

// Router is one simulated MT-OSPF speaker. Routers exchange encoded LSAs
// over point-to-point adjacencies (Go channels) and maintain an LSDB and one
// FIB per topology. A Router's goroutine owns all its mutable state; the
// outside world interacts through channels and post-convergence snapshots.
type Router struct {
	id graph.NodeID
	// links toward each neighbor, with per-topology metrics.
	links []LinkInfo
	db    *LSDB

	in  chan []byte // LSAs arriving from neighbors
	out map[graph.NodeID]chan<- []byte

	// fib[t][dest] lists equal-cost next hops for topology t.
	fib [NumTopologies]map[graph.NodeID][]graph.NodeID

	// events counts LSDB changes; the network uses it to detect quiescence.
	flooded int
}

// newRouter builds a router with its adjacency set. Inbox and outbox
// channels are wired by Network.runFlood before each flooding round.
func newRouter(id graph.NodeID, links []LinkInfo) *Router {
	r := &Router{
		id:    id,
		links: links,
		db:    NewLSDB(),
		out:   make(map[graph.NodeID]chan<- []byte),
	}
	for t := 0; t < NumTopologies; t++ {
		r.fib[t] = make(map[graph.NodeID][]graph.NodeID)
	}
	return r
}

// ID returns the router's node ID.
func (r *Router) ID() graph.NodeID { return r.id }

// originate builds and installs the router's own LSA.
func (r *Router) originate(seq uint32) *LSA {
	lsa := &LSA{Origin: r.id, Seq: seq, Links: append([]LinkInfo(nil), r.links...)}
	r.db.Install(lsa)
	return lsa
}

// computeFIBs runs one SPF per topology over the LSDB and installs the
// resulting equal-cost next-hop sets.
func (r *Router) computeFIBs() {
	for t := 0; t < NumTopologies; t++ {
		r.fib[t] = r.spf(TopologyID(t))
	}
}

// spf is a textbook Dijkstra over the LSDB for one topology, returning the
// ECMP next-hop sets from this router toward every destination.
func (r *Router) spf(topo TopologyID) map[graph.NodeID][]graph.NodeID {
	const inf = math.MaxInt64
	dist := map[graph.NodeID]int64{r.id: 0}
	visited := map[graph.NodeID]bool{}
	for {
		// Extract the unvisited node with the smallest distance; linear scan
		// keeps the code obvious (LSDBs here are tens of routers).
		var u graph.NodeID
		best := int64(inf)
		for n, d := range dist {
			if !visited[n] && d < best {
				best = d
				u = n
			}
		}
		if best == inf {
			break
		}
		visited[u] = true
		lsa := r.db.Get(u)
		if lsa == nil {
			continue
		}
		for _, li := range lsa.Links {
			alt := best + int64(li.Metric[topo])
			if cur, ok := dist[li.Neighbor]; !ok || alt < cur {
				dist[li.Neighbor] = alt
			}
		}
	}
	// Next hops: neighbor n is a next hop toward dest when
	// metric(self->n) + dist(n->dest computed from n's perspective) matches.
	// Equivalently, run the relaxation from dist: an arc (u,v) is on a
	// shortest path iff dist[u] + metric == dist[v]; collect first hops by
	// walking destinations backward. Simpler and equally correct for
	// per-router FIBs: neighbor n is a next hop for dest iff
	// dist[n via metric(self->n)] + shortestFrom(n, dest) == dist[dest].
	// To avoid per-neighbor SPFs we use the DAG property on dist.
	fib := make(map[graph.NodeID][]graph.NodeID)
	// parents[v] lists u such that (u,v) lies on a shortest path from r.id.
	parents := make(map[graph.NodeID][]graph.NodeID)
	for u, du := range dist {
		lsa := r.db.Get(u)
		if lsa == nil {
			continue
		}
		for _, li := range lsa.Links {
			if dv, ok := dist[li.Neighbor]; ok && du+int64(li.Metric[topo]) == dv {
				parents[li.Neighbor] = append(parents[li.Neighbor], u)
			}
		}
	}
	// For each destination, next hops are the first arcs of shortest paths:
	// walk the parent DAG from dest back to r.id, collecting the nodes whose
	// parent is r.id and that lie on a path to dest.
	for dest := range dist {
		if dest == r.id {
			continue
		}
		hops := map[graph.NodeID]bool{}
		// Reverse reachability from dest in the parent DAG.
		stack := []graph.NodeID{dest}
		onPath := map[graph.NodeID]bool{dest: true}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range parents[v] {
				if u == r.id {
					hops[v] = true
					continue
				}
				if !onPath[u] {
					onPath[u] = true
					stack = append(stack, u)
				}
			}
		}
		hopList := make([]graph.NodeID, 0, len(hops))
		for h := range hops {
			hopList = append(hopList, h)
		}
		sort.Slice(hopList, func(i, j int) bool { return hopList[i] < hopList[j] })
		if len(hopList) > 0 {
			fib[dest] = hopList
		}
	}
	return fib
}

// NextHops returns the converged ECMP next hops from this router toward
// dest in the given topology (nil when unreachable).
func (r *Router) NextHops(topo TopologyID, dest graph.NodeID) []graph.NodeID {
	return r.fib[topo][dest]
}

// LSDBLen reports how many origins the router has learned.
func (r *Router) LSDBLen() int { return r.db.Len() }
