package ospf

import (
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

func TestFloodHopsChain(t *testing.T) {
	// Chain 0-1-2-3-4 with the flood originated at node 2.
	g := graph.New(5)
	for u := 0; u < 4; u++ {
		g.AddLink(graph.NodeID(u), graph.NodeID(u+1), 1, 0)
	}
	f := NewFloodSchedule(g)
	all := func(graph.EdgeID) bool { return true }
	hops := f.Hops(all, 2)
	want := []int32{2, 1, 0, 1, 2}
	for u, w := range want {
		if hops[u] != w {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}

	// Cut 2-3: the far side never hears the update.
	uv, _ := g.ArcBetween(2, 3)
	vu, _ := g.ArcBetween(3, 2)
	cut := func(id graph.EdgeID) bool { return id != uv && id != vu }
	hops = f.Hops(cut, 2, 3)
	want = []int32{2, 1, 0, 0, 1}
	for u, w := range want {
		if hops[u] != w {
			t.Fatalf("post-cut hops = %v, want %v", hops, want)
		}
	}
	hops = f.Hops(cut, 2)
	if hops[3] != Unreachable || hops[4] != Unreachable {
		t.Fatalf("partitioned side should be unreachable, got %v", hops)
	}
}

// TestFloodHopsMatchesNetworkFlood cross-validates the analytic schedule
// against the live goroutine protocol: after FailLink(u,v), exactly the
// routers with a finite hop count from {u,v} over the surviving
// adjacencies hold the re-originated (higher-sequence) LSAs.
func TestFloodHopsMatchesNetworkFlood(t *testing.T) {
	// Two triangles joined by a single bridge 2-3; failing the bridge
	// partitions the flood.
	g := graph.New(6)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(1, 2, 1, 0)
	g.AddLink(2, 0, 1, 0)
	g.AddLink(3, 4, 1, 0)
	g.AddLink(4, 5, 1, 0)
	g.AddLink(5, 3, 1, 0)
	g.AddLink(2, 3, 1, 0)
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	seqBefore := make([]uint32, g.NumNodes())
	for u := range seqBefore {
		seqBefore[u] = net.Router(2).db.Get(graph.NodeID(u)).Seq
	}
	if err := net.FailLink(2, 3); err != nil {
		t.Fatal(err)
	}

	uv, _ := g.ArcBetween(2, 3)
	vu, _ := g.ArcBetween(3, 2)
	enabled := func(id graph.EdgeID) bool { return id != uv && id != vu }
	hops := NewFloodSchedule(g).Hops(enabled, 2, 3)

	for u := 0; u < g.NumNodes(); u++ {
		r := net.Router(graph.NodeID(u))
		// Node 2's update is seen iff u is flood-reachable from node 2's
		// side; by symmetry check both origins.
		saw2 := r.db.Get(2).Seq > seqBefore[2]
		saw3 := r.db.Get(3).Seq > seqBefore[3]
		reachable := hops[u] != Unreachable
		if (saw2 || saw3) != reachable {
			t.Fatalf("router %d: saw2=%v saw3=%v but schedule hops=%d",
				u, saw2, saw3, hops[u])
		}
	}
	// Hop counts on the intact triangles are the BFS distances.
	if hops[2] != 0 || hops[3] != 0 || hops[0] != 1 || hops[1] != 1 || hops[4] != 1 || hops[5] != 1 {
		t.Fatalf("hops = %v", hops)
	}
}

func TestFloodHopsNoAlloc(t *testing.T) {
	g := graph.New(5)
	for u := 0; u < 4; u++ {
		g.AddLink(graph.NodeID(u), graph.NodeID(u+1), 1, 0)
	}
	f := NewFloodSchedule(g)
	all := func(graph.EdgeID) bool { return true }
	f.Hops(all, 0) // warm up
	if n := testing.AllocsPerRun(100, func() { f.Hops(all, 0, 4) }); n != 0 {
		t.Fatalf("Hops allocates %v per run, want 0", n)
	}
}
