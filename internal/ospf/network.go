package ospf

import (
	"fmt"
	"sync"

	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

// Network wires one Router per graph node, floods all LSAs to convergence,
// and computes every router's per-topology FIBs. Flooding runs one goroutine
// per router communicating over channels; convergence is detected when every
// router holds a full LSDB and all channels have drained.
type Network struct {
	g       *graph.Graph
	routers []*Router
}

// BuildNetwork constructs routers from the graph and the two weight settings
// (wH for the high-priority topology, wL for the low-priority topology) and
// runs the flooding protocol to convergence.
func BuildNetwork(g *graph.Graph, wH, wL spf.Weights) (*Network, error) {
	if err := wH.Validate(g); err != nil {
		return nil, fmt.Errorf("ospf: high-topology weights: %w", err)
	}
	if err := wL.Validate(g); err != nil {
		return nil, fmt.Errorf("ospf: low-topology weights: %w", err)
	}
	n := g.NumNodes()
	net := &Network{g: g, routers: make([]*Router, n)}
	for u := 0; u < n; u++ {
		var links []LinkInfo
		for _, id := range g.Out(graph.NodeID(u)) {
			if wH[id] == spf.Disabled || wL[id] == spf.Disabled {
				continue // failed at build time: never advertised
			}
			e := g.Edge(id)
			links = append(links, LinkInfo{
				Neighbor: e.To,
				Metric:   [NumTopologies]uint16{uint16(wH[id]), uint16(wL[id])},
			})
		}
		net.routers[u] = newRouter(graph.NodeID(u), links)
	}
	if err := net.runFlood(net.routers); err != nil {
		return nil, err
	}
	for _, r := range net.routers {
		r.computeFIBs()
	}
	return net, nil
}

// Router returns the router at node u.
func (net *Network) Router(u graph.NodeID) *Router { return net.routers[u] }

// FailLink withdraws the bidirectional link between u and v: both end
// routers re-originate their LSAs without the adjacency (sequence number
// bumped), the updates flood through the network, and every router
// recomputes its FIBs — the control plane's reaction to a fiber cut.
func (net *Network) FailLink(u, v graph.NodeID) error {
	ru, rv := net.routers[u], net.routers[v]
	removedU := removeAdjacency(ru, v)
	removedV := removeAdjacency(rv, u)
	if !removedU || !removedV {
		return fmt.Errorf("ospf: no link between %d and %d", u, v)
	}
	// The failed adjacency also stops carrying flooding traffic.
	delete(ru.out, v)
	delete(rv.out, u)
	if err := net.runFlood([]*Router{ru, rv}); err != nil {
		return err
	}
	for _, r := range net.routers {
		r.computeFIBs()
	}
	return nil
}

// removeAdjacency drops r's link toward neighbor, reporting success.
func removeAdjacency(r *Router, neighbor graph.NodeID) bool {
	for i, li := range r.links {
		if li.Neighbor == neighbor {
			r.links = append(r.links[:i], r.links[i+1:]...)
			return true
		}
	}
	return false
}

// runFlood floods fresh LSAs from the given originators until the whole
// network quiesces, then leaves every router's LSDB consistent.
//
// Each router runs a goroutine draining its inbox. Quiescence detection uses
// a global in-flight message counter: originations and forwards increment
// it, every processed message decrements it; when it reaches zero no message
// can ever be created again, so the controller closes all inboxes. Inboxes
// are created fresh per round and sized for the worst case (every origin
// arriving once per in-arc) so synchronous forwarding cannot deadlock.
func (net *Network) runFlood(originators []*Router) error {
	// Sequence numbers strictly increase across rounds so refreshed LSAs
	// replace stale ones everywhere.
	maxSeq := uint32(0)
	for _, r := range net.routers {
		if lsa := r.db.Get(r.id); lsa != nil && lsa.Seq > maxSeq {
			maxSeq = lsa.Seq
		}
	}

	n := len(net.routers)
	for _, r := range net.routers {
		r.in = make(chan []byte, n*len(r.links)+n+1)
	}
	for _, r := range net.routers {
		r.out = make(map[graph.NodeID]chan<- []byte, len(r.links))
		for _, li := range r.links {
			r.out[li.Neighbor] = net.routers[li.Neighbor].in
		}
	}

	var (
		inFlight sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	send := func(ch chan<- []byte, data []byte) {
		inFlight.Add(1)
		ch <- data
	}

	// Originate before the goroutines start: after this point each router's
	// LSDB is touched only by its own goroutine.
	updates := make([][]byte, len(originators))
	for i, r := range originators {
		updates[i] = r.originate(maxSeq + 1).Marshal()
	}

	for _, r := range net.routers {
		wg.Add(1)
		go func(r *Router) {
			defer wg.Done()
			for data := range r.in {
				lsa, err := UnmarshalLSA(data)
				if err == nil {
					if r.db.Install(lsa) {
						r.flooded++
						for _, ch := range r.out {
							send(ch, data)
						}
					}
				} else {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("router %d: %w", r.id, err)
					}
					errMu.Unlock()
				}
				inFlight.Done()
			}
		}(r)
	}

	for i, r := range originators {
		for _, ch := range r.out {
			send(ch, updates[i])
		}
	}

	// When the in-flight counter drains, no further messages can appear.
	inFlight.Wait()
	for _, r := range net.routers {
		close(r.in)
	}
	wg.Wait()
	return firstErr
}

// Converged reports whether every router learned every origin.
func (net *Network) Converged() bool {
	want := len(net.routers)
	for _, r := range net.routers {
		if r.db.Len() != want {
			return false
		}
	}
	return true
}
