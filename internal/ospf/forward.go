package ospf

import (
	"fmt"

	"dualtopo/internal/graph"
)

// Packet is a classified datagram: the traffic class selects the routing
// topology, as DSCP-to-MT mapping does in an RFC 4915 deployment.
type Packet struct {
	Src, Dst graph.NodeID
	Class    TopologyID
	// FlowHash spreads flows over equal-cost next hops; packets of one flow
	// share a hash and therefore a path.
	FlowHash uint32
}

// ErrNoRoute is wrapped by Forward when a hop has no FIB entry.
var ErrNoRoute = fmt.Errorf("ospf: no route")

// Forward carries the packet hop by hop through the converged network and
// returns the node path it took (starting at Src, ending at Dst). ECMP
// choices hash the flow onto one of the equal-cost next hops. A TTL of
// NumNodes guards against forwarding loops, which converged SPF routing
// must never produce.
func (net *Network) Forward(p Packet) ([]graph.NodeID, error) {
	if p.Class >= NumTopologies {
		return nil, fmt.Errorf("ospf: invalid class %d", p.Class)
	}
	path := []graph.NodeID{p.Src}
	cur := p.Src
	ttl := net.g.NumNodes()
	for cur != p.Dst {
		if ttl == 0 {
			return path, fmt.Errorf("ospf: TTL expired at %d forwarding %d->%d (loop?)", cur, p.Src, p.Dst)
		}
		ttl--
		hops := net.routers[cur].NextHops(p.Class, p.Dst)
		if len(hops) == 0 {
			return path, fmt.Errorf("%w from %d to %d (class %d)", ErrNoRoute, cur, p.Dst, p.Class)
		}
		// Deterministic per-flow ECMP: mix the hash with the hop index so
		// consecutive hops don't always pick the same slot position.
		h := flowMix(p.FlowHash, uint32(cur))
		cur = hops[int(h)%len(hops)]
		path = append(path, cur)
	}
	return path, nil
}

// PathDelay sums propagation delays along a node path.
func (net *Network) PathDelay(path []graph.NodeID) (float64, error) {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		id, ok := net.g.ArcBetween(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("ospf: path hop %d->%d has no arc", path[i], path[i+1])
		}
		total += net.g.Edge(id).Delay
	}
	return total, nil
}

// flowMix is a small integer hash (xorshift-multiply) combining the flow
// hash with per-hop salt.
func flowMix(h, salt uint32) uint32 {
	x := h ^ (salt * 0x9e3779b9)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}
