package ospf

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
)

func TestLSAMarshalRoundTrip(t *testing.T) {
	l := &LSA{
		Origin: 7,
		Seq:    42,
		Links: []LinkInfo{
			{Neighbor: 1, Metric: [NumTopologies]uint16{3, 9}},
			{Neighbor: 2, Metric: [NumTopologies]uint16{30, 1}},
		},
	}
	got, err := UnmarshalLSA(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != 7 || got.Seq != 42 || len(got.Links) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Links[1] != l.Links[1] {
		t.Fatalf("link mismatch: %+v", got.Links[1])
	}
}

func TestLSAMarshalRoundTripProperty(t *testing.T) {
	f := func(origin uint16, seq uint32, metrics []uint16) bool {
		l := &LSA{Origin: graph.NodeID(origin), Seq: seq}
		for i, m := range metrics {
			l.Links = append(l.Links, LinkInfo{
				Neighbor: graph.NodeID(i),
				Metric:   [NumTopologies]uint16{m, m ^ 0x5555},
			})
		}
		got, err := UnmarshalLSA(l.Marshal())
		if err != nil {
			return false
		}
		if got.Origin != l.Origin || got.Seq != l.Seq || len(got.Links) != len(l.Links) {
			return false
		}
		for i := range l.Links {
			if got.Links[i] != l.Links[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalLSAErrors(t *testing.T) {
	if _, err := UnmarshalLSA([]byte{1, 2}); err == nil {
		t.Error("short LSA accepted")
	}
	l := &LSA{Origin: 1, Seq: 1, Links: []LinkInfo{{Neighbor: 2}}}
	data := l.Marshal()
	if _, err := UnmarshalLSA(data[:len(data)-1]); err == nil {
		t.Error("truncated LSA accepted")
	}
}

func TestLSDBFreshness(t *testing.T) {
	db := NewLSDB()
	old := &LSA{Origin: 3, Seq: 1}
	fresh := &LSA{Origin: 3, Seq: 2}
	if !db.Install(old) {
		t.Fatal("first install rejected")
	}
	if db.Install(old) {
		t.Fatal("duplicate accepted")
	}
	if !db.Install(fresh) {
		t.Fatal("fresher rejected")
	}
	if db.Install(old) {
		t.Fatal("stale accepted after fresh")
	}
	if db.Get(3).Seq != 2 {
		t.Fatal("stale entry retained")
	}
	if db.Len() != 1 || len(db.Origins()) != 1 {
		t.Fatal("db sizes wrong")
	}
}

func buildTestNet(t *testing.T, seed uint64, nodes, links int) (*graph.Graph, spf.Weights, spf.Weights, *Network) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 3))
	g, err := topo.Random(nodes, links, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	wH := make(spf.Weights, g.NumEdges())
	wL := make(spf.Weights, g.NumEdges())
	for i := range wH {
		wH[i] = 1 + rng.IntN(30)
		wL[i] = 1 + rng.IntN(30)
	}
	net, err := BuildNetwork(g, wH, wL)
	if err != nil {
		t.Fatal(err)
	}
	return g, wH, wL, net
}

func TestNetworkConverges(t *testing.T) {
	g, _, _, net := buildTestNet(t, 1, 15, 35)
	if !net.Converged() {
		t.Fatal("network did not converge")
	}
	for u := 0; u < g.NumNodes(); u++ {
		if got := net.Router(graph.NodeID(u)).LSDBLen(); got != g.NumNodes() {
			t.Fatalf("router %d LSDB has %d origins, want %d", u, got, g.NumNodes())
		}
	}
}

// TestFIBMatchesAnalyticSPF is the cross-validation at the heart of this
// package: the distributed protocol must install exactly the ECMP next hops
// the analytic spf package computes, for both topologies.
func TestFIBMatchesAnalyticSPF(t *testing.T) {
	g, wH, wL, net := buildTestNet(t, 2, 15, 35)
	for topoID, w := range map[TopologyID]spf.Weights{TopoHigh: wH, TopoLow: wL} {
		comp := spf.NewComputer(g)
		var tree spf.Tree
		for dest := 0; dest < g.NumNodes(); dest++ {
			comp.Tree(graph.NodeID(dest), w, &tree)
			for src := 0; src < g.NumNodes(); src++ {
				if src == dest {
					continue
				}
				want := tree.NextHops(g, graph.NodeID(src))
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				got := net.Router(graph.NodeID(src)).NextHops(topoID, graph.NodeID(dest))
				if len(got) != len(want) {
					t.Fatalf("topo %d %d->%d: fib %v, spf %v", topoID, src, dest, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("topo %d %d->%d: fib %v, spf %v", topoID, src, dest, got, want)
					}
				}
			}
		}
	}
}

func TestForwardDeliversOnShortestPath(t *testing.T) {
	g, wH, _, net := buildTestNet(t, 3, 12, 26)
	comp := spf.NewComputer(g)
	var tree spf.Tree
	for dest := 0; dest < g.NumNodes(); dest++ {
		comp.Tree(graph.NodeID(dest), wH, &tree)
		for src := 0; src < g.NumNodes(); src++ {
			if src == dest {
				continue
			}
			path, err := net.Forward(Packet{
				Src: graph.NodeID(src), Dst: graph.NodeID(dest),
				Class: TopoHigh, FlowHash: uint32(src*31 + dest),
			})
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dest, err)
			}
			if path[0] != graph.NodeID(src) || path[len(path)-1] != graph.NodeID(dest) {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			// The path length must equal the shortest distance.
			total := int64(0)
			for i := 0; i+1 < len(path); i++ {
				id, ok := g.ArcBetween(path[i], path[i+1])
				if !ok {
					t.Fatalf("path uses missing arc %d->%d", path[i], path[i+1])
				}
				total += int64(wH[id])
			}
			if total != int64(tree.Dist[src]) {
				t.Fatalf("%d->%d: path cost %d, shortest %d (path %v)", src, dest, total, tree.Dist[src], path)
			}
		}
	}
}

func TestForwardClassesDiverge(t *testing.T) {
	// Build a 4-node diamond where the two topologies prefer different
	// branches; the same SD pair must take different paths per class.
	g := graph.New(4)
	ab, _ := g.AddLink(0, 1, 1, 0) // branch via 1
	g.AddLink(1, 3, 1, 0)
	ac, _ := g.AddLink(0, 2, 1, 0) // branch via 2
	g.AddLink(2, 3, 1, 0)
	wH := spf.Uniform(g.NumEdges())
	wL := spf.Uniform(g.NumEdges())
	wH[ac] = 10 // high-priority avoids branch via 2
	wL[ab] = 10 // low-priority avoids branch via 1
	net, err := BuildNetwork(g, wH, wL)
	if err != nil {
		t.Fatal(err)
	}
	pathH, err := net.Forward(Packet{Src: 0, Dst: 3, Class: TopoHigh})
	if err != nil {
		t.Fatal(err)
	}
	pathL, err := net.Forward(Packet{Src: 0, Dst: 3, Class: TopoLow})
	if err != nil {
		t.Fatal(err)
	}
	if pathH[1] != 1 {
		t.Fatalf("high path = %v, want via node 1", pathH)
	}
	if pathL[1] != 2 {
		t.Fatalf("low path = %v, want via node 2", pathL)
	}
}

func TestForwardECMPStaysOnShortestPaths(t *testing.T) {
	// Distinct flows may take different equal-cost paths but all must have
	// equal cost.
	g, wH, _, net := buildTestNet(t, 4, 12, 30)
	comp := spf.NewComputer(g)
	var tree spf.Tree
	src, dst := graph.NodeID(0), graph.NodeID(7)
	comp.Tree(dst, wH, &tree)
	for flow := uint32(0); flow < 32; flow++ {
		path, err := net.Forward(Packet{Src: src, Dst: dst, Class: TopoHigh, FlowHash: flow})
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		for i := 0; i+1 < len(path); i++ {
			id, _ := g.ArcBetween(path[i], path[i+1])
			total += int64(wH[id])
		}
		if total != int64(tree.Dist[src]) {
			t.Fatalf("flow %d path cost %d != shortest %d", flow, total, tree.Dist[src])
		}
	}
}

func TestForwardErrors(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1, 0)
	g.AddArc(1, 2, 1, 0) // 2 is reachable but cannot reach back; still fine for 0->2
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward(Packet{Src: 0, Dst: 1, Class: 99}); err == nil {
		t.Error("bad class accepted")
	}
	// 2 has no route back to 0.
	if _, err := net.Forward(Packet{Src: 2, Dst: 0, Class: TopoHigh}); err == nil {
		t.Error("unroutable packet delivered")
	}
}

func TestPathDelay(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1, 4)
	g.AddLink(1, 2, 1, 6)
	w := spf.Uniform(g.NumEdges())
	net, err := BuildNetwork(g, w, w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := net.PathDelay([]graph.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("PathDelay = %g, want 10", d)
	}
	if _, err := net.PathDelay([]graph.NodeID{0, 2}); err == nil {
		t.Error("missing-arc path accepted")
	}
}

func TestBuildNetworkValidatesWeights(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1, 0)
	if _, err := BuildNetwork(g, spf.Uniform(1), spf.Uniform(2)); err == nil {
		t.Error("short wH accepted")
	}
	bad := spf.Uniform(2)
	bad[0] = 0
	if _, err := BuildNetwork(g, spf.Uniform(2), bad); err == nil {
		t.Error("zero weight accepted")
	}
}
