package resilience

import (
	"math/rand/v2"
	"testing"
)

// TestRouteWorkersSweepBitwiseTransparent runs the from-scratch sweep modes
// with the parallel full-route enabled and requires bitwise-identical
// sweeps: sharded routing must be invisible to FullEval results and to the
// Verify oracle.
func TestRouteWorkersSweepBitwiseTransparent(t *testing.T) {
	e := testEvaluator(t, 21)
	g := e.Graph()
	rng := rand.New(rand.NewPCG(23, 5))
	wSTR := randWeights(g.NumEdges(), rng)
	wH := randWeights(g.NumEdges(), rng)
	wL := randWeights(g.NumEdges(), rng)
	states, err := Enumerate(g, Model{Kind: KindLink, Count: 1})
	if err != nil {
		t.Fatal(err)
	}

	seq := NewSweeper(e, Options{FullEval: true})
	par := NewSweeper(e, Options{FullEval: true, RouteWorkers: 4})

	ss, err := seq.SweepSTR(wSTR, states)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := par.SweepSTR(wSTR, states)
	if err != nil {
		t.Fatal(err)
	}
	equalSweeps(t, "STR", ps, ss)

	sd, err := seq.SweepDTR(wH, wL, states)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := par.SweepDTR(wH, wL, states)
	if err != nil {
		t.Fatal(err)
	}
	equalSweeps(t, "DTR", pd, sd)

	// The Verify oracle compares the delta path against parallel full
	// evaluations; any divergence fails the sweep internally.
	verify := NewSweeper(e, Options{Verify: true, RouteWorkers: 4})
	if _, err := verify.SweepSTR(wSTR, states); err != nil {
		t.Fatalf("verify STR with route workers: %v", err)
	}
	if _, err := verify.SweepDTR(wH, wL, states); err != nil {
		t.Fatalf("verify DTR with route workers: %v", err)
	}
}
