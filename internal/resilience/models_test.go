package resilience

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
)

func testTopology(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	g, err := topo.Random(20, 40, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.AssignUniformDelays(g, 1, 10, rng)
	return g
}

func TestLinksCanonical(t *testing.T) {
	g := testTopology(t, 1)
	links := Links(g)
	if len(links) != 40 {
		t.Fatalf("links = %d, want 40", len(links))
	}
	for i, l := range links {
		rev, ok := g.Reverse(l.AB)
		if !ok || rev != l.BA {
			t.Fatalf("link %d: BA %d is not the reverse of AB %d", i, l.BA, l.AB)
		}
		if l.AB > l.BA {
			t.Fatalf("link %d not canonical: AB %d > BA %d", i, l.AB, l.BA)
		}
		if i > 0 && links[i-1].AB >= l.AB {
			t.Fatalf("links not in ascending AB order at %d", i)
		}
	}
}

func TestEnumerateCounts(t *testing.T) {
	g := testTopology(t, 2)
	nLinks := len(Links(g))

	single, err := Enumerate(g, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != nLinks {
		t.Fatalf("single-link states = %d, want %d", len(single), nLinks)
	}
	for _, st := range single {
		if len(st.Arcs) != 2 {
			t.Fatalf("single-link state %q has %d arcs", st.Label, len(st.Arcs))
		}
	}

	dual, err := Enumerate(g, Model{Kind: KindLink, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := nLinks * (nLinks - 1) / 2; len(dual) != want {
		t.Fatalf("dual-link states = %d, want %d", len(dual), want)
	}

	nodes, err := Enumerate(g, Model{Kind: KindNode})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != g.NumNodes() {
		t.Fatalf("node states = %d, want %d", len(nodes), g.NumNodes())
	}
	for _, st := range nodes {
		u, ok := g.NodeByName(st.Label[len("node "):])
		if !ok {
			t.Fatalf("node state label %q names no node", st.Label)
		}
		if want := len(g.Out(u)) + len(g.In(u)); len(st.Arcs) != want {
			t.Fatalf("node %q fails %d arcs, want %d", st.Label, len(st.Arcs), want)
		}
	}

	srlg, err := Enumerate(g, Model{Kind: KindSRLG, SRLGs: [][]int{{0, 1, 2}, {3}, {0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(srlg) != 3 {
		t.Fatalf("srlg states = %d, want 3", len(srlg))
	}
	if len(srlg[0].Arcs) != 6 || len(srlg[1].Arcs) != 2 {
		t.Fatalf("srlg arc counts = %d/%d, want 6/2", len(srlg[0].Arcs), len(srlg[1].Arcs))
	}
	// Duplicate links within a group are deduplicated.
	if len(srlg[2].Arcs) != 2 {
		t.Fatalf("srlg duplicate group arcs = %d, want 2", len(srlg[2].Arcs))
	}
}

func TestEnumerateRejectsBadModels(t *testing.T) {
	g := testTopology(t, 3)
	bad := []Model{
		{Kind: "meteor"},
		{Kind: KindLink, Count: 3},
		{Kind: KindSRLG},
		{Kind: KindSRLG, SRLGs: [][]int{{}}},
		{Kind: KindSRLG, SRLGs: [][]int{{-1}}},
		{Kind: KindSRLG, SRLGs: [][]int{{9999}}},
		{Sample: -1},
	}
	for _, m := range bad {
		if _, err := Enumerate(g, m); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
}

// TestSamplingIsSeededAndUniformOverStates is the fix for the old biased
// capping: a capped sweep must be a seeded, order-preserving uniform sample
// over all states — not a prefix in edge-ID order.
func TestSamplingIsSeededAndUniformOverStates(t *testing.T) {
	g := testTopology(t, 4)
	m := Model{Kind: KindLink, Count: 2, Sample: 15, Seed: 99}
	a, err := Enumerate(g, m)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Enumerate(g, m)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different samples")
	}
	if len(a) != 15 {
		t.Fatalf("sample = %d states, want 15", len(a))
	}
	full, _ := Enumerate(g, Model{Kind: KindLink, Count: 2})
	pos := map[string]int{}
	for i, st := range full {
		pos[st.Label] = i
	}
	last := -1
	prefix := true
	for i, st := range a {
		p, ok := pos[st.Label]
		if !ok {
			t.Fatalf("sampled state %q not in full enumeration", st.Label)
		}
		if p <= last {
			t.Fatal("sample does not preserve enumeration order")
		}
		if p != i {
			prefix = false
		}
		last = p
	}
	if prefix {
		t.Fatal("sample is the enumeration prefix — capping is still biased")
	}
	m.Seed = 100
	c, _ := Enumerate(g, m)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestModelString(t *testing.T) {
	cases := []struct {
		m    Model
		want string
	}{
		{Model{}, "link"},
		{Model{Kind: KindLink, Count: 2}, "dual-link"},
		{Model{Kind: KindNode, Sample: 8}, "node(sample=8)"},
		{Model{Kind: KindSRLG, SRLGs: [][]int{{0}}}, "srlg"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.m, got, c.want)
		}
	}
}
