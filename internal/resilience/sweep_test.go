package resilience

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// testEvaluator builds a 20-node random instance with gravity low-priority
// demand (every node active) and a sparse high-priority overlay.
func testEvaluator(t *testing.T, seed uint64) *eval.Evaluator {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 2))
	g, err := topo.Random(20, 40, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.AssignUniformDelays(g, 1, 10, rng)
	tl := traffic.Gravity(20, rng)
	th, err := traffic.RandomHighPriority(20, 0.2, 0.3, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := eval.New(g, th, tl, eval.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randWeights(n int, rng *rand.Rand) spf.Weights {
	w := make(spf.Weights, n)
	for i := range w {
		w[i] = 1 + rng.IntN(20)
	}
	return w
}

// equalSweeps asserts bitwise equality, treating NaN (disconnecting) as
// equal to NaN at the same position.
func equalSweeps(t *testing.T, name string, delta, full *Sweep) {
	t.Helper()
	if delta.Base != full.Base {
		t.Fatalf("%s: base ΦL delta %v != full %v", name, delta.Base, full.Base)
	}
	if delta.Survivors != full.Survivors || delta.Disconnecting != full.Disconnecting {
		t.Fatalf("%s: partition delta %d/%d != full %d/%d", name,
			delta.Survivors, delta.Disconnecting, full.Survivors, full.Disconnecting)
	}
	for i := range delta.PhiL {
		d, f := delta.PhiL[i], full.PhiL[i]
		if math.IsNaN(d) != math.IsNaN(f) {
			t.Fatalf("%s: state %d disconnection disagrees (delta %v, full %v)", name, i, d, f)
		}
		if !math.IsNaN(d) && d != f {
			t.Fatalf("%s: state %d ΦL delta %v != full %v", name, i, d, f)
		}
	}
}

// TestDeltaSweepEqualsFullAcrossModels is the engine's core property: for
// every failure model, threading states through the delta path (disable →
// delta objective → repair) is bitwise-identical to evaluating each failed
// topology from scratch — including which states disconnect.
func TestDeltaSweepEqualsFullAcrossModels(t *testing.T) {
	e := testEvaluator(t, 7)
	g := e.Graph()
	rng := rand.New(rand.NewPCG(11, 3))
	wSTR := randWeights(g.NumEdges(), rng)
	wH := randWeights(g.NumEdges(), rng)
	wL := randWeights(g.NumEdges(), rng)

	models := []Model{
		{Kind: KindLink, Count: 1},
		{Kind: KindLink, Count: 2, Sample: 25, Seed: 5},
		{Kind: KindNode},
		{Kind: KindSRLG, SRLGs: [][]int{{0, 1}, {2, 3, 4}, {10, 20, 30}}},
	}
	delta := NewSweeper(e, Options{})
	full := NewSweeper(e, Options{FullEval: true})
	verify := NewSweeper(e, Options{Verify: true})
	for _, m := range models {
		states, err := Enumerate(g, m)
		if err != nil {
			t.Fatal(err)
		}
		name := m.String()

		ds, err := delta.SweepSTR(wSTR, states)
		if err != nil {
			t.Fatalf("%s: delta STR sweep: %v", name, err)
		}
		fs, err := full.SweepSTR(wSTR, states)
		if err != nil {
			t.Fatalf("%s: full STR sweep: %v", name, err)
		}
		equalSweeps(t, name+"/STR", ds, fs)

		dd, err := delta.SweepDTR(wH, wL, states)
		if err != nil {
			t.Fatalf("%s: delta DTR sweep: %v", name, err)
		}
		fd, err := full.SweepDTR(wH, wL, states)
		if err != nil {
			t.Fatalf("%s: full DTR sweep: %v", name, err)
		}
		equalSweeps(t, name+"/DTR", dd, fd)

		// Verify mode asserts the same property internally, per state.
		if _, err := verify.SweepSTR(wSTR, states); err != nil {
			t.Fatalf("%s: verify STR sweep: %v", name, err)
		}
		if _, err := verify.SweepDTR(wH, wL, states); err != nil {
			t.Fatalf("%s: verify DTR sweep: %v", name, err)
		}
	}
}

// TestSweeperReusableAcrossRoutings moves one sweeper across several weight
// settings (the robust-search access pattern) and checks every sweep still
// matches full evaluation after repeated Disabled failure/repair cycles.
func TestSweeperReusableAcrossRoutings(t *testing.T) {
	e := testEvaluator(t, 13)
	g := e.Graph()
	states, err := Enumerate(g, Model{Kind: KindLink, Count: 1, Sample: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	delta := NewSweeper(e, Options{})
	full := NewSweeper(e, Options{FullEval: true})
	rng := rand.New(rand.NewPCG(17, 4))
	wH := randWeights(g.NumEdges(), rng)
	wL := randWeights(g.NumEdges(), rng)
	for round := 0; round < 5; round++ {
		ds, err := delta.SweepDTR(wH, wL, states)
		if err != nil {
			t.Fatal(err)
		}
		fsw, err := full.SweepDTR(wH, wL, states)
		if err != nil {
			t.Fatal(err)
		}
		ds = &Sweep{Base: ds.Base, PhiL: append([]float64(nil), ds.PhiL...),
			Survivors: ds.Survivors, Disconnecting: ds.Disconnecting}
		equalSweeps(t, "round", ds, fsw)
		// Mutate a few weights, as candidate evaluation does.
		for k := 0; k < 3; k++ {
			wH[rng.IntN(len(wH))] = 1 + rng.IntN(20)
			wL[rng.IntN(len(wL))] = 1 + rng.IntN(20)
		}
	}
}

// pendantInstance is a ring 0-1-2-3 with node 4 hanging off node 0. Demand
// runs 1→2 (high priority) and 2→1, 4→1 (low priority), so some failures
// partition demand and some don't.
func pendantInstance(t *testing.T) *eval.Evaluator {
	t.Helper()
	g := graph.New(5)
	g.AddLink(0, 1, 100, 1)
	g.AddLink(1, 2, 100, 1)
	g.AddLink(2, 3, 100, 1)
	g.AddLink(3, 0, 100, 1)
	g.AddLink(0, 4, 100, 1)
	th := traffic.NewMatrix(5)
	th.Set(1, 2, 10)
	tl := traffic.NewMatrix(5)
	tl.Set(2, 1, 8)
	tl.Set(4, 1, 4)
	e, err := eval.New(g, th, tl, eval.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDisconnectionAccounting covers the partition semantics: node and link
// failures that strand a demand are counted and skipped, failures that only
// strand demand-free nodes survive.
func TestDisconnectionAccounting(t *testing.T) {
	e := pendantInstance(t)
	g := e.Graph()
	w := spf.Uniform(g.NumEdges())
	sw := NewSweeper(e, Options{Verify: true})

	// Single-link failures: only the pendant link 0-4 strands demand (4→1);
	// every ring link has a surviving alternate path.
	states, err := Enumerate(g, Model{Kind: KindLink})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 5 {
		t.Fatalf("states = %d, want 5", len(states))
	}
	fs, err := CompareSchemes(sw, w, w, w, states)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Disconnecting != 1 {
		t.Fatalf("link disconnecting = %d, want 1 (pendant)", fs.Disconnecting)
	}
	if len(fs.STR) != 4 || len(fs.DTR) != 4 || len(fs.Labels) != 4 {
		t.Fatalf("survivors = %d/%d, want 4", len(fs.STR), len(fs.DTR))
	}

	// Node failures: nodes 0 (cuts 4→1), 1, 2, 4 carry demand endpoints or
	// strand them; only node 3's failure leaves every demand routable.
	nodeStates, err := Enumerate(g, Model{Kind: KindNode})
	if err != nil {
		t.Fatal(err)
	}
	nfs, err := CompareSchemes(sw, w, w, w, nodeStates)
	if err != nil {
		t.Fatal(err)
	}
	if nfs.Disconnecting != 4 || len(nfs.STR) != 1 {
		t.Fatalf("node failures: %d disconnecting / %d surviving, want 4/1", nfs.Disconnecting, len(nfs.STR))
	}
	if nfs.Labels[0] != "node n3" {
		t.Fatalf("surviving node state = %q, want node n3", nfs.Labels[0])
	}

	// SRLG failure grouping ring links 1-2 and 2-3 isolates node 2 → the
	// 2→1 demand strands; a group of links 2-3 and 3-0 only isolates the
	// demand-free node 3 → survives.
	srlgStates, err := Enumerate(g, Model{Kind: KindSRLG, SRLGs: [][]int{{1, 2}, {2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	sfs, err := CompareSchemes(sw, w, w, w, srlgStates)
	if err != nil {
		t.Fatal(err)
	}
	if sfs.Disconnecting != 1 || len(sfs.STR) != 1 {
		t.Fatalf("srlg failures: %d disconnecting / %d surviving, want 1/1", sfs.Disconnecting, len(sfs.STR))
	}
}

// TestAllStatesDisconnectedErrors exercises the "every evaluated failure
// disconnected" error path on a 2-node instance whose only link is the only
// path.
func TestAllStatesDisconnectedErrors(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 100, 1)
	th := traffic.NewMatrix(2)
	th.Set(0, 1, 5)
	tl := traffic.NewMatrix(2)
	tl.Set(1, 0, 5)
	e, err := eval.New(g, th, tl, eval.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	states, err := Enumerate(g, Model{Kind: KindLink})
	if err != nil {
		t.Fatal(err)
	}
	w := spf.Uniform(g.NumEdges())
	for _, opts := range []Options{{}, {FullEval: true}, {Verify: true}} {
		sw := NewSweeper(e, opts)
		_, err := CompareSchemes(sw, w, w, w, states)
		if err == nil {
			t.Errorf("opts %+v: all-disconnected sweep did not error", opts)
			continue
		}
		// The error must name the offending state, not just report failure.
		if !strings.Contains(err.Error(), states[0].Label) || !strings.Contains(err.Error(), "state 0") {
			t.Errorf("opts %+v: error does not identify the disconnecting state: %v", opts, err)
		}
	}
}

// TestCompareSchemesBaselinesMatchEvaluator pins the baseline contract: the
// sweeper's intact ΦL equals the evaluator's, bitwise.
func TestCompareSchemesBaselinesMatchEvaluator(t *testing.T) {
	e := testEvaluator(t, 23)
	g := e.Graph()
	rng := rand.New(rand.NewPCG(29, 5))
	wSTR := randWeights(g.NumEdges(), rng)
	wH := randWeights(g.NumEdges(), rng)
	wL := randWeights(g.NumEdges(), rng)
	states, err := Enumerate(g, Model{Kind: KindLink, Sample: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CompareSchemes(NewSweeper(e, Options{}), wSTR, wH, wL, states)
	if err != nil {
		t.Fatal(err)
	}
	strRes, err := e.EvaluateSTR(wSTR)
	if err != nil {
		t.Fatal(err)
	}
	dtrRes, err := e.EvaluateDTR(wH, wL)
	if err != nil {
		t.Fatal(err)
	}
	if fs.BaseSTR != strRes.PhiL || fs.BaseDTR != dtrRes.PhiL {
		t.Fatalf("baselines %v/%v != evaluator %v/%v", fs.BaseSTR, fs.BaseDTR, strRes.PhiL, dtrRes.PhiL)
	}
	sum := fs.Summary("link(sample=8)")
	if sum.Model != "link(sample=8)" || sum.Evaluated != 8 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.STR.WorstState == "" || sum.DTR.WorstState == "" {
		t.Fatal("summary has no worst-state labels")
	}
	if sum.STR.MaxDegr < sum.STR.P95Degr || sum.STR.P95Degr < sum.STR.P50Degr {
		t.Fatalf("degradation quantiles out of order: %+v", sum.STR)
	}
}
