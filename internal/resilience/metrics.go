package resilience

import "dualtopo/internal/obs"

// Sweep telemetry, shared by every sweeper in the process. Handles are
// pre-resolved so per-state updates are single atomic adds; the worst-case
// gauge is a running max over every sweep since process start.
var met = struct {
	sweeps       *obs.Counter
	statesOK     *obs.Counter
	statesDisc   *obs.Counter
	sweepSeconds *obs.Histogram
	worstDegr    *obs.Gauge
}{
	sweeps:       obs.Default().Counter("resilience_sweeps_total", "Failure sweeps executed."),
	statesOK:     obs.Default().CounterVec("resilience_states_total", "Failure states evaluated, by outcome.", "outcome").With("survived"),
	statesDisc:   obs.Default().CounterVec("resilience_states_total", "Failure states evaluated, by outcome.", "outcome").With("disconnected"),
	sweepSeconds: obs.Default().Histogram("resilience_sweep_seconds", "Wall-clock duration of one failure sweep.", obs.ExpBuckets(1e-4, 10, 9)),
	worstDegr:    obs.Default().Gauge("resilience_worst_degradation", "Worst ΦL degradation factor (failed/intact) seen by any sweep."),
}

// recordSweep folds one finished sweep into the process-wide telemetry.
func recordSweep(sw *Sweep, seconds float64) {
	met.sweeps.Inc()
	met.statesOK.Add(int64(sw.Survivors))
	met.statesDisc.Add(int64(sw.Disconnecting))
	met.sweepSeconds.Observe(seconds)
	if sw.Base > 0 {
		for _, phiL := range sw.PhiL {
			// NaN (disconnecting states) is ignored by SetMax.
			met.worstDegr.SetMax(phiL / sw.Base)
		}
	}
}
