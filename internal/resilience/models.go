// Package resilience makes failure scenarios a structural layer of the
// dual-topology routing system: deterministic enumerators and seeded
// samplers over failure-state families (single link, dual link, node,
// shared-risk link group), and a sweep engine that evaluates every state
// through the incremental routing core (disable → delta objective → repair)
// instead of re-running a full evaluation per state.
//
// The failure semantics follow the paper's §5 robustness study: link weights
// stay fixed across failures (operators run between re-optimizations) and
// OSPF reconverges on the surviving arcs. A state that leaves some demand
// without a path "disconnects" the network: both routing schemes lose the
// same physical reachability, so such states are counted and skipped rather
// than scored.
package resilience

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"dualtopo/internal/graph"
)

// Failure-model kinds accepted by Model.
const (
	// KindLink fails Count bidirectional links simultaneously (1 or 2).
	KindLink = "link"
	// KindNode fails one node: every arc entering or leaving it. Any demand
	// sourced at or destined to the failed node is stranded by construction,
	// so node sweeps are informative only on instances with demand-free
	// transit nodes (all-pairs gravity demand disconnects on every state).
	KindNode = "node"
	// KindSRLG fails one shared-risk link group: a caller-defined set of
	// links that share fate (a conduit, a line card, a fiber span).
	KindSRLG = "srlg"
)

// Model selects a failure-state family and how much of it to evaluate. The
// zero value normalizes to every single bidirectional link failure.
type Model struct {
	// Kind is "link", "node" or "srlg"; empty means "link".
	Kind string
	// Count is the number of simultaneously failed links for KindLink: 1
	// (every single-link failure) or 2 (every unordered link pair). 0 means 1.
	Count int
	// SRLGs lists the shared-risk groups for KindSRLG as indexes into the
	// canonical Links order (ascending first-arc ID).
	SRLGs [][]int
	// Sample, when positive and smaller than the family, evaluates a seeded
	// uniform sample of that many states instead of the full enumeration.
	// Enumeration order is preserved, so sampled sweeps stay deterministic.
	Sample int
	// Seed drives the sampler; it is ignored when no sampling happens.
	Seed uint64
}

// Normalize resolves the zero-value defaults.
func (m Model) Normalize() Model {
	if m.Kind == "" {
		m.Kind = KindLink
	}
	if m.Count == 0 {
		m.Count = 1
	}
	return m
}

// Validate reports the first graph-independent problem with the model.
// SRLG link indexes are range-checked later, by Enumerate.
func (m Model) Validate() error {
	m = m.Normalize()
	switch m.Kind {
	case KindLink:
		if m.Count != 1 && m.Count != 2 {
			return fmt.Errorf("resilience: link failure count %d (want 1 or 2)", m.Count)
		}
	case KindNode:
	case KindSRLG:
		if len(m.SRLGs) == 0 {
			return fmt.Errorf("resilience: srlg model without groups")
		}
		for gi, grp := range m.SRLGs {
			if len(grp) == 0 {
				return fmt.Errorf("resilience: srlg group %d is empty", gi)
			}
			for _, li := range grp {
				if li < 0 {
					return fmt.Errorf("resilience: srlg group %d has negative link index %d", gi, li)
				}
			}
		}
	default:
		return fmt.Errorf("resilience: unknown failure kind %q (link|node|srlg)", m.Kind)
	}
	if m.Sample < 0 {
		return fmt.Errorf("resilience: negative sample size %d", m.Sample)
	}
	return nil
}

// String renders the model for summaries, e.g. "link", "dual-link",
// "node(sample=8)".
func (m Model) String() string {
	m = m.Normalize()
	name := m.Kind
	if m.Kind == KindLink && m.Count == 2 {
		name = "dual-link"
	}
	if m.Sample > 0 {
		return fmt.Sprintf("%s(sample=%d)", name, m.Sample)
	}
	return name
}

// State is one failure state: the set of arcs that go down together.
type State struct {
	// Label identifies the state in reports ("link n3-n7", "node n4", ...).
	Label string
	// Arcs are the simultaneously disabled arcs.
	Arcs []graph.EdgeID
}

// Link is one bidirectional link in canonical order: AB is the
// lower-numbered arc, BA its reverse.
type Link struct {
	AB, BA graph.EdgeID
	A, B   graph.NodeID
}

// Links returns the graph's bidirectional links in canonical order
// (ascending AB arc ID). Arcs without a reverse are not links and are
// skipped, matching the paper's bidirectional failure model.
func Links(g *graph.Graph) []Link {
	seen := make([]bool, g.NumEdges())
	links := make([]Link, 0, g.NumEdges()/2)
	for _, e := range g.Edges() {
		if seen[e.ID] {
			continue
		}
		rev, ok := g.Reverse(e.ID)
		if !ok {
			continue
		}
		seen[e.ID] = true
		seen[rev] = true
		links = append(links, Link{AB: e.ID, BA: rev, A: e.From, B: e.To})
	}
	return links
}

// Enumerate expands the model into its deterministic state list over g,
// applying the model's seeded uniform sampling when configured. The result
// depends only on (g, m) — never on scheduling or prior calls.
func Enumerate(g *graph.Graph, m Model) ([]State, error) {
	m = m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	links := Links(g)
	var states []State
	switch m.Kind {
	case KindLink:
		if m.Count == 1 {
			states = make([]State, 0, len(links))
			for _, l := range links {
				states = append(states, State{
					Label: fmt.Sprintf("link %s-%s", g.Name(l.A), g.Name(l.B)),
					Arcs:  []graph.EdgeID{l.AB, l.BA},
				})
			}
		} else {
			states = make([]State, 0, len(links)*(len(links)-1)/2)
			for i := 0; i < len(links); i++ {
				for j := i + 1; j < len(links); j++ {
					li, lj := links[i], links[j]
					states = append(states, State{
						Label: fmt.Sprintf("link %s-%s + link %s-%s",
							g.Name(li.A), g.Name(li.B), g.Name(lj.A), g.Name(lj.B)),
						Arcs: []graph.EdgeID{li.AB, li.BA, lj.AB, lj.BA},
					})
				}
			}
		}
	case KindNode:
		for n := 0; n < g.NumNodes(); n++ {
			u := graph.NodeID(n)
			arcs := make([]graph.EdgeID, 0, len(g.Out(u))+len(g.In(u)))
			arcs = append(arcs, g.Out(u)...)
			arcs = append(arcs, g.In(u)...)
			if len(arcs) == 0 {
				continue
			}
			states = append(states, State{
				Label: fmt.Sprintf("node %s", g.Name(u)),
				Arcs:  arcs,
			})
		}
	case KindSRLG:
		states = make([]State, 0, len(m.SRLGs))
		for gi, grp := range m.SRLGs {
			mark := make(map[graph.EdgeID]bool, 2*len(grp))
			arcs := make([]graph.EdgeID, 0, 2*len(grp))
			names := make([]string, 0, len(grp))
			for _, li := range grp {
				if li >= len(links) {
					return nil, fmt.Errorf("resilience: srlg group %d references link %d, graph has %d links",
						gi, li, len(links))
				}
				l := links[li]
				for _, a := range []graph.EdgeID{l.AB, l.BA} {
					if !mark[a] {
						mark[a] = true
						arcs = append(arcs, a)
					}
				}
				names = append(names, fmt.Sprintf("%s-%s", g.Name(l.A), g.Name(l.B)))
			}
			states = append(states, State{
				Label: fmt.Sprintf("srlg %d (%s)", gi, strings.Join(names, ",")),
				Arcs:  arcs,
			})
		}
	}
	return sampleStates(states, m.Sample, m.Seed), nil
}

// sampleStates draws a uniform sample of n states without replacement,
// seeded and order-preserving: the selected states keep their enumeration
// order, so downstream sweeps remain deterministic. Unlike a prefix
// truncation, every state is equally likely to be evaluated regardless of
// its edge IDs.
func sampleStates(states []State, n int, seed uint64) []State {
	if n <= 0 || n >= len(states) {
		return states
	}
	rng := rand.New(rand.NewPCG(seed, 0x7265736c69656e63)) // "reslienc"
	idx := make([]int, len(states))
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher–Yates: the first n entries become the sample.
	for i := 0; i < n; i++ {
		j := i + rng.IntN(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	picked := idx[:n]
	sort.Ints(picked)
	out := make([]State, n)
	for i, k := range picked {
		out[i] = states[k]
	}
	return out
}
