package resilience

import (
	"fmt"
	"math"
	"time"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/traffic"
)

// Options configures how a Sweeper evaluates failure states.
type Options struct {
	// FullEval evaluates every state with a from-scratch EvaluateSTR /
	// EvaluateDTR instead of the incremental disable → delta → repair path.
	// Exists as the baseline for benchmarks and the Verify oracle.
	FullEval bool
	// Verify runs the delta path but re-evaluates every state (and the
	// intact baseline) from scratch too, failing the sweep on any bitwise
	// disagreement — including disagreement about disconnection. Debug mode.
	Verify bool
	// RouteWorkers bounds the SPF worker pool used by the from-scratch
	// evaluations of the FullEval and Verify modes; 0 picks a block-aware
	// automatic value from the instance size and GOMAXPROCS, 1 keeps them
	// sequential. Parallel routing is bitwise-identical to sequential, so
	// sweep results (and Verify verdicts) do not depend on this setting.
	RouteWorkers int
}

// Sweeper evaluates routings under failure states for one problem instance.
// Each sweep threads every state's arc set through the incremental routing
// core: disable the arcs (delta Apply), re-reduce the low-priority objective
// over the maintained per-arc cost vector, then repair (delta Apply back).
// Results are bitwise-identical to evaluating each surviving topology from
// scratch; states whose failure leaves some demand unreachable are marked
// disconnecting (NaN) and the routers recover via a full fallback route.
//
// A Sweeper is not safe for concurrent use; give each goroutine its own.
type Sweeper struct {
	g        *graph.Graph
	th, tl   *traffic.Matrix
	capacity []float64
	e        *eval.Evaluator // pooled clone backing the full/verify paths
	opts     Options

	str *sweepEngine // both classes on one router (STR)
	dtr *sweepEngine // one router per class (DTR)
}

// NewSweeper builds a sweeper over e's problem instance. The evaluator is
// cloned, so e's own routing plans are never disturbed.
func NewSweeper(e *eval.Evaluator, opts Options) *Sweeper {
	return NewSweeperFrom(e.Clone(), opts)
}

// NewSweeperFrom builds a sweeper that drives e directly instead of cloning
// it — the handle-friendly constructor for pooled engine sessions that
// already own a private evaluator clone and want one per-session sweeper
// without a second copy of the routing plans. The caller must not use e
// concurrently with the sweeper (full/verify sweeps route on it), and must
// accept that those modes leave e's plans at the last swept state.
func NewSweeperFrom(e *eval.Evaluator, opts Options) *Sweeper {
	g := e.Graph()
	th, tl := e.Matrices()
	s := &Sweeper{
		g:        g,
		th:       th,
		tl:       tl,
		capacity: g.CSR().Capacity,
		e:        e,
		opts:     opts,
	}
	// The sweeper's evaluator is driven sequentially, so it can keep the
	// parallel full-route enabled for its lifetime (0 = auto).
	if opts.RouteWorkers != 1 {
		s.e.SetRouteWorkers(opts.RouteWorkers)
	}
	return s
}

// Sweep is the outcome of evaluating one routing under a state set.
type Sweep struct {
	// Base is the intact-network ΦL, bitwise-equal to the full evaluation's.
	Base float64
	// PhiL holds the per-state low-priority cost, parallel to the swept
	// states; disconnecting states are NaN. The slice is reused by the
	// sweeper's next sweep of the same scheme.
	PhiL []float64
	// Survivors and Disconnecting partition the states.
	Survivors, Disconnecting int
}

// sweepEngine is the per-scheme incremental state: one or two delta routers
// pinned to a base weight setting, plus the per-arc ΦL vector kept current
// across disable/repair transitions. For STR both matrices ride one router
// (drL == nil); for DTR each class has its own.
type sweepEngine struct {
	drH, drL *spf.DeltaRouter
	// baseH/baseL snapshot the intact weights; bufH/bufL are the working
	// copies that states mutate to Disabled and back.
	baseH, baseL spf.Weights
	bufH, bufL   spf.Weights
	linkPhiL     []float64
	diffBuf      []graph.EdgeID
	phiBuf       []float64
}

func (s *Sweeper) engine(dual bool) *sweepEngine {
	slot := &s.str
	if dual {
		slot = &s.dtr
	}
	if *slot != nil {
		return *slot
	}
	m := s.g.NumEdges()
	en := &sweepEngine{
		baseH:    make(spf.Weights, m),
		bufH:     make(spf.Weights, m),
		linkPhiL: make([]float64, m),
	}
	if dual {
		en.drH = spf.NewDeltaRouter(s.g, s.th)
		en.drL = spf.NewDeltaRouter(s.g, s.tl)
		en.baseL = make(spf.Weights, m)
		en.bufL = make(spf.Weights, m)
	} else {
		en.drH = spf.NewDeltaRouter(s.g, s.th, s.tl)
	}
	*slot = en
	return en
}

// loads returns the engine's current per-arc class loads.
func (en *sweepEngine) loads() (h, l []float64) {
	if en.drL != nil {
		return en.drH.Loads[0], en.drL.Loads[0]
	}
	return en.drH.Loads[0], en.drH.Loads[1]
}

// rescore recomputes the per-arc ΦL of the listed arcs from the current
// loads — the same per-arc expression eval's full paths use.
func (s *Sweeper) rescore(en *sweepEngine, arcs []graph.EdgeID) {
	h, l := en.loads()
	for _, a := range arcs {
		en.linkPhiL[a] = cost.Phi(l[a], cost.Residual(s.capacity[a], h[a]))
	}
}

// rescoreAll recomputes every arc — the recovery path after a full fallback
// route rewrote the load vectors wholesale.
func (s *Sweeper) rescoreAll(en *sweepEngine) {
	h, l := en.loads()
	for a := range en.linkPhiL {
		en.linkPhiL[a] = cost.Phi(l[a], cost.Residual(s.capacity[a], h[a]))
	}
}

// sum re-reduces ΦL in ascending arc order — the exact summation sequence
// Evaluator.finish performs, which is what makes delta sweeps bitwise-equal
// to full evaluation.
func (en *sweepEngine) sum() float64 {
	phiL := 0.0
	for _, v := range en.linkPhiL {
		phiL += v
	}
	return phiL
}

// moveRouter transitions one router to w (exact diff against its current
// setting) and rescores whatever moved. A router without valid state — first
// use, or after an error — full-routes and triggers a full rescore via the
// returned all-arcs moved set.
func (s *Sweeper) moveRouter(en *sweepEngine, dr *spf.DeltaRouter, w spf.Weights) error {
	en.diffBuf = spf.DiffArcs(dr.Weights(), w, en.diffBuf[:0])
	moved, err := dr.Apply(w, en.diffBuf)
	if err != nil {
		return err
	}
	s.rescore(en, moved)
	return nil
}

// move pins the engine's base routing, rescoring incrementally from wherever
// the routers currently sit.
func (s *Sweeper) move(en *sweepEngine, wH, wL spf.Weights) error {
	if err := s.moveRouter(en, en.drH, wH); err != nil {
		return err
	}
	copy(en.baseH, wH)
	copy(en.bufH, wH)
	if en.drL != nil {
		if err := s.moveRouter(en, en.drL, wL); err != nil {
			return err
		}
		copy(en.baseL, wL)
		copy(en.bufL, wL)
	}
	return nil
}

// SweepSTR evaluates the single-topology routing w under every state,
// returning per-state ΦL. The result's PhiL slice is reused by the next
// SweepSTR call.
func (s *Sweeper) SweepSTR(w spf.Weights, states []State) (*Sweep, error) {
	if s.opts.FullEval {
		return s.sweepFull(states, w, nil, false)
	}
	return s.sweepDelta(s.engine(false), w, nil, states)
}

// SweepDTR evaluates the dual-topology routing (wH, wL) under every state.
// Both topologies lose the same arcs per state, per the failure model. The
// result's PhiL slice is reused by the next SweepDTR call.
func (s *Sweeper) SweepDTR(wH, wL spf.Weights, states []State) (*Sweep, error) {
	if s.opts.FullEval {
		return s.sweepFull(states, wH, wL, true)
	}
	return s.sweepDelta(s.engine(true), wH, wL, states)
}

// fullPhiL evaluates one (possibly failed) weight setting from scratch.
func (s *Sweeper) fullPhiL(dual bool, wH, wL spf.Weights) (float64, error) {
	if dual {
		r, err := s.e.EvaluateDTR(wH, wL)
		if err != nil {
			return 0, err
		}
		return r.PhiL, nil
	}
	r, err := s.e.EvaluateSTR(wH)
	if err != nil {
		return 0, err
	}
	return r.PhiL, nil
}

// sweepFull is the opt-out path: every state is a from-scratch evaluation on
// WithFailedArcs copies, exactly what the pre-delta failure sweep did.
func (s *Sweeper) sweepFull(states []State, wH, wL spf.Weights, dual bool) (*Sweep, error) {
	start := time.Now()
	base, err := s.fullPhiL(dual, wH, wL)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Base: base, PhiL: make([]float64, len(states))}
	for i, st := range states {
		fwH := wH.WithFailedArcs(st.Arcs...)
		var fwL spf.Weights
		if dual {
			fwL = wL.WithFailedArcs(st.Arcs...)
		}
		phiL, err := s.fullPhiL(dual, fwH, fwL)
		if err != nil {
			sw.PhiL[i] = math.NaN()
			sw.Disconnecting++
			continue
		}
		sw.PhiL[i] = phiL
		sw.Survivors++
	}
	recordSweep(sw, time.Since(start).Seconds())
	return sw, nil
}

// sweepDelta is the fast path: pin the base routing, then per state disable
// the arcs, re-reduce ΦL over the moved arcs, and repair.
func (s *Sweeper) sweepDelta(en *sweepEngine, wH, wL spf.Weights, states []State) (*Sweep, error) {
	start := time.Now()
	if err := s.move(en, wH, wL); err != nil {
		return nil, err
	}
	if cap(en.phiBuf) < len(states) {
		en.phiBuf = make([]float64, len(states))
	}
	sw := &Sweep{Base: en.sum(), PhiL: en.phiBuf[:len(states)]}
	if s.opts.Verify {
		full, err := s.fullPhiL(en.drL != nil, wH, wL)
		if err != nil {
			return nil, fmt.Errorf("resilience: verify: intact network failed full evaluation: %w", err)
		}
		if full != sw.Base {
			return nil, fmt.Errorf("resilience: verify: intact ΦL delta %v != full %v", sw.Base, full)
		}
	}
	for i, st := range states {
		phiL, ok, err := s.evalState(en, st)
		if err != nil {
			return nil, err
		}
		if !ok {
			sw.PhiL[i] = math.NaN()
			sw.Disconnecting++
		} else {
			sw.PhiL[i] = phiL
			sw.Survivors++
		}
		if s.opts.Verify {
			if err := s.verifyState(en, st, phiL, ok); err != nil {
				return nil, err
			}
		}
	}
	recordSweep(sw, time.Since(start).Seconds())
	return sw, nil
}

// evalState scores one failure state and restores the engine to its base
// routing. ok reports whether the state left every demand connected.
//
// The state is threaded through the incremental core: checkpoint, disable
// the arcs (a pure weight increase, served by the partial SPF path),
// re-reduce ΦL over the moved arcs, then Revert — a support-sized rollback
// that never recomputes, even when the failure disconnected a demand and
// invalidated a router mid-apply.
func (s *Sweeper) evalState(en *sweepEngine, st State) (phiL float64, ok bool, err error) {
	if err := en.drH.Checkpoint(); err != nil {
		return 0, false, err
	}
	if en.drL != nil {
		if err := en.drL.Checkpoint(); err != nil {
			return 0, false, err
		}
	}
	for _, a := range st.Arcs {
		en.bufH[a] = spf.Disabled
		if en.bufL != nil {
			en.bufL[a] = spf.Disabled
		}
	}
	movedH, errH := en.drH.Apply(en.bufH, st.Arcs)
	var movedL []graph.EdgeID
	var errL error
	if errH == nil && en.drL != nil {
		movedL, errL = en.drL.Apply(en.bufL, st.Arcs)
	}
	ok = errH == nil && errL == nil
	if ok {
		s.rescore(en, movedH)
		if en.drL != nil {
			s.rescore(en, movedL)
		}
		phiL = en.sum()
	}
	en.drH.Revert()
	if en.drL != nil {
		en.drL.Revert()
	}
	for _, a := range st.Arcs {
		en.bufH[a] = en.baseH[a]
		if en.bufL != nil {
			en.bufL[a] = en.baseL[a]
		}
	}
	if ok {
		// The rolled-back loads are the base loads again; re-scoring the
		// same moved arcs restores the ΦL vector bitwise.
		s.rescore(en, movedH)
		if en.drL != nil {
			s.rescore(en, movedL)
		}
	}
	return phiL, ok, nil
}

// verifyState asserts the delta outcome of one state — its ΦL and its
// disconnection verdict — against a from-scratch evaluation.
func (s *Sweeper) verifyState(en *sweepEngine, st State, phiL float64, ok bool) error {
	dual := en.drL != nil
	fwH := en.baseH.WithFailedArcs(st.Arcs...)
	var fwL spf.Weights
	if dual {
		fwL = en.baseL.WithFailedArcs(st.Arcs...)
	}
	full, err := s.fullPhiL(dual, fwH, fwL)
	switch {
	case err != nil && ok:
		return fmt.Errorf("resilience: verify %q: delta survived, full evaluation disconnected: %v", st.Label, err)
	case err == nil && !ok:
		return fmt.Errorf("resilience: verify %q: delta disconnected, full evaluation survived (ΦL %v)", st.Label, full)
	case err == nil && full != phiL:
		return fmt.Errorf("resilience: verify %q: delta ΦL %v != full %v", st.Label, phiL, full)
	}
	return nil
}
