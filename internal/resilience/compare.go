package resilience

import (
	"fmt"
	"math"

	"dualtopo/internal/spf"
	"dualtopo/internal/stats"
)

// Samples holds the per-state low-priority degradation factors of one
// optimized point under one failure model: ΦL(failed)/ΦL(intact) for each
// surviving state, for both routing schemes in parallel. Weights stay fixed
// across states — OSPF reconverges on the survivors.
type Samples struct {
	// Labels names the surviving states; STR and DTR are their parallel
	// degradation-factor samples.
	Labels   []string
	STR, DTR []float64
	// BaseSTR and BaseDTR are the intact-network ΦL baselines.
	BaseSTR, BaseDTR float64
	// Disconnecting counts states that left some demand without a path
	// (skipped: both schemes lose the same physical reachability).
	Disconnecting int
}

// CompareSchemes sweeps both schemes' final weight settings over the same
// state set and pairs the outcomes. It fails when every state disconnected
// the network — there is nothing to compare — and on the (impossible by
// construction) event of the schemes disagreeing about reachability.
func CompareSchemes(sw *Sweeper, wSTR, wH, wL spf.Weights, states []State) (*Samples, error) {
	strSweep, err := sw.SweepSTR(wSTR, states)
	if err != nil {
		return nil, err
	}
	// SweepDTR reuses a separate engine buffer, but copy the STR outcomes
	// first anyway so this function never depends on engine internals.
	strPhiL := append([]float64(nil), strSweep.PhiL...)
	dtrSweep, err := sw.SweepDTR(wH, wL, states)
	if err != nil {
		return nil, err
	}
	fs := &Samples{BaseSTR: strSweep.Base, BaseDTR: dtrSweep.Base}
	firstDisc := -1
	for i, st := range states {
		sPhi, dPhi := strPhiL[i], dtrSweep.PhiL[i]
		if math.IsNaN(sPhi) != math.IsNaN(dPhi) {
			return nil, fmt.Errorf("resilience: schemes disagree on disconnection of state %q", st.Label)
		}
		if math.IsNaN(sPhi) {
			if firstDisc < 0 {
				firstDisc = i
			}
			fs.Disconnecting++
			continue
		}
		fs.Labels = append(fs.Labels, st.Label)
		fs.STR = append(fs.STR, sPhi/fs.BaseSTR)
		fs.DTR = append(fs.DTR, dPhi/fs.BaseDTR)
	}
	if len(fs.STR) == 0 {
		// Name the offending states so the caller can fix the model or the
		// instance instead of guessing from a bare failure.
		return nil, fmt.Errorf("resilience: all %d evaluated failure states disconnected the network (first: state %d %q)",
			len(states), firstDisc, states[firstDisc].Label)
	}
	return fs, nil
}

// DTRStillBetter counts states after which DTR keeps the lower absolute ΦL
// despite both schemes degrading.
func (fs *Samples) DTRStillBetter() int {
	n := 0
	for i := range fs.STR {
		if fs.DTR[i]*fs.BaseDTR <= fs.STR[i]*fs.BaseSTR {
			n++
		}
	}
	return n
}

// ClassSummary condenses one scheme's degradation distribution.
type ClassSummary struct {
	MeanDegr float64 `json:"mean_degradation"`
	P50Degr  float64 `json:"p50_degradation"`
	P95Degr  float64 `json:"p95_degradation"`
	MaxDegr  float64 `json:"max_degradation"`
	// WorstState names the failure state with the highest degradation.
	WorstState string `json:"worst_state"`
}

func classSummary(xs []float64, labels []string) ClassSummary {
	worst := ""
	if len(xs) > 0 {
		wi := 0
		for i, x := range xs {
			if x > xs[wi] {
				wi = i
			}
		}
		worst = labels[wi]
	}
	return ClassSummary{
		MeanDegr:   stats.Mean(xs),
		P50Degr:    stats.Quantile(xs, 0.5),
		P95Degr:    stats.Quantile(xs, 0.95),
		MaxDegr:    stats.Max(xs),
		WorstState: worst,
	}
}

// Summary condenses Samples for trial records and aggregates.
type Summary struct {
	// Model names the failure model that generated the states.
	Model string `json:"model"`
	// Evaluated counts all swept states (surviving + disconnecting).
	Evaluated     int          `json:"evaluated"`
	Disconnecting int          `json:"disconnecting"`
	STR           ClassSummary `json:"str"`
	DTR           ClassSummary `json:"dtr"`
	// DTRStillBetter counts states after which DTR keeps the lower absolute
	// ΦL.
	DTRStillBetter int `json:"dtr_still_better"`
}

// Summary condenses the samples; model names the generating failure model.
func (fs *Samples) Summary(model string) *Summary {
	return &Summary{
		Model:          model,
		Evaluated:      len(fs.STR) + fs.Disconnecting,
		Disconnecting:  fs.Disconnecting,
		STR:            classSummary(fs.STR, fs.Labels),
		DTR:            classSummary(fs.DTR, fs.Labels),
		DTRStillBetter: fs.DTRStillBetter(),
	}
}
