package resilience_test

// BenchmarkFailureSweep pins the tentpole speedup: sweeping every
// single-link failure of the paper's 30-node instance through the
// incremental engine (disable → delta objective → repair) versus full
// re-evaluation per state. The external test package lets the benchmark
// build its instance through the scenario machinery without an import
// cycle.

import (
	"math/rand/v2"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/resilience"
	"dualtopo/internal/scenario"
	"dualtopo/internal/spf"
)

func benchSetup(b *testing.B) (*eval.Evaluator, []resilience.State, [3]spf.Weights) {
	b.Helper()
	spec := scenario.InstanceSpec{Topology: scenario.TopoRandom, Kind: eval.LoadBased, TargetUtil: 0.6, Seed: 1101}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	e, err := inst.Evaluator()
	if err != nil {
		b.Fatal(err)
	}
	states, err := resilience.Enumerate(inst.G, resilience.Model{Kind: resilience.KindLink})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	var ws [3]spf.Weights
	for i := range ws {
		w := make(spf.Weights, inst.G.NumEdges())
		for a := range w {
			w[a] = 1 + rng.IntN(20)
		}
		ws[i] = w
	}
	return e, states, ws
}

func BenchmarkFailureSweep(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts resilience.Options
	}{
		{"delta", resilience.Options{}},
		{"full", resilience.Options{FullEval: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e, states, ws := benchSetup(b)
			sw := resilience.NewSweeper(e, mode.opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fs, err := resilience.CompareSchemes(sw, ws[0], ws[1], ws[2], states)
				if err != nil {
					b.Fatal(err)
				}
				if len(fs.STR) == 0 {
					b.Fatal("no surviving states")
				}
			}
			b.ReportMetric(float64(len(states)), "states")
		})
	}
}
