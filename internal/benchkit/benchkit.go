// Package benchkit holds the canonical benchmark instances and metric
// extraction shared by the root benchmark suite (bench_test.go) and
// cmd/dtrbench, so the committed BENCH_*.json reports always measure
// exactly what `go test -bench` measures — the two cannot drift.
package benchkit

import (
	"math/rand/v2"
	"strings"

	"dualtopo"
	"dualtopo/internal/eval"
	"dualtopo/internal/scenario"
	"dualtopo/internal/topo"
)

// PeakRL extracts the headline reproduction metric from an experiment
// report: the peak y-value across the L-cost-ratio-bearing series (the
// per-figure ratio series named "L-cost ratio", "k…"/"f…" sweeps, and the
// sink placements "Uniform"/"Local").
func PeakRL(rep *dualtopo.ExperimentReport) float64 {
	peak := 0.0
	for _, s := range rep.Series {
		// HasPrefix, not a [:1] slice: an empty series name must not panic
		// the whole benchmark run.
		if s.Name == "L-cost ratio" || strings.HasPrefix(s.Name, "k") ||
			strings.HasPrefix(s.Name, "f") ||
			s.Name == "Uniform" || s.Name == "Local" {
			for _, y := range s.Y {
				if y > peak {
					peak = y
				}
			}
		}
	}
	return peak
}

// SPFInstance builds the standard 100-node, 250-link single-destination SPF
// micro-benchmark instance with paper-range [1, 30] weights.
func SPFInstance() (*dualtopo.Graph, dualtopo.Weights, error) {
	rng := rand.New(rand.NewPCG(3, 3))
	g, err := dualtopo.RandomTopology(100, 250, dualtopo.DefaultCapacity, rng)
	if err != nil {
		return nil, nil, err
	}
	w := dualtopo.UniformWeights(g.NumEdges())
	for i := range w {
		w[i] = 1 + rng.IntN(30)
	}
	return g, w, nil
}

// RouteInstance builds the paper's standard 30-node, 150-arc random
// instance with a gravity matrix activating every destination — the
// full-route and delta-route benchmark workload.
func RouteInstance() (*dualtopo.Graph, *dualtopo.TrafficMatrix, dualtopo.Weights, error) {
	rng := rand.New(rand.NewPCG(21, 21))
	g, err := dualtopo.RandomTopology(30, 75, dualtopo.DefaultCapacity, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
	tm := dualtopo.GravityMatrix(g.NumNodes(), rng)
	w := dualtopo.UniformWeights(g.NumEdges())
	for i := range w {
		w[i] = 1 + rng.IntN(20)
	}
	return g, tm, w, nil
}

// Step applies the canonical single-arc walk the delta benchmarks use: move
// one arc's weight by ±1 (the FindH/FindL step size), cycling through the
// arcs. It returns the changed arc.
func Step(w, base dualtopo.Weights, i, m int) int {
	arc := i % m
	if w[arc] == base[arc] {
		w[arc] = base[arc] + 1
	} else {
		w[arc] = base[arc]
	}
	return arc
}

// SearchInstance builds the 500-node weight-search benchmark instance: a
// hierarchical ISP (20 PoPs x 25 routers, ~1000 bidirectional links) with
// gravity low-priority demand plus random high-priority pairs, scaled to the
// paper's 60% average utilization. This is the workload the guided-search
// acceptance numbers (the committed baseline's dtr_search series) are measured on.
func SearchInstance(kind dualtopo.ObjectiveKind) (*dualtopo.Evaluator, error) {
	spec := scenario.InstanceSpec{
		Topology:   "hier",
		Kind:       kind,
		TargetUtil: 0.6,
		Seed:       17,
		TopoParams: &topo.Params{Pops: 20, RoutersPerPop: 25},
	}
	inst, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return inst.Evaluator()
}

// EvalInstance builds the standard 30-node evaluator the search and
// objective benchmarks run on.
func EvalInstance(kind dualtopo.ObjectiveKind) (*dualtopo.Evaluator, error) {
	rng := rand.New(rand.NewPCG(7, 7))
	g, err := dualtopo.RandomTopology(30, 75, dualtopo.DefaultCapacity, rng)
	if err != nil {
		return nil, err
	}
	dualtopo.AssignUniformDelays(g, 1.2, 15, rng)
	tl := dualtopo.GravityMatrix(30, rng)
	th, err := dualtopo.RandomHighPriorityMatrix(30, 0.1, 0.3, tl.Total(), rng)
	if err != nil {
		return nil, err
	}
	opts := dualtopo.DefaultOptions()
	opts.Kind = kind
	return eval.New(g, th, tl, opts)
}
