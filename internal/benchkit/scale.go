package benchkit

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dualtopo"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// ScaleSpec names one large-scale routing benchmark instance. Traffic is
// sink-limited gravity (Sinks active destinations), because a dense n×n
// matrix is O(n²) memory and would dominate — and distort — any measurement
// of the routing core at these sizes.
type ScaleSpec struct {
	// Name keys the benchmark series ("hier10k", "waxman10k", "hier100k").
	Name string
	// Family is the topo registry family generating the graph.
	Family string
	// Nodes is the target node count.
	Nodes int
	// Sinks is the active-destination count of the gravity matrix.
	Sinks int
}

// ScaleSpecs enumerates the canonical scale instances: 10k-node hierarchical
// ISP and Waxman geometric graphs, and a 100k-node hierarchical ISP. Waxman
// stops at 10k because its generator is O(n²) in the node count.
func ScaleSpecs() []ScaleSpec {
	return []ScaleSpec{
		{Name: "hier10k", Family: "hier", Nodes: 10_000, Sinks: 64},
		{Name: "waxman10k", Family: "waxman", Nodes: 10_000, Sinks: 64},
		{Name: "hier100k", Family: "hier", Nodes: 100_000, Sinks: 16},
	}
}

// ScaleSpecByName returns the named canonical scale instance.
func ScaleSpecByName(name string) (ScaleSpec, error) {
	for _, s := range ScaleSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return ScaleSpec{}, fmt.Errorf("benchkit: unknown scale instance %q", name)
}

// Build materializes the spec: topology, sink-limited gravity matrix, and
// paper-range [1, 20] weights, all seeded deterministically from the spec.
func (s ScaleSpec) Build() (*dualtopo.Graph, *dualtopo.TrafficMatrix, dualtopo.Weights, error) {
	rng := rand.New(rand.NewPCG(uint64(s.Nodes), 0x5ca1e))
	var p topo.Params
	switch s.Family {
	case "hier":
		pops, routers, err := hierShape(s.Nodes)
		if err != nil {
			return nil, nil, nil, err
		}
		p = topo.Params{Pops: pops, RoutersPerPop: routers}
	case "waxman":
		// Alpha is tuned for sparse ISP-like degree (~10) at 10k nodes; the
		// family default (0.25) would produce millions of links.
		p = topo.Params{Nodes: s.Nodes, Alpha: 0.002, Beta: 0.6}
	default:
		return nil, nil, nil, fmt.Errorf("benchkit: scale family %q not supported", s.Family)
	}
	g, err := topo.Generate(s.Family, p, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	tm := traffic.GravitySinks(g.NumNodes(), s.Sinks, rng)
	w := dualtopo.UniformWeights(g.NumEdges())
	for i := range w {
		w[i] = 1 + rng.IntN(20)
	}
	return g, tm, w, nil
}

// hierShape factors a node count into the (pops, routersPerPop) pair the
// canonical scale instances use.
func hierShape(nodes int) (pops, routers int, err error) {
	switch nodes {
	case 10_000:
		return 100, 100, nil
	case 100_000:
		return 250, 400, nil
	default:
		return 0, 0, fmt.Errorf("benchkit: no canonical hier shape for %d nodes", nodes)
	}
}

// ZooFiles lists the GML topology files under dir in sorted order — the
// Topology-Zoo sweep corpus (examples/campaigns/topologies in this repo, or
// any directory of Zoo exports).
func ZooFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.EqualFold(filepath.Ext(e.Name()), ".gml") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("benchkit: no .gml topologies under %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

// ZooInstance imports one GML topology and equips it with the standard
// routing-benchmark traffic: dense gravity (Zoo graphs are small) and
// [1, 20] weights, seeded deterministically from the file name.
func ZooInstance(path string) (*dualtopo.Graph, *dualtopo.TrafficMatrix, dualtopo.Weights, error) {
	var seed uint64
	for _, c := range filepath.Base(path) {
		seed = seed*131 + uint64(c)
	}
	rng := rand.New(rand.NewPCG(seed, 0x200))
	g, err := topo.Generate("import", topo.Params{Path: path}, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	tm := traffic.Gravity(g.NumNodes(), rng)
	w := dualtopo.UniformWeights(g.NumEdges())
	for i := range w {
		w[i] = 1 + rng.IntN(20)
	}
	return g, tm, w, nil
}
