package topo

import (
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// Synthesized-topology propagation delay range from §5.1.1: 1.2 ms (metro)
// to 15 ms (coast-to-coast).
const (
	MinSynthDelayMs = 1.2
	MaxSynthDelayMs = 15.0
)

// AssignUniformDelays sets each bidirectional link's propagation delay to a
// uniform sample in [minMs, maxMs], identical for both arc directions (a
// fiber span has one length). Arcs without a reverse twin get their own
// sample.
func AssignUniformDelays(g *graph.Graph, minMs, maxMs float64, rng *rand.Rand) {
	done := make([]bool, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		if done[id] {
			continue
		}
		d := minMs + rng.Float64()*(maxMs-minMs)
		g.SetDelay(graph.EdgeID(id), d)
		done[id] = true
		if rev, ok := g.Reverse(graph.EdgeID(id)); ok && !done[rev] {
			g.SetDelay(rev, d)
			done[rev] = true
		}
	}
}
