package topo

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"

	"dualtopo/internal/graph"
)

// Params is the JSON-serializable parameter set shared by every registered
// topology generator. Each family reads the subset of fields it documents
// and ignores the rest, except where a stray field would contradict the
// family's structure (a links budget on a structurally-linked family, a
// node count that disagrees with rows*cols) — those are rejected. Unknown
// JSON keys are rejected at decode time by the spec loader. The zero value
// of every field means "use the family default".
type Params struct {
	// Nodes is the node count of sized families (random, powerlaw, waxman,
	// ring, hier via pops*routers).
	Nodes int `json:"nodes,omitempty"`
	// Links is the bidirectional link budget of the random and powerlaw
	// families. Families that derive their link set structurally (lattices,
	// waxman, hier, import, isp) reject a nonzero value.
	Links int `json:"links,omitempty"`
	// CapacityMbps is the per-arc capacity (default 500, the paper's).
	CapacityMbps float64 `json:"capacity_mbps,omitempty"`

	// Alpha and Beta are the Waxman link-probability parameters:
	// P(u,v) = alpha * exp(-d(u,v) / (beta * L)).
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`

	// Rows and Cols size the grid and torus lattices.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Chords is the number of diameter chords added to the ring family.
	Chords int `json:"chords,omitempty"`

	// Pops and RoutersPerPop size the two-tier hierarchical ISP family;
	// CoreCapacityX multiplies CapacityMbps on inter-PoP core links.
	Pops          int     `json:"pops,omitempty"`
	RoutersPerPop int     `json:"routers_per_pop,omitempty"`
	CoreCapacityX float64 `json:"core_capacity_x,omitempty"`

	// Path locates the file for the import family (GML or adjacency list).
	Path string `json:"path,omitempty"`

	// DelayModel selects how propagation delays are assigned:
	// "uniform" (symmetric per-link U[MinDelayMs, MaxDelayMs]),
	// "distance" (geometric, for families that place nodes in space),
	// "keep" (preserve delays produced by the generator or import file), or
	// "none" (leave all delays zero).
	DelayModel string `json:"delay_model,omitempty"`
	// MinDelayMs and MaxDelayMs bound the uniform and distance delay
	// models; defaults are the paper's synthetic 1.2-15 ms range.
	MinDelayMs float64 `json:"min_delay_ms,omitempty"`
	MaxDelayMs float64 `json:"max_delay_ms,omitempty"`
}

// Delay model names accepted by Params.DelayModel.
const (
	DelayUniform  = "uniform"
	DelayDistance = "distance"
	DelayKeep     = "keep"
	DelayNone     = "none"
)

// overlay returns p with every zero field replaced by the corresponding
// field of def. It is how family defaults and legacy spec fields compose
// with an explicit params object: explicit wins, defaults fill the rest.
func (p Params) overlay(def Params) Params {
	if p.Nodes == 0 {
		p.Nodes = def.Nodes
	}
	if p.Links == 0 {
		p.Links = def.Links
	}
	if p.CapacityMbps == 0 {
		p.CapacityMbps = def.CapacityMbps
	}
	if p.Alpha == 0 {
		p.Alpha = def.Alpha
	}
	if p.Beta == 0 {
		p.Beta = def.Beta
	}
	if p.Rows == 0 {
		p.Rows = def.Rows
	}
	if p.Cols == 0 {
		p.Cols = def.Cols
	}
	if p.Chords == 0 {
		p.Chords = def.Chords
	}
	if p.Pops == 0 {
		p.Pops = def.Pops
	}
	if p.RoutersPerPop == 0 {
		p.RoutersPerPop = def.RoutersPerPop
	}
	if p.CoreCapacityX == 0 {
		p.CoreCapacityX = def.CoreCapacityX
	}
	if p.Path == "" {
		p.Path = def.Path
	}
	if p.DelayModel == "" {
		p.DelayModel = def.DelayModel
	}
	if p.MinDelayMs == 0 {
		p.MinDelayMs = def.MinDelayMs
	}
	if p.MaxDelayMs == 0 {
		p.MaxDelayMs = def.MaxDelayMs
	}
	return p
}

// Generator is one registered topology family. Generate must be
// deterministic for a given resolved parameter set and rand source, at any
// call site: campaign reproducibility rests on it.
type Generator struct {
	// Name is the registry key ("waxman", "torus", ...).
	Name string
	// Description is a one-line summary shown by `topogen list`.
	Description string
	// Defaults holds the family's fully resolved default parameters.
	Defaults Params
	// Validate rejects out-of-range or inapplicable parameters. It sees
	// fully resolved params (Defaults already overlaid).
	Validate func(p Params) error
	// Generate builds the topology from fully resolved, validated params.
	// Delay assignment is part of generation so the family controls its rng
	// stream layout.
	Generate func(p Params, rng *rand.Rand) (*graph.Graph, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Generator{}
)

// Register adds a generator to the registry. It panics on duplicate or
// empty names: families are registered from init functions, and a collision
// is a programming error.
func Register(gen Generator) {
	if gen.Name == "" || gen.Generate == nil {
		panic("topo: Register: generator needs a name and a Generate func")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[gen.Name]; dup {
		panic(fmt.Sprintf("topo: Register: duplicate family %q", gen.Name))
	}
	g := gen
	registry[gen.Name] = &g
}

// Lookup returns the registered generator for a family name.
func Lookup(name string) (*Generator, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	gen, ok := registry[name]
	return gen, ok
}

// Families returns every registered family name in sorted order.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FamilyList renders the registry as a "a|b|c" alternation for error
// messages, so they enumerate valid families dynamically instead of going
// stale when one is added.
func FamilyList() string { return strings.Join(Families(), "|") }

// WithSizes fills p's zero sizing fields from flat shorthand values — the
// single fold point for legacy nodes/links/capacity spellings (CLI flags,
// spec shorthand fields) into a params object.
func (p Params) WithSizes(nodes, links int, capacityMbps float64) Params {
	return p.overlay(Params{Nodes: nodes, Links: links, CapacityMbps: capacityMbps})
}

// Resolve merges the family's defaults into p and validates the result.
func Resolve(family string, p Params) (Params, *Generator, error) {
	gen, ok := Lookup(family)
	if !ok {
		return Params{}, nil, fmt.Errorf("topo: unknown topology family %q (%s)", family, FamilyList())
	}
	p = p.overlay(gen.Defaults)
	// Cross-family invariants first, so no family can forget them.
	if p.Nodes < 0 || p.Links < 0 {
		return Params{}, nil, fmt.Errorf("topo: %s: negative size (nodes=%d links=%d)", family, p.Nodes, p.Links)
	}
	if p.CapacityMbps <= 0 {
		return Params{}, nil, fmt.Errorf("topo: %s: capacity_mbps=%g must be positive", family, p.CapacityMbps)
	}
	if gen.Validate != nil {
		if err := gen.Validate(p); err != nil {
			return Params{}, nil, err
		}
	}
	return p, gen, nil
}

// Generate resolves, validates and runs the named family, returning a
// strongly connected topology. It is the single entry point campaign specs
// and CLIs go through.
func Generate(family string, p Params, rng *rand.Rand) (*graph.Graph, error) {
	rp, gen, err := Resolve(family, p)
	if err != nil {
		return nil, err
	}
	g, err := gen.Generate(rp, rng)
	if err != nil {
		return nil, fmt.Errorf("topo: %s: %w", family, err)
	}
	if err := g.RequireStronglyConnected(); err != nil {
		return nil, fmt.Errorf("topo: %s: %w", family, err)
	}
	return g, nil
}

// delayDefaults are the synthetic families' shared delay settings.
var delayDefaults = Params{
	DelayModel: DelayUniform,
	MinDelayMs: MinSynthDelayMs,
	MaxDelayMs: MaxSynthDelayMs,
}

// validateDelay checks the resolved delay-model fields common to all
// families.
func validateDelay(p Params) error {
	switch p.DelayModel {
	case DelayUniform, DelayDistance, DelayKeep, DelayNone:
	default:
		return fmt.Errorf("topo: unknown delay model %q (%s|%s|%s|%s)",
			p.DelayModel, DelayUniform, DelayDistance, DelayKeep, DelayNone)
	}
	if p.MinDelayMs < 0 || p.MaxDelayMs < p.MinDelayMs {
		return fmt.Errorf("topo: delay range [%g,%g] ms invalid", p.MinDelayMs, p.MaxDelayMs)
	}
	return nil
}

// noLinksBudget rejects a links budget on families whose link set is
// structural.
func noLinksBudget(family string, p Params) error {
	if p.Links != 0 {
		return fmt.Errorf("topo: %s derives its links structurally; params.links must be unset", family)
	}
	return nil
}

func init() {
	Register(Generator{
		Name:        "random",
		Description: "connected topology with near-uniform degrees (paper §5.1.1)",
		Defaults:    Params{Nodes: 30, Links: 75, CapacityMbps: DefaultCapacity}.overlay(delayDefaults),
		Validate: func(p Params) error {
			if err := validateDelay(p); err != nil {
				return err
			}
			if p.DelayModel == DelayDistance {
				return fmt.Errorf("topo: random places no coordinates; delay_model=distance unsupported")
			}
			return nil
		},
		Generate: func(p Params, rng *rand.Rand) (*graph.Graph, error) {
			g, err := Random(p.Nodes, p.Links, p.CapacityMbps, rng)
			if err != nil {
				return nil, err
			}
			applyUniformDelay(g, p, rng)
			return g, nil
		},
	})
	Register(Generator{
		Name:        "powerlaw",
		Description: "Barabási-Albert preferential attachment with hub degrees (paper §5.1.1)",
		Defaults:    Params{Nodes: 30, Links: 81, CapacityMbps: DefaultCapacity}.overlay(delayDefaults),
		Validate: func(p Params) error {
			if err := validateDelay(p); err != nil {
				return err
			}
			if p.DelayModel == DelayDistance {
				return fmt.Errorf("topo: powerlaw places no coordinates; delay_model=distance unsupported")
			}
			return nil
		},
		Generate: func(p Params, rng *rand.Rand) (*graph.Graph, error) {
			g, err := PowerLaw(p.Nodes, p.Links, p.CapacityMbps, rng)
			if err != nil {
				return nil, err
			}
			applyUniformDelay(g, p, rng)
			return g, nil
		},
	})
	Register(Generator{
		Name:        "isp",
		Description: "16-node North-American backbone with geographic delays (paper §5.1.1)",
		Defaults: Params{
			CapacityMbps: DefaultCapacity,
			DelayModel:   DelayDistance,
			MinDelayMs:   8,
			MaxDelayMs:   15,
		},
		Validate: func(p Params) error {
			// Nodes and Links are tolerated but ignored: the backbone is a
			// fixed 16-node graph, and legacy CLIs pass their synthetic-size
			// defaults regardless of family.
			if p.DelayModel != DelayDistance {
				return fmt.Errorf("topo: isp delays are geographic; delay_model must stay %q", DelayDistance)
			}
			return nil
		},
		Generate: func(p Params, rng *rand.Rand) (*graph.Graph, error) {
			return ISPBackbone(p.CapacityMbps), nil
		},
	})
}

// applyUniformDelay applies the resolved delay model for families without
// node coordinates ("uniform" draws from the rng; "keep"/"none" leave the
// generator's values).
func applyUniformDelay(g *graph.Graph, p Params, rng *rand.Rand) {
	if p.DelayModel == DelayUniform {
		AssignUniformDelays(g, p.MinDelayMs, p.MaxDelayMs, rng)
	}
}
