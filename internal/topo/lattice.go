package topo

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// Ring generates an n-node cycle plus an optional number of diameter
// chords: chord i connects node round(i*n/chords) to the node half way
// around the ring, shrinking the hop diameter while keeping the regular
// structure. Chord endpoints are deterministic (no rng draw), so two rings
// of the same size are identical up to delay assignment.
func Ring(p Params, rng *rand.Rand) (*graph.Graph, error) {
	n := p.Nodes
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), p.CapacityMbps, 0)
	}
	half := n / 2
	for c := 0; c < p.Chords; c++ {
		u := c * n / p.Chords
		v := (u + half) % n
		if !g.HasLink(graph.NodeID(u), graph.NodeID(v)) {
			g.AddLink(graph.NodeID(u), graph.NodeID(v), p.CapacityMbps, 0)
		}
	}
	applyUniformDelay(g, p, rng)
	return g, nil
}

// lattice generates a rows x cols grid; when wrap is true the edges wrap
// around both dimensions, producing a torus where every node has degree 4.
func lattice(p Params, wrap bool, rng *rand.Rand) (*graph.Graph, error) {
	rows, cols := p.Rows, p.Cols
	g := graph.New(rows * cols)
	at := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.SetName(at(r, c), fmt.Sprintf("r%dc%d", r, c))
			if c+1 < cols || wrap {
				g.AddLink(at(r, c), at(r, (c+1)%cols), p.CapacityMbps, 0)
			}
			if r+1 < rows || wrap {
				g.AddLink(at(r, c), at((r+1)%rows, c), p.CapacityMbps, 0)
			}
		}
	}
	applyUniformDelay(g, p, rng)
	return g, nil
}

// validateLattice checks the shared grid/torus parameters. minDim is 2 for
// the open grid and 3 for the torus (a wrapped dimension of 2 would create
// parallel links between the same node pair).
func validateLattice(family string, minDim int, p Params) error {
	if err := validateDelay(p); err != nil {
		return err
	}
	if p.DelayModel == DelayDistance {
		return fmt.Errorf("topo: %s places no coordinates; delay_model=distance unsupported", family)
	}
	if err := noLinksBudget(family, p); err != nil {
		return err
	}
	if p.Rows < minDim || p.Cols < minDim {
		return fmt.Errorf("topo: %s needs rows and cols >= %d, got %dx%d", family, minDim, p.Rows, p.Cols)
	}
	if p.Nodes != 0 && p.Nodes != p.Rows*p.Cols {
		return fmt.Errorf("topo: %s size is rows*cols = %d; params.nodes=%d contradicts it",
			family, p.Rows*p.Cols, p.Nodes)
	}
	return nil
}

func init() {
	Register(Generator{
		Name:        "ring",
		Description: "n-node cycle with optional diameter chords",
		Defaults:    Params{Nodes: 30, CapacityMbps: DefaultCapacity}.overlay(delayDefaults),
		Validate: func(p Params) error {
			if err := validateDelay(p); err != nil {
				return err
			}
			if p.DelayModel == DelayDistance {
				return fmt.Errorf("topo: ring places no coordinates; delay_model=distance unsupported")
			}
			if err := noLinksBudget("ring", p); err != nil {
				return err
			}
			if p.Nodes < 4 {
				return fmt.Errorf("topo: ring needs nodes >= 4, got %d", p.Nodes)
			}
			if p.Chords < 0 || p.Chords > p.Nodes/2 {
				return fmt.Errorf("topo: ring chords=%d outside [0,%d]", p.Chords, p.Nodes/2)
			}
			return nil
		},
		Generate: Ring,
	})
	Register(Generator{
		Name:        "grid",
		Description: "rows x cols open grid lattice",
		Defaults:    Params{Rows: 5, Cols: 6, CapacityMbps: DefaultCapacity}.overlay(delayDefaults),
		Validate:    func(p Params) error { return validateLattice("grid", 2, p) },
		Generate: func(p Params, rng *rand.Rand) (*graph.Graph, error) {
			return lattice(p, false, rng)
		},
	})
	Register(Generator{
		Name:        "torus",
		Description: "rows x cols wrapped lattice; every node has degree 4",
		Defaults:    Params{Rows: 5, Cols: 6, CapacityMbps: DefaultCapacity}.overlay(delayDefaults),
		Validate:    func(p Params) error { return validateLattice("torus", 3, p) },
		Generate: func(p Params, rng *rand.Rand) (*graph.Graph, error) {
			return lattice(p, true, rng)
		},
	})
}
