package topo

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// Waxman generates the classic Waxman (1988) geometric random topology:
// nodes are placed uniformly in the unit square and each node pair is
// linked with probability
//
//	P(u,v) = alpha * exp(-d(u,v) / (beta * L))
//
// where d is Euclidean distance and L = sqrt(2) is the maximal distance.
// Alpha scales overall density; beta controls how strongly probability
// decays with distance (small beta favors short links). The raw draw can
// leave the graph disconnected, so remaining components are stitched
// together by linking the closest cross-component node pair until one
// component remains — a deterministic repair that preserves the geometric
// flavor (repair links are as short as possible).
//
// Delays follow the resolved delay model: "distance" (the default) maps
// Euclidean distance linearly onto [minMs, maxMs]; "uniform" redraws them
// per link; "none" leaves zeros.
func Waxman(p Params, rng *rand.Rand) (*graph.Graph, error) {
	n := p.Nodes
	g := graph.New(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	maxDist := math.Sqrt2
	dist := func(u, v int) float64 {
		dx, dy := xs[u]-xs[v], ys[u]-ys[v]
		return math.Hypot(dx, dy)
	}
	delayOf := func(u, v int) float64 {
		switch p.DelayModel {
		case DelayDistance:
			return p.MinDelayMs + dist(u, v)/maxDist*(p.MaxDelayMs-p.MinDelayMs)
		default:
			return 0
		}
	}

	comp := newUnionFind(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			prob := p.Alpha * math.Exp(-dist(u, v)/(p.Beta*maxDist))
			if rng.Float64() < prob {
				g.AddLink(graph.NodeID(u), graph.NodeID(v), p.CapacityMbps, delayOf(u, v))
				comp.union(u, v)
			}
		}
	}

	// Stitch components: repeatedly add the shortest link crossing two
	// distinct components (ties broken by node index for determinism).
	for comp.count > 1 {
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if comp.find(u) == comp.find(v) {
					continue
				}
				if d := dist(u, v); d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		g.AddLink(graph.NodeID(bestU), graph.NodeID(bestV), p.CapacityMbps, delayOf(bestU, bestV))
		comp.union(bestU, bestV)
	}

	applyUniformDelay(g, p, rng)
	return g, nil
}

// unionFind is a minimal disjoint-set structure for connectivity repair.
type unionFind struct {
	parent []int
	count  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(x, y int) {
	rx, ry := uf.find(x), uf.find(y)
	if rx != ry {
		uf.parent[rx] = ry
		uf.count--
	}
}

func init() {
	Register(Generator{
		Name:        "waxman",
		Description: "Waxman geometric random graph: link probability decays with distance",
		Defaults: Params{
			Nodes:        30,
			CapacityMbps: DefaultCapacity,
			Alpha:        0.25,
			Beta:         0.6,
			DelayModel:   DelayDistance,
			MinDelayMs:   MinSynthDelayMs,
			MaxDelayMs:   MaxSynthDelayMs,
		},
		Validate: func(p Params) error {
			if err := validateDelay(p); err != nil {
				return err
			}
			if err := noLinksBudget("waxman", p); err != nil {
				return err
			}
			if p.Nodes < 3 {
				return fmt.Errorf("topo: waxman needs nodes >= 3, got %d", p.Nodes)
			}
			if p.Alpha <= 0 || p.Alpha > 1 {
				return fmt.Errorf("topo: waxman alpha=%g outside (0,1]", p.Alpha)
			}
			if p.Beta <= 0 {
				return fmt.Errorf("topo: waxman beta=%g must be positive", p.Beta)
			}
			return nil
		},
		Generate: Waxman,
	})
}
