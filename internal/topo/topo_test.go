package topo

import (
	"math"
	"math/rand/v2"
	"testing"

	"dualtopo/internal/graph"
)

func TestRandomShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g, err := Random(30, 75, DefaultCapacity, rng)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	if g.NumNodes() != 30 {
		t.Fatalf("nodes = %d, want 30", g.NumNodes())
	}
	if g.NumEdges() != 150 {
		t.Fatalf("arcs = %d, want 150 (paper's 150-link random topology)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !g.StronglyConnected() {
		t.Fatal("random topology not strongly connected")
	}
	for _, e := range g.Edges() {
		if e.Capacity != DefaultCapacity {
			t.Fatalf("arc %d capacity = %g", e.ID, e.Capacity)
		}
	}
}

func TestRandomDegreesSimilar(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g, err := Random(30, 75, DefaultCapacity, rng)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	min, max := 1<<30, 0
	for u := 0; u < g.NumNodes(); u++ {
		d := g.UndirectedDegree(graph.NodeID(u))
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// Average degree is 5 (2*75/30); "similar link degrees" means a narrow
	// band around it.
	if max-min > 2 {
		t.Fatalf("degree spread too wide: min=%d max=%d", min, max)
	}
}

func TestRandomErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Random(2, 5, 1, rng); err == nil {
		t.Error("Random(2 nodes) accepted")
	}
	if _, err := Random(10, 5, 1, rng); err == nil {
		t.Error("Random(links < n) accepted")
	}
	if _, err := Random(5, 11, 1, rng); err == nil {
		t.Error("Random(links > complete) accepted")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(20, 50, 1, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(20, 50, 1, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(graph.EdgeID(i)) != b.Edge(graph.EdgeID(i)) {
			t.Fatalf("same seed produced different arc %d", i)
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g, err := PowerLaw(30, 81, DefaultCapacity, rng)
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	if g.NumEdges() != 162 {
		t.Fatalf("arcs = %d, want 162 (paper's 162-link power-law topology)", g.NumEdges())
	}
	if !g.StronglyConnected() {
		t.Fatal("power-law topology not strongly connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPowerLawSkewedDegrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	g, err := PowerLaw(60, 160, 1, rng)
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	degs := make([]int, g.NumNodes())
	for u := range degs {
		degs[u] = g.UndirectedDegree(graph.NodeID(u))
	}
	min, max, sum := degs[0], degs[0], 0
	for _, d := range degs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	mean := float64(sum) / float64(len(degs))
	// Preferential attachment must produce hubs: max degree well above the
	// mean, unlike the uniform random generator.
	if float64(max) < 2.5*mean {
		t.Fatalf("no hub emerged: max=%d mean=%.1f", max, mean)
	}
	if min < 1 {
		t.Fatalf("isolated node: min degree %d", min)
	}
}

func TestPowerLawErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := PowerLaw(3, 5, 1, rng); err == nil {
		t.Error("PowerLaw(n too small) accepted")
	}
	if _, err := PowerLaw(30, 10, 1, rng); err == nil {
		t.Error("PowerLaw(too few links) accepted")
	}
	if _, err := PowerLaw(5, 11, 1, rng); err == nil {
		t.Error("PowerLaw(links > complete) accepted")
	}
}

func TestISPBackboneShape(t *testing.T) {
	g := ISPBackbone(DefaultCapacity)
	if g.NumNodes() != 16 {
		t.Fatalf("nodes = %d, want 16", g.NumNodes())
	}
	if g.NumEdges() != 70 {
		t.Fatalf("arcs = %d, want 70 (paper's ISP topology)", g.NumEdges())
	}
	if !g.StronglyConnected() {
		t.Fatal("ISP backbone not strongly connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, e := range g.Edges() {
		if e.Delay < 8 || e.Delay > 15 {
			t.Fatalf("arc %d delay %.2f outside paper's 8-15ms range", e.ID, e.Delay)
		}
	}
	if _, ok := g.NodeByName("Chicago"); !ok {
		t.Fatal("Chicago missing from backbone")
	}
}

func TestISPDelaysSymmetric(t *testing.T) {
	g := ISPBackbone(500)
	for _, e := range g.Edges() {
		rev, ok := g.Reverse(e.ID)
		if !ok {
			t.Fatalf("arc %d has no reverse", e.ID)
		}
		if g.Edge(rev).Delay != e.Delay {
			t.Fatalf("asymmetric delay on %d/%d", e.ID, rev)
		}
	}
}

func TestAssignUniformDelays(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	g, err := Random(20, 40, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	AssignUniformDelays(g, MinSynthDelayMs, MaxSynthDelayMs, rng)
	for _, e := range g.Edges() {
		if e.Delay < MinSynthDelayMs || e.Delay > MaxSynthDelayMs {
			t.Fatalf("arc %d delay %.2f outside [%.1f,%.1f]", e.ID, e.Delay, MinSynthDelayMs, MaxSynthDelayMs)
		}
		rev, _ := g.Reverse(e.ID)
		if g.Edge(rev).Delay != e.Delay {
			t.Fatalf("asymmetric delay on arc %d", e.ID)
		}
	}
}

func TestGreatCircle(t *testing.T) {
	// New York <-> Los Angeles is roughly 3940 km.
	d := greatCircleKm(40.71, -74.01, 34.05, -118.24)
	if math.Abs(d-3940) > 100 {
		t.Fatalf("NYC-LA distance = %.0f km, want ~3940", d)
	}
	if d := greatCircleKm(40, -100, 40, -100); d != 0 {
		t.Fatalf("zero distance = %g", d)
	}
}
