package topo

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testGML = `
# tiny Topology-Zoo-style export
graph [
  directed 0
  label "TestNet"
  node [ id 0 label "Alpha" Country "X" ]
  node [ id 1 label "Beta" ]
  node [ id 2 label "Gamma" ]
  node [ id 3 label "Delta" ]
  edge [ source 0 target 1 capacity 1000 delay 4 ]
  edge [ source 1 target 2 ]
  edge [ source 2 target 3 delay 2.5 ]
  edge [ source 3 target 0 ]
  edge [ source 0 target 2 ]
  edge [ source 0 target 2 ]
]
`

func writeFile(t *testing.T, name, data string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestImportGML(t *testing.T) {
	path := writeFile(t, "net.gml", testGML)
	g, err := Generate("import", Params{Path: path}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", g.NumNodes())
	}
	// 6 edge blocks, one a parallel duplicate -> 5 links = 10 arcs.
	if g.NumEdges() != 10 {
		t.Fatalf("arcs = %d, want 10", g.NumEdges())
	}
	u, ok := g.NodeByName("Alpha")
	if !ok {
		t.Fatal("node Alpha missing")
	}
	v, _ := g.NodeByName("Beta")
	id, ok := g.ArcBetween(u, v)
	if !ok {
		t.Fatal("Alpha-Beta link missing")
	}
	if e := g.Edge(id); e.Capacity != 1000 || e.Delay != 4 {
		t.Fatalf("Alpha-Beta = %+v, want capacity 1000 delay 4", e)
	}
	// Links without a capacity attribute fall back to the default.
	w, _ := g.NodeByName("Gamma")
	id2, _ := g.ArcBetween(v, w)
	if e := g.Edge(id2); e.Capacity != DefaultCapacity {
		t.Fatalf("Beta-Gamma capacity = %g, want default %d", e.Capacity, DefaultCapacity)
	}
}

func TestImportAdjacency(t *testing.T) {
	path := writeFile(t, "net.adj", "a b 100 2\nb c 100 3 # comment\nc a 50\n")
	g, err := Generate("import", Params{Path: path}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 6 {
		t.Fatalf("shape = %s", g)
	}
	a, _ := g.NodeByName("a")
	b, _ := g.NodeByName("b")
	id, _ := g.ArcBetween(a, b)
	if e := g.Edge(id); e.Capacity != 100 || e.Delay != 2 {
		t.Fatalf("a-b = %+v", e)
	}
}

func TestImportDelayModels(t *testing.T) {
	path := writeFile(t, "net.adj", "a b 100 2\nb c 100 3\nc a 50 4\n")
	kept, err := Generate("import", Params{Path: path}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if kept.Edge(0).Delay != 2 {
		t.Fatalf("keep model lost file delay: %+v", kept.Edge(0))
	}
	zeroed, err := Generate("import", Params{Path: path, DelayModel: DelayNone},
		rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range zeroed.Edges() {
		if e.Delay != 0 {
			t.Fatalf("none model kept delay: %+v", e)
		}
	}
	redrawn, err := Generate("import", Params{Path: path, DelayModel: DelayUniform, MinDelayMs: 7, MaxDelayMs: 8},
		rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range redrawn.Edges() {
		if e.Delay < 7 || e.Delay > 8 {
			t.Fatalf("uniform redraw out of range: %+v", e)
		}
	}
}

func TestImportGMLDuplicateLabels(t *testing.T) {
	// Real Topology-Zoo exports repeat labels ("None", "?"); identity must
	// come from the id, never the label.
	gml := `graph [
	  node [ id 0 label "None" ]
	  node [ id 1 label "None" ]
	  node [ id 2 label "Hub" ]
	  edge [ source 0 target 1 ]
	  edge [ source 1 target 2 ]
	  edge [ source 2 target 0 ]
	]`
	path := writeFile(t, "dup.gml", gml)
	g, err := Generate("import", Params{Path: path}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 6 {
		t.Fatalf("duplicate labels merged nodes: %s", g)
	}
}

func TestImportErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cases := []struct {
		name, file, data string
	}{
		{"self loop", "x.adj", "a a 5\n"},
		{"bad capacity", "x.adj", "a b nope\n"},
		{"negative delay", "x.adj", "a b 10 -1\n"},
		{"too many fields", "x.adj", "a b 10 1 9\n"},
		{"empty", "x.adj", "# nothing\n"},
		{"gml no graph", "x.gml", "foo [ bar 1 ]"},
		{"gml unterminated string", "x.gml", "graph [ label \"oops\n node [ id 0 ] ]"},
		{"gml dangling edge", "x.gml", "graph [ node [ id 0 ] edge [ source 0 target 9 ] ]"},
		{"gml node without id", "x.gml", "graph [ node [ label \"x\" ] ]"},
		{"gml duplicate id", "x.gml", "graph [ node [ id 0 ] node [ id 0 ] edge [ source 0 target 0 ] ]"},
	}
	for _, tc := range cases {
		path := writeFile(t, tc.file, tc.data)
		if _, err := Generate("import", Params{Path: path}, rng); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestImportDisconnectedRejected(t *testing.T) {
	path := writeFile(t, "split.adj", "a b 10\nc d 10\n")
	_, err := Generate("import", Params{Path: path}, rand.New(rand.NewPCG(1, 1)))
	if err == nil || !strings.Contains(err.Error(), "connect") {
		t.Fatalf("disconnected import: err = %v", err)
	}
}

func TestImportNodeCountAssertion(t *testing.T) {
	path := writeFile(t, "net.adj", "a b 10\nb c 10\nc a 10\n")
	if _, err := Generate("import", Params{Path: path, Nodes: 5}, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if _, err := Generate("import", Params{Path: path, Nodes: 3}, rand.New(rand.NewPCG(1, 1))); err != nil {
		t.Fatalf("matching node count rejected: %v", err)
	}
}
