package topo

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// PowerLaw generates a connected topology with n nodes and exactly `links`
// bidirectional links using Barabási–Albert preferential attachment [21],
// emulating the power-law degree distributions observed in Internet
// topologies [22]. Growth starts from a small complete core; each new node
// attaches to existing nodes with probability proportional to their degree.
// After growth, extra links are added (again preferentially) until the exact
// link budget is met, so the paper's "30-node, 162-link (81 bidirectional)"
// configuration is reproducible precisely.
func PowerLaw(n, links int, capacity float64, rng *rand.Rand) (*graph.Graph, error) {
	const core = 3 // complete seed graph size
	if n < core+1 {
		return nil, fmt.Errorf("topo: PowerLaw needs n >= %d, got %d", core+1, n)
	}
	minLinks := core*(core-1)/2 + (n - core) // each new node adds >= 1 link
	if links < minLinks {
		return nil, fmt.Errorf("topo: PowerLaw needs links >= %d for n=%d, got %d", minLinks, n, links)
	}
	if max := n * (n - 1) / 2; links > max {
		return nil, fmt.Errorf("topo: PowerLaw: %d links exceed complete graph (%d)", links, max)
	}

	g := graph.New(n)
	degree := make([]int, n)
	addLink := func(u, v graph.NodeID) {
		g.AddLink(u, v, capacity, 0)
		degree[u]++
		degree[v]++
	}
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			addLink(graph.NodeID(i), graph.NodeID(j))
		}
	}
	// Attach each new node with m links, where m is chosen so the growth
	// phase lands at or just below the target; the remainder is added after.
	remaining := links - core*(core-1)/2
	newNodes := n - core
	m := remaining / newNodes
	if m < 1 {
		m = 1
	}
	for i := core; i < n; i++ {
		u := graph.NodeID(i)
		attach := m
		if attach > i { // cannot attach to more nodes than exist
			attach = i
		}
		for a := 0; a < attach; a++ {
			v, ok := preferentialPick(g, degree, u, i, rng)
			if !ok {
				break
			}
			addLink(u, v)
		}
	}
	// Top up to the exact budget with preferential extra links.
	for linkCount(g) < links {
		u := graph.NodeID(rng.IntN(n))
		v, ok := preferentialPick(g, degree, u, n, rng)
		if !ok {
			continue
		}
		addLink(u, v)
	}
	return g, nil
}

// preferentialPick selects a node in [0, limit) other than u and not already
// linked to u, with probability proportional to degree (degree+1 smoothing so
// isolated nodes remain reachable targets).
func preferentialPick(g *graph.Graph, degree []int, u graph.NodeID, limit int, rng *rand.Rand) (graph.NodeID, bool) {
	total := 0
	for v := 0; v < limit; v++ {
		if graph.NodeID(v) == u || g.HasLink(u, graph.NodeID(v)) {
			continue
		}
		total += degree[v] + 1
	}
	if total == 0 {
		return 0, false
	}
	pick := rng.IntN(total)
	for v := 0; v < limit; v++ {
		if graph.NodeID(v) == u || g.HasLink(u, graph.NodeID(v)) {
			continue
		}
		pick -= degree[v] + 1
		if pick < 0 {
			return graph.NodeID(v), true
		}
	}
	return 0, false
}

func linkCount(g *graph.Graph) int { return g.NumEdges() / 2 }
