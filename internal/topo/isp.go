package topo

import (
	"math"

	"dualtopo/internal/graph"
)

// ispCity is a node of the emulated North-American backbone.
type ispCity struct {
	name     string
	lat, lon float64
}

// The paper's ISP topology has 16 nodes and 70 directed links (35
// bidirectional) emulating a North-American backbone, with per-link
// propagation delays of 8–15 ms derived from node geography. The authors'
// topology is proprietary; this is a hand-built equivalent over real city
// coordinates with the same node/link counts and delay range.
var ispCities = []ispCity{
	{"Seattle", 47.61, -122.33},
	{"Sunnyvale", 37.37, -122.04},
	{"LosAngeles", 34.05, -118.24},
	{"Phoenix", 33.45, -112.07},
	{"SaltLakeCity", 40.76, -111.89},
	{"Denver", 39.74, -104.99},
	{"Dallas", 32.78, -96.80},
	{"Houston", 29.76, -95.36},
	{"KansasCity", 39.10, -94.58},
	{"Chicago", 41.88, -87.63},
	{"Indianapolis", 39.77, -86.16},
	{"Atlanta", 33.75, -84.39},
	{"Miami", 25.76, -80.19},
	{"WashingtonDC", 38.91, -77.04},
	{"NewYork", 40.71, -74.01},
	{"Boston", 42.36, -71.06},
}

// ispLinks lists the 35 bidirectional links by city index.
var ispLinks = [][2]int{
	{0, 1}, {0, 4}, {0, 5}, {0, 9}, // Seattle
	{1, 2}, {1, 4}, {1, 5}, // Sunnyvale
	{2, 3}, {2, 4}, {2, 6}, // Los Angeles
	{3, 5}, {3, 6}, // Phoenix
	{4, 5},                 // Salt Lake City
	{5, 8}, {5, 6}, {5, 9}, // Denver
	{6, 7}, {6, 8}, {6, 11}, // Dallas
	{7, 11}, {7, 12}, // Houston
	{8, 9}, {8, 10}, {8, 11}, // Kansas City
	{9, 10}, {9, 14}, {9, 15}, {9, 13}, // Chicago
	{10, 11}, {10, 13}, // Indianapolis
	{11, 12}, {11, 13}, // Atlanta
	{12, 13}, // Miami
	{13, 14}, // Washington DC
	{14, 15}, // New York
}

// ISPBackbone returns the 16-node, 70-arc North-American backbone topology
// with the given per-arc capacity. Propagation delays are computed from
// great-circle distances at 200 km/ms and clamped to the paper's 8–15 ms
// range.
func ISPBackbone(capacity float64) *graph.Graph {
	g := graph.New(len(ispCities))
	for i, c := range ispCities {
		g.SetName(graph.NodeID(i), c.name)
	}
	for _, l := range ispLinks {
		a, b := ispCities[l[0]], ispCities[l[1]]
		d := greatCircleKm(a.lat, a.lon, b.lat, b.lon) / 200.0 // ms at ~2/3 c in fiber
		delay := clamp(d, 8, 15)
		g.AddLink(graph.NodeID(l[0]), graph.NodeID(l[1]), capacity, delay)
	}
	return g
}

// greatCircleKm returns the great-circle distance between two lat/lon points
// in kilometers (haversine formula, mean Earth radius).
func greatCircleKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
