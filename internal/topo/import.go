package topo

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dualtopo/internal/graph"
)

// ImportFile reads a real-world topology from path and returns it with the
// resolved capacity/delay parameters applied. Two formats are recognized by
// extension: ".gml" parses the Graph Modelling Language subset used by
// Topology-Zoo exports (graph/node/edge blocks with id, label, source,
// target, and optional capacity/bandwidth/delay attributes); anything else
// is read as an adjacency list — one "<u> <v> [capacity [delay]]" line per
// bidirectional link, "#" comments, node names as free-form tokens numbered
// in order of first appearance.
//
// Links without a capacity attribute get p.CapacityMbps. Delays from the
// file are kept under the default "keep" delay model; "uniform" redraws
// them, "none" zeroes them.
func ImportFile(path string, p Params, rng *rand.Rand) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("topo: import: %w", err)
	}
	var g *graph.Graph
	if strings.EqualFold(filepath.Ext(path), ".gml") {
		g, err = parseGML(string(data), p)
	} else {
		g, err = parseAdjacency(string(data), p)
	}
	if err != nil {
		return nil, fmt.Errorf("topo: import %s: %w", path, err)
	}
	switch p.DelayModel {
	case DelayUniform:
		AssignUniformDelays(g, p.MinDelayMs, p.MaxDelayMs, rng)
	case DelayNone:
		for id := 0; id < g.NumEdges(); id++ {
			g.SetDelay(graph.EdgeID(id), 0)
		}
	}
	return g, nil
}

// importBuilder accumulates parsed links, mapping free-form node names to
// dense IDs in order of first appearance and deduplicating repeated pairs
// (Topology-Zoo files often list parallel links; the routing model wants a
// simple graph, so later duplicates are dropped).
type importBuilder struct {
	names []string
	ids   map[string]graph.NodeID
	links []importLink
	seen  map[[2]graph.NodeID]bool
}

type importLink struct {
	u, v            graph.NodeID
	capacity, delay float64
}

func newImportBuilder() *importBuilder {
	return &importBuilder{ids: map[string]graph.NodeID{}, seen: map[[2]graph.NodeID]bool{}}
}

func (b *importBuilder) node(name string) graph.NodeID {
	if id, ok := b.ids[name]; ok {
		return id
	}
	id := b.addNode(name)
	b.ids[name] = id
	return id
}

// addNode appends a node unconditionally — for formats where node identity
// is separate from the display name (GML ids vs labels, which real
// Topology-Zoo exports frequently duplicate).
func (b *importBuilder) addNode(name string) graph.NodeID {
	id := graph.NodeID(len(b.names))
	b.names = append(b.names, name)
	return id
}

func (b *importBuilder) link(u, v graph.NodeID, capacity, delay float64) error {
	if u == v {
		return fmt.Errorf("self-loop at node %q", b.names[u])
	}
	key := [2]graph.NodeID{u, v}
	if u > v {
		key = [2]graph.NodeID{v, u}
	}
	if b.seen[key] {
		return nil // parallel link; keep the first
	}
	b.seen[key] = true
	b.links = append(b.links, importLink{u, v, capacity, delay})
	return nil
}

func (b *importBuilder) build(p Params) (*graph.Graph, error) {
	if len(b.names) == 0 || len(b.links) == 0 {
		return nil, fmt.Errorf("no links found")
	}
	g := graph.New(len(b.names))
	for i, name := range b.names {
		g.SetName(graph.NodeID(i), name)
	}
	for _, l := range b.links {
		capacity := l.capacity
		if capacity <= 0 {
			capacity = p.CapacityMbps
		}
		g.AddLink(l.u, l.v, capacity, l.delay)
	}
	return g, nil
}

// parseAdjacency reads the "<u> <v> [capacity [delay]]" line format.
func parseAdjacency(data string, p Params) (*graph.Graph, error) {
	b := newImportBuilder()
	sc := bufio.NewScanner(strings.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) > 4 {
			return nil, fmt.Errorf("line %d: want '<u> <v> [capacity [delay]]', got %d fields", lineNo, len(fields))
		}
		var capacity, delay float64
		var err error
		if len(fields) >= 3 {
			if capacity, err = strconv.ParseFloat(fields[2], 64); err != nil || capacity <= 0 {
				return nil, fmt.Errorf("line %d: bad capacity %q", lineNo, fields[2])
			}
		}
		if len(fields) == 4 {
			if delay, err = strconv.ParseFloat(fields[3], 64); err != nil || delay < 0 {
				return nil, fmt.Errorf("line %d: bad delay %q", lineNo, fields[3])
			}
		}
		if err := b.link(b.node(fields[0]), b.node(fields[1]), capacity, delay); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.build(p)
}

// gmlValue is one parsed GML value: a scalar string or a nested block.
type gmlValue struct {
	scalar string
	block  []gmlField
}

type gmlField struct {
	key   string
	value gmlValue
}

// parseGML reads the GML subset needed for topology files: one top-level
// "graph" block containing "node" blocks (keyed by "id", named by "label")
// and "edge" blocks (keyed by "source"/"target", with optional capacity,
// bandwidth and delay attributes).
func parseGML(data string, p Params) (*graph.Graph, error) {
	tokens, err := tokenizeGML(data)
	if err != nil {
		return nil, err
	}
	fields, rest, err := parseGMLFields(tokens)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("gml: trailing tokens after top-level block")
	}
	var top []gmlField
	for _, f := range fields {
		if f.key == "graph" && f.value.block != nil {
			top = f.value.block
			break
		}
	}
	if top == nil {
		return nil, fmt.Errorf("gml: no graph block")
	}

	b := newImportBuilder()
	gmlIDs := map[string]graph.NodeID{}
	for _, f := range top {
		if f.key != "node" || f.value.block == nil {
			continue
		}
		id, label := "", ""
		for _, nf := range f.value.block {
			switch nf.key {
			case "id":
				id = nf.value.scalar
			case "label":
				label = nf.value.scalar
			}
		}
		if id == "" {
			return nil, fmt.Errorf("gml: node block without id")
		}
		if label == "" {
			label = "gml" + id
		}
		if _, dup := gmlIDs[id]; dup {
			return nil, fmt.Errorf("gml: duplicate node id %s", id)
		}
		// Identity is the GML id; the label is only a display name (labels
		// are not unique in real exports).
		gmlIDs[id] = b.addNode(label)
	}
	for _, f := range top {
		if f.key != "edge" || f.value.block == nil {
			continue
		}
		src, dst := "", ""
		var capacity, delay float64
		for _, ef := range f.value.block {
			switch ef.key {
			case "source":
				src = ef.value.scalar
			case "target":
				dst = ef.value.scalar
			case "capacity", "bandwidth":
				capacity, _ = strconv.ParseFloat(ef.value.scalar, 64)
			case "delay":
				delay, _ = strconv.ParseFloat(ef.value.scalar, 64)
			}
		}
		u, okU := gmlIDs[src]
		v, okV := gmlIDs[dst]
		if !okU || !okV {
			return nil, fmt.Errorf("gml: edge %s->%s references unknown node", src, dst)
		}
		if err := b.link(u, v, capacity, delay); err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
	}
	return b.build(p)
}

// tokenizeGML splits GML into tokens: "[", "]", quoted strings (quotes
// stripped) and bare words. GML comments (#) run to end of line.
func tokenizeGML(data string) ([]string, error) {
	var tokens []string
	i := 0
	for i < len(data) {
		c := data[i]
		switch {
		case c == '#':
			for i < len(data) && data[i] != '\n' {
				i++
			}
		case c == '[' || c == ']':
			tokens = append(tokens, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(data) && data[j] != '"' {
				j++
			}
			if j == len(data) {
				return nil, fmt.Errorf("gml: unterminated string at byte %d", i)
			}
			tokens = append(tokens, data[i+1:j])
			i = j + 1
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		default:
			j := i
			for j < len(data) && !strings.ContainsAny(string(data[j]), " \t\r\n[]\"#") {
				j++
			}
			tokens = append(tokens, data[i:j])
			i = j
		}
	}
	return tokens, nil
}

// parseGMLFields parses "key value" pairs until a closing bracket or the
// token stream ends, recursing into "[ ... ]" blocks.
func parseGMLFields(tokens []string) ([]gmlField, []string, error) {
	var fields []gmlField
	for len(tokens) > 0 {
		if tokens[0] == "]" {
			return fields, tokens[1:], nil
		}
		if tokens[0] == "[" {
			return nil, nil, fmt.Errorf("gml: unexpected '['")
		}
		key := tokens[0]
		tokens = tokens[1:]
		if len(tokens) == 0 {
			return nil, nil, fmt.Errorf("gml: key %q without value", key)
		}
		if tokens[0] == "[" {
			block, rest, err := parseGMLFields(tokens[1:])
			if err != nil {
				return nil, nil, err
			}
			fields = append(fields, gmlField{key, gmlValue{block: block}})
			tokens = rest
			continue
		}
		fields = append(fields, gmlField{key, gmlValue{scalar: tokens[0]}})
		tokens = tokens[1:]
	}
	return fields, tokens, nil
}

func init() {
	Register(Generator{
		Name:        "import",
		Description: "real topology from a GML or adjacency-list file (params.path)",
		Defaults: Params{
			CapacityMbps: DefaultCapacity,
			DelayModel:   DelayKeep,
			MinDelayMs:   MinSynthDelayMs,
			MaxDelayMs:   MaxSynthDelayMs,
		},
		Validate: func(p Params) error {
			if err := validateDelay(p); err != nil {
				return err
			}
			if err := noLinksBudget("import", p); err != nil {
				return err
			}
			if p.DelayModel == DelayDistance {
				return fmt.Errorf("topo: import files carry no coordinates; delay_model=distance unsupported")
			}
			if p.Path == "" {
				return fmt.Errorf("topo: import requires params.path")
			}
			if _, err := os.Stat(p.Path); err != nil {
				return fmt.Errorf("topo: import path: %w", err)
			}
			return nil
		},
		Generate: func(p Params, rng *rand.Rand) (*graph.Graph, error) {
			g, err := ImportFile(p.Path, p, rng)
			if err != nil {
				return nil, err
			}
			// A nonzero nodes param acts as a size assertion on the file.
			if p.Nodes != 0 && p.Nodes != g.NumNodes() {
				return nil, fmt.Errorf("topo: import: file has %d nodes, params.nodes wants %d",
					g.NumNodes(), p.Nodes)
			}
			return g, nil
		},
	})
}
