// Package topo generates the three topology families evaluated in the paper
// (§5.1.1): random topologies with near-uniform degree, power-law topologies
// grown by preferential attachment, and a 16-node North-American ISP
// backbone. All generators produce bidirectional links (two arcs) with equal
// capacities, and are deterministic for a given rand source.
package topo

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// DefaultCapacity is the per-arc capacity used throughout the paper (Mbps).
const DefaultCapacity = 500

// Random generates a connected topology with n nodes and `links`
// bidirectional links (2*links arcs) where all nodes end up with similar
// degrees, per the paper's "random topology" description. It starts from a
// random Hamiltonian cycle (guaranteeing strong connectivity) and then
// repeatedly connects the lowest-degree node pair that is not yet linked.
//
// Capacities are set to capacity; propagation delays are zero — assign them
// with AssignUniformDelays for SLA experiments.
func Random(n, links int, capacity float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: Random needs n >= 3, got %d", n)
	}
	if links < n {
		return nil, fmt.Errorf("topo: Random needs links >= n for a cycle, got %d < %d", links, n)
	}
	if max := n * (n - 1) / 2; links > max {
		return nil, fmt.Errorf("topo: Random: %d links exceed complete graph (%d)", links, max)
	}
	g := graph.New(n)
	// Random cycle for connectivity and degree 2 everywhere.
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u := graph.NodeID(perm[i])
		v := graph.NodeID(perm[(i+1)%n])
		g.AddLink(u, v, capacity, 0)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 2
	}
	for added := n; added < links; added++ {
		u, v, ok := lowestDegreePair(g, degree, rng)
		if !ok {
			return nil, fmt.Errorf("topo: Random: no remaining node pair at %d links", added)
		}
		g.AddLink(u, v, capacity, 0)
		degree[u]++
		degree[v]++
	}
	return g, nil
}

// lowestDegreePair picks two distinct, not-yet-linked nodes, preferring the
// lowest-degree nodes with random tie-breaking so the final degree
// distribution stays near uniform.
func lowestDegreePair(g *graph.Graph, degree []int, rng *rand.Rand) (graph.NodeID, graph.NodeID, bool) {
	n := len(degree)
	order := rng.Perm(n)
	// Sort candidate order by (degree, random tiebreak) using the permuted
	// order as the tiebreak: stable selection without extra state.
	byDegree := make([]int, 0, n)
	byDegree = append(byDegree, order...)
	for i := 1; i < len(byDegree); i++ {
		for j := i; j > 0 && degree[byDegree[j]] < degree[byDegree[j-1]]; j-- {
			byDegree[j], byDegree[j-1] = byDegree[j-1], byDegree[j]
		}
	}
	for i := 0; i < n; i++ {
		u := graph.NodeID(byDegree[i])
		for j := i + 1; j < n; j++ {
			v := graph.NodeID(byDegree[j])
			if !g.HasLink(u, v) {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}
