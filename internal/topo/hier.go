package topo

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// Hierarchical generates a two-tier ISP: Pops points of presence, each with
// RoutersPerPop routers. The first two routers of every PoP are redundant
// core gateways (linked to each other); the remaining access routers fan
// out dual-homed to both gateways. The core tier is two link-disjoint rings
// — one over the primary gateways, one over the secondary gateways — so no
// single core link partitions the network. Core links carry CoreCapacityX
// times the access capacity, emulating fat inter-PoP trunks.
//
// Node names encode the tier: "p<P>g0"/"p<P>g1" for gateways, "p<P>a<R>"
// for access routers.
func Hierarchical(p Params, rng *rand.Rand) (*graph.Graph, error) {
	pops, routers := p.Pops, p.RoutersPerPop
	g := graph.New(pops * routers)
	coreCap := p.CapacityMbps * p.CoreCapacityX
	gw := func(pop, i int) graph.NodeID { return graph.NodeID(pop*routers + i) }
	for pop := 0; pop < pops; pop++ {
		g.SetName(gw(pop, 0), fmt.Sprintf("p%dg0", pop))
		g.SetName(gw(pop, 1), fmt.Sprintf("p%dg1", pop))
		// Gateway pair.
		g.AddLink(gw(pop, 0), gw(pop, 1), coreCap, 0)
		// Access fan-out, dual-homed.
		for r := 2; r < routers; r++ {
			g.SetName(gw(pop, r), fmt.Sprintf("p%da%d", pop, r-2))
			g.AddLink(gw(pop, r), gw(pop, 0), p.CapacityMbps, 0)
			g.AddLink(gw(pop, r), gw(pop, 1), p.CapacityMbps, 0)
		}
	}
	// Core tier: two link-disjoint rings across PoPs.
	for pop := 0; pop < pops; pop++ {
		next := (pop + 1) % pops
		g.AddLink(gw(pop, 0), gw(next, 0), coreCap, 0)
		g.AddLink(gw(pop, 1), gw(next, 1), coreCap, 0)
	}
	applyUniformDelay(g, p, rng)
	return g, nil
}

func init() {
	Register(Generator{
		Name:        "hier",
		Description: "two-tier hierarchical ISP: PoPs with dual gateways, access fan-out, fat core rings",
		Defaults: Params{
			Pops:          6,
			RoutersPerPop: 5,
			CoreCapacityX: 4,
			CapacityMbps:  DefaultCapacity,
		}.overlay(delayDefaults),
		Validate: func(p Params) error {
			if err := validateDelay(p); err != nil {
				return err
			}
			if p.DelayModel == DelayDistance {
				return fmt.Errorf("topo: hier places no coordinates; delay_model=distance unsupported")
			}
			if err := noLinksBudget("hier", p); err != nil {
				return err
			}
			if p.Pops < 3 {
				return fmt.Errorf("topo: hier needs pops >= 3, got %d", p.Pops)
			}
			if p.RoutersPerPop < 2 {
				return fmt.Errorf("topo: hier needs routers_per_pop >= 2, got %d", p.RoutersPerPop)
			}
			if p.CoreCapacityX < 1 {
				return fmt.Errorf("topo: hier core_capacity_x=%g must be >= 1", p.CoreCapacityX)
			}
			if p.Nodes != 0 && p.Nodes != p.Pops*p.RoutersPerPop {
				return fmt.Errorf("topo: hier size is pops*routers_per_pop = %d; params.nodes=%d contradicts it",
					p.Pops*p.RoutersPerPop, p.Nodes)
			}
			return nil
		},
		Generate: Hierarchical,
	})
}
