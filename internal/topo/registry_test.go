package topo

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dualtopo/internal/graph"
)

// testParams returns per-family params that make every registered family
// generable in a test environment (the import family needs a file).
func testParams(t *testing.T, family string) Params {
	t.Helper()
	if family != "import" {
		return Params{}
	}
	return Params{Path: writeTestAdjacency(t)}
}

func writeTestAdjacency(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.adj")
	data := "# tiny test net\na b 100 2\nb c 100 3\nc a 100 4\nc d 200 1\nd a 150\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryHasAllFamilies(t *testing.T) {
	want := []string{"grid", "hier", "import", "isp", "powerlaw", "random", "ring", "torus", "waxman"}
	got := Families()
	for _, fam := range want {
		found := false
		for _, g := range got {
			if g == fam {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q not registered (have %v)", fam, got)
		}
	}
	if list := FamilyList(); !strings.Contains(list, "waxman") || !strings.Contains(list, "|") {
		t.Errorf("FamilyList() = %q", list)
	}
}

func TestEveryFamilyGeneratesConnected(t *testing.T) {
	for _, fam := range Families() {
		g, err := Generate(fam, testParams(t, fam), rand.New(rand.NewPCG(7, 7)))
		if err != nil {
			t.Errorf("%s: %v", fam, err)
			continue
		}
		if !g.StronglyConnected() {
			t.Errorf("%s: not strongly connected", fam)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", fam, err)
		}
		if g.NumNodes() < 3 || g.NumEdges() < 6 {
			t.Errorf("%s: degenerate graph %s", fam, g)
		}
	}
}

// TestEveryFamilyDeterministic is the contract campaign reproducibility
// rests on: the same family, params and seed must yield a bitwise-identical
// graph on every call.
func TestEveryFamilyDeterministic(t *testing.T) {
	for _, fam := range Families() {
		p := testParams(t, fam)
		a, err := Generate(fam, p, rand.New(rand.NewPCG(3, 4)))
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		b, err := Generate(fam, p, rand.New(rand.NewPCG(3, 4)))
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: same seed, different shape: %s vs %s", fam, a, b)
		}
		for i := 0; i < a.NumEdges(); i++ {
			if a.Edge(graph.EdgeID(i)) != b.Edge(graph.EdgeID(i)) {
				t.Fatalf("%s: same seed, different arc %d", fam, i)
			}
		}
	}
}

func TestSeededFamiliesVaryAcrossSeeds(t *testing.T) {
	// Random families must actually respond to the seed; structural
	// families (lattices, isp, import) are seed-independent by design.
	for _, fam := range []string{"random", "powerlaw", "waxman"} {
		a, err := Generate(fam, Params{}, rand.New(rand.NewPCG(1, 1)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(fam, Params{}, rand.New(rand.NewPCG(2, 2)))
		if err != nil {
			t.Fatal(err)
		}
		same := a.NumEdges() == b.NumEdges()
		if same {
			for i := 0; i < a.NumEdges(); i++ {
				if a.Edge(graph.EdgeID(i)) != b.Edge(graph.EdgeID(i)) {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical graphs", fam)
		}
	}
}

func TestResolveMergesDefaults(t *testing.T) {
	p, gen, err := Resolve("waxman", Params{Nodes: 12})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Name != "waxman" {
		t.Fatalf("gen = %q", gen.Name)
	}
	if p.Nodes != 12 || p.Alpha != 0.25 || p.Beta != 0.6 || p.CapacityMbps != DefaultCapacity {
		t.Fatalf("resolved = %+v", p)
	}
	if p.DelayModel != DelayDistance {
		t.Fatalf("delay model = %q", p.DelayModel)
	}
}

func TestResolveUnknownFamilyListsRegistry(t *testing.T) {
	_, _, err := Resolve("mesh", Params{})
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	for _, fam := range []string{"random", "waxman", "torus", "import"} {
		if !strings.Contains(err.Error(), fam) {
			t.Errorf("error %q does not enumerate family %q", err, fam)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		family string
		p      Params
	}{
		{"waxman alpha high", "waxman", Params{Alpha: 1.5}},
		{"waxman alpha negative", "waxman", Params{Alpha: -0.2}},
		{"waxman beta negative", "waxman", Params{Beta: -1}},
		{"waxman too small", "waxman", Params{Nodes: 2}},
		{"waxman links budget", "waxman", Params{Links: 40}},
		{"ring too small", "ring", Params{Nodes: 3}},
		{"ring chords high", "ring", Params{Nodes: 10, Chords: 6}},
		{"grid too narrow", "grid", Params{Rows: 1, Cols: 5}},
		{"grid nodes mismatch", "grid", Params{Rows: 4, Cols: 4, Nodes: 30}},
		{"torus wrap too narrow", "torus", Params{Rows: 2, Cols: 5}},
		{"hier too few pops", "hier", Params{Pops: 2}},
		{"hier thin core", "hier", Params{CoreCapacityX: 0.5}},
		{"hier nodes mismatch", "hier", Params{Pops: 4, RoutersPerPop: 4, Nodes: 30}},
		{"import no path", "import", Params{}},
		{"import bad path", "import", Params{Path: "/nonexistent/net.gml"}},
		{"bad delay model", "random", Params{DelayModel: "gaussian"}},
		{"inverted delay range", "random", Params{MinDelayMs: 9, MaxDelayMs: 3}},
		{"distance without coordinates", "grid", Params{DelayModel: DelayDistance}},
		{"negative capacity", "random", Params{CapacityMbps: -100}},
		{"negative nodes", "waxman", Params{Nodes: -5}},
		{"negative links", "random", Params{Links: -5}},
	}
	for _, tc := range cases {
		if _, _, err := Resolve(tc.family, tc.p); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWaxmanShape(t *testing.T) {
	g, err := Generate("waxman", Params{Nodes: 40}, rand.New(rand.NewPCG(11, 11)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 40 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Default alpha/beta should land in a plausible sparse band: above the
	// spanning-tree floor, well below the complete graph.
	links := g.NumEdges() / 2
	if links < 40 || links > 200 {
		t.Fatalf("links = %d, outside plausible density band", links)
	}
	for _, e := range g.Edges() {
		if e.Delay < MinSynthDelayMs || e.Delay > MaxSynthDelayMs {
			t.Fatalf("arc %d delay %.2f outside distance-model range", e.ID, e.Delay)
		}
		rev, ok := g.Reverse(e.ID)
		if !ok || g.Edge(rev).Delay != e.Delay {
			t.Fatalf("arc %d delay asymmetric", e.ID)
		}
	}
}

func TestWaxmanDensityRespondsToAlpha(t *testing.T) {
	sparse, err := Generate("waxman", Params{Nodes: 40, Alpha: 0.1}, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Generate("waxman", Params{Nodes: 40, Alpha: 0.9}, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if dense.NumEdges() <= sparse.NumEdges() {
		t.Fatalf("alpha=0.9 gave %d arcs, alpha=0.1 gave %d", dense.NumEdges(), sparse.NumEdges())
	}
}

func TestRingShape(t *testing.T) {
	g, err := Generate("ring", Params{Nodes: 12}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 24 {
		t.Fatalf("plain ring arcs = %d, want 24", g.NumEdges())
	}
	for u := 0; u < 12; u++ {
		if d := g.UndirectedDegree(graph.NodeID(u)); d != 2 {
			t.Fatalf("node %d degree = %d, want 2", u, d)
		}
	}
	chorded, err := Generate("ring", Params{Nodes: 12, Chords: 3}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if chorded.NumEdges() != 24+6 {
		t.Fatalf("chorded ring arcs = %d, want 30", chorded.NumEdges())
	}
}

func TestGridAndTorusShape(t *testing.T) {
	gridG, err := Generate("grid", Params{Rows: 4, Cols: 5}, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if gridG.NumNodes() != 20 {
		t.Fatalf("grid nodes = %d", gridG.NumNodes())
	}
	// Open grid: rows*(cols-1) + cols*(rows-1) links.
	if want := 2 * (4*4 + 5*3); gridG.NumEdges() != want {
		t.Fatalf("grid arcs = %d, want %d", gridG.NumEdges(), want)
	}
	if d := gridG.UndirectedDegree(0); d != 2 {
		t.Fatalf("grid corner degree = %d, want 2", d)
	}

	torusG, err := Generate("torus", Params{Rows: 4, Cols: 5}, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (2 * 4 * 5); torusG.NumEdges() != want {
		t.Fatalf("torus arcs = %d, want %d", torusG.NumEdges(), want)
	}
	for u := 0; u < torusG.NumNodes(); u++ {
		if d := torusG.UndirectedDegree(graph.NodeID(u)); d != 4 {
			t.Fatalf("torus node %d degree = %d, want 4", u, d)
		}
	}
}

func TestHierarchicalShape(t *testing.T) {
	g, err := Generate("hier", Params{Pops: 4, RoutersPerPop: 5, CapacityMbps: 100, CoreCapacityX: 4},
		rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d, want 20", g.NumNodes())
	}
	// Per PoP: 1 gateway link + 3 access routers x 2 homes = 7 links; core
	// adds 2 rings x 4 pops = 8 links. Total 4*7+8 = 36 links = 72 arcs.
	if g.NumEdges() != 72 {
		t.Fatalf("arcs = %d, want 72", g.NumEdges())
	}
	coreLinks, accessLinks := 0, 0
	for _, e := range g.Edges() {
		switch e.Capacity {
		case 400:
			coreLinks++
		case 100:
			accessLinks++
		default:
			t.Fatalf("arc %d capacity %g is neither access (100) nor core (400)", e.ID, e.Capacity)
		}
	}
	if coreLinks != 2*(4+8) || accessLinks != 2*24 {
		t.Fatalf("core arcs = %d, access arcs = %d", coreLinks, accessLinks)
	}
	// Access routers are named and dual-homed.
	if _, ok := g.NodeByName("p0a0"); !ok {
		t.Fatal("access router p0a0 missing")
	}
	if _, ok := g.NodeByName("p3g1"); !ok {
		t.Fatal("gateway p3g1 missing")
	}
}

func TestHierarchicalSurvivesCoreLinkLoss(t *testing.T) {
	g, err := Generate("hier", Params{}, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	// Dropping any single link must not partition the topology (dual
	// gateways + disjoint core rings). Verify on a clone per link.
	for id := 0; id < g.NumEdges(); id += 2 {
		c := graph.New(g.NumNodes())
		for _, e := range g.Edges() {
			rev, _ := g.Reverse(graph.EdgeID(id))
			if e.ID == graph.EdgeID(id) || e.ID == rev {
				continue
			}
			c.AddArc(e.From, e.To, e.Capacity, e.Delay)
		}
		if !c.StronglyConnected() {
			t.Fatalf("removing link %d partitions the hierarchy", id)
		}
	}
}
