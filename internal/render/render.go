// Package render turns experiment results into aligned text tables and
// ASCII charts, the terminal equivalents of the paper's figures.
package render

import (
	"fmt"
	"strings"
)

// Table renders rows under a header with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// SeriesTable renders several series sharing an x-axis as one table. Series
// may have different x grids; missing cells render blank.
func SeriesTable(xLabel string, series []Series, format string) string {
	if format == "" {
		format = "%.4g"
	}
	// Collect the union of x values, preserving first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	header := make([]string, 0, len(series)+1)
	header = append(header, xLabel)
	for _, s := range series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf(format, x))
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf(format, s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return Table(header, rows)
}

// Bars renders a labeled horizontal ASCII bar chart. Values must be
// non-negative; the longest bar spans width characters.
func Bars(labels []string, values []float64, width int) string {
	if width < 1 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %s %g\n", labelWidth, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// SideBySideBars renders two aligned bar groups per label (e.g. STR vs DTR
// link-count histograms, Fig. 3).
func SideBySideBars(labels []string, a, b []float64, nameA, nameB string, width int) string {
	if width < 1 {
		width = 30
	}
	max := 0.0
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	for _, v := range b {
		if v > max {
			max = v
		}
	}
	labelWidth := len("bucket")
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s | %-*s | %s\n", labelWidth, "bucket", width+6, nameA, nameB)
	for i := range labels {
		bar := func(v float64) string {
			n := 0
			if max > 0 {
				n = int(v / max * float64(width))
			}
			return fmt.Sprintf("%s %g", strings.Repeat("#", n), v)
		}
		fmt.Fprintf(&sb, "%-*s | %-*s | %s\n", labelWidth, labels[i], width+6, bar(a[i]), bar(b[i]))
	}
	return sb.String()
}
