package render

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// All rows equally wide (trailing spaces trimmed may differ; compare the
	// column start of the second column instead).
	col := strings.Index(lines[0], "value")
	if strings.Index(lines[3], "22") != col {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestSeriesTable(t *testing.T) {
	out := SeriesTable("x", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{2}, Y: []float64{99}},
	}, "%.0f")
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("missing series names:\n%s", out)
	}
	if !strings.Contains(out, "99") || !strings.Contains(out, "20") {
		t.Fatalf("missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + sep + 2 x-values
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestSeriesTableDefaultFormat(t *testing.T) {
	out := SeriesTable("x", []Series{{Name: "s", X: []float64{1.23456}, Y: []float64{2}}}, "")
	if !strings.Contains(out, "1.235") {
		t.Fatalf("default %%.4g format not applied:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"one", "two"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[0])
	}
}

func TestBarsZeroAndDefaults(t *testing.T) {
	out := Bars([]string{"z"}, []float64{0}, 0)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar: %q", out)
	}
}

func TestSideBySideBars(t *testing.T) {
	out := SideBySideBars([]string{"0.1", "0.2"}, []float64{4, 0}, []float64{2, 2}, "STR", "DTR", 8)
	if !strings.Contains(out, "STR") || !strings.Contains(out, "DTR") {
		t.Fatalf("missing group names:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "########") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
}
