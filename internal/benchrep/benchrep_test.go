package benchrep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(gomaxprocs int, entries ...Entry) Report {
	return Report{GoVersion: "go1.24", GOMAXPROCS: gomaxprocs, Benchmarks: entries}
}

func TestComparePasses(t *testing.T) {
	base := report(1,
		Entry{Name: "spf", NsPerOp: 1000, AllocsPerOp: 0},
		Entry{Name: "route", NsPerOp: 5000, AllocsPerOp: 2},
	)
	cur := report(1,
		Entry{Name: "spf", NsPerOp: 1100, AllocsPerOp: 0},
		Entry{Name: "route", NsPerOp: 6000, AllocsPerOp: 2},
		Entry{Name: "brand-new", NsPerOp: 1, AllocsPerOp: 99},
	)
	res := Compare(base, cur, 0.25)
	if !res.Pass() {
		t.Fatalf("expected pass, got %v", res.Findings)
	}
	if res.TimingSkipped {
		t.Fatal("timing skipped with equal GOMAXPROCS")
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := report(1, Entry{Name: "spf", NsPerOp: 1000})
	cur := report(1, Entry{Name: "spf", NsPerOp: 1300})
	res := Compare(base, cur, 0.25)
	if res.Pass() {
		t.Fatal("30% regression passed a 25% gate")
	}
	if !strings.Contains(res.Findings[0].String(), "ns/op") {
		t.Fatalf("finding = %v", res.Findings[0])
	}
	// Exactly at the limit passes (gate is >, not >=).
	if res := Compare(base, report(1, Entry{Name: "spf", NsPerOp: 1250}), 0.25); !res.Pass() {
		t.Fatalf("at-limit run failed: %v", res.Findings)
	}
}

func TestCompareZeroAllocSeries(t *testing.T) {
	base := report(1,
		Entry{Name: "spf", NsPerOp: 1000, AllocsPerOp: 0},
		Entry{Name: "eval", NsPerOp: 1000, AllocsPerOp: 6},
	)
	cur := report(1,
		Entry{Name: "spf", NsPerOp: 1000, AllocsPerOp: 1},
		Entry{Name: "eval", NsPerOp: 1000, AllocsPerOp: 8},
	)
	res := Compare(base, cur, 0.25)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly the 0-alloc violation", res.Findings)
	}
	if res.Findings[0].Benchmark != "spf" {
		t.Fatalf("flagged %q, want spf", res.Findings[0].Benchmark)
	}
}

func TestCompareSkipsTimingAcrossGomaxprocs(t *testing.T) {
	base := report(1,
		Entry{Name: "spf", NsPerOp: 1000, AllocsPerOp: 0},
	)
	cur := report(4,
		Entry{Name: "spf", NsPerOp: 9000, AllocsPerOp: 0},
	)
	res := Compare(base, cur, 0.25)
	if !res.TimingSkipped {
		t.Fatal("timing not skipped across GOMAXPROCS")
	}
	if !res.Pass() {
		t.Fatalf("9x slower run failed despite timing skip: %v", res.Findings)
	}
	// The alloc gate still applies across machine shapes.
	cur.Benchmarks[0].AllocsPerOp = 3
	if res := Compare(base, cur, 0.25); res.Pass() {
		t.Fatal("alloc regression passed under timing skip")
	}
}

func TestCompareRatioMetrics(t *testing.T) {
	base := report(4, Entry{Name: "route_scale/hier10k", NsPerOp: 1000,
		Metrics: map[string]float64{"par_speedup-x": 2.0, "heap_mb": 40}})

	// Within the tolerance band: passes (heap_mb has no -x suffix, so its
	// growth is not a ratio violation).
	cur := report(4, Entry{Name: "route_scale/hier10k", NsPerOp: 1000,
		Metrics: map[string]float64{"par_speedup-x": 1.6, "heap_mb": 400}})
	if res := Compare(base, cur, 0.25); !res.Pass() {
		t.Fatalf("in-band ratio failed: %v", res.Findings)
	}

	// Below the floor: fails with the ratio named.
	cur = report(4, Entry{Name: "route_scale/hier10k", NsPerOp: 1000,
		Metrics: map[string]float64{"par_speedup-x": 1.2}})
	res := Compare(base, cur, 0.25)
	if res.Pass() || !strings.Contains(res.Findings[0].String(), "par_speedup-x") {
		t.Fatalf("findings = %v, want par_speedup-x violation", res.Findings)
	}

	// Vanished ratio metric: fails even if timings are fine.
	cur = report(4, Entry{Name: "route_scale/hier10k", NsPerOp: 1000})
	res = Compare(base, cur, 0.25)
	if res.Pass() || !strings.Contains(res.Findings[0].String(), "missing") {
		t.Fatalf("findings = %v, want missing-metric violation", res.Findings)
	}
}

func TestCompareRatioMetricsSkippedAcrossGomaxprocs(t *testing.T) {
	base := report(4, Entry{Name: "route", NsPerOp: 1000,
		Metrics: map[string]float64{"par_speedup-x": 2.0}})
	cur := report(1, Entry{Name: "route", NsPerOp: 1000,
		Metrics: map[string]float64{"par_speedup-x": 1.0}})
	if res := Compare(base, cur, 0.25); !res.Pass() {
		t.Fatalf("ratio gated across GOMAXPROCS shapes: %v", res.Findings)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := report(1, Entry{Name: "spf"}, Entry{Name: "route"})
	cur := report(1, Entry{Name: "spf"})
	res := Compare(base, cur, 0.25)
	if res.Pass() || !strings.Contains(res.Findings[0].String(), "missing") {
		t.Fatalf("findings = %v", res.Findings)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	data := `{"go_version":"go1.24.0","gomaxprocs":1,"benchmarks":[{"name":"spf","ns_per_op":8131.4,"allocs_per_op":0}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.GOMAXPROCS != 1 || len(r.Benchmarks) != 1 || r.Benchmarks[0].Name != "spf" {
		t.Fatalf("loaded = %+v", r)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644)
	if _, err := LoadFile(empty); err == nil {
		t.Fatal("empty report accepted")
	}
}

// TestCommittedBaselineLoads guards the committed baseline file itself: the
// gate job is vacuous if BENCH_PR10.json ever becomes unreadable.
func TestCommittedBaselineLoads(t *testing.T) {
	r, err := LoadFile(filepath.Join("..", "..", "BENCH_PR10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) < 5 {
		t.Fatalf("baseline has only %d series", len(r.Benchmarks))
	}
	if res := Compare(r, r, 0.25); !res.Pass() {
		t.Fatalf("baseline does not gate against itself: %v", res.Findings)
	}
}

func TestSpeedupFloor(t *testing.T) {
	entries := []Entry{
		{Name: "route_scale/a/speedup", Metrics: map[string]float64{"par_speedup-x": 1.02}},
		{Name: "route_scale/b/speedup", Metrics: map[string]float64{"par_speedup-x": 2.4}},
		{Name: "spf", NsPerOp: 1000}, // no ratio metric: never flagged
	}

	// Below SpeedupFloorMinCPU the floor is meaningless and must not apply.
	small := Report{NumCPU: SpeedupFloorMinCPU - 1, Benchmarks: entries}
	if findings, applied := SpeedupFloor(small, 1.5); applied || findings != nil {
		t.Fatalf("floor applied on %d CPUs: %v", small.NumCPU, findings)
	}
	// Reports predating the field (NumCPU zero) are likewise skipped.
	if _, applied := SpeedupFloor(Report{Benchmarks: entries}, 1.5); applied {
		t.Fatal("floor applied to a report without num_cpu")
	}
	// A disabled floor never applies regardless of CPU count.
	if _, applied := SpeedupFloor(Report{NumCPU: 8, Benchmarks: entries}, 0); applied {
		t.Fatal("floor of 0 applied")
	}

	big := Report{NumCPU: SpeedupFloorMinCPU, Benchmarks: entries}
	findings, applied := SpeedupFloor(big, 1.5)
	if !applied {
		t.Fatal("floor not applied on a 4-CPU report")
	}
	if len(findings) != 1 || findings[0].Benchmark != "route_scale/a/speedup" {
		t.Fatalf("findings = %v", findings)
	}
	if !strings.Contains(findings[0].Detail, "1.02") || !strings.Contains(findings[0].Detail, "1.50") {
		t.Fatalf("detail lacks observed/floor values: %s", findings[0].Detail)
	}
}
