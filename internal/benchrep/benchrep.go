// Package benchrep defines the machine-readable benchmark report emitted
// by cmd/dtrbench and the regression-gate comparison consumed by
// cmd/benchgate and CI. Keeping the types and the gate rules in one
// importable package means the report writer and the gate can never drift
// apart on field names or semantics.
package benchrep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"dualtopo/internal/obs"
)

// Report is the file-level JSON document (BENCH_PR4.json).
type Report struct {
	Generated  string  `json:"generated"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// NumCPU records the machine's physical parallelism (runtime.NumCPU).
	// GOMAXPROCS can be pinned above it (a 1-core box running at
	// GOMAXPROCS=4 reports a par_speedup-x of ~1.0 honestly), so the
	// absolute speedup floor keys off NumCPU, not GOMAXPROCS. Zero in
	// reports predating the field.
	NumCPU     int     `json:"num_cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Manifest attributes the report to a run (command, args, VCS stamp,
	// wall time). The regression gate compares Benchmarks (and GOMAXPROCS)
	// only, so reports with and without a manifest gate identically.
	Manifest *obs.Manifest `json:"manifest,omitempty"`
}

// Entry is one benchmark's outcome.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// LoadFile reads a report from disk.
func LoadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchrep: %s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return Report{}, fmt.Errorf("benchrep: %s: no benchmarks", path)
	}
	return r, nil
}

// Finding is one gate violation.
type Finding struct {
	// Benchmark is the series name.
	Benchmark string
	// Detail explains the violation with the observed numbers.
	Detail string
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s", f.Benchmark, f.Detail) }

// GateResult is the outcome of comparing a fresh report against the
// committed baseline.
type GateResult struct {
	// Findings lists every violation; an empty list means the gate passes.
	Findings []Finding
	// TimingSkipped reports that ns/op comparison was suppressed because
	// the run and the baseline used different GOMAXPROCS (timings are not
	// comparable across machine shapes; allocation counts always are).
	TimingSkipped bool
}

// Pass reports whether the gate is green.
func (r GateResult) Pass() bool { return len(r.Findings) == 0 }

// Compare gates a fresh report against the baseline:
//
//   - every baseline benchmark must still exist (a vanished series means a
//     benchmark rotted or was silently dropped);
//   - a series with zero allocs/op in the baseline must stay at zero — the
//     0-alloc hot paths are a hard-won property and allocation counts are
//     deterministic, so any increase fails regardless of machine;
//   - ns/op may regress by at most maxRegress (e.g. 0.25 for +25%), checked
//     only when both reports ran at the same GOMAXPROCS;
//   - extra metrics whose name carries an "-x" suffix are higher-is-better
//     ratios (full/delta-x, par_speedup-x): each must stay within maxRegress
//     of the baseline ratio and may never vanish, checked under the same
//     GOMAXPROCS rule as ns/op since speedups depend on the machine shape.
func Compare(baseline, current Report, maxRegress float64) GateResult {
	res := GateResult{TimingSkipped: baseline.GOMAXPROCS != current.GOMAXPROCS}
	byName := make(map[string]Entry, len(current.Benchmarks))
	for _, e := range current.Benchmarks {
		byName[e.Name] = e
	}
	for _, base := range baseline.Benchmarks {
		cur, ok := byName[base.Name]
		if !ok {
			res.Findings = append(res.Findings, Finding{base.Name, "missing from current report"})
			continue
		}
		if base.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			res.Findings = append(res.Findings, Finding{base.Name,
				fmt.Sprintf("allocs/op regressed from 0 to %d", cur.AllocsPerOp)})
		}
		if !res.TimingSkipped && base.NsPerOp > 0 {
			limit := base.NsPerOp * (1 + maxRegress)
			if cur.NsPerOp > limit {
				res.Findings = append(res.Findings, Finding{base.Name,
					fmt.Sprintf("ns/op regressed %.0f -> %.0f (+%.0f%%, limit +%.0f%%)",
						base.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/base.NsPerOp-1), 100*maxRegress)})
			}
		}
		if !res.TimingSkipped {
			res.Findings = append(res.Findings, compareRatios(base, cur, maxRegress)...)
		}
	}
	return res
}

// SpeedupFloorMinCPU is the parallelism below which the absolute speedup
// floor is meaningless: with fewer real cores than route workers, a ratio
// near 1.0 is the honest outcome, not a regression.
const SpeedupFloorMinCPU = 4

// SpeedupFloor checks every par_speedup-x metric of the current report
// against an absolute floor — the gate that proves parallel routing
// actually pays off on real hardware, independent of whatever the
// committed baseline machine could do. It returns nil findings (and
// applied=false) when the report ran on fewer than SpeedupFloorMinCPU
// CPUs, so single-core baselines never trip it.
func SpeedupFloor(cur Report, floor float64) (findings []Finding, applied bool) {
	if floor <= 0 || cur.NumCPU < SpeedupFloorMinCPU {
		return nil, false
	}
	for _, e := range cur.Benchmarks {
		if v, ok := e.Metrics["par_speedup-x"]; ok && v < floor {
			findings = append(findings, Finding{e.Name,
				fmt.Sprintf("par_speedup-x %.2f below absolute floor %.2f on a %d-CPU machine",
					v, floor, cur.NumCPU)})
		}
	}
	return findings, true
}

// compareRatios gates the higher-is-better "-x" ratio metrics of one series.
func compareRatios(base, cur Entry, maxRegress float64) []Finding {
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		if strings.HasSuffix(name, "-x") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		bv := base.Metrics[name]
		if bv <= 0 {
			continue
		}
		cv, ok := cur.Metrics[name]
		if !ok {
			out = append(out, Finding{base.Name,
				fmt.Sprintf("ratio metric %s missing from current report", name)})
			continue
		}
		if floor := bv * (1 - maxRegress); cv < floor {
			out = append(out, Finding{base.Name,
				fmt.Sprintf("%s shrank %.2f -> %.2f (-%.0f%%, limit -%.0f%%)",
					name, bv, cv, 100*(1-cv/bv), 100*maxRegress)})
		}
	}
	return out
}
