package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); math.Abs(got-2.8) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty-slice summaries not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q.25 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.75); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("interpolated quantile = %v", got)
	}
}

func TestSortedDescending(t *testing.T) {
	xs := []float64{2, 9, 4}
	out := SortedDescending(xs)
	if out[0] != 9 || out[1] != 4 || out[2] != 2 {
		t.Fatalf("sorted = %v", out)
	}
	if xs[0] != 2 {
		t.Fatal("input mutated")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{0.05, 0.15, 0.15, 0.95}, 0, 1, 10)
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.BucketCenter(0); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("center(0) = %v", got)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram([]float64{-5, 0.5, 99}, 0, 1, 4)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Fatalf("sample dropped: %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buckets": func() { NewHistogram(nil, 0, 1, 0) },
		"bad range":    func() { NewHistogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestHistogramConservation: bucketing never loses or invents samples.
func TestHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		h := NewHistogram(xs, 0, 1, 7)
		return h.Total() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
