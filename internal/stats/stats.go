// Package stats provides the small numeric summaries the experiment harness
// reports: means, extremes, histograms and sorted series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SortedDescending returns a copy of xs sorted high to low (Fig. 6's
// sorted link-utilization series).
func SortedDescending(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Histogram is a fixed-width bucketing of a sample (Fig. 3's link-count
// by utilization charts).
type Histogram struct {
	// Lo and Width define bucket i as [Lo+i·Width, Lo+(i+1)·Width); the last
	// bucket also includes its upper edge.
	Lo, Width float64
	Counts    []int
}

// NewHistogram buckets xs into n equal-width buckets spanning [lo, hi].
// Values outside the range are clamped into the first or last bucket so no
// sample is silently dropped. It panics when n < 1 or hi ≤ lo: histogram
// geometry is always caller-chosen, so a bad shape is a bug.
func NewHistogram(xs []float64, lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic(fmt.Sprintf("stats: histogram with %d buckets", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%g,%g]", lo, hi))
	}
	h := &Histogram{Lo: lo, Width: (hi - lo) / float64(n), Counts: make([]int, n)}
	for _, x := range xs {
		i := int((x - lo) / h.Width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Total returns the number of bucketed samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
