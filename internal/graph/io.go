package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Nodes []string  `json:"nodes"`
	Arcs  []jsonArc `json:"arcs"`
}

type jsonArc struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
	Delay    float64 `json:"delay"`
}

// MarshalJSON encodes the graph as {"nodes": [...names], "arcs": [...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.names, Arcs: make([]jsonArc, 0, len(g.edges))}
	for _, e := range g.edges {
		jg.Arcs = append(jg.Arcs, jsonArc{
			From: int(e.From), To: int(e.To), Capacity: e.Capacity, Delay: e.Delay,
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded with MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	ng := New(len(jg.Nodes))
	copy(ng.names, jg.Nodes)
	for i, a := range jg.Arcs {
		if a.From < 0 || a.From >= len(jg.Nodes) || a.To < 0 || a.To >= len(jg.Nodes) {
			return fmt.Errorf("graph: arc %d endpoints (%d,%d) out of range", i, a.From, a.To)
		}
		if a.From == a.To {
			return fmt.Errorf("graph: arc %d is a self-loop at %d", i, a.From)
		}
		ng.AddArc(NodeID(a.From), NodeID(a.To), a.Capacity, a.Delay)
	}
	// Field-wise assignment: Graph embeds an atomic CSR cache that must not
	// be copied as a value.
	g.names = ng.names
	g.edges = ng.edges
	g.out = ng.out
	g.in = ng.in
	g.invalidateCSR()
	return g.Validate()
}

// Write encodes the graph as indented JSON to w.
func (g *Graph) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Read decodes a graph from JSON read from r.
func Read(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
