// Package graph provides the directed-graph substrate used by every other
// package in this module: nodes, directed arcs with capacities and
// propagation delays, adjacency queries, and structural checks.
//
// Terminology follows the paper: a "link" is a bidirectional connection
// realized as two directed arcs, one per direction. All routing, load and
// cost computations operate on arcs.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// NodeID is a dense, zero-based node index.
type NodeID int32

// EdgeID is a dense, zero-based directed-arc index.
type EdgeID int32

// MaxNodes and MaxArcs bound graph sizes so every index fits the 32-bit
// NodeID/EdgeID types and the CSR's int32 offset arrays (which need one
// past-the-end slot). Exceeding either fails loudly with a typed error —
// silent index truncation would corrupt routing state undetectably.
const (
	MaxNodes = math.MaxInt32 - 1
	MaxArcs  = math.MaxInt32 - 1
)

// ErrTooManyNodes and ErrTooManyArcs are the typed capacity-overflow
// failures; guards wrap them, so test with errors.Is.
var (
	ErrTooManyNodes = errors.New("graph: node count exceeds int32 index space")
	ErrTooManyArcs  = errors.New("graph: arc count exceeds int32 index space")
)

// CheckCounts validates that a graph with the given node and arc counts is
// representable in the 32-bit index layout. Generators that size graphs from
// user parameters should call it before allocating.
func CheckCounts(nodes, arcs int) error {
	if nodes < 0 || nodes > MaxNodes {
		return fmt.Errorf("%w: %d nodes > max %d", ErrTooManyNodes, nodes, MaxNodes)
	}
	if arcs < 0 || arcs > MaxArcs {
		return fmt.Errorf("%w: %d arcs > max %d", ErrTooManyArcs, arcs, MaxArcs)
	}
	return nil
}

// Edge is a directed arc with a capacity (Mbps) and a propagation delay (ms).
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Capacity float64
	Delay    float64
}

// Graph is a directed graph with per-arc capacities and propagation delays.
// The zero value is an empty graph; use New to create one with nodes.
type Graph struct {
	names []string
	edges []Edge
	out   [][]EdgeID
	in    [][]EdgeID

	// csr caches the flat adjacency snapshot; it is rebuilt lazily after
	// structural mutations (AddArc). Concurrent readers may race to build
	// equivalent snapshots, which is harmless.
	csr atomic.Pointer[CSR]
}

// New returns a graph with n isolated nodes named "n0".."n<n-1>". It panics
// with an error wrapping ErrTooManyNodes if n exceeds MaxNodes.
func New(n int) *Graph {
	if err := CheckCounts(n, 0); err != nil {
		panic(err)
	}
	g := &Graph{
		names: make([]string, n),
		out:   make([][]EdgeID, n),
		in:    make([][]EdgeID, n),
	}
	for i := range g.names {
		g.names[i] = fmt.Sprintf("n%d", i)
	}
	return g
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges reports the number of directed arcs.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the arc with the given ID. It panics if id is out of range.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns the arc slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of arcs leaving u. Callers must not modify it.
func (g *Graph) Out(u NodeID) []EdgeID { return g.out[u] }

// In returns the IDs of arcs entering u. Callers must not modify it.
func (g *Graph) In(u NodeID) []EdgeID { return g.in[u] }

// OutDegree reports the number of arcs leaving u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// Name returns the display name of node u.
func (g *Graph) Name(u NodeID) string { return g.names[u] }

// SetName sets the display name of node u.
func (g *Graph) SetName(u NodeID, name string) { g.names[u] = name }

// NodeByName returns the node with the given display name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	for i, n := range g.names {
		if n == name {
			return NodeID(i), true
		}
	}
	return 0, false
}

// AddArc appends a directed arc and returns its ID. It panics if either
// endpoint is out of range, the arc is a self-loop, or the arc count would
// exceed MaxArcs (an error wrapping ErrTooManyArcs — never a silently
// wrapped-around EdgeID); topology construction bugs should fail fast rather
// than corrupt later routing computations.
func (g *Graph) AddArc(from, to NodeID, capacity, delay float64) EdgeID {
	if from == to {
		panic(fmt.Sprintf("graph: self-loop at node %d", from))
	}
	g.checkNode(from)
	g.checkNode(to)
	if err := arcCountGuard(len(g.edges)); err != nil {
		panic(err)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity, Delay: delay})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.invalidateCSR()
	return id
}

// AddLink adds a bidirectional link as two arcs sharing capacity and delay
// values, returning both arc IDs.
func (g *Graph) AddLink(u, v NodeID, capacity, delay float64) (uv, vu EdgeID) {
	uv = g.AddArc(u, v, capacity, delay)
	vu = g.AddArc(v, u, capacity, delay)
	return uv, vu
}

// arcCountGuard rejects appending one more arc to a graph already holding
// cur arcs when the new ID would not fit EdgeID. Split out so the boundary
// condition is testable without allocating 2^31 arcs.
func arcCountGuard(cur int) error {
	if cur >= MaxArcs {
		return fmt.Errorf("%w: cannot add arc %d", ErrTooManyArcs, cur)
	}
	return nil
}

func (g *Graph) checkNode(u NodeID) {
	if u < 0 || int(u) >= len(g.names) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.names)))
	}
}

// ArcBetween returns the first arc from u to v, if any.
func (g *Graph) ArcBetween(u, v NodeID) (EdgeID, bool) {
	for _, id := range g.out[u] {
		if g.edges[id].To == v {
			return id, true
		}
	}
	return 0, false
}

// HasLink reports whether arcs exist in both directions between u and v.
func (g *Graph) HasLink(u, v NodeID) bool {
	_, fwd := g.ArcBetween(u, v)
	_, rev := g.ArcBetween(v, u)
	return fwd && rev
}

// Reverse returns the opposite-direction arc of id when the graph contains
// one (always true for graphs built with AddLink).
func (g *Graph) Reverse(id EdgeID) (EdgeID, bool) {
	e := g.edges[id]
	return g.ArcBetween(e.To, e.From)
}

// SetDelay updates the propagation delay of arc id.
func (g *Graph) SetDelay(id EdgeID, delay float64) {
	g.edges[id].Delay = delay
	g.invalidateCSR()
}

// SetCapacity updates the capacity of arc id.
func (g *Graph) SetCapacity(id EdgeID, capacity float64) {
	g.edges[id].Capacity = capacity
	g.invalidateCSR()
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// Validate checks structural invariants: endpoint ranges, no self-loops,
// consistent adjacency indexes, and positive capacities.
func (g *Graph) Validate() error {
	for _, e := range g.edges {
		if e.From < 0 || int(e.From) >= g.NumNodes() || e.To < 0 || int(e.To) >= g.NumNodes() {
			return fmt.Errorf("graph: arc %d endpoints (%d,%d) out of range", e.ID, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: arc %d is a self-loop at %d", e.ID, e.From)
		}
		if e.Capacity <= 0 {
			return fmt.Errorf("graph: arc %d has non-positive capacity %g", e.ID, e.Capacity)
		}
		if e.Delay < 0 {
			return fmt.Errorf("graph: arc %d has negative delay %g", e.ID, e.Delay)
		}
	}
	seen := 0
	for u, ids := range g.out {
		for _, id := range ids {
			if g.edges[id].From != NodeID(u) {
				return fmt.Errorf("graph: out-adjacency of %d lists arc %d from %d", u, id, g.edges[id].From)
			}
			seen++
		}
	}
	if seen != len(g.edges) {
		return fmt.Errorf("graph: adjacency covers %d arcs, have %d", seen, len(g.edges))
	}
	return nil
}

// ErrDisconnected is returned by RequireStronglyConnected when some node
// cannot reach, or be reached from, node 0.
var ErrDisconnected = errors.New("graph: not strongly connected")

// StronglyConnected reports whether every node can reach every other node.
func (g *Graph) StronglyConnected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	return g.reachableCount(0, false) == n && g.reachableCount(0, true) == n
}

// RequireStronglyConnected returns ErrDisconnected unless the graph is
// strongly connected. Routing requires full reachability: a traffic matrix
// entry between disconnected nodes has no well-defined cost.
func (g *Graph) RequireStronglyConnected() error {
	if !g.StronglyConnected() {
		return ErrDisconnected
	}
	return nil
}

// reachableCount counts nodes reachable from start following arcs forward,
// or backward when reverse is true.
func (g *Graph) reachableCount(start NodeID, reverse bool) int {
	visited := make([]bool, g.NumNodes())
	stack := []NodeID{start}
	visited[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		adj := g.out[u]
		if reverse {
			adj = g.in[u]
		}
		for _, id := range adj {
			v := g.edges[id].To
			if reverse {
				v = g.edges[id].From
			}
			if !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count
}

// UndirectedDegree reports the number of distinct neighbors of u counting
// either arc direction once.
func (g *Graph) UndirectedDegree(u NodeID) int {
	seen := make(map[NodeID]bool)
	for _, id := range g.out[u] {
		seen[g.edges[id].To] = true
	}
	for _, id := range g.in[u] {
		seen[g.edges[id].From] = true
	}
	return len(seen)
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{%d nodes, %d arcs}", g.NumNodes(), g.NumEdges())
}
