package graph

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// buildTestGraph returns a small named graph with asymmetric arc attributes
// so round-trip mismatches cannot hide behind symmetry.
func buildTestGraph() *Graph {
	g := New(4)
	g.SetName(0, "sea")
	g.SetName(1, "chi")
	g.SetName(2, "nyc")
	g.SetName(3, "atl")
	g.AddLink(0, 1, 500, 8.5)
	g.AddLink(1, 2, 1000, 4.25)
	g.AddArc(2, 3, 250, 6)
	g.AddArc(3, 0, 125, 12.75)
	return g
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := buildTestGraph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var got Graph
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, &got) {
		t.Fatalf("round trip changed graph:\nin  %+v\nout %+v", g, &got)
	}
	// Round-trip again from the decoded copy: the codec must be stable.
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encoding differs:\n%s\nvs\n%s", data, data2)
	}
}

func TestGraphWriteReadRoundTrip(t *testing.T) {
	g := buildTestGraph()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("Write/Read changed graph:\nin  %+v\nout %+v", g, got)
	}
}

func TestGraphUnmarshalEmpty(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":[],"arcs":[]}`), &g); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph = %v", &g)
	}
}

func TestGraphUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", `{"nodes": [`},
		{"wrong type", `{"nodes": 3}`},
		{"from out of range", `{"nodes":["a","b"],"arcs":[{"from":2,"to":0,"capacity":1,"delay":0}]}`},
		{"negative endpoint", `{"nodes":["a","b"],"arcs":[{"from":-1,"to":0,"capacity":1,"delay":0}]}`},
		{"self loop", `{"nodes":["a","b"],"arcs":[{"from":1,"to":1,"capacity":1,"delay":0}]}`},
		{"zero capacity", `{"nodes":["a","b"],"arcs":[{"from":0,"to":1,"capacity":0,"delay":0}]}`},
		{"negative delay", `{"nodes":["a","b"],"arcs":[{"from":0,"to":1,"capacity":1,"delay":-2}]}`},
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c.in), &g); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGraphReadError(t *testing.T) {
	if _, err := Read(strings.NewReader("[1,2,3]")); err == nil {
		t.Fatal("non-graph JSON accepted")
	}
}
