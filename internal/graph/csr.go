package graph

// CSR is a flat compressed-sparse-row snapshot of a graph's adjacency,
// replacing slice-of-slices traversal in hot routing loops: one cache-dense
// index array per direction plus parallel endpoint arrays, so a Dijkstra
// relaxation touches three flat arrays instead of chasing per-node slice
// headers and Edge structs.
//
// A CSR is immutable. Graph.CSR returns the current snapshot, rebuilding it
// lazily after structural mutations; holders of a snapshot taken before a
// mutation keep a consistent (stale) view.
type CSR struct {
	// OutStart/InStart are n+1 offset arrays: the arcs leaving (entering)
	// node u are OutArcs[OutStart[u]:OutStart[u+1]] (InArcs[...]).
	OutStart []int32
	InStart  []int32
	OutArcs  []EdgeID
	InArcs   []EdgeID
	// OutTo[i] is the head of OutArcs[i]; InFrom[i] is the tail of InArcs[i].
	// They let traversals skip the Edge struct load entirely.
	OutTo  []NodeID
	InFrom []NodeID
	// From/To/Capacity/Delay are arc-indexed endpoint and attribute arrays
	// (From[id] == Edge(id).From, etc.).
	From     []NodeID
	To       []NodeID
	Capacity []float64
	Delay    []float64

	numNodes int
}

// NumNodes reports the node count of the snapshot.
func (c *CSR) NumNodes() int { return c.numNodes }

// NumArcs reports the arc count of the snapshot.
func (c *CSR) NumArcs() int { return len(c.From) }

// Out returns the IDs of arcs leaving u. Callers must not modify it.
func (c *CSR) Out(u NodeID) []EdgeID { return c.OutArcs[c.OutStart[u]:c.OutStart[u+1]] }

// In returns the IDs of arcs entering u. Callers must not modify it.
func (c *CSR) In(u NodeID) []EdgeID { return c.InArcs[c.InStart[u]:c.InStart[u+1]] }

// CSR returns the flat adjacency snapshot for g, building and caching it on
// first use. The snapshot is immutable; a later AddArc invalidates the cache
// so the next call rebuilds. Attribute mutations (SetDelay, SetCapacity)
// also invalidate so snapshots stay value-consistent with the graph.
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := g.buildCSR()
	g.csr.Store(c)
	return c
}

func (g *Graph) buildCSR() *CSR {
	n := g.NumNodes()
	m := g.NumEdges()
	// Defense in depth behind the AddArc/New guards: the int32 prefix-sum
	// arrays below would silently truncate past this point.
	if err := CheckCounts(n, m); err != nil {
		panic(err)
	}
	c := &CSR{
		OutStart: make([]int32, n+1),
		InStart:  make([]int32, n+1),
		OutArcs:  make([]EdgeID, m),
		InArcs:   make([]EdgeID, m),
		OutTo:    make([]NodeID, m),
		InFrom:   make([]NodeID, m),
		From:     make([]NodeID, m),
		To:       make([]NodeID, m),
		Capacity: make([]float64, m),
		Delay:    make([]float64, m),
		numNodes: n,
	}
	for i := range g.edges {
		e := &g.edges[i]
		c.From[i] = e.From
		c.To[i] = e.To
		c.Capacity[i] = e.Capacity
		c.Delay[i] = e.Delay
	}
	// Prefix sums over degrees, then fill per-node runs preserving the
	// per-node arc order of the slice-of-slices adjacency.
	for u := 0; u < n; u++ {
		c.OutStart[u+1] = c.OutStart[u] + int32(len(g.out[u]))
		c.InStart[u+1] = c.InStart[u] + int32(len(g.in[u]))
	}
	for u := 0; u < n; u++ {
		copy(c.OutArcs[c.OutStart[u]:c.OutStart[u+1]], g.out[u])
		copy(c.InArcs[c.InStart[u]:c.InStart[u+1]], g.in[u])
	}
	for i, id := range c.OutArcs {
		c.OutTo[i] = g.edges[id].To
	}
	for i, id := range c.InArcs {
		c.InFrom[i] = g.edges[id].From
	}
	return c
}

// invalidateCSR drops the cached snapshot after a mutation.
func (g *Graph) invalidateCSR() { g.csr.Store(nil) }
