package graph

import "testing"

// TestCSRMatchesAdjacency checks the flat snapshot agrees with the
// slice-of-slices adjacency, per node and per arc.
func TestCSRMatchesAdjacency(t *testing.T) {
	g := New(5)
	g.AddLink(0, 1, 10, 1)
	g.AddLink(1, 2, 20, 2)
	g.AddLink(2, 3, 30, 3)
	g.AddLink(3, 4, 40, 4)
	g.AddLink(4, 0, 50, 5)
	g.AddArc(0, 2, 60, 6)

	c := g.CSR()
	if c.NumNodes() != g.NumNodes() || c.NumArcs() != g.NumEdges() {
		t.Fatalf("CSR dims (%d,%d) != graph (%d,%d)", c.NumNodes(), c.NumArcs(), g.NumNodes(), g.NumEdges())
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		out, in := g.Out(u), g.In(u)
		cout, cin := c.Out(u), c.In(u)
		if len(out) != len(cout) || len(in) != len(cin) {
			t.Fatalf("node %d: degree mismatch", u)
		}
		for i, id := range out {
			if cout[i] != id {
				t.Fatalf("node %d out[%d]: csr %d != graph %d", u, i, cout[i], id)
			}
			if c.OutTo[int(c.OutStart[u])+i] != g.Edge(id).To {
				t.Fatalf("node %d out[%d]: OutTo mismatch", u, i)
			}
		}
		for i, id := range in {
			if cin[i] != id {
				t.Fatalf("node %d in[%d]: csr %d != graph %d", u, i, cin[i], id)
			}
			if c.InFrom[int(c.InStart[u])+i] != g.Edge(id).From {
				t.Fatalf("node %d in[%d]: InFrom mismatch", u, i)
			}
		}
	}
	for _, e := range g.Edges() {
		if c.From[e.ID] != e.From || c.To[e.ID] != e.To ||
			c.Capacity[e.ID] != e.Capacity || c.Delay[e.ID] != e.Delay {
			t.Fatalf("arc %d: flat attribute mismatch", e.ID)
		}
	}
}

// TestCSRInvalidation checks mutations refresh the snapshot while old
// snapshots keep their stale-but-consistent view.
func TestCSRInvalidation(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 10, 1)
	old := g.CSR()
	if old.NumArcs() != 2 {
		t.Fatalf("snapshot has %d arcs, want 2", old.NumArcs())
	}
	g.AddLink(1, 2, 20, 2)
	fresh := g.CSR()
	if fresh.NumArcs() != 4 {
		t.Fatalf("post-AddLink snapshot has %d arcs, want 4", fresh.NumArcs())
	}
	if old.NumArcs() != 2 {
		t.Fatal("old snapshot mutated")
	}
	g.SetDelay(0, 9)
	if got := g.CSR().Delay[0]; got != 9 {
		t.Fatalf("post-SetDelay snapshot delay %v, want 9", got)
	}
	g.SetCapacity(0, 99)
	if got := g.CSR().Capacity[0]; got != 99 {
		t.Fatalf("post-SetCapacity snapshot capacity %v, want 99", got)
	}
	if fresh.Delay[0] != 2 && fresh.Delay[0] != 1 {
		// fresh was taken before SetDelay; it must hold the old value.
		t.Fatalf("stale snapshot delay %v changed", fresh.Delay[0])
	}
}

// TestCSRCloneIndependent checks a clone builds its own snapshot.
func TestCSRCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 10, 1)
	_ = g.CSR()
	c := g.Clone()
	c.AddLink(1, 2, 20, 2)
	if c.CSR().NumArcs() != 4 {
		t.Fatalf("clone snapshot has %d arcs, want 4", c.CSR().NumArcs())
	}
	if g.CSR().NumArcs() != 2 {
		t.Fatalf("original snapshot has %d arcs, want 2", g.CSR().NumArcs())
	}
}
