package graph

import (
	"errors"
	"math"
	"testing"
)

// The compact int32 layout must fail loudly at the index-space boundary —
// a silently wrapped NodeID/EdgeID or truncated CSR offset would corrupt
// routing state undetectably. These tests pin the typed errors at the exact
// boundaries without allocating 2^31 arcs.

func TestCheckCountsBoundary(t *testing.T) {
	cases := []struct {
		name        string
		nodes, arcs int
		wantErr     error
	}{
		{"small ok", 10, 40, nil},
		{"max nodes ok", MaxNodes, 0, nil},
		{"max arcs ok", 3, MaxArcs, nil},
		{"nodes over", MaxNodes + 1, 0, ErrTooManyNodes},
		{"arcs over", 3, MaxArcs + 1, ErrTooManyArcs},
		{"nodes at MaxInt32", math.MaxInt32, 0, ErrTooManyNodes},
		{"negative nodes", -1, 0, ErrTooManyNodes},
		{"negative arcs", 3, -1, ErrTooManyArcs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckCounts(tc.nodes, tc.arcs)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("CheckCounts(%d, %d) = %v, want nil", tc.nodes, tc.arcs, err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("CheckCounts(%d, %d) = %v, want errors.Is(%v)", tc.nodes, tc.arcs, err, tc.wantErr)
			}
		})
	}
}

func TestArcCountGuardBoundary(t *testing.T) {
	// The last admissible append is at cur = MaxArcs-1 (producing ID
	// MaxArcs-1); appending at cur = MaxArcs would produce an ID that
	// collides with sentinel space.
	if err := arcCountGuard(MaxArcs - 1); err != nil {
		t.Fatalf("arcCountGuard(MaxArcs-1) = %v, want nil", err)
	}
	err := arcCountGuard(MaxArcs)
	if !errors.Is(err, ErrTooManyArcs) {
		t.Fatalf("arcCountGuard(MaxArcs) = %v, want errors.Is(ErrTooManyArcs)", err)
	}
}

func TestNewPanicsTypedPastMaxNodes(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New(MaxNodes+1) did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrTooManyNodes) {
			t.Fatalf("New(MaxNodes+1) panicked with %v, want errors.Is(ErrTooManyNodes)", r)
		}
	}()
	New(MaxNodes + 1)
}

// TestAddArcGuardWired pins that AddArc actually consults the guard by
// checking the boundary helper is what gates it (white-box): a graph just
// below the boundary accepts the arc, and the guard's error for the next
// slot is the typed ErrTooManyArcs that AddArc panics with.
func TestAddArcGuardWired(t *testing.T) {
	g := New(2)
	id := g.AddArc(0, 1, 1, 0)
	if id != 0 {
		t.Fatalf("first arc ID = %d, want 0", id)
	}
	// The guard AddArc invokes must reject the overflow slot.
	if err := arcCountGuard(MaxArcs); err == nil {
		t.Fatal("arcCountGuard accepts the overflow slot AddArc relies on it rejecting")
	}
}
