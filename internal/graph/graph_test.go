package graph

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3)
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	g.AddLink(0, 2, 1, 1)
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(4)
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Fatalf("NumEdges = %d, want 0", got)
	}
	if g.StronglyConnected() {
		t.Fatal("4 isolated nodes reported strongly connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddLinkCreatesBothArcs(t *testing.T) {
	g := New(2)
	uv, vu := g.AddLink(0, 1, 500, 2.5)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	e1, e2 := g.Edge(uv), g.Edge(vu)
	if e1.From != 0 || e1.To != 1 || e2.From != 1 || e2.To != 0 {
		t.Fatalf("arc endpoints wrong: %+v %+v", e1, e2)
	}
	if e1.Capacity != 500 || e2.Capacity != 500 {
		t.Fatalf("capacities wrong: %g %g", e1.Capacity, e2.Capacity)
	}
	if e1.Delay != 2.5 || e2.Delay != 2.5 {
		t.Fatalf("delays wrong: %g %g", e1.Delay, e2.Delay)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddArc(1,1) did not panic")
		}
	}()
	New(2).AddArc(1, 1, 1, 0)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddArc with bad node did not panic")
		}
	}()
	New(2).AddArc(0, 5, 1, 0)
}

func TestAdjacency(t *testing.T) {
	g := triangle(t)
	if d := g.OutDegree(0); d != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", d)
	}
	if d := len(g.In(2)); d != 2 {
		t.Fatalf("len(In(2)) = %d, want 2", d)
	}
	for _, id := range g.Out(1) {
		if g.Edge(id).From != 1 {
			t.Fatalf("Out(1) contains arc from %d", g.Edge(id).From)
		}
	}
	if d := g.UndirectedDegree(0); d != 2 {
		t.Fatalf("UndirectedDegree(0) = %d, want 2", d)
	}
}

func TestArcBetween(t *testing.T) {
	g := triangle(t)
	id, ok := g.ArcBetween(0, 2)
	if !ok {
		t.Fatal("ArcBetween(0,2) not found")
	}
	if e := g.Edge(id); e.From != 0 || e.To != 2 {
		t.Fatalf("ArcBetween returned %+v", e)
	}
	if _, ok := g.ArcBetween(2, 2); ok {
		t.Fatal("ArcBetween(2,2) found a self loop")
	}
	rev, ok := g.Reverse(id)
	if !ok {
		t.Fatal("Reverse not found")
	}
	if e := g.Edge(rev); e.From != 2 || e.To != 0 {
		t.Fatalf("Reverse returned %+v", e)
	}
	if !g.HasLink(0, 1) {
		t.Fatal("HasLink(0,1) = false")
	}
}

func TestStronglyConnected(t *testing.T) {
	g := triangle(t)
	if !g.StronglyConnected() {
		t.Fatal("triangle not strongly connected")
	}
	if err := g.RequireStronglyConnected(); err != nil {
		t.Fatalf("RequireStronglyConnected: %v", err)
	}
	// One-way chain is not strongly connected.
	h := New(3)
	h.AddArc(0, 1, 1, 0)
	h.AddArc(1, 2, 1, 0)
	if h.StronglyConnected() {
		t.Fatal("one-way chain reported strongly connected")
	}
	if err := h.RequireStronglyConnected(); err != ErrDisconnected {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestDirectedCycleIsStronglyConnected(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddArc(NodeID(i), NodeID((i+1)%4), 1, 0)
	}
	if !g.StronglyConnected() {
		t.Fatal("directed 4-cycle should be strongly connected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	c.AddLink(0, 1, 9, 9)
	c.SetName(0, "changed")
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("AddLink on clone changed original edge count")
	}
	if g.Name(0) == "changed" {
		t.Fatal("SetName on clone changed original")
	}
	c2 := g.Clone()
	c2.SetDelay(0, 99)
	if g.Edge(0).Delay == 99 {
		t.Fatal("SetDelay on clone changed original")
	}
}

func TestNames(t *testing.T) {
	g := New(2)
	if g.Name(1) != "n1" {
		t.Fatalf("default name = %q, want n1", g.Name(1))
	}
	g.SetName(1, "nyc")
	id, ok := g.NodeByName("nyc")
	if !ok || id != 1 {
		t.Fatalf("NodeByName = (%d,%v), want (1,true)", id, ok)
	}
	if _, ok := g.NodeByName("missing"); ok {
		t.Fatal("NodeByName found missing name")
	}
}

func TestValidateCatchesBadCapacity(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 1, 0)
	g.SetCapacity(0, -1)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted negative capacity")
	}
	g.SetCapacity(0, 1)
	g.SetDelay(0, -5)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted negative delay")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := triangle(t)
	g.SetName(0, "a")
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %v vs %v", h, g)
	}
	if h.Name(0) != "a" {
		t.Fatalf("round trip lost name: %q", h.Name(0))
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(EdgeID(i)) != h.Edge(EdgeID(i)) {
			t.Fatalf("arc %d mismatch: %+v vs %+v", i, g.Edge(EdgeID(i)), h.Edge(EdgeID(i)))
		}
	}
}

func TestUnmarshalRejectsBadArc(t *testing.T) {
	for _, bad := range []string{
		`{"nodes":["a","b"],"arcs":[{"from":0,"to":5,"capacity":1,"delay":0}]}`,
		`{"nodes":["a","b"],"arcs":[{"from":1,"to":1,"capacity":1,"delay":0}]}`,
		`{"nodes":["a","b"],"arcs":[{"from":0,"to":1,"capacity":-2,"delay":0}]}`,
		`not json`,
	} {
		var g Graph
		if err := g.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("UnmarshalJSON accepted %q", bad)
		}
	}
}

// TestRandomGraphInvariants builds random graphs and checks Validate,
// adjacency consistency and clone equality as properties.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(20)
		g := New(n)
		links := 1 + rng.IntN(3*n)
		for i := 0; i < links; i++ {
			u := NodeID(rng.IntN(n))
			v := NodeID(rng.IntN(n))
			if u == v {
				continue
			}
			g.AddLink(u, v, 1+rng.Float64()*100, rng.Float64()*15)
		}
		if err := g.Validate(); err != nil {
			return false
		}
		// Arc count must equal the sum of out-degrees and in-degrees.
		outSum, inSum := 0, 0
		for u := 0; u < n; u++ {
			outSum += len(g.Out(NodeID(u)))
			inSum += len(g.In(NodeID(u)))
		}
		if outSum != g.NumEdges() || inSum != g.NumEdges() {
			return false
		}
		c := g.Clone()
		if c.NumEdges() != g.NumEdges() || c.NumNodes() != g.NumNodes() {
			return false
		}
		for i := 0; i < g.NumEdges(); i++ {
			if c.Edge(EdgeID(i)) != g.Edge(EdgeID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	g := triangle(t)
	if got, want := g.String(), "graph{3 nodes, 6 arcs}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
