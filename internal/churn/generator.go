package churn

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// GenSpec parameterizes the Poisson churn generator. Every process is
// seeded per entity from Seed through SplitMix64, so the timeline for a
// given (graph, spec) is fully deterministic and adding one knob never
// perturbs another process's stream.
type GenSpec struct {
	Seed uint64
	// Horizon is the simulated duration in seconds (default 600).
	Horizon float64
	// LinkMTBF/LinkMTTR are the mean up-time between failures and mean
	// repair time of each link, seconds (exponential holding times, the
	// classic flap/repair alternating renewal process). LinkMTBF == 0
	// disables link flapping; LinkMTTR defaults to 10s.
	LinkMTBF float64
	LinkMTTR float64
	// NodeMTBF/NodeMTTR do the same per node (maintenance windows,
	// crashes). NodeMTBF == 0 disables node churn.
	NodeMTBF float64
	NodeMTTR float64
	// WeightRate is the network-wide rate of operator weight
	// reconfigurations (events per second); each picks a uniform link and
	// uniform new weights in [WMin, WMax] for both topologies.
	WeightRate float64
	// WMin and WMax bound weight-set payloads (defaults 1 and 20).
	WMin, WMax int
	// Intensity is the Magnien-style global churn multiplier: it scales
	// every failure and reconfiguration rate (repair times are left
	// alone), so sweeping it moves a scenario from calm to pathological
	// without re-tuning individual knobs. Default 1.
	Intensity float64
}

// normalized fills defaults without mutating the caller's spec.
func (s GenSpec) normalized() (GenSpec, error) {
	if s.Horizon == 0 {
		s.Horizon = 600
	}
	if s.Horizon < 0 {
		return s, fmt.Errorf("churn: horizon %gs is negative", s.Horizon)
	}
	if s.LinkMTBF < 0 || s.LinkMTTR < 0 || s.NodeMTBF < 0 || s.NodeMTTR < 0 || s.WeightRate < 0 {
		return s, fmt.Errorf("churn: rates and mean times must be non-negative")
	}
	if s.LinkMTTR == 0 {
		s.LinkMTTR = 10
	}
	if s.NodeMTTR == 0 {
		s.NodeMTTR = 60
	}
	if s.WMin == 0 {
		s.WMin = 1
	}
	if s.WMax == 0 {
		s.WMax = 20
	}
	if s.WMin < 1 || s.WMax < s.WMin {
		return s, fmt.Errorf("churn: weight range [%d,%d] invalid", s.WMin, s.WMax)
	}
	if s.Intensity == 0 {
		s.Intensity = 1
	}
	if s.Intensity < 0 {
		return s, fmt.Errorf("churn: intensity %g is negative", s.Intensity)
	}
	return s, nil
}

// Validate reports the first invalid knob without needing a graph —
// campaign specs validate before any instance is built.
func (s GenSpec) Validate() error {
	_, err := s.normalized()
	return err
}

// splitmix64 is the SplitMix64 finalizer — the same stream-splitting
// discipline internal/scenario uses for trial seeds (kept local because
// scenario imports this package).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Domain-separation constants for the per-entity streams ("link", "node",
// "wset" in ASCII), so link i's flap process never correlates with node
// i's outage process.
const (
	streamLink = 0x6c696e6b
	streamNode = 0x6e6f6465
	streamWSet = 0x77736574
)

// entityRNG returns the dedicated RNG of entity index i in stream domain.
func entityRNG(seed uint64, domain, i uint64) *rand.Rand {
	return rand.New(rand.NewPCG(
		splitmix64(seed^domain),
		splitmix64(seed^domain^(i+1)*0x9e3779b97f4a7c15),
	))
}

// links enumerates the graph's bidirectional links by their
// ascending-direction arc (the arc whose ID is below its reverse's);
// one-way arcs are not links and never churn.
func links(g *graph.Graph) []graph.EdgeID {
	var out []graph.EdgeID
	for id := 0; id < g.NumEdges(); id++ {
		rev, ok := g.Reverse(graph.EdgeID(id))
		if ok && graph.EdgeID(id) < rev {
			out = append(out, graph.EdgeID(id))
		}
	}
	return out
}

// Generate builds a Timeline for g from spec. Each link (and node, when
// enabled) alternates exponential up/down holding times; weight
// reconfigurations arrive as a network-wide Poisson process. Events are
// merged and sorted by (time, kind, target), so the result is independent
// of generation order.
func Generate(g *graph.Graph, spec GenSpec) (*Timeline, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	ls := links(g)
	tl := &Timeline{Horizon: spec.Horizon}

	flap := func(rng *rand.Rand, mtbf, mttr float64, down, up Kind, target string) {
		t := 0.0
		for {
			t += rng.ExpFloat64() * mtbf / spec.Intensity
			if t >= spec.Horizon {
				return
			}
			tl.Events = append(tl.Events, Event{T: t, Kind: down, Target: target})
			t += rng.ExpFloat64() * mttr
			if t >= spec.Horizon {
				return // still down at the horizon: the outage persists
			}
			tl.Events = append(tl.Events, Event{T: t, Kind: up, Target: target})
		}
	}

	if spec.LinkMTBF > 0 {
		for i, id := range ls {
			flap(entityRNG(spec.Seed, streamLink, uint64(i)),
				spec.LinkMTBF, spec.LinkMTTR, LinkDown, LinkUp, LinkTarget(g, id))
		}
	}
	if spec.NodeMTBF > 0 {
		for u := 0; u < g.NumNodes(); u++ {
			flap(entityRNG(spec.Seed, streamNode, uint64(u)),
				spec.NodeMTBF, spec.NodeMTTR, NodeDown, NodeUp, g.Name(graph.NodeID(u)))
		}
	}
	if spec.WeightRate > 0 && len(ls) > 0 {
		rng := entityRNG(spec.Seed, streamWSet, 0)
		rate := spec.WeightRate * spec.Intensity
		span := spec.WMax - spec.WMin + 1
		for t := rng.ExpFloat64() / rate; t < spec.Horizon; t += rng.ExpFloat64() / rate {
			id := ls[rng.IntN(len(ls))]
			tl.Events = append(tl.Events, Event{
				T:      t,
				Kind:   WeightSet,
				Target: LinkTarget(g, id),
				WH:     spec.WMin + rng.IntN(span),
				WL:     spec.WMin + rng.IntN(span),
			})
		}
	}
	sortEvents(tl.Events)
	return tl, nil
}
