package churn

import (
	"dualtopo/internal/graph"
	"dualtopo/internal/ospf"
	"dualtopo/internal/spf"
)

// ConvergenceOptions parameterizes the OSPF-convergence emulation: after
// each event the affected routers originate LSAs that flood hop by hop
// (ospf.FloodSchedule, the analytic form of internal/ospf's protocol), and
// a router's forwarding stays on its pre-event tree until its LSA arrives
// and its SPF re-run completes. The transient score walks every affected
// high-priority pair through the resulting mix of stale and fresh FIBs.
type ConvergenceOptions struct {
	Enabled bool
	// FloodHopMs is the per-adjacency LSA propagation + processing delay
	// (default 2ms); SpfMs is the SPF recompute + FIB install time after
	// the last LSA arrives (default 50ms, the classic IGP default range).
	FloodHopMs float64
	SpfMs      float64
}

// normalized fills defaults.
func (c ConvergenceOptions) normalized() ConvergenceOptions {
	if c.FloodHopMs == 0 {
		c.FloodHopMs = 2
	}
	if c.SpfMs == 0 {
		c.SpfMs = 50
	}
	return c
}

// convState is the reusable convergence-mode machinery: per-destination
// first-hop snapshots (the "FIB" each router would hold for that
// destination), the flood scheduler, and walk scratch.
type convState struct {
	opt ConvergenceOptions
	fs  *ospf.FloodSchedule
	// hop[di][u] is the packed first next-hop arc (+1; 0 = no route) of
	// router u toward hpDests[di] under the current trees; prev[di] holds
	// the pre-event row for destinations whose tree just moved.
	hop  [][]int32
	prev [][]int32
	// treeMoved marks destinations whose row actually changed this event.
	treeMoved []bool
	origins   []graph.NodeID
	enabled   func(graph.EdgeID) bool
	stamp     []int32
	stampN    int32
	stale     bool // set across disconnection windows: snapshots unusable
	trans     Transient
}

func newConvState(r *Replayer) *convState {
	n := r.g.NumNodes()
	c := &convState{
		opt:       r.opts.Convergence.normalized(),
		fs:        ospf.NewFloodSchedule(r.g),
		hop:       make([][]int32, len(r.hpDests)),
		prev:      make([][]int32, len(r.hpDests)),
		treeMoved: make([]bool, len(r.hpDests)),
		origins:   make([]graph.NodeID, 0, 8),
		stamp:     make([]int32, n),
	}
	for di := range c.hop {
		c.hop[di] = make([]int32, n)
		c.prev[di] = make([]int32, n)
	}
	// An adjacency floods while either direction survives in the high
	// topology's effective weights (FailLink removes both together).
	c.enabled = func(id graph.EdgeID) bool { return r.bufH[id] != spf.Disabled }
	return c
}

// fillRow extracts destination di's first-hop row from the current tree.
func (r *Replayer) convFillRow(di int, row []int32) {
	t := r.drH.Tree(r.hpDests[di])
	for u := range row {
		if t.NextLen(graph.NodeID(u)) > 0 {
			row[u] = int32(t.Next(graph.NodeID(u))[0]) + 1
		} else {
			row[u] = 0
		}
	}
}

// snapshotAll re-extracts every destination row — replay start and
// post-disconnection recovery.
func (c *convState) snapshotAll(r *Replayer) {
	for di := range c.hop {
		r.convFillRow(di, c.hop[di])
	}
	c.stale = false
}

// scoreTransient runs convergence emulation for one event: swap and
// refresh the rows of moved destinations, flood from the event's
// originators, then walk each affected pair through every convergence
// interval, charging demand forwarded into blackholes or micro-loops.
func (r *Replayer) scoreTransient(rec *Record, ev *Event, node graph.NodeID, uv, vu graph.EdgeID, ok, hadFull bool) {
	c := r.conv
	if !ok {
		// Disconnected: steady-state mass already charges the outage and
		// router state is unspecified; snapshots refresh on recovery.
		c.stale = true
		return
	}
	if c.stale || hadFull {
		// Recovery (or first event after an outage window): the pre-event
		// snapshots do not describe any router's real FIB, so refresh them
		// and skip transient attribution for this event.
		c.snapshotAll(r)
		c.trans = Transient{}
		rec.Transient = &c.trans
		return
	}
	// Refresh rows of delay-dirty destinations (a superset of tree-moved
	// ones); note which rows actually changed.
	anyMoved := false
	for di := range r.hpDests {
		c.treeMoved[di] = false
		if !r.dirtyDest[di] {
			continue
		}
		c.hop[di], c.prev[di] = c.prev[di], c.hop[di]
		r.convFillRow(di, c.hop[di])
		for u := range c.hop[di] {
			if c.hop[di][u] != c.prev[di][u] {
				c.treeMoved[di] = true
				anyMoved = true
				break
			}
		}
	}

	c.trans = Transient{}
	rec.Transient = &c.trans
	if !anyMoved {
		return
	}

	// Who originates the update, per internal/ospf semantics: the routers
	// whose adjacencies changed. A dead node cannot originate — its
	// neighbors detect the loss; a reborn node announces itself alongside
	// its neighbors.
	c.origins = c.origins[:0]
	switch ev.Kind {
	case LinkDown, LinkUp, WeightSet:
		c.origins = append(c.origins, r.g.Edge(uv).From, r.g.Edge(uv).To)
	case NodeDown, NodeUp:
		if ev.Kind == NodeUp {
			c.origins = append(c.origins, node)
		}
		for _, id := range r.g.Out(node) {
			c.origins = append(c.origins, r.g.Edge(id).To)
		}
	}
	hops := c.fs.Hops(c.enabled, c.origins...)
	maxHop := int32(0)
	for _, h := range hops {
		if h > maxHop {
			maxHop = h
		}
	}
	c.trans.WindowMs = c.opt.SpfMs + float64(maxHop)*c.opt.FloodHopMs
	if c.trans.WindowMs > r.sum.MaxWindowMs {
		r.sum.MaxWindowMs = c.trans.WindowMs
	}

	// Interval i covers [T_{i-1}, T_i) with T_i = SpfMs + i·FloodHopMs:
	// during it, exactly the routers with hops < i have converged. The
	// walk follows the first canonical ECMP next-hop.
	for di := range r.hpDests {
		if !c.treeMoved[di] {
			continue
		}
		dest := r.hpDests[di]
		cur, prev := c.hop[di], c.prev[di]
		for si, src := range r.hpSrcs[di] {
			if r.nodeDown[src] || r.nodeDown[dest] {
				continue // charged as steady disconnection mass
			}
			affected := false
			for i := int32(0); i <= maxHop; i++ {
				width := c.opt.FloodHopMs
				if i == 0 {
					width = c.opt.SpfMs
				}
				if width <= 0 {
					continue
				}
				outcome := c.walk(r, src, dest, cur, prev, hops, i)
				if outcome == walkDelivered {
					continue
				}
				if outcome == walkLoop {
					c.trans.MicroLoops++
				} else {
					c.trans.Blackholes++
				}
				affected = true
				c.trans.LostMbpsSec += r.hpDem[di][si] * width / 1000
			}
			if affected {
				c.trans.AffectedPairs++
			}
		}
	}
	r.sum.TransientMbpsSec += c.trans.LostMbpsSec
	r.sum.MicroLoops += c.trans.MicroLoops
	r.sum.Blackholes += c.trans.Blackholes
	met.transientMbs.Add(int64(c.trans.LostMbpsSec * 1e6))
}

type walkOutcome uint8

const (
	walkDelivered walkOutcome = iota
	walkLoop
	walkBlackhole
)

// walk forwards one packet from src toward dest under the interval's
// mixed FIBs: converged routers (hops < interval) use the fresh tree,
// the rest their stale pre-event row. Entering a disabled arc is a
// blackhole (the interface is down); revisiting a router is a micro-loop.
func (c *convState) walk(r *Replayer, src, dest graph.NodeID, cur, prev []int32, hops []int32, interval int32) walkOutcome {
	c.stampN++
	u := src
	for steps := 0; steps <= len(c.stamp); steps++ {
		if u == dest {
			return walkDelivered
		}
		if c.stamp[u] == c.stampN {
			return walkLoop
		}
		c.stamp[u] = c.stampN
		row := prev
		if hops[u] >= 0 && hops[u] < interval {
			row = cur
		}
		packed := row[u]
		if packed == 0 {
			return walkBlackhole
		}
		arc := graph.EdgeID(packed - 1)
		if r.bufH[arc] == spf.Disabled {
			return walkBlackhole
		}
		u = r.g.Edge(arc).To
	}
	return walkLoop // safety net: longer than any simple path
}
