// Package churn replays timestamped topology-event streams — link flaps,
// weight reconfigurations, node outages — through the incremental routing
// core, producing a per-event time series of the paper's objectives plus
// transient metrics a static snapshot cannot show: SLA-violation mass
// integrated over time, disconnected high-priority pairs, per-event reroute
// latency, and (in convergence mode) the traffic lost to stale OSPF trees,
// micro-loops and blackholes while the control plane is still flooding.
//
// Timelines come from a seeded Poisson generator (Generate) or a JSONL
// trace file (ReadTrace/WriteTrace); either way the replay is bitwise
// deterministic for a given timeline and instance.
package churn

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dualtopo/internal/graph"
)

// Kind names one event type in a churn timeline.
type Kind string

// The five event kinds. Link targets are "<uname>-<vname>" using node
// names; node targets are a bare node name.
const (
	LinkDown  Kind = "link-down"
	LinkUp    Kind = "link-up"
	WeightSet Kind = "weight-set"
	NodeDown  Kind = "node-down"
	NodeUp    Kind = "node-up"
)

// valid reports whether k is a known event kind.
func (k Kind) valid() bool {
	switch k {
	case LinkDown, LinkUp, WeightSet, NodeDown, NodeUp:
		return true
	}
	return false
}

// isNode reports whether k targets a node rather than a link.
func (k Kind) isNode() bool { return k == NodeDown || k == NodeUp }

// Event is one timestamped topology change.
type Event struct {
	// T is the event time in seconds since replay start.
	T    float64 `json:"t"`
	Kind Kind    `json:"kind"`
	// Target is "<u>-<v>" (node names) for link events and weight-set,
	// or a bare node name for node events.
	Target string `json:"target"`
	// WH and WL carry the weight-set payload: the new per-direction OSPF
	// weight of the target link in the high and low topology. Zero means
	// "keep the configured weight in that topology".
	WH int `json:"wh,omitempty"`
	WL int `json:"wl,omitempty"`
}

// Timeline is an ordered event stream over a fixed horizon.
type Timeline struct {
	// Horizon is the replay duration in seconds; the steady state after
	// the last event is integrated up to it.
	Horizon float64
	Events  []Event
}

// sortEvents orders events by (time, kind, target, payload) so that
// timelines assembled from independent per-entity processes are
// deterministic regardless of assembly order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.WH != b.WH {
			return a.WH < b.WH
		}
		return a.WL < b.WL
	})
}

// LinkTarget renders the canonical link target string for the link whose
// ascending-direction arc is id.
func LinkTarget(g *graph.Graph, id graph.EdgeID) string {
	e := g.Edge(id)
	return g.Name(e.From) + "-" + g.Name(e.To)
}

// resolveTarget maps an event's target onto graph entities: the node for
// node events, the two directed arcs of the link otherwise. It is
// allocation-free so replay can resolve per event on the warm path.
func resolveTarget(g *graph.Graph, ev *Event) (node graph.NodeID, uv, vu graph.EdgeID, err error) {
	if ev.Kind.isNode() {
		n, ok := g.NodeByName(ev.Target)
		if !ok {
			return 0, 0, 0, fmt.Errorf("churn: %s target %q: unknown node", ev.Kind, ev.Target)
		}
		return n, 0, 0, nil
	}
	un, vn, ok := strings.Cut(ev.Target, "-")
	if !ok {
		return 0, 0, 0, fmt.Errorf("churn: %s target %q: want \"<u>-<v>\"", ev.Kind, ev.Target)
	}
	u, okU := g.NodeByName(un)
	v, okV := g.NodeByName(vn)
	if !okU || !okV {
		return 0, 0, 0, fmt.Errorf("churn: %s target %q: unknown node", ev.Kind, ev.Target)
	}
	uv, okU = g.ArcBetween(u, v)
	vu, okV = g.ArcBetween(v, u)
	if !okU || !okV {
		return 0, 0, 0, fmt.Errorf("churn: %s target %q: no such link", ev.Kind, ev.Target)
	}
	return 0, uv, vu, nil
}

// traceHeader is the leading line of a JSONL trace file.
type traceHeader struct {
	Trace struct {
		Horizon float64 `json:"horizon_s"`
		Events  int     `json:"events"`
	} `json:"churn_trace"`
}

// WriteTrace writes the timeline as JSONL: one churn_trace header line,
// then one event per line. ReadTrace round-trips the output exactly.
func (tl *Timeline) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr traceHeader
	hdr.Trace.Horizon = tl.Horizon
	hdr.Trace.Events = len(tl.Events)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&hdr); err != nil {
		return fmt.Errorf("churn: write trace header: %w", err)
	}
	for i := range tl.Events {
		if err := enc.Encode(&tl.Events[i]); err != nil {
			return fmt.Errorf("churn: write trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace. The churn_trace header is optional (bare
// event streams from other tools load too, with the horizon defaulting to
// the last event time); unknown fields and malformed lines fail loudly
// with the offending line number.
func ReadTrace(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	tl := &Timeline{}
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if line == 1 && bytes.Contains(raw, []byte(`"churn_trace"`)) {
			var hdr traceHeader
			if err := json.Unmarshal(raw, &hdr); err != nil {
				return nil, fmt.Errorf("churn: trace line 1: %w", err)
			}
			tl.Horizon = hdr.Trace.Horizon
			sawHeader = true
			continue
		}
		var ev Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("churn: trace line %d: %w", line, err)
		}
		if !ev.Kind.valid() {
			return nil, fmt.Errorf("churn: trace line %d: unknown kind %q", line, ev.Kind)
		}
		if ev.T < 0 {
			return nil, fmt.Errorf("churn: trace line %d: negative time %g", line, ev.T)
		}
		tl.Events = append(tl.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("churn: read trace: %w", err)
	}
	sortEvents(tl.Events)
	if !sawHeader && len(tl.Events) > 0 {
		tl.Horizon = tl.Events[len(tl.Events)-1].T
	}
	return tl, nil
}

// Validate resolves every event target against g and checks weight-set
// payload ranges, so trace errors surface before a replay starts.
func (tl *Timeline) Validate(g *graph.Graph) error {
	for i := range tl.Events {
		ev := &tl.Events[i]
		if !ev.Kind.valid() {
			return fmt.Errorf("churn: event %d: unknown kind %q", i, ev.Kind)
		}
		if _, _, _, err := resolveTarget(g, ev); err != nil {
			return fmt.Errorf("churn: event %d (t=%gs): %w", i, ev.T, err)
		}
		if ev.Kind == WeightSet {
			if ev.WH < 0 || ev.WL < 0 || (ev.WH == 0 && ev.WL == 0) {
				return fmt.Errorf("churn: event %d (t=%gs): weight-set needs wh or wl ≥ 1", i, ev.T)
			}
		}
	}
	return nil
}
