package churn

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// testEval builds a 4x5 torus instance (4-edge-connected: single link or
// node outages never disconnect it) with gravity LP and random HP demand.
func testEval(t testing.TB, kind eval.Kind, seed uint64) *eval.Evaluator {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	g, err := topo.Generate("torus", topo.Params{Rows: 4, Cols: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tl := traffic.Gravity(g.NumNodes(), rng)
	th, err := traffic.RandomHighPriority(g.NumNodes(), 0.1, 0.1, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := eval.New(g, th, tl, eval.Options{Kind: kind, SLA: cost.DefaultSLA()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// testWeights returns deterministic non-uniform weight settings.
func testWeights(g *graph.Graph, seed uint64) (wH, wL spf.Weights) {
	rng := rand.New(rand.NewPCG(seed, 5))
	wH = make(spf.Weights, g.NumEdges())
	wL = make(spf.Weights, g.NumEdges())
	for i := range wH {
		wH[i] = 1 + rng.IntN(20)
		wL[i] = 1 + rng.IntN(20)
	}
	return wH, wL
}

// testTimeline generates a busy deterministic timeline on g.
func testTimeline(t testing.TB, g *graph.Graph, seed uint64) *Timeline {
	t.Helper()
	tl, err := Generate(g, GenSpec{
		Seed:       seed,
		Horizon:    300,
		LinkMTBF:   120,
		LinkMTTR:   5,
		WeightRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) < 20 {
		t.Fatalf("timeline too quiet: %d events", len(tl.Events))
	}
	return tl
}

func TestGenerateDeterministic(t *testing.T) {
	e := testEval(t, eval.LoadBased, 1)
	spec := GenSpec{Seed: 42, Horizon: 200, LinkMTBF: 100, LinkMTTR: 8, NodeMTBF: 500, NodeMTTR: 30, WeightRate: 0.1}
	a, err := Generate(e.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(e.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different timelines")
	}
	spec.Seed = 43
	c, err := Generate(e.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical timelines")
	}
	// Intensity scales event counts up.
	spec.Seed = 42
	spec.Intensity = 3
	d, err := Generate(e.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) <= len(a.Events) {
		t.Fatalf("intensity 3 produced %d events, base %d", len(d.Events), len(a.Events))
	}
	for _, tl := range []*Timeline{a, c, d} {
		if err := tl.Validate(e.Graph()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	e := testEval(t, eval.LoadBased, 2)
	tl := testTimeline(t, e.Graph(), 7)
	var buf bytes.Buffer
	if err := tl.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl, got) {
		t.Fatalf("round trip mismatch: %d events -> %d, horizon %g -> %g",
			len(tl.Events), len(got.Events), tl.Horizon, got.Horizon)
	}
	// Headerless streams load with the horizon defaulting to the last event.
	var bare bytes.Buffer
	enc := json.NewEncoder(&bare)
	for i := range tl.Events {
		if err := enc.Encode(&tl.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err = ReadTrace(&bare)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl.Events, got.Events) {
		t.Fatal("headerless round trip mismatch")
	}
	if got.Horizon != tl.Events[len(tl.Events)-1].T {
		t.Fatalf("headerless horizon = %g", got.Horizon)
	}
	// Malformed input names the line.
	if _, err := ReadTrace(strings.NewReader("{\"t\":1,\"kind\":\"link-down\",\"target\":\"a-b\"}\n{\"t\":2,\"kind\":\"nope\",\"target\":\"x\"}\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad kind error = %v", err)
	}
}

// replaySeries replays tl and returns the record stream as JSON bytes with
// the wall-clock field zeroed — the determinism unit of comparison.
func replaySeries(t testing.TB, e *eval.Evaluator, wH, wL spf.Weights, tl *Timeline, opts Options) ([]byte, *Summary) {
	t.Helper()
	rep, err := NewReplayer(e, wH, wL, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	sum, err := rep.Run(tl, func(rec *Record) error {
		c := *rec
		c.RerouteNs = 0
		return enc.Encode(&c)
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum
}

func TestReplayDeterministicAcrossWorkersAndRuns(t *testing.T) {
	e := testEval(t, eval.SLABased, 3)
	wH, wL := testWeights(e.Graph(), 3)
	tl := testTimeline(t, e.Graph(), 11)
	var first []byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, _ := replaySeries(t, e, wH, wL, tl, Options{Verify: true, RouteWorkers: workers})
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(first, got) {
			t.Fatalf("time series differs at RouteWorkers=%d", workers)
		}
	}
	// And across an independent replayer over a regenerated timeline.
	tl2 := testTimeline(t, e.Graph(), 11)
	got, _ := replaySeries(t, e, wH, wL, tl2, Options{})
	if !bytes.Equal(first, got) {
		t.Fatal("re-generated timeline replay differs")
	}
}

// bridgeInstance builds two triangles joined by one bridge, with HP and LP
// demand crossing it, so downing the bridge disconnects both classes.
func bridgeInstance(t *testing.T, kind eval.Kind) (*eval.Evaluator, spf.Weights, spf.Weights) {
	t.Helper()
	g := graph.New(6)
	g.AddLink(0, 1, 500, 1)
	g.AddLink(1, 2, 500, 1)
	g.AddLink(2, 0, 500, 1)
	g.AddLink(3, 4, 500, 1)
	g.AddLink(4, 5, 500, 1)
	g.AddLink(5, 3, 500, 1)
	g.AddLink(2, 3, 500, 1)
	th := traffic.NewMatrix(6)
	th.Set(0, 4, 30) // crosses the bridge
	th.Set(1, 2, 10)
	tlm := traffic.NewMatrix(6)
	tlm.Set(5, 0, 80) // crosses the bridge
	tlm.Set(3, 5, 40)
	tlm.Set(0, 2, 60)
	e, err := eval.New(g, th, tlm, eval.Options{Kind: kind, SLA: cost.DefaultSLA()})
	if err != nil {
		t.Fatal(err)
	}
	w := spf.Uniform(g.NumEdges())
	return e, w, append(spf.Weights(nil), w...)
}

func TestDisconnectionWindowAndRecovery(t *testing.T) {
	e, wH, wL := bridgeInstance(t, eval.SLABased)
	tl := &Timeline{Horizon: 100, Events: []Event{
		{T: 10, Kind: WeightSet, Target: "n0-n1", WH: 3, WL: 2},
		{T: 20, Kind: LinkDown, Target: "n2-n3"}, // partition
		{T: 25, Kind: WeightSet, Target: "n3-n4", WH: 2},
		{T: 30, Kind: LinkUp, Target: "n2-n3"}, // heal
		{T: 40, Kind: NodeDown, Target: "n5"},
		{T: 50, Kind: NodeUp, Target: "n5"},
	}}
	rep, err := NewReplayer(e, wH, wL, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	sum, err := rep.Run(tl, func(r *Record) error {
		c := *r
		c.DisconnectedSample = append([]string(nil), r.DisconnectedSample...)
		recs = append(recs, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// recs[0] is the start record; events are 1-indexed from there.
	down := recs[2]
	if !down.Disconnected || down.DisconnectedPairs != 1 {
		t.Fatalf("bridge down record = %+v", down)
	}
	if len(down.DisconnectedSample) != 1 || down.DisconnectedSample[0] != "n0->n4" {
		t.Fatalf("disconnected sample = %v", down.DisconnectedSample)
	}
	if down.ViolationMass != 30 {
		t.Fatalf("disconnected mass = %v, want the 30 Mbps crossing pair", down.ViolationMass)
	}
	if mid := recs[3]; !mid.Disconnected {
		t.Fatalf("weight-set during the outage should stay disconnected: %+v", mid)
	}
	up := recs[4]
	if up.Disconnected || !up.FullRoute {
		t.Fatalf("heal record = %+v, want connected full-route recovery", up)
	}
	if up.PhiH == recs[1].PhiH {
		// The weight-set applied during the outage persists after the heal,
		// so the restored state must differ from the pre-outage one. (Verify
		// mode already proved it bitwise-matches a fresh full evaluation.)
		t.Fatalf("post-heal ΦH %v ignored the mid-outage weight-set", up.PhiH)
	}
	// Downing n5 strands its low-priority demand: a pure-LP disconnection,
	// reported with zero HP pairs and zero HP mass.
	if nd := recs[5]; !nd.Disconnected || nd.DisconnectedPairs != 0 || nd.ViolationMass != 0 {
		t.Fatalf("node-down record = %+v", nd)
	}
	if sum.Disconnects != 3 || sum.FullRoutes != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	// The outage window [20,30) charges the crossing 30 Mbps.
	if sum.ViolationMbpsSec < 30*10 {
		t.Fatalf("violation integral %v < outage charge 300", sum.ViolationMbpsSec)
	}
}

func TestCounterfactualMatchesCumulativeFirstEvent(t *testing.T) {
	e := testEval(t, eval.SLABased, 4)
	wH, wL := testWeights(e.Graph(), 4)
	tl := testTimeline(t, e.Graph(), 13)
	cf, err := NewReplayer(e, wH, wL, Options{Counterfactual: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Start(); err != nil {
		t.Fatal(err)
	}
	// Every counterfactual record must equal a fresh cumulative replay of
	// just that event.
	for i := range tl.Events {
		if i >= 12 {
			break
		}
		got, err := cf.Step(&tl.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		gotCopy := *got
		single, err := NewReplayer(e, wH, wL, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := single.Start(); err != nil {
			t.Fatal(err)
		}
		want, err := single.Step(&tl.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		if gotCopy.PhiH != want.PhiH || gotCopy.PhiL != want.PhiL ||
			gotCopy.Lambda != want.Lambda || gotCopy.MaxUtil != want.MaxUtil ||
			gotCopy.Disconnected != want.Disconnected {
			t.Fatalf("event %d: counterfactual %+v != fresh single-event %+v", i, gotCopy, *want)
		}
	}
}

// TestCounterfactualLeakDetector is the checkpoint/revert property test:
// after replaying a whole timeline counterfactually, every router tree,
// load vector, weight buffer and maintained cost vector must be bitwise
// identical to a freshly built replayer's.
func TestCounterfactualLeakDetector(t *testing.T) {
	e := testEval(t, eval.SLABased, 5)
	wH, wL := testWeights(e.Graph(), 5)
	tl := testTimeline(t, e.Graph(), 17)
	used, err := NewReplayer(e, wH, wL, Options{Counterfactual: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := used.Start(); err != nil {
		t.Fatal(err)
	}
	for i := range tl.Events {
		if _, err := used.Step(&tl.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := NewReplayer(e, wH, wL, Options{Counterfactual: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Start(); err != nil {
		t.Fatal(err)
	}
	compare := func(name string, a, b interface{}) {
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("replayed-with-revert %s differs from fresh build", name)
		}
	}
	compare("bufH", used.bufH, fresh.bufH)
	compare("bufL", used.bufL, fresh.bufL)
	compare("cfgH", used.cfgH, fresh.cfgH)
	compare("cfgL", used.cfgL, fresh.cfgL)
	compare("linkDown", used.linkDown, fresh.linkDown)
	compare("nodeDown", used.nodeDown, fresh.nodeDown)
	compare("hLoads", used.drH.Loads, fresh.drH.Loads)
	compare("lLoads", used.drL.Loads, fresh.drL.Loads)
	compare("router weights H", used.drH.Weights(), fresh.drH.Weights())
	compare("router weights L", used.drL.Weights(), fresh.drL.Weights())
	compare("linkPhiH", used.linkPhiH, fresh.linkPhiH)
	compare("linkPhiL", used.linkPhiL, fresh.linkPhiL)
	compare("linkDelay", used.linkDelay, fresh.linkDelay)
	compare("pairDelay", used.pairDelay, fresh.pairDelay)
	for _, dest := range used.hpDests {
		a, b := used.drH.Tree(dest), fresh.drH.Tree(dest)
		compare("tree dist", a.Dist, b.Dist)
		compare("tree next starts", a.NextStart, b.NextStart)
		compare("tree next arcs", a.NextArcs, b.NextArcs)
	}
}

func TestConvergenceStrictlyMoreMass(t *testing.T) {
	e := testEval(t, eval.SLABased, 6)
	wH, wL := testWeights(e.Graph(), 6)
	tl := testTimeline(t, e.Graph(), 19)
	_, instant := replaySeries(t, e, wH, wL, tl, Options{})
	series, conv := replaySeries(t, e, wH, wL, tl, Options{Convergence: ConvergenceOptions{Enabled: true}})
	if conv.TransientMbpsSec <= 0 {
		t.Fatalf("convergence mode measured no transient loss over %d events", conv.Events)
	}
	if conv.TotalMbpsSec <= instant.TotalMbpsSec {
		t.Fatalf("convergence total %v not strictly above instantaneous %v",
			conv.TotalMbpsSec, instant.TotalMbpsSec)
	}
	if instant.TransientMbpsSec != 0 {
		t.Fatalf("instantaneous mode scored a transient: %v", instant.TransientMbpsSec)
	}
	if conv.ViolationMbpsSec != instant.ViolationMbpsSec {
		t.Fatalf("steady integral changed under convergence mode: %v != %v",
			conv.ViolationMbpsSec, instant.ViolationMbpsSec)
	}
	if !bytes.Contains(series, []byte(`"transient"`)) {
		t.Fatal("convergence series lacks transient records")
	}
	if conv.MaxWindowMs <= 0 || conv.Blackholes+conv.MicroLoops == 0 {
		t.Fatalf("transient summary = %+v", conv)
	}
}

func TestStepErrorsAreActionable(t *testing.T) {
	e := testEval(t, eval.LoadBased, 8)
	wH, wL := testWeights(e.Graph(), 8)
	rep, err := NewReplayer(e, wH, wL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Step(&Event{T: 1, Kind: LinkDown, Target: "bogus-x"}); err == nil ||
		!strings.Contains(err.Error(), "event 0") || !strings.Contains(err.Error(), "bogus-x") {
		t.Fatalf("unknown target error = %v", err)
	}
	if _, err := rep.Step(&Event{T: 5, Kind: WeightSet, Target: "r0c0-r0c1"}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("payload error = %v", err)
	}
	if _, err := rep.Step(&Event{T: 3, Kind: LinkUp, Target: "r0c0-r0c1"}); err == nil {
		t.Fatal("unsorted timeline accepted")
	} else if !strings.Contains(err.Error(), "unsorted") {
		t.Fatalf("unsorted error = %v", err)
	}
	if rep2, _ := NewReplayer(e, wH, wL, Options{Counterfactual: true, Convergence: ConvergenceOptions{Enabled: true}}); rep2 != nil {
		t.Fatal("counterfactual+convergence accepted")
	}
}

func TestWarmReplayZeroAlloc(t *testing.T) {
	e := testEval(t, eval.SLABased, 9)
	wH, wL := testWeights(e.Graph(), 9)
	tl := testTimeline(t, e.Graph(), 23)
	for _, opt := range []Options{{}, {Convergence: ConvergenceOptions{Enabled: true}}} {
		rep, err := NewReplayer(e, wH, wL, opt)
		if err != nil {
			t.Fatal(err)
		}
		replay := func() error {
			if _, err := rep.Start(); err != nil {
				return err
			}
			for i := range tl.Events {
				rec, err := rep.Step(&tl.Events[i])
				if err != nil {
					return err
				}
				if rec.Disconnected {
					t.Fatal("timeline disconnects the torus; pick another seed")
				}
			}
			rep.Finish(tl.Horizon)
			return nil
		}
		if err := replay(); err != nil { // warm up
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(5, func() {
			if err := replay(); err != nil {
				panic(err)
			}
		}); n != 0 {
			t.Fatalf("warm replay (convergence=%v) allocates %v per run, want 0",
				opt.Convergence.Enabled, n)
		}
	}
}

func TestViolationMassIntegration(t *testing.T) {
	e, wH, wL := bridgeInstance(t, eval.SLABased)
	rep, err := NewReplayer(e, wH, wL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	start, err := rep.Start()
	if err != nil {
		t.Fatal(err)
	}
	base := start.ViolationMass
	sum := rep.Finish(50)
	if want := base * 50; sum.ViolationMbpsSec != want {
		t.Fatalf("empty-timeline integral = %v, want %v", sum.ViolationMbpsSec, want)
	}
}
