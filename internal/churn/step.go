package churn

import (
	"errors"
	"fmt"
	"time"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

// Step replays one event and returns its record (reused by the next call).
// Events must arrive in non-decreasing time order. Unknown targets and
// malformed payloads fail with the event index and time in the error; a
// disconnecting event is not an error — it yields a Disconnected record
// and the replay recovers when connectivity returns.
func (r *Replayer) Step(ev *Event) (*Record, error) {
	if !r.started {
		return nil, errors.New("churn: Step before Start")
	}
	idx := r.sum.Events
	if ev.T < r.lastT {
		return nil, fmt.Errorf("churn: event %d (%s %s) at t=%gs precedes t=%gs: timeline unsorted",
			idx, ev.Kind, ev.Target, ev.T, r.lastT)
	}
	// Hold the pre-event steady state over the gap since the last event.
	if !r.opts.Counterfactual {
		r.sum.ViolationMbpsSec += r.lastMass * (ev.T - r.lastT)
		r.lastT = ev.T
	}
	rec := &r.rec
	sample := rec.DisconnectedSample[:0]
	*rec = Record{Index: idx, T: ev.T, Kind: ev.Kind, Target: ev.Target, DisconnectedSample: sample}

	node, uv, vu, err := resolveTarget(r.g, ev)
	if err != nil {
		return nil, fmt.Errorf("churn: event %d (t=%gs): %w", idx, ev.T, err)
	}
	if ev.Kind == WeightSet {
		if ev.WH < 0 || ev.WH >= spf.Disabled || ev.WL < 0 || ev.WL >= spf.Disabled || (ev.WH == 0 && ev.WL == 0) {
			return nil, fmt.Errorf("churn: event %d (t=%gs): weight-set %s: payload wh=%d wl=%d out of range",
				idx, ev.T, ev.Target, ev.WH, ev.WL)
		}
	}
	if r.opts.Counterfactual {
		if err := r.drH.Checkpoint(); err != nil {
			return nil, fmt.Errorf("churn: event %d: %w", idx, err)
		}
		if err := r.drL.Checkpoint(); err != nil {
			return nil, fmt.Errorf("churn: event %d: %w", idx, err)
		}
		r.saveDesired(ev, node, uv, vu)
	}
	r.applyDesired(ev, node, uv, vu)

	// Route the new effective weights through both delta routers and
	// rescore whatever moved; the clock covers apply + rescore + delay
	// refresh — the data-plane cost of reacting to the event.
	t0 := time.Now()
	hadFull := !r.drH.Valid() || !r.drL.Valid()
	r.diffBuf = spf.DiffArcs(r.drH.Weights(), r.bufH, r.diffBuf[:0])
	movedH, errH := r.drH.Apply(r.bufH, r.diffBuf)
	r.diffBuf = spf.DiffArcs(r.drL.Weights(), r.bufL, r.diffBuf[:0])
	movedL, errL := r.drL.Apply(r.bufL, r.diffBuf)
	if errH != nil && !errors.Is(errH, spf.ErrNoPath) {
		return nil, fmt.Errorf("churn: event %d (%s %s, t=%gs): high topology: %w", idx, ev.Kind, ev.Target, ev.T, errH)
	}
	if errL != nil && !errors.Is(errL, spf.ErrNoPath) {
		return nil, fmt.Errorf("churn: event %d (%s %s, t=%gs): low topology: %w", idx, ev.Kind, ev.Target, ev.T, errL)
	}
	ok := errH == nil && errL == nil
	rec.MovedArcs = len(movedH) + len(movedL)
	rec.FullRoute = hadFull
	if ok {
		r.rescore(movedH)
		r.rescore(movedL)
		r.refreshDelays(movedH)
		r.scoreSteady(rec)
	} else {
		// Keep whichever router survived maintained through the outage
		// window (its arcs sharing a window with the broken router get
		// garbage values from the latter's loads, but the broken router's
		// recovery is a full route that rescores every arc). Steady
		// metrics are meaningless here; charge the unreachable demand.
		rec.Disconnected = true
		if errH == nil {
			r.rescore(movedH)
			r.refreshDelays(movedH)
		}
		if errL == nil {
			r.rescore(movedL)
		}
		rec.ViolationMass = r.disconnectedMass(rec)
	}
	rec.RerouteNs = time.Since(t0).Nanoseconds()
	met.rerouteNs.Observe(float64(rec.RerouteNs))
	kindCounter(ev.Kind).Inc()

	if r.conv != nil {
		r.scoreTransient(rec, ev, node, uv, vu, ok, hadFull)
	}
	if r.opts.Verify {
		if err := r.verifyEvent(idx, ev, rec, ok); err != nil {
			return nil, err
		}
	}

	if r.opts.Counterfactual {
		r.drH.Revert()
		r.drL.Revert()
		r.restoreDesired(ev, node, uv, vu)
		// The rolled-back loads are the base loads again; re-scoring the
		// same moved arcs restores every vector bitwise. A router that
		// errored mid-apply reverts with an empty moved set and was never
		// rescored, so there is nothing to restore on its side.
		if errH == nil {
			r.rescore(movedH)
		}
		if errL == nil {
			r.rescore(movedL)
		}
		if errH == nil {
			r.restoreDelays()
		}
	} else {
		r.lastMass = rec.ViolationMass
	}

	r.sum.Events++
	if rec.Disconnected {
		r.sum.Disconnects++
		met.disconnects.Inc()
	}
	if rec.FullRoute {
		r.sum.FullRoutes++
	}
	if ev.Kind == WeightSet {
		r.sum.WeightChanges++
	}
	if !rec.Disconnected && rec.MaxUtil > r.sum.PeakUtil {
		r.sum.PeakUtil = rec.MaxUtil
	}
	return rec, nil
}

// applyDesired mutates the desired-state model (down flags, configured
// weights) and recomputes the effective weights of the event's arcs. The
// effective weight of an arc is Disabled iff its link is down or either
// endpoint node is down — so overlapping link and node outages compose
// and unwind in any order.
func (r *Replayer) applyDesired(ev *Event, node graph.NodeID, uv, vu graph.EdgeID) {
	r.evArcs = r.evArcs[:0]
	switch ev.Kind {
	case LinkDown, LinkUp:
		down := ev.Kind == LinkDown
		if r.linkDown[uv] != down {
			if down {
				r.downLinks++
			} else {
				r.downLinks--
			}
		}
		r.linkDown[uv], r.linkDown[vu] = down, down
		r.evArcs = append(r.evArcs, uv, vu)
	case NodeDown, NodeUp:
		down := ev.Kind == NodeDown
		if r.nodeDown[node] != down {
			if down {
				r.downNodes++
			} else {
				r.downNodes--
			}
		}
		r.nodeDown[node] = down
		r.evArcs = append(r.evArcs, r.g.Out(node)...)
		r.evArcs = append(r.evArcs, r.g.In(node)...)
	case WeightSet:
		if ev.WH > 0 {
			r.cfgH[uv], r.cfgH[vu] = ev.WH, ev.WH
		}
		if ev.WL > 0 {
			r.cfgL[uv], r.cfgL[vu] = ev.WL, ev.WL
		}
		r.evArcs = append(r.evArcs, uv, vu)
	}
	for _, a := range r.evArcs {
		e := r.g.Edge(a)
		if r.linkDown[a] || r.nodeDown[e.From] || r.nodeDown[e.To] {
			r.bufH[a], r.bufL[a] = spf.Disabled, spf.Disabled
		} else {
			r.bufH[a], r.bufL[a] = r.cfgH[a], r.cfgL[a]
		}
	}
}

// saveDesired snapshots the desired state the event is about to touch so
// restoreDesired can unwind a counterfactual exactly.
func (r *Replayer) saveDesired(ev *Event, node graph.NodeID, uv, vu graph.EdgeID) {
	r.savedH = r.savedH[:0]
	r.savedL = r.savedL[:0]
	switch ev.Kind {
	case LinkDown, LinkUp:
		r.cfLinkDown = r.linkDown[uv]
	case NodeDown, NodeUp:
		r.cfNodeDown = r.nodeDown[node]
	case WeightSet:
		r.savedH = append(r.savedH, r.cfgH[uv], r.cfgH[vu])
		r.savedL = append(r.savedL, r.cfgL[uv], r.cfgL[vu])
	}
	r.cfDownLinks, r.cfDownNodes = r.downLinks, r.downNodes
}

// restoreDesired unwinds applyDesired after a counterfactual event.
func (r *Replayer) restoreDesired(ev *Event, node graph.NodeID, uv, vu graph.EdgeID) {
	switch ev.Kind {
	case LinkDown, LinkUp:
		r.linkDown[uv], r.linkDown[vu] = r.cfLinkDown, r.cfLinkDown
	case NodeDown, NodeUp:
		r.nodeDown[node] = r.cfNodeDown
	case WeightSet:
		r.cfgH[uv], r.cfgH[vu] = r.savedH[0], r.savedH[1]
		r.cfgL[uv], r.cfgL[vu] = r.savedL[0], r.savedL[1]
	}
	r.downLinks, r.downNodes = r.cfDownLinks, r.cfDownNodes
	for _, a := range r.evArcs {
		e := r.g.Edge(a)
		if r.linkDown[a] || r.nodeDown[e.From] || r.nodeDown[e.To] {
			r.bufH[a], r.bufL[a] = spf.Disabled, spf.Disabled
		} else {
			r.bufH[a], r.bufL[a] = r.cfgH[a], r.cfgL[a]
		}
	}
}

// restoreDelays recomputes the pair delays of the destinations Step
// refreshed, after a counterfactual revert put loads and delays back.
func (r *Replayer) restoreDelays() {
	for di, dest := range r.hpDests {
		if !r.dirtyDest[di] {
			continue
		}
		xi := r.drH.DelaysTo(dest, r.linkDelay)
		for si, src := range r.hpSrcs[di] {
			r.pairDelay[di][si] = xi[src]
		}
	}
}

// disconnectedMass scans connectivity of every high-priority pair over the
// arcs still enabled in the high topology (reverse BFS per destination),
// filling the record's disconnection fields and returning the unreachable
// high-priority demand — the violation mass charged while the network is
// partitioned. Pure low-priority disconnections (the record is still
// marked Disconnected) can legitimately report zero pairs.
func (r *Replayer) disconnectedMass(rec *Record) float64 {
	mass := 0.0
	for di, dest := range r.hpDests {
		for i := range r.reach {
			r.reach[i] = false
		}
		q := append(r.queue[:0], dest)
		r.reach[dest] = true
		for head := 0; head < len(q); head++ {
			u := q[head]
			for _, a := range r.g.In(u) {
				if r.bufH[a] == spf.Disabled {
					continue
				}
				if f := r.g.Edge(a).From; !r.reach[f] {
					r.reach[f] = true
					q = append(q, f)
				}
			}
		}
		r.queue = q[:0]
		for si, src := range r.hpSrcs[di] {
			if r.reach[src] {
				continue
			}
			rec.DisconnectedPairs++
			mass += r.hpDem[di][si]
			if len(rec.DisconnectedSample) < maxDisconnectedSample {
				rec.DisconnectedSample = append(rec.DisconnectedSample,
					r.g.Name(src)+"->"+r.g.Name(dest))
			}
		}
	}
	return mass
}

// verifyEvent asserts the delta outcome of one event — objectives and the
// disconnection verdict — against a from-scratch evaluation of the
// current effective weights.
func (r *Replayer) verifyEvent(idx int, ev *Event, rec *Record, ok bool) error {
	full, err := r.fullEv.EvaluateDTR(r.bufH, r.bufL)
	if err != nil {
		if !ok {
			return nil // both sides agree: disconnected
		}
		return fmt.Errorf("churn: verify event %d (%s %s): delta survived, full evaluation failed: %v",
			idx, ev.Kind, ev.Target, err)
	}
	if !ok {
		return fmt.Errorf("churn: verify event %d (%s %s): delta disconnected, full evaluation survived (ΦH %v)",
			idx, ev.Kind, ev.Target, full.PhiH)
	}
	if full.PhiH != rec.PhiH || full.PhiL != rec.PhiL {
		return fmt.Errorf("churn: verify event %d (%s %s): delta Φ (%v, %v) != full (%v, %v)",
			idx, ev.Kind, ev.Target, rec.PhiH, rec.PhiL, full.PhiH, full.PhiL)
	}
	if mu := full.MaxUtilization(r.g); mu != rec.MaxUtil {
		return fmt.Errorf("churn: verify event %d (%s %s): delta max-util %v != full %v",
			idx, ev.Kind, ev.Target, rec.MaxUtil, mu)
	}
	if r.kind == eval.SLABased {
		if full.Lambda != rec.Lambda || full.Violations != rec.Violations || full.ViolationMass != rec.ViolationMass {
			return fmt.Errorf("churn: verify event %d (%s %s): delta SLA (Λ=%v, v=%d, mass=%v) != full (Λ=%v, v=%d, mass=%v)",
				idx, ev.Kind, ev.Target, rec.Lambda, rec.Violations, rec.ViolationMass,
				full.Lambda, full.Violations, full.ViolationMass)
		}
	}
	return nil
}

// Run replays the whole timeline: Start, every event through Step (each
// record passed to emit, which may be nil), then Finish. emit errors abort
// the replay.
func (r *Replayer) Run(tl *Timeline, emit func(*Record) error) (*Summary, error) {
	rec, err := r.Start()
	if err != nil {
		return nil, err
	}
	if emit != nil {
		if err := emit(rec); err != nil {
			return nil, err
		}
	}
	for i := range tl.Events {
		rec, err := r.Step(&tl.Events[i])
		if err != nil {
			return nil, err
		}
		if emit != nil {
			if err := emit(rec); err != nil {
				return nil, err
			}
		}
	}
	s := r.Finish(tl.Horizon)
	return &s, nil
}

// Finish closes the integration window at horizon (the steady state after
// the last event is held until then) and returns a copy of the summary —
// by value, so a warm Start/Step/Finish replay cycle stays allocation-free.
// The replayer remains usable: further Steps extend the series, or Start
// begins a fresh replay.
func (r *Replayer) Finish(horizon float64) Summary {
	if !r.opts.Counterfactual && horizon > r.lastT {
		r.sum.ViolationMbpsSec += r.lastMass * (horizon - r.lastT)
		r.lastT = horizon
	}
	r.sum.TotalMbpsSec = r.sum.ViolationMbpsSec + r.sum.TransientMbpsSec
	return r.sum
}
