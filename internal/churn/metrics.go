package churn

import "dualtopo/internal/obs"

// Package-level telemetry for churn replay, registered in the default obs
// registry. Handles are resolved once here so the per-event hot path is a
// couple of atomic ops and keeps its AllocsPerRun == 0 pin.
var met = struct {
	evLinkDown   *obs.Counter
	evLinkUp     *obs.Counter
	evWeightSet  *obs.Counter
	evNodeDown   *obs.Counter
	evNodeUp     *obs.Counter
	disconnects  *obs.Counter
	rerouteNs    *obs.Histogram // wall-ns from event apply to rescored objectives
	transientMbs *obs.Counter   // convergence-mode transient loss, integer Mbps·ms
}{
	evLinkDown:   obs.Default().CounterVec("churn_events_total", "Replayed churn events by kind.", "kind").With(string(LinkDown)),
	evLinkUp:     obs.Default().CounterVec("churn_events_total", "Replayed churn events by kind.", "kind").With(string(LinkUp)),
	evWeightSet:  obs.Default().CounterVec("churn_events_total", "Replayed churn events by kind.", "kind").With(string(WeightSet)),
	evNodeDown:   obs.Default().CounterVec("churn_events_total", "Replayed churn events by kind.", "kind").With(string(NodeDown)),
	evNodeUp:     obs.Default().CounterVec("churn_events_total", "Replayed churn events by kind.", "kind").With(string(NodeUp)),
	disconnects:  obs.Default().Counter("churn_disconnected_events_total", "Replayed events that left some demand unreachable."),
	rerouteNs:    obs.Default().Histogram("churn_event_reroute_ns", "Per-event reroute latency: delta apply plus objective rescore, wall nanoseconds.", obs.ExpBuckets(1000, 4, 16)),
	transientMbs: obs.Default().Counter("churn_transient_mbps_ms_total", "Convergence-mode traffic forwarded into stale blackholes/loops, integrated Mbps·ms."),
}

// kindCounter maps an event kind to its pre-resolved counter.
func kindCounter(k Kind) *obs.Counter {
	switch k {
	case LinkDown:
		return met.evLinkDown
	case LinkUp:
		return met.evLinkUp
	case WeightSet:
		return met.evWeightSet
	case NodeDown:
		return met.evNodeDown
	default:
		return met.evNodeUp
	}
}
