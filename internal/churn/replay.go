package churn

import (
	"errors"
	"fmt"
	"math"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/traffic"
)

// Options configures a Replayer.
type Options struct {
	// Counterfactual scores every event against the intact baseline
	// instead of accumulating state: checkpoint → apply → score → revert,
	// answering "what would this event do to today's network" per event.
	// Incompatible with convergence mode (which needs the cumulative
	// trajectory) and skips the time-integrated summary masses.
	Counterfactual bool
	// Verify re-evaluates every event's routing from scratch and fails
	// the replay on any bitwise disagreement with the delta path,
	// including disagreement about disconnection. Debug mode.
	Verify bool
	// RouteWorkers bounds the SPF worker pool of the Verify evaluator;
	// 0 picks an automatic value. Parallel routing is bitwise-identical
	// to sequential, so replay output never depends on this setting.
	RouteWorkers int
	// Convergence enables OSPF-convergence emulation: each event is also
	// scored through per-router stale-tree windows (see ConvergenceOptions).
	Convergence ConvergenceOptions
}

// Record is the time-series entry emitted for one replayed event. The
// struct is reused by the Replayer's next Step; callers that retain
// records must copy them.
type Record struct {
	// Index is the event's position in the timeline (-1 for the initial
	// steady state emitted by Start).
	Index  int     `json:"i"`
	T      float64 `json:"t"`
	Kind   Kind    `json:"kind"`
	Target string  `json:"target,omitempty"`

	// Disconnected marks events after which some demand had no path; the
	// objective fields below are omitted (their value is meaningless)
	// until a later event restores connectivity.
	Disconnected bool `json:"disconnected,omitempty"`
	// DisconnectedPairs counts high-priority pairs with no path;
	// DisconnectedSample labels up to 8 of them as "src->dst".
	DisconnectedPairs  int      `json:"disconnected_pairs,omitempty"`
	DisconnectedSample []string `json:"disconnected_sample,omitempty"`

	PhiH    float64 `json:"phi_h"`
	PhiL    float64 `json:"phi_l"`
	MaxUtil float64 `json:"max_util"`
	// Lambda/Violations mirror the SLA objective (Eq. 4) for SLA-based
	// instances; ViolationMass is the high-priority demand (Mbps) outside
	// its delay bound — disconnected demand counts in full.
	Lambda        float64 `json:"lambda,omitempty"`
	Violations    int     `json:"violations,omitempty"`
	ViolationMass float64 `json:"violation_mass_mbps"`

	// MovedArcs is the size of the delta apply's moved set (both
	// topologies); FullRoute marks the recovery full re-route after a
	// disconnection window. RerouteNs is wall time for apply + rescore —
	// the only nondeterministic field, excluded from determinism checks.
	MovedArcs int   `json:"moved_arcs"`
	FullRoute bool  `json:"full_route,omitempty"`
	RerouteNs int64 `json:"reroute_ns"`

	// Transient carries convergence-mode scoring; nil otherwise.
	Transient *Transient `json:"transient,omitempty"`
}

// Transient scores one event's OSPF convergence window against the
// instantaneous-convergence ideal.
type Transient struct {
	// WindowMs is the time until the last reachable router converged
	// (flood hops × FloodHopMs + SpfMs).
	WindowMs float64 `json:"window_ms"`
	// LostMbpsSec integrates high-priority demand forwarded into
	// micro-loops or blackholes while routers held stale trees (Mbps·s).
	LostMbpsSec float64 `json:"lost_mbps_sec"`
	// MicroLoops and Blackholes count (pair × interval) walk outcomes;
	// AffectedPairs counts distinct pairs that lost any traffic.
	MicroLoops    int `json:"micro_loops,omitempty"`
	Blackholes    int `json:"blackholes,omitempty"`
	AffectedPairs int `json:"affected_pairs,omitempty"`
}

// Summary aggregates a finished (or interrupted) replay.
type Summary struct {
	Events        int `json:"events"`
	Disconnects   int `json:"disconnected_events"`
	FullRoutes    int `json:"full_routes"`
	WeightChanges int `json:"weight_changes"`
	// ViolationMbpsSec integrates the steady-state SLA-violation mass
	// over the timeline (each event's mass held until the next event,
	// the final state until the horizon). Disconnected windows charge the
	// unreachable high-priority demand.
	ViolationMbpsSec float64 `json:"violation_mbps_sec"`
	// TransientMbpsSec sums convergence-mode stale-tree losses; zero in
	// instantaneous mode, so Total strictly exceeds the instantaneous
	// total whenever stale trees actually lost traffic.
	TransientMbpsSec float64 `json:"transient_mbps_sec"`
	TotalMbpsSec     float64 `json:"total_mbps_sec"`
	MicroLoops       int     `json:"micro_loops,omitempty"`
	Blackholes       int     `json:"blackholes,omitempty"`
	MaxWindowMs      float64 `json:"max_window_ms,omitempty"`
	PeakUtil         float64 `json:"peak_util"`
	// Partial marks a replay cut short (context cancellation): the
	// masses integrate only the events actually replayed.
	Partial bool `json:"partial,omitempty"`
}

// Replayer drives a Timeline through pooled DeltaRouters: per event it
// applies the topology change incrementally, re-reduces the paper's
// objectives over the moved arcs (bitwise-equal to a from-scratch
// evaluation), refreshes only the pair delays whose trees moved, and
// emits a Record. The warm path — events that neither disconnect nor
// recover — is allocation-free.
//
// A Replayer is not safe for concurrent use.
type Replayer struct {
	g      *graph.Graph
	th     *traffic.Matrix
	kind   eval.Kind
	sla    cost.SLA
	exact  bool
	opts   Options
	fullEv *eval.Evaluator // pooled clone backing -verify

	drH, drL *spf.DeltaRouter
	// baseH/baseL pin the intact configuration; cfgH/cfgL track the
	// configured weights as weight-set events land; bufH/bufL are the
	// effective weights actually routed (cfg masked to Disabled wherever
	// the link or either endpoint is down).
	baseH, baseL spf.Weights
	cfgH, cfgL   spf.Weights
	bufH, bufL   spf.Weights
	linkDown     []bool
	nodeDown     []bool
	downLinks    int
	downNodes    int

	capacity  []float64
	propDelay []float64
	linkPhiH  []float64
	residual  []float64
	linkPhiL  []float64
	linkDelay []float64

	// High-priority demand grouped by destination, in the evaluator's
	// canonical (dest, src) order so mass/penalty reductions are bitwise
	// equal to eval's.
	hpDests   []graph.NodeID
	hpSrcs    [][]graph.NodeID
	hpDem     [][]float64
	pairDelay [][]float64
	dirtyDest []bool // scratch: dests whose delays were refreshed this Step

	// Event-apply scratch (all reused).
	evArcs  []graph.EdgeID // arcs toggled by the current event
	savedH  []int          // counterfactual pre-images of cfgH on the event's arcs
	savedL  []int
	diffBuf []graph.EdgeID
	// Counterfactual pre-images of the desired-state flags.
	cfLinkDown  bool
	cfNodeDown  bool
	cfDownLinks int
	cfDownNodes int

	// Disconnection scan scratch.
	reach []bool
	queue []graph.NodeID

	conv *convState

	rec      Record
	lastT    float64
	lastMass float64
	started  bool
	sum      Summary
}

// maxDisconnectedSample bounds the pair labels attached to a disconnected
// record.
const maxDisconnectedSample = 8

// NewReplayer builds a replayer over e's problem instance, pinned to the
// DTR weight setting (wH, wL). The evaluator is only used for instance
// data (and cloned for -verify); its own plans are never disturbed.
func NewReplayer(e *eval.Evaluator, wH, wL spf.Weights, opts Options) (*Replayer, error) {
	if opts.Counterfactual && opts.Convergence.Enabled {
		return nil, errors.New("churn: counterfactual replay cannot score convergence transients (needs the cumulative trajectory)")
	}
	g := e.Graph()
	th, tl := e.Matrices()
	if err := wH.Validate(g); err != nil {
		return nil, fmt.Errorf("churn: high-topology weights: %w", err)
	}
	if err := wL.Validate(g); err != nil {
		return nil, fmt.Errorf("churn: low-topology weights: %w", err)
	}
	m := g.NumEdges()
	n := g.NumNodes()
	csr := g.CSR()
	r := &Replayer{
		g:         g,
		th:        th,
		kind:      e.Options().Kind,
		sla:       e.Options().SLA,
		exact:     e.Options().ExactDelay,
		opts:      opts,
		drH:       spf.NewDeltaRouter(g, th),
		drL:       spf.NewDeltaRouter(g, tl),
		baseH:     append(spf.Weights(nil), wH...),
		baseL:     append(spf.Weights(nil), wL...),
		cfgH:      make(spf.Weights, m),
		cfgL:      make(spf.Weights, m),
		bufH:      make(spf.Weights, m),
		bufL:      make(spf.Weights, m),
		linkDown:  make([]bool, m),
		nodeDown:  make([]bool, n),
		capacity:  csr.Capacity,
		propDelay: make([]float64, m),
		linkPhiH:  make([]float64, m),
		residual:  make([]float64, m),
		linkPhiL:  make([]float64, m),
		linkDelay: make([]float64, m),
		evArcs:    make([]graph.EdgeID, 0, 16),
		savedH:    make([]int, 0, 16),
		savedL:    make([]int, 0, 16),
		reach:     make([]bool, n),
		queue:     make([]graph.NodeID, 0, n),
	}
	if r.kind != eval.SLABased {
		// Load-based instances still track SLA-violation mass for the
		// time series; score it with the paper's default SLA.
		r.sla = cost.DefaultSLA()
	}
	for i := 0; i < m; i++ {
		r.propDelay[i] = g.Edge(graph.EdgeID(i)).Delay
	}
	// Group the evaluator's canonical pair order by destination.
	pairs := e.HighPriorityPairs()
	for i := 0; i < len(pairs); {
		dest := pairs[i].Dst
		j := i
		for j < len(pairs) && pairs[j].Dst == dest {
			j++
		}
		srcs := make([]graph.NodeID, 0, j-i)
		dem := make([]float64, 0, j-i)
		for _, p := range pairs[i:j] {
			srcs = append(srcs, p.Src)
			dem = append(dem, th.At(p.Src, dest))
		}
		r.hpDests = append(r.hpDests, dest)
		r.hpSrcs = append(r.hpSrcs, srcs)
		r.hpDem = append(r.hpDem, dem)
		r.pairDelay = append(r.pairDelay, make([]float64, len(srcs)))
		i = j
	}
	r.dirtyDest = make([]bool, len(r.hpDests))
	if opts.Verify {
		r.fullEv = e.Clone()
		if opts.RouteWorkers != 1 {
			r.fullEv.SetRouteWorkers(opts.RouteWorkers)
		}
	}
	if opts.Convergence.Enabled {
		r.conv = newConvState(r)
	}
	return r, nil
}

// Start (re)initializes the replay at t=0 with the intact configuration
// routed and scored, returning the initial steady-state record (Index -1).
// The record is reused by the next Step.
func (r *Replayer) Start() (*Record, error) {
	copy(r.cfgH, r.baseH)
	copy(r.cfgL, r.baseL)
	copy(r.bufH, r.baseH)
	copy(r.bufL, r.baseL)
	for i := range r.linkDown {
		r.linkDown[i] = false
	}
	for i := range r.nodeDown {
		r.nodeDown[i] = false
	}
	r.downLinks, r.downNodes = 0, 0
	if err := r.moveRouter(r.drH, r.bufH); err != nil {
		return nil, fmt.Errorf("churn: intact high topology does not route: %w", err)
	}
	if err := r.moveRouter(r.drL, r.bufL); err != nil {
		return nil, fmt.Errorf("churn: intact low topology does not route: %w", err)
	}
	r.rescoreAll()
	r.refreshAllDelays()
	if r.conv != nil {
		r.conv.snapshotAll(r)
	}
	r.sum = Summary{}
	r.lastT = 0
	r.rec = Record{Index: -1, Kind: "start"}
	r.scoreSteady(&r.rec)
	r.lastMass = r.rec.ViolationMass
	if r.rec.MaxUtil > r.sum.PeakUtil {
		r.sum.PeakUtil = r.rec.MaxUtil
	}
	r.started = true
	return &r.rec, nil
}

// moveRouter transitions one router to w with an exact diff, mirroring the
// resilience sweep idiom.
func (r *Replayer) moveRouter(dr *spf.DeltaRouter, w spf.Weights) error {
	r.diffBuf = spf.DiffArcs(dr.Weights(), w, r.diffBuf[:0])
	_, err := dr.Apply(w, r.diffBuf)
	return err
}

// rescore recomputes the per-arc cost vectors of the listed arcs from the
// current loads — the same per-arc expressions eval's full path uses.
func (r *Replayer) rescore(arcs []graph.EdgeID) {
	h, l := r.drH.Loads[0], r.drL.Loads[0]
	for _, a := range arcs {
		r.linkPhiH[a] = cost.Phi(h[a], r.capacity[a])
		r.residual[a] = cost.Residual(r.capacity[a], h[a])
		r.linkPhiL[a] = cost.Phi(l[a], r.residual[a])
		r.linkDelay[a] = r.linkDelayAt(int(a), h[a], r.linkPhiH[a])
	}
}

// rescoreAll recomputes every arc — the recovery path after a full route.
func (r *Replayer) rescoreAll() {
	h, l := r.drH.Loads[0], r.drL.Loads[0]
	for a := range r.linkPhiH {
		r.linkPhiH[a] = cost.Phi(h[a], r.capacity[a])
		r.residual[a] = cost.Residual(r.capacity[a], h[a])
		r.linkPhiL[a] = cost.Phi(l[a], r.residual[a])
		r.linkDelay[a] = r.linkDelayAt(a, h[a], r.linkPhiH[a])
	}
}

// linkDelayAt mirrors eval.Evaluator.linkDelayAt (Eq. 3 with the same
// exact-delay fallback), so SLA metrics stay bitwise-comparable.
func (r *Replayer) linkDelayAt(i int, hLoad, linkPhiH float64) float64 {
	if r.exact {
		d := r.sla.LinkDelayExact(hLoad, r.capacity[i], r.propDelay[i])
		if !math.IsInf(d, 1) {
			return d
		}
	}
	return r.sla.LinkDelayApprox(linkPhiH, r.capacity[i], r.propDelay[i])
}

// refreshDelays recomputes pair delays for destinations whose high-
// topology trees moved (dirty tree, or a moved arc on the stored DAG) —
// the eval delta path's refresh rule. dirtyDest marks what was refreshed.
func (r *Replayer) refreshDelays(moved []graph.EdgeID) {
	for di, dest := range r.hpDests {
		dirty := r.drH.TreeDirty(dest)
		if !dirty {
			for _, a := range moved {
				if r.drH.TreeUsesArc(dest, a) {
					dirty = true
					break
				}
			}
		}
		r.dirtyDest[di] = dirty
		if !dirty {
			continue
		}
		xi := r.drH.DelaysTo(dest, r.linkDelay)
		for si, src := range r.hpSrcs[di] {
			r.pairDelay[di][si] = xi[src]
		}
	}
}

// refreshAllDelays recomputes every destination's pair delays.
func (r *Replayer) refreshAllDelays() {
	for di, dest := range r.hpDests {
		r.dirtyDest[di] = true
		xi := r.drH.DelaysTo(dest, r.linkDelay)
		for si, src := range r.hpSrcs[di] {
			r.pairDelay[di][si] = xi[src]
		}
	}
}

// scoreSteady fills rec's objective fields from the maintained vectors,
// re-reducing in ascending-arc and canonical-pair order so every number is
// bitwise-equal to a from-scratch evaluation.
func (r *Replayer) scoreSteady(rec *Record) {
	phiH, phiL := 0.0, 0.0
	for a := range r.linkPhiH {
		phiH += r.linkPhiH[a]
		phiL += r.linkPhiL[a]
	}
	rec.PhiH, rec.PhiL = phiH, phiL
	h, l := r.drH.Loads[0], r.drL.Loads[0]
	maxU := 0.0
	for a := range h {
		if u := (h[a] + l[a]) / r.capacity[a]; u > maxU {
			maxU = u
		}
	}
	rec.MaxUtil = maxU
	lambda, mass := 0.0, 0.0
	violations := 0
	for di := range r.hpDests {
		dem := r.hpDem[di]
		for si, d := range r.pairDelay[di] {
			if pen := r.sla.PairPenalty(d); pen > 0 {
				lambda += pen
				violations++
				mass += dem[si]
			}
		}
	}
	rec.Lambda, rec.Violations, rec.ViolationMass = lambda, violations, mass
	if r.kind != eval.SLABased {
		rec.Lambda, rec.Violations = 0, 0
	}
}
