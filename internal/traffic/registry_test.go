package traffic

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
)

func testTopology(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topo.Random(20, 50, 500, rand.New(rand.NewPCG(77, 77)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestModelRegistryHasAllModels(t *testing.T) {
	want := []string{"gravity", "hotspot", "random", "sink-local", "sink-uniform", "uniform"}
	got := Models()
	for _, m := range want {
		found := false
		for _, g := range got {
			if g == m {
				found = true
			}
		}
		if !found {
			t.Errorf("model %q not registered (have %v)", m, got)
		}
	}
	if list := ModelList(); !strings.Contains(list, "hotspot") || !strings.Contains(list, "|") {
		t.Errorf("ModelList() = %q", list)
	}
}

// TestEveryModelHoldsFraction pins the defining invariant of all HP models:
// total volume satisfies f = etaH / (etaH + etaL) for the resolved f.
func TestEveryModelHoldsFraction(t *testing.T) {
	g := testTopology(t)
	const etaL = 1234.5
	for _, name := range Models() {
		m, err := GenerateHighPriority(name, g, etaL, Params{F: 0.25}, rand.New(rand.NewPCG(5, 5)))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		etaH := m.Total()
		if got := etaH / (etaH + etaL); math.Abs(got-0.25) > 1e-9 {
			t.Errorf("%s: fraction = %g, want 0.25", name, got)
		}
	}
}

func TestEveryModelDeterministic(t *testing.T) {
	g := testTopology(t)
	for _, name := range Models() {
		a, err := GenerateHighPriority(name, g, 1000, Params{}, rand.New(rand.NewPCG(9, 9)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := GenerateHighPriority(name, g, 1000, Params{}, rand.New(rand.NewPCG(9, 9)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for s := 0; s < g.NumNodes(); s++ {
			for d := 0; d < g.NumNodes(); d++ {
				if a.At(graph.NodeID(s), graph.NodeID(d)) != b.At(graph.NodeID(s), graph.NodeID(d)) {
					t.Fatalf("%s: same seed, different demand at (%d,%d)", name, s, d)
				}
			}
		}
	}
}

func TestResolveModelUnknownListsRegistry(t *testing.T) {
	_, _, err := ResolveModel("flood", Params{})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, m := range []string{"random", "hotspot", "gravity", "uniform", "sink-local"} {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("error %q does not enumerate model %q", err, m)
		}
	}
}

func TestModelValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		model string
		p     Params
	}{
		{"f too high", "random", Params{F: 1.2}},
		{"k too high", "uniform", Params{K: 2}},
		{"negative sinks", "sink-uniform", Params{Sinks: -1}},
		{"hotspot fraction high", "hotspot", Params{HotspotFraction: 1.5}},
		{"hotspot boost low", "hotspot", Params{HotspotBoost: 0.5}},
	}
	for _, tc := range cases {
		if _, _, err := ResolveModel(tc.model, tc.p); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestUniformModelEqualVolumes(t *testing.T) {
	g := testTopology(t)
	m, err := GenerateHighPriority("uniform", g, 1000, Params{}, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	var first float64
	for _, d := range m.Demands() {
		if first == 0 {
			first = d.Volume
		}
		if math.Abs(d.Volume-first) > 1e-12 {
			t.Fatalf("uniform model volumes differ: %g vs %g", d.Volume, first)
		}
	}
	n := g.NumNodes()
	want := int(float64(n*(n-1))*0.10 + 0.5)
	if m.NumPairs() != want {
		t.Fatalf("pairs = %d, want %d", m.NumPairs(), want)
	}
}

func TestHotspotModelIsBimodal(t *testing.T) {
	g := testTopology(t)
	m, err := GenerateHighPriority("hotspot", g, 1000, Params{K: 0.5}, rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatal(err)
	}
	// Demands must take exactly two distinct volumes, ratio = boost (8).
	volumes := map[float64]int{}
	for _, d := range m.Demands() {
		volumes[d.Volume]++
	}
	if len(volumes) != 2 {
		t.Fatalf("hotspot volumes take %d levels, want 2", len(volumes))
	}
	var lo, hi float64 = math.Inf(1), 0
	for v := range volumes {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.Abs(hi/lo-8) > 1e-9 {
		t.Fatalf("hotspot boost ratio = %g, want 8", hi/lo)
	}
}

func TestHotspotConcentratesOnHotspots(t *testing.T) {
	g := testTopology(t)
	n := g.NumNodes()
	m, err := GenerateHighPriority("hotspot", g, 1000, Params{}, rand.New(rand.NewPCG(8, 8)))
	if err != nil {
		t.Fatal(err)
	}
	// Per-node terminated volume (in+out); the top 10% of nodes must carry
	// a clear majority of total volume at default k=0.1 (hot pairs fill the
	// budget first).
	vol := make([]float64, n)
	total := 0.0
	for _, d := range m.Demands() {
		vol[d.Src] += d.Volume
		vol[d.Dst] += d.Volume
		total += 2 * d.Volume
	}
	sortDesc(vol)
	numHot := n / 10
	if numHot < 1 {
		numHot = 1
	}
	top := 0.0
	for _, v := range vol[:numHot+1] {
		top += v
	}
	if top/total < 0.5 {
		t.Fatalf("top nodes carry only %.0f%% of volume", 100*top/total)
	}
}

func TestGravityModelWeightsByCapacity(t *testing.T) {
	// Star-ish topology with one fat node: demand must concentrate on it.
	g := graph.New(5)
	g.AddLink(0, 1, 1000, 1)
	g.AddLink(0, 2, 1000, 1)
	g.AddLink(1, 2, 10, 1)
	g.AddLink(2, 3, 10, 1)
	g.AddLink(3, 4, 10, 1)
	g.AddLink(4, 1, 10, 1)
	m, err := GenerateHighPriority("gravity", g, 1000, Params{K: 0.2}, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Demands() {
		if d.Src != 0 && d.Dst != 0 {
			t.Fatalf("low-capacity pair (%d,%d) selected before fat-node pairs", d.Src, d.Dst)
		}
	}
}

func TestGravityModelConsumesNoRandomness(t *testing.T) {
	g := testTopology(t)
	rng := rand.New(rand.NewPCG(3, 3))
	before := rng.Uint64()
	rng = rand.New(rand.NewPCG(3, 3))
	if _, err := GenerateHighPriority("gravity", g, 1000, Params{}, rng); err != nil {
		t.Fatal(err)
	}
	if got := rng.Uint64(); got != before {
		t.Fatal("gravity model consumed rng draws; it must be topology-deterministic")
	}
}

func sortDesc(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
