package traffic

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"

	"dualtopo/internal/graph"
)

// Params is the JSON-serializable parameter set shared by every registered
// high-priority traffic model. The zero value of every field means "use the
// model default"; each model validates the subset it reads.
type Params struct {
	// F is the high-priority volume fraction: etaH = etaL * f/(1-f).
	F float64 `json:"f,omitempty"`
	// K is the SD-pair density: roughly k*n*(n-1) ordered pairs carry
	// high-priority traffic.
	K float64 `json:"k,omitempty"`
	// Sinks is the sink-model server count.
	Sinks int `json:"sinks,omitempty"`
	// HotspotFraction is the fraction of nodes acting as hotspots in the
	// bimodal model.
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	// HotspotBoost is the per-pair weight multiplier applied to
	// hotspot-touching pairs in the bimodal model.
	HotspotBoost float64 `json:"hotspot_boost,omitempty"`
}

// overlay returns p with every zero field replaced by the corresponding
// field of def (model defaults compose under explicit params).
func (p Params) overlay(def Params) Params {
	if p.F == 0 {
		p.F = def.F
	}
	if p.K == 0 {
		p.K = def.K
	}
	if p.Sinks == 0 {
		p.Sinks = def.Sinks
	}
	if p.HotspotFraction == 0 {
		p.HotspotFraction = def.HotspotFraction
	}
	if p.HotspotBoost == 0 {
		p.HotspotBoost = def.HotspotBoost
	}
	return p
}

// WithShorthand fills p's zero fields from the flat f/k/sinks shorthand —
// the single fold point for legacy spellings into a params object.
func (p Params) WithShorthand(f, k float64, sinks int) Params {
	return p.overlay(Params{F: f, K: k, Sinks: sinks})
}

// Model is one registered high-priority traffic generator. Generate must be
// deterministic for a given resolved parameter set and rand source.
type Model struct {
	// Name is the registry key ("random", "hotspot", ...).
	Name string
	// Description is a one-line summary shown by CLIs.
	Description string
	// Defaults holds the model's resolved default parameters.
	Defaults Params
	// Validate rejects out-of-range parameters; it sees resolved params.
	Validate func(p Params) error
	// Generate builds the high-priority matrix over topology g, where etaL
	// is the total low-priority volume the f-fraction scales against.
	Generate func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error)
}

var (
	modelMu     sync.RWMutex
	modelByName = map[string]*Model{}
)

// RegisterModel adds a high-priority model to the registry, panicking on
// duplicates (models register from init functions).
func RegisterModel(m Model) {
	if m.Name == "" || m.Generate == nil {
		panic("traffic: RegisterModel: model needs a name and a Generate func")
	}
	modelMu.Lock()
	defer modelMu.Unlock()
	if _, dup := modelByName[m.Name]; dup {
		panic(fmt.Sprintf("traffic: RegisterModel: duplicate model %q", m.Name))
	}
	mm := m
	modelByName[m.Name] = &mm
}

// LookupModel returns the registered model for a name.
func LookupModel(name string) (*Model, bool) {
	modelMu.RLock()
	defer modelMu.RUnlock()
	m, ok := modelByName[name]
	return m, ok
}

// Models returns every registered model name in sorted order.
func Models() []string {
	modelMu.RLock()
	defer modelMu.RUnlock()
	out := make([]string, 0, len(modelByName))
	for name := range modelByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ModelList renders the registry as an "a|b|c" alternation for error
// messages, keeping them in sync with the registered models.
func ModelList() string { return strings.Join(Models(), "|") }

// ResolveModel merges the model's defaults into p and validates the result.
func ResolveModel(name string, p Params) (Params, *Model, error) {
	m, ok := LookupModel(name)
	if !ok {
		return Params{}, nil, fmt.Errorf("traffic: unknown high-priority model %q (%s)", name, ModelList())
	}
	p = p.overlay(m.Defaults)
	if m.Validate != nil {
		if err := m.Validate(p); err != nil {
			return Params{}, nil, err
		}
	}
	return p, m, nil
}

// GenerateHighPriority resolves, validates and runs the named model — the
// single entry point campaign specs and CLIs go through.
func GenerateHighPriority(model string, g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
	rp, m, err := ResolveModel(model, p)
	if err != nil {
		return nil, err
	}
	return m.Generate(g, etaL, rp, rng)
}

// paperHPDefaults are the §5.1.2 settings shared by the bundled models.
var paperHPDefaults = Params{F: 0.30, K: 0.10, Sinks: 3}

// validateFK checks the shared f/k ranges.
func validateFK(p Params) error {
	if p.F <= 0 || p.F >= 1 {
		return fmt.Errorf("traffic: high-priority fraction f=%g outside (0,1)", p.F)
	}
	if p.K <= 0 || p.K > 1 {
		return fmt.Errorf("traffic: SD-pair density k=%g outside (0,1]", p.K)
	}
	return nil
}

func init() {
	RegisterModel(Model{
		Name:        "random",
		Description: "k-density random SD pairs with U[1,4] weights (paper §5.1.2)",
		Defaults:    paperHPDefaults,
		Validate:    validateFK,
		Generate: func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
			return RandomHighPriority(g.NumNodes(), p.K, p.F, etaL, rng)
		},
	})
	RegisterModel(Model{
		Name:        "sink-uniform",
		Description: "popular-server sinks with uniformly scattered clients (paper §5.1.2)",
		Defaults:    paperHPDefaults,
		Validate:    validateSinks,
		Generate: func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
			return SinkHighPriority(g, p.Sinks, p.K, p.F, etaL, UniformClients, rng)
		},
	})
	RegisterModel(Model{
		Name:        "sink-local",
		Description: "popular-server sinks with clients clustered near them (paper §5.2.3)",
		Defaults:    paperHPDefaults,
		Validate:    validateSinks,
		Generate: func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
			return SinkHighPriority(g, p.Sinks, p.K, p.F, etaL, LocalClients, rng)
		},
	})
}

func validateSinks(p Params) error {
	if err := validateFK(p); err != nil {
		return err
	}
	if p.Sinks < 1 {
		return fmt.Errorf("traffic: sink model needs sinks >= 1, got %d", p.Sinks)
	}
	return nil
}
