package traffic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.Size() != 3 {
		t.Fatalf("Size = %d", m.Size())
	}
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	m.Set(2, 0, 3)
	if got := m.At(0, 1); got != 7 {
		t.Fatalf("At(0,1) = %g, want 7", got)
	}
	if got := m.Total(); got != 10 {
		t.Fatalf("Total = %g, want 10", got)
	}
	if got := m.NumPairs(); got != 2 {
		t.Fatalf("NumPairs = %d, want 2", got)
	}
	m.Scale(0.5)
	if got := m.Total(); got != 5 {
		t.Fatalf("Total after scale = %g, want 5", got)
	}
	c := m.Clone()
	c.Set(1, 0, 100)
	if m.At(1, 0) != 0 {
		t.Fatal("Clone is shallow")
	}
}

func TestMatrixPanics(t *testing.T) {
	m := NewMatrix(2)
	for name, fn := range map[string]func(){
		"self-demand":     func() { m.Set(1, 1, 3) },
		"negative demand": func() { m.Set(0, 1, -1) },
		"negative scale":  func() { m.Scale(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDemandsAndColumns(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 2, 4)
	m.Set(1, 2, 6)
	ds := m.Demands()
	if len(ds) != 2 {
		t.Fatalf("Demands len = %d", len(ds))
	}
	if ds[0] != (Demand{0, 2, 4}) || ds[1] != (Demand{1, 2, 6}) {
		t.Fatalf("Demands = %+v", ds)
	}
	col := m.DemandsTo(2, nil)
	if col[0] != 4 || col[1] != 6 || col[2] != 0 {
		t.Fatalf("DemandsTo(2) = %v", col)
	}
	active := m.ActiveDestinations()
	if len(active) != 1 || active[0] != 2 {
		t.Fatalf("ActiveDestinations = %v", active)
	}
}

func TestGravityShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 30
	m := Gravity(n, rng)
	if m.NumPairs() != n*(n-1) {
		t.Fatalf("gravity pairs = %d, want %d (all off-diagonal)", m.NumPairs(), n*(n-1))
	}
	for s := 0; s < n; s++ {
		if m.At(graph.NodeID(s), graph.NodeID(s)) != 0 {
			t.Fatalf("diagonal (%d,%d) nonzero", s, s)
		}
	}
	// Row sums must equal the sampled origin volumes, which are within
	// [10,200] by Eq. (7).
	for s := 0; s < n; s++ {
		row := 0.0
		for t2 := 0; t2 < n; t2++ {
			row += m.At(graph.NodeID(s), graph.NodeID(t2))
		}
		if row < 10 || row > 200 {
			t.Fatalf("row %d sum %.2f outside [10,200]", s, row)
		}
	}
}

func TestGravityMixLevels(t *testing.T) {
	// Over many nodes the three-level mix of Eq. (7) must appear with
	// roughly the right frequencies.
	rng := rand.New(rand.NewPCG(42, 42))
	n := 2000
	m := Gravity(n, rng)
	low, mid, high := 0, 0, 0
	for s := 0; s < n; s++ {
		row := 0.0
		for t2 := 0; t2 < n; t2++ {
			row += m.At(graph.NodeID(s), graph.NodeID(t2))
		}
		switch {
		case row <= 50:
			low++
		case row >= 80 && row <= 130:
			mid++
		case row >= 150:
			high++
		default:
			t.Fatalf("row %d sum %.2f falls between mix levels", s, row)
		}
	}
	if math.Abs(float64(low)/float64(n)-0.60) > 0.05 {
		t.Errorf("low fraction = %.3f, want ~0.60", float64(low)/float64(n))
	}
	if math.Abs(float64(mid)/float64(n)-0.35) > 0.05 {
		t.Errorf("mid fraction = %.3f, want ~0.35", float64(mid)/float64(n))
	}
	if math.Abs(float64(high)/float64(n)-0.05) > 0.03 {
		t.Errorf("high fraction = %.3f, want ~0.05", float64(high)/float64(n))
	}
}

func TestRandomHighPriorityFractionProperty(t *testing.T) {
	// For any valid k and f, total TH volume must satisfy
	// f = etaH / (etaH + etaL) exactly (up to float error).
	f := func(seed uint64, kRaw, fRaw float64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		k := 0.05 + math.Mod(math.Abs(kRaw), 0.9)
		frac := 0.05 + 0.9*math.Mod(math.Abs(fRaw), 0.9)
		if k > 1 {
			k = 1
		}
		if frac >= 1 {
			frac = 0.5
		}
		tl := Gravity(20, rng)
		th, err := RandomHighPriority(20, k, frac, tl.Total(), rng)
		if err != nil {
			return false
		}
		etaH, etaL := th.Total(), tl.Total()
		got := etaH / (etaH + etaL)
		return math.Abs(got-frac) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHighPriorityDensity(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	n := 30
	tl := Gravity(n, rng)
	th, err := RandomHighPriority(n, 0.10, 0.30, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(n*(n-1))*0.10 + 0.5)
	if th.NumPairs() != want {
		t.Fatalf("pairs = %d, want %d", th.NumPairs(), want)
	}
}

func TestRandomHighPriorityErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := RandomHighPriority(10, 0, 0.3, 100, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RandomHighPriority(10, 0.1, 1.0, 100, rng); err == nil {
		t.Error("f=1 accepted")
	}
	if _, err := RandomHighPriority(10, 1.5, 0.3, 100, rng); err == nil {
		t.Error("k>1 accepted")
	}
}

func TestSinkModelBidirectional(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	g, err := topo.PowerLaw(30, 81, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	tl := Gravity(30, rng)
	th, err := SinkHighPriority(g, 3, 0.10, 0.20, tl.Total(), UniformClients, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every demand touches a sink, and traffic is bidirectional.
	sinks := topDegreeNodes(g, 3)
	isSink := map[graph.NodeID]bool{}
	for _, s := range sinks {
		isSink[s] = true
	}
	for _, d := range th.Demands() {
		if !isSink[d.Src] && !isSink[d.Dst] {
			t.Fatalf("demand %+v touches no sink", d)
		}
		if th.At(d.Dst, d.Src) == 0 {
			t.Fatalf("demand %+v has no reverse", d)
		}
	}
	etaH, etaL := th.Total(), tl.Total()
	if got := etaH / (etaH + etaL); math.Abs(got-0.20) > 1e-9 {
		t.Fatalf("fraction = %g, want 0.20", got)
	}
}

func TestSinkModelLocalCloserThanUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	g, err := topo.PowerLaw(30, 81, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	sinks := topDegreeNodes(g, 3)
	dist := bfsDistances(g, sinks)

	avgDist := func(placement SinkPlacement, seed uint64) float64 {
		r := rand.New(rand.NewPCG(seed, 1))
		th, err := SinkHighPriority(g, 3, 0.10, 0.20, 1000, placement, r)
		if err != nil {
			t.Fatal(err)
		}
		clientSet := map[graph.NodeID]bool{}
		for _, d := range th.Demands() {
			for _, u := range []graph.NodeID{d.Src, d.Dst} {
				isSink := false
				for _, s := range sinks {
					if s == u {
						isSink = true
					}
				}
				if !isSink {
					clientSet[u] = true
				}
			}
		}
		sum, count := 0.0, 0
		for c := range clientSet {
			sum += float64(dist[c])
			count++
		}
		return sum / float64(count)
	}

	local := avgDist(LocalClients, 100)
	uniform := avgDist(UniformClients, 100)
	if local > uniform {
		t.Fatalf("local clients are farther than uniform: %.2f > %.2f", local, uniform)
	}
}

func TestSinkModelErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g, err := topo.Random(10, 20, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SinkHighPriority(g, 0, 0.1, 0.3, 100, UniformClients, rng); err == nil {
		t.Error("numSinks=0 accepted")
	}
	if _, err := SinkHighPriority(g, 10, 0.1, 0.3, 100, UniformClients, rng); err == nil {
		t.Error("numSinks=n accepted")
	}
	if _, err := SinkHighPriority(g, 2, 0, 0.3, 100, UniformClients, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SinkHighPriority(g, 2, 0.1, 0, 100, UniformClients, rng); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := SinkHighPriority(g, 2, 0.1, 0.3, 100, SinkPlacement(99), rng); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestTopDegreeNodes(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(0, 2, 1, 0)
	g.AddLink(0, 3, 1, 0)
	g.AddLink(1, 2, 1, 0)
	top := topDegreeNodes(g, 2)
	if top[0] != 0 {
		t.Fatalf("top degree node = %d, want 0", top[0])
	}
	if top[1] != 1 && top[1] != 2 {
		t.Fatalf("second node = %d, want 1 or 2", top[1])
	}
}

// bfsDistances returns hop distance from the nearest sink for each node.
func bfsDistances(g *graph.Graph, sinks []graph.NodeID) []int {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	var queue []graph.NodeID
	for _, s := range sinks {
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(u) {
			v := g.Edge(id).To
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
