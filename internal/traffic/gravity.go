package traffic

import (
	"math"
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// Demand-mix probabilities and uniform ranges from Eq. (7): 60% of nodes
// originate low volumes, 35% medium, 5% high ("hot spots").
var demandMix = []struct {
	prob     float64
	min, max float64
}{
	{0.60, 10, 50},
	{0.35, 80, 130},
	{0.05, 150, 200},
}

// Gravity generates the low-priority traffic matrix TL with the gravity
// model of Eq. (6): r(s,t) = d_s · e^{V_t} / Σ_{i≠s} e^{V_i}, where d_s is
// the total traffic originating at s (three-level mix of Eq. 7) and
// V_t ~ U[1, 1.5] is node t's mass.
func Gravity(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n)
	d := make([]float64, n)
	for s := range d {
		d[s] = sampleOrigin(rng)
	}
	mass := make([]float64, n)
	for t := range mass {
		mass[t] = math.Exp(1 + 0.5*rng.Float64())
	}
	totalMass := 0.0
	for _, x := range mass {
		totalMass += x
	}
	for s := 0; s < n; s++ {
		denom := totalMass - mass[s]
		for t := 0; t < n; t++ {
			if t == s {
				continue
			}
			m.Set(graph.NodeID(s), graph.NodeID(t), d[s]*mass[t]/denom)
		}
	}
	return m
}

// GravitySinks is the gravity model of Eq. (6) restricted to `sinks`
// destination nodes (evenly spread over the ID space): every source
// distributes its Eq.-(7) origin volume over the sink masses only. It keeps
// the per-source demand mix and mass heterogeneity of Gravity while touching
// sinks·n pairs instead of n² — the scale-instance form of the paper's
// "popular servers" pattern, feasible at 10k–100k nodes where a full
// gravity matrix would need n² storage and quadratic generation time.
func GravitySinks(n, sinks int, rng *rand.Rand) *Matrix {
	if sinks <= 0 || sinks > n {
		sinks = n
	}
	m := NewMatrix(n)
	dests := make([]graph.NodeID, sinks)
	for i := range dests {
		dests[i] = graph.NodeID(i * n / sinks)
	}
	mass := make([]float64, sinks)
	totalMass := 0.0
	for i := range mass {
		mass[i] = math.Exp(1 + 0.5*rng.Float64())
		totalMass += mass[i]
	}
	for s := 0; s < n; s++ {
		d := sampleOrigin(rng)
		denom := totalMass
		for i, t := range dests {
			if int(t) == s {
				denom -= mass[i]
			}
		}
		for i, t := range dests {
			if int(t) == s {
				continue
			}
			m.Set(graph.NodeID(s), t, d*mass[i]/denom)
		}
	}
	return m
}

// sampleOrigin draws the total origin volume d_s per Eq. (7).
func sampleOrigin(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for _, level := range demandMix {
		acc += level.prob
		if u < acc {
			return level.min + rng.Float64()*(level.max-level.min)
		}
	}
	last := demandMix[len(demandMix)-1]
	return last.min + rng.Float64()*(last.max-last.min)
}
