package traffic

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"dualtopo/internal/graph"
)

// RandomHighPriority generates TH with the paper's random model: a fraction
// k of the n(n−1) ordered SD pairs carry high-priority traffic, each pair
// weighted by m(s,t) ~ U[1,4], and the total volume is set so high-priority
// traffic is a fraction f of all traffic:
//
//	r_H(s,t) = η_L · f/(1−f) · m(s,t) / Σ m(i,j)
//
// where etaL is the total low-priority volume (TL.Total()).
func RandomHighPriority(n int, k, f, etaL float64, rng *rand.Rand) (*Matrix, error) {
	if k <= 0 || k > 1 {
		return nil, fmt.Errorf("traffic: SD-pair density k=%g outside (0,1]", k)
	}
	if f <= 0 || f >= 1 {
		return nil, fmt.Errorf("traffic: high-priority fraction f=%g outside (0,1)", f)
	}
	numPairs := int(float64(n*(n-1))*k + 0.5)
	if numPairs < 1 {
		numPairs = 1
	}
	pairs := samplePairs(n, numPairs, rng)
	return weightedMatrix(n, pairs, f, etaL, rng), nil
}

// SinkPlacement selects where the sink model's client nodes live.
type SinkPlacement int

const (
	// UniformClients scatters clients uniformly over non-sink nodes.
	UniformClients SinkPlacement = iota
	// LocalClients picks the non-sink nodes closest (in hops) to a sink.
	LocalClients
)

// SinkHighPriority generates TH with the paper's sink model (§5.1.2,
// §5.2.3): numSinks highest-degree nodes act as "popular servers" (e.g.
// data centers); clients are chosen per placement; bidirectional demand is
// generated between every client and every sink. The client count is sized
// so the pair density matches k. Volumes use the same m(s,t) ∈ [1,4]
// weighting and f-fraction scaling as the random model.
func SinkHighPriority(g *graph.Graph, numSinks int, k, f, etaL float64, placement SinkPlacement, rng *rand.Rand) (*Matrix, error) {
	n := g.NumNodes()
	if numSinks < 1 || numSinks >= n {
		return nil, fmt.Errorf("traffic: numSinks=%d outside [1,%d)", numSinks, n)
	}
	if k <= 0 || k > 1 {
		return nil, fmt.Errorf("traffic: SD-pair density k=%g outside (0,1]", k)
	}
	if f <= 0 || f >= 1 {
		return nil, fmt.Errorf("traffic: high-priority fraction f=%g outside (0,1)", f)
	}
	sinks := topDegreeNodes(g, numSinks)
	isSink := make(map[graph.NodeID]bool, numSinks)
	for _, s := range sinks {
		isSink[s] = true
	}

	// 2 · numSinks · numClients pairs ≈ k · n(n−1).
	numClients := int(k*float64(n*(n-1))/float64(2*numSinks) + 0.5)
	if numClients < 1 {
		numClients = 1
	}
	if max := n - numSinks; numClients > max {
		numClients = max
	}

	var clients []graph.NodeID
	switch placement {
	case UniformClients:
		perm := rng.Perm(n)
		for _, u := range perm {
			if !isSink[graph.NodeID(u)] {
				clients = append(clients, graph.NodeID(u))
			}
			if len(clients) == numClients {
				break
			}
		}
	case LocalClients:
		clients = closestToSinks(g, sinks, isSink, numClients, rng)
	default:
		return nil, fmt.Errorf("traffic: unknown sink placement %d", placement)
	}

	var pairs [][2]graph.NodeID
	for _, c := range clients {
		for _, s := range sinks {
			pairs = append(pairs, [2]graph.NodeID{c, s}, [2]graph.NodeID{s, c})
		}
	}
	return weightedMatrix(n, pairs, f, etaL, rng), nil
}

// weightedMatrix distributes the f-fraction volume over the given pairs with
// m(s,t) ~ U[1,4] heterogeneity.
func weightedMatrix(n int, pairs [][2]graph.NodeID, f, etaL float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(n)
	weights := make([]float64, len(pairs))
	totalW := 0.0
	for i := range pairs {
		weights[i] = 1 + 3*rng.Float64()
		totalW += weights[i]
	}
	volume := etaL * f / (1 - f)
	for i, p := range pairs {
		m.Add(p[0], p[1], volume*weights[i]/totalW)
	}
	return m
}

// samplePairs picks count distinct ordered pairs uniformly at random.
func samplePairs(n, count int, rng *rand.Rand) [][2]graph.NodeID {
	total := n * (n - 1)
	if count > total {
		count = total
	}
	// Sample pair indexes without replacement via partial Fisher-Yates over
	// the implicit [0, total) index space.
	idx := rng.Perm(total)[:count]
	pairs := make([][2]graph.NodeID, 0, count)
	for _, x := range idx {
		s := x / (n - 1)
		t := x % (n - 1)
		if t >= s {
			t++ // skip the diagonal
		}
		pairs = append(pairs, [2]graph.NodeID{graph.NodeID(s), graph.NodeID(t)})
	}
	return pairs
}

// topDegreeNodes returns the count nodes with the highest undirected degree,
// ties broken by node ID for determinism.
func topDegreeNodes(g *graph.Graph, count int) []graph.NodeID {
	type nd struct {
		id  graph.NodeID
		deg int
	}
	all := make([]nd, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		all[u] = nd{graph.NodeID(u), g.UndirectedDegree(graph.NodeID(u))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].id < all[j].id
	})
	out := make([]graph.NodeID, count)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}

// closestToSinks returns the numClients non-sink nodes with the smallest
// hop distance to any sink (BFS), random tie-breaking within a distance.
func closestToSinks(g *graph.Graph, sinks []graph.NodeID, isSink map[graph.NodeID]bool, numClients int, rng *rand.Rand) []graph.NodeID {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	queue := make([]graph.NodeID, 0, g.NumNodes())
	for _, s := range sinks {
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(u) {
			v := g.Edge(id).To
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	candidates := make([]graph.NodeID, 0, g.NumNodes())
	for _, u := range rng.Perm(g.NumNodes()) {
		if !isSink[graph.NodeID(u)] && dist[u] < inf {
			candidates = append(candidates, graph.NodeID(u))
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return dist[candidates[i]] < dist[candidates[j]]
	})
	if numClients > len(candidates) {
		numClients = len(candidates)
	}
	return candidates[:numClients]
}
