// Package traffic implements the paper's traffic-matrix models (§5.1.2):
// the gravity model for low-priority demand (Eq. 6–7), the random model for
// high-priority demand (density k, volume fraction f, per-pair weights
// m(s,t) ∈ [1,4]), and the sink model emulating popular servers with
// uniformly or locally distributed clients.
package traffic

import (
	"fmt"

	"dualtopo/internal/graph"
)

// Matrix is a dense |V|×|V| traffic matrix in Mbps. The diagonal is always
// zero: r(s,s) = 0 for all s.
type Matrix struct {
	n int
	v []float64
}

// NewMatrix returns an all-zero n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, v: make([]float64, n*n)}
}

// Size returns the node count n.
func (m *Matrix) Size() int { return m.n }

// At returns the demand from s to t.
func (m *Matrix) At(s, t graph.NodeID) float64 { return m.v[int(s)*m.n+int(t)] }

// Set assigns the demand from s to t. Setting a diagonal entry or a negative
// volume panics: both indicate a generator bug.
func (m *Matrix) Set(s, t graph.NodeID, vol float64) {
	if s == t && vol != 0 {
		panic(fmt.Sprintf("traffic: self-demand at node %d", s))
	}
	if vol < 0 {
		panic(fmt.Sprintf("traffic: negative demand %g for (%d,%d)", vol, s, t))
	}
	m.v[int(s)*m.n+int(t)] = vol
}

// Add increases the demand from s to t by vol.
func (m *Matrix) Add(s, t graph.NodeID, vol float64) { m.Set(s, t, m.At(s, t)+vol) }

// Total returns the sum of all demands (ηH or ηL in the paper).
func (m *Matrix) Total() float64 {
	sum := 0.0
	for _, x := range m.v {
		sum += x
	}
	return sum
}

// Scale multiplies every demand by factor.
func (m *Matrix) Scale(factor float64) {
	if factor < 0 {
		panic(fmt.Sprintf("traffic: negative scale %g", factor))
	}
	for i := range m.v {
		m.v[i] *= factor
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	copy(c.v, m.v)
	return c
}

// Demand is one nonzero source-destination entry.
type Demand struct {
	Src, Dst graph.NodeID
	Volume   float64
}

// Demands returns all nonzero entries in row-major order.
func (m *Matrix) Demands() []Demand {
	var out []Demand
	for s := 0; s < m.n; s++ {
		for t := 0; t < m.n; t++ {
			if vol := m.v[s*m.n+t]; vol > 0 {
				out = append(out, Demand{graph.NodeID(s), graph.NodeID(t), vol})
			}
		}
	}
	return out
}

// NumPairs reports the number of nonzero entries.
func (m *Matrix) NumPairs() int {
	count := 0
	for _, x := range m.v {
		if x > 0 {
			count++
		}
	}
	return count
}

// DemandsTo returns the column of demands destined to t as a slice indexed
// by source node (the layout SPF load aggregation consumes).
func (m *Matrix) DemandsTo(t graph.NodeID, out []float64) []float64 {
	if cap(out) < m.n {
		out = make([]float64, m.n)
	}
	out = out[:m.n]
	for s := 0; s < m.n; s++ {
		out[s] = m.v[s*m.n+int(t)]
	}
	return out
}

// ActiveDestinations returns every node that is the destination of at least
// one nonzero demand.
func (m *Matrix) ActiveDestinations() []graph.NodeID {
	var out []graph.NodeID
	for t := 0; t < m.n; t++ {
		for s := 0; s < m.n; s++ {
			if m.v[s*m.n+t] > 0 {
				out = append(out, graph.NodeID(t))
				break
			}
		}
	}
	return out
}
