// Package traffic implements the paper's traffic-matrix models (§5.1.2):
// the gravity model for low-priority demand (Eq. 6–7), the random model for
// high-priority demand (density k, volume fraction f, per-pair weights
// m(s,t) ∈ [1,4]), and the sink model emulating popular servers with
// uniformly or locally distributed clients.
package traffic

import (
	"fmt"

	"dualtopo/internal/graph"
)

// Matrix is a |V|×|V| traffic matrix in Mbps. The diagonal is always zero:
// r(s,s) = 0 for all s. Storage is column-major and lazy: a destination's
// column is allocated on first write, so a matrix with d active destinations
// holds d·n float64s instead of n² — the difference between ~763 MB and a
// few MB for a sink-pattern matrix on a 10k-node graph. A fully populated
// matrix (gravity over every pair) costs the same as a dense layout.
type Matrix struct {
	n    int
	cols [][]float64 // cols[t][s]; a nil column is all-zero
}

// NewMatrix returns an all-zero n×n matrix. No columns are allocated until
// demand is written.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, cols: make([][]float64, n)}
}

// Size returns the node count n.
func (m *Matrix) Size() int { return m.n }

// At returns the demand from s to t.
func (m *Matrix) At(s, t graph.NodeID) float64 {
	c := m.cols[t]
	if c == nil {
		return 0
	}
	return c[s]
}

// Set assigns the demand from s to t. Setting a diagonal entry or a negative
// volume panics: both indicate a generator bug. Writing zero to an untouched
// column is a no-op and allocates nothing.
func (m *Matrix) Set(s, t graph.NodeID, vol float64) {
	if s == t && vol != 0 {
		panic(fmt.Sprintf("traffic: self-demand at node %d", s))
	}
	if vol < 0 {
		panic(fmt.Sprintf("traffic: negative demand %g for (%d,%d)", vol, s, t))
	}
	c := m.cols[t]
	if c == nil {
		if vol == 0 {
			return
		}
		c = make([]float64, m.n)
		m.cols[t] = c
	}
	c[s] = vol
}

// Add increases the demand from s to t by vol.
func (m *Matrix) Add(s, t graph.NodeID, vol float64) { m.Set(s, t, m.At(s, t)+vol) }

// Total returns the sum of all demands (ηH or ηL in the paper).
func (m *Matrix) Total() float64 {
	sum := 0.0
	for _, c := range m.cols {
		for _, x := range c {
			sum += x
		}
	}
	return sum
}

// Scale multiplies every demand by factor.
func (m *Matrix) Scale(factor float64) {
	if factor < 0 {
		panic(fmt.Sprintf("traffic: negative scale %g", factor))
	}
	for _, c := range m.cols {
		for i := range c {
			c[i] *= factor
		}
	}
}

// Clone returns a deep copy. Unallocated columns stay unallocated.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	for t, col := range m.cols {
		if col != nil {
			c.cols[t] = append([]float64(nil), col...)
		}
	}
	return c
}

// Demand is one nonzero source-destination entry.
type Demand struct {
	Src, Dst graph.NodeID
	Volume   float64
}

// Demands returns all nonzero entries in row-major order — the iteration
// order every consumer (evaluator pair lists, OSPF flow setup) has always
// seen, preserved independent of the column-major storage.
func (m *Matrix) Demands() []Demand {
	var out []Demand
	for s := 0; s < m.n; s++ {
		for t, c := range m.cols {
			if c == nil {
				continue
			}
			if vol := c[s]; vol > 0 {
				out = append(out, Demand{graph.NodeID(s), graph.NodeID(t), vol})
			}
		}
	}
	return out
}

// NumPairs reports the number of nonzero entries.
func (m *Matrix) NumPairs() int {
	count := 0
	for _, c := range m.cols {
		for _, x := range c {
			if x > 0 {
				count++
			}
		}
	}
	return count
}

// DemandsTo returns the column of demands destined to t as a slice indexed
// by source node (the layout SPF load aggregation consumes).
func (m *Matrix) DemandsTo(t graph.NodeID, out []float64) []float64 {
	if cap(out) < m.n {
		out = make([]float64, m.n)
	}
	out = out[:m.n]
	if c := m.cols[t]; c != nil {
		copy(out, c)
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	return out
}

// ActiveDestinations returns every node that is the destination of at least
// one nonzero demand.
func (m *Matrix) ActiveDestinations() []graph.NodeID {
	var out []graph.NodeID
	for t, c := range m.cols {
		for _, x := range c {
			if x > 0 {
				out = append(out, graph.NodeID(t))
				break
			}
		}
	}
	return out
}
