package traffic

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"dualtopo/internal/graph"
)

// GravityHighPriority generates TH with a capacity-weighted gravity model:
// each node's mass is its attached capacity (sum of outgoing arc
// capacities), pair (s,t) gets weight mass_s * mass_t, and the k-density
// highest-weight pairs carry the f-fraction volume in proportion to their
// weights. On homogeneous-capacity topologies every node has mass
// proportional to its degree, so the model concentrates demand between
// well-connected nodes; on heterogeneous ones (e.g. the hier family's fat
// core) it concentrates demand on the high-capacity tier. No rng draw is
// consumed: the matrix is a deterministic function of the topology.
func GravityHighPriority(g *graph.Graph, k, f, etaL float64) (*Matrix, error) {
	if k <= 0 || k > 1 {
		return nil, fmt.Errorf("traffic: SD-pair density k=%g outside (0,1]", k)
	}
	if f <= 0 || f >= 1 {
		return nil, fmt.Errorf("traffic: high-priority fraction f=%g outside (0,1)", f)
	}
	n := g.NumNodes()
	mass := make([]float64, n)
	for u := 0; u < n; u++ {
		for _, id := range g.Out(graph.NodeID(u)) {
			mass[u] += g.Edge(id).Capacity
		}
	}
	type pair struct {
		s, t   graph.NodeID
		weight float64
	}
	pairs := make([]pair, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			pairs = append(pairs, pair{graph.NodeID(s), graph.NodeID(t), mass[s] * mass[t]})
		}
	}
	// Keep the k-density heaviest pairs; ties break by row-major order so
	// the selection is deterministic on homogeneous topologies too.
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].weight > pairs[j].weight })
	keep := int(float64(n*(n-1))*k + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep > len(pairs) {
		keep = len(pairs)
	}
	pairs = pairs[:keep]

	totalW := 0.0
	for _, p := range pairs {
		totalW += p.weight
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("traffic: gravity masses are all zero")
	}
	m := NewMatrix(n)
	volume := etaL * f / (1 - f)
	for _, p := range pairs {
		m.Set(p.s, p.t, volume*p.weight/totalW)
	}
	return m, nil
}

// HotspotHighPriority generates TH with a bimodal hotspot placement: a
// fraction h of nodes (at least one) is drawn as hotspots, the k-density
// pair budget is filled with hotspot-touching pairs first (random order)
// and backfilled with background pairs, and hotspot pairs weigh boost times
// a background pair. The result is the bimodal demand distribution of
// flash-crowd and CDN-edge scenarios: a few nodes terminate most of the
// high-priority volume.
func HotspotHighPriority(g *graph.Graph, k, f, etaL, h, boost float64, rng *rand.Rand) (*Matrix, error) {
	if k <= 0 || k > 1 {
		return nil, fmt.Errorf("traffic: SD-pair density k=%g outside (0,1]", k)
	}
	if f <= 0 || f >= 1 {
		return nil, fmt.Errorf("traffic: high-priority fraction f=%g outside (0,1)", f)
	}
	if h <= 0 || h >= 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %g outside (0,1)", h)
	}
	if boost <= 1 {
		return nil, fmt.Errorf("traffic: hotspot boost %g must exceed 1", boost)
	}
	n := g.NumNodes()
	numHot := int(h*float64(n) + 0.5)
	if numHot < 1 {
		numHot = 1
	}
	if numHot >= n {
		numHot = n - 1
	}
	isHot := make([]bool, n)
	for _, u := range rng.Perm(n)[:numHot] {
		isHot[u] = true
	}

	var hotPairs, coldPairs [][2]graph.NodeID
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			p := [2]graph.NodeID{graph.NodeID(s), graph.NodeID(t)}
			if isHot[s] || isHot[t] {
				hotPairs = append(hotPairs, p)
			} else {
				coldPairs = append(coldPairs, p)
			}
		}
	}
	shufflePairs(hotPairs, rng)
	shufflePairs(coldPairs, rng)

	budget := int(float64(n*(n-1))*k + 0.5)
	if budget < 1 {
		budget = 1
	}
	hot := hotPairs
	if len(hot) > budget {
		hot = hot[:budget]
	}
	cold := coldPairs
	if rest := budget - len(hot); rest < len(cold) {
		cold = cold[:rest]
	}

	m := NewMatrix(n)
	totalW := boost*float64(len(hot)) + float64(len(cold))
	volume := etaL * f / (1 - f)
	for _, p := range hot {
		m.Set(p[0], p[1], volume*boost/totalW)
	}
	for _, p := range cold {
		m.Set(p[0], p[1], volume/totalW)
	}
	return m, nil
}

// UniformHighPriority generates the uniform baseline: the k-density pair
// budget drawn uniformly at random, every pair carrying the same volume.
// It isolates the effect of pair placement from per-pair heterogeneity —
// the control arm against the paper's U[1,4]-weighted random model.
func UniformHighPriority(n int, k, f, etaL float64, rng *rand.Rand) (*Matrix, error) {
	if k <= 0 || k > 1 {
		return nil, fmt.Errorf("traffic: SD-pair density k=%g outside (0,1]", k)
	}
	if f <= 0 || f >= 1 {
		return nil, fmt.Errorf("traffic: high-priority fraction f=%g outside (0,1)", f)
	}
	numPairs := int(float64(n*(n-1))*k + 0.5)
	if numPairs < 1 {
		numPairs = 1
	}
	pairs := samplePairs(n, numPairs, rng)
	m := NewMatrix(n)
	volume := etaL * f / (1 - f)
	for _, p := range pairs {
		m.Set(p[0], p[1], volume/float64(len(pairs)))
	}
	return m, nil
}

// shufflePairs permutes pairs in place using rng (Fisher-Yates).
func shufflePairs(pairs [][2]graph.NodeID, rng *rand.Rand) {
	for i := len(pairs) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
}

func init() {
	RegisterModel(Model{
		Name:        "gravity",
		Description: "capacity-weighted gravity: demand between the best-connected (or fattest) nodes",
		Defaults:    paperHPDefaults,
		Validate:    validateFK,
		Generate: func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
			return GravityHighPriority(g, p.K, p.F, etaL)
		},
	})
	RegisterModel(Model{
		Name:        "hotspot",
		Description: "bimodal placement: a few hotspot nodes terminate most high-priority volume",
		Defaults:    paperHPDefaults.overlay(Params{HotspotFraction: 0.1, HotspotBoost: 8}),
		Validate: func(p Params) error {
			if err := validateFK(p); err != nil {
				return err
			}
			if p.HotspotFraction <= 0 || p.HotspotFraction >= 1 {
				return fmt.Errorf("traffic: hotspot_fraction=%g outside (0,1)", p.HotspotFraction)
			}
			if p.HotspotBoost <= 1 {
				return fmt.Errorf("traffic: hotspot_boost=%g must exceed 1", p.HotspotBoost)
			}
			return nil
		},
		Generate: func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
			return HotspotHighPriority(g, p.K, p.F, etaL, p.HotspotFraction, p.HotspotBoost, rng)
		},
	})
	RegisterModel(Model{
		Name:        "uniform",
		Description: "uniform baseline: k-density pairs, equal volume per pair",
		Defaults:    paperHPDefaults,
		Validate:    validateFK,
		Generate: func(g *graph.Graph, etaL float64, p Params, rng *rand.Rand) (*Matrix, error) {
			return UniformHighPriority(g.NumNodes(), p.K, p.F, etaL, rng)
		},
	})
}
