package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "test counter")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(goroutines*perG)*0.5; got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(3)
	g.SetMax(1)
	g.SetMax(math.NaN()) // ignored
	if got := g.Value(); got != 3 {
		t.Fatalf("running max = %g, want 3", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("running max = %g, want 7", got)
	}
}

func TestGaugeSetMin(t *testing.T) {
	var g Gauge
	// A zero-value gauge reads 0, which would absorb every SetMin; callers
	// seed with +Inf first (as the portfolio's best-ΦL gauge does).
	g.Set(math.Inf(1))
	g.SetMin(3)
	g.SetMin(5)
	g.SetMin(math.NaN()) // ignored
	if got := g.Value(); got != 3 {
		t.Fatalf("running min = %g, want 3", got)
	}
	g.SetMin(1)
	if got := g.Value(); got != 1 {
		t.Fatalf("running min = %g, want 1", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	const goroutines, perG = 8, 6000 // perG divisible by the 6-value cycle
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%6) + 0.5) // 0.5 .. 5.5
			}
		}(k)
	}
	wg.Wait()
	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	// Values cycle 0.5,1.5,2.5,3.5,4.5,5.5: one sixth lands <=1, one sixth in
	// (1,2], two sixths in (2,4], two sixths overflow.
	want := []int64{total / 6, total / 6, total / 3, total / 3}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got, want := h.Sum(), 3.0*total; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %g, want 1", got)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Fatalf("p95 = %g, want 100", got)
	}
	empty := newHistogram([]float64{1})
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty-histogram quantile = %g, want NaN", got)
	}
}

// TestWritePrometheusGolden pins the exposition format: header lines,
// label rendering, cumulative histogram buckets, deterministic ordering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "Last alphabetically, emitted last.").Add(9)
	cv := r.CounterVec("requests_total", "Requests by verb.", "verb")
	cv.With("get").Add(3)
	cv.With("put").Add(1)
	r.Gauge("workers_busy", "Busy workers.").Set(2.5)
	// Dyadic observations keep the _sum exactly representable, so the golden
	// string is stable.
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(4)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 4.5625
latency_seconds_count 3
# HELP requests_total Requests by verb.
# TYPE requests_total counter
requests_total{verb="get"} 3
requests_total{verb="put"} 1
# HELP workers_busy Busy workers.
# TYPE workers_busy gauge
workers_busy 2.5
# HELP zeta_total Last alphabetically, emitted last.
# TYPE zeta_total counter
zeta_total 9
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(4)
	h := r.Histogram("h_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	snap := r.Snapshot()
	if len(snap.Metrics) != 2 {
		t.Fatalf("snapshot has %d families, want 2", len(snap.Metrics))
	}
	hs := snap.Metrics[1].Values[0].Histogram
	if hs == nil {
		t.Fatal("histogram snapshot missing")
	}
	if got, want := hs.Counts, []int64{1, 1, 1}; len(got) != len(want) {
		t.Fatalf("bucket counts %v, want %v", got, want)
	}
	if hs.Count != 3 || hs.Sum != 11 {
		t.Fatalf("count/sum = %d/%g, want 3/11", hs.Count, hs.Sum)
	}
	if hs.P50 != 2 { // rank 2 of 3 lands in the (1,2] bucket
		t.Fatalf("p50 = %g, want 2", hs.P50)
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb, NewManifest("test", nil)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`"manifest"`, `"a_total"`, `"h_seconds"`, `"schema_version": 1`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("WriteJSON output missing %s:\n%s", frag, out)
		}
	}
}

func TestRegistryConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestManifest(t *testing.T) {
	m := NewManifest("testcmd", []string{"-flag"})
	m.SetSeed(42)
	m.SpecHash = SpecHash(struct{ A int }{1})
	if m.SpecHash == "" || len(m.SpecHash) != 16 {
		t.Fatalf("spec hash %q, want 16 hex chars", m.SpecHash)
	}
	if SpecHash(struct{ A int }{1}) != m.SpecHash {
		t.Fatal("equal specs hash unequally")
	}
	if SpecHash(struct{ A int }{2}) == m.SpecHash {
		t.Fatal("different specs hash equally")
	}
	m.Finish()
	line, err := m.JSONLine()
	if err != nil {
		t.Fatal(err)
	}
	s := string(line)
	if !strings.HasPrefix(s, `{"manifest":{`) || !strings.HasSuffix(s, "\n") {
		t.Fatalf("manifest line framing wrong: %q", s)
	}
	for _, frag := range []string{`"command":"testcmd"`, `"seed":42`, `"go_version"`, `"gomaxprocs"`} {
		if !strings.Contains(s, frag) {
			t.Fatalf("manifest line missing %s: %s", frag, s)
		}
	}
}

// TestObserveAllocFree pins the hot-path contract: updates on resolved
// handles never allocate.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("alloc_total", "t", "k").With("v")
	g := r.Gauge("alloc_gauge", "t")
	h := r.Histogram("alloc_seconds", "t", DefBuckets)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(0.5)
		g.SetMax(3)
		h.Observe(0.01)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate %.1f objects per run, want 0", allocs)
	}
}
