package obs

import "time"

// SpanTimer measures one phase of work into a histogram of seconds. Start a
// timer with StartSpan (or Histogram-first via Time), do the work, then call
// Stop — the elapsed time is observed into the histogram and returned.
//
//	defer obs.Time(buildSeconds).Stop()
//
// A SpanTimer is a value, not a pointer: starting and stopping one performs
// no allocation, so spans can wrap hot phases freely.
type SpanTimer struct {
	start time.Time
	h     *Histogram
}

// Time starts a span recording into h.
func Time(h *Histogram) SpanTimer {
	return SpanTimer{start: time.Now(), h: h}
}

// Stop observes the elapsed seconds into the span's histogram (when one is
// attached) and returns the elapsed duration. Safe on a zero SpanTimer.
func (t SpanTimer) Stop() time.Duration {
	d := time.Since(t.start)
	if t.h != nil {
		t.h.Observe(d.Seconds())
	}
	return d
}
