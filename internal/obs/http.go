package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the telemetry surface of one process: /metrics (Prometheus
// text), /metrics.json (snapshot + manifest), /manifest.json, the full
// net/http/pprof suite under /debug/pprof/, and expvar under /debug/vars.
// This is the engine-state/telemetry split the dtrd daemon will grow from:
// the serving side never touches engine internals, only the registry.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the telemetry server on addr (e.g. ":9090", "127.0.0.1:0").
// The registry defaults to Default() when nil; the manifest may be nil.
func Serve(addr string, r *Registry, m *Manifest) (*Server, error) {
	if r == nil {
		r = Default()
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{lis: lis}
	mux := http.NewServeMux()
	Mount(mux, r, m)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(lis) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Mount installs the standard telemetry surface — /metrics, /metrics.json,
// /manifest.json, /debug/pprof/* and /debug/vars — on an existing mux, so
// servers with their own API namespace (the dtrd daemon) expose the exact
// surface the standalone Server does. The registry defaults to Default()
// when nil; the manifest may be nil.
func Mount(mux *http.ServeMux, r *Registry, m *Manifest) {
	if r == nil {
		r = Default()
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client gone mid-write
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w, m) //nolint:errcheck
	})
	mux.HandleFunc("/manifest.json", func(w http.ResponseWriter, _ *http.Request) {
		if m == nil {
			http.Error(w, "no manifest attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		line, err := m.JSONLine()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(line) //nolint:errcheck
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
