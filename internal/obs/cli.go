package obs

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// CLI is the observability surface every long-running command shares:
// -metrics-addr serves /metrics + pprof + expvar for the life of the
// process, -metrics-dump writes a JSON registry snapshot (with the run
// manifest attached) at shutdown, and -metrics-linger keeps the server up
// after the work finishes so one-shot runs can still be scraped.
type CLI struct {
	Addr   string
	Dump   string
	Linger time.Duration

	server   *Server
	manifest *Manifest
	registry *Registry
}

// RegisterFlags installs the shared metrics flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Addr, "metrics-addr", "", "serve /metrics, /metrics.json, /debug/pprof and /debug/vars on this address (e.g. :9090; empty = off)")
	fs.StringVar(&c.Dump, "metrics-dump", "", "write a JSON metrics snapshot plus run manifest to this file at exit")
	fs.DurationVar(&c.Linger, "metrics-linger", 0, "keep serving -metrics-addr this long after the run completes (for scrapers of one-shot runs)")
}

// Start begins serving when -metrics-addr was given, announcing the bound
// address on stderr. The manifest is attached to the server's JSON
// endpoints and the eventual dump. Call Stop when the run's work is done.
func (c *CLI) Start(m *Manifest) error {
	c.manifest = m
	c.registry = Default()
	if c.Addr == "" {
		return nil
	}
	s, err := Serve(c.Addr, c.registry, m)
	if err != nil {
		return err
	}
	c.server = s
	fmt.Fprintf(os.Stderr, "obs: metrics listening on http://%s/metrics\n", s.Addr())
	return nil
}

// Stop finalizes the run: stamps the manifest's wall time, writes the
// -metrics-dump snapshot, honors -metrics-linger, and closes the server.
// Safe to call when Start was never reached past flag parsing.
func (c *CLI) Stop() error {
	if c.manifest != nil {
		c.manifest.Finish()
	}
	var dumpErr error
	if c.Dump != "" {
		reg := c.registry
		if reg == nil {
			reg = Default()
		}
		f, err := os.Create(c.Dump)
		if err != nil {
			dumpErr = err
		} else {
			dumpErr = reg.WriteJSON(f, c.manifest)
			if cerr := f.Close(); dumpErr == nil {
				dumpErr = cerr
			}
		}
	}
	if c.server != nil {
		if c.Linger > 0 {
			fmt.Fprintf(os.Stderr, "obs: lingering %s on http://%s/metrics\n", c.Linger, c.server.Addr())
			time.Sleep(c.Linger)
		}
		c.server.Close() //nolint:errcheck
		c.server = nil
	}
	return dumpErr
}
