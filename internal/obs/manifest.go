package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchemaVersion identifies the manifest layout; bump on breaking
// field changes so downstream tooling can dispatch.
const ManifestSchemaVersion = 1

// Manifest identifies one CLI run: what ran, with which inputs, on which
// toolchain and machine shape, from which commit. Every long-running command
// attaches one to its JSONL/JSON outputs so results stay attributable after
// the terminal scrollback is gone.
type Manifest struct {
	SchemaVersion int      `json:"schema_version"`
	Command       string   `json:"command"`
	Args          []string `json:"args,omitempty"`
	StartedAt     string   `json:"started_at"` // RFC3339, UTC
	// WallMs is filled by Finish at the end of the run; 0 while running.
	WallMs float64 `json:"wall_ms,omitempty"`
	// Seed and SpecHash pin the run's deterministic inputs, when it has any.
	Seed     *uint64 `json:"seed,omitempty"`
	SpecHash string  `json:"spec_hash,omitempty"`

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	PID        int    `json:"pid,omitempty"`

	// GitSHA/GitDirty come from the binary's embedded VCS stamp; absent for
	// `go run`/`go test` builds, which are not stamped.
	GitSHA   string `json:"git_sha,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`

	start time.Time
}

// NewManifest builds a manifest for the named command, stamping the
// environment and start time.
func NewManifest(command string, args []string) *Manifest {
	now := time.Now()
	m := &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Command:       command,
		Args:          args,
		StartedAt:     now.UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		PID:           os.Getpid(),
		start:         now,
	}
	m.GitSHA, m.GitDirty = vcsStamp()
	return m
}

// SetSeed records the run's top-level seed.
func (m *Manifest) SetSeed(seed uint64) { s := seed; m.Seed = &s }

// Finish stamps the run's wall time and returns m for chaining.
func (m *Manifest) Finish() *Manifest {
	m.WallMs = float64(time.Since(m.start)) / float64(time.Millisecond)
	return m
}

// JSONLine renders the manifest as a single JSON line wrapped in a
// {"manifest": ...} envelope, the form prepended to JSONL streams so trial
// records and the manifest can share a file without ambiguity.
func (m *Manifest) JSONLine() ([]byte, error) {
	data, err := json.Marshal(struct {
		Manifest *Manifest `json:"manifest"`
	}{m})
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// vcsStamp extracts the commit SHA and dirty bit from the binary's build
// info, when the toolchain embedded one.
func vcsStamp() (sha string, dirty bool) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			sha = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return sha, dirty
}

// SpecHash returns a short stable fingerprint of any JSON-marshalable value
// — the campaign/instance spec hash recorded in manifests. Marshaling a Go
// struct emits fields in declaration order, so equal specs hash equally.
func SpecHash(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
