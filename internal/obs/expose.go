package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4): a HELP and TYPE header per family,
// then one sample line per child (or per bucket, for histograms). Families
// are emitted in name order and children in label-value order, so the
// output for a fixed set of values is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots the child list in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	cs := append([]*child(nil), f.children...)
	f.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool {
		return labelKey(cs[i].values) < labelKey(cs[j].values)
	})
	return cs
}

func (f *family) writePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
		return err
	}
	for _, c := range f.sortedChildren() {
		switch m := c.metric.(type) {
		case *Counter:
			if err := writeSample(w, f.name, "", f.labels, c.values, "", float64(m.Value())); err != nil {
				return err
			}
		case *Gauge:
			if err := writeSample(w, f.name, "", f.labels, c.values, "", m.Value()); err != nil {
				return err
			}
		case *Histogram:
			cum := int64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				if err := writeSample(w, f.name, "_bucket", f.labels, c.values, formatFloat(bound), float64(cum)); err != nil {
					return err
				}
			}
			cum += m.counts[len(m.bounds)].Load()
			if err := writeSample(w, f.name, "_bucket", f.labels, c.values, "+Inf", float64(cum)); err != nil {
				return err
			}
			if err := writeSample(w, f.name, "_sum", f.labels, c.values, "", m.Sum()); err != nil {
				return err
			}
			if err := writeSample(w, f.name, "_count", f.labels, c.values, "", float64(m.Count())); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one sample line; le is the histogram bucket bound label
// ("" for none).
func writeSample(w io.Writer, name, suffix string, labels, values []string, le string, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(`le="`)
			sb.WriteString(le)
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// formatFloat renders v the way Prometheus clients expect: shortest
// round-trip representation, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Snapshot is the JSON form of a registry's current state, the payload of
// -metrics-dump files and the /metrics.json endpoint.
type Snapshot struct {
	// Manifest identifies the run the metrics belong to, when the caller
	// attached one.
	Manifest *Manifest        `json:"manifest,omitempty"`
	Metrics  []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one family's state.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Labels []string         `json:"labels,omitempty"`
	Values []SampleSnapshot `json:"values"`
}

// SampleSnapshot is one child's value.
type SampleSnapshot struct {
	LabelValues []string      `json:"label_values,omitempty"`
	Value       float64       `json:"value"`
	Histogram   *HistSnapshot `json:"histogram,omitempty"`
}

// HistSnapshot is a histogram child's bucket state. Counts are
// per-bucket (not cumulative); the last entry is the +Inf overflow.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		ms := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help, Labels: f.labels}
		for _, c := range f.sortedChildren() {
			s := SampleSnapshot{LabelValues: c.values}
			switch m := c.metric.(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				hs := &HistSnapshot{
					Bounds: m.bounds,
					Counts: make([]int64, len(m.counts)),
					Sum:    m.Sum(),
					Count:  m.Count(),
				}
				// Quantiles of an empty histogram are NaN (and of an empty
				// bound set +Inf), neither of which JSON can carry.
				if hs.Count > 0 && len(m.bounds) > 0 {
					hs.P50 = m.Quantile(0.50)
					hs.P95 = m.Quantile(0.95)
				}
				for i := range m.counts {
					hs.Counts[i] = m.counts[i].Load()
				}
				s.Histogram = hs
				s.Value = float64(hs.Count)
			}
			ms.Values = append(ms.Values, s)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// WriteJSON writes the snapshot (with the optional manifest attached) as
// indented JSON.
func (r *Registry) WriteJSON(w io.Writer, m *Manifest) error {
	snap := r.Snapshot()
	snap.Manifest = m
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
