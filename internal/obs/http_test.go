package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "t").Add(7)
	m := NewManifest("httptest", nil)
	s, err := Serve("127.0.0.1:0", r, m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, frag := range []string{"# HELP served_total", "# TYPE served_total counter", "served_total 7"} {
		if !strings.Contains(body, frag) {
			t.Fatalf("/metrics missing %q:\n%s", frag, body)
		}
	}

	body, ctype = get("/metrics.json")
	if ctype != "application/json" {
		t.Fatalf("/metrics.json content type %q", ctype)
	}
	if !strings.Contains(body, `"served_total"`) || !strings.Contains(body, `"manifest"`) {
		t.Fatalf("/metrics.json missing metric or manifest:\n%s", body)
	}

	body, _ = get("/manifest.json")
	if !strings.Contains(body, `"command":"httptest"`) {
		t.Fatalf("/manifest.json wrong payload: %s", body)
	}

	// The pprof index and expvar must be mounted.
	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%.200s", body)
	}
	if body, _ = get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing memstats:\n%.200s", body)
	}
}
