// Package obs is the dependency-free telemetry core: atomic counters,
// gauges and fixed-bucket histograms whose hot-path updates are
// allocation-free, grouped into labeled families inside a Registry that can
// expose itself in Prometheus text format or as a JSON snapshot.
//
// The design splits metric *resolution* (naming a family, resolving a label
// set to a child — which may allocate, and is done once at setup) from
// metric *updates* (Inc/Add/Observe on the resolved handle — a handful of
// atomic operations, never an allocation). That split is what lets
// instrumentation live inside the zero-alloc SPF/delta hot paths without
// breaking their AllocsPerRun pins.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be >= 0 for the Prometheus contract; obs does not
// enforce it). Allocation-free.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64. The zero
// value is usable.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Allocation-free.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d. Allocation-free.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — running-max
// tracking (e.g. worst failure-state cost seen). Allocation-free.
func (g *Gauge) SetMax(v float64) {
	if math.IsNaN(v) {
		return // a running max ignores undefined observations
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMin lowers the gauge to v if v is below the current value — running-min
// tracking (e.g. best portfolio objective seen). The zero value of a Gauge
// is 0, which SetMin never raises; callers tracking a minimum of positive
// observations should Set an identity (+Inf) before the first SetMin.
// Allocation-free.
func (g *Gauge) SetMin(v float64) {
	if math.IsNaN(v) {
		return // a running min ignores undefined observations
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are cumulative
// upper bounds in the Prometheus style; an implicit +Inf bucket catches the
// rest. Observe is allocation-free; the buckets are fixed at construction.
type Histogram struct {
	bounds []float64      // ascending upper bounds, len k
	counts []atomic.Int64 // len k+1; counts[k] is the +Inf overflow
	count  atomic.Int64
	sum    Gauge // atomic float64 accumulator
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records v. Allocation-free: a binary search over the fixed bounds
// plus three atomic updates.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// attributing each bucket's mass to its upper bound (+Inf maps to the
// largest finite bound). Coarse by construction; meant for snapshots and
// summaries, not for precision statistics.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n ascending bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefBuckets are general-purpose latency buckets in seconds, 100µs to ~100s.
var DefBuckets = ExpBuckets(1e-4, math.Sqrt(10), 13)

// metric kinds, also the Prometheus TYPE strings.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with a fixed label-name set and one child per
// distinct label-value tuple.
type family struct {
	name   string
	help   string
	typ    string
	labels []string // label names; empty for unlabeled metrics

	bounds []float64 // histogram families only

	mu       sync.Mutex
	children []*child
	byKey    map[string]*child
}

// child is one (labelValues -> metric) binding inside a family.
type child struct {
	values []string
	metric any // *Counter | *Gauge | *Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry package-level helpers and the
// built-in instrumentation register into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family resolves or creates a family, enforcing name/type/label agreement.
func (r *Registry) family(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		byKey:  make(map[string]*child),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// resolve returns the child for the given label values, creating it with
// mk on first use. Resolution may allocate; updates on the returned metric
// never do.
func (f *family) resolve(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c.metric
	}
	c := &child{values: append([]string(nil), values...), metric: mk()}
	f.children = append(f.children, c)
	f.byKey[key] = c
	return c.metric
}

// labelKey joins values with an unprintable separator.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	k := values[0]
	for _, v := range values[1:] {
		k += "\x00" + v
	}
	return k
}

// Counter returns the unlabeled counter name, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.resolve(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the unlabeled gauge name, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.resolve(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the unlabeled histogram name with the given upper
// bounds, registering it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, bounds)
	return f.resolve(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or resolves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labels, nil)}
}

// With resolves one label-value tuple to its counter. Cache the handle;
// resolution may allocate, updates do not.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.resolve(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or resolves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labels, nil)}
}

// With resolves one label-value tuple to its gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.resolve(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a labeled histogram family; every child shares the
// family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or resolves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, typeHistogram, labels, bounds)}
}

// With resolves one label-value tuple to its histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.resolve(values, func() any { return newHistogram(f.bounds) }).(*Histogram)
}
