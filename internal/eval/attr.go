package eval

import (
	"dualtopo/internal/graph"
)

// Attribution apportions an evaluated routing's objective onto individual
// arcs, giving the search a per-arc answer to "which links is the incumbent
// paying for?". The guided candidate generator sorts on these scores instead
// of the blind rank ordering, so moves concentrate on the arcs that actually
// carry the cost.
//
// Scores are relative: only their ordering matters to the search. The
// buffers are owned by the Attribution and reused across Attribute calls.
type Attribution struct {
	// HScore ranks arcs by their contribution to the primary objective:
	// per-arc ΦH for load-based runs; for SLA runs, the violation mass — the
	// summed penalty of every violating high-priority pair whose shortest
	// paths can traverse the arc — falling back to the per-arc Eq. (3) delay
	// when no pair violates.
	HScore []float64
	// LScore ranks arcs by their contribution to ΦL (per-arc ΦL).
	LScore []float64

	// DAG-walk scratch, reused across calls.
	visited []int32
	epoch   int32
	queue   []graph.NodeID
}

// Attribute fills a with per-arc scores for r. r must be the evaluator's
// most recent full evaluation (so that, for SLA instances, the evaluator's
// high-priority plan trees still sit at r's weights — the violation walk
// follows those DAGs). The search maintains exactly this invariant for its
// incumbent solution.
func (e *Evaluator) Attribute(r *Result, a *Attribution) {
	n := e.g.NumEdges()
	if cap(a.HScore) < n {
		a.HScore = make([]float64, n)
		a.LScore = make([]float64, n)
	}
	a.HScore = a.HScore[:n]
	a.LScore = a.LScore[:n]
	copy(a.LScore, r.LinkPhiL)

	if r.kind != SLABased || r.Violations == 0 {
		if r.kind == SLABased {
			// No violating pair: rank by delay, the primary sort key the
			// blind search uses, so guidance still points at the slow arcs.
			copy(a.HScore, r.LinkDelay)
		} else {
			copy(a.HScore, r.LinkPhiH)
		}
		return
	}

	// SLA with violations: stamp each violating pair's penalty onto every
	// arc reachable from its source in the destination tree's ECMP DAG —
	// exactly the arcs whose weight or load could move the pair's delay.
	for i := range a.HScore {
		a.HScore[i] = 0
	}
	if cap(a.visited) < e.g.NumNodes() {
		a.visited = make([]int32, e.g.NumNodes())
	}
	a.visited = a.visited[:e.g.NumNodes()]
	pair := 0
	for di, dest := range e.hpDests {
		t := e.planH.Tree(dest)
		for _, src := range e.hpSrcs[di] {
			pen := e.opts.SLA.PairPenalty(r.PairDelays[pair])
			pair++
			if pen <= 0 {
				continue
			}
			// BFS over the DAG from src: each node enqueued once, so each
			// arc (owned by its unique tail) is scored once per pair.
			a.epoch++
			a.queue = append(a.queue[:0], src)
			a.visited[src] = a.epoch
			for len(a.queue) > 0 {
				u := a.queue[len(a.queue)-1]
				a.queue = a.queue[:len(a.queue)-1]
				for _, id := range t.Next(u) {
					a.HScore[id] += pen
					if v := e.g.CSR().To[id]; a.visited[v] != a.epoch {
						a.visited[v] = a.epoch
						a.queue = append(a.queue, v)
					}
				}
			}
		}
	}
}
