// Package eval computes the paper's objectives for a candidate routing: it
// routes the high-priority matrix, derives residual capacities under strict
// priority queueing (§3), routes the low-priority matrix, and produces the
// solution-level lexicographic cost plus the per-arc metrics the search
// heuristics sort on.
//
// Three evaluation modes mirror how the searches use it:
//
//   - EvaluateSTR: both classes follow one weight setting (one SPF pass).
//   - EvaluateDTR: each class follows its own weight setting.
//   - ObjectiveH / ObjectiveL: fast partial re-evaluations for the FindH and
//     FindL inner loops, which change only one class's weights at a time.
package eval

import (
	"fmt"
	"math"

	"dualtopo/internal/cost"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/traffic"
)

// Kind selects the objective family of §3.
type Kind int

const (
	// LoadBased optimizes A = ⟨ΦH, ΦL⟩ (Eq. 2).
	LoadBased Kind = iota
	// SLABased optimizes S = ⟨Λ, ΦL⟩ (Eq. 5).
	SLABased
)

func (k Kind) String() string {
	switch k {
	case LoadBased:
		return "load"
	case SLABased:
		return "sla"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures an Evaluator.
type Options struct {
	Kind Kind
	// SLA parameters; only consulted when Kind == SLABased.
	SLA cost.SLA
	// ExactDelay switches Eq. (3) from the paper's ΦH,l/Cl approximation to
	// the exact M/M/1 term Hl/(Cl−Hl). Default false (paper's choice).
	ExactDelay bool
}

// DefaultOptions returns load-based evaluation.
func DefaultOptions() Options { return Options{Kind: LoadBased, SLA: cost.DefaultSLA()} }

// Result holds every metric of one evaluated routing. Slices are owned by
// the Result and remain valid indefinitely.
type Result struct {
	// PhiH and PhiL are the load-based class costs (Eq. 1 summed over arcs);
	// PhiL is charged against residual capacity.
	PhiH, PhiL float64
	// Lambda is the total SLA penalty (Eq. 4); zero for load-based runs.
	Lambda float64
	// Violations counts high-priority pairs exceeding the SLA bound.
	Violations int
	// ViolationMass is the total high-priority demand (Mbps) carried by
	// those violating pairs — the traffic actually outside its SLA, the
	// quantity churn replay integrates over time; zero for load-based runs.
	ViolationMass float64

	// Per-arc metrics, indexed by EdgeID.
	HLoads, LLoads     []float64
	Residual           []float64
	LinkPhiH, LinkPhiL []float64
	LinkDelay          []float64 // Eq. 3 per-arc delay; SLA runs only

	// PairDelays lists the expected end-to-end delay of every high-priority
	// demand, parallel to Evaluator.HighPriorityPairs(); SLA runs only.
	PairDelays []float64

	kind Kind
}

// Objective returns the solution-level lexicographic cost: ⟨ΦH, ΦL⟩ for
// load-based evaluation, ⟨Λ, ΦL⟩ for SLA-based.
func (r *Result) Objective() cost.Lex {
	if r.kind == SLABased {
		return cost.Lex{Primary: r.Lambda, Secondary: r.PhiL}
	}
	return cost.Lex{Primary: r.PhiH, Secondary: r.PhiL}
}

// LinkCost returns the per-arc lexicographic cost FindH sorts on: ⟨ΦH,l,
// ΦL,l⟩ for load-based runs, ⟨Dl, ΦL,l⟩ for SLA-based (§4).
func (r *Result) LinkCost(id graph.EdgeID) cost.Lex {
	if r.kind == SLABased {
		return cost.Lex{Primary: r.LinkDelay[id], Secondary: r.LinkPhiL[id]}
	}
	return cost.Lex{Primary: r.LinkPhiH[id], Secondary: r.LinkPhiL[id]}
}

// UtilizationInto fills buf (reallocating only when too small) with per-arc
// total utilization (H+L)/C and returns it. Aggregators running once per
// trial per sweep point use this to avoid a per-call allocation.
func (r *Result) UtilizationInto(g *graph.Graph, buf []float64) []float64 {
	capacity := g.CSR().Capacity
	if len(buf) < len(r.HLoads) {
		buf = make([]float64, len(r.HLoads))
	}
	buf = buf[:len(r.HLoads)]
	for i := range buf {
		buf[i] = (r.HLoads[i] + r.LLoads[i]) / capacity[i]
	}
	return buf
}

// Utilization returns per-arc total utilization (H+L)/C in a fresh slice.
func (r *Result) Utilization(g *graph.Graph) []float64 {
	return r.UtilizationInto(g, nil)
}

// HUtilizationInto fills buf with per-arc high-priority utilization H/C.
func (r *Result) HUtilizationInto(g *graph.Graph, buf []float64) []float64 {
	capacity := g.CSR().Capacity
	if len(buf) < len(r.HLoads) {
		buf = make([]float64, len(r.HLoads))
	}
	buf = buf[:len(r.HLoads)]
	for i := range buf {
		buf[i] = r.HLoads[i] / capacity[i]
	}
	return buf
}

// HUtilization returns per-arc high-priority utilization H/C in a fresh
// slice.
func (r *Result) HUtilization(g *graph.Graph) []float64 {
	return r.HUtilizationInto(g, nil)
}

// AvgUtilization is the mean of Utilization — the paper's network-load
// x-axis ("AD"). It allocates nothing once the graph's CSR snapshot is
// built (any routed graph has one).
func (r *Result) AvgUtilization(g *graph.Graph) float64 {
	capacity := g.CSR().Capacity
	sum := 0.0
	for i := range r.HLoads {
		sum += (r.HLoads[i] + r.LLoads[i]) / capacity[i]
	}
	return sum / float64(len(r.HLoads))
}

// MaxUtilization is the maximum of Utilization (Fig. 9c). It allocates
// nothing once the graph's CSR snapshot is built.
func (r *Result) MaxUtilization(g *graph.Graph) float64 {
	capacity := g.CSR().Capacity
	max := 0.0
	for i, h := range r.HLoads {
		if u := (h + r.LLoads[i]) / capacity[i]; u > max {
			max = u
		}
	}
	return max
}

// Pair identifies one high-priority source-destination demand.
type Pair struct {
	Src, Dst graph.NodeID
}

// Evaluator evaluates weight settings for one (graph, TH, TL, options)
// problem instance. It is not safe for concurrent use; use Clone to give
// each goroutine its own.
type Evaluator struct {
	g    *graph.Graph
	th   *traffic.Matrix
	tl   *traffic.Matrix
	opts Options

	planH   *spf.Plan      // routes TH (DTR high topology)
	planL   *spf.Plan      // routes TL (DTR low topology)
	planSTR *spf.MultiPlan // routes both under one weight set

	capacity  []float64
	propDelay []float64

	hpDests []graph.NodeID // destinations receiving high-priority traffic
	hpSrcs  [][]graph.NodeID
	pairs   []Pair

	// scratch buffers for the fast Objective* paths
	scratchResidual []float64
	scratchDelay    []float64

	// Incremental evaluation state backing the Objective*Delta paths;
	// created lazily so full-evaluation users pay nothing. Never shared by
	// Clone.
	deltaH, deltaL, deltaSTR *deltaEval
}

// treeSource is any routed plan that can hand back per-destination trees.
type treeSource interface {
	Tree(graph.NodeID) *spf.Tree
	DelaysTo(graph.NodeID, []float64) []float64
}

// New builds an Evaluator. The graph must be strongly connected and the
// matrices sized to it.
func New(g *graph.Graph, th, tl *traffic.Matrix, opts Options) (*Evaluator, error) {
	if th.Size() != g.NumNodes() || tl.Size() != g.NumNodes() {
		return nil, fmt.Errorf("eval: matrix size (%d,%d) does not match graph (%d nodes)",
			th.Size(), tl.Size(), g.NumNodes())
	}
	if err := g.RequireStronglyConnected(); err != nil {
		return nil, err
	}
	e := &Evaluator{
		g:    g,
		th:   th,
		tl:   tl,
		opts: opts,

		planH:   spf.NewPlan(g, th),
		planL:   spf.NewPlan(g, tl),
		planSTR: spf.NewMultiPlan(g, th, tl),

		capacity:  make([]float64, g.NumEdges()),
		propDelay: make([]float64, g.NumEdges()),

		scratchResidual: make([]float64, g.NumEdges()),
		scratchDelay:    make([]float64, g.NumEdges()),
	}
	for _, edge := range g.Edges() {
		e.capacity[edge.ID] = edge.Capacity
		e.propDelay[edge.ID] = edge.Delay
	}
	e.hpDests = th.ActiveDestinations()
	e.hpSrcs = make([][]graph.NodeID, len(e.hpDests))
	for i, d := range e.hpDests {
		for s := 0; s < g.NumNodes(); s++ {
			if th.At(graph.NodeID(s), d) > 0 {
				e.hpSrcs[i] = append(e.hpSrcs[i], graph.NodeID(s))
				e.pairs = append(e.pairs, Pair{graph.NodeID(s), d})
			}
		}
	}
	return e, nil
}

// Clone returns an independent Evaluator sharing the immutable precomputed
// instance state — graph, matrices, capacity/delay vectors, and the
// high-priority pair/destination index — while allocating fresh routing
// plans and scratch buffers. Unlike rebuilding via New, it neither re-checks
// strong connectivity nor re-scans the matrices, so pooled search workers
// clone in O(arcs) instead of O(nodes²).
func (e *Evaluator) Clone() *Evaluator {
	return &Evaluator{
		g:    e.g,
		th:   e.th,
		tl:   e.tl,
		opts: e.opts,

		planH:   e.planH.CloneState(),
		planL:   e.planL.CloneState(),
		planSTR: e.planSTR.CloneState(),

		capacity:  e.capacity,
		propDelay: e.propDelay,

		hpDests: e.hpDests,
		hpSrcs:  e.hpSrcs,
		pairs:   e.pairs,

		scratchResidual: make([]float64, e.g.NumEdges()),
		scratchDelay:    make([]float64, e.g.NumEdges()),
	}
}

// SetRouteWorkers bounds the SPF worker pool used by this evaluator's full
// routing passes (EvaluateSTR/EvaluateDTR and the Objective* fast paths):
// destinations are sharded across per-worker SPF computers and reduced in
// destination order, so results stay bitwise-identical to sequential
// routing. n == 1 restores sequential routing; n == 0 picks a block-aware
// automatic pool size from the instance size and GOMAXPROCS (sequential on
// small instances). Callers that evaluate on
// evaluator pools should keep pool members sequential and scope parallel
// routing to single-threaded phases (e.g. a search's full refresh), or the
// pools oversubscribe the machine.
func (e *Evaluator) SetRouteWorkers(n int) {
	e.planH.SetWorkers(n)
	e.planL.SetWorkers(n)
	e.planSTR.SetWorkers(n)
}

// ResetDelta discards the incremental evaluation state backing the
// Objective*Delta paths, forcing the next delta call to re-prime with a full
// route. Searches call this when they start so that a reused Evaluator
// cannot leak a previous run's router position into the changed-arc
// contract (which would silently desynchronize delta from full evaluation).
func (e *Evaluator) ResetDelta() { e.deltaH, e.deltaL, e.deltaSTR = nil, nil, nil }

// Graph returns the underlying graph.
func (e *Evaluator) Graph() *graph.Graph { return e.g }

// Options returns the evaluation options.
func (e *Evaluator) Options() Options { return e.opts }

// Matrices returns the high- and low-priority traffic matrices.
func (e *Evaluator) Matrices() (th, tl *traffic.Matrix) { return e.th, e.tl }

// HighPriorityPairs lists the SD pairs carrying high-priority traffic, in
// the order Result.PairDelays uses.
func (e *Evaluator) HighPriorityPairs() []Pair { return e.pairs }

// HPlan exposes the high-priority routing plan for read-only tree
// inspection: after a full evaluation its per-destination trees sit at the
// weights of that evaluation, which is what the search's routing-invariance
// bounds and guided candidate generation consult. Callers must not route on
// the returned plan; doing so desynchronizes it from the evaluator's next
// fast-path evaluation.
func (e *Evaluator) HPlan() *spf.Plan { return e.planH }

// LPlan is HPlan for the low-priority class.
func (e *Evaluator) LPlan() *spf.Plan { return e.planL }

// EvaluateSTR evaluates single-topology routing: both classes routed on w.
func (e *Evaluator) EvaluateSTR(w spf.Weights) (*Result, error) {
	if err := e.planSTR.Route(w, e.th, e.tl); err != nil {
		return nil, err
	}
	return e.finish(e.planSTR.Loads[0], e.planSTR.Loads[1], e.planSTR)
}

// EvaluateDTR evaluates dual-topology routing: the high-priority class
// follows wH, the low-priority class follows wL.
func (e *Evaluator) EvaluateDTR(wH, wL spf.Weights) (*Result, error) {
	if err := e.planH.Route(wH, e.th); err != nil {
		return nil, err
	}
	if err := e.planL.Route(wL, e.tl); err != nil {
		return nil, err
	}
	return e.finish(e.planH.Loads, e.planL.Loads, e.planH)
}

// finish derives all costs from routed per-arc loads. trees must be the
// plan that routed the high-priority class (SLA delays follow its DAGs).
func (e *Evaluator) finish(hLoads, lLoads []float64, trees treeSource) (*Result, error) {
	n := e.g.NumEdges()
	r := &Result{
		HLoads:   append([]float64(nil), hLoads...),
		LLoads:   append([]float64(nil), lLoads...),
		Residual: make([]float64, n),
		LinkPhiH: make([]float64, n),
		LinkPhiL: make([]float64, n),
		kind:     e.opts.Kind,
	}
	for i := 0; i < n; i++ {
		r.LinkPhiH[i] = cost.Phi(hLoads[i], e.capacity[i])
		r.Residual[i] = cost.Residual(e.capacity[i], hLoads[i])
		r.LinkPhiL[i] = cost.Phi(lLoads[i], r.Residual[i])
		r.PhiH += r.LinkPhiH[i]
		r.PhiL += r.LinkPhiL[i]
	}
	if e.opts.Kind == SLABased {
		r.LinkDelay = make([]float64, n)
		e.fillLinkDelays(hLoads, r.LinkPhiH, r.LinkDelay)
		r.PairDelays = make([]float64, 0, len(e.pairs))
		for i, dest := range e.hpDests {
			xi := trees.DelaysTo(dest, r.LinkDelay)
			for _, src := range e.hpSrcs[i] {
				d := xi[src]
				r.PairDelays = append(r.PairDelays, d)
				if pen := e.opts.SLA.PairPenalty(d); pen > 0 {
					r.Lambda += pen
					r.Violations++
					r.ViolationMass += e.th.At(src, dest)
				}
			}
		}
	}
	return r, nil
}

// linkDelayAt computes the Eq. (3) delay of one arc from its high-priority
// load and per-arc ΦH — the unit the delta path re-scores per moved arc.
func (e *Evaluator) linkDelayAt(i int, hLoad, linkPhiH float64) float64 {
	if e.opts.ExactDelay {
		d := e.opts.SLA.LinkDelayExact(hLoad, e.capacity[i], e.propDelay[i])
		if !math.IsInf(d, 1) {
			return d
		}
		// Keep the search objective finite on overloaded links by falling
		// back to the (always finite) approximation.
	}
	return e.opts.SLA.LinkDelayApprox(linkPhiH, e.capacity[i], e.propDelay[i])
}

// fillLinkDelays computes Eq. (3) per-arc delays into out.
func (e *Evaluator) fillLinkDelays(hLoads, linkPhiH, out []float64) {
	for i := range out {
		out[i] = e.linkDelayAt(i, hLoads[i], linkPhiH[i])
	}
}

// EvaluateHWithLLoads produces a full Result after a change to the
// high-priority weights only: the high-priority class is re-routed under wH
// while the low-priority per-arc loads are taken from lLoads (valid because
// WL did not change). This is the accept-refresh step of FindH.
func (e *Evaluator) EvaluateHWithLLoads(wH spf.Weights, lLoads []float64) (*Result, error) {
	if err := e.planH.Route(wH, e.th); err != nil {
		return nil, err
	}
	return e.finish(e.planH.Loads, lLoads, e.planH)
}

// EvaluateLWithBase produces a full Result after a change to the
// low-priority weights only: the low-priority class is re-routed under wL
// while all high-priority state (loads, residuals, delays, penalties) is
// carried over from base. This is the accept-refresh step of FindL.
func (e *Evaluator) EvaluateLWithBase(wL spf.Weights, base *Result) (*Result, error) {
	if err := e.planL.Route(wL, e.tl); err != nil {
		return nil, err
	}
	n := e.g.NumEdges()
	r := &Result{
		PhiH:       base.PhiH,
		Lambda:     base.Lambda,
		Violations: base.Violations,
		HLoads:     append([]float64(nil), base.HLoads...),
		LLoads:     append([]float64(nil), e.planL.Loads...),
		Residual:   append([]float64(nil), base.Residual...),
		LinkPhiH:   append([]float64(nil), base.LinkPhiH...),
		LinkPhiL:   make([]float64, n),
		kind:       e.opts.Kind,
	}
	if base.LinkDelay != nil {
		r.LinkDelay = append([]float64(nil), base.LinkDelay...)
	}
	if base.PairDelays != nil {
		r.PairDelays = append([]float64(nil), base.PairDelays...)
	}
	for i := 0; i < n; i++ {
		r.LinkPhiL[i] = cost.Phi(r.LLoads[i], r.Residual[i])
		r.PhiL += r.LinkPhiL[i]
	}
	return r, nil
}

// STRObjective is the STR-search fast path: both classes routed under w,
// returning only the solution costs (no per-arc slices are retained).
type STRObjective struct {
	Lex        cost.Lex
	PhiH, PhiL float64
	Lambda     float64
	Violations int
}

// ObjectiveSTR evaluates w for both classes without building a full Result.
func (e *Evaluator) ObjectiveSTR(w spf.Weights) (STRObjective, error) {
	if err := e.planSTR.Route(w, e.th, e.tl); err != nil {
		return STRObjective{}, err
	}
	hLoads, lLoads := e.planSTR.Loads[0], e.planSTR.Loads[1]
	var o STRObjective
	for i := range hLoads {
		linkPhiH := cost.Phi(hLoads[i], e.capacity[i])
		o.PhiH += linkPhiH
		resid := cost.Residual(e.capacity[i], hLoads[i])
		o.PhiL += cost.Phi(lLoads[i], resid)
		if e.opts.Kind == SLABased {
			e.scratchResidual[i] = linkPhiH
		}
	}
	if e.opts.Kind == SLABased {
		e.fillLinkDelays(hLoads, e.scratchResidual, e.scratchDelay)
		for i, dest := range e.hpDests {
			xi := e.planSTR.DelaysTo(dest, e.scratchDelay)
			for _, src := range e.hpSrcs[i] {
				if pen := e.opts.SLA.PairPenalty(xi[src]); pen > 0 {
					o.Lambda += pen
					o.Violations++
				}
			}
		}
		o.Lex = cost.Lex{Primary: o.Lambda, Secondary: o.PhiL}
	} else {
		o.Lex = cost.Lex{Primary: o.PhiH, Secondary: o.PhiL}
	}
	return o, nil
}

// ObjectiveH is the FindH fast path: route only the high-priority class
// under wH and compute the solution objective, reusing the low-priority
// loads of the incumbent solution (WL unchanged implies L routing
// unchanged; only the residual capacities move).
func (e *Evaluator) ObjectiveH(wH spf.Weights, lLoads []float64) (cost.Lex, error) {
	if err := e.planH.Route(wH, e.th); err != nil {
		return cost.Lex{}, err
	}
	hLoads := e.planH.Loads
	phiH, phiL := 0.0, 0.0
	for i := range hLoads {
		linkPhiH := cost.Phi(hLoads[i], e.capacity[i])
		phiH += linkPhiH
		resid := cost.Residual(e.capacity[i], hLoads[i])
		phiL += cost.Phi(lLoads[i], resid)
		if e.opts.Kind == SLABased {
			e.scratchResidual[i] = linkPhiH // stash per-arc ΦH for delays
		}
	}
	if e.opts.Kind != SLABased {
		return cost.Lex{Primary: phiH, Secondary: phiL}, nil
	}
	e.fillLinkDelays(hLoads, e.scratchResidual, e.scratchDelay)
	lambda := 0.0
	for i, dest := range e.hpDests {
		xi := e.planH.DelaysTo(dest, e.scratchDelay)
		for _, src := range e.hpSrcs[i] {
			lambda += e.opts.SLA.PairPenalty(xi[src])
		}
	}
	return cost.Lex{Primary: lambda, Secondary: phiL}, nil
}

// ObjectiveL is the FindL fast path: route only the low-priority class under
// wL against the residual capacities of the incumbent high-priority routing
// and return its ΦL. The primary objective is unaffected by WL.
func (e *Evaluator) ObjectiveL(wL spf.Weights, residual []float64) (float64, error) {
	if err := e.planL.Route(wL, e.tl); err != nil {
		return 0, err
	}
	phiL := 0.0
	for i, l := range e.planL.Loads {
		phiL += cost.Phi(l, residual[i])
	}
	return phiL, nil
}
