package eval

import (
	"math/rand/v2"
	"testing"

	"dualtopo/internal/cost"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/traffic"
)

// deltaInstance builds a strongly connected random instance. Chord arcs
// (IDs >= 2*nodes) may be disabled without disconnecting the ring, letting
// the test exercise failure transitions through the delta path.
func deltaInstance(t *testing.T, seed uint64, opts Options) (*Evaluator, int, int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 5))
	nodes := 16
	g := graph.New(nodes)
	for u := 0; u < nodes; u++ {
		g.AddLink(graph.NodeID(u), graph.NodeID((u+1)%nodes), 80+40*rng.Float64(), 1+3*rng.Float64())
	}
	for c := 0; c < 24; c++ {
		u := graph.NodeID(rng.IntN(nodes))
		v := graph.NodeID(rng.IntN(nodes))
		if u == v || g.HasLink(u, v) {
			continue
		}
		g.AddLink(u, v, 80+40*rng.Float64(), 1+3*rng.Float64())
	}
	th := traffic.NewMatrix(nodes)
	tl := traffic.NewMatrix(nodes)
	for p := 0; p < nodes*3; p++ {
		s := graph.NodeID(rng.IntN(nodes))
		d := graph.NodeID(rng.IntN(nodes))
		if s == d {
			continue
		}
		tl.Add(s, d, 2+8*rng.Float64())
		if p%3 == 0 {
			th.Add(s, d, 1+4*rng.Float64())
		}
	}
	e, err := New(g, th, tl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, g.NumEdges(), 2 * nodes
}

// TestObjectiveDeltaMatchesFull drives random weight-change sequences
// through ObjectiveHDelta / ObjectiveLDelta / ObjectiveSTRDelta and asserts
// exact (==) agreement with the full ObjectiveH / ObjectiveL / ObjectiveSTR
// evaluations at every step, across objective kinds and delay models.
func TestObjectiveDeltaMatchesFull(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"load", DefaultOptions()},
		{"sla", Options{Kind: SLABased, SLA: defaultSLAForTest()}},
		{"sla-exact", Options{Kind: SLABased, SLA: defaultSLAForTest(), ExactDelay: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, m, ringArcs := deltaInstance(t, 42, tc.opts)
			rng := rand.New(rand.NewPCG(100, 7))
			wH := randomWeightsFor(rng, m)
			wL := randomWeightsFor(rng, m)
			base, err := e.EvaluateDTR(wH, wL)
			if err != nil {
				t.Fatal(err)
			}

			mutate := func(w spf.Weights) []graph.EdgeID {
				var changed []graph.EdgeID
				for k := 0; k < 1+rng.IntN(3); k++ {
					id := graph.EdgeID(rng.IntN(m))
					switch {
					case int(id) >= ringArcs && rng.IntN(8) == 0 && w[id] != spf.Disabled:
						w[id] = spf.Disabled
					case w[id] == spf.Disabled:
						w[id] = 1 + rng.IntN(30)
					default:
						w[id] = 1 + rng.IntN(30)
					}
					changed = append(changed, id)
				}
				return changed
			}

			for step := 0; step < 120; step++ {
				changedH := mutate(wH)
				gotH, err := e.ObjectiveHDelta(wH, changedH, base.LLoads)
				if err != nil {
					t.Fatalf("step %d: ObjectiveHDelta: %v", step, err)
				}
				wantH, err := e.ObjectiveH(wH, base.LLoads)
				if err != nil {
					t.Fatalf("step %d: ObjectiveH: %v", step, err)
				}
				if gotH != wantH {
					t.Fatalf("step %d: H delta %+v != full %+v", step, gotH, wantH)
				}

				changedL := mutate(wL)
				gotL, err := e.ObjectiveLDelta(wL, changedL, base.Residual)
				if err != nil {
					t.Fatalf("step %d: ObjectiveLDelta: %v", step, err)
				}
				wantL, err := e.ObjectiveL(wL, base.Residual)
				if err != nil {
					t.Fatalf("step %d: ObjectiveL: %v", step, err)
				}
				if gotL != wantL {
					t.Fatalf("step %d: L delta %v != full %v", step, gotL, wantL)
				}

				// Periodically move the incumbent, changing the external
				// lLoads/residual inputs the delta paths snapshot.
				if step%17 == 16 {
					base, err = e.EvaluateDTR(wH, wL)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestObjectiveSTRDeltaMatchesFull is the single-topology twin.
func TestObjectiveSTRDeltaMatchesFull(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"load", DefaultOptions()},
		{"sla", Options{Kind: SLABased, SLA: defaultSLAForTest()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, m, _ := deltaInstance(t, 7, tc.opts)
			rng := rand.New(rand.NewPCG(9, 9))
			w := randomWeightsFor(rng, m)
			for step := 0; step < 120; step++ {
				var changed []graph.EdgeID
				for k := 0; k < 1+rng.IntN(2); k++ {
					id := graph.EdgeID(rng.IntN(m))
					w[id] = 1 + rng.IntN(30)
					changed = append(changed, id)
				}
				got, err := e.ObjectiveSTRDelta(w, changed)
				if err != nil {
					t.Fatalf("step %d: ObjectiveSTRDelta: %v", step, err)
				}
				want, err := e.ObjectiveSTR(w)
				if err != nil {
					t.Fatalf("step %d: ObjectiveSTR: %v", step, err)
				}
				if got != want {
					t.Fatalf("step %d: STR delta %+v != full %+v", step, got, want)
				}
			}
		})
	}
}

// TestCloneDoesNotShareDeltaState primes delta state on the original and
// checks a clone evaluates independently and correctly.
func TestCloneDoesNotShareDeltaState(t *testing.T) {
	e, m, _ := deltaInstance(t, 3, DefaultOptions())
	rng := rand.New(rand.NewPCG(4, 4))
	w := randomWeightsFor(rng, m)
	wL := spf.Uniform(m)
	base, err := e.EvaluateDTR(w, wL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ObjectiveHDelta(w, nil, base.LLoads); err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	w2 := w.Clone()
	w2[0] = w2[0]%30 + 1
	got, err := c.ObjectiveHDelta(w2, []graph.EdgeID{0}, base.LLoads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ObjectiveH(w2, base.LLoads)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clone delta %+v != full %+v", got, want)
	}
}

func randomWeightsFor(rng *rand.Rand, m int) spf.Weights {
	w := make(spf.Weights, m)
	for i := range w {
		w[i] = 1 + rng.IntN(30)
	}
	return w
}

func defaultSLAForTest() (s cost.SLA) { return cost.DefaultSLA() }
