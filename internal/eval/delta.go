// Incremental objective evaluation: the Objective*Delta methods mirror
// ObjectiveH / ObjectiveL / ObjectiveSTR but take the set of arcs whose
// weights changed since the previous call, route incrementally through a
// spf.DeltaRouter, and re-score only the arcs whose loads (or externally
// supplied inputs) actually moved. Scalar objectives are then re-reduced
// over the maintained per-arc vectors in the same order the full paths use,
// so delta and full evaluation agree bitwise — a property the search's
// VerifyDelta debug mode and the equivalence tests assert.
package eval

import (
	"dualtopo/internal/cost"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/traffic"
)

// deltaEval bundles an incremental router with the per-arc score vectors it
// keeps current, plus snapshots of the external inputs (incumbent L loads or
// residuals) used at the last scoring so staleness is detected per arc.
type deltaEval struct {
	dr *spf.DeltaRouter

	linkPhiH []float64
	residual []float64
	linkPhiL []float64
	lSnap    []float64 // last lLoads scored against (H path)
	rSnap    []float64 // last residuals scored against (L path)

	// SLA state: per-arc Eq. (3) delays and, per high-priority destination,
	// the expected delay of each of its source pairs.
	linkDelay  []float64
	pairDelays [][]float64

	primed bool
}

func newDeltaEval(e *Evaluator, tms ...*traffic.Matrix) *deltaEval {
	m := e.g.NumEdges()
	d := &deltaEval{
		dr:       spf.NewDeltaRouter(e.g, tms...),
		linkPhiH: make([]float64, m),
		residual: make([]float64, m),
		linkPhiL: make([]float64, m),
		lSnap:    make([]float64, m),
		rSnap:    make([]float64, m),
	}
	if e.opts.Kind == SLABased {
		d.linkDelay = make([]float64, m)
		d.pairDelays = make([][]float64, len(e.hpDests))
		for i := range d.pairDelays {
			d.pairDelays[i] = make([]float64, len(e.hpSrcs[i]))
		}
	}
	return d
}

// route transitions the router to w. It returns the arcs whose loads moved
// (every arc on the priming full route) and whether this was a full
// recompute. Any error invalidates the state so the next call re-primes.
func (d *deltaEval) route(w spf.Weights, changed []graph.EdgeID) ([]graph.EdgeID, bool, error) {
	if !d.primed || !d.dr.Valid() {
		if err := d.dr.Route(w); err != nil {
			d.primed = false
			return nil, true, err
		}
		d.primed = true
		return nil, true, nil
	}
	moved, err := d.dr.Apply(w, changed)
	if err != nil {
		d.primed = false
		return nil, false, err
	}
	return moved, false, nil
}

// sumPair re-reduces the maintained ΦH and ΦL vectors in ascending arc
// order — the exact summation sequence ObjectiveH/ObjectiveSTR perform.
func (d *deltaEval) sumPair() (phiH, phiL float64) {
	for i := range d.linkPhiH {
		phiH += d.linkPhiH[i]
		phiL += d.linkPhiL[i]
	}
	return phiH, phiL
}

// ObjectiveHDelta is the incremental FindH fast path: wH must differ from
// the weights of the previous ObjectiveHDelta call only on the listed arcs
// (a superset is fine). The high-priority class is re-routed incrementally
// and only arcs whose H load moved — plus arcs where lLoads differs from the
// previous call — are re-scored. The first call (or any call after an
// error) primes with a full route. The result is bitwise-equal to
// ObjectiveH(wH, lLoads).
func (e *Evaluator) ObjectiveHDelta(wH spf.Weights, changed []graph.EdgeID, lLoads []float64) (cost.Lex, error) {
	if e.deltaH == nil {
		e.deltaH = newDeltaEval(e, e.th)
	}
	d := e.deltaH
	moved, full, err := d.route(wH, changed)
	if err != nil {
		return cost.Lex{}, err
	}
	hLoads := d.dr.Loads[0]
	sla := e.opts.Kind == SLABased
	if full {
		for i := range hLoads {
			d.linkPhiH[i] = cost.Phi(hLoads[i], e.capacity[i])
			d.residual[i] = cost.Residual(e.capacity[i], hLoads[i])
			d.linkPhiL[i] = cost.Phi(lLoads[i], d.residual[i])
			d.lSnap[i] = lLoads[i]
			if sla {
				d.linkDelay[i] = e.linkDelayAt(i, hLoads[i], d.linkPhiH[i])
			}
		}
		if sla {
			for di, dest := range e.hpDests {
				xi := d.dr.DelaysTo(dest, d.linkDelay)
				for si, src := range e.hpSrcs[di] {
					d.pairDelays[di][si] = xi[src]
				}
			}
		}
	} else {
		for _, a := range moved {
			d.linkPhiH[a] = cost.Phi(hLoads[a], e.capacity[a])
			d.residual[a] = cost.Residual(e.capacity[a], hLoads[a])
			d.linkPhiL[a] = cost.Phi(lLoads[a], d.residual[a])
			d.lSnap[a] = lLoads[a]
			if sla {
				d.linkDelay[a] = e.linkDelayAt(int(a), hLoads[a], d.linkPhiH[a])
			}
		}
		// The incumbent L loads are an external input: re-score arcs where
		// they moved since the last call (residuals there are unchanged).
		for i := range lLoads {
			if lLoads[i] != d.lSnap[i] {
				d.linkPhiL[i] = cost.Phi(lLoads[i], d.residual[i])
				d.lSnap[i] = lLoads[i]
			}
		}
		if sla {
			e.refreshDirtyDelays(d, moved)
		}
	}
	phiH, phiL := d.sumPair()
	if !sla {
		return cost.Lex{Primary: phiH, Secondary: phiL}, nil
	}
	lambda, _ := e.sumPenalties(d)
	return cost.Lex{Primary: lambda, Secondary: phiL}, nil
}

// refreshDirtyDelays recomputes expected pair delays for every destination
// whose delay inputs could have moved: a recomputed tree (different DAG), or
// a moved-load arc lying on the destination's ECMP DAG. Other destinations'
// stored delays are bitwise-unchanged because Tree.Delays reads only DAG
// arcs.
func (e *Evaluator) refreshDirtyDelays(d *deltaEval, moved []graph.EdgeID) {
	for di, dest := range e.hpDests {
		dirty := d.dr.TreeDirty(dest)
		if !dirty {
			for _, a := range moved {
				if d.dr.TreeUsesArc(dest, a) {
					dirty = true
					break
				}
			}
		}
		if !dirty {
			continue
		}
		xi := d.dr.DelaysTo(dest, d.linkDelay)
		for si, src := range e.hpSrcs[di] {
			d.pairDelays[di][si] = xi[src]
		}
	}
}

// sumPenalties reduces the stored pair delays to (Λ, violation count) in the
// destination-major order the full paths use.
func (e *Evaluator) sumPenalties(d *deltaEval) (lambda float64, violations int) {
	for di := range e.hpDests {
		for _, xi := range d.pairDelays[di] {
			if pen := e.opts.SLA.PairPenalty(xi); pen > 0 {
				lambda += pen
				violations++
			}
		}
	}
	return lambda, violations
}

// ObjectiveLDelta is the incremental FindL fast path: wL must differ from
// the previous ObjectiveLDelta call's weights only on the listed arcs. The
// low-priority class is re-routed incrementally and ΦL re-scored only where
// the L load — or the externally supplied residual — moved. Bitwise-equal to
// ObjectiveL(wL, residual).
func (e *Evaluator) ObjectiveLDelta(wL spf.Weights, changed []graph.EdgeID, residual []float64) (float64, error) {
	if e.deltaL == nil {
		e.deltaL = newDeltaEval(e, e.tl)
	}
	d := e.deltaL
	moved, full, err := d.route(wL, changed)
	if err != nil {
		return 0, err
	}
	lLoads := d.dr.Loads[0]
	if full {
		for i := range lLoads {
			d.linkPhiL[i] = cost.Phi(lLoads[i], residual[i])
			d.rSnap[i] = residual[i]
		}
	} else {
		for _, a := range moved {
			d.linkPhiL[a] = cost.Phi(lLoads[a], residual[a])
			d.rSnap[a] = residual[a]
		}
		for i := range residual {
			if residual[i] != d.rSnap[i] {
				d.linkPhiL[i] = cost.Phi(lLoads[i], residual[i])
				d.rSnap[i] = residual[i]
			}
		}
	}
	phiL := 0.0
	for i := range d.linkPhiL {
		phiL += d.linkPhiL[i]
	}
	return phiL, nil
}

// ObjectiveSTRDelta is the incremental STR fast path: w must differ from the
// previous ObjectiveSTRDelta call's weights only on the listed arcs. Both
// classes are re-routed incrementally over one tree set. Bitwise-equal to
// ObjectiveSTR(w).
func (e *Evaluator) ObjectiveSTRDelta(w spf.Weights, changed []graph.EdgeID) (STRObjective, error) {
	if e.deltaSTR == nil {
		e.deltaSTR = newDeltaEval(e, e.th, e.tl)
	}
	d := e.deltaSTR
	moved, full, err := d.route(w, changed)
	if err != nil {
		return STRObjective{}, err
	}
	hLoads, lLoads := d.dr.Loads[0], d.dr.Loads[1]
	sla := e.opts.Kind == SLABased
	score := func(i int) {
		d.linkPhiH[i] = cost.Phi(hLoads[i], e.capacity[i])
		d.residual[i] = cost.Residual(e.capacity[i], hLoads[i])
		d.linkPhiL[i] = cost.Phi(lLoads[i], d.residual[i])
		if sla {
			d.linkDelay[i] = e.linkDelayAt(i, hLoads[i], d.linkPhiH[i])
		}
	}
	if full {
		for i := range hLoads {
			score(i)
		}
		if sla {
			for di, dest := range e.hpDests {
				xi := d.dr.DelaysTo(dest, d.linkDelay)
				for si, src := range e.hpSrcs[di] {
					d.pairDelays[di][si] = xi[src]
				}
			}
		}
	} else {
		for _, a := range moved {
			score(int(a))
		}
		if sla {
			e.refreshDirtyDelays(d, moved)
		}
	}
	var o STRObjective
	o.PhiH, o.PhiL = d.sumPair()
	if sla {
		o.Lambda, o.Violations = e.sumPenalties(d)
		o.Lex = cost.Lex{Primary: o.Lambda, Secondary: o.PhiL}
	} else {
		o.Lex = cost.Lex{Primary: o.PhiH, Secondary: o.PhiL}
	}
	return o, nil
}
