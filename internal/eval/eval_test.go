package eval

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualtopo/internal/cost"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// triangleInstance builds the §3.3.1 example: 3 nodes, unit-capacity links,
// 1/3 high- and 2/3 low-priority units from A(0) to C(2).
func triangleInstance(t *testing.T) (*graph.Graph, *traffic.Matrix, *traffic.Matrix) {
	t.Helper()
	g := graph.New(3)
	g.AddLink(0, 1, 1, 1) // A-B
	g.AddLink(1, 2, 1, 1) // B-C
	g.AddLink(0, 2, 1, 1) // A-C
	th := traffic.NewMatrix(3)
	th.Set(0, 2, 1.0/3)
	tl := traffic.NewMatrix(3)
	tl.Set(0, 2, 2.0/3)
	return g, th, tl
}

func mustEval(t *testing.T, g *graph.Graph, th, tl *traffic.Matrix, opts Options) *Evaluator {
	t.Helper()
	e, err := New(g, th, tl, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func arcWeight(t *testing.T, g *graph.Graph, w spf.Weights, u, v graph.NodeID, x int) {
	t.Helper()
	id, ok := g.ArcBetween(u, v)
	if !ok {
		t.Fatalf("no arc %d->%d", u, v)
	}
	w[id] = x
}

func TestTrianglePaperValuesDirect(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	// Unit weights: the one-hop path A-C wins; both classes share it.
	r, err := e.EvaluateSTR(spf.Uniform(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PhiH-1.0/3) > 1e-12 {
		t.Errorf("PhiH = %v, want 1/3 (paper §3.3.1)", r.PhiH)
	}
	if math.Abs(r.PhiL-64.0/9) > 1e-12 {
		t.Errorf("PhiL = %v, want 64/9 (paper §3.3.1)", r.PhiL)
	}
}

func TestTrianglePaperValuesSplit(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	// wAC = 2 equalizes the direct and two-hop paths: even ECMP split.
	w := spf.Uniform(g.NumEdges())
	arcWeight(t, g, w, 0, 2, 2)
	r, err := e.EvaluateSTR(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PhiH-1.0/2) > 1e-12 {
		t.Errorf("PhiH = %v, want 1/2 (paper §3.3.1)", r.PhiH)
	}
	if math.Abs(r.PhiL-4.0/3) > 1e-12 {
		t.Errorf("PhiL = %v, want 4/3 (paper §3.3.1)", r.PhiL)
	}
}

func TestTriangleDTRSeparatesClasses(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	wH := spf.Uniform(g.NumEdges()) // H direct on A-C
	wL := spf.Uniform(g.NumEdges())
	arcWeight(t, g, wL, 0, 2, 3) // L forced around via B
	r, err := e.EvaluateDTR(wH, wL)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PhiH-1.0/3) > 1e-12 {
		t.Errorf("PhiH = %v, want 1/3", r.PhiH)
	}
	// L rides A-B-C on full residual capacity 1: 2 * Phi(2/3, 1) = 8/3,
	// already well below the 64/9 it suffers sharing A-C under STR.
	if math.Abs(r.PhiL-8.0/3) > 1e-12 {
		t.Errorf("PhiL = %v, want 8/3", r.PhiL)
	}
}

func TestTriangleDTROptimum(t *testing.T) {
	// The jointly optimal DTR routing keeps H direct and splits L over both
	// paths: PhiL = Phi(1/3, 2/3) + 2*Phi(1/3, 1) = 5/9 + 2/3 = 11/9.
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	wH := spf.Uniform(g.NumEdges())
	wL := spf.Uniform(g.NumEdges())
	arcWeight(t, g, wL, 0, 2, 2) // equal-cost split for L
	r, err := e.EvaluateDTR(wH, wL)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PhiH-1.0/3) > 1e-12 {
		t.Errorf("PhiH = %v, want 1/3", r.PhiH)
	}
	if math.Abs(r.PhiL-11.0/9) > 1e-12 {
		t.Errorf("PhiL = %v, want 11/9", r.PhiL)
	}
}

func TestSTRAndDTRAgreeOnEqualWeights(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		g, err := topo.Random(12, 30, 500, rng)
		if err != nil {
			return true
		}
		topo.AssignUniformDelays(g, 1.2, 15, rng)
		tl := traffic.Gravity(12, rng)
		th, err := traffic.RandomHighPriority(12, 0.15, 0.3, tl.Total(), rng)
		if err != nil {
			return false
		}
		for _, kind := range []Kind{LoadBased, SLABased} {
			opts := DefaultOptions()
			opts.Kind = kind
			e, err := New(g, th, tl, opts)
			if err != nil {
				return false
			}
			w := make(spf.Weights, g.NumEdges())
			for i := range w {
				w[i] = 1 + rng.IntN(30)
			}
			str, err := e.EvaluateSTR(w)
			if err != nil {
				return false
			}
			dtr, err := e.EvaluateDTR(w, w)
			if err != nil {
				return false
			}
			if math.Abs(str.PhiH-dtr.PhiH) > 1e-9 || math.Abs(str.PhiL-dtr.PhiL) > 1e-9 {
				return false
			}
			if math.Abs(str.Lambda-dtr.Lambda) > 1e-9 || str.Violations != dtr.Violations {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveHMatchesFullEvaluation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 33))
		g, err := topo.Random(10, 25, 500, rng)
		if err != nil {
			return true
		}
		topo.AssignUniformDelays(g, 1.2, 15, rng)
		tl := traffic.Gravity(10, rng)
		th, err := traffic.RandomHighPriority(10, 0.2, 0.3, tl.Total(), rng)
		if err != nil {
			return false
		}
		for _, kind := range []Kind{LoadBased, SLABased} {
			opts := DefaultOptions()
			opts.Kind = kind
			e, err := New(g, th, tl, opts)
			if err != nil {
				return false
			}
			wL := randomW(g.NumEdges(), rng)
			wH1 := randomW(g.NumEdges(), rng)
			wH2 := randomW(g.NumEdges(), rng)
			base, err := e.EvaluateDTR(wH1, wL)
			if err != nil {
				return false
			}
			// Fast path for a new wH2 must agree with a full evaluation.
			fast, err := e.ObjectiveH(wH2, base.LLoads)
			if err != nil {
				return false
			}
			full, err := e.EvaluateDTR(wH2, wL)
			if err != nil {
				return false
			}
			if math.Abs(fast.Primary-full.Objective().Primary) > 1e-9 {
				return false
			}
			if math.Abs(fast.Secondary-full.Objective().Secondary) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveLMatchesFullEvaluation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 55))
	g, err := topo.Random(10, 25, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	tl := traffic.Gravity(10, rng)
	th, err := traffic.RandomHighPriority(10, 0.2, 0.3, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEval(t, g, th, tl, DefaultOptions())
	wH := randomW(g.NumEdges(), rng)
	wL1 := randomW(g.NumEdges(), rng)
	wL2 := randomW(g.NumEdges(), rng)
	base, err := e.EvaluateDTR(wH, wL1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := e.ObjectiveL(wL2, base.Residual)
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.EvaluateDTR(wH, wL2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-full.PhiL) > 1e-9 {
		t.Fatalf("ObjectiveL = %v, full PhiL = %v", fast, full.PhiL)
	}
}

func TestSLAViolationAccounting(t *testing.T) {
	// Line A(0)-B(1)-C(2); propagation 10ms per hop; θ=15ms: the 2-hop pair
	// violates by ~5ms, the 1-hop pair does not.
	g := graph.New(3)
	g.AddLink(0, 1, 500, 10)
	g.AddLink(1, 2, 500, 10)
	th := traffic.NewMatrix(3)
	th.Set(0, 2, 10) // 2 hops: ~20ms
	th.Set(1, 2, 10) // 1 hop: ~10ms
	tl := traffic.NewMatrix(3)
	tl.Set(0, 2, 20)
	opts := Options{Kind: SLABased, SLA: cost.SLA{ThetaMs: 15, PenaltyA: 100, PenaltyB: 1, PacketSizeBits: 8000}}
	e := mustEval(t, g, th, tl, opts)
	r, err := e.EvaluateSTR(spf.Uniform(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 1 {
		t.Fatalf("Violations = %d, want 1", r.Violations)
	}
	// Penalty ≈ 100 + (20 + queueing − 15); queueing is microseconds here.
	if r.Lambda < 105 || r.Lambda > 105.1 {
		t.Fatalf("Lambda = %v, want ~105", r.Lambda)
	}
	if len(r.PairDelays) != 2 {
		t.Fatalf("PairDelays = %v, want 2 entries", r.PairDelays)
	}
	lex := r.Objective()
	if lex.Primary != r.Lambda || lex.Secondary != r.PhiL {
		t.Fatalf("Objective = %+v", lex)
	}
}

func TestLoadObjectiveAndLinkCost(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	r, err := e.EvaluateSTR(spf.Uniform(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	lex := r.Objective()
	if lex.Primary != r.PhiH || lex.Secondary != r.PhiL {
		t.Fatalf("Objective = %+v, want {PhiH, PhiL}", lex)
	}
	ac, _ := g.ArcBetween(0, 2)
	lc := r.LinkCost(ac)
	if lc.Primary != r.LinkPhiH[ac] || lc.Secondary != r.LinkPhiL[ac] {
		t.Fatalf("LinkCost = %+v", lc)
	}
}

func TestUtilizationMetrics(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	r, err := e.EvaluateSTR(spf.Uniform(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	u := r.Utilization(g)
	ac, _ := g.ArcBetween(0, 2)
	if math.Abs(u[ac]-1.0) > 1e-12 {
		t.Fatalf("util[AC] = %v, want 1.0", u[ac])
	}
	if got := r.MaxUtilization(g); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("MaxUtilization = %v, want 1.0", got)
	}
	// 6 arcs, one carrying util 1.0: average = 1/6.
	if got := r.AvgUtilization(g); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("AvgUtilization = %v, want 1/6", got)
	}
	hu := r.HUtilization(g)
	if math.Abs(hu[ac]-1.0/3) > 1e-12 {
		t.Fatalf("H-util[AC] = %v, want 1/3", hu[ac])
	}
}

func TestHighPriorityPairs(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	pairs := e.HighPriorityPairs()
	if len(pairs) != 1 || pairs[0] != (Pair{0, 2}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestNewErrors(t *testing.T) {
	g, th, tl := triangleInstance(t)
	if _, err := New(g, traffic.NewMatrix(5), tl, DefaultOptions()); err == nil {
		t.Error("size mismatch accepted")
	}
	disc := graph.New(4)
	disc.AddLink(0, 1, 1, 0)
	disc.AddLink(2, 3, 1, 0)
	if _, err := New(disc, traffic.NewMatrix(4), traffic.NewMatrix(4), DefaultOptions()); err == nil {
		t.Error("disconnected graph accepted")
	}
	_ = th
}

func TestCloneIsIndependent(t *testing.T) {
	g, th, tl := triangleInstance(t)
	e := mustEval(t, g, th, tl, DefaultOptions())
	c := e.Clone()
	w := spf.Uniform(g.NumEdges())
	r1, err := e.EvaluateSTR(w)
	if err != nil {
		t.Fatal(err)
	}
	// Using the clone concurrently-ish must not disturb e's results.
	w2 := spf.Uniform(g.NumEdges())
	arcWeight(t, g, w2, 0, 2, 5)
	if _, err := c.EvaluateSTR(w2); err != nil {
		t.Fatal(err)
	}
	r2, err := e.EvaluateSTR(w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PhiH != r2.PhiH || r1.PhiL != r2.PhiL {
		t.Fatal("clone interfered with original evaluator")
	}
}

func TestKindString(t *testing.T) {
	if LoadBased.String() != "load" || SLABased.String() != "sla" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestExactDelayOption(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 500, 5)
	th := traffic.NewMatrix(2)
	th.Set(0, 1, 250) // 50% H load
	tl := traffic.NewMatrix(2)
	tl.Set(0, 1, 50)
	opts := Options{Kind: SLABased, SLA: cost.DefaultSLA(), ExactDelay: true}
	e := mustEval(t, g, th, tl, opts)
	r, err := e.EvaluateSTR(spf.Uniform(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	a01, _ := g.ArcBetween(0, 1)
	want := cost.DefaultSLA().LinkDelayExact(250, 500, 5)
	if math.Abs(r.LinkDelay[a01]-want) > 1e-12 {
		t.Fatalf("exact LinkDelay = %v, want %v", r.LinkDelay[a01], want)
	}
}

func TestPartialRefreshMatchesFull(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		g, err := topo.Random(10, 25, 500, rng)
		if err != nil {
			return true
		}
		topo.AssignUniformDelays(g, 1.2, 15, rng)
		tl := traffic.Gravity(10, rng)
		th, err := traffic.RandomHighPriority(10, 0.2, 0.3, tl.Total(), rng)
		if err != nil {
			return false
		}
		for _, kind := range []Kind{LoadBased, SLABased} {
			opts := DefaultOptions()
			opts.Kind = kind
			e, err := New(g, th, tl, opts)
			if err != nil {
				return false
			}
			wH1, wH2 := randomW(g.NumEdges(), rng), randomW(g.NumEdges(), rng)
			wL1, wL2 := randomW(g.NumEdges(), rng), randomW(g.NumEdges(), rng)
			base, err := e.EvaluateDTR(wH1, wL1)
			if err != nil {
				return false
			}
			// H-side refresh vs full evaluation.
			viaH, err := e.EvaluateHWithLLoads(wH2, base.LLoads)
			if err != nil {
				return false
			}
			fullH, err := e.EvaluateDTR(wH2, wL1)
			if err != nil {
				return false
			}
			if !resultsEqual(viaH, fullH) {
				return false
			}
			// L-side refresh vs full evaluation.
			viaL, err := e.EvaluateLWithBase(wL2, base)
			if err != nil {
				return false
			}
			fullL, err := e.EvaluateDTR(wH1, wL2)
			if err != nil {
				return false
			}
			if !resultsEqual(viaL, fullL) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func resultsEqual(a, b *Result) bool {
	const tol = 1e-9
	if math.Abs(a.PhiH-b.PhiH) > tol || math.Abs(a.PhiL-b.PhiL) > tol {
		return false
	}
	if math.Abs(a.Lambda-b.Lambda) > tol || a.Violations != b.Violations {
		return false
	}
	for i := range a.HLoads {
		if math.Abs(a.HLoads[i]-b.HLoads[i]) > tol || math.Abs(a.LLoads[i]-b.LLoads[i]) > tol {
			return false
		}
		if math.Abs(a.LinkPhiH[i]-b.LinkPhiH[i]) > tol || math.Abs(a.LinkPhiL[i]-b.LinkPhiL[i]) > tol {
			return false
		}
	}
	return true
}

func TestObjectiveSTRMatchesEvaluateSTR(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 91))
	g, err := topo.Random(12, 30, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.AssignUniformDelays(g, 1.2, 15, rng)
	tl := traffic.Gravity(12, rng)
	th, err := traffic.RandomHighPriority(12, 0.15, 0.3, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{LoadBased, SLABased} {
		opts := DefaultOptions()
		opts.Kind = kind
		e := mustEval(t, g, th, tl, opts)
		for trial := 0; trial < 5; trial++ {
			w := randomW(g.NumEdges(), rng)
			fast, err := e.ObjectiveSTR(w)
			if err != nil {
				t.Fatal(err)
			}
			full, err := e.EvaluateSTR(w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fast.PhiH-full.PhiH) > 1e-9 || math.Abs(fast.PhiL-full.PhiL) > 1e-9 {
				t.Fatalf("kind %v: fast %+v vs full PhiH=%v PhiL=%v", kind, fast, full.PhiH, full.PhiL)
			}
			if math.Abs(fast.Lambda-full.Lambda) > 1e-9 || fast.Violations != full.Violations {
				t.Fatalf("kind %v: SLA mismatch fast %+v vs full Λ=%v V=%d", kind, fast, full.Lambda, full.Violations)
			}
			if fast.Lex != full.Objective() {
				t.Fatalf("kind %v: lex mismatch", kind)
			}
		}
	}
}

func randomW(n int, rng *rand.Rand) spf.Weights {
	w := make(spf.Weights, n)
	for i := range w {
		w[i] = 1 + rng.IntN(30)
	}
	return w
}
