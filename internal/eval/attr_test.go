package eval

import (
	"math"
	"math/rand/v2"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// attrInstance builds a random instance and evaluates random DTR weights,
// returning everything the attribution tests need.
func attrInstance(t *testing.T, kind Kind, seed uint64) (*Evaluator, *Result, spf.Weights) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 77))
	g, err := topo.Random(12, 30, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.AssignUniformDelays(g, 1.2, 15, rng)
	tl := traffic.Gravity(12, rng)
	th, err := traffic.RandomHighPriority(12, 0.15, 0.3, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Kind = kind
	e := mustEval(t, g, th, tl, opts)
	w := make(spf.Weights, g.NumEdges())
	for i := range w {
		w[i] = 1 + rng.IntN(20)
	}
	r, err := e.EvaluateDTR(w, w)
	if err != nil {
		t.Fatal(err)
	}
	return e, r, w
}

// TestAttributeLoadBased: for load-based runs the attribution is exactly the
// per-arc Φ decomposition — HScore sums to ΦH and LScore to ΦL, arc by arc.
func TestAttributeLoadBased(t *testing.T) {
	e, r, _ := attrInstance(t, LoadBased, 5)
	var a Attribution
	e.Attribute(r, &a)
	n := e.Graph().NumEdges()
	if len(a.HScore) != n || len(a.LScore) != n {
		t.Fatalf("score lengths %d/%d, want %d", len(a.HScore), len(a.LScore), n)
	}
	var sumH, sumL float64
	for i := 0; i < n; i++ {
		if a.HScore[i] != r.LinkPhiH[i] {
			t.Fatalf("HScore[%d] = %g, want per-arc ΦH %g", i, a.HScore[i], r.LinkPhiH[i])
		}
		if a.LScore[i] != r.LinkPhiL[i] {
			t.Fatalf("LScore[%d] = %g, want per-arc ΦL %g", i, a.LScore[i], r.LinkPhiL[i])
		}
		sumH += a.HScore[i]
		sumL += a.LScore[i]
	}
	if math.Abs(sumH-r.PhiH) > 1e-9*math.Max(1, r.PhiH) {
		t.Errorf("HScore sums to %g, ΦH is %g", sumH, r.PhiH)
	}
	if math.Abs(sumL-r.PhiL) > 1e-9*math.Max(1, r.PhiL) {
		t.Errorf("LScore sums to %g, ΦL is %g", sumL, r.PhiL)
	}
}

// TestAttributeSLAViolations: with violating pairs, an arc's HScore is the
// summed penalty of the violating pairs whose ECMP DAG (in the evaluator's
// current high-priority plan) can reach the arc from the pair's source — and
// nothing else. Verified against an independent reachability walk.
func TestAttributeSLAViolations(t *testing.T) {
	var e *Evaluator
	var r *Result
	// Hunt for a seed with violations; the instance family produces them
	// readily once utilization is pushed up.
	for seed := uint64(1); ; seed++ {
		if seed > 50 {
			t.Fatal("no violating instance found in 50 seeds")
		}
		e, r, _ = attrInstance(t, SLABased, seed)
		if r.Violations > 0 {
			break
		}
	}
	var a Attribution
	e.Attribute(r, &a)

	n := e.Graph().NumEdges()
	csr := e.Graph().CSR()
	want := make([]float64, n)
	pair := 0
	var totalPen float64
	for _, p := range e.HighPriorityPairs() {
		pen := e.Options().SLA.PairPenalty(r.PairDelays[pair])
		pair++
		if pen <= 0 {
			continue
		}
		totalPen += pen
		// Independent reachability: collect every arc on some shortest path
		// from p.Src in the DAG toward p.Dst via a plain visited-set BFS.
		tree := e.HPlan().Tree(p.Dst)
		seen := map[graph.NodeID]bool{p.Src: true}
		queue := []graph.NodeID{p.Src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range tree.Next(u) {
				want[id] += pen
				if v := csr.To[id]; !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	if totalPen <= 0 {
		t.Fatal("violating instance has zero total penalty")
	}
	for i := 0; i < n; i++ {
		if math.Abs(a.HScore[i]-want[i]) > 1e-9*math.Max(1, want[i]) {
			t.Fatalf("HScore[%d] = %g, independent walk says %g", i, a.HScore[i], want[i])
		}
	}
	// LScore stays the ΦL decomposition regardless of kind.
	for i := 0; i < n; i++ {
		if a.LScore[i] != r.LinkPhiL[i] {
			t.Fatalf("LScore[%d] = %g, want %g", i, a.LScore[i], r.LinkPhiL[i])
		}
	}
}

// TestAttributeSLANoViolationsFallsBackToDelay: an SLA run with no violating
// pair ranks arcs by the Eq. (3) per-arc delay, matching the blind search's
// primary sort key.
func TestAttributeSLANoViolationsFallsBackToDelay(t *testing.T) {
	for seed := uint64(1); ; seed++ {
		if seed > 50 {
			t.Skip("no violation-free SLA instance found in 50 seeds")
		}
		e, r, _ := attrInstance(t, SLABased, seed)
		if r.Violations != 0 {
			continue
		}
		var a Attribution
		e.Attribute(r, &a)
		for i := range a.HScore {
			if a.HScore[i] != r.LinkDelay[i] {
				t.Fatalf("HScore[%d] = %g, want LinkDelay %g", i, a.HScore[i], r.LinkDelay[i])
			}
		}
		return
	}
}

// TestAttributeReuseDeterministic: reusing one Attribution across calls (the
// search's pattern) must reproduce a fresh Attribution exactly — the scratch
// epochs and buffers cannot leak between calls.
func TestAttributeReuseDeterministic(t *testing.T) {
	for _, kind := range []Kind{LoadBased, SLABased} {
		e, r, w := attrInstance(t, kind, 9)
		var reused Attribution
		e.Attribute(r, &reused)
		// Evaluate something else, re-anchor at w, attribute again into the
		// same struct.
		other := append(spf.Weights(nil), w...)
		other[0] = other[0]%20 + 1
		if _, err := e.EvaluateDTR(other, other); err != nil {
			t.Fatal(err)
		}
		r2, err := e.EvaluateDTR(w, w)
		if err != nil {
			t.Fatal(err)
		}
		e.Attribute(r2, &reused)
		var fresh Attribution
		e.Attribute(r2, &fresh)
		for i := range fresh.HScore {
			if reused.HScore[i] != fresh.HScore[i] || reused.LScore[i] != fresh.LScore[i] {
				t.Fatalf("%v: reused attribution diverges from fresh at arc %d", kind, i)
			}
		}
	}
}
