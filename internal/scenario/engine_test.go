package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// fastSpec is a campaign small enough for unit tests: a real 30-node
// topology but minimal search budgets.
func fastSpec() Spec {
	s := validSpec()
	s.Name = "fast"
	s.Loads = []float64{0.5, 0.7}
	s.Trials = 2
	s.Budget = BudgetSpec{Tier: "tiny", DTRIters: 30, DTRRefine: 20, STRIters: 60}
	return s
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the same
// spec must produce byte-identical aggregates at any worker count — and at
// any SPF route-worker count — and across repeated runs.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var blobs [][]byte
	var streams []string
	configs := []Options{
		{Workers: 1},
		{Workers: 4},
		{Workers: 1},                  // repeat-run check
		{Workers: 2, RouteWorkers: 4}, // parallel full-route inside trials
	}
	for _, opts := range configs {
		var stream bytes.Buffer
		opts.OnTrial = func(tr TrialResult) {
			// Timing varies run to run; everything else must not.
			tr.ElapsedMs = 0
			stream.WriteString(trKey(tr))
		}
		res, err := Run(fastSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := res.AggregatesJSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		streams = append(streams, stream.String())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("aggregates differ between workers=1 and workers=4:\n%s\nvs\n%s", blobs[0], blobs[1])
	}
	if !bytes.Equal(blobs[0], blobs[2]) {
		t.Errorf("aggregates differ between repeated runs:\n%s\nvs\n%s", blobs[0], blobs[2])
	}
	if !bytes.Equal(blobs[0], blobs[3]) {
		t.Errorf("aggregates differ when RouteWorkers is enabled:\n%s\nvs\n%s", blobs[0], blobs[3])
	}
	for i := 1; i < len(streams); i++ {
		if streams[0] != streams[i] {
			t.Errorf("trial stream order/content depends on config %d", i)
		}
	}
}

func trKey(tr TrialResult) string {
	tr.ElapsedMs = 0
	b, _ := json.Marshal(tr)
	return string(b) + "\n"
}

// TestRunShapeAndCallbacks checks trial ordering, progress counting and the
// summary shape.
func TestRunShapeAndCallbacks(t *testing.T) {
	spec := fastSpec()
	var mu sync.Mutex
	var order []int
	progress := 0
	res, err := Run(spec, Options{
		Workers: 3,
		OnTrial: func(tr TrialResult) {
			mu.Lock()
			order = append(order, tr.Point*spec.Trials+tr.Trial)
			mu.Unlock()
		},
		OnProgress: func(p Progress) {
			mu.Lock()
			progress++
			if p.Total != 4 || p.Done < 1 || p.Done > 4 {
				t.Errorf("bad progress %+v", p)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 {
		t.Fatalf("trials = %d, want 4", len(res.Trials))
	}
	for i, want := range []int{0, 1, 2, 3} {
		if order[i] != want {
			t.Fatalf("OnTrial order = %v, want work-list order", order)
		}
	}
	if progress != 4 {
		t.Fatalf("progress callbacks = %d, want 4", progress)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for i, ps := range res.Points {
		if ps.Trials != 2 {
			t.Errorf("point %d trials = %d, want 2", i, ps.Trials)
		}
		if ps.TargetUtil != spec.Loads[i] {
			t.Errorf("point %d target = %g, want %g", i, ps.TargetUtil, spec.Loads[i])
		}
		// DTR warm-starts from STR, so RL >= 1 up to lexicographic ties and
		// MeasuredUtil must be positive.
		if ps.RL.Mean < 0.99 {
			t.Errorf("point %d RL mean = %g, want >= ~1", i, ps.RL.Mean)
		}
		if ps.MeasuredUtil.Mean <= 0 {
			t.Errorf("point %d measured util = %g", i, ps.MeasuredUtil.Mean)
		}
	}
	if res.SummaryTable() == "" {
		t.Fatal("empty summary table")
	}
	// Every trial records its wall-clock duration and the campaign
	// aggregates them: the p50/p95 must bracket real observed latencies.
	minMs, maxMs := res.Trials[0].ElapsedMs, res.Trials[0].ElapsedMs
	for _, tr := range res.Trials {
		if tr.ElapsedMs <= 0 {
			t.Fatalf("trial %d/%d has no elapsed time", tr.Point, tr.Trial)
		}
		minMs = min(minMs, tr.ElapsedMs)
		maxMs = max(maxMs, tr.ElapsedMs)
	}
	lat := res.TrialLatency
	if lat.P50 < minMs || lat.P50 > maxMs || lat.P95 < minMs || lat.P95 > maxMs {
		t.Fatalf("trial latency aggregate %+v outside observed range [%g, %g]", lat, minMs, maxMs)
	}
	if lat.P95 < lat.P50 || lat.Mean <= 0 {
		t.Fatalf("inconsistent trial latency aggregate %+v", lat)
	}
}

// TestRunWithFailures checks the failure sweep feeds trial records and
// aggregates, for the legacy single-link toggle and a sampled modern model.
func TestRunWithFailures(t *testing.T) {
	spec := fastSpec()
	spec.Topology.Family = TopoISP // small: 35 link failures per trial
	spec.Loads = []float64{0.5}
	spec.Trials = 1
	spec.Failures = FailureSpec{SingleLink: true, MaxLinks: 6}
	res, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trials[0]
	if tr.Failures == nil {
		t.Fatal("no failure summary on trial")
	}
	if tr.Failures.Evaluated == 0 || tr.Failures.Evaluated > 6 {
		t.Fatalf("evaluated = %d, want (0,6]", tr.Failures.Evaluated)
	}
	if tr.Failures.Model != "link(sample=6)" {
		t.Fatalf("model = %q, want link(sample=6)", tr.Failures.Model)
	}
	if tr.Failures.STR.MeanDegr <= 0 || tr.Failures.DTR.MeanDegr <= 0 {
		t.Fatalf("degradations = %+v", tr.Failures)
	}
	if tr.Failures.STR.WorstState == "" || tr.Failures.DTR.WorstState == "" {
		t.Fatalf("no worst-state labels: %+v", tr.Failures)
	}
	ps := res.Points[0]
	if ps.STRFailDegr == nil || ps.DTRFailDegr == nil {
		t.Fatal("failure aggregates missing from point summary")
	}
	if ps.STRFailP95 == nil || ps.DTRFailWorst == nil {
		t.Fatal("failure percentile aggregates missing from point summary")
	}
	if tr.Robust != nil || ps.RobustComposite != nil {
		t.Fatal("robust metrics present on a non-robust campaign")
	}

	// A dual-link sampled model on the same instance.
	spec.Failures = FailureSpec{Kind: "link", Count: 2, Sample: 5}
	res, err = Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr = res.Trials[0]
	if tr.Failures == nil || tr.Failures.Model != "dual-link(sample=5)" {
		t.Fatalf("dual-link trial summary = %+v", tr.Failures)
	}
}

// TestRunWithRobustSearch checks the failure-aware search rides through the
// engine: robust metrics on trials and aggregates, deterministic across
// worker counts.
func TestRunWithRobustSearch(t *testing.T) {
	spec := fastSpec()
	spec.Topology.Family = TopoISP
	spec.Loads = []float64{0.5}
	spec.Trials = 2
	spec.Budget = BudgetSpec{Tier: "tiny", DTRIters: 15, DTRRefine: 10, STRIters: 30}
	spec.Failures = FailureSpec{SingleLink: true, Sample: 4, Robust: true}
	var blobs [][]byte
	for _, workers := range []int{1, 3} {
		res, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trials[0]
		if tr.Robust == nil {
			t.Fatal("no robust score on trial")
		}
		if tr.Robust.States < 1 || tr.Robust.States > 4 {
			t.Fatalf("robust states = %d, want (0,4]", tr.Robust.States)
		}
		if tr.Robust.WorstState == "" || tr.Robust.Composite <= 0 {
			t.Fatalf("robust score = %+v", tr.Robust)
		}
		if res.Points[0].RobustComposite == nil || res.Points[0].RobustWorstPhiL == nil {
			t.Fatal("robust aggregates missing from point summary")
		}
		blob, err := res.AggregatesJSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("robust aggregates differ across worker counts:\n%s\nvs\n%s", blobs[0], blobs[1])
	}
}

// TestRunRejectsInvalidSpec ensures validation gates execution.
func TestRunRejectsInvalidSpec(t *testing.T) {
	s := fastSpec()
	s.Topology.Family = "mesh"
	if _, err := Run(s, Options{}); err == nil {
		t.Fatal("invalid spec executed")
	}
}

func TestAggregate(t *testing.T) {
	a := aggregate([]float64{1, 2, 3, 4, 5})
	if a.Mean != 3 || a.P50 != 3 {
		t.Fatalf("aggregate = %+v", a)
	}
	if a.P95 < 4.5 || a.P95 > 5 {
		t.Fatalf("p95 = %g", a.P95)
	}
}

// TestRunWithChurn checks the churn replay feeds trial records and
// aggregates, deterministically across worker counts.
func TestRunWithChurn(t *testing.T) {
	spec := fastSpec()
	spec.Loads = []float64{0.5}
	spec.Trials = 2
	spec.Objective.Kind = "sla"
	spec.Churn = &ChurnSpec{
		HorizonS:     120,
		LinkMTBFS:    60,
		LinkMTTRS:    4,
		WeightRateHz: 0.05,
		Convergence:  true,
	}
	var blobs [][]byte
	for _, workers := range []int{1, 2} {
		res, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trials[0]
		if tr.Churn == nil {
			t.Fatal("no churn metrics on trial")
		}
		if tr.Churn.Events == 0 {
			t.Fatal("churn replay saw no events")
		}
		if tr.Churn.PeakUtil <= 0 {
			t.Fatalf("churn metrics = %+v", tr.Churn)
		}
		if res.Trials[0].Seed == res.Trials[1].Seed {
			t.Fatal("trials share a seed")
		}
		ps := res.Points[0]
		if ps.ChurnViolation == nil || ps.ChurnTransient == nil || ps.ChurnDisconnect == nil {
			t.Fatal("churn aggregates missing from point summary")
		}
		if !strings.Contains(res.SummaryTable(), "churn.loss") {
			t.Fatal("summary table lacks churn columns")
		}
		blob, err := res.AggregatesJSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("churn aggregates differ across worker counts:\n%s\nvs\n%s", blobs[0], blobs[1])
	}
}

// TestRunInterrupted checks context cancellation: the engine stops starting
// trials, returns the completed prefix with ErrInterrupted, and the partial
// result aggregates cleanly.
func TestRunInterrupted(t *testing.T) {
	spec := fastSpec()
	spec.Trials = 4 // 2 loads x 4 = 8 work items
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	res, err := Run(spec, Options{
		Context: ctx,
		Workers: 1,
		OnTrial: func(tr TrialResult) {
			emitted++
			if emitted == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil || !res.Interrupted {
		t.Fatal("no partial result")
	}
	if len(res.Trials) < 2 || len(res.Trials) >= 8 {
		t.Fatalf("partial trials = %d, want [2,8)", len(res.Trials))
	}
	if len(res.Points) == 0 {
		t.Fatal("partial result has no aggregates")
	}
	// A pre-cancelled context yields an empty partial result, not a hang.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	res, err = Run(spec, Options{Context: ctx2, Workers: 2})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if len(res.Trials) != 0 {
		t.Fatalf("pre-cancelled completed %d trials", len(res.Trials))
	}
}
