package scenario

// Tests for the generator-registry parameterization of campaign specs: the
// params objects on TopologySpec/TrafficSpec, their validation against the
// topo/traffic registries, and end-to-end determinism of the new families
// through the engine.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

func paramSpec(mutate func(*Spec)) Spec {
	s := validSpec()
	mutate(&s)
	return s
}

func TestSpecValidateUnknownFamilyEnumeratesRegistry(t *testing.T) {
	err := paramSpec(func(s *Spec) { s.Topology.Family = "mesh" }).Validate()
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	// The message must come from the registry, not a hardcoded list.
	for _, fam := range []string{"random", "waxman", "torus", "hier", "import"} {
		if !strings.Contains(err.Error(), fam) {
			t.Errorf("unknown-family error %q does not list %q", err, fam)
		}
	}
	err = paramSpec(func(s *Spec) { s.Traffic.HighModel = "flood" }).Validate()
	if err == nil {
		t.Fatal("unknown HP model accepted")
	}
	for _, m := range []string{"random", "hotspot", "gravity", "uniform"} {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("unknown-model error %q does not list %q", err, m)
		}
	}
}

func TestSpecValidateParams(t *testing.T) {
	good := filepath.Join(t.TempDir(), "net.adj")
	if err := os.WriteFile(good, []byte("a b 10\nb c 10\nc a 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	valid := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"waxman defaults", func(s *Spec) { s.Topology = TopologySpec{Family: TopoWaxman} }},
		{"waxman tuned", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoWaxman, Params: &topo.Params{Nodes: 20, Alpha: 0.5, Beta: 0.4}}
		}},
		{"torus sized", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoTorus, Params: &topo.Params{Rows: 4, Cols: 4}}
		}},
		{"hier fan-out", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoHier, Params: &topo.Params{Pops: 4, RoutersPerPop: 3}}
		}},
		{"import path", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoImport, Params: &topo.Params{Path: good}}
		}},
		{"hotspot traffic", func(s *Spec) {
			s.Traffic = TrafficSpec{HighModel: HPHotspot, Params: &traffic.Params{HotspotFraction: 0.2, HotspotBoost: 4}}
		}},
		{"legacy shorthand still wins over nothing", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoRandom, Nodes: 20, Links: 40}
		}},
	}
	for _, tc := range valid {
		if err := paramSpec(tc.mutate).Validate(); err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
	}

	invalid := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"waxman alpha out of range", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoWaxman, Params: &topo.Params{Alpha: 1.5}}
		}},
		{"waxman links budget", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoWaxman, Links: 40}
		}},
		{"import without path", func(s *Spec) { s.Topology = TopologySpec{Family: TopoImport} }},
		{"import bad path", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoImport, Params: &topo.Params{Path: "/nonexistent/x.gml"}}
		}},
		{"grid size contradiction", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoGrid, Nodes: 30, Params: &topo.Params{Rows: 4, Cols: 4}}
		}},
		{"bad delay model", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoRandom, Params: &topo.Params{DelayModel: "gaussian"}}
		}},
		{"hotspot fraction out of range", func(s *Spec) {
			s.Traffic = TrafficSpec{HighModel: HPHotspot, Params: &traffic.Params{HotspotFraction: 2}}
		}},
		{"hotspot boost too low", func(s *Spec) {
			s.Traffic = TrafficSpec{HighModel: HPHotspot, Params: &traffic.Params{HotspotBoost: 0.5}}
		}},
		{"negative capacity in params", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoRandom, Params: &topo.Params{CapacityMbps: -100}}
		}},
		{"negative nodes in params", func(s *Spec) {
			s.Topology = TopologySpec{Family: TopoRandom, Params: &topo.Params{Nodes: -3}}
		}},
	}
	for _, tc := range invalid {
		if err := paramSpec(tc.mutate).Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSpecJSONRoundTripWithParams(t *testing.T) {
	s := validSpec()
	s.Topology = TopologySpec{Family: TopoWaxman, Params: &topo.Params{Nodes: 24, Alpha: 0.4, Beta: 0.3, DelayModel: topo.DelayUniform}}
	s.Traffic = TrafficSpec{HighModel: HPHotspot, Params: &traffic.Params{F: 0.2, HotspotFraction: 0.15, HotspotBoost: 5}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed spec:\nin  %+v\nout %+v", s, got)
	}
	// Unknown params keys must fail like any other typo.
	if _, err := Load(strings.NewReader(`{"name":"x","topology":{"family":"waxman","params":{"alhpa":0.4}}}`)); err == nil {
		t.Fatal("typo params key accepted")
	}
}

func TestWorkListThreadsParams(t *testing.T) {
	s := validSpec()
	s.Topology = TopologySpec{Family: TopoHier, Params: &topo.Params{Pops: 4, RoutersPerPop: 3}}
	s.Traffic = TrafficSpec{HighModel: HPHotspot, F: 0.2}
	items := s.WorkList()
	if len(items) == 0 {
		t.Fatal("empty work list")
	}
	for _, it := range items {
		if it.Spec.TopoParams == nil || it.Spec.TopoParams.Pops != 4 || it.Spec.TopoParams.RoutersPerPop != 3 {
			t.Fatalf("work item lost topology params: %+v", it.Spec.TopoParams)
		}
		if it.Spec.HPParams == nil || it.Spec.HPParams.F != 0.2 {
			t.Fatalf("work item lost traffic params: %+v", it.Spec.HPParams)
		}
		if it.Spec.HPModel != HPHotspot {
			t.Fatalf("work item lost HP model: %q", it.Spec.HPModel)
		}
	}
}

// TestBuildNewFamilies builds one instance per new generator pairing to
// prove every family is reachable end to end from an InstanceSpec.
func TestBuildNewFamilies(t *testing.T) {
	cases := []struct {
		name string
		spec InstanceSpec
	}{
		{"waxman+uniform", InstanceSpec{
			Topology: TopoWaxman, TopoParams: &topo.Params{Nodes: 16},
			HPModel: HPUniform, TargetUtil: 0.5, Seed: 21,
		}},
		{"ring+random", InstanceSpec{
			Topology: TopoRing, TopoParams: &topo.Params{Nodes: 12, Chords: 3},
			HPModel: HPRandom, TargetUtil: 0.5, Seed: 22,
		}},
		{"grid+gravity", InstanceSpec{
			Topology: TopoGrid, TopoParams: &topo.Params{Rows: 3, Cols: 4},
			HPModel: HPGravity, TargetUtil: 0.5, Seed: 23,
		}},
		{"torus+hotspot", InstanceSpec{
			Topology: TopoTorus, TopoParams: &topo.Params{Rows: 3, Cols: 4},
			HPModel: HPHotspot, TargetUtil: 0.5, Seed: 24,
		}},
		{"hier+gravity", InstanceSpec{
			Topology: TopoHier, TopoParams: &topo.Params{Pops: 3, RoutersPerPop: 3},
			HPModel: HPGravity, TargetUtil: 0.5, Seed: 25,
		}},
	}
	for _, tc := range cases {
		inst, err := tc.spec.Build()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !inst.G.StronglyConnected() {
			t.Errorf("%s: disconnected", tc.name)
		}
		if inst.TH.Total() <= 0 || inst.TL.Total() <= 0 {
			t.Errorf("%s: empty traffic", tc.name)
		}
		if _, err := inst.Evaluator(); err != nil {
			t.Errorf("%s: evaluator: %v", tc.name, err)
		}
	}
}

// TestNewFamilyCampaignDeterministicAcrossWorkers extends the engine's
// determinism contract to the registry families: a waxman+hotspot campaign
// must stream identical results at any worker count.
func TestNewFamilyCampaignDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Name:      "waxman-hotspot-determinism",
		Topology:  TopologySpec{Family: TopoWaxman, Params: &topo.Params{Nodes: 14, Alpha: 0.4}},
		Traffic:   TrafficSpec{HighModel: HPHotspot, Params: &traffic.Params{F: 0.2}},
		Objective: ObjectiveSpec{Kind: "load"},
		Loads:     []float64{0.6},
		Trials:    3,
		Seed:      77,
	}
	var blobs [][]byte
	var streams []string
	for _, workers := range []int{1, 3, 1} {
		var stream bytes.Buffer
		res, err := Run(spec, Options{
			Workers: workers,
			OnTrial: func(tr TrialResult) { stream.WriteString(trKey(tr)) },
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := res.AggregatesJSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		streams = append(streams, stream.String())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("aggregates depend on worker count:\n%s\nvs\n%s", blobs[0], blobs[1])
	}
	if !bytes.Equal(blobs[0], blobs[2]) {
		t.Errorf("aggregates differ between repeat runs:\n%s\nvs\n%s", blobs[0], blobs[2])
	}
	if streams[0] != streams[1] || streams[0] != streams[2] {
		t.Error("trial stream depends on worker count")
	}
}

func TestPresetsCoverNewGenerators(t *testing.T) {
	families := map[string]bool{}
	models := map[string]bool{}
	for _, s := range Presets() {
		n := s.Normalize()
		families[n.Topology.Family] = true
		models[n.Traffic.HighModel] = true
	}
	for _, f := range []string{TopoWaxman, TopoHier, TopoTorus} {
		if !families[f] {
			t.Errorf("no preset uses new family %q", f)
		}
	}
	for _, m := range []string{HPHotspot, HPGravity} {
		if !models[m] {
			t.Errorf("no preset uses new HP model %q", m)
		}
	}
}

func TestPresetParamsAreDeepCopies(t *testing.T) {
	a, ok := PresetByName("waxman-load")
	if !ok {
		t.Fatal("waxman-load preset missing")
	}
	if a.Topology.Params == nil {
		t.Fatal("waxman-load has no params")
	}
	orig := a.Topology.Params.Alpha
	a.Topology.Params.Alpha = 0.99
	b, _ := PresetByName("waxman-load")
	if b.Topology.Params.Alpha != orig {
		t.Fatal("mutating a preset's params corrupted the library")
	}
}

// TestObjectiveKindsMatchEval guards the kind-name mapping used by params
// resolution against drift in eval.Kind.String().
func TestObjectiveKindsMatchEval(t *testing.T) {
	if objectiveKinds["load"] != eval.LoadBased || objectiveKinds["sla"] != eval.SLABased {
		t.Fatal("objectiveKinds out of sync with eval")
	}
}
