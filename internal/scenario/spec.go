package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dualtopo/internal/eval"
	"dualtopo/internal/resilience"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// Spec is a declarative what-if campaign: one topology/traffic/objective
// configuration swept over a set of network loads, each load point averaged
// over independent trials. The zero values of optional fields resolve to the
// paper's §5.1 settings via Normalize.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Topology  TopologySpec  `json:"topology"`
	Traffic   TrafficSpec   `json:"traffic"`
	Objective ObjectiveSpec `json:"objective"`

	// Loads is the target average-utilization sweep; empty means [0.6].
	Loads []float64 `json:"loads,omitempty"`
	// Trials is the number of independently seeded repetitions per load
	// point; 0 means 1.
	Trials int `json:"trials,omitempty"`
	// Seed is the campaign root seed; every trial derives its own sub-seed
	// from it (see SubSeed).
	Seed uint64 `json:"seed,omitempty"`

	Budget   BudgetSpec  `json:"budget,omitempty"`
	Failures FailureSpec `json:"failures,omitempty"`
	// Churn, when non-nil, replays a generated churn timeline against every
	// trial's final DTR weights (see ChurnSpec).
	Churn *ChurnSpec `json:"churn,omitempty"`
}

// TopologySpec selects the topology family and its parameters.
type TopologySpec struct {
	// Family names any registered topology generator (topo.Families()):
	// the paper's "random", "powerlaw" and "isp", plus "waxman", "ring",
	// "grid", "torus", "hier" and "import".
	Family string `json:"family"`
	// Nodes, Links and CapacityMbps are legacy shorthand for the matching
	// Params fields; Params wins where both are set.
	Nodes int `json:"nodes,omitempty"`
	Links int `json:"links,omitempty"`
	// CapacityMbps is the per-arc capacity; 0 means the paper's 500.
	CapacityMbps float64 `json:"capacity_mbps,omitempty"`
	// Params is the family's full parameter set (Waxman alpha/beta,
	// lattice rows/cols, hier PoP fan-out, import path, delay model, ...).
	// Unset fields resolve to the family's registered defaults.
	Params *topo.Params `json:"params,omitempty"`
}

// params folds the legacy shorthand fields into the explicit params object
// (explicit wins); family defaults are merged later by topo.Resolve.
func (t TopologySpec) params() topo.Params {
	var p topo.Params
	if t.Params != nil {
		p = *t.Params
	}
	return p.WithSizes(t.Nodes, t.Links, t.CapacityMbps)
}

// TrafficSpec selects the traffic matrices of both classes. The low-priority
// class always follows the gravity model (Eq. 6-7); HighModel picks the
// high-priority overlay.
type TrafficSpec struct {
	// HighModel names any registered high-priority model
	// (traffic.Models()): the paper's "random", "sink-uniform" and
	// "sink-local", plus "gravity", "hotspot" and "uniform".
	HighModel string `json:"high_model"`
	// F is the high-priority volume fraction; 0 means 30%.
	F float64 `json:"f,omitempty"`
	// K is the high-priority SD-pair density; 0 means 10%.
	K float64 `json:"k,omitempty"`
	// Sinks is the sink-model sink count; 0 means 3.
	Sinks int `json:"sinks,omitempty"`
	// Params is the model's full parameter set (hotspot fraction/boost,
	// ...). Unset fields resolve to the model's registered defaults; the
	// flat F/K/Sinks shorthand fills its zero values.
	Params *traffic.Params `json:"params,omitempty"`
}

// params folds the legacy shorthand fields into the explicit params object
// (explicit wins); model defaults are merged later by traffic.ResolveModel.
func (t TrafficSpec) params() traffic.Params {
	var p traffic.Params
	if t.Params != nil {
		p = *t.Params
	}
	return p.WithShorthand(t.F, t.K, t.Sinks)
}

// ObjectiveSpec selects the cost function family of §3.
type ObjectiveSpec struct {
	// Kind is "load" (Fortz-Thorup with residual capacities) or "sla"
	// (delay-bound penalties).
	Kind string `json:"kind"`
	// ThetaMs is the SLA delay bound; 0 means 25 ms. Ignored for "load".
	ThetaMs float64 `json:"theta_ms,omitempty"`
}

// BudgetSpec scales the search effort spent on every trial.
type BudgetSpec struct {
	// Tier is "tiny", "small" or "paper"; empty means "tiny".
	Tier string `json:"tier,omitempty"`
	// DTRIters, DTRRefine and STRIters override the tier's N, K and
	// Iterations budgets when positive.
	DTRIters  int `json:"dtr_iters,omitempty"`
	DTRRefine int `json:"dtr_refine,omitempty"`
	STRIters  int `json:"str_iters,omitempty"`
	// SearchWorkers overrides the tier's per-search parallelism when
	// positive. Campaign-level parallelism (Options.Workers) composes with
	// this; tiers default to single-threaded searches so that trials, not
	// neighbor evaluations, saturate the machine.
	SearchWorkers int `json:"search_workers,omitempty"`
}

// FailureSpec enables post-optimization robustness evaluation: each trial's
// final weight settings are swept over a failure-state family (weights
// unchanged — OSPF reconverges on the surviving arcs) and the low-priority
// cost degradation of both schemes is recorded. It can additionally make
// the DTR search itself failure-aware.
type FailureSpec struct {
	// Kind selects the failure model: "link" (Count simultaneous link
	// failures), "node", or "srlg". Empty (with SingleLink false) disables
	// failure evaluation.
	Kind string `json:"kind,omitempty"`
	// SingleLink is the legacy toggle, equivalent to {Kind: "link", Count: 1}.
	SingleLink bool `json:"single_link,omitempty"`
	// Count is the number of simultaneously failed links for the "link"
	// kind: 1 or 2. 0 means 1.
	Count int `json:"count,omitempty"`
	// SRLGs lists shared-risk groups for the "srlg" kind, as indexes into
	// the topology's canonical link order.
	SRLGs [][]int `json:"srlgs,omitempty"`
	// Sample, when positive, evaluates a seeded uniform sample of that many
	// states per trial instead of the full family. 0 means every state.
	Sample int `json:"sample,omitempty"`
	// Seed pins the sampling seed; 0 derives a per-trial seed, so different
	// trials sample independently while re-runs stay deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// Robust makes the DTR search failure-aware: candidates are scored on
	// nominal ΦL plus mean and worst-case ΦL over the trial's failure set
	// (capped at RobustDefaultSample states when Sample is 0).
	Robust bool `json:"robust,omitempty"`
	// MaxLinks is a deprecated alias for Sample; unlike the old prefix
	// truncation it now selects a seeded uniform sample.
	MaxLinks int `json:"max_links,omitempty"`
}

// RobustDefaultSample bounds the per-candidate sweep cost of robust
// searches when the spec does not choose a sample size itself. One-off
// tools (cmd/dtrfail) reuse it so ad-hoc robust runs match campaign
// behavior.
const RobustDefaultSample = 8

// Robust-search composite weights: candidate score = ΦL + α·mean + β·worst
// over the failure set.
const (
	robustAlpha = 0.5
	robustBeta  = 0.5
)

// Enabled reports whether any failure evaluation is configured.
func (f FailureSpec) Enabled() bool { return f.Kind != "" || f.SingleLink }

// Model derives the trial-level resilience model, resolving the legacy
// aliases and deriving a per-trial sampling seed when none is pinned.
func (f FailureSpec) Model(trialSeed uint64) resilience.Model {
	kind := f.Kind
	if kind == "" {
		kind = resilience.KindLink
	}
	sample := f.Sample
	if sample == 0 {
		sample = f.MaxLinks
	}
	seed := f.Seed
	if seed == 0 {
		seed = splitmix64(trialSeed ^ 0x6661696c75726573) // "failures"
	}
	return resilience.Model{
		Kind:   kind,
		Count:  f.Count,
		SRLGs:  f.SRLGs,
		Sample: sample,
		Seed:   seed,
	}.Normalize()
}

// robustModel is the failure set the DTR search scores candidates on: the
// trial model, sample-capped so sweep cost per candidate stays bounded.
func (f FailureSpec) robustModel(trialSeed uint64) resilience.Model {
	m := f.Model(trialSeed)
	if m.Sample == 0 {
		m.Sample = RobustDefaultSample
	}
	return m
}

// objectiveKinds maps the JSON kind names onto eval.Kind (matching
// eval.Kind.String()).
var objectiveKinds = map[string]eval.Kind{
	"load": eval.LoadBased,
	"sla":  eval.SLABased,
}

// Normalize returns a copy of s with every optional field resolved to its
// default, so that Validate, WorkList and Run all see the same effective
// campaign.
func (s Spec) Normalize() Spec {
	if s.Topology.Family == "" {
		s.Topology.Family = TopoRandom
	}
	if s.Traffic.HighModel == "" {
		s.Traffic.HighModel = HPRandom
	}
	if s.Objective.Kind == "" {
		s.Objective.Kind = "load"
	}
	if len(s.Loads) == 0 {
		s.Loads = []float64{0.6}
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Budget.Tier == "" {
		s.Budget.Tier = "tiny"
	}
	return s
}

// Validate reports the first invalid field of the normalized spec.
func (s Spec) Validate() error {
	s = s.Normalize()
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.Topology.Nodes < 0 || s.Topology.Links < 0 || s.Topology.CapacityMbps < 0 {
		return fmt.Errorf("scenario: negative topology size or capacity")
	}
	// Family names and parameters validate against the generator
	// registries, so error messages enumerate what is actually registered.
	if _, _, err := topo.Resolve(s.Topology.Family, s.Topology.params()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, _, err := traffic.ResolveModel(s.Traffic.HighModel, s.Traffic.params()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, ok := objectiveKinds[s.Objective.Kind]; !ok {
		return fmt.Errorf("scenario: unknown objective kind %q (load|sla)", s.Objective.Kind)
	}
	if s.Objective.ThetaMs < 0 {
		return fmt.Errorf("scenario: negative SLA bound %g ms", s.Objective.ThetaMs)
	}
	for i, load := range s.Loads {
		if load <= 0 || load > 2 {
			return fmt.Errorf("scenario: load point %d is %g, want (0,2]", i, load)
		}
	}
	if s.Trials < 1 || s.Trials > 10000 {
		return fmt.Errorf("scenario: %d trials outside [1,10000]", s.Trials)
	}
	if _, err := BudgetByName(s.Budget.Tier); err != nil {
		return err
	}
	if s.Budget.DTRIters < 0 || s.Budget.DTRRefine < 0 || s.Budget.STRIters < 0 || s.Budget.SearchWorkers < 0 {
		return fmt.Errorf("scenario: negative budget override")
	}
	if s.Failures.MaxLinks < 0 || s.Failures.Sample < 0 {
		return fmt.Errorf("scenario: negative failure sample cap")
	}
	if s.Failures.Enabled() {
		if err := s.Failures.Model(0).Validate(); err != nil {
			return err
		}
	} else if s.Failures.Robust {
		return fmt.Errorf("scenario: robust search requires a failure model (set kind or single_link)")
	}
	if s.Churn != nil {
		if err := s.Churn.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ResolveBudget materializes the spec's budget tier plus overrides.
func (s Spec) ResolveBudget() (Budget, error) {
	s = s.Normalize()
	b, err := BudgetByName(s.Budget.Tier)
	if err != nil {
		return Budget{}, err
	}
	if s.Budget.DTRIters > 0 {
		b.DTR.N = s.Budget.DTRIters
	}
	if s.Budget.DTRRefine > 0 {
		b.DTR.K = s.Budget.DTRRefine
	}
	if s.Budget.STRIters > 0 {
		b.STR.Iterations = s.Budget.STRIters
	}
	if s.Budget.SearchWorkers > 0 {
		b.DTR.Workers = s.Budget.SearchWorkers
		b.STR.Workers = s.Budget.SearchWorkers
	}
	return b, nil
}

// WorkItem is one trial of the expanded campaign.
type WorkItem struct {
	// Index is the item's position in the deterministic work-list order
	// (point-major, then trial).
	Index int
	// Point indexes Spec.Loads; Trial counts repetitions within the point.
	Point, Trial int
	// Spec is the fully derived problem instance, including its sub-seed.
	Spec InstanceSpec
}

// WorkList expands the normalized spec into its deterministic work-list:
// one item per (load point, trial), each with a SplitMix64-derived sub-seed.
func (s Spec) WorkList() []WorkItem {
	s = s.Normalize()
	kind := objectiveKinds[s.Objective.Kind]
	topoParams := s.Topology.params()
	hpParams := s.Traffic.params()
	items := make([]WorkItem, 0, len(s.Loads)*s.Trials)
	for p, load := range s.Loads {
		for t := 0; t < s.Trials; t++ {
			seed := SubSeed(s.Seed, p, t)
			is := InstanceSpec{
				Topology:   s.Topology.Family,
				TopoParams: &topoParams,
				Kind:       kind,
				ThetaMs:    s.Objective.ThetaMs,
				HPModel:    s.Traffic.HighModel,
				HPParams:   &hpParams,
				TargetUtil: load,
				Seed:       seed,
			}
			if s.Failures.Enabled() && s.Failures.Robust {
				m := s.Failures.robustModel(seed)
				is.Robust = &m
			}
			items = append(items, WorkItem{
				Index: len(items),
				Point: p,
				Trial: t,
				Spec:  is,
			})
		}
	}
	return items
}

// Load decodes one spec from JSON, rejecting unknown fields so typos in
// hand-written campaign files fail loudly.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode spec: %w", err)
	}
	return s, nil
}

// LoadFile decodes one spec from a JSON file.
func LoadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	s, err := Load(bytes.NewReader(data))
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
