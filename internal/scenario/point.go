package scenario

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dualtopo/internal/eval"
	"dualtopo/internal/obs"
	"dualtopo/internal/resilience"
	"dualtopo/internal/search"
)

// Budget bundles the search budgets applied to every optimized instance.
type Budget struct {
	DTR search.Params
	STR search.STRParams
}

// TinyBudget returns the integration-test budgets: real topologies, small
// search budgets, single-threaded (and therefore bitwise-deterministic)
// searches.
func TinyBudget() Budget {
	d := search.Defaults()
	d.N, d.K, d.M, d.Neighbors, d.Workers = 120, 80, 40, 4, 1
	s := search.STRDefaults()
	s.Iterations, s.Candidates, s.M, s.Workers = 300, 4, 60, 1
	return Budget{DTR: d, STR: s}
}

// SmallBudget returns the default laptop-scale budgets: a few minutes per
// sweep on commodity hardware.
func SmallBudget() Budget {
	d := search.Defaults()
	d.N, d.K, d.M, d.Workers = 2000, 1200, 300, 1
	s := search.STRDefaults()
	s.Iterations, s.Candidates, s.M, s.Workers = 6000, 5, 300, 1
	return Budget{DTR: d, STR: s}
}

// PaperBudget returns the publication budgets of §5.1.3 (N=300000,
// K=800000). Expect very long runtimes.
func PaperBudget() Budget {
	return Budget{DTR: search.Defaults(), STR: search.STRDefaults()}
}

// BudgetByName resolves "tiny", "small" or "paper".
func BudgetByName(name string) (Budget, error) {
	switch strings.ToLower(name) {
	case "tiny":
		return TinyBudget(), nil
	case "small":
		return SmallBudget(), nil
	case "paper":
		return PaperBudget(), nil
	default:
		return Budget{}, fmt.Errorf("scenario: unknown budget tier %q (tiny|small|paper)", name)
	}
}

// Point is the outcome of optimizing one instance with both schemes.
type Point struct {
	Spec InstanceSpec
	// Inst is the built problem instance the searches ran on; kept so
	// downstream analyses (histograms, failure sweeps) need not rebuild it.
	Inst *Instance
	// MeasuredUtil is the average link utilization of the final STR
	// solution, the paper's network-load reference (footnote 4).
	MeasuredUtil float64
	STR          *search.STRResult
	DTR          *search.DTRResult
	// RH and RL are the paper's cost ratios: class cost under STR divided
	// by class cost under DTR (Fig. 2).
	RH, RL float64
}

// RunPoint builds the instance and runs both searches. DTR warm-starts from
// the STR solution: DTR evaluates {W, W} identically to STR's W, so the DTR
// search can only improve on the baseline lexicographically. This removes
// search-budget artifacts from the STR/DTR comparison (the paper's premise
// is that DTR strictly generalizes STR).
func RunPoint(spec InstanceSpec, b Budget) (*Point, error) {
	buildSpan := obs.Time(met.phaseBuild)
	inst, err := spec.Build()
	if err != nil {
		return nil, err
	}
	e, err := inst.Evaluator()
	buildSpan.Stop()
	if err != nil {
		return nil, err
	}
	strParams := b.STR
	strParams.Seed = spec.Seed*2 + 1
	strSpan := obs.Time(met.phaseSTR)
	strRes, err := search.STR(e, strParams)
	strSpan.Stop()
	if err != nil {
		return nil, err
	}
	dtrParams := b.DTR
	dtrParams.Seed = spec.Seed*2 + 2
	if spec.Robust != nil {
		states, err := resilience.Enumerate(inst.G, *spec.Robust)
		if err != nil {
			return nil, err
		}
		dtrParams.Robust = search.RobustParams{States: states, Alpha: robustAlpha, Beta: robustBeta}
	}
	dtrSpan := obs.Time(met.phaseDTR)
	dtrRes, err := search.DTRFrom(e, strRes.W, strRes.W, dtrParams)
	dtrSpan.Stop()
	if err != nil {
		return nil, err
	}
	pt := &Point{
		Spec:         spec,
		Inst:         inst,
		MeasuredUtil: strRes.Result.AvgUtilization(inst.G),
		STR:          strRes,
		DTR:          dtrRes,
	}
	pt.RH = costRatio(primaryCost(spec.Kind, strRes.Result), primaryCost(spec.Kind, dtrRes.Result))
	pt.RL = costRatio(strRes.Result.PhiL, dtrRes.Result.PhiL)
	return pt, nil
}

// RunPoints executes one point per spec on a pool of exactly `workers`
// goroutines, preserving spec order in the result. onDone, when non-nil, is
// called from worker goroutines as each point completes (in completion
// order, not spec order).
func RunPoints(specs []InstanceSpec, b Budget, workers int, onDone func(i int, pt *Point)) ([]*Point, error) {
	points := make([]*Point, len(specs))
	errs := make([]error, len(specs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	idxCh := make(chan int)
	go func() {
		for i := range specs {
			idxCh <- i
		}
		close(idxCh)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				points[i], errs[i] = RunPoint(specs[i], b)
				if errs[i] == nil && onDone != nil {
					onDone(i, points[i])
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: point %d (%+v): %w", i, specs[i], err)
		}
	}
	return points, nil
}

// primaryCost extracts the class-H cost the paper ratios: ΦH for load-based
// runs, Λ for SLA-based runs.
func primaryCost(kind eval.Kind, r *eval.Result) float64 {
	if kind == eval.SLABased {
		return r.Lambda
	}
	return r.PhiH
}

// costRatio computes str/dtr, defining 0/0 as 1 (both schemes met the
// objective perfectly, e.g. zero SLA penalty on both sides).
func costRatio(str, dtr float64) float64 {
	const tiny = 1e-12
	if dtr <= tiny && str <= tiny {
		return 1
	}
	if dtr <= tiny {
		return math.Inf(1)
	}
	return str / dtr
}
