package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/obs"
	"dualtopo/internal/resilience"
	"dualtopo/internal/search"
)

// ClassMetrics is one scheme's slice of the paper's metrics for one trial.
type ClassMetrics struct {
	PhiH        float64 `json:"phi_h"`
	PhiL        float64 `json:"phi_l"`
	Lambda      float64 `json:"lambda,omitempty"`
	Violations  int     `json:"violations,omitempty"`
	MaxUtil     float64 `json:"max_util"`
	Evaluations int64   `json:"evaluations"`
}

func classMetrics(g *graph.Graph, r *eval.Result, evals int64) ClassMetrics {
	return ClassMetrics{
		PhiH:        r.PhiH,
		PhiL:        r.PhiL,
		Lambda:      r.Lambda,
		Violations:  r.Violations,
		MaxUtil:     r.MaxUtilization(g),
		Evaluations: evals,
	}
}

// TrialResult is one completed trial, the unit of the engine's JSON-lines
// stream. All fields except ElapsedMs are deterministic functions of the
// spec.
type TrialResult struct {
	Campaign     string       `json:"campaign"`
	Point        int          `json:"point"`
	TargetUtil   float64      `json:"target_util"`
	Trial        int          `json:"trial"`
	Seed         uint64       `json:"seed"`
	ElapsedMs    float64      `json:"elapsed_ms"`
	MeasuredUtil float64      `json:"measured_util"`
	RH           float64      `json:"rh"`
	RL           float64      `json:"rl"`
	STR          ClassMetrics `json:"str"`
	DTR          ClassMetrics `json:"dtr"`
	// Failures summarizes the post-optimization failure sweep, when the
	// campaign configured one.
	Failures *resilience.Summary `json:"failures,omitempty"`
	// Robust reports the failure-aware DTR search score, when the campaign
	// enabled robust search.
	Robust *search.RobustScore `json:"robust,omitempty"`
	// Churn summarizes the churn replay of the trial's DTR weights, when
	// the campaign configured one.
	Churn *ChurnMetrics `json:"churn,omitempty"`
}

// Progress reports campaign execution state after each completed trial.
type Progress struct {
	Done, Total int
	Elapsed     time.Duration
}

// ErrInterrupted reports that Run's context was cancelled before the
// campaign finished. Run still returns a partial CampaignResult holding
// every trial that completed, so callers can flush what they have.
var ErrInterrupted = errors.New("scenario: campaign interrupted")

// Options configures campaign execution.
type Options struct {
	// Context, when non-nil, cancels the campaign: no new trials start
	// after it is done (in-flight trials finish), Run aggregates the
	// completed prefix and returns it alongside ErrInterrupted.
	Context context.Context
	// Workers bounds concurrently executed trials; 0 means GOMAXPROCS.
	Workers int
	// RouteWorkers bounds the SPF worker pool used inside each trial's full
	// routing passes (search initialization and refreshes, failure-sweep
	// baselines); 1 keeps them sequential, n > 1 fixes the pool size, and 0
	// (the default) is block-aware auto: when the trial pool itself is the
	// parallelism (more than one concurrent trial) routing stays sequential,
	// otherwise the SPF core picks a pool from the instance size and
	// GOMAXPROCS. Parallel routing is bitwise-identical to sequential, so
	// campaign results never depend on it. Explicit n > 1 is most useful
	// when Workers is small relative to the machine — e.g. a campaign of a
	// few heavy trials on a many-core box.
	RouteWorkers int
	// Guide sets the DTR searches' guided-step probability (Params.Guide)
	// across every trial; 0 keeps the paper's blind rank sampling.
	Guide float64
	// Prune enables the routing-invariance candidate prune (Params.Prune)
	// across every trial. Both knobs leave trajectories deterministic per
	// trial, so aggregates remain functions of the spec plus these options.
	Prune bool
	// OnTrial, when non-nil, receives every completed trial in work-list
	// order (the engine buffers out-of-order completions), so streamed
	// output is reproducible regardless of Workers.
	OnTrial func(TrialResult)
	// OnProgress, when non-nil, receives a progress update after each
	// completion (in completion order).
	OnProgress func(Progress)
}

// CampaignResult is a fully executed campaign.
type CampaignResult struct {
	Spec Spec `json:"spec"`
	// Trials lists every trial in work-list order.
	Trials []TrialResult `json:"trials"`
	// Points aggregates the trials of each load point.
	Points []PointSummary `json:"points"`
	// ElapsedMs is wall-clock execution time.
	ElapsedMs float64 `json:"elapsed_ms"`
	// TrialLatency aggregates per-trial wall-clock durations (ms) across the
	// whole campaign. Timing, so — like ElapsedMs — it is excluded from the
	// deterministic aggregates payload (AggregatesJSON).
	TrialLatency Aggregate `json:"trial_latency_ms"`
	// Interrupted marks a partial result: the campaign's context was
	// cancelled and Trials holds only the completed subset.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Run executes the campaign: it normalizes and validates the spec, expands
// it into the deterministic work-list, runs trials on a bounded worker pool,
// and aggregates per-point summaries. The aggregates depend only on the spec
// (never on Workers or scheduling).
func Run(spec Spec, opts Options) (*CampaignResult, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	budget, err := spec.ResolveBudget()
	if err != nil {
		return nil, err
	}
	if opts.Guide > 0 {
		budget.DTR.Guide = opts.Guide
	}
	if opts.Prune {
		budget.DTR.Prune = true
	}
	items := spec.WorkList()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	// Thread the full-route worker setting into every trial's searches;
	// results stay bitwise-identical, only trial setup gets faster. Auto (0)
	// resolves to sequential whenever more than one trial runs at a time —
	// there the trial pool is the parallelism and per-trial SPF pools would
	// oversubscribe the machine.
	routeWorkers := opts.RouteWorkers
	if routeWorkers == 0 && workers > 1 {
		routeWorkers = 1
	}
	budget.DTR.RouteWorkers = routeWorkers
	budget.STR.RouteWorkers = routeWorkers

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	results := make([]TrialResult, len(items))
	errs := make([]error, len(items))
	idxCh := make(chan int)
	doneCh := make(chan int)
	go func() {
		for i := range items {
			idxCh <- i
		}
		close(idxCh)
	}()
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idxCh {
				// After cancellation, drain the remaining work-list without
				// running it; in-flight trials complete normally, so every
				// index still flows through doneCh exactly once.
				if err := ctx.Err(); err != nil {
					errs[i] = err
				} else {
					results[i], errs[i] = runTrial(spec, items[i], budget, routeWorkers)
				}
				doneCh <- i
			}
		}()
	}

	// Collect completions, emitting OnTrial strictly in work-list order.
	completed := make([]bool, len(items))
	emitted := 0
	for done := 0; done < len(items); done++ {
		i := <-doneCh
		completed[i] = true
		for emitted < len(items) && completed[emitted] {
			if errs[emitted] == nil && opts.OnTrial != nil {
				opts.OnTrial(results[emitted])
			}
			emitted++
		}
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			met.rate.Set(float64(done+1) / elapsed)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{Done: done + 1, Total: len(items), Elapsed: time.Since(start)})
		}
	}
	if ctx.Err() != nil {
		// Partial flush: aggregate only the trials that completed before the
		// cancellation and hand them back with ErrInterrupted.
		done := make([]TrialResult, 0, len(items))
		for i := range items {
			if errs[i] == nil {
				done = append(done, results[i])
			}
		}
		res := &CampaignResult{
			Spec:        spec,
			Trials:      done,
			Points:      summarizePoints(spec, done),
			ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
			Interrupted: true,
		}
		latencies := make([]float64, len(done))
		for i, tr := range done {
			latencies[i] = tr.ElapsedMs
		}
		res.TrialLatency = aggregate(latencies)
		return res, ErrInterrupted
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: %s point %d trial %d: %w",
				spec.Name, items[i].Point, items[i].Trial, err)
		}
	}

	aggSpan := obs.Time(met.phaseAgg)
	points := summarizePoints(spec, results)
	aggSpan.Stop()
	latencies := make([]float64, len(results))
	for i, tr := range results {
		latencies[i] = tr.ElapsedMs
	}
	return &CampaignResult{
		Spec:         spec,
		Trials:       results,
		Points:       points,
		ElapsedMs:    float64(time.Since(start)) / float64(time.Millisecond),
		TrialLatency: aggregate(latencies),
	}, nil
}

// runTrial optimizes one work item and condenses it into a TrialResult.
// routeWorkers sizes the SPF pool of the trial's full evaluations.
func runTrial(spec Spec, it WorkItem, b Budget, routeWorkers int) (TrialResult, error) {
	met.busy.Add(1)
	defer met.busy.Add(-1)
	start := time.Now()
	pt, err := RunPoint(it.Spec, b)
	if err != nil {
		return TrialResult{}, err
	}
	tr := TrialResult{
		Campaign:     spec.Name,
		Point:        it.Point,
		TargetUtil:   it.Spec.TargetUtil,
		Trial:        it.Trial,
		Seed:         it.Spec.Seed,
		MeasuredUtil: pt.MeasuredUtil,
		RH:           pt.RH,
		RL:           pt.RL,
		STR:          classMetrics(pt.Inst.G, pt.STR.Result, pt.STR.Evaluations),
		DTR:          classMetrics(pt.Inst.G, pt.DTR.Result, pt.DTR.Evaluations),
	}
	tr.Robust = pt.DTR.Robust
	if spec.Failures.Enabled() {
		sweepSpan := obs.Time(met.phaseSweep)
		model := spec.Failures.Model(it.Spec.Seed)
		states, err := resilience.Enumerate(pt.Inst.G, model)
		if err != nil {
			return TrialResult{}, err
		}
		e, err := pt.Inst.Evaluator()
		if err != nil {
			return TrialResult{}, err
		}
		sw := resilience.NewSweeper(e, resilience.Options{RouteWorkers: routeWorkers})
		fs, err := resilience.CompareSchemes(sw, pt.STR.W, pt.DTR.WH, pt.DTR.WL, states)
		if err != nil {
			return TrialResult{}, err
		}
		tr.Failures = fs.Summary(model.String())
		sweepSpan.Stop()
	}
	if spec.Churn != nil {
		cm, err := runChurn(spec.Churn, pt, it.Spec.Seed, routeWorkers)
		if err != nil {
			return TrialResult{}, err
		}
		tr.Churn = cm
	}
	elapsed := time.Since(start)
	met.trialSec.Observe(elapsed.Seconds())
	met.trials.Inc()
	tr.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
	return tr, nil
}
