package scenario

import (
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// The bundled preset library: named, curated campaigns spanning the paper's
// evaluation axes (topology family × traffic model × objective × failures)
// plus the extended generator families, runnable as `dtrscen run -preset
// <name>` without writing a spec file. All presets default to the tiny
// budget tier; raise it with the CLI's -budget flag (or a spec file) for
// publication-quality numbers.

// presetLibrary lists the bundled campaigns in display order.
var presetLibrary = []Spec{
	{
		Name:        "tiny",
		Description: "smoke test: 30-node random topology, random HP traffic, load objective, 2 loads x 2 trials",
		Topology:    TopologySpec{Family: TopoRandom},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.5, 0.7},
		Trials:      2,
		Seed:        1,
	},
	{
		Name:        "random-load",
		Description: "paper Fig 2(a) family: random topology, load objective, 5-point load sweep",
		Topology:    TopologySpec{Family: TopoRandom},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.5, 0.6, 0.7, 0.8, 0.9},
		Trials:      3,
		Seed:        2,
	},
	{
		Name:        "powerlaw-load",
		Description: "paper Fig 2(b) family: power-law topology, load objective",
		Topology:    TopologySpec{Family: TopoPowerLaw},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.4, 0.5, 0.6, 0.7, 0.8},
		Trials:      3,
		Seed:        3,
	},
	{
		Name:        "isp-load",
		Description: "paper Fig 2(c) family: 16-node ISP backbone, load objective",
		Topology:    TopologySpec{Family: TopoISP},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.4, 0.5, 0.6, 0.7, 0.8},
		Trials:      3,
		Seed:        4,
	},
	{
		Name:        "random-sla",
		Description: "paper Fig 2(d) family: random topology, SLA objective (theta=25ms)",
		Topology:    TopologySpec{Family: TopoRandom},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "sla", ThetaMs: 25},
		Loads:       []float64{0.5, 0.6, 0.7},
		Trials:      3,
		Seed:        5,
	},
	{
		Name:        "sink-uniform-load",
		Description: "paper Fig 8 family: sink HP model with uniformly placed clients, power-law topology",
		Topology:    TopologySpec{Family: TopoPowerLaw},
		Traffic:     TrafficSpec{HighModel: HPSinkUniform, F: 0.20, Sinks: 3},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.4, 0.6, 0.8},
		Trials:      3,
		Seed:        6,
	},
	{
		Name:        "sink-local-isp-failures",
		Description: "what-if: sink HP model with sink-local clients on the ISP backbone, plus every single-link failure",
		Topology:    TopologySpec{Family: TopoISP},
		Traffic:     TrafficSpec{HighModel: HPSinkLocal, F: 0.20, Sinks: 3},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.5, 0.7},
		Trials:      3,
		Seed:        7,
		Failures:    FailureSpec{SingleLink: true},
	},
	{
		Name:        "powerlaw-sla-failures",
		Description: "what-if: SLA objective on the power-law topology under every single-link failure",
		Topology:    TopologySpec{Family: TopoPowerLaw},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "sla", ThetaMs: 25},
		Loads:       []float64{0.5, 0.6},
		Trials:      3,
		Seed:        8,
		Failures:    FailureSpec{SingleLink: true},
	},
	{
		Name:        "isp-robust-dual-link",
		Description: "resilience: failure-aware (robust) DTR search on the ISP backbone, swept over sampled dual-link failures",
		Topology:    TopologySpec{Family: TopoISP},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.6},
		Trials:      2,
		Seed:        9,
		Failures:    FailureSpec{Kind: "link", Count: 2, Sample: 16, Robust: true},
	},
	{
		Name:        "waxman-load",
		Description: "generator family: Waxman geometric topology with distance delays, random HP traffic",
		Topology:    TopologySpec{Family: TopoWaxman, Params: &topo.Params{Nodes: 30, Alpha: 0.3, Beta: 0.5}},
		Traffic:     TrafficSpec{HighModel: HPRandom},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.5, 0.7},
		Trials:      2,
		Seed:        10,
	},
	{
		Name:        "hier-hotspot",
		Description: "generator family: two-tier hierarchical ISP with fat core, bimodal hotspot HP traffic",
		Topology:    TopologySpec{Family: TopoHier, Params: &topo.Params{Pops: 5, RoutersPerPop: 4, CoreCapacityX: 4}},
		Traffic:     TrafficSpec{HighModel: HPHotspot, Params: &traffic.Params{F: 0.25, HotspotFraction: 0.15, HotspotBoost: 6}},
		Objective:   ObjectiveSpec{Kind: "load"},
		Loads:       []float64{0.5, 0.7},
		Trials:      2,
		Seed:        11,
	},
	{
		Name:        "torus-gravity-sla",
		Description: "generator family: torus lattice under SLA objective, capacity-weighted gravity HP traffic",
		Topology:    TopologySpec{Family: TopoTorus, Params: &topo.Params{Rows: 4, Cols: 5}},
		Traffic:     TrafficSpec{HighModel: HPGravity, F: 0.20},
		Objective:   ObjectiveSpec{Kind: "sla", ThetaMs: 30},
		Loads:       []float64{0.5, 0.6},
		Trials:      2,
		Seed:        12,
	},
}

// Presets returns the bundled campaign library in display order. Every spec
// is deep-copied; callers may modify the result freely.
func Presets() []Spec {
	out := make([]Spec, len(presetLibrary))
	for i, s := range presetLibrary {
		out[i] = s.clone()
	}
	return out
}

// clone deep-copies the spec's reference fields (Loads, params objects and
// SRLG groups).
func (s Spec) clone() Spec {
	s.Loads = append([]float64(nil), s.Loads...)
	if s.Topology.Params != nil {
		p := *s.Topology.Params
		s.Topology.Params = &p
	}
	if s.Traffic.Params != nil {
		p := *s.Traffic.Params
		s.Traffic.Params = &p
	}
	if s.Failures.SRLGs != nil {
		groups := make([][]int, len(s.Failures.SRLGs))
		for i, g := range s.Failures.SRLGs {
			groups[i] = append([]int(nil), g...)
		}
		s.Failures.SRLGs = groups
	}
	return s
}

// PresetByName resolves one bundled campaign (deep-copied, like Presets).
func PresetByName(name string) (Spec, bool) {
	for _, s := range presetLibrary {
		if s.Name == name {
			return s.clone(), true
		}
	}
	return Spec{}, false
}
