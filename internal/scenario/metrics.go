package scenario

import "dualtopo/internal/obs"

// Engine telemetry, shared by every campaign in the process. Handles are
// pre-resolved at init so per-trial updates never allocate; histograms are
// sampled only at phase boundaries (milliseconds apart), so the cost is
// negligible next to the searches they time.
var met = struct {
	trials     *obs.Counter
	busy       *obs.Gauge
	rate       *obs.Gauge
	trialSec   *obs.Histogram
	phaseBuild *obs.Histogram
	phaseSTR   *obs.Histogram
	phaseDTR   *obs.Histogram
	phaseSweep *obs.Histogram
	phaseAgg   *obs.Histogram
}{
	trials:     obs.Default().Counter("scenario_trials_total", "Completed campaign trials."),
	busy:       obs.Default().Gauge("scenario_workers_busy", "Trial workers currently executing a trial."),
	rate:       obs.Default().Gauge("scenario_trials_per_second", "Campaign throughput over the run so far."),
	trialSec:   obs.Default().Histogram("scenario_trial_seconds", "Wall-clock duration of one trial.", obs.ExpBuckets(1e-3, 10, 8)),
	phaseBuild: phaseHist("build"),
	phaseSTR:   phaseHist("search_str"),
	phaseDTR:   phaseHist("search_dtr"),
	phaseSweep: phaseHist("sweep"),
	phaseAgg:   phaseHist("aggregate"),
}

func phaseHist(phase string) *obs.Histogram {
	return obs.Default().HistogramVec("scenario_phase_seconds",
		"Wall-clock duration of one trial phase.", obs.ExpBuckets(1e-4, 10, 9), "phase").With(phase)
}
