package scenario

import (
	"fmt"

	"dualtopo/internal/graph"
	"dualtopo/internal/stats"
)

// FailureSamples holds the per-failure low-priority degradation factors of
// one optimized point: ΦL(failed)/ΦL(intact) for each surviving single
// bidirectional link failure, with weights unchanged (OSPF reconverges on
// the surviving links, as operators run between re-optimizations).
type FailureSamples struct {
	// STR and DTR are parallel degradation-factor samples, one per
	// evaluated failure.
	STR, DTR []float64
	// BaseSTR and BaseDTR are the intact-network ΦL baselines.
	BaseSTR, BaseDTR float64
	// Disconnecting counts failures that disconnected some demand (skipped:
	// both schemes lose the same physical reachability).
	Disconnecting int
}

// SingleLinkFailures re-evaluates pt's final weight settings under every
// single bidirectional link failure (capped at max when max > 0). The
// returned samples preserve link order, so results are deterministic.
func SingleLinkFailures(pt *Point, max int) (*FailureSamples, error) {
	e, err := pt.Inst.Evaluator()
	if err != nil {
		return nil, err
	}
	fs := &FailureSamples{
		BaseSTR: pt.STR.Result.PhiL,
		BaseDTR: pt.DTR.Result.PhiL,
	}
	seen := map[graph.EdgeID]bool{}
	evaluated := 0
	for _, edge := range pt.Inst.G.Edges() {
		if seen[edge.ID] {
			continue
		}
		rev, ok := pt.Inst.G.Reverse(edge.ID)
		if !ok {
			continue
		}
		seen[edge.ID] = true
		seen[rev] = true
		if max > 0 && evaluated >= max {
			break
		}
		evaluated++

		strW := pt.STR.W.WithFailedArcs(edge.ID, rev)
		strRes, errSTR := e.EvaluateSTR(strW)
		dtrWH := pt.DTR.WH.WithFailedArcs(edge.ID, rev)
		dtrWL := pt.DTR.WL.WithFailedArcs(edge.ID, rev)
		dtrRes, errDTR := e.EvaluateDTR(dtrWH, dtrWL)
		if errSTR != nil || errDTR != nil {
			fs.Disconnecting++
			continue
		}
		fs.STR = append(fs.STR, strRes.PhiL/fs.BaseSTR)
		fs.DTR = append(fs.DTR, dtrRes.PhiL/fs.BaseDTR)
	}
	if len(fs.STR) == 0 {
		return nil, fmt.Errorf("scenario: every evaluated failure disconnected the network")
	}
	return fs, nil
}

// DTRStillBetter counts failures after which DTR keeps the lower absolute
// ΦL despite both schemes degrading.
func (fs *FailureSamples) DTRStillBetter() int {
	n := 0
	for i := range fs.STR {
		if fs.DTR[i]*fs.BaseDTR <= fs.STR[i]*fs.BaseSTR {
			n++
		}
	}
	return n
}

// FailureSummary condenses FailureSamples for trial records and aggregates.
type FailureSummary struct {
	Evaluated     int     `json:"evaluated"`
	Disconnecting int     `json:"disconnecting"`
	STRMeanDegr   float64 `json:"str_mean_degradation"`
	STRMaxDegr    float64 `json:"str_max_degradation"`
	DTRMeanDegr   float64 `json:"dtr_mean_degradation"`
	DTRMaxDegr    float64 `json:"dtr_max_degradation"`
	// DTRStillBetter counts failures after which DTR keeps the lower
	// absolute ΦL.
	DTRStillBetter int `json:"dtr_still_better"`
}

// Summary condenses the samples.
func (fs *FailureSamples) Summary() *FailureSummary {
	return &FailureSummary{
		Evaluated:      len(fs.STR) + fs.Disconnecting,
		Disconnecting:  fs.Disconnecting,
		STRMeanDegr:    stats.Mean(fs.STR),
		STRMaxDegr:     stats.Max(fs.STR),
		DTRMeanDegr:    stats.Mean(fs.DTR),
		DTRMaxDegr:     stats.Max(fs.DTR),
		DTRStillBetter: fs.DTRStillBetter(),
	}
}
