package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Name:      "t",
		Topology:  TopologySpec{Family: TopoRandom},
		Traffic:   TrafficSpec{HighModel: HPRandom},
		Objective: ObjectiveSpec{Kind: "load"},
		Loads:     []float64{0.5, 0.7},
		Trials:    2,
		Seed:      11,
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Description = "round trip"
	s.Objective = ObjectiveSpec{Kind: "sla", ThetaMs: 30}
	s.Budget = BudgetSpec{Tier: "small", STRIters: 100}
	s.Failures = FailureSpec{Kind: "srlg", SRLGs: [][]int{{0, 1}, {2}}, Sample: 5, Seed: 3, Robust: true}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed spec:\nin  %+v\nout %+v", s, got)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name":"x","topolgy":{"family":"random"}}`))
	if err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := Spec{Name: "d"}.Normalize()
	if s.Topology.Family != TopoRandom || s.Traffic.HighModel != HPRandom {
		t.Fatalf("normalize = %+v", s)
	}
	if s.Objective.Kind != "load" || s.Budget.Tier != "tiny" {
		t.Fatalf("normalize = %+v", s)
	}
	if len(s.Loads) != 1 || s.Loads[0] != 0.6 || s.Trials != 1 {
		t.Fatalf("normalize = %+v", s)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"bad family", func(s *Spec) { s.Topology.Family = "mesh" }},
		{"bad model", func(s *Spec) { s.Traffic.HighModel = "flood" }},
		{"bad kind", func(s *Spec) { s.Objective.Kind = "latency" }},
		{"bad f", func(s *Spec) { s.Traffic.F = 1.5 }},
		{"bad k", func(s *Spec) { s.Traffic.K = -0.1 }},
		{"bad load", func(s *Spec) { s.Loads = []float64{0} }},
		{"huge load", func(s *Spec) { s.Loads = []float64{3} }},
		{"bad trials", func(s *Spec) { s.Trials = -1 }},
		{"bad tier", func(s *Spec) { s.Budget.Tier = "huge" }},
		{"negative theta", func(s *Spec) { s.Objective.ThetaMs = -1 }},
		{"negative override", func(s *Spec) { s.Budget.STRIters = -5 }},
		{"negative failure cap", func(s *Spec) { s.Failures.MaxLinks = -1 }},
		{"negative failure sample", func(s *Spec) { s.Failures.Sample = -1 }},
		{"bad failure kind", func(s *Spec) { s.Failures.Kind = "meteor" }},
		{"bad link count", func(s *Spec) { s.Failures = FailureSpec{Kind: "link", Count: 3} }},
		{"srlg without groups", func(s *Spec) { s.Failures = FailureSpec{Kind: "srlg"} }},
		{"robust without model", func(s *Spec) { s.Failures = FailureSpec{Robust: true} }},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWorkListShapeAndSeeds(t *testing.T) {
	s := validSpec()
	items := s.WorkList()
	if len(items) != 4 { // 2 loads x 2 trials
		t.Fatalf("work list = %d items, want 4", len(items))
	}
	seeds := map[uint64]bool{}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d has index %d", i, it.Index)
		}
		if want := s.Loads[it.Point]; it.Spec.TargetUtil != want {
			t.Errorf("item %d target util = %g, want %g", i, it.Spec.TargetUtil, want)
		}
		if want := SubSeed(s.Seed, it.Point, it.Trial); it.Spec.Seed != want {
			t.Errorf("item %d seed = %d, want %d", i, it.Spec.Seed, want)
		}
		if seeds[it.Spec.Seed] {
			t.Errorf("item %d reuses seed %d", i, it.Spec.Seed)
		}
		seeds[it.Spec.Seed] = true
	}
	// Work-list order is point-major.
	if items[0].Point != 0 || items[1].Point != 0 || items[2].Point != 1 {
		t.Fatalf("order wrong: %+v", items)
	}
}

func TestResolveBudget(t *testing.T) {
	s := validSpec()
	s.Budget = BudgetSpec{Tier: "tiny", DTRIters: 50, DTRRefine: 30, STRIters: 99, SearchWorkers: 2}
	b, err := s.ResolveBudget()
	if err != nil {
		t.Fatal(err)
	}
	if b.DTR.N != 50 || b.DTR.K != 30 || b.STR.Iterations != 99 {
		t.Fatalf("overrides not applied: %+v", b)
	}
	if b.DTR.Workers != 2 || b.STR.Workers != 2 {
		t.Fatalf("search workers not applied: %+v", b)
	}
	// Tier alone keeps tier values.
	s.Budget = BudgetSpec{Tier: "tiny"}
	b, err = s.ResolveBudget()
	if err != nil {
		t.Fatal(err)
	}
	want := TinyBudget()
	if b.DTR.N != want.DTR.N || b.STR.Iterations != want.STR.Iterations {
		t.Fatalf("tier budget = %+v, want %+v", b, want)
	}
}

func TestBudgetByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper", "TINY"} {
		if _, err := BudgetByName(name); err != nil {
			t.Errorf("BudgetByName(%q): %v", name, err)
		}
	}
	if _, err := BudgetByName("nope"); err == nil {
		t.Error("unknown tier accepted")
	}
}

func TestPresetsLibrary(t *testing.T) {
	presets := Presets()
	if len(presets) < 8 {
		t.Fatalf("preset library has %d entries, want >= 8", len(presets))
	}
	families := map[string]bool{}
	models := map[string]bool{}
	kinds := map[string]bool{}
	withFailures, withoutFailures := false, false
	seen := map[string]bool{}
	for _, s := range presets {
		if seen[s.Name] {
			t.Errorf("duplicate preset name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("preset %q has no description", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", s.Name, err)
		}
		n := s.Normalize()
		families[n.Topology.Family] = true
		models[n.Traffic.HighModel] = true
		kinds[n.Objective.Kind] = true
		if n.Failures.Enabled() {
			withFailures = true
		} else {
			withoutFailures = true
		}
	}
	// The library must span the paper's evaluation axes.
	for _, f := range []string{TopoRandom, TopoPowerLaw, TopoISP} {
		if !families[f] {
			t.Errorf("no preset uses topology %q", f)
		}
	}
	for _, m := range []string{HPRandom, HPSinkUniform, HPSinkLocal} {
		if !models[m] {
			t.Errorf("no preset uses HP model %q", m)
		}
	}
	for _, k := range []string{"load", "sla"} {
		if !kinds[k] {
			t.Errorf("no preset uses objective %q", k)
		}
	}
	if !withFailures || !withoutFailures {
		t.Error("library must include both with- and without-failure campaigns")
	}
	if _, ok := PresetByName("tiny"); !ok {
		t.Error("tiny preset missing")
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("unknown preset found")
	}
}

func TestPresetsAreDeepCopies(t *testing.T) {
	a, _ := PresetByName("tiny")
	orig := a.Loads[0]
	a.Loads[0] = 0.99
	b, _ := PresetByName("tiny")
	if b.Loads[0] != orig {
		t.Fatalf("mutating a returned preset corrupted the library: %g", b.Loads[0])
	}
	ps := Presets()
	ps[0].Loads[0] = 0.98
	c, _ := PresetByName(ps[0].Name)
	if c.Loads[0] == 0.98 {
		t.Fatal("mutating Presets() result corrupted the library")
	}
}

func TestFailureSpecModelDerivation(t *testing.T) {
	// Legacy aliases: SingleLink → link kind, MaxLinks → sample.
	legacy := FailureSpec{SingleLink: true, MaxLinks: 5}
	m := legacy.Model(7)
	if m.Kind != "link" || m.Count != 1 || m.Sample != 5 {
		t.Fatalf("legacy model = %+v", m)
	}
	// A derived seed is per-trial but reproducible; a pinned seed wins.
	if legacy.Model(7).Seed != m.Seed {
		t.Fatal("derived sampling seed not reproducible")
	}
	if legacy.Model(8).Seed == m.Seed {
		t.Fatal("derived sampling seed ignores the trial seed")
	}
	pinned := FailureSpec{Kind: "node", Seed: 42}
	if got := pinned.Model(7).Seed; got != 42 {
		t.Fatalf("pinned seed = %d, want 42", got)
	}
	// Robust model caps an unbounded sweep at the default sample.
	if got := legacy.robustModel(7).Sample; got != 5 {
		t.Fatalf("robust sample = %d, want the spec's 5", got)
	}
	unbounded := FailureSpec{SingleLink: true}
	if got := unbounded.robustModel(7).Sample; got != RobustDefaultSample {
		t.Fatalf("robust sample = %d, want default %d", got, RobustDefaultSample)
	}
}

func TestWorkListCarriesRobustModel(t *testing.T) {
	s := validSpec()
	s.Failures = FailureSpec{SingleLink: true, Robust: true}
	items := s.WorkList()
	for i, it := range items {
		if it.Spec.Robust == nil {
			t.Fatalf("item %d has no robust model", i)
		}
		if it.Spec.Robust.Sample != RobustDefaultSample {
			t.Fatalf("item %d robust sample = %d", i, it.Spec.Robust.Sample)
		}
	}
	if items[0].Spec.Robust.Seed == items[1].Spec.Robust.Seed {
		t.Fatal("trials share a robust sampling seed")
	}
	s.Failures.Robust = false
	for i, it := range s.WorkList() {
		if it.Spec.Robust != nil {
			t.Fatalf("item %d of non-robust campaign has a robust model", i)
		}
	}
}
