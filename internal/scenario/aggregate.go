package scenario

import (
	"encoding/json"
	"fmt"

	"dualtopo/internal/render"
	"dualtopo/internal/stats"
)

// Aggregate is the mean/p50/p95 summary of one metric across a point's
// trials.
type Aggregate struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

func aggregate(xs []float64) Aggregate {
	return Aggregate{
		Mean: stats.Mean(xs),
		P50:  stats.Quantile(xs, 0.5),
		P95:  stats.Quantile(xs, 0.95),
	}
}

// PointSummary aggregates one load point's trials over the paper's metrics.
type PointSummary struct {
	Point      int     `json:"point"`
	TargetUtil float64 `json:"target_util"`
	Trials     int     `json:"trials"`

	MeasuredUtil Aggregate `json:"measured_util"`
	RH           Aggregate `json:"rh"`
	RL           Aggregate `json:"rl"`
	// PhiH is the high-priority load cost of the DTR solution (identical to
	// STR's when DTR cannot improve it; never worse, by warm-start).
	PhiH    Aggregate `json:"phi_h"`
	STRPhiL Aggregate `json:"str_phi_l"`
	DTRPhiL Aggregate `json:"dtr_phi_l"`

	STRMaxUtil Aggregate `json:"str_max_util"`
	DTRMaxUtil Aggregate `json:"dtr_max_util"`

	// Violation aggregates are only meaningful for SLA campaigns; they stay
	// zero for load-based ones.
	STRViolations Aggregate `json:"str_violations"`
	DTRViolations Aggregate `json:"dtr_violations"`

	// Failure degradation aggregates, present when the campaign evaluated
	// failures: per-trial mean, p95 and worst-case ΦL degradation factors of
	// each scheme, aggregated across trials.
	STRFailDegr  *Aggregate `json:"str_fail_degradation,omitempty"`
	DTRFailDegr  *Aggregate `json:"dtr_fail_degradation,omitempty"`
	STRFailP95   *Aggregate `json:"str_fail_p95,omitempty"`
	DTRFailP95   *Aggregate `json:"dtr_fail_p95,omitempty"`
	STRFailWorst *Aggregate `json:"str_fail_worst,omitempty"`
	DTRFailWorst *Aggregate `json:"dtr_fail_worst,omitempty"`

	// Robust-search aggregates, present when the campaign enabled the
	// failure-aware DTR search: the composite objective and worst-state ΦL
	// of the returned solutions.
	RobustComposite *Aggregate `json:"robust_composite,omitempty"`
	RobustWorstPhiL *Aggregate `json:"robust_worst_phi_l,omitempty"`

	// Churn aggregates, present when the campaign replayed churn: per-trial
	// SLA-violation and transient-loss integrals (Mbps·s) and disconnected
	// event counts.
	ChurnViolation  *Aggregate `json:"churn_violation_mbps_sec,omitempty"`
	ChurnTransient  *Aggregate `json:"churn_transient_mbps_sec,omitempty"`
	ChurnDisconnect *Aggregate `json:"churn_disconnects,omitempty"`
}

// summarizePoints groups trials (already in work-list order) by point and
// aggregates each metric.
func summarizePoints(spec Spec, trials []TrialResult) []PointSummary {
	byPoint := make([][]TrialResult, len(spec.Loads))
	for _, tr := range trials {
		byPoint[tr.Point] = append(byPoint[tr.Point], tr)
	}
	summaries := make([]PointSummary, 0, len(byPoint))
	for p, group := range byPoint {
		if len(group) == 0 {
			continue
		}
		pick := func(f func(TrialResult) float64) Aggregate {
			xs := make([]float64, len(group))
			for i, tr := range group {
				xs[i] = f(tr)
			}
			return aggregate(xs)
		}
		ps := PointSummary{
			Point:      p,
			TargetUtil: spec.Loads[p],
			Trials:     len(group),

			MeasuredUtil: pick(func(t TrialResult) float64 { return t.MeasuredUtil }),
			RH:           pick(func(t TrialResult) float64 { return t.RH }),
			RL:           pick(func(t TrialResult) float64 { return t.RL }),
			PhiH:         pick(func(t TrialResult) float64 { return t.DTR.PhiH }),
			STRPhiL:      pick(func(t TrialResult) float64 { return t.STR.PhiL }),
			DTRPhiL:      pick(func(t TrialResult) float64 { return t.DTR.PhiL }),

			STRMaxUtil: pick(func(t TrialResult) float64 { return t.STR.MaxUtil }),
			DTRMaxUtil: pick(func(t TrialResult) float64 { return t.DTR.MaxUtil }),

			STRViolations: pick(func(t TrialResult) float64 { return float64(t.STR.Violations) }),
			DTRViolations: pick(func(t TrialResult) float64 { return float64(t.DTR.Violations) }),
		}
		if group[0].Failures != nil {
			agg := func(f func(TrialResult) float64) *Aggregate {
				a := pick(f)
				return &a
			}
			ps.STRFailDegr = agg(func(t TrialResult) float64 { return t.Failures.STR.MeanDegr })
			ps.DTRFailDegr = agg(func(t TrialResult) float64 { return t.Failures.DTR.MeanDegr })
			ps.STRFailP95 = agg(func(t TrialResult) float64 { return t.Failures.STR.P95Degr })
			ps.DTRFailP95 = agg(func(t TrialResult) float64 { return t.Failures.DTR.P95Degr })
			ps.STRFailWorst = agg(func(t TrialResult) float64 { return t.Failures.STR.MaxDegr })
			ps.DTRFailWorst = agg(func(t TrialResult) float64 { return t.Failures.DTR.MaxDegr })
		}
		if group[0].Robust != nil {
			comp := pick(func(t TrialResult) float64 { return t.Robust.Composite })
			worst := pick(func(t TrialResult) float64 { return t.Robust.WorstPhiL })
			ps.RobustComposite = &comp
			ps.RobustWorstPhiL = &worst
		}
		if group[0].Churn != nil {
			viol := pick(func(t TrialResult) float64 { return t.Churn.ViolationMbpsSec })
			trans := pick(func(t TrialResult) float64 { return t.Churn.TransientMbpsSec })
			disc := pick(func(t TrialResult) float64 { return float64(t.Churn.Disconnects) })
			ps.ChurnViolation = &viol
			ps.ChurnTransient = &trans
			ps.ChurnDisconnect = &disc
		}
		summaries = append(summaries, ps)
	}
	return summaries
}

// AggregatesJSON marshals only the deterministic per-point aggregates —
// the payload the determinism guarantee covers (timing fields excluded).
func (r *CampaignResult) AggregatesJSON() ([]byte, error) {
	return json.MarshalIndent(r.Points, "", "  ")
}

// SummaryTable renders the per-point aggregates as an aligned text table.
func (r *CampaignResult) SummaryTable() string {
	header := []string{
		"pt", "load", "trials", "util",
		"RH", "RL", "RL.p50", "RL.p95",
		"phiH", "phiL.STR", "phiL.DTR",
		"maxU.STR", "maxU.DTR",
	}
	sla := r.Spec.Objective.Kind == "sla"
	failures := r.Spec.Failures.Enabled()
	churned := r.Spec.Churn != nil
	if sla {
		header = append(header, "vio.STR", "vio.DTR")
	}
	if failures {
		header = append(header, "fail.STR", "fail.DTR", "worst.STR", "worst.DTR")
	}
	if churned {
		header = append(header, "churn.loss", "churn.disc")
	}
	rows := make([][]string, 0, len(r.Points))
	for _, ps := range r.Points {
		row := []string{
			fmt.Sprintf("%d", ps.Point),
			fmt.Sprintf("%.2f", ps.TargetUtil),
			fmt.Sprintf("%d", ps.Trials),
			fmt.Sprintf("%.3f", ps.MeasuredUtil.Mean),
			fmt.Sprintf("%.3f", ps.RH.Mean),
			fmt.Sprintf("%.3f", ps.RL.Mean),
			fmt.Sprintf("%.3f", ps.RL.P50),
			fmt.Sprintf("%.3f", ps.RL.P95),
			fmt.Sprintf("%.4g", ps.PhiH.Mean),
			fmt.Sprintf("%.4g", ps.STRPhiL.Mean),
			fmt.Sprintf("%.4g", ps.DTRPhiL.Mean),
			fmt.Sprintf("%.3f", ps.STRMaxUtil.Mean),
			fmt.Sprintf("%.3f", ps.DTRMaxUtil.Mean),
		}
		if sla {
			row = append(row,
				fmt.Sprintf("%.1f", ps.STRViolations.Mean),
				fmt.Sprintf("%.1f", ps.DTRViolations.Mean))
		}
		if failures {
			cell := func(a *Aggregate) string {
				if a == nil {
					return "n/a"
				}
				return fmt.Sprintf("%.2f", a.Mean)
			}
			row = append(row, cell(ps.STRFailDegr), cell(ps.DTRFailDegr),
				cell(ps.STRFailWorst), cell(ps.DTRFailWorst))
		}
		if churned {
			cell := func(a *Aggregate) string {
				if a == nil {
					return "n/a"
				}
				return fmt.Sprintf("%.4g", a.Mean)
			}
			loss := "n/a"
			if ps.ChurnViolation != nil {
				total := ps.ChurnViolation.Mean
				if ps.ChurnTransient != nil {
					total += ps.ChurnTransient.Mean
				}
				loss = fmt.Sprintf("%.4g", total)
			}
			row = append(row, loss, cell(ps.ChurnDisconnect))
		}
		rows = append(rows, row)
	}
	return render.Table(header, rows)
}
