package scenario

// Splittable seeding: every trial of a campaign draws from its own
// statistically independent random stream, derived purely from (campaign
// seed, point index, trial index). No global RNG is consulted anywhere, and
// no seed is shared between trials, so the work-list can execute in any
// order — and on any number of workers — without changing a single result.

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14),
// a bijective mixer whose outputs pass BigCrush even on sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives the sub-seed of trial (point, trial) from the campaign
// root seed. Distinct (root, point, trial) triples map to distinct,
// well-mixed seeds; identical triples always map to the same seed.
func SubSeed(root uint64, point, trial int) uint64 {
	h := splitmix64(root)
	h = splitmix64(h ^ (uint64(point)+1)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ (uint64(trial)+1)*0xd1b54a32d192ed03)
	return h
}
