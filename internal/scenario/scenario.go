// Package scenario is the declarative what-if engine over dual-topology
// routing: it turns a data-driven campaign Spec (topology family, traffic
// models, objective, load sweep, optional link failures, search budgets,
// trial count) into a deterministic work-list of problem instances, executes
// them on a bounded worker pool, and aggregates the paper's metrics (ΦH, ΦL,
// RH, RL, max utilization, SLA violations) into mean/p50/p95 summaries.
//
// The package generalizes the hard-coded runners of internal/experiments:
// those runners are now curated campaigns expressed on top of this engine
// (see experiments' sweep machinery), while arbitrary new campaigns arrive
// as JSON specs through cmd/dtrscen or the bundled preset library.
//
// Determinism is a contract, not an accident: every trial derives its own
// sub-seed from the campaign seed via a splittable SplitMix64 scheme (no
// global RNG, no seed reuse across trials), so re-running a spec — at any
// worker count — reproduces byte-identical aggregates.
package scenario

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/resilience"
	"dualtopo/internal/spf"
	"dualtopo/internal/stats"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// Topology names accepted by InstanceSpec and TopologySpec.
const (
	TopoRandom   = "random"
	TopoPowerLaw = "powerlaw"
	TopoISP      = "isp"
)

// High-priority traffic models accepted by InstanceSpec and TrafficSpec.
const (
	HPRandom      = "random"
	HPSinkUniform = "sink-uniform"
	HPSinkLocal   = "sink-local"
)

// InstanceSpec describes one problem instance, mirroring the evaluation
// settings of the paper's §5.1. It is the unit a campaign Spec expands into:
// one InstanceSpec per (load point, trial).
type InstanceSpec struct {
	Topology     string
	Nodes, Links int     // bidirectional links; ignored for the ISP topology
	Capacity     float64 // per-arc capacity in Mbps; 0 means the paper's 500
	Kind         eval.Kind
	ThetaMs      float64 // SLA bound; 0 means the paper default (25 ms)
	F            float64 // high-priority volume fraction (f)
	K            float64 // high-priority SD-pair density (k)
	HPModel      string
	Sinks        int // sink-model sink count; 0 means 3
	TargetUtil   float64
	Seed         uint64
	// Robust, when non-nil, makes the DTR search failure-aware: candidates
	// are scored on the nominal objective plus mean and worst-case ΦL over
	// the model's (sampled, seeded) failure set.
	Robust *resilience.Model
}

// Instance is a fully built problem: topology, matrices, evaluator options.
type Instance struct {
	G      *graph.Graph
	TH, TL *traffic.Matrix
	Opts   eval.Options
}

// paperDefaults fills unset spec fields with §5.1 values.
func (s *InstanceSpec) paperDefaults() {
	if s.Topology == "" {
		s.Topology = TopoRandom
	}
	if s.Nodes == 0 {
		s.Nodes = 30
	}
	if s.Links == 0 {
		switch s.Topology {
		case TopoPowerLaw:
			s.Links = 81 // 162 arcs
		default:
			s.Links = 75 // 150 arcs
		}
	}
	if s.Capacity == 0 {
		s.Capacity = topo.DefaultCapacity
	}
	if s.ThetaMs == 0 {
		s.ThetaMs = 25
	}
	if s.F == 0 {
		s.F = 0.30
	}
	if s.K == 0 {
		s.K = 0.10
	}
	if s.HPModel == "" {
		s.HPModel = HPRandom
	}
	if s.Sinks == 0 {
		s.Sinks = 3
	}
	if s.TargetUtil == 0 {
		s.TargetUtil = 0.6
	}
}

// Describe renders the spec's effective (defaulted) parameters for report
// notes.
func (s InstanceSpec) Describe() string {
	s.paperDefaults()
	return fmt.Sprintf("topology=%s kind=%v f=%.0f%% k=%.0f%%",
		s.Topology, s.Kind, s.F*100, s.K*100)
}

// Build constructs the instance: topology with capacities and delays,
// gravity low-priority matrix, high-priority matrix per model, and both
// matrices scaled so the unit-weight routing has the target average link
// utilization (the paper "varies total traffic demand by scaling the
// traffic matrix").
func (s InstanceSpec) Build() (*Instance, error) {
	s.paperDefaults()
	rng := rand.New(rand.NewPCG(s.Seed, 0xd7a1))

	var g *graph.Graph
	var err error
	switch s.Topology {
	case TopoRandom:
		g, err = topo.Random(s.Nodes, s.Links, s.Capacity, rng)
		if err == nil {
			topo.AssignUniformDelays(g, topo.MinSynthDelayMs, topo.MaxSynthDelayMs, rng)
		}
	case TopoPowerLaw:
		g, err = topo.PowerLaw(s.Nodes, s.Links, s.Capacity, rng)
		if err == nil {
			topo.AssignUniformDelays(g, topo.MinSynthDelayMs, topo.MaxSynthDelayMs, rng)
		}
	case TopoISP:
		g = topo.ISPBackbone(s.Capacity)
	default:
		return nil, fmt.Errorf("scenario: unknown topology %q", s.Topology)
	}
	if err != nil {
		return nil, err
	}
	if err := g.RequireStronglyConnected(); err != nil {
		return nil, err
	}

	n := g.NumNodes()
	tl := traffic.Gravity(n, rng)
	var th *traffic.Matrix
	switch s.HPModel {
	case HPRandom:
		th, err = traffic.RandomHighPriority(n, s.K, s.F, tl.Total(), rng)
	case HPSinkUniform:
		th, err = traffic.SinkHighPriority(g, s.Sinks, s.K, s.F, tl.Total(), traffic.UniformClients, rng)
	case HPSinkLocal:
		th, err = traffic.SinkHighPriority(g, s.Sinks, s.K, s.F, tl.Total(), traffic.LocalClients, rng)
	default:
		return nil, fmt.Errorf("scenario: unknown HP model %q", s.HPModel)
	}
	if err != nil {
		return nil, err
	}

	if err := scaleToUtilization(g, th, tl, s.TargetUtil); err != nil {
		return nil, err
	}

	opts := eval.Options{Kind: s.Kind, SLA: cost.DefaultSLA()}
	opts.SLA.ThetaMs = s.ThetaMs
	return &Instance{G: g, TH: th, TL: tl, Opts: opts}, nil
}

// Evaluator builds the instance's evaluator.
func (inst *Instance) Evaluator() (*eval.Evaluator, error) {
	return eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
}

// scaleToUtilization scales both matrices so the average link utilization
// under unit-weight (hop count) routing equals target. Optimized routings
// shift load but barely change the average, so the measured utilization of
// the final STR solution — which experiments report as the paper does —
// lands near the target.
func scaleToUtilization(g *graph.Graph, th, tl *traffic.Matrix, target float64) error {
	if target <= 0 {
		return fmt.Errorf("scenario: target utilization %g <= 0", target)
	}
	w := spf.Uniform(g.NumEdges())
	hLoads, err := spf.Loads(g, w, th)
	if err != nil {
		return err
	}
	lLoads, err := spf.Loads(g, w, tl)
	if err != nil {
		return err
	}
	utils := make([]float64, g.NumEdges())
	for i := range utils {
		utils[i] = (hLoads[i] + lLoads[i]) / g.Edge(graph.EdgeID(i)).Capacity
	}
	avg := stats.Mean(utils)
	if avg <= 0 {
		return fmt.Errorf("scenario: zero baseline utilization")
	}
	th.Scale(target / avg)
	tl.Scale(target / avg)
	return nil
}
