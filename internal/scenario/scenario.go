// Package scenario is the declarative what-if engine over dual-topology
// routing: it turns a data-driven campaign Spec (topology family, traffic
// models, objective, load sweep, optional link failures, search budgets,
// trial count) into a deterministic work-list of problem instances, executes
// them on a bounded worker pool, and aggregates the paper's metrics (ΦH, ΦL,
// RH, RL, max utilization, SLA violations) into mean/p50/p95 summaries.
//
// The package generalizes the hard-coded runners of internal/experiments:
// those runners are now curated campaigns expressed on top of this engine
// (see experiments' sweep machinery), while arbitrary new campaigns arrive
// as JSON specs through cmd/dtrscen or the bundled preset library.
//
// Determinism is a contract, not an accident: every trial derives its own
// sub-seed from the campaign seed via a splittable SplitMix64 scheme (no
// global RNG, no seed reuse across trials), so re-running a spec — at any
// worker count — reproduces byte-identical aggregates.
package scenario

import (
	"fmt"
	"math/rand/v2"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/resilience"
	"dualtopo/internal/spf"
	"dualtopo/internal/stats"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// Topology family names accepted by InstanceSpec and TopologySpec. Any
// name registered in internal/topo works (topo.Families() enumerates them);
// these constants cover the bundled families.
const (
	TopoRandom   = "random"
	TopoPowerLaw = "powerlaw"
	TopoISP      = "isp"
	TopoWaxman   = "waxman"
	TopoRing     = "ring"
	TopoGrid     = "grid"
	TopoTorus    = "torus"
	TopoHier     = "hier"
	TopoImport   = "import"
)

// High-priority traffic model names accepted by InstanceSpec and
// TrafficSpec. Any name registered in internal/traffic works
// (traffic.Models() enumerates them); these constants cover the bundled
// models.
const (
	HPRandom      = "random"
	HPSinkUniform = "sink-uniform"
	HPSinkLocal   = "sink-local"
	HPGravity     = "gravity"
	HPHotspot     = "hotspot"
	HPUniform     = "uniform"
)

// InstanceSpec describes one problem instance, mirroring the evaluation
// settings of the paper's §5.1. It is the unit a campaign Spec expands into:
// one InstanceSpec per (load point, trial).
type InstanceSpec struct {
	Topology     string
	Nodes, Links int     // legacy shorthand for TopoParams.Nodes/Links
	Capacity     float64 // per-arc capacity in Mbps; 0 means the paper's 500
	Kind         eval.Kind
	ThetaMs      float64 // SLA bound; 0 means the paper default (25 ms)
	F            float64 // high-priority volume fraction (f)
	K            float64 // high-priority SD-pair density (k)
	HPModel      string
	Sinks        int // sink-model sink count; 0 means 3
	TargetUtil   float64
	Seed         uint64
	// TopoParams, when non-nil, carries the topology family's full
	// parameter set (Waxman alpha/beta, lattice rows/cols, import path,
	// delay model, ...). The flat Nodes/Links/Capacity shorthand fills its
	// zero values; family defaults fill the rest.
	TopoParams *topo.Params
	// HPParams, when non-nil, carries the high-priority model's full
	// parameter set; the flat F/K/Sinks shorthand fills its zero values.
	HPParams *traffic.Params
	// LPSinks, when positive, replaces the dense n×n gravity low-priority
	// matrix with a sink-limited one (traffic.GravitySinks): every source
	// sends to LPSinks destinations spread evenly over the ID space. Dense
	// gravity is O(n²) memory and infeasible past a few thousand nodes;
	// sink-limited instances stay O(LPSinks·n). 0 keeps dense gravity.
	LPSinks int
	// Robust, when non-nil, makes the DTR search failure-aware: candidates
	// are scored on the nominal objective plus mean and worst-case ΦL over
	// the model's (sampled, seeded) failure set.
	Robust *resilience.Model
}

// Instance is a fully built problem: topology, matrices, evaluator options.
type Instance struct {
	G      *graph.Graph
	TH, TL *traffic.Matrix
	Opts   eval.Options
}

// paperDefaults fills unset spec fields with §5.1 values. Sizing defaults
// apply only to the paper's synthetic families; every other family gets its
// sizes from the topo registry defaults, where a flat Nodes/Links shorthand
// may not even be meaningful (lattices, import).
func (s *InstanceSpec) paperDefaults() {
	if s.Topology == "" {
		s.Topology = TopoRandom
	}
	switch s.Topology {
	case TopoRandom, TopoPowerLaw:
		if s.Nodes == 0 {
			s.Nodes = 30
		}
		if s.Links == 0 {
			if s.Topology == TopoPowerLaw {
				s.Links = 81 // 162 arcs
			} else {
				s.Links = 75 // 150 arcs
			}
		}
	}
	if s.Capacity == 0 {
		s.Capacity = topo.DefaultCapacity
	}
	if s.ThetaMs == 0 {
		s.ThetaMs = 25
	}
	if s.F == 0 {
		s.F = 0.30
	}
	if s.K == 0 {
		s.K = 0.10
	}
	if s.HPModel == "" {
		s.HPModel = HPRandom
	}
	if s.Sinks == 0 {
		s.Sinks = 3
	}
	if s.TargetUtil == 0 {
		s.TargetUtil = 0.6
	}
}

// Describe renders the spec's effective (defaulted) parameters for report
// notes, folding any params object the same way Build does.
func (s InstanceSpec) Describe() string {
	s.paperDefaults()
	hp := s.hpParams()
	return fmt.Sprintf("topology=%s kind=%v f=%.0f%% k=%.0f%%",
		s.Topology, s.Kind, hp.F*100, hp.K*100)
}

// topoParams folds the spec's flat sizing shorthand into its params object
// (explicit params win; family defaults are merged by topo.Resolve).
func (s InstanceSpec) topoParams() topo.Params {
	var p topo.Params
	if s.TopoParams != nil {
		p = *s.TopoParams
	}
	return p.WithSizes(s.Nodes, s.Links, s.Capacity)
}

// hpParams folds the spec's flat traffic shorthand into its params object.
func (s InstanceSpec) hpParams() traffic.Params {
	var p traffic.Params
	if s.HPParams != nil {
		p = *s.HPParams
	}
	return p.WithShorthand(s.F, s.K, s.Sinks)
}

// Build constructs the instance through the generator registries: topology
// with capacities and delays, gravity low-priority matrix, high-priority
// matrix per model, and both matrices scaled so the unit-weight routing has
// the target average link utilization (the paper "varies total traffic
// demand by scaling the traffic matrix").
func (s InstanceSpec) Build() (*Instance, error) {
	s.paperDefaults()
	rng := rand.New(rand.NewPCG(s.Seed, 0xd7a1))

	g, err := topo.Generate(s.Topology, s.topoParams(), rng)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	n := g.NumNodes()
	if s.LPSinks < 0 {
		return nil, fmt.Errorf("scenario: lp sinks=%d < 0", s.LPSinks)
	}
	if s.LPSinks > n {
		return nil, fmt.Errorf("scenario: lp sinks=%d > %d nodes", s.LPSinks, n)
	}
	var tl *traffic.Matrix
	if s.LPSinks > 0 {
		tl = traffic.GravitySinks(n, s.LPSinks, rng)
	} else {
		tl = traffic.Gravity(n, rng)
	}
	th, err := traffic.GenerateHighPriority(s.HPModel, g, tl.Total(), s.hpParams(), rng)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	if err := scaleToUtilization(g, th, tl, s.TargetUtil); err != nil {
		return nil, err
	}

	opts := eval.Options{Kind: s.Kind, SLA: cost.DefaultSLA()}
	opts.SLA.ThetaMs = s.ThetaMs
	return &Instance{G: g, TH: th, TL: tl, Opts: opts}, nil
}

// Evaluator builds the instance's evaluator.
func (inst *Instance) Evaluator() (*eval.Evaluator, error) {
	return eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
}

// scaleToUtilization scales both matrices so the average link utilization
// under unit-weight (hop count) routing equals target. Optimized routings
// shift load but barely change the average, so the measured utilization of
// the final STR solution — which experiments report as the paper does —
// lands near the target.
func scaleToUtilization(g *graph.Graph, th, tl *traffic.Matrix, target float64) error {
	if target <= 0 {
		return fmt.Errorf("scenario: target utilization %g <= 0", target)
	}
	w := spf.Uniform(g.NumEdges())
	hLoads, err := spf.Loads(g, w, th)
	if err != nil {
		return err
	}
	lLoads, err := spf.Loads(g, w, tl)
	if err != nil {
		return err
	}
	utils := make([]float64, g.NumEdges())
	for i := range utils {
		utils[i] = (hLoads[i] + lLoads[i]) / g.Edge(graph.EdgeID(i)).Capacity
	}
	avg := stats.Mean(utils)
	if avg <= 0 {
		return fmt.Errorf("scenario: zero baseline utilization")
	}
	th.Scale(target / avg)
	tl.Scale(target / avg)
	return nil
}
