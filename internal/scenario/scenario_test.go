package scenario

import (
	"math"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/spf"
)

func TestInstanceSpecDefaults(t *testing.T) {
	s := InstanceSpec{}
	s.paperDefaults()
	if s.Topology != TopoRandom || s.Nodes != 30 || s.Links != 75 {
		t.Fatalf("defaults = %+v", s)
	}
	if s.F != 0.30 || s.K != 0.10 || s.ThetaMs != 25 {
		t.Fatalf("defaults = %+v", s)
	}
	if s.Capacity != 500 {
		t.Fatalf("default capacity = %g, want 500", s.Capacity)
	}
	pl := InstanceSpec{Topology: TopoPowerLaw}
	pl.paperDefaults()
	if pl.Links != 81 {
		t.Fatalf("power-law default links = %d, want 81", pl.Links)
	}
}

func TestInstanceBuildScalesToTarget(t *testing.T) {
	spec := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased, TargetUtil: 0.6, Seed: 5}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Evaluator()
	if err != nil {
		t.Fatal(err)
	}
	// Under unit weights the average utilization must hit the target.
	r, err := e.EvaluateSTR(spf.Uniform(inst.G.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.AvgUtilization(inst.G); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("avg util = %v, want 0.6", got)
	}
	// The high-priority fraction survives scaling.
	etaH, etaL := inst.TH.Total(), inst.TL.Total()
	if got := etaH / (etaH + etaL); math.Abs(got-0.30) > 1e-9 {
		t.Fatalf("f = %v, want 0.30", got)
	}
}

func TestInstanceBuildCustomCapacity(t *testing.T) {
	spec := InstanceSpec{Topology: TopoISP, Capacity: 1000, TargetUtil: 0.5, Seed: 1}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inst.G.Edges() {
		if e.Capacity != 1000 {
			t.Fatalf("arc %d capacity = %g, want 1000", e.ID, e.Capacity)
		}
	}
}

func TestInstanceBuildErrors(t *testing.T) {
	if _, err := (InstanceSpec{Topology: "mesh"}).Build(); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := (InstanceSpec{HPModel: "flood"}).Build(); err == nil {
		t.Error("unknown HP model accepted")
	}
	if _, err := (InstanceSpec{TargetUtil: -1}).Build(); err == nil {
		t.Error("negative target util accepted")
	}
}

func TestInstanceBuildDeterministic(t *testing.T) {
	spec := InstanceSpec{Seed: 9, TargetUtil: 0.5}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.TH.Total() != b.TH.Total() || a.TL.Total() != b.TL.Total() {
		t.Fatal("same seed, different matrices")
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
}

func TestCostRatio(t *testing.T) {
	if got := costRatio(10, 5); got != 2 {
		t.Fatalf("ratio = %v", got)
	}
	if got := costRatio(0, 0); got != 1 {
		t.Fatalf("0/0 = %v, want 1", got)
	}
	if got := costRatio(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("5/0 = %v, want +Inf", got)
	}
}

func TestSubSeed(t *testing.T) {
	// Same triple, same seed; different triples, different seeds.
	if SubSeed(1, 0, 0) != SubSeed(1, 0, 0) {
		t.Fatal("SubSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for p := 0; p < 10; p++ {
		for tr := 0; tr < 10; tr++ {
			s := SubSeed(42, p, tr)
			if seen[s] {
				t.Fatalf("collision at (%d,%d)", p, tr)
			}
			seen[s] = true
		}
	}
	// (point, trial) must not be interchangeable.
	if SubSeed(7, 1, 2) == SubSeed(7, 2, 1) {
		t.Fatal("SubSeed symmetric in point/trial")
	}
	// Different roots diverge.
	if SubSeed(1, 3, 4) == SubSeed(2, 3, 4) {
		t.Fatal("SubSeed ignores root")
	}
}
