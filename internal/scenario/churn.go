package scenario

import (
	"fmt"

	"dualtopo/internal/churn"
)

// ChurnSpec attaches a churn replay to every trial: after optimization the
// trial's final DTR weights are driven through a generated timeline of link
// flaps, node outages and weight resets (internal/churn), and the resulting
// SLA-violation and transient-loss integrals land in the trial record. Zero
// fields resolve to churn.GenSpec defaults; a zero Seed derives a per-trial
// seed so trials churn independently while re-runs stay deterministic.
type ChurnSpec struct {
	// HorizonS is the replayed duration in seconds (default 600).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// LinkMTBFS/LinkMTTRS are the per-link mean up/repair times in
	// seconds. LinkMTBFS == 0 disables link flapping.
	LinkMTBFS float64 `json:"link_mtbf_s,omitempty"`
	LinkMTTRS float64 `json:"link_mttr_s,omitempty"`
	// NodeMTBFS/NodeMTTRS do the same per node; 0 disables node churn.
	NodeMTBFS float64 `json:"node_mtbf_s,omitempty"`
	NodeMTTRS float64 `json:"node_mttr_s,omitempty"`
	// WeightRateHz is the network-wide operator reconfiguration rate.
	WeightRateHz float64 `json:"weight_rate_hz,omitempty"`
	// Intensity is the global churn multiplier (default 1).
	Intensity float64 `json:"intensity,omitempty"`
	// Convergence enables OSPF-convergence emulation: each event is also
	// scored over its flooding/SPF window, adding transient loss from
	// stale-tree blackholes and micro-loops.
	Convergence bool `json:"convergence,omitempty"`
	// Seed pins the timeline seed across trials; 0 derives per-trial seeds.
	Seed uint64 `json:"seed,omitempty"`
}

// genSpec derives the trial's generator spec.
func (c ChurnSpec) genSpec(trialSeed uint64) churn.GenSpec {
	seed := c.Seed
	if seed == 0 {
		seed = splitmix64(trialSeed ^ 0x636875726e) // "churn"
	}
	return churn.GenSpec{
		Seed:       seed,
		Horizon:    c.HorizonS,
		LinkMTBF:   c.LinkMTBFS,
		LinkMTTR:   c.LinkMTTRS,
		NodeMTBF:   c.NodeMTBFS,
		NodeMTTR:   c.NodeMTTRS,
		WeightRate: c.WeightRateHz,
		Intensity:  c.Intensity,
	}
}

// Validate checks the spec against the generator's invariants.
func (c ChurnSpec) Validate() error {
	if err := c.genSpec(1).Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if c.LinkMTBFS == 0 && c.NodeMTBFS == 0 && c.WeightRateHz == 0 {
		return fmt.Errorf("scenario: churn spec generates no events (set link_mtbf_s, node_mtbf_s or weight_rate_hz)")
	}
	return nil
}

// ChurnMetrics is the trial-record slice of a churn replay.
type ChurnMetrics struct {
	Events           int     `json:"events"`
	Disconnects      int     `json:"disconnects"`
	ViolationMbpsSec float64 `json:"violation_mbps_sec"`
	TransientMbpsSec float64 `json:"transient_mbps_sec,omitempty"`
	MicroLoops       int     `json:"micro_loops,omitempty"`
	Blackholes       int     `json:"blackholes,omitempty"`
	PeakUtil         float64 `json:"peak_util"`
}

// runChurn replays the trial's churn timeline against its final DTR
// weights and condenses the summary.
func runChurn(c *ChurnSpec, pt *Point, trialSeed uint64, routeWorkers int) (*ChurnMetrics, error) {
	tl, err := churn.Generate(pt.Inst.G, c.genSpec(trialSeed))
	if err != nil {
		return nil, err
	}
	e, err := pt.Inst.Evaluator()
	if err != nil {
		return nil, err
	}
	rep, err := churn.NewReplayer(e, pt.DTR.WH, pt.DTR.WL, churn.Options{
		RouteWorkers: routeWorkers,
		Convergence:  churn.ConvergenceOptions{Enabled: c.Convergence},
	})
	if err != nil {
		return nil, err
	}
	sum, err := rep.Run(tl, nil)
	if err != nil {
		return nil, err
	}
	return &ChurnMetrics{
		Events:           sum.Events,
		Disconnects:      sum.Disconnects,
		ViolationMbpsSec: sum.ViolationMbpsSec,
		TransientMbpsSec: sum.TransientMbpsSec,
		MicroLoops:       sum.MicroLoops,
		Blackholes:       sum.Blackholes,
		PeakUtil:         sum.PeakUtil,
	}, nil
}
