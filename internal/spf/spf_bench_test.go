package spf

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// benchSetup builds the standard benchmark instance: a 100-node random
// topology with paper-range weights and a gravity matrix activating every
// destination.
func benchSetup(b *testing.B) (*graph.Graph, Weights, *traffic.Matrix) {
	b.Helper()
	rng := rand.New(rand.NewPCG(3, 3))
	g, err := topo.Random(100, 250, 500, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g, randomWeights(g.NumEdges(), 30, rng), traffic.Gravity(100, rng)
}

// BenchmarkTreeQueue compares the monotone bucket queue (new default)
// against the indexed 4-ary heap (the fallback, standing in for the old
// comparison-heap core) on identical single-destination SPF computations.
func BenchmarkTreeQueue(b *testing.B) {
	for _, mode := range []string{"bucket", "heap"} {
		b.Run(mode, func(b *testing.B) {
			g, w, _ := benchSetup(b)
			c := NewComputer(g)
			c.SetForceHeap(mode == "heap")
			var tr Tree
			c.Tree(0, w, &tr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Tree(0, w, &tr)
			}
		})
	}
}

// BenchmarkMultiPlanRouteWorkers pins the all-destinations full-route cost
// across SPF worker counts; workers=1 is the sequential baseline every
// other count must match bitwise.
func BenchmarkMultiPlanRouteWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g, w, tm := benchSetup(b)
			p := NewMultiPlan(g, tm)
			p.SetWorkers(workers)
			if err := p.Route(w, tm); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Route(w, tm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
