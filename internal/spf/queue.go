package spf

import "dualtopo/internal/graph"

// Priority queues backing the SPF core. Two implementations share the same
// monotone contract (pop order never decreases, lazy or indexed staleness
// handling):
//
//   - bucketQueue is Dial's monotone bucket queue, the default for the
//     paper's bounded OSPF-style weight range: O(1) push/pop plus a bounded
//     bucket scan, no comparisons, no sifting.
//   - heap4 is an indexed 4-ary min-heap with decrease-key, the fallback
//     when the weight range is too wide for buckets (and the engine behind
//     the boundary Dijkstra of TreeIncrease, whose seed distances span the
//     whole distance range rather than one arc weight).
//
// Both yield the same distance vector, and Tree canonicalizes Order and
// rebuilds the ECMP DAG from distances alone, so the tree produced is
// bitwise-identical whichever queue ran — a property the equivalence tests
// assert directly.

// maxBucketWeight is the largest maximum arc weight for which Tree uses the
// bucket queue. Beyond it the empty-bucket scan (bounded by max distance ≈
// diameter × wmax) could dominate, so Tree falls back to the indexed heap.
// The paper's weight range is [1, 30]; typical OSPF deployments stay far
// below this limit.
const maxBucketWeight = 1024

// bucketQueue is a monotone (Dial) bucket queue over integer distances.
// Entries are lazy: a node may be queued at several distances; callers skip
// pops whose distance exceeds the node's settled distance. Correctness of
// the ring indexing relies on monotonicity: every queued distance lies in
// [cur, cur+maxW], so a ring of power-of-two width > maxW never aliases two
// live distances to one bucket.
type bucketQueue struct {
	buckets [][]graph.NodeID
	mask    int32 // len(buckets)-1, buckets length is a power of two
	cur     int32 // distance currently being drained
	count   int   // live entries across all buckets
}

// reset prepares the queue for a run whose arc weights are at most width-1,
// growing the ring to the next power of two ≥ width. All buckets are empty
// between runs (pop removes entries before the staleness check).
func (q *bucketQueue) reset(width int) {
	size := 1
	for size < width {
		size <<= 1
	}
	if size > len(q.buckets) {
		q.buckets = append(q.buckets, make([][]graph.NodeID, size-len(q.buckets))...)
	}
	q.mask = int32(size) - 1
	q.cur = 0
	q.count = 0
}

func (q *bucketQueue) push(u graph.NodeID, d int32) {
	i := d & q.mask
	q.buckets[i] = append(q.buckets[i], u)
	q.count++
}

// pop returns an entry with the minimum queued distance. Monotonicity makes
// the distance simply q.cur: every entry in the bucket q.cur indexes has
// distance exactly q.cur (smaller ones were drained when cur passed them,
// larger ones live in other buckets).
func (q *bucketQueue) pop() (graph.NodeID, int32) {
	i := q.cur & q.mask
	for len(q.buckets[i]) == 0 {
		q.cur++
		i = q.cur & q.mask
	}
	b := q.buckets[i]
	u := b[len(b)-1]
	q.buckets[i] = b[:len(b)-1]
	q.count--
	return u, q.cur
}

// heap4 is an indexed 4-ary min-heap keyed on int32 distances with
// decrease-key: each node appears at most once, so the heap never exceeds
// the node count and pops need no staleness filtering. 4-ary keeps the
// sift depth half of a binary heap's with all children in one cache line.
type heap4 struct {
	nodes []graph.NodeID
	dists []int32
	pos   []int32 // node -> heap index + 1; 0 when absent
}

// ensure sizes the position index for n nodes.
func (h *heap4) ensure(n int) {
	if len(h.pos) < n {
		h.pos = make([]int32, n)
	}
}

// reset empties the heap. The position index is already clean when the
// previous run drained the heap; the loop covers abandoned runs.
func (h *heap4) reset() {
	for _, u := range h.nodes {
		h.pos[u] = 0
	}
	h.nodes = h.nodes[:0]
	h.dists = h.dists[:0]
}

func (h *heap4) len() int { return len(h.nodes) }

// push inserts u at distance d, or decreases u's key when it is already
// queued with a larger one.
func (h *heap4) push(u graph.NodeID, d int32) {
	if i := h.pos[u]; i != 0 {
		if d < h.dists[i-1] {
			h.dists[i-1] = d
			h.up(int(i) - 1)
		}
		return
	}
	h.nodes = append(h.nodes, u)
	h.dists = append(h.dists, d)
	h.pos[u] = int32(len(h.nodes))
	h.up(len(h.nodes) - 1)
}

func (h *heap4) pop() (graph.NodeID, int32) {
	u, d := h.nodes[0], h.dists[0]
	h.pos[u] = 0
	last := len(h.nodes) - 1
	if last > 0 {
		h.nodes[0], h.dists[0] = h.nodes[last], h.dists[last]
		h.pos[h.nodes[0]] = 1
	}
	h.nodes = h.nodes[:last]
	h.dists = h.dists[:last]
	if last > 1 {
		h.down(0)
	}
	return u, d
}

func (h *heap4) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if h.dists[parent] <= h.dists[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heap4) down(i int) {
	n := len(h.nodes)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		smallest := i
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if h.dists[c] < h.dists[smallest] {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *heap4) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.dists[i], h.dists[j] = h.dists[j], h.dists[i]
	h.pos[h.nodes[i]] = int32(i + 1)
	h.pos[h.nodes[j]] = int32(j + 1)
}
