package spf

import "dualtopo/internal/graph"

// Partial SPF for pure weight increases (the failure-sweep hot path: a
// disabled arc is a weight increase to +inf). When every changed arc's
// weight went up, distances can only grow, and they grow only for nodes
// whose every shortest path used a changed arc. TreeIncrease classifies that
// affected set in one linear pass over the stored tree, re-settles only the
// affected nodes with a boundary Dijkstra, and rebuilds the ECMP structure
// only where it can have moved. Because integer shortest distances are
// unique and Next/Order are pure functions of the distance vector, the
// updated tree is bitwise-identical to a from-scratch recomputation.

// increaseScratch holds TreeIncrease's reusable buffers.
type increaseScratch struct {
	arcChanged []bool // per arc: weight increased this transition
	affected   []bool // per node: every shortest path destroyed
	rebuild    []bool // per node: Next run must be rebuilt
	fList      []graph.NodeID
	rList      []graph.NodeID
	newOrder   []graph.NodeID
	settled    []graph.NodeID
	// newStart/newArcs double-buffer the flat ECMP rebuild; they swap with
	// the tree's own arrays each call, so the rebuild is allocation-free
	// once warm.
	newStart []int32
	newArcs  []graph.EdgeID
}

func (s *increaseScratch) ensure(n, m int) {
	if len(s.arcChanged) < m {
		s.arcChanged = make([]bool, m)
	}
	if len(s.affected) < n {
		s.affected = make([]bool, n)
		s.rebuild = make([]bool, n)
	}
	if cap(s.newStart) < n+1 {
		s.newStart = make([]int32, n+1)
	}
}

// TreeIncrease updates t — a valid tree for this Computer's graph under some
// previous weight setting — to the tree under w, where w differs from that
// setting only on the changed arcs and every change is an increase (Disabled
// counts as +inf). The result is bitwise-equal to Tree(dest, w, t).
func (c *Computer) TreeIncrease(w Weights, t *Tree, changed []graph.EdgeID) {
	csr := c.csr
	s := &c.inc
	n := csr.NumNodes()
	s.ensure(n, csr.NumArcs())
	for _, a := range changed {
		s.arcChanged[a] = true
	}

	// Affected-set classification: a node's distance grows iff every arc of
	// its shortest-path DAG either increased or leads to an affected node.
	// Next arcs point strictly downhill (weights are >= 1), so one ascending
	// pass over the canonical Order classifies successors first. The
	// destination (empty Next) is never affected.
	s.fList = s.fList[:0]
	for _, u := range t.Order {
		if u == t.Dest {
			continue
		}
		aff := true
		for _, a := range t.Next(u) {
			if !s.arcChanged[a] && !s.affected[csr.To[a]] {
				aff = false
				break
			}
		}
		if aff {
			s.affected[u] = true
			s.fList = append(s.fList, u)
		}
	}

	// Rebuild set: affected nodes, their DAG-upstream neighbors (whose Next
	// may gain or lose arcs as affected distances move), and the tails of
	// changed arcs (whose Next lose the increased arcs).
	s.rList = s.rList[:0]
	mark := func(u graph.NodeID) {
		if !s.rebuild[u] {
			s.rebuild[u] = true
			s.rList = append(s.rList, u)
		}
	}
	for _, f := range s.fList {
		mark(f)
		lo, hi := csr.InStart[f], csr.InStart[f+1]
		for i := lo; i < hi; i++ {
			mark(csr.InFrom[i])
		}
	}
	for _, a := range changed {
		mark(csr.From[a])
	}

	if len(s.fList) > 0 {
		c.resettleAffected(w, t, s)
	}

	// Rebuild the flat ECMP DAG: rebuild-set nodes rescan their out-arcs in
	// CSR order — ascending arc ID, the same per-node order the full build's
	// counting sort produces. Nodes outside the rebuild set keep their runs
	// verbatim: a changed run length shifts every downstream offset, so the
	// flat layout cannot patch in place, but maximal spans of consecutive
	// kept nodes are moved with a single copy and an offset shift, making
	// the compaction one memmove per rebuild-set boundary plus an O(n)
	// integer pass — not per-node slice work. (Checkpointed sweeps already
	// pay this order per dirty destination in saveDest; what the flat layout
	// buys back is zero-alloc contiguous iteration on every hot pass.)
	newStart := s.newStart[:n+1]
	newArcs := s.newArcs[:0]
	oldStart, oldArcs := t.NextStart, t.NextArcs
	for u := 0; u < n; {
		if !s.rebuild[u] {
			v := u + 1
			for v < n && !s.rebuild[v] {
				v++
			}
			delta := int32(len(newArcs)) - oldStart[u]
			for x := u; x < v; x++ {
				newStart[x] = oldStart[x] + delta
			}
			newArcs = append(newArcs, oldArcs[oldStart[u]:oldStart[v]]...)
			u = v
			continue
		}
		newStart[u] = int32(len(newArcs))
		if du := t.Dist[u]; du != unreachable {
			lo, hi := csr.OutStart[u], csr.OutStart[u+1]
			for i := lo; i < hi; i++ {
				id := csr.OutArcs[i]
				if w[id] == Disabled {
					continue
				}
				dv := t.Dist[csr.OutTo[i]]
				if dv != unreachable && dv+int32(w[id]) == du {
					newArcs = append(newArcs, id)
				}
			}
		}
		u++
	}
	newStart[n] = int32(len(newArcs))
	s.newStart = oldStart
	s.newArcs = oldArcs
	t.NextStart = newStart
	t.NextArcs = newArcs

	for _, a := range changed {
		s.arcChanged[a] = false
	}
	for _, u := range s.rList {
		s.rebuild[u] = false
	}
	for _, u := range s.fList {
		s.affected[u] = false
	}
}

// resettleAffected runs the boundary Dijkstra: affected nodes are seeded
// from their surviving arcs into unaffected territory, then settle among
// themselves; everything else keeps its distance. The seed distances span
// the whole distance range (not one arc weight), so this path always uses
// the indexed heap rather than the bucket ring. Afterwards the canonical
// Order is rebuilt by merging the surviving (still sorted) run with the
// re-settled nodes.
func (c *Computer) resettleAffected(w Weights, t *Tree, s *increaseScratch) {
	csr := c.csr
	h := &c.hp
	h.reset()
	for _, f := range s.fList {
		t.Dist[f] = unreachable
	}
	for _, f := range s.fList {
		best := int32(unreachable)
		lo, hi := csr.OutStart[f], csr.OutStart[f+1]
		for i := lo; i < hi; i++ {
			id := csr.OutArcs[i]
			if w[id] == Disabled {
				continue
			}
			v := csr.OutTo[i]
			if s.affected[v] {
				continue // evolving; reached via relaxation below
			}
			if dv := t.Dist[v]; dv != unreachable && dv+int32(w[id]) < best {
				best = dv + int32(w[id])
			}
		}
		if best != unreachable {
			t.Dist[f] = best
			h.push(f, best)
		}
	}
	s.settled = s.settled[:0]
	for h.len() > 0 {
		u, du := h.pop()
		s.settled = append(s.settled, u)
		lo, hi := csr.InStart[u], csr.InStart[u+1]
		for i := lo; i < hi; i++ {
			id := csr.InArcs[i]
			if w[id] == Disabled {
				continue
			}
			v := csr.InFrom[i]
			if !s.affected[v] {
				continue // unaffected distances are already optimal
			}
			if alt := du + int32(w[id]); alt < t.Dist[v] {
				t.Dist[v] = alt
				h.push(v, alt)
			}
		}
	}

	// Canonicalize the settled run by (Dist, ID); heap pop order already
	// ascends in distance, so insertion sort only reorders within ties.
	for i := 1; i < len(s.settled); i++ {
		u := s.settled[i]
		du := t.Dist[u]
		j := i
		for j > 0 && (t.Dist[s.settled[j-1]] > du ||
			(t.Dist[s.settled[j-1]] == du && s.settled[j-1] > u)) {
			s.settled[j] = s.settled[j-1]
			j--
		}
		s.settled[j] = u
	}

	// Merge: the old Order minus affected nodes is still sorted by
	// (Dist, ID) — those distances did not move — and the settled run is
	// sorted the same way, so one linear merge restores the canonical Order.
	s.newOrder = s.newOrder[:0]
	si := 0
	for _, u := range t.Order {
		if s.affected[u] {
			continue
		}
		du := t.Dist[u]
		for si < len(s.settled) {
			f := s.settled[si]
			df := t.Dist[f]
			if df < du || (df == du && f < u) {
				s.newOrder = append(s.newOrder, f)
				si++
			} else {
				break
			}
		}
		s.newOrder = append(s.newOrder, u)
	}
	s.newOrder = append(s.newOrder, s.settled[si:]...)
	t.Order = append(t.Order[:0], s.newOrder...)
}
