package spf

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// TestBucketHeapTreesBitwiseEqual asserts the core queue-equivalence
// property: the bucket-queue and indexed-heap Dijkstras produce
// bitwise-identical trees (distances, canonical order, flat ECMP DAG) on
// randomized graphs with randomized weights, including disabled arcs.
func TestBucketHeapTreesBitwiseEqual(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewPCG(seed, 41))
		n := 6 + rng.IntN(20)
		g, err := topo.Random(n, n+rng.IntN(2*n), 100, rng)
		if err != nil {
			continue
		}
		w := make(Weights, g.NumEdges())
		for i := range w {
			if rng.IntN(12) == 0 {
				w[i] = Disabled
			} else {
				w[i] = 1 + rng.IntN(30)
			}
		}
		bucket := NewComputer(g)
		heap := NewComputer(g)
		heap.SetForceHeap(true)
		var bt, ht Tree
		for dest := 0; dest < g.NumNodes(); dest++ {
			bucket.Tree(graph.NodeID(dest), w, &bt)
			heap.Tree(graph.NodeID(dest), w, &ht)
			assertSameTree(t, seed, dest, &bt, &ht)
		}
	}
}

// TestWideWeightsFallBackToHeap drives weights beyond maxBucketWeight, the
// automatic heap-fallback trigger, and checks distances against the same
// instance computed with forced-heap (trivially the same engine) and with a
// scaled-down bucket-eligible instance (same shortest paths, scaled
// distances) to make sure the fallback routes correctly.
func TestWideWeightsFallBackToHeap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 99))
	g, err := topo.Random(12, 24, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	scale := maxBucketWeight // small weights scaled by this exceed the limit
	small := make(Weights, g.NumEdges())
	wide := make(Weights, g.NumEdges())
	for i := range small {
		small[i] = 1 + rng.IntN(8)
		wide[i] = small[i] * scale
	}
	c := NewComputer(g)
	var ts, tw Tree
	for dest := 0; dest < g.NumNodes(); dest++ {
		c.Tree(graph.NodeID(dest), small, &ts)
		c.Tree(graph.NodeID(dest), wide, &tw)
		for u := range ts.Dist {
			if ts.Dist[u]*int32(scale) != tw.Dist[u] {
				t.Fatalf("dest %d: scaled Dist[%d] = %d, want %d", dest, u, tw.Dist[u], ts.Dist[u]*int32(scale))
			}
		}
		for u := 0; u < g.NumNodes(); u++ {
			if !equalArcs(ts.Next(graph.NodeID(u)), tw.Next(graph.NodeID(u))) {
				t.Fatalf("dest %d: scaled DAG differs at node %d", dest, u)
			}
		}
	}
}

func assertSameTree(t *testing.T, seed uint64, dest int, a, b *Tree) {
	t.Helper()
	for u := range a.Dist {
		if a.Dist[u] != b.Dist[u] {
			t.Fatalf("seed %d dest %d: Dist[%d] = %d vs %d", seed, dest, u, a.Dist[u], b.Dist[u])
		}
	}
	if len(a.Order) != len(b.Order) {
		t.Fatalf("seed %d dest %d: order lengths %d vs %d", seed, dest, len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("seed %d dest %d: Order[%d] = %d vs %d", seed, dest, i, a.Order[i], b.Order[i])
		}
	}
	for u := 0; u < len(a.Dist); u++ {
		if !equalArcs(a.Next(graph.NodeID(u)), b.Next(graph.NodeID(u))) {
			t.Fatalf("seed %d dest %d: Next(%d) = %v vs %v", seed, dest, u,
				a.Next(graph.NodeID(u)), b.Next(graph.NodeID(u)))
		}
	}
}

// TestParallelRouteBitwiseEqualsSequential is the satellite equivalence
// property: MultiPlan.Route at 1, 4 and GOMAXPROCS workers produces loads
// bitwise-equal (==, no tolerance) to the sequential path, across random
// instances and repeated warm reroutes.
func TestParallelRouteBitwiseEqualsSequential(t *testing.T) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 17))
		g, tms := randomInstance(rng, 12+int(seed)*2, 10+int(seed), 2)
		seq := NewMultiPlan(g, tms...)
		par := NewMultiPlan(g, tms...)
		for _, workers := range counts {
			par.SetWorkers(workers)
			for round := 0; round < 4; round++ {
				w := randomWeights(g.NumEdges(), 30, rng)
				if err := seq.Route(w, tms...); err != nil {
					t.Fatal(err)
				}
				if err := par.Route(w, tms...); err != nil {
					t.Fatal(err)
				}
				for mi := range seq.Loads {
					for a := range seq.Loads[mi] {
						if seq.Loads[mi][a] != par.Loads[mi][a] {
							t.Fatalf("seed %d workers %d round %d: load[%d][%d] parallel %v != sequential %v",
								seed, workers, round, mi, a, par.Loads[mi][a], seq.Loads[mi][a])
						}
					}
				}
				for _, dest := range seq.Destinations() {
					assertSameTree(t, seed, int(dest), par.Tree(dest), seq.Tree(dest))
				}
			}
		}
	}
}

// TestParallelRouteDeterministicError: when a failure disconnects demand,
// the parallel path must report the same (first-in-destination-order) error
// verdict as the sequential path, at every worker count.
func TestParallelRouteDeterministicError(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 100, 1)
	g.AddLink(1, 2, 100, 1)
	g.AddLink(2, 3, 100, 1)
	tm := traffic.NewMatrix(4)
	tm.Set(0, 2, 5)
	tm.Set(0, 3, 5)
	w := Uniform(g.NumEdges())
	a01, _ := g.ArcBetween(0, 1)
	a10, _ := g.ArcBetween(1, 0)
	w = w.WithFailedArcs(a01, a10) // node 0 cut off from everything
	seq := NewMultiPlan(g, tm)
	seqErr := seq.Route(w, tm)
	if seqErr == nil {
		t.Fatal("sequential route accepted disconnected demand")
	}
	for _, workers := range []int{2, 4, 8} {
		par := NewMultiPlan(g, tm)
		par.SetWorkers(workers)
		parErr := par.Route(w, tm)
		if parErr == nil {
			t.Fatalf("workers=%d: parallel route accepted disconnected demand", workers)
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: error %q != sequential %q", workers, parErr, seqErr)
		}
	}
}

// TestParallelRouteMoreWorkersThanDests clamps the pool to the destination
// count without deadlock or divergence.
func TestParallelRouteMoreWorkersThanDests(t *testing.T) {
	g := diamond()
	tm := traffic.NewMatrix(4)
	tm.Set(0, 3, 10)
	seq := NewMultiPlan(g, tm)
	par := NewMultiPlan(g, tm)
	par.SetWorkers(16)
	w := Uniform(g.NumEdges())
	if err := seq.Route(w, tm); err != nil {
		t.Fatal(err)
	}
	if err := par.Route(w, tm); err != nil {
		t.Fatal(err)
	}
	for a := range seq.Loads[0] {
		if seq.Loads[0][a] != par.Loads[0][a] {
			t.Fatalf("load[%d]: %v != %v", a, par.Loads[0][a], seq.Loads[0][a])
		}
	}
}
