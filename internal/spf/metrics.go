package spf

import "dualtopo/internal/obs"

// Package-level telemetry for the SPF core, registered in the default obs
// registry. Every update on a hot path is a single atomic op on a handle
// resolved here at init — no allocation, no branching on configuration — so
// the instrumented Tree/Apply/Route paths keep their AllocsPerRun == 0 pins.
//
// Dirty-set and affected-set size distributions are sampled (1 in
// metricsSampleRate observations) to keep histogram traffic negligible next
// to the counters.
var met = struct {
	treeBucket  *obs.Counter // trees settled through the monotone bucket queue
	treeHeap    *obs.Counter // trees settled through the indexed-heap fallback
	treePartial *obs.Counter // trees served by the pure-increase partial path
	fullRoutes  *obs.Counter
	applies     *obs.Counter
	recomputed  *obs.Counter
	reused      *obs.Counter
	checkpoints *obs.Counter
	reverts     *obs.Counter
	sampleTick  obs.Counter    // local sampling clock, not exported
	dirtySize   *obs.Histogram // sampled: dirty destinations per Apply
	changedArcs *obs.Histogram // sampled: changed arcs per Apply

	// Parallel-route shape of the last block-sharded MultiPlan.Route:
	// the destination-block claim granularity and how many pool workers
	// actually claimed work (occupancy < pool size means the block size is
	// too coarse for the destination count). Gauge.Set is one atomic store,
	// preserving the route path's AllocsPerRun == 0 pin.
	routeBlockSize       *obs.Gauge
	routeWorkerOccupancy *obs.Gauge
}{
	treeBucket:  obs.Default().CounterVec("spf_trees_total", "SPF trees computed from scratch, by queue implementation.", "queue").With("bucket"),
	treeHeap:    obs.Default().CounterVec("spf_trees_total", "SPF trees computed from scratch, by queue implementation.", "queue").With("heap"),
	treePartial: obs.Default().Counter("spf_trees_partial_total", "Trees served by the pure-increase partial SPF path instead of a full Dijkstra."),
	fullRoutes:  obs.Default().Counter("spf_delta_full_routes_total", "DeltaRouter from-scratch recomputations (initial Route, error recovery)."),
	applies:     obs.Default().Counter("spf_delta_applies_total", "DeltaRouter.Apply calls served incrementally."),
	recomputed:  obs.Default().CounterVec("spf_delta_trees_total", "Per-destination tree outcomes across incremental Applies.", "outcome").With("recomputed"),
	reused:      obs.Default().CounterVec("spf_delta_trees_total", "Per-destination tree outcomes across incremental Applies.", "outcome").With("reused"),
	checkpoints: obs.Default().Counter("spf_delta_checkpoints_total", "DeltaRouter.Checkpoint captures."),
	reverts:     obs.Default().Counter("spf_delta_reverts_total", "DeltaRouter.Revert rollbacks."),
	dirtySize:   obs.Default().Histogram("spf_delta_dirty_trees", "Sampled dirty-destination count per incremental Apply.", obs.ExpBuckets(1, 2, 12)),
	changedArcs: obs.Default().Histogram("spf_delta_changed_arcs", "Sampled changed-arc count per incremental Apply.", obs.ExpBuckets(1, 2, 12)),

	routeBlockSize:       obs.Default().Gauge("spf_route_block_size", "Destination-block claim granularity of the last parallel MultiPlan.Route."),
	routeWorkerOccupancy: obs.Default().Gauge("spf_route_worker_occupancy", "Workers that claimed at least one destination block in the last parallel MultiPlan.Route."),
}

// metricsSampleRate thins the size-distribution histograms: one Apply in
// this many contributes an observation. Power of two so the sampler is a
// mask, not a division.
const metricsSampleRate = 8

// sampleApplySizes feeds the sampled histograms from one incremental Apply.
func sampleApplySizes(dirty, changed int) {
	if met.sampleTick.Value()&(metricsSampleRate-1) == 0 {
		met.dirtySize.Observe(float64(dirty))
		met.changedArcs.Observe(float64(changed))
	}
	met.sampleTick.Inc()
}
