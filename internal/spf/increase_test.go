package spf

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
)

// TestTreeIncreaseDirect drives random pure weight increases (including
// Disabled) from a fresh full tree and asserts the partial update is
// bitwise-equal to a from-scratch recomputation: distances, ECMP DAG, and
// canonical order.
func TestTreeIncreaseDirect(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewPCG(seed, 9))
		g, err := topo.Random(8, 12, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumEdges()
		w := make(Weights, n)
		for i := range w {
			w[i] = 1 + rng.IntN(6)
		}
		c := NewComputer(g)
		for dest := 0; dest < g.NumNodes(); dest++ {
			var base Tree
			c.Tree(graph.NodeID(dest), w, &base)
			// random pure increase on 1-3 arcs
			w2 := w.Clone()
			var changed []graph.EdgeID
			k := 1 + rng.IntN(3)
			for j := 0; j < k; j++ {
				a := graph.EdgeID(rng.IntN(n))
				if rng.IntN(4) == 0 {
					w2[a] = Disabled
				} else {
					w2[a] = w[a] + 1 + rng.IntN(5)
				}
				if w2[a] != w[a] {
					changed = append(changed, a)
				}
			}
			if len(changed) == 0 {
				continue
			}
			got := cloneTree(&base)
			c.TreeIncrease(w2, &got, changed)
			var want Tree
			c.Tree(graph.NodeID(dest), w2, &want)
			if !reflect.DeepEqual(got.Dist, want.Dist) {
				t.Fatalf("seed %d dest %d: Dist mismatch\nchanged %v (w %v -> %v)\ngot  %v\nwant %v\nbase %v", seed, dest, changed, pick(w, changed), pick(w2, changed), got.Dist, want.Dist, base.Dist)
			}
			for u := 0; u < g.NumNodes(); u++ {
				gu, wu := got.Next(graph.NodeID(u)), want.Next(graph.NodeID(u))
				if !equalArcs(gu, wu) {
					t.Fatalf("seed %d dest %d: Next(%d) = %v, want %v", seed, dest, u, gu, wu)
				}
			}
			if !reflect.DeepEqual(got.Order, want.Order) {
				t.Fatalf("seed %d dest %d: Order = %v, want %v", seed, dest, got.Order, want.Order)
			}
		}
	}
}

func pick(w Weights, arcs []graph.EdgeID) []int {
	out := make([]int, len(arcs))
	for i, a := range arcs {
		out[i] = w[a]
	}
	return out
}

// cloneTree deep-copies a tree's flat storage.
func cloneTree(t *Tree) Tree {
	return Tree{
		Dest:      t.Dest,
		Dist:      append([]int32(nil), t.Dist...),
		Order:     append([]graph.NodeID(nil), t.Order...),
		NextStart: append([]int32(nil), t.NextStart...),
		NextArcs:  append([]graph.EdgeID(nil), t.NextArcs...),
	}
}

// equalArcs compares two arc runs element-wise (nil and empty are equal).
func equalArcs(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTreeIncreaseChained applies sequences of pure increases through the
// partial path without ever refreshing from a full tree, so classification
// errors would compound and surface.
func TestTreeIncreaseChained(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewPCG(seed, 10))
		g, err := topo.Random(8, 12, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumEdges()
		w := make(Weights, n)
		for i := range w {
			w[i] = 1 + rng.IntN(6)
		}
		c := NewComputer(g)
		for dest := 0; dest < g.NumNodes(); dest++ {
			var got Tree
			c.Tree(graph.NodeID(dest), w, &got)
			cur := w.Clone()
			for step := 0; step < 10; step++ {
				w2 := cur.Clone()
				var changed []graph.EdgeID
				k := 1 + rng.IntN(3)
				for j := 0; j < k; j++ {
					a := graph.EdgeID(rng.IntN(n))
					if cur[a] == Disabled {
						continue
					}
					if rng.IntN(4) == 0 {
						w2[a] = Disabled
					} else {
						w2[a] = cur[a] + 1 + rng.IntN(5)
					}
					if w2[a] != cur[a] {
						changed = append(changed, a)
					}
				}
				if len(changed) == 0 {
					continue
				}
				c.TreeIncrease(w2, &got, changed)
				var want Tree
				c.Tree(graph.NodeID(dest), w2, &want)
				if !reflect.DeepEqual(got.Dist, want.Dist) {
					t.Fatalf("seed %d dest %d step %d: Dist\ngot  %v\nwant %v", seed, dest, step, got.Dist, want.Dist)
				}
				for u := 0; u < g.NumNodes(); u++ {
					if !equalArcs(got.Next(graph.NodeID(u)), want.Next(graph.NodeID(u))) {
						t.Fatalf("seed %d dest %d step %d: Next(%d) = %v, want %v", seed, dest, step, u, got.Next(graph.NodeID(u)), want.Next(graph.NodeID(u)))
					}
				}
				if !reflect.DeepEqual(got.Order, want.Order) {
					t.Fatalf("seed %d dest %d step %d: Order = %v, want %v", seed, dest, step, got.Order, want.Order)
				}
				cur = w2
			}
		}
	}
}
