package spf

import (
	"math/rand/v2"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/traffic"
)

// randomInstance builds a strongly connected graph (bidirectional ring plus
// random chords) and one or two random traffic matrices.
func randomInstance(rng *rand.Rand, nodes, chords, matrices int) (*graph.Graph, []*traffic.Matrix) {
	g := graph.New(nodes)
	for u := 0; u < nodes; u++ {
		g.AddLink(graph.NodeID(u), graph.NodeID((u+1)%nodes), 60+40*rng.Float64(), 1+4*rng.Float64())
	}
	for c := 0; c < chords; c++ {
		u := graph.NodeID(rng.IntN(nodes))
		v := graph.NodeID(rng.IntN(nodes))
		if u == v || g.HasLink(u, v) {
			continue
		}
		g.AddLink(u, v, 60+40*rng.Float64(), 1+4*rng.Float64())
	}
	tms := make([]*traffic.Matrix, matrices)
	for mi := range tms {
		tm := traffic.NewMatrix(nodes)
		pairs := nodes * 2
		for p := 0; p < pairs; p++ {
			s := graph.NodeID(rng.IntN(nodes))
			t := graph.NodeID(rng.IntN(nodes))
			if s == t {
				continue
			}
			tm.Add(s, t, 1+9*rng.Float64())
		}
		tms[mi] = tm
	}
	return g, tms
}

// assertTreesEqual requires bitwise-identical distances, ECMP DAGs and
// orders for every active destination.
func assertTreesEqual(t *testing.T, step int, dr *DeltaRouter, ref *MultiPlan) {
	t.Helper()
	for _, dest := range dr.Destinations() {
		dt, rt := dr.Tree(dest), ref.Tree(dest)
		if len(dt.Dist) != len(rt.Dist) {
			t.Fatalf("step %d dest %d: dist length %d != %d", step, dest, len(dt.Dist), len(rt.Dist))
		}
		for u := range dt.Dist {
			if dt.Dist[u] != rt.Dist[u] {
				t.Fatalf("step %d dest %d: Dist[%d] = %d, want %d", step, dest, u, dt.Dist[u], rt.Dist[u])
			}
		}
		if len(dt.Order) != len(rt.Order) {
			t.Fatalf("step %d dest %d: order length %d != %d", step, dest, len(dt.Order), len(rt.Order))
		}
		for i := range dt.Order {
			if dt.Order[i] != rt.Order[i] {
				t.Fatalf("step %d dest %d: Order[%d] = %d, want %d", step, dest, i, dt.Order[i], rt.Order[i])
			}
		}
		for u := range dt.Dist {
			du, ru := dt.Next(graph.NodeID(u)), rt.Next(graph.NodeID(u))
			if len(du) != len(ru) {
				t.Fatalf("step %d dest %d: Next(%d) = %v, want %v", step, dest, u, du, ru)
			}
			for i := range du {
				if du[i] != ru[i] {
					t.Fatalf("step %d dest %d: Next(%d) = %v, want %v", step, dest, u, du, ru)
				}
			}
		}
	}
}

// assertLoadsEqual requires bitwise equality (==, not tolerance) between the
// incremental aggregates and a fresh full route.
func assertLoadsEqual(t *testing.T, step int, dr *DeltaRouter, ref *MultiPlan) {
	t.Helper()
	for mi := range dr.Loads {
		for a := range dr.Loads[mi] {
			if dr.Loads[mi][a] != ref.Loads[mi][a] {
				t.Fatalf("step %d matrix %d arc %d: delta load %v != full load %v (diff %g)",
					step, mi, a, dr.Loads[mi][a], ref.Loads[mi][a], dr.Loads[mi][a]-ref.Loads[mi][a])
			}
		}
	}
}

// TestDeltaRouterMatchesFullRoute drives random single- and multi-arc weight
// changes — including weight decreases and Disabled (failure/repair)
// transitions — and asserts the incremental state is bitwise-equal to a
// from-scratch route after every step.
func TestDeltaRouterMatchesFullRoute(t *testing.T) {
	for _, tc := range []struct {
		name              string
		nodes, chords, ms int
		seed              uint64
	}{
		{"small-1matrix", 10, 8, 1, 1},
		{"medium-2matrix", 24, 30, 2, 2},
		{"dense-1matrix", 16, 48, 1, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(tc.seed, 99))
			g, tms := randomInstance(rng, tc.nodes, tc.chords, tc.ms)
			m := g.NumEdges()

			dr := NewDeltaRouter(g, tms...)
			ref := NewMultiPlan(g, tms...)
			w := Uniform(m)
			for i := range w {
				w[i] = 1 + rng.IntN(30)
			}
			if err := dr.Route(w); err != nil {
				t.Fatal(err)
			}

			disabled := map[graph.EdgeID]int{} // arc -> weight before failure
			for step := 0; step < 400; step++ {
				prev := w.Clone()
				var changed []graph.EdgeID
				narcs := 1 + rng.IntN(4)
				for k := 0; k < narcs; k++ {
					id := graph.EdgeID(rng.IntN(m))
					switch {
					case rng.IntN(10) == 0 && w[id] != Disabled:
						disabled[id] = w[id]
						w[id] = Disabled
					case w[id] == Disabled:
						w[id] = disabled[id] // repair
						delete(disabled, id)
					case rng.IntN(2) == 0:
						// Biased decrease: the invalidation direction that
						// can create new shortest paths.
						if w[id] > 1 {
							w[id] = 1 + rng.IntN(w[id])
						} else {
							w[id] = 1 + rng.IntN(30)
						}
					default:
						w[id] = 1 + rng.IntN(30)
					}
					changed = append(changed, id)
				}

				refErr := ref.Route(w, tms...)
				moved, err := dr.Apply(w, changed)
				if refErr != nil {
					// A failure disconnected some demand: both paths must
					// fail, and the router must recover via full fallback
					// once the weights are restored.
					if err == nil {
						t.Fatalf("step %d: full route failed (%v) but delta succeeded", step, refErr)
					}
					// Undo this step's mutations before restoring w. An arc
					// repaired this step goes back to Disabled, so its
					// pre-failure weight (the current w value) must be
					// re-recorded — otherwise a later repair would read the
					// map's zero value and install an illegal weight-0 arc.
					// An arc disabled this step returns to a normal weight,
					// so its record is dropped.
					for _, id := range changed {
						if prev[id] == Disabled && w[id] != Disabled {
							disabled[id] = w[id]
						} else if prev[id] != Disabled {
							delete(disabled, id)
						}
					}
					copy(w, prev)
					if err := ref.Route(w, tms...); err != nil {
						t.Fatalf("step %d: restore failed: %v", step, err)
					}
					if _, err := dr.Apply(w, changed); err != nil {
						t.Fatalf("step %d: delta restore failed: %v", step, err)
					}
					if dr.Valid() != true {
						t.Fatalf("step %d: router invalid after recovery", step)
					}
				} else if err != nil {
					t.Fatalf("step %d: delta failed but full route succeeded: %v", step, err)
				} else {
					// Arcs not reported as moved must be untouched.
					movedSet := map[graph.EdgeID]bool{}
					for _, a := range moved {
						movedSet[a] = true
					}
					_ = movedSet
				}
				assertTreesEqual(t, step, dr, ref)
				assertLoadsEqual(t, step, dr, ref)
			}

			st := dr.Stats()
			if st.TreesReused == 0 {
				t.Fatalf("delta router never reused a tree: %+v", st)
			}
			if st.TreesRecomputed == 0 {
				t.Fatalf("delta router never recomputed a tree: %+v", st)
			}
			t.Logf("stats: %+v (reuse ratio %.2f)", st,
				float64(st.TreesReused)/float64(st.TreesReused+st.TreesRecomputed))
		})
	}
}

// TestDeltaRouterMovedList verifies the moved-arc report: every aggregate
// difference between consecutive states is covered by the returned list.
func TestDeltaRouterMovedList(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g, tms := randomInstance(rng, 14, 20, 1)
	m := g.NumEdges()
	dr := NewDeltaRouter(g, tms...)
	w := Uniform(m)
	if err := dr.Route(w); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), dr.Loads[0]...)
	for step := 0; step < 100; step++ {
		id := graph.EdgeID(rng.IntN(m))
		w[id] = 1 + rng.IntN(30)
		moved, err := dr.Apply(w, []graph.EdgeID{id})
		if err != nil {
			t.Fatal(err)
		}
		movedSet := map[graph.EdgeID]bool{}
		for _, a := range moved {
			movedSet[a] = true
		}
		for a := range dr.Loads[0] {
			if dr.Loads[0][a] != before[a] && !movedSet[graph.EdgeID(a)] {
				t.Fatalf("step %d: arc %d load moved %v -> %v but was not reported",
					step, a, before[a], dr.Loads[0][a])
			}
		}
		copy(before, dr.Loads[0])
	}
}

// TestDeltaRouterApplyInvalidFallback checks that Apply on a never-routed
// router performs a full route and reports every arc moved.
func TestDeltaRouterApplyInvalidFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	g, tms := randomInstance(rng, 8, 6, 1)
	dr := NewDeltaRouter(g, tms...)
	w := Uniform(g.NumEdges())
	moved, err := dr.Apply(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != g.NumEdges() {
		t.Fatalf("fallback reported %d moved arcs, want all %d", len(moved), g.NumEdges())
	}
	if dr.Stats().FullRoutes != 1 {
		t.Fatalf("expected one full route, got %+v", dr.Stats())
	}
}

// TestDiffArcs covers the arbitrary-transition diff helper.
func TestDiffArcs(t *testing.T) {
	a := Weights{1, 2, 3, Disabled, 5}
	b := Weights{1, 7, 3, 4, 5}
	diff := DiffArcs(a, b, nil)
	if len(diff) != 2 || diff[0] != 1 || diff[1] != 3 {
		t.Fatalf("DiffArcs = %v, want [1 3]", diff)
	}
}

// TestCheckpointRevert pins the rollback contract: after Checkpoint, any
// sequence of Applies — including ones that error on disconnection and
// invalidate the router — is undone bitwise by Revert, without any
// recomputation (FullRoutes must not move).
func TestCheckpointRevert(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 77))
	g, tms := randomInstance(rng, 12, 10, 2)
	m := g.NumEdges()
	dr := NewDeltaRouter(g, tms...)
	ref := NewMultiPlan(g, tms...)
	w := make(Weights, m)
	for i := range w {
		w[i] = 1 + rng.IntN(30)
	}
	if err := dr.Route(w); err != nil {
		t.Fatal(err)
	}
	if err := ref.Route(w, tms...); err != nil {
		t.Fatal(err)
	}

	snapLoads := make([][]float64, len(dr.Loads))
	for mi := range dr.Loads {
		snapLoads[mi] = append([]float64(nil), dr.Loads[mi]...)
	}

	for round := 0; round < 60; round++ {
		if err := dr.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		fullBefore := dr.Stats().FullRoutes
		// Mutate: disable a few random arcs (sometimes disconnecting), and
		// sometimes follow with a second Apply stacking more changes.
		wf := w.Clone()
		var changed []graph.EdgeID
		for k := 0; k < 1+rng.IntN(4); k++ {
			id := graph.EdgeID(rng.IntN(m))
			wf[id] = Disabled
			changed = append(changed, id)
		}
		_, err := dr.Apply(wf, changed)
		if err == nil && rng.IntN(2) == 0 {
			id := graph.EdgeID(rng.IntN(m))
			if wf[id] != Disabled {
				wf2 := wf.Clone()
				wf2[id] = 1 + rng.IntN(30)
				_, _ = dr.Apply(wf2, []graph.EdgeID{id})
			}
		}
		dr.Revert()
		if dr.Stats().FullRoutes != fullBefore {
			t.Fatalf("round %d: revert path performed a full route", round)
		}
		if !dr.Valid() {
			t.Fatalf("round %d: router invalid after revert", round)
		}
		assertTreesEqual(t, round, dr, ref)
		for mi := range dr.Loads {
			for a := range dr.Loads[mi] {
				if dr.Loads[mi][a] != snapLoads[mi][a] {
					t.Fatalf("round %d: load[%d][%d] not restored: %v != %v",
						round, mi, a, dr.Loads[mi][a], snapLoads[mi][a])
				}
			}
		}
		for i := range w {
			if dr.Weights()[i] != w[i] {
				t.Fatalf("round %d: weight %d not restored", round, i)
			}
		}
		// The reverted router must keep serving exact incremental updates.
		id := graph.EdgeID(rng.IntN(m))
		w2 := w.Clone()
		w2[id] = 1 + rng.IntN(30)
		if w2[id] != w[id] {
			if _, err := dr.Apply(w2, []graph.EdgeID{id}); err != nil {
				t.Fatal(err)
			}
			if err := ref.Route(w2, tms...); err != nil {
				t.Fatal(err)
			}
			assertTreesEqual(t, round, dr, ref)
			assertLoadsEqual(t, round, dr, ref)
			w = w2
			for mi := range dr.Loads {
				copy(snapLoads[mi], dr.Loads[mi])
			}
		}
	}
	if dr.Stats().Reverts == 0 {
		t.Fatal("no reverts recorded")
	}
}
