package spf

import (
	"math/rand/v2"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// Allocation-regression tests: the SPF hot path must be allocation-free in
// steady state. Each case warms the buffers once, then asserts zero allocs
// per run — the property that keeps full-route evaluation GC-silent inside
// search and sweep inner loops.

func allocInstance(t *testing.T) (*graph.Graph, Weights, *traffic.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 21))
	g, err := topo.Random(40, 100, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, randomWeights(g.NumEdges(), 30, rng), traffic.Gravity(40, rng)
}

func TestComputerTreeZeroSteadyStateAllocs(t *testing.T) {
	g, w, _ := allocInstance(t)
	c := NewComputer(g)
	var tr Tree
	c.Tree(0, w, &tr) // warm
	if allocs := testing.AllocsPerRun(50, func() {
		c.Tree(0, w, &tr)
	}); allocs != 0 {
		t.Fatalf("Computer.Tree allocates %.1f objects per warm run, want 0", allocs)
	}
	// The heap fallback must be zero-alloc too.
	c.SetForceHeap(true)
	c.Tree(0, w, &tr)
	if allocs := testing.AllocsPerRun(50, func() {
		c.Tree(0, w, &tr)
	}); allocs != 0 {
		t.Fatalf("Computer.Tree (heap fallback) allocates %.1f objects per warm run, want 0", allocs)
	}
}

func TestAddLoadsZeroSteadyStateAllocs(t *testing.T) {
	g, w, tm := allocInstance(t)
	c := NewComputer(g)
	var tr Tree
	c.Tree(0, w, &tr)
	demand := tm.DemandsTo(0, nil)
	loads := make([]float64, g.NumEdges())
	if err := c.AddLoads(&tr, demand, loads); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := c.AddLoads(&tr, demand, loads); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("AddLoads allocates %.1f objects per warm run, want 0", allocs)
	}
}

func TestMultiPlanRouteZeroSteadyStateAllocs(t *testing.T) {
	g, w, tm := allocInstance(t)
	rng := rand.New(rand.NewPCG(9, 9))
	tm2 := traffic.Gravity(g.NumNodes(), rng)
	p := NewMultiPlan(g, tm, tm2)
	if err := p.Route(w, tm, tm2); err != nil { // warm
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := p.Route(w, tm, tm2); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("MultiPlan.Route allocates %.1f objects per warm run, want 0", allocs)
	}
}

func TestDeltaApplyZeroSteadyStateAllocs(t *testing.T) {
	g, w, tm := allocInstance(t)
	dr := NewDeltaRouter(g, tm)
	if err := dr.Route(w); err != nil {
		t.Fatal(err)
	}
	w2 := w.Clone()
	changed := []graph.EdgeID{5}
	// Warm both directions of the single-arc toggle so supports, dirty lists
	// and the sampled-metrics path have all grown to steady state.
	for i := 0; i < 2*metricsSampleRate; i++ {
		w2[5] = 3 + (i & 1)
		if _, err := dr.Apply(w2, changed); err != nil {
			t.Fatal(err)
		}
	}
	// The instrumented incremental path — counters, sampled histograms and
	// all — must stay allocation-free.
	i := 0
	if allocs := testing.AllocsPerRun(50, func() {
		w2[5] = 3 + (i & 1)
		i++
		if _, err := dr.Apply(w2, changed); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("DeltaRouter.Apply allocates %.1f objects per warm run, want 0", allocs)
	}
}

func TestCheckpointRevertZeroSteadyStateAllocs(t *testing.T) {
	g, w, tm := allocInstance(t)
	dr := NewDeltaRouter(g, tm)
	if err := dr.Route(w); err != nil {
		t.Fatal(err)
	}
	w2 := w.Clone()
	w2[7] = Disabled
	changed := []graph.EdgeID{7}
	cycle := func() {
		if err := dr.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := dr.Apply(w2, changed); err != nil {
			t.Fatal(err)
		}
		dr.Revert()
	}
	for i := 0; i < 2*metricsSampleRate; i++ {
		cycle() // warm the checkpoint pre-image buffers
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("Checkpoint/Apply/Revert allocates %.1f objects per warm run, want 0", allocs)
	}
}

func TestTreeIncreaseZeroSteadyStateAllocs(t *testing.T) {
	g, w, _ := allocInstance(t)
	c := NewComputer(g)
	var tr Tree
	c.Tree(0, w, &tr)
	w2 := w.Clone()
	w2[3] = Disabled
	changed := []graph.EdgeID{3}
	// Warm both directions of the toggle.
	c.TreeIncrease(w2, &tr, changed)
	c.Tree(0, w, &tr)
	c.TreeIncrease(w2, &tr, changed)
	c.Tree(0, w, &tr)
	if allocs := testing.AllocsPerRun(50, func() {
		c.TreeIncrease(w2, &tr, changed)
		c.Tree(0, w, &tr) // restore the pre-increase tree for the next run
	}); allocs != 0 {
		t.Fatalf("TreeIncrease+Tree allocates %.1f objects per warm run, want 0", allocs)
	}
}

// TestScaleRouteZeroSteadyStateAllocs pins the compact-layout acceptance
// property at full scale: a warm sequential MultiPlan.Route over a 100k-node
// hierarchical ISP (16 sink-limited gravity destinations) performs zero
// allocations — the int32 tree arenas and support buffers never regrow.
func TestScaleRouteZeroSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node instance; skipped with -short")
	}
	rng := rand.New(rand.NewPCG(100_000, 0x5ca1e))
	g, err := topo.Generate("hier", topo.Params{Pops: 250, RoutersPerPop: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.GravitySinks(g.NumNodes(), 16, rng)
	w := randomWeights(g.NumEdges(), 20, rng)
	p := NewMultiPlan(g, tm)
	if err := p.Route(w, tm); err != nil { // warm
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(2, func() {
		if err := p.Route(w, tm); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("100k-node warm Route allocates %.1f objects per run, want 0", allocs)
	}
}
