package spf

import (
	"sync"
	"sync/atomic"

	"dualtopo/internal/graph"
	"dualtopo/internal/traffic"
)

// MultiPlan routes one or more traffic matrices over a single weight setting
// (one SPF tree set), retaining per-destination trees for delay queries.
// This is the evaluation core for both STR (two classes, one topology) and
// each DTR class (one class per topology). A MultiPlan reuses all buffers
// across Route calls and is not safe for concurrent use (Route orchestrates
// its own internal workers when configured; see SetWorkers).
type MultiPlan struct {
	g     *graph.Graph
	comp  *Computer
	dests []graph.NodeID // union of active destinations across matrices
	trees []Tree         // parallel to dests
	byID  []int          // node -> index into dests, -1 if inactive

	// Loads[i] is the per-arc volume of the i-th matrix after Route.
	Loads [][]float64

	demandBuf   []float64
	destScratch []float64 // per-destination load staging buffer
	xiBuf       []float64

	tmsBuf []*traffic.Matrix // Route's copy of the variadic matrix list

	// workers bounds the SPF worker pool Route shards destinations across;
	// <= 1 keeps the sequential path. Parallel state is built lazily.
	workers int
	par     *parRoute
}

// NewMultiPlan prepares routing state for the union of destinations active
// in the given matrices. Route must later be called with matrices having the
// same (or a subset of the) active destination sets.
func NewMultiPlan(g *graph.Graph, tms ...*traffic.Matrix) *MultiPlan {
	p := &MultiPlan{
		g:    g,
		comp: NewComputer(g),
		byID: make([]int, g.NumNodes()),
	}
	for i := range p.byID {
		p.byID[i] = -1
	}
	for _, tm := range tms {
		for _, d := range tm.ActiveDestinations() {
			if p.byID[d] == -1 {
				p.byID[d] = len(p.dests)
				p.dests = append(p.dests, d)
			}
		}
	}
	p.trees = make([]Tree, len(p.dests))
	p.Loads = make([][]float64, len(tms))
	for i := range p.Loads {
		p.Loads[i] = make([]float64, g.NumEdges())
	}
	p.destScratch = make([]float64, g.NumEdges())
	return p
}

// CloneState returns an independent MultiPlan for the same instance, sharing
// only the immutable destination index (dests, byID). Fresh trees, loads and
// buffers are allocated, so the clone can route concurrently with the
// original. The clone always starts sequential (workers = 1): clones back
// evaluator pools whose goroutines are already the parallelism, so nesting
// SPF workers under them would only oversubscribe. This is what evaluator
// pools use: the O(n²) active-destination scan happens once, not once per
// worker.
func (p *MultiPlan) CloneState() *MultiPlan {
	c := &MultiPlan{
		g:     p.g,
		comp:  NewComputer(p.g),
		dests: p.dests,
		byID:  p.byID,
		trees: make([]Tree, len(p.dests)),
		Loads: make([][]float64, len(p.Loads)),
	}
	for i := range c.Loads {
		c.Loads[i] = make([]float64, p.g.NumEdges())
	}
	c.destScratch = make([]float64, p.g.NumEdges())
	return c
}

// SetWorkers bounds the SPF worker pool Route shards destinations across.
// n <= 1 restores the sequential path. Parallel and sequential routing are
// bitwise-identical: workers only compute per-destination contributions,
// which a single ordered reduction then folds exactly as the sequential
// loop would.
func (p *MultiPlan) SetWorkers(n int) { p.workers = n }

// Destinations returns the active destination union.
func (p *MultiPlan) Destinations() []graph.NodeID { return p.dests }

// Route computes shortest-path DAGs under w and aggregates each matrix's
// demands into the corresponding Loads slice.
//
// Aggregation is grouped per destination: each destination's contribution is
// routed into a zeroed staging buffer and then folded into the aggregate,
// skipping zero entries. Because every arc receives at most one addition per
// destination and destinations fold in ascending index order, the parallel
// path (SetWorkers > 1) and the incremental DeltaRouter both reproduce this
// exact floating-point summation sequence — which is what makes all three
// engines bitwise-equal.
func (p *MultiPlan) Route(w Weights, tms ...*traffic.Matrix) error {
	p.tmsBuf = append(p.tmsBuf[:0], tms...)
	if p.workers > 1 && len(p.dests) > 1 {
		return p.routeParallel(w)
	}
	for i := range p.tmsBuf {
		loads := p.Loads[i]
		for j := range loads {
			loads[j] = 0
		}
	}
	maxW := p.comp.maxWFor(w) // one scan per weight setting, not per destination
	for di, dest := range p.dests {
		t := &p.trees[di]
		p.comp.tree(dest, w, t, maxW)
		for mi, tm := range p.tmsBuf {
			p.demandBuf = tm.DemandsTo(dest, p.demandBuf)
			any := false
			for _, d := range p.demandBuf {
				if d != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			scratch := p.destScratch
			for a := range scratch {
				scratch[a] = 0
			}
			if err := p.comp.AddLoads(t, p.demandBuf, scratch); err != nil {
				return err
			}
			loads := p.Loads[mi]
			for a, v := range scratch {
				if v != 0 {
					loads[a] += v
				}
			}
		}
	}
	return nil
}

// parRoute is MultiPlan's parallel full-route state: per-worker computers
// and staging buffers, per-destination support lists (arc IDs plus values),
// and the pre-built worker closures the spawn loop reuses so a warm
// parallel Route performs no closure allocations.
type parRoute struct {
	p          *MultiPlan
	comps      []*Computer
	scratch    [][]float64 // per worker, dense per-arc staging (kept zeroed)
	demandBufs [][]float64 // per worker
	fns        []func()

	// supArcs/supVals[di][mi] hold destination di's contribution to matrix
	// mi as a compacted support list, the input of the ordered reduction.
	supArcs [][][]graph.EdgeID
	supVals [][][]float64
	errs    []error // per destination, for deterministic error selection

	w    Weights
	maxW int // bucket-width selector, computed once per Route
	next atomic.Int64
	wg   sync.WaitGroup
}

// ensurePar sizes the parallel state for the current worker count and
// matrix count, building it lazily so sequential users pay nothing.
func (p *MultiPlan) ensurePar(nmat int) *parRoute {
	pr := p.par
	if pr == nil {
		pr = &parRoute{p: p}
		p.par = pr
	}
	nw := p.workers
	if nw > len(p.dests) {
		nw = len(p.dests)
	}
	for len(pr.comps) < nw {
		wk := len(pr.comps)
		pr.comps = append(pr.comps, NewComputer(p.g))
		pr.scratch = append(pr.scratch, make([]float64, p.g.NumEdges()))
		pr.demandBufs = append(pr.demandBufs, make([]float64, p.g.NumNodes()))
		pr.fns = append(pr.fns, func() { pr.worker(wk) })
	}
	if pr.supArcs == nil {
		pr.supArcs = make([][][]graph.EdgeID, len(p.dests))
		pr.supVals = make([][][]float64, len(p.dests))
		pr.errs = make([]error, len(p.dests))
	}
	for di := range pr.supArcs {
		for len(pr.supArcs[di]) < nmat {
			pr.supArcs[di] = append(pr.supArcs[di], nil)
			pr.supVals[di] = append(pr.supVals[di], nil)
		}
	}
	return pr
}

// routeParallel shards the destinations of the Route call across the worker
// pool, then folds the per-destination support lists into the aggregate
// loads in ascending destination order — the sequential path's exact
// floating-point summation sequence.
func (p *MultiPlan) routeParallel(w Weights) error {
	pr := p.ensurePar(len(p.tmsBuf))
	pr.w = w
	pr.maxW = maxWeight(w)
	nw := p.workers
	if nw > len(p.dests) {
		nw = len(p.dests)
	}
	pr.next.Store(0)
	pr.wg.Add(nw)
	for i := 0; i < nw; i++ {
		go pr.fns[i]()
	}
	pr.wg.Wait()
	for di := range p.dests {
		if err := pr.errs[di]; err != nil {
			return err
		}
	}
	for mi := range p.tmsBuf {
		loads := p.Loads[mi]
		for a := range loads {
			loads[a] = 0
		}
		for di := range p.dests {
			arcs := pr.supArcs[di][mi]
			vals := pr.supVals[di][mi]
			for k, a := range arcs {
				loads[a] += vals[k]
			}
		}
	}
	return nil
}

// worker claims destinations off the shared counter until none remain. Any
// claim order yields the same result: workers only fill per-destination
// slots, and the reduction replays them in destination order.
func (pr *parRoute) worker(wk int) {
	defer pr.wg.Done()
	nd := len(pr.p.dests)
	for {
		di := int(pr.next.Add(1)) - 1
		if di >= nd {
			return
		}
		pr.errs[di] = pr.routeDest(wk, di)
	}
}

// routeDest computes one destination's tree and compacts its per-matrix
// load contributions into support lists, restoring the worker's dense
// staging buffer to all-zeros afterwards.
func (pr *parRoute) routeDest(wk, di int) error {
	p := pr.p
	dest := p.dests[di]
	comp := pr.comps[wk]
	comp.tree(dest, pr.w, &p.trees[di], pr.maxW)
	scratch := pr.scratch[wk]
	for mi, tm := range p.tmsBuf {
		pr.demandBufs[wk] = tm.DemandsTo(dest, pr.demandBufs[wk])
		demand := pr.demandBufs[wk]
		any := false
		for _, d := range demand {
			if d != 0 {
				any = true
				break
			}
		}
		sup := pr.supArcs[di][mi][:0]
		vals := pr.supVals[di][mi][:0]
		if any {
			var err error
			// AddLoads validates reachability before writing any load, so on
			// error the staging buffer is still zero and needs no repair.
			sup, err = comp.addLoadsTracked(&p.trees[di], demand, scratch, sup)
			if err != nil {
				pr.supArcs[di][mi] = sup[:0]
				pr.supVals[di][mi] = vals
				return err
			}
			for _, a := range sup {
				vals = append(vals, scratch[a])
				scratch[a] = 0
			}
		}
		pr.supArcs[di][mi] = sup
		pr.supVals[di][mi] = vals
	}
	return nil
}

// Tree returns the routing tree toward dest from the last Route call, or nil
// if dest is not an active destination.
func (p *MultiPlan) Tree(dest graph.NodeID) *Tree {
	i := p.byID[dest]
	if i < 0 {
		return nil
	}
	return &p.trees[i]
}

// DelaysTo returns expected delays from every node to dst given per-arc
// delays. The returned slice is reused by the next DelaysTo call. It panics
// on an inactive destination.
func (p *MultiPlan) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	t := p.Tree(dst)
	if t == nil {
		panic("spf: DelaysTo on inactive destination")
	}
	p.xiBuf = t.Delays(p.g, arcDelay, p.xiBuf)
	return p.xiBuf
}

// Plan routes a single traffic matrix under changing weight settings. It is
// a MultiPlan specialized to one matrix, exposing its loads as a flat slice.
type Plan struct {
	mp *MultiPlan

	// Loads is the per-arc volume after the last Route call.
	Loads []float64
}

// NewPlan prepares routing state for the destinations active in tm.
func NewPlan(g *graph.Graph, tm *traffic.Matrix) *Plan {
	mp := NewMultiPlan(g, tm)
	return &Plan{mp: mp, Loads: mp.Loads[0]}
}

// CloneState returns an independent Plan for the same instance, sharing only
// the immutable destination index. See MultiPlan.CloneState.
func (p *Plan) CloneState() *Plan {
	mp := p.mp.CloneState()
	return &Plan{mp: mp, Loads: mp.Loads[0]}
}

// SetWorkers bounds the SPF worker pool used by Route; see
// MultiPlan.SetWorkers.
func (p *Plan) SetWorkers(n int) { p.mp.SetWorkers(n) }

// Destinations returns the active destination set.
func (p *Plan) Destinations() []graph.NodeID { return p.mp.Destinations() }

// Route computes shortest-path DAGs for every active destination under w and
// aggregates tm's demands into p.Loads.
func (p *Plan) Route(w Weights, tm *traffic.Matrix) error {
	return p.mp.Route(w, tm)
}

// Tree returns the routing tree toward dest from the last Route call, or nil
// if dest is not an active destination.
func (p *Plan) Tree(dest graph.NodeID) *Tree { return p.mp.Tree(dest) }

// PairDelay returns the expected end-to-end delay from src to dst under the
// last Route call, given per-arc delays. For repeated queries against the
// same destination prefer DelaysTo.
func (p *Plan) PairDelay(src, dst graph.NodeID, arcDelay []float64) float64 {
	return p.mp.DelaysTo(dst, arcDelay)[src]
}

// DelaysTo returns expected delays from every node to dst. The returned
// slice is reused by the next DelaysTo call.
func (p *Plan) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	return p.mp.DelaysTo(dst, arcDelay)
}

// Loads is a convenience wrapper: route tm under w on g and return the
// per-arc load vector.
func Loads(g *graph.Graph, w Weights, tm *traffic.Matrix) ([]float64, error) {
	p := NewPlan(g, tm)
	if err := p.Route(w, tm); err != nil {
		return nil, err
	}
	return p.Loads, nil
}
