package spf

import (
	"dualtopo/internal/graph"
	"dualtopo/internal/traffic"
)

// MultiPlan routes one or more traffic matrices over a single weight setting
// (one SPF tree set), retaining per-destination trees for delay queries.
// This is the evaluation core for both STR (two classes, one topology) and
// each DTR class (one class per topology). A MultiPlan reuses all buffers
// across Route calls and is not safe for concurrent use.
type MultiPlan struct {
	g     *graph.Graph
	comp  *Computer
	dests []graph.NodeID // union of active destinations across matrices
	trees []Tree         // parallel to dests
	byID  []int          // node -> index into dests, -1 if inactive

	// Loads[i] is the per-arc volume of the i-th matrix after Route.
	Loads [][]float64

	demandBuf   []float64
	destScratch []float64 // per-destination load staging buffer
	xiBuf       []float64
}

// NewMultiPlan prepares routing state for the union of destinations active
// in the given matrices. Route must later be called with matrices having the
// same (or a subset of the) active destination sets.
func NewMultiPlan(g *graph.Graph, tms ...*traffic.Matrix) *MultiPlan {
	p := &MultiPlan{
		g:    g,
		comp: NewComputer(g),
		byID: make([]int, g.NumNodes()),
	}
	for i := range p.byID {
		p.byID[i] = -1
	}
	for _, tm := range tms {
		for _, d := range tm.ActiveDestinations() {
			if p.byID[d] == -1 {
				p.byID[d] = len(p.dests)
				p.dests = append(p.dests, d)
			}
		}
	}
	p.trees = make([]Tree, len(p.dests))
	p.Loads = make([][]float64, len(tms))
	for i := range p.Loads {
		p.Loads[i] = make([]float64, g.NumEdges())
	}
	p.destScratch = make([]float64, g.NumEdges())
	return p
}

// CloneState returns an independent MultiPlan for the same instance, sharing
// only the immutable destination index (dests, byID). Fresh trees, loads and
// buffers are allocated, so the clone can route concurrently with the
// original. This is what evaluator pools use: the O(n²) active-destination
// scan happens once, not once per worker.
func (p *MultiPlan) CloneState() *MultiPlan {
	c := &MultiPlan{
		g:     p.g,
		comp:  NewComputer(p.g),
		dests: p.dests,
		byID:  p.byID,
		trees: make([]Tree, len(p.dests)),
		Loads: make([][]float64, len(p.Loads)),
	}
	for i := range c.Loads {
		c.Loads[i] = make([]float64, p.g.NumEdges())
	}
	c.destScratch = make([]float64, p.g.NumEdges())
	return c
}

// Destinations returns the active destination union.
func (p *MultiPlan) Destinations() []graph.NodeID { return p.dests }

// Route computes shortest-path DAGs under w and aggregates each matrix's
// demands into the corresponding Loads slice.
//
// Aggregation is grouped per destination: each destination's contribution is
// routed into a zeroed staging buffer and then folded into the aggregate,
// skipping zero entries. DeltaRouter reproduces exactly this floating-point
// summation sequence when it re-aggregates only the arcs a weight change
// touched, which is what makes incremental and full evaluation bitwise
// equal.
func (p *MultiPlan) Route(w Weights, tms ...*traffic.Matrix) error {
	for i := range tms {
		loads := p.Loads[i]
		for j := range loads {
			loads[j] = 0
		}
	}
	for di, dest := range p.dests {
		t := &p.trees[di]
		p.comp.Tree(dest, w, t)
		for mi, tm := range tms {
			p.demandBuf = tm.DemandsTo(dest, p.demandBuf)
			any := false
			for _, d := range p.demandBuf {
				if d != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			scratch := p.destScratch
			for a := range scratch {
				scratch[a] = 0
			}
			if err := p.comp.AddLoads(t, p.demandBuf, scratch); err != nil {
				return err
			}
			loads := p.Loads[mi]
			for a, v := range scratch {
				if v != 0 {
					loads[a] += v
				}
			}
		}
	}
	return nil
}

// Tree returns the routing tree toward dest from the last Route call, or nil
// if dest is not an active destination.
func (p *MultiPlan) Tree(dest graph.NodeID) *Tree {
	i := p.byID[dest]
	if i < 0 {
		return nil
	}
	return &p.trees[i]
}

// DelaysTo returns expected delays from every node to dst given per-arc
// delays. The returned slice is reused by the next DelaysTo call. It panics
// on an inactive destination.
func (p *MultiPlan) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	t := p.Tree(dst)
	if t == nil {
		panic("spf: DelaysTo on inactive destination")
	}
	p.xiBuf = t.Delays(p.g, arcDelay, p.xiBuf)
	return p.xiBuf
}

// Plan routes a single traffic matrix under changing weight settings. It is
// a MultiPlan specialized to one matrix, exposing its loads as a flat slice.
type Plan struct {
	mp *MultiPlan

	// Loads is the per-arc volume after the last Route call.
	Loads []float64
}

// NewPlan prepares routing state for the destinations active in tm.
func NewPlan(g *graph.Graph, tm *traffic.Matrix) *Plan {
	mp := NewMultiPlan(g, tm)
	return &Plan{mp: mp, Loads: mp.Loads[0]}
}

// CloneState returns an independent Plan for the same instance, sharing only
// the immutable destination index. See MultiPlan.CloneState.
func (p *Plan) CloneState() *Plan {
	mp := p.mp.CloneState()
	return &Plan{mp: mp, Loads: mp.Loads[0]}
}

// Destinations returns the active destination set.
func (p *Plan) Destinations() []graph.NodeID { return p.mp.Destinations() }

// Route computes shortest-path DAGs for every active destination under w and
// aggregates tm's demands into p.Loads.
func (p *Plan) Route(w Weights, tm *traffic.Matrix) error {
	return p.mp.Route(w, tm)
}

// Tree returns the routing tree toward dest from the last Route call, or nil
// if dest is not an active destination.
func (p *Plan) Tree(dest graph.NodeID) *Tree { return p.mp.Tree(dest) }

// PairDelay returns the expected end-to-end delay from src to dst under the
// last Route call, given per-arc delays. For repeated queries against the
// same destination prefer DelaysTo.
func (p *Plan) PairDelay(src, dst graph.NodeID, arcDelay []float64) float64 {
	return p.mp.DelaysTo(dst, arcDelay)[src]
}

// DelaysTo returns expected delays from every node to dst. The returned
// slice is reused by the next DelaysTo call.
func (p *Plan) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	return p.mp.DelaysTo(dst, arcDelay)
}

// Loads is a convenience wrapper: route tm under w on g and return the
// per-arc load vector.
func Loads(g *graph.Graph, w Weights, tm *traffic.Matrix) ([]float64, error) {
	p := NewPlan(g, tm)
	if err := p.Route(w, tm); err != nil {
		return nil, err
	}
	return p.Loads, nil
}
