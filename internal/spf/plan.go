package spf

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dualtopo/internal/graph"
	"dualtopo/internal/traffic"
)

// MultiPlan routes one or more traffic matrices over a single weight setting
// (one SPF tree set), retaining per-destination trees for delay queries.
// This is the evaluation core for both STR (two classes, one topology) and
// each DTR class (one class per topology). A MultiPlan reuses all buffers
// across Route calls and is not safe for concurrent use (Route orchestrates
// its own internal workers when configured; see SetWorkers).
type MultiPlan struct {
	g     *graph.Graph
	comp  *Computer
	dests []graph.NodeID // union of active destinations across matrices
	trees []Tree         // parallel to dests
	byID  []int32        // node -> index into dests, -1 if inactive

	// Loads[i] is the per-arc volume of the i-th matrix after Route.
	Loads [][]float64

	demandBuf   []float64
	destScratch []float64 // per-destination load staging buffer
	xiBuf       []float64

	tmsBuf []*traffic.Matrix // Route's copy of the variadic matrix list

	// workers bounds the SPF worker pool Route shards destination blocks
	// across: 1 is the sequential path (the constructor default), 0 resolves
	// automatically per Route from instance size and GOMAXPROCS, n > 1 pins
	// the pool size. Parallel state is built lazily.
	workers int
	// blockSize is the contiguous-destination claim granularity of the
	// parallel path; 0 (default) auto-tunes from instance size.
	blockSize int
	par       *parRoute
}

// NewMultiPlan prepares routing state for the union of destinations active
// in the given matrices. Route must later be called with matrices having the
// same (or a subset of the) active destination sets.
func NewMultiPlan(g *graph.Graph, tms ...*traffic.Matrix) *MultiPlan {
	p := &MultiPlan{
		g:    g,
		comp: NewComputer(g),
		byID: make([]int32, g.NumNodes()),
	}
	for i := range p.byID {
		p.byID[i] = -1
	}
	for _, tm := range tms {
		for _, d := range tm.ActiveDestinations() {
			if p.byID[d] == -1 {
				p.byID[d] = int32(len(p.dests))
				p.dests = append(p.dests, d)
			}
		}
	}
	p.trees = make([]Tree, len(p.dests))
	p.Loads = make([][]float64, len(tms))
	for i := range p.Loads {
		p.Loads[i] = make([]float64, g.NumEdges())
	}
	p.destScratch = make([]float64, g.NumEdges())
	p.workers = 1
	return p
}

// CloneState returns an independent MultiPlan for the same instance, sharing
// only the immutable destination index (dests, byID). Fresh trees, loads and
// buffers are allocated, so the clone can route concurrently with the
// original. The clone always starts sequential (workers = 1): clones back
// evaluator pools whose goroutines are already the parallelism, so nesting
// SPF workers under them would only oversubscribe. This is what evaluator
// pools use: the O(n²) active-destination scan happens once, not once per
// worker.
func (p *MultiPlan) CloneState() *MultiPlan {
	c := &MultiPlan{
		g:     p.g,
		comp:  NewComputer(p.g),
		dests: p.dests,
		byID:  p.byID,
		trees: make([]Tree, len(p.dests)),
		Loads: make([][]float64, len(p.Loads)),
	}
	for i := range c.Loads {
		c.Loads[i] = make([]float64, p.g.NumEdges())
	}
	c.destScratch = make([]float64, p.g.NumEdges())
	c.workers = 1
	return c
}

// SetWorkers bounds the SPF worker pool Route shards destination blocks
// across. n == 1 (or negative) restores the sequential path; n == 0 selects
// the worker count automatically per Route from the instance's work volume
// (destinations × nodes) and GOMAXPROCS — small instances stay sequential,
// large ones fan out. Parallel and sequential routing are bitwise-identical:
// workers only compute per-destination contributions, which a single ordered
// reduction then folds exactly as the sequential loop would.
func (p *MultiPlan) SetWorkers(n int) {
	if n < 0 {
		n = 1
	}
	p.workers = n
}

// SetBlockSize overrides the contiguous-destination claim granularity of
// the parallel path. n <= 0 restores auto-tuning (see autoBlockSize). Any
// block size yields bitwise-identical loads; the knob only trades claim
// contention against load balance.
func (p *MultiPlan) SetBlockSize(n int) {
	if n < 0 {
		n = 0
	}
	p.blockSize = n
}

// autoWorkers picks the worker count for SetWorkers(0): sequential below a
// work-volume threshold (the fork/join and claim overhead dwarfs tiny
// instances), else one worker per core capped by the destination count.
func autoWorkers(numDests, numNodes int) int {
	if int64(numDests)*int64(numNodes) < autoSeqWork {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > numDests {
		w = numDests
	}
	if w < 1 {
		w = 1
	}
	return w
}

// autoSeqWork is the destinations × nodes volume below which auto worker
// selection stays sequential. The paper-scale 30-node instances (≤ 900
// units) route in tens of microseconds — spawning workers there loses — while
// a 10k-node, 64-destination scale instance (640k units) gains ~core-count.
const autoSeqWork = 1 << 17

// autoBlockSize picks the contiguous-destination claim granularity: enough
// blocks to balance claimsPerWorker-ways per worker, but no block so large
// that one worker's tail claim stalls the join, and never larger than
// needed to amortize claim overhead on big graphs (per-destination work
// scales with the node count, so large instances tolerate fine blocks).
func autoBlockSize(numDests, numNodes, workers int) int {
	if workers <= 1 || numDests <= workers {
		return 1
	}
	// Aim for ~4 claims per worker so a straggling block can be absorbed.
	b := numDests / (4 * workers)
	// Cap by per-destination weight: past ~64k nodes-worth of work per
	// block, claim overhead is already invisible and smaller blocks only
	// improve balance.
	if maxB := 1 << 16 / max(numNodes, 1); b > maxB {
		b = maxB
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Destinations returns the active destination union.
func (p *MultiPlan) Destinations() []graph.NodeID { return p.dests }

// Route computes shortest-path DAGs under w and aggregates each matrix's
// demands into the corresponding Loads slice.
//
// Aggregation is grouped per destination: each destination's contribution is
// routed into a zeroed staging buffer and then folded into the aggregate,
// skipping zero entries. Because every arc receives at most one addition per
// destination and destinations fold in ascending index order, the parallel
// path (SetWorkers > 1) and the incremental DeltaRouter both reproduce this
// exact floating-point summation sequence — which is what makes all three
// engines bitwise-equal.
func (p *MultiPlan) Route(w Weights, tms ...*traffic.Matrix) error {
	p.tmsBuf = append(p.tmsBuf[:0], tms...)
	workers := p.workers
	if workers == 0 {
		workers = autoWorkers(len(p.dests), p.g.NumNodes())
	}
	maxW := maxWeight(w) // one scan per weight setting, not per destination
	if err := checkDistRange(p.g.NumNodes(), maxW); err != nil {
		return err
	}
	if workers > 1 && len(p.dests) > 1 {
		return p.routeParallel(w, workers, maxW)
	}
	for i := range p.tmsBuf {
		loads := p.Loads[i]
		for j := range loads {
			loads[j] = 0
		}
	}
	for di, dest := range p.dests {
		t := &p.trees[di]
		p.comp.tree(dest, w, t, maxW)
		for mi, tm := range p.tmsBuf {
			p.demandBuf = tm.DemandsTo(dest, p.demandBuf)
			any := false
			for _, d := range p.demandBuf {
				if d != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			scratch := p.destScratch
			for a := range scratch {
				scratch[a] = 0
			}
			if err := p.comp.AddLoads(t, p.demandBuf, scratch); err != nil {
				return err
			}
			loads := p.Loads[mi]
			for a, v := range scratch {
				if v != 0 {
					loads[a] += v
				}
			}
		}
	}
	return nil
}

// parRoute is MultiPlan's parallel full-route state: per-worker computers
// and staging buffers, per-destination support lists (arc IDs plus values),
// and the pre-built worker closures the spawn loop reuses so a warm
// parallel Route performs no closure allocations.
type parRoute struct {
	p          *MultiPlan
	comps      []*Computer
	scratch    [][]float64 // per worker, dense per-arc staging (kept zeroed)
	demandBufs [][]float64 // per worker
	fns        []func()
	claimed    []int // per worker, destinations processed in the last Route

	// supArcs/supVals[di][mi] hold destination di's contribution to matrix
	// mi as a compacted support list, the input of the ordered reduction.
	supArcs [][][]graph.EdgeID
	supVals [][][]float64
	errs    []error // per destination, for deterministic error selection

	w     Weights
	maxW  int // bucket-width selector, computed once per Route
	block int // contiguous destinations per claim
	next  atomic.Int64
	wg    sync.WaitGroup
}

// ensurePar sizes the parallel state for the given worker count and matrix
// count, building it lazily so sequential users pay nothing.
func (p *MultiPlan) ensurePar(nw, nmat int) *parRoute {
	pr := p.par
	if pr == nil {
		pr = &parRoute{p: p}
		p.par = pr
	}
	for len(pr.comps) < nw {
		wk := len(pr.comps)
		pr.comps = append(pr.comps, NewComputer(p.g))
		pr.scratch = append(pr.scratch, make([]float64, p.g.NumEdges()))
		pr.demandBufs = append(pr.demandBufs, make([]float64, p.g.NumNodes()))
		pr.fns = append(pr.fns, func() { pr.worker(wk) })
		pr.claimed = append(pr.claimed, 0)
	}
	if pr.supArcs == nil {
		pr.supArcs = make([][][]graph.EdgeID, len(p.dests))
		pr.supVals = make([][][]float64, len(p.dests))
		pr.errs = make([]error, len(p.dests))
	}
	for di := range pr.supArcs {
		for len(pr.supArcs[di]) < nmat {
			pr.supArcs[di] = append(pr.supArcs[di], nil)
			pr.supVals[di] = append(pr.supVals[di], nil)
		}
	}
	return pr
}

// routeParallel shards the destinations of the Route call across the worker
// pool in contiguous blocks, then folds the per-destination support lists
// into the aggregate loads in ascending destination order — the sequential
// path's exact floating-point summation sequence. Block claiming only
// changes which worker computes which slot, never the reduction order, so
// results are bitwise-identical at any worker count and block size.
func (p *MultiPlan) routeParallel(w Weights, workers, maxW int) error {
	nw := workers
	if nw > len(p.dests) {
		nw = len(p.dests)
	}
	pr := p.ensurePar(nw, len(p.tmsBuf))
	pr.w = w
	pr.maxW = maxW
	pr.block = p.blockSize
	if pr.block <= 0 {
		pr.block = autoBlockSize(len(p.dests), p.g.NumNodes(), nw)
	}
	pr.next.Store(0)
	for i := 0; i < nw; i++ {
		pr.claimed[i] = 0
	}
	pr.wg.Add(nw)
	for i := 0; i < nw; i++ {
		go pr.fns[i]()
	}
	pr.wg.Wait()
	met.routeBlockSize.Set(float64(pr.block))
	busy := 0
	for i := 0; i < nw; i++ {
		if pr.claimed[i] > 0 {
			busy++
		}
	}
	met.routeWorkerOccupancy.Set(float64(busy))
	for di := range p.dests {
		if err := pr.errs[di]; err != nil {
			return err
		}
	}
	for mi := range p.tmsBuf {
		loads := p.Loads[mi]
		for a := range loads {
			loads[a] = 0
		}
		for di := range p.dests {
			arcs := pr.supArcs[di][mi]
			vals := pr.supVals[di][mi]
			for k, a := range arcs {
				loads[a] += vals[k]
			}
		}
	}
	return nil
}

// worker claims contiguous destination blocks off the shared counter until
// none remain. Blocks amortize the claim atomic and keep each worker's tree
// and scratch state walking adjacent destinations; any claim order yields
// the same result, because workers only fill per-destination slots and the
// reduction replays them in destination order.
func (pr *parRoute) worker(wk int) {
	defer pr.wg.Done()
	nd := len(pr.p.dests)
	b := int64(pr.block)
	for {
		end := pr.next.Add(b)
		start := int(end - b)
		if start >= nd {
			return
		}
		stop := int(end)
		if stop > nd {
			stop = nd
		}
		pr.claimed[wk] += stop - start
		for di := start; di < stop; di++ {
			pr.errs[di] = pr.routeDest(wk, di)
		}
	}
}

// routeDest computes one destination's tree and compacts its per-matrix
// load contributions into support lists, restoring the worker's dense
// staging buffer to all-zeros afterwards.
func (pr *parRoute) routeDest(wk, di int) error {
	p := pr.p
	dest := p.dests[di]
	comp := pr.comps[wk]
	comp.tree(dest, pr.w, &p.trees[di], pr.maxW)
	scratch := pr.scratch[wk]
	for mi, tm := range p.tmsBuf {
		pr.demandBufs[wk] = tm.DemandsTo(dest, pr.demandBufs[wk])
		demand := pr.demandBufs[wk]
		any := false
		for _, d := range demand {
			if d != 0 {
				any = true
				break
			}
		}
		sup := pr.supArcs[di][mi][:0]
		vals := pr.supVals[di][mi][:0]
		if any {
			var err error
			// AddLoads validates reachability before writing any load, so on
			// error the staging buffer is still zero and needs no repair.
			sup, err = comp.addLoadsTracked(&p.trees[di], demand, scratch, sup)
			if err != nil {
				pr.supArcs[di][mi] = sup[:0]
				pr.supVals[di][mi] = vals
				return err
			}
			for _, a := range sup {
				vals = append(vals, scratch[a])
				scratch[a] = 0
			}
		}
		pr.supArcs[di][mi] = sup
		pr.supVals[di][mi] = vals
	}
	return nil
}

// Tree returns the routing tree toward dest from the last Route call, or nil
// if dest is not an active destination.
func (p *MultiPlan) Tree(dest graph.NodeID) *Tree {
	i := p.byID[dest]
	if i < 0 {
		return nil
	}
	return &p.trees[i]
}

// DelaysTo returns expected delays from every node to dst given per-arc
// delays. The returned slice is reused by the next DelaysTo call. It panics
// on an inactive destination.
func (p *MultiPlan) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	t := p.Tree(dst)
	if t == nil {
		panic("spf: DelaysTo on inactive destination")
	}
	p.xiBuf = t.Delays(p.g, arcDelay, p.xiBuf)
	return p.xiBuf
}

// Plan routes a single traffic matrix under changing weight settings. It is
// a MultiPlan specialized to one matrix, exposing its loads as a flat slice.
type Plan struct {
	mp *MultiPlan

	// Loads is the per-arc volume after the last Route call.
	Loads []float64
}

// NewPlan prepares routing state for the destinations active in tm.
func NewPlan(g *graph.Graph, tm *traffic.Matrix) *Plan {
	mp := NewMultiPlan(g, tm)
	return &Plan{mp: mp, Loads: mp.Loads[0]}
}

// CloneState returns an independent Plan for the same instance, sharing only
// the immutable destination index. See MultiPlan.CloneState.
func (p *Plan) CloneState() *Plan {
	mp := p.mp.CloneState()
	return &Plan{mp: mp, Loads: mp.Loads[0]}
}

// SetWorkers bounds the SPF worker pool used by Route; see
// MultiPlan.SetWorkers (1 = sequential, 0 = auto, n > 1 = fixed).
func (p *Plan) SetWorkers(n int) { p.mp.SetWorkers(n) }

// SetBlockSize overrides the parallel path's destination-block granularity;
// see MultiPlan.SetBlockSize.
func (p *Plan) SetBlockSize(n int) { p.mp.SetBlockSize(n) }

// Destinations returns the active destination set.
func (p *Plan) Destinations() []graph.NodeID { return p.mp.Destinations() }

// Route computes shortest-path DAGs for every active destination under w and
// aggregates tm's demands into p.Loads.
func (p *Plan) Route(w Weights, tm *traffic.Matrix) error {
	return p.mp.Route(w, tm)
}

// Tree returns the routing tree toward dest from the last Route call, or nil
// if dest is not an active destination.
func (p *Plan) Tree(dest graph.NodeID) *Tree { return p.mp.Tree(dest) }

// PairDelay returns the expected end-to-end delay from src to dst under the
// last Route call, given per-arc delays. For repeated queries against the
// same destination prefer DelaysTo.
func (p *Plan) PairDelay(src, dst graph.NodeID, arcDelay []float64) float64 {
	return p.mp.DelaysTo(dst, arcDelay)[src]
}

// DelaysTo returns expected delays from every node to dst. The returned
// slice is reused by the next DelaysTo call.
func (p *Plan) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	return p.mp.DelaysTo(dst, arcDelay)
}

// Loads is a convenience wrapper: route tm under w on g and return the
// per-arc load vector.
func Loads(g *graph.Graph, w Weights, tm *traffic.Matrix) ([]float64, error) {
	p := NewPlan(g, tm)
	if err := p.Route(w, tm); err != nil {
		return nil, err
	}
	return p.Loads, nil
}
