package spf

import (
	"math/rand/v2"
	"runtime"
	"strings"
	"testing"

	"dualtopo/internal/graph"
	"dualtopo/internal/obs"
	"dualtopo/internal/traffic"
)

// TestBlockShardingBitwiseEquality pins the tentpole invariant of the
// block-sharded parallel route: across block sizes {1, 64, auto} and worker
// counts {1, 4, GOMAXPROCS}, loads and trees are bitwise-equal (==, no
// tolerance) to the sequential path, over random instances and repeated
// warm reroutes.
func TestBlockShardingBitwiseEquality(t *testing.T) {
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	blockSizes := []int{1, 64, 0} // 0 = auto
	for seed := uint64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewPCG(seed, 211))
		g, tms := randomInstance(rng, 14+int(seed)*3, 12+int(seed), 2)
		seq := NewMultiPlan(g, tms...)
		par := NewMultiPlan(g, tms...)
		for _, workers := range workerCounts {
			for _, block := range blockSizes {
				par.SetWorkers(workers)
				par.SetBlockSize(block)
				for round := 0; round < 3; round++ {
					w := randomWeights(g.NumEdges(), 30, rng)
					if err := seq.Route(w, tms...); err != nil {
						t.Fatal(err)
					}
					if err := par.Route(w, tms...); err != nil {
						t.Fatal(err)
					}
					for mi := range seq.Loads {
						for a := range seq.Loads[mi] {
							if seq.Loads[mi][a] != par.Loads[mi][a] {
								t.Fatalf("seed %d workers %d block %d round %d: load[%d][%d] = %v, sequential %v",
									seed, workers, block, round, mi, a, par.Loads[mi][a], seq.Loads[mi][a])
							}
						}
					}
					for _, dest := range seq.Destinations() {
						assertSameTree(t, seed, int(dest), par.Tree(dest), seq.Tree(dest))
					}
				}
			}
		}
	}
}

// TestBlockShardingDeterministicError: on a partitioned graph, every
// (workers, block size) combination must surface the identical
// first-in-destination-order disconnection error the sequential path
// reports — not whichever worker lost the race.
func TestBlockShardingDeterministicError(t *testing.T) {
	// Two components: {0,1,2} ring and isolated {3}; demands target both.
	g := graph.New(4)
	g.AddLink(0, 1, 100, 1)
	g.AddLink(1, 2, 100, 1)
	g.AddLink(2, 0, 100, 1)
	tm := traffic.NewMatrix(4)
	tm.Set(0, 1, 5)
	tm.Set(0, 2, 5)
	tm.Set(1, 3, 5) // unreachable: 3 is cut off
	w := Uniform(g.NumEdges())

	seq := NewMultiPlan(g, tm)
	seqErr := seq.Route(w, tm)
	if seqErr == nil {
		t.Fatal("sequential route accepted partitioned demand")
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0) + 1} {
		for _, block := range []int{1, 64, 0} {
			par := NewMultiPlan(g, tm)
			par.SetWorkers(workers)
			par.SetBlockSize(block)
			parErr := par.Route(w, tm)
			if parErr == nil {
				t.Fatalf("workers=%d block=%d: accepted partitioned demand", workers, block)
			}
			if parErr.Error() != seqErr.Error() {
				t.Fatalf("workers=%d block=%d: error %q != sequential %q",
					workers, block, parErr, seqErr)
			}
		}
	}
}

func TestAutoWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name           string
		dests, nodes   int
		want           int
		wantSequential bool
	}{
		{"paper instance stays sequential", 30, 30, 1, true},
		{"just below threshold", 1, autoSeqWork - 1, 1, true},
		{"at threshold fans out", 1, autoSeqWork, min(procs, 1), false},
		{"scale instance", 64, 10_000, min(procs, 64), false},
		{"worker cap at destination count", 2, 1 << 20, min(procs, 2), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := autoWorkers(tc.dests, tc.nodes)
			if got != tc.want {
				t.Fatalf("autoWorkers(%d, %d) = %d, want %d", tc.dests, tc.nodes, got, tc.want)
			}
			if tc.wantSequential && got != 1 {
				t.Fatalf("autoWorkers(%d, %d) = %d, want sequential", tc.dests, tc.nodes, got)
			}
		})
	}
}

func TestAutoBlockSize(t *testing.T) {
	cases := []struct {
		name                  string
		dests, nodes, workers int
		want                  int
	}{
		{"sequential degenerates to 1", 100, 50, 1, 1},
		{"fewer dests than workers", 3, 50, 8, 1},
		{"balances four claims per worker", 640, 100, 4, 40},
		{"big-graph cap kicks in", 10_000, 10_000, 4, 6}, // 1<<16/10000 = 6
		{"never below 1", 9, 1 << 20, 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := autoBlockSize(tc.dests, tc.nodes, tc.workers)
			if got != tc.want {
				t.Fatalf("autoBlockSize(%d, %d, %d) = %d, want %d",
					tc.dests, tc.nodes, tc.workers, got, tc.want)
			}
		})
	}
}

// TestRouteShapeGaugesExposed pins the parallel-route telemetry: after a
// block-sharded Route, the spf_route_block_size and
// spf_route_worker_occupancy gauges hold the block granularity and the
// number of workers that claimed work.
func TestRouteShapeGaugesExposed(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 77))
	g, tms := randomInstance(rng, 20, 16, 1)
	p := NewMultiPlan(g, tms...)
	p.SetWorkers(2)
	p.SetBlockSize(3)
	if err := p.Route(randomWeights(g.NumEdges(), 20, rng), tms...); err != nil {
		t.Fatal(err)
	}
	if got := met.routeBlockSize.Value(); got != 3 {
		t.Fatalf("spf_route_block_size = %v, want 3", got)
	}
	occ := met.routeWorkerOccupancy.Value()
	if occ < 1 || occ > 2 {
		t.Fatalf("spf_route_worker_occupancy = %v, want within [1,2]", occ)
	}

	// The gauges must reach the exposition surface every CLI serves.
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# TYPE spf_route_block_size gauge",
		"# TYPE spf_route_worker_occupancy gauge",
	} {
		if !strings.Contains(sb.String(), frag) {
			t.Fatalf("exposition missing %q", frag)
		}
	}
}
