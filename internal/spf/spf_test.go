package spf

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualtopo/internal/graph"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// line builds 0 -> 1 -> 2 -> 3 (bidirectional).
func line() *graph.Graph {
	g := graph.New(4)
	g.AddLink(0, 1, 100, 1)
	g.AddLink(1, 2, 100, 2)
	g.AddLink(2, 3, 100, 3)
	return g
}

// diamond builds s=0, a=1, b=2, t=3 with equal-cost paths 0-1-3 and 0-2-3.
func diamond() *graph.Graph {
	g := graph.New(4)
	g.AddLink(0, 1, 100, 1)
	g.AddLink(0, 2, 100, 1)
	g.AddLink(1, 3, 100, 1)
	g.AddLink(2, 3, 100, 1)
	return g
}

func TestUniformWeights(t *testing.T) {
	w := Uniform(5)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	for _, x := range w {
		if x != 1 {
			t.Fatalf("weight = %d, want 1", x)
		}
	}
	c := w.Clone()
	c[0] = 9
	if w[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestWeightsValidate(t *testing.T) {
	g := line()
	if err := Uniform(g.NumEdges()).Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := Uniform(3).Validate(g); err == nil {
		t.Fatal("wrong length accepted")
	}
	w := Uniform(g.NumEdges())
	w[2] = 0
	if err := w.Validate(g); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestTreeLineDistances(t *testing.T) {
	g := line()
	c := NewComputer(g)
	var tr Tree
	c.Tree(3, Uniform(g.NumEdges()), &tr)
	want := []int32{3, 2, 1, 0}
	for u, d := range tr.Dist {
		if d != want[u] {
			t.Fatalf("Dist[%d] = %d, want %d", u, d, want[u])
		}
	}
	hops := tr.NextHops(g, 0)
	if len(hops) != 1 || hops[0] != 1 {
		t.Fatalf("NextHops(0) = %v, want [1]", hops)
	}
	if tr.NextLen(3) != 0 {
		t.Fatalf("destination has next hops: %v", tr.Next(3))
	}
}

func TestTreeRespectsWeights(t *testing.T) {
	g := diamond()
	w := Uniform(g.NumEdges())
	// Make path through node 1 expensive: arc 0->1 gets weight 5.
	id, _ := g.ArcBetween(0, 1)
	w[id] = 5
	c := NewComputer(g)
	var tr Tree
	c.Tree(3, w, &tr)
	hops := tr.NextHops(g, 0)
	if len(hops) != 1 || hops[0] != 2 {
		t.Fatalf("NextHops(0) = %v, want [2]", hops)
	}
	if tr.Dist[0] != 2 {
		t.Fatalf("Dist[0] = %d, want 2", tr.Dist[0])
	}
}

func TestECMPEvenSplit(t *testing.T) {
	g := diamond()
	tm := traffic.NewMatrix(4)
	tm.Set(0, 3, 10)
	loads, err := Loads(g, Uniform(g.NumEdges()), tm)
	if err != nil {
		t.Fatal(err)
	}
	a01, _ := g.ArcBetween(0, 1)
	a02, _ := g.ArcBetween(0, 2)
	a13, _ := g.ArcBetween(1, 3)
	a23, _ := g.ArcBetween(2, 3)
	for _, tc := range []struct {
		id   graph.EdgeID
		want float64
	}{{a01, 5}, {a02, 5}, {a13, 5}, {a23, 5}} {
		if loads[tc.id] != tc.want {
			t.Fatalf("load[%d] = %g, want %g", tc.id, loads[tc.id], tc.want)
		}
	}
	// Reverse arcs carry nothing.
	a10, _ := g.ArcBetween(1, 0)
	if loads[a10] != 0 {
		t.Fatalf("reverse arc carries %g", loads[a10])
	}
}

func TestECMPDownstreamSplit(t *testing.T) {
	// 0 -> {1,2} -> 3 -> 4 : flows merge at 3 then continue on one arc.
	g := graph.New(5)
	g.AddLink(0, 1, 1, 0)
	g.AddLink(0, 2, 1, 0)
	g.AddLink(1, 3, 1, 0)
	g.AddLink(2, 3, 1, 0)
	g.AddLink(3, 4, 1, 0)
	tm := traffic.NewMatrix(5)
	tm.Set(0, 4, 8)
	loads, err := Loads(g, Uniform(g.NumEdges()), tm)
	if err != nil {
		t.Fatal(err)
	}
	a34, _ := g.ArcBetween(3, 4)
	if loads[a34] != 8 {
		t.Fatalf("merged load = %g, want 8", loads[a34])
	}
	a13, _ := g.ArcBetween(1, 3)
	if loads[a13] != 4 {
		t.Fatalf("split load = %g, want 4", loads[a13])
	}
}

func TestLoadsMultipleSources(t *testing.T) {
	g := line()
	tm := traffic.NewMatrix(4)
	tm.Set(0, 3, 2)
	tm.Set(1, 3, 3)
	tm.Set(2, 3, 5)
	loads, err := Loads(g, Uniform(g.NumEdges()), tm)
	if err != nil {
		t.Fatal(err)
	}
	a23, _ := g.ArcBetween(2, 3)
	if loads[a23] != 10 {
		t.Fatalf("last hop load = %g, want 10", loads[a23])
	}
	a01, _ := g.ArcBetween(0, 1)
	if loads[a01] != 2 {
		t.Fatalf("first hop load = %g, want 2", loads[a01])
	}
}

func TestUnreachableDemandErrors(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 1, 0) // one-way; node 2 isolated
	tm := traffic.NewMatrix(3)
	tm.Set(2, 1, 5)
	if _, err := Loads(g, Uniform(g.NumEdges()), tm); err == nil {
		t.Fatal("demand from unreachable node accepted")
	}
}

func TestDelaysLine(t *testing.T) {
	g := line()
	c := NewComputer(g)
	var tr Tree
	c.Tree(3, Uniform(g.NumEdges()), &tr)
	arcDelay := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		arcDelay[e.ID] = e.Delay
	}
	xi := tr.Delays(g, arcDelay, nil)
	if xi[3] != 0 {
		t.Fatalf("xi[dest] = %g", xi[3])
	}
	if xi[2] != 3 || xi[1] != 5 || xi[0] != 6 {
		t.Fatalf("xi = %v, want [6 5 3 0]", xi[:4])
	}
}

func TestDelaysECMPAverage(t *testing.T) {
	g := diamond()
	// Path via 1 has total delay 2+3=5; via 2 has 4+7=11; expected 8.
	arcDelay := make([]float64, g.NumEdges())
	set := func(u, v graph.NodeID, d float64) {
		id, ok := g.ArcBetween(u, v)
		if !ok {
			t.Fatalf("no arc %d->%d", u, v)
		}
		arcDelay[id] = d
	}
	set(0, 1, 2)
	set(1, 3, 3)
	set(0, 2, 4)
	set(2, 3, 7)
	c := NewComputer(g)
	var tr Tree
	c.Tree(3, Uniform(g.NumEdges()), &tr)
	xi := tr.Delays(g, arcDelay, nil)
	if xi[0] != 8 {
		t.Fatalf("xi[0] = %g, want 8 (average of 5 and 11)", xi[0])
	}
}

func TestDelaysUnreachableIsInf(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 1, 0)
	c := NewComputer(g)
	var tr Tree
	c.Tree(1, Uniform(g.NumEdges()), &tr)
	xi := tr.Delays(g, make([]float64, g.NumEdges()), nil)
	if !math.IsInf(xi[2], 1) {
		t.Fatalf("xi[unreachable] = %g, want +Inf", xi[2])
	}
	if tr.Reaches(2) {
		t.Fatal("Reaches(2) = true for isolated node")
	}
}

func TestPlanReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g, err := topo.Random(20, 50, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.Gravity(20, rng)
	p := NewPlan(g, tm)
	w1 := randomWeights(g.NumEdges(), 30, rng)
	w2 := randomWeights(g.NumEdges(), 30, rng)
	if err := p.Route(w1, tm); err != nil {
		t.Fatal(err)
	}
	if err := p.Route(w2, tm); err != nil {
		t.Fatal(err)
	}
	reused := append([]float64(nil), p.Loads...)
	fresh, err := Loads(g, w2, tm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if math.Abs(fresh[i]-reused[i]) > 1e-9 {
			t.Fatalf("arc %d: reused %g vs fresh %g", i, reused[i], fresh[i])
		}
	}
}

func TestPlanPairDelay(t *testing.T) {
	g := line()
	tm := traffic.NewMatrix(4)
	tm.Set(0, 3, 1)
	p := NewPlan(g, tm)
	if err := p.Route(Uniform(g.NumEdges()), tm); err != nil {
		t.Fatal(err)
	}
	arcDelay := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		arcDelay[e.ID] = e.Delay
	}
	if d := p.PairDelay(0, 3, arcDelay); d != 6 {
		t.Fatalf("PairDelay(0,3) = %g, want 6", d)
	}
	if tr := p.Tree(1); tr != nil {
		t.Fatal("Tree(inactive dest) != nil")
	}
}

// TestFlowConservation checks, on random graphs with random weights and
// demands, that (a) total demand arrives at each destination and (b) flow is
// conserved at every intermediate node.
func TestFlowConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 5 + rng.IntN(15)
		links := n + rng.IntN(2*n)
		if max := n * (n - 1) / 2; links > max {
			links = max
		}
		g, err := topo.Random(n, links, 100, rng)
		if err != nil {
			return true // invalid configuration, skip
		}
		w := randomWeights(g.NumEdges(), 30, rng)
		dest := graph.NodeID(rng.IntN(n))
		demand := make([]float64, n)
		total := 0.0
		for u := range demand {
			if graph.NodeID(u) == dest {
				continue
			}
			demand[u] = rng.Float64() * 10
			total += demand[u]
		}
		c := NewComputer(g)
		var tr Tree
		c.Tree(dest, w, &tr)
		loads := make([]float64, g.NumEdges())
		if err := c.AddLoads(&tr, demand, loads); err != nil {
			return false
		}
		// (a) inflow at dest == total demand.
		inflow := 0.0
		for _, id := range g.In(dest) {
			inflow += loads[id]
		}
		if math.Abs(inflow-total) > 1e-6 {
			return false
		}
		// (b) conservation at intermediate nodes: in + demand == out.
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == dest {
				continue
			}
			in, out := 0.0, 0.0
			for _, id := range g.In(graph.NodeID(u)) {
				in += loads[id]
			}
			for _, id := range g.Out(graph.NodeID(u)) {
				out += loads[id]
			}
			if math.Abs(in+demand[u]-out) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTotalLoadMatchesExpectedHops: summing per-arc loads equals summing
// demand times expected hop count (Delays with unit arc delay), because both
// count expected arc traversals.
func TestTotalLoadMatchesExpectedHops(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := 6 + rng.IntN(10)
		g, err := topo.Random(n, n+rng.IntN(n), 100, rng)
		if err != nil {
			return true
		}
		w := randomWeights(g.NumEdges(), 10, rng)
		dest := graph.NodeID(rng.IntN(n))
		demand := make([]float64, n)
		for u := range demand {
			if graph.NodeID(u) != dest {
				demand[u] = 1 + rng.Float64()*5
			}
		}
		c := NewComputer(g)
		var tr Tree
		c.Tree(dest, w, &tr)
		loads := make([]float64, g.NumEdges())
		if err := c.AddLoads(&tr, demand, loads); err != nil {
			return false
		}
		totalLoad := 0.0
		for _, l := range loads {
			totalLoad += l
		}
		ones := make([]float64, g.NumEdges())
		for i := range ones {
			ones[i] = 1
		}
		hops := tr.Delays(g, ones, nil)
		expected := 0.0
		for u, d := range demand {
			expected += d * hops[u]
		}
		return math.Abs(totalLoad-expected) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraAgainstBellmanFord validates distances on random graphs
// against a reference Bellman-Ford.
func TestDijkstraAgainstBellmanFord(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		n := 4 + rng.IntN(12)
		g, err := topo.Random(n, n+rng.IntN(n), 1, rng)
		if err != nil {
			return true
		}
		w := randomWeights(g.NumEdges(), 30, rng)
		dest := graph.NodeID(rng.IntN(n))
		c := NewComputer(g)
		var tr Tree
		c.Tree(dest, w, &tr)
		ref := bellmanFord(g, w, dest)
		for u := range ref {
			if ref[u] != tr.Dist[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func bellmanFord(g *graph.Graph, w Weights, dest graph.NodeID) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[dest] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges() {
			if dist[e.To] == unreachable {
				continue
			}
			if alt := dist[e.To] + int32(w[e.ID]); alt < dist[e.From] {
				dist[e.From] = alt
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDisabledArcReroutes(t *testing.T) {
	g := diamond()
	w := Uniform(g.NumEdges())
	a01, _ := g.ArcBetween(0, 1)
	w = w.WithFailedArcs(a01)
	tm := traffic.NewMatrix(4)
	tm.Set(0, 3, 10)
	loads, err := Loads(g, w, tm)
	if err != nil {
		t.Fatal(err)
	}
	a02, _ := g.ArcBetween(0, 2)
	if loads[a01] != 0 {
		t.Fatalf("failed arc carries %g", loads[a01])
	}
	if loads[a02] != 10 {
		t.Fatalf("surviving branch carries %g, want 10", loads[a02])
	}
}

func TestDisabledArcsDisconnect(t *testing.T) {
	g := diamond()
	w := Uniform(g.NumEdges())
	a01, _ := g.ArcBetween(0, 1)
	a02, _ := g.ArcBetween(0, 2)
	w = w.WithFailedArcs(a01, a02)
	tm := traffic.NewMatrix(4)
	tm.Set(0, 3, 10)
	if _, err := Loads(g, w, tm); err == nil {
		t.Fatal("disconnected demand routed")
	}
	// The tree itself must mark node 0 unreachable.
	c := NewComputer(g)
	var tr Tree
	c.Tree(3, w, &tr)
	if tr.Reaches(0) {
		t.Fatal("node 0 still reaches destination through failed arcs")
	}
}

func TestWithFailedArcsDoesNotMutate(t *testing.T) {
	w := Uniform(4)
	f := w.WithFailedArcs(2)
	if w[2] != 1 {
		t.Fatal("WithFailedArcs mutated the receiver")
	}
	if f[2] != Disabled {
		t.Fatalf("failed arc weight = %d", f[2])
	}
	// Disabled weights still pass validation (they are a legal sentinel).
	g := diamond()
	wf := Uniform(g.NumEdges()).WithFailedArcs(0)
	if err := wf.Validate(g); err != nil {
		t.Fatalf("Validate rejected disabled arc: %v", err)
	}
}

func TestMultiPlanRoutesBothMatrices(t *testing.T) {
	g := diamond()
	tmA := traffic.NewMatrix(4)
	tmA.Set(0, 3, 8)
	tmB := traffic.NewMatrix(4)
	tmB.Set(1, 3, 4)
	mp := NewMultiPlan(g, tmA, tmB)
	if err := mp.Route(Uniform(g.NumEdges()), tmA, tmB); err != nil {
		t.Fatal(err)
	}
	a13, _ := g.ArcBetween(1, 3)
	if mp.Loads[0][a13] != 4 { // half of tmA's 8 via node 1
		t.Fatalf("matrix A load = %g, want 4", mp.Loads[0][a13])
	}
	if mp.Loads[1][a13] != 4 { // all of tmB's 4
		t.Fatalf("matrix B load = %g, want 4", mp.Loads[1][a13])
	}
	if mp.Tree(3) == nil || mp.Tree(2) != nil {
		t.Fatal("MultiPlan destination set wrong")
	}
	if len(mp.Destinations()) != 1 {
		t.Fatalf("destinations = %v", mp.Destinations())
	}
}

func randomWeights(n, max int, rng *rand.Rand) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = 1 + rng.IntN(max)
	}
	return w
}
