// Package spf implements the OSPF-style shortest-path forwarding model the
// paper assumes: per-destination shortest-path DAGs under integer link
// weights, even ECMP splitting at every hop (the Fortz–Thorup convention),
// per-arc load aggregation for a traffic matrix, and expected end-to-end
// delay over the ECMP DAG.
package spf

import (
	"errors"
	"fmt"
	"math"

	"dualtopo/internal/graph"
)

// Weights assigns a routing weight to every arc (indexed by EdgeID).
// Weights must be >= 1; the paper uses the range [1, 30]. The sentinel
// Disabled removes an arc from routing entirely (link failure).
type Weights []int

// Disabled marks an arc as failed/unusable: SPF ignores it completely.
const Disabled = int(^uint32(0) >> 1) // large sentinel, never a real weight

// Clone returns a copy of w.
func (w Weights) Clone() Weights { return append(Weights(nil), w...) }

// WithFailedArcs returns a copy of w with the given arcs disabled.
func (w Weights) WithFailedArcs(arcs ...graph.EdgeID) Weights {
	c := w.Clone()
	for _, id := range arcs {
		c[id] = Disabled
	}
	return c
}

// Uniform returns unit weights (hop-count routing) for a graph with n arcs.
func Uniform(n int) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Validate checks that w covers every arc with a positive weight (or the
// Disabled sentinel).
func (w Weights) Validate(g *graph.Graph) error {
	if len(w) != g.NumEdges() {
		return fmt.Errorf("spf: %d weights for %d arcs", len(w), g.NumEdges())
	}
	for i, x := range w {
		if x < 1 {
			return fmt.Errorf("spf: arc %d has non-positive weight %d", i, x)
		}
	}
	return nil
}

// maxWeight returns the largest non-Disabled weight in w (0 when every arc
// is disabled) — the bucket-queue width selector.
func maxWeight(w Weights) int {
	max := 0
	for _, x := range w {
		if x != Disabled && x > max {
			max = x
		}
	}
	return max
}

// unreachable marks nodes with no path to the destination. Distances are
// int32 (the compact tree layout halves the former int64 Dist array);
// checkDistRange guarantees every finite distance stays strictly below it.
const unreachable = math.MaxInt32

// Unreachable is the Tree.Dist value of nodes with no path to the
// destination, exported for callers inspecting tree distances directly
// (e.g. the search's routing-invariance bound checks). Guard with it before
// doing arithmetic on a distance: adding any weight to it overflows.
const Unreachable = unreachable

// ErrNoPath reports that a routing pass found positive demand at a node
// with no path to its destination — the signature of a disconnecting
// failure. Callers that replay failures (resilience sweeps, churn replay)
// match it with errors.Is to separate survivable disconnection from
// genuine errors like ErrDistRange.
var ErrNoPath = errors.New("no path to destination")

// ErrDistRange reports that node count × maximum weight could push a path
// distance past the int32 tree layout. The bound is conservative (longest
// possible path: every node traversed at the maximum arc weight) so passing
// it guarantees no Dijkstra relaxation can overflow. Weight searches stay
// far below it — 100k nodes at the paper's weight cap of 30 is ~3M of the
// ~2.1B budget — but synthetic inputs fail loudly here, never by silent
// distance wraparound.
var ErrDistRange = errors.New("spf: distance range exceeds int32 tree layout")

// CheckDistRange validates that shortest-path distances on a graph with n
// nodes under w fit the int32 tree layout. Route/Apply entry points call it
// per weight set; Computer.Tree panics with the same error for API
// compatibility.
func CheckDistRange(n int, w Weights) error {
	return checkDistRange(n, maxWeight(w))
}

func checkDistRange(n, maxW int) error {
	if int64(n)*int64(maxW) >= int64(unreachable) {
		return fmt.Errorf("%w: %d nodes × max weight %d ≥ %d", ErrDistRange, n, maxW, unreachable)
	}
	return nil
}

// Tree is the shortest-path structure rooted at one destination: distances,
// the ECMP DAG (per-node set of outgoing arcs on shortest paths toward
// Dest), and the nodes in increasing-distance order. A Tree is filled by
// Computer.Tree and remains valid until its next reuse.
//
// The ECMP DAG is stored flat in CSR form: the arcs leaving u on shortest
// paths are NextArcs[NextStart[u]:NextStart[u+1]], in ascending arc ID.
// Compared to a slice-of-slices this removes a pointer chase per node from
// every load-aggregation and delay pass and lets Computer.Tree reuse two
// flat buffers instead of n slice headers, making steady-state routing
// allocation-free.
//
// Order is canonical: reachable nodes sorted by (Dist, node ID). This makes
// a Tree — and every load vector aggregated over it — a pure function of
// (graph, weights, destination), independent of the priority queue's
// tie-breaking history. The incremental DeltaRouter relies on this to keep
// untouched trees bitwise-identical to a from-scratch recomputation.
type Tree struct {
	Dest  graph.NodeID
	Dist  []int32        // Dist[u]: shortest weighted distance u -> Dest
	Order []graph.NodeID // reachable nodes sorted by increasing (Dist, ID), Dest first

	// NextStart/NextArcs are the flat ECMP DAG: NextStart is an n+1 offset
	// array into NextArcs, which lists arcs (u,v) with w(u,v)+Dist[v] ==
	// Dist[u] grouped by u in ascending arc ID.
	NextStart []int32
	NextArcs  []graph.EdgeID
}

// Next returns the ECMP arcs leaving u toward Dest. Callers must not modify
// the returned slice; it aliases the tree's flat storage.
func (t *Tree) Next(u graph.NodeID) []graph.EdgeID {
	return t.NextArcs[t.NextStart[u]:t.NextStart[u+1]]
}

// NextLen reports the number of ECMP arcs leaving u toward Dest.
func (t *Tree) NextLen(u graph.NodeID) int {
	return int(t.NextStart[u+1] - t.NextStart[u])
}

// Reaches reports whether u has a path to the destination.
func (t *Tree) Reaches(u graph.NodeID) bool { return t.Dist[u] != unreachable }

// NextHops returns the ECMP next-hop nodes of u toward Dest.
func (t *Tree) NextHops(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	arcs := t.Next(u)
	hops := make([]graph.NodeID, 0, len(arcs))
	for _, id := range arcs {
		hops = append(hops, g.Edge(id).To)
	}
	return hops
}

// Computer runs repeated single-destination SPF computations over one graph,
// reusing internal buffers. It is not safe for concurrent use; create one
// Computer per goroutine.
type Computer struct {
	g      *graph.Graph
	csr    *graph.CSR // flat adjacency snapshot, the traversal hot path
	bq     bucketQueue
	hp     heap4
	cursor []int32         // buildNext fill cursors, one per node
	flow   []float64       // buffer for load aggregation
	inc    increaseScratch // TreeIncrease buffers

	forceHeap bool
}

// NewComputer returns a Computer for g. The graph's structure and arc
// attributes are snapshotted; mutate the graph only before creating
// Computers over it.
func NewComputer(g *graph.Graph) *Computer {
	n := g.NumNodes()
	c := &Computer{
		g:      g,
		csr:    g.CSR(),
		cursor: make([]int32, n),
		flow:   make([]float64, n),
	}
	c.hp.ensure(n)
	return c
}

// SetForceHeap forces the indexed-heap Dijkstra even when the weight range
// is bucket-eligible. Benchmark/debug knob: both queues produce
// bitwise-identical trees, so this only trades constants.
func (c *Computer) SetForceHeap(v bool) { c.forceHeap = v }

// Tree computes the shortest-path DAG toward dest under w, storing the
// result in t (its flat buffers are reused when large enough, so a warm
// tree is recomputed without allocating). It panics with an error wrapping
// ErrDistRange when node count × max weight exceeds the int32 distance
// layout; error-returning callers should gate with CheckDistRange first
// (Route/Apply do).
func (c *Computer) Tree(dest graph.NodeID, w Weights, t *Tree) {
	c.tree(dest, w, t, c.maxWFor(w))
}

// maxWFor returns the maximum-weight scan for w: the bucket-width selector
// and the distance-range bound. All-destinations callers compute it once per
// weight setting and pass it to tree, instead of rescanning w per
// destination. It panics with ErrDistRange on overflow (the scan is the
// guard point every tree build funnels through).
func (c *Computer) maxWFor(w Weights) int {
	maxW := maxWeight(w)
	if err := checkDistRange(c.csr.NumNodes(), maxW); err != nil {
		panic(err)
	}
	return maxW
}

// tree is Tree with the bucket-width selector precomputed. maxW must be the
// true maximum non-Disabled weight, already validated by checkDistRange.
func (c *Computer) tree(dest graph.NodeID, w Weights, t *Tree, maxW int) {
	n := c.csr.NumNodes()
	t.Dest = dest
	if cap(t.Dist) < n {
		t.Dist = make([]int32, n)
	}
	t.Dist = t.Dist[:n]
	if cap(t.Order) < n {
		t.Order = make([]graph.NodeID, 0, n)
	}
	t.Order = t.Order[:0]
	for u := range t.Dist {
		t.Dist[u] = unreachable
	}
	t.Dist[dest] = 0

	// Dijkstra from dest over incoming arcs (reverse graph): Dist[u] is the
	// distance from u to dest in the forward graph. Bounded integer weights
	// route through the bucket queue; wide ranges fall back to the heap.
	if maxW <= maxBucketWeight && !c.forceHeap {
		met.treeBucket.Inc()
		c.dijkstraBucket(w, t, maxW)
	} else {
		met.treeHeap.Inc()
		c.dijkstraHeap(w, t)
	}

	canonicalizeOrder(t.Dist, t.Order)
	c.buildNext(w, t)
}

// dijkstraBucket settles all distances through the monotone bucket queue.
// Entries are lazy (a node can be queued at several distances), so pops
// staler than the settled distance are skipped.
func (c *Computer) dijkstraBucket(w Weights, t *Tree, maxW int) {
	csr := c.csr
	q := &c.bq
	q.reset(maxW + 1)
	q.push(t.Dest, 0)
	dist := t.Dist
	for q.count > 0 {
		u, du := q.pop()
		if du > dist[u] {
			continue // stale entry
		}
		t.Order = append(t.Order, u)
		lo, hi := csr.InStart[u], csr.InStart[u+1]
		for i := lo; i < hi; i++ {
			id := csr.InArcs[i]
			if w[id] == Disabled {
				continue
			}
			v := csr.InFrom[i]
			alt := du + int32(w[id])
			if alt < dist[v] {
				dist[v] = alt
				q.push(v, alt)
			}
		}
	}
}

// dijkstraHeap is the wide-weight fallback over the indexed 4-ary heap.
func (c *Computer) dijkstraHeap(w Weights, t *Tree) {
	csr := c.csr
	h := &c.hp
	h.reset()
	h.push(t.Dest, 0)
	dist := t.Dist
	for h.len() > 0 {
		u, du := h.pop()
		t.Order = append(t.Order, u)
		lo, hi := csr.InStart[u], csr.InStart[u+1]
		for i := lo; i < hi; i++ {
			id := csr.InArcs[i]
			if w[id] == Disabled {
				continue
			}
			v := csr.InFrom[i]
			alt := du + int32(w[id])
			if alt < dist[v] {
				dist[v] = alt
				h.push(v, alt)
			}
		}
	}
}

// canonicalizeOrder sorts each equal-distance run of order by node ID. Any
// correct Dijkstra emits nodes in non-decreasing distance but breaks ties
// by queue history; sorting the ties makes the order — and every pass over
// it — a pure function of the inputs. Runs are typically tiny, so insertion
// sort per run is cheap and allocation-free.
func canonicalizeOrder(dist []int32, order []graph.NodeID) {
	for i := 1; i < len(order); i++ {
		u := order[i]
		du := dist[u]
		j := i
		for j > 0 && dist[order[j-1]] == du && order[j-1] > u {
			order[j] = order[j-1]
			j--
		}
		order[j] = u
	}
}

// buildNext fills the flat ECMP DAG: arc (u,v) is on a shortest path iff
// w + Dist[v] == Dist[u]. A counting pass sizes the per-node runs, then a
// fill pass places arcs in ascending arc-ID order — the same deterministic
// per-node order the adjacency lists carry.
func (c *Computer) buildNext(w Weights, t *Tree) {
	csr := c.csr
	n := csr.NumNodes()
	if cap(t.NextStart) < n+1 {
		t.NextStart = make([]int32, n+1)
	}
	t.NextStart = t.NextStart[:n+1]
	start := t.NextStart
	for i := range start {
		start[i] = 0
	}
	dist := t.Dist
	for id := range w {
		if w[id] == Disabled {
			continue
		}
		dv := dist[csr.To[id]]
		if dv == unreachable {
			continue
		}
		if from := csr.From[id]; dv+int32(w[id]) == dist[from] {
			start[from+1]++
		}
	}
	for u := 0; u < n; u++ {
		start[u+1] += start[u]
	}
	total := int(start[n])
	if cap(t.NextArcs) < total {
		// Grow with 50% headroom, capped at the arc count. A DAG holds at
		// most m arcs but typically far fewer; the old grow-straight-to-m
		// policy cost 4m bytes per tree (the dominant tree allocation at
		// 10k+ nodes) to save reallocations that the headroom already
		// absorbs across the ±1 weight steps a search performs.
		capHint := total + total/2
		if capHint > len(w) {
			capHint = len(w)
		}
		t.NextArcs = make([]graph.EdgeID, total, capHint)
	}
	t.NextArcs = t.NextArcs[:total]
	cur := c.cursor[:n]
	copy(cur, start[:n])
	for id := range w {
		if w[id] == Disabled {
			continue
		}
		dv := dist[csr.To[id]]
		if dv == unreachable {
			continue
		}
		if from := csr.From[id]; dv+int32(w[id]) == dist[from] {
			t.NextArcs[cur[from]] = graph.EdgeID(id)
			cur[from]++
		}
	}
}

// AddLoads routes demand (volume per source node, destined to t.Dest) over
// the ECMP DAG and accumulates the resulting per-arc volume into loads.
// Traffic splits evenly across equal-cost next hops at every node. It
// returns an error if a positive demand originates at a node that cannot
// reach the destination.
func (c *Computer) AddLoads(t *Tree, demand []float64, loads []float64) error {
	flow := c.flow
	for i := range flow {
		flow[i] = 0
	}
	for u, d := range demand {
		if d == 0 {
			continue
		}
		if !t.Reaches(graph.NodeID(u)) {
			return fmt.Errorf("spf: node %d has demand %g but %w %d", u, d, ErrNoPath, t.Dest)
		}
		flow[u] = d
	}
	// Process nodes farthest-first so all upstream contributions to a node
	// are accumulated before its own flow is split. Order is canonical, so
	// the floating-point accumulation sequence — and thus the exact load
	// values — depend only on (graph, weights, demand).
	to := c.csr.To
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		f := flow[u]
		if f == 0 || u == t.Dest {
			continue
		}
		arcs := t.Next(u)
		share := f / float64(len(arcs))
		for _, id := range arcs {
			loads[id] += share
			flow[to[id]] += share
		}
	}
	return nil
}

// addLoadsTracked is AddLoads with support tracking: it performs the
// identical floating-point accumulation into pd (which must be zeroed)
// while appending each arc that becomes loaded to sup. Keeping it
// instruction-identical to AddLoads is what preserves bitwise equality
// between the incremental, parallel and sequential routing paths.
func (c *Computer) addLoadsTracked(t *Tree, demand, pd []float64, sup []graph.EdgeID) ([]graph.EdgeID, error) {
	flow := c.flow
	for i := range flow {
		flow[i] = 0
	}
	for u, d := range demand {
		if d == 0 {
			continue
		}
		if !t.Reaches(graph.NodeID(u)) {
			return sup, fmt.Errorf("spf: node %d has demand %g but %w %d", u, d, ErrNoPath, t.Dest)
		}
		flow[u] = d
	}
	to := c.csr.To
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		f := flow[u]
		if f == 0 || u == t.Dest {
			continue
		}
		arcs := t.Next(u)
		share := f / float64(len(arcs))
		for _, id := range arcs {
			if pd[id] == 0 {
				sup = append(sup, id)
			}
			pd[id] += share
			flow[to[id]] += share
		}
	}
	return sup, nil
}

// Delays fills xi with the expected end-to-end delay from every node to
// t.Dest, where arcDelay holds the per-arc delay (e.g. queueing +
// propagation, Eq. 3). The expectation is over the even ECMP split:
// xi(u) = mean over next hops (u,v) of (arcDelay(u,v) + xi(v)).
// Unreachable nodes get +Inf. The returned slice aliases xi when it has
// sufficient capacity.
func (t *Tree) Delays(g *graph.Graph, arcDelay []float64, xi []float64) []float64 {
	n := g.NumNodes()
	if cap(xi) < n {
		xi = make([]float64, n)
	}
	xi = xi[:n]
	for u := range xi {
		xi[u] = math.Inf(1)
	}
	xi[t.Dest] = 0
	// Increasing-distance order guarantees xi of all next hops is final
	// (arcs in the DAG strictly decrease distance since weights >= 1).
	for _, u := range t.Order {
		if u == t.Dest {
			continue
		}
		arcs := t.Next(u)
		sum := 0.0
		for _, id := range arcs {
			sum += arcDelay[id] + xi[g.Edge(id).To]
		}
		xi[u] = sum / float64(len(arcs))
	}
	return xi
}
