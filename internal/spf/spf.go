// Package spf implements the OSPF-style shortest-path forwarding model the
// paper assumes: per-destination shortest-path DAGs under integer link
// weights, even ECMP splitting at every hop (the Fortz–Thorup convention),
// per-arc load aggregation for a traffic matrix, and expected end-to-end
// delay over the ECMP DAG.
package spf

import (
	"fmt"
	"math"

	"dualtopo/internal/graph"
)

// Weights assigns a routing weight to every arc (indexed by EdgeID).
// Weights must be >= 1; the paper uses the range [1, 30]. The sentinel
// Disabled removes an arc from routing entirely (link failure).
type Weights []int

// Disabled marks an arc as failed/unusable: SPF ignores it completely.
const Disabled = int(^uint32(0) >> 1) // large sentinel, never a real weight

// Clone returns a copy of w.
func (w Weights) Clone() Weights { return append(Weights(nil), w...) }

// WithFailedArcs returns a copy of w with the given arcs disabled.
func (w Weights) WithFailedArcs(arcs ...graph.EdgeID) Weights {
	c := w.Clone()
	for _, id := range arcs {
		c[id] = Disabled
	}
	return c
}

// Uniform returns unit weights (hop-count routing) for a graph with n arcs.
func Uniform(n int) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Validate checks that w covers every arc with a positive weight (or the
// Disabled sentinel).
func (w Weights) Validate(g *graph.Graph) error {
	if len(w) != g.NumEdges() {
		return fmt.Errorf("spf: %d weights for %d arcs", len(w), g.NumEdges())
	}
	for i, x := range w {
		if x < 1 {
			return fmt.Errorf("spf: arc %d has non-positive weight %d", i, x)
		}
	}
	return nil
}

// unreachable marks nodes with no path to the destination.
const unreachable = math.MaxInt64

// Tree is the shortest-path structure rooted at one destination: distances,
// the ECMP DAG (per-node set of outgoing arcs on shortest paths toward
// Dest), and the nodes in increasing-distance order. A Tree is filled by
// Computer.Tree and remains valid until its next reuse.
//
// Order is canonical: reachable nodes sorted by (Dist, node ID). This makes
// a Tree — and every load vector aggregated over it — a pure function of
// (graph, weights, destination), independent of Dijkstra's tie-breaking
// history. The incremental DeltaRouter relies on this to keep untouched
// trees bitwise-identical to a from-scratch recomputation.
type Tree struct {
	Dest  graph.NodeID
	Dist  []int64          // Dist[u]: shortest weighted distance u -> Dest
	Next  [][]graph.EdgeID // Next[u]: arcs (u,v) with w(u,v)+Dist[v] == Dist[u]
	Order []graph.NodeID   // reachable nodes sorted by increasing (Dist, ID), Dest first
}

// Reaches reports whether u has a path to the destination.
func (t *Tree) Reaches(u graph.NodeID) bool { return t.Dist[u] != unreachable }

// NextHops returns the ECMP next-hop nodes of u toward Dest.
func (t *Tree) NextHops(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	hops := make([]graph.NodeID, 0, len(t.Next[u]))
	for _, id := range t.Next[u] {
		hops = append(hops, g.Edge(id).To)
	}
	return hops
}

// Computer runs repeated single-destination SPF computations over one graph,
// reusing internal buffers. It is not safe for concurrent use; create one
// Computer per goroutine.
type Computer struct {
	g    *graph.Graph
	csr  *graph.CSR // flat adjacency snapshot, the traversal hot path
	heap nodeHeap
	flow []float64       // buffer for load aggregation
	inc  increaseScratch // TreeIncrease buffers
}

// NewComputer returns a Computer for g. The graph's structure and arc
// attributes are snapshotted; mutate the graph only before creating
// Computers over it.
func NewComputer(g *graph.Graph) *Computer {
	n := g.NumNodes()
	return &Computer{
		g:    g,
		csr:  g.CSR(),
		heap: newNodeHeap(n),
		flow: make([]float64, n),
	}
}

// Tree computes the shortest-path DAG toward dest under w, storing the
// result in t (its slices are reused when large enough).
func (c *Computer) Tree(dest graph.NodeID, w Weights, t *Tree) {
	csr := c.csr
	n := csr.NumNodes()
	t.Dest = dest
	if cap(t.Dist) < n {
		t.Dist = make([]int64, n)
		t.Next = make([][]graph.EdgeID, n)
		t.Order = make([]graph.NodeID, 0, n)
	}
	t.Dist = t.Dist[:n]
	t.Next = t.Next[:n]
	t.Order = t.Order[:0]
	for u := range t.Dist {
		t.Dist[u] = unreachable
		t.Next[u] = t.Next[u][:0]
	}

	// Dijkstra from dest over incoming arcs (reverse graph): Dist[u] is the
	// distance from u to dest in the forward graph. The flat CSR run for
	// node u replaces the per-node slice header chase and Edge struct loads.
	h := &c.heap
	h.reset()
	t.Dist[dest] = 0
	h.push(dest, 0)
	for h.len() > 0 {
		u, du := h.pop()
		if du > t.Dist[u] {
			continue // stale entry
		}
		t.Order = append(t.Order, u)
		lo, hi := csr.InStart[u], csr.InStart[u+1]
		for i := lo; i < hi; i++ {
			id := csr.InArcs[i]
			if w[id] == Disabled {
				continue
			}
			v := csr.InFrom[i]
			alt := du + int64(w[id])
			if alt < t.Dist[v] {
				t.Dist[v] = alt
				h.push(v, alt)
			}
		}
	}

	// Canonicalize Order: Dijkstra emits nodes in increasing distance but
	// breaks ties by heap history, which depends on the weights of arcs off
	// the shortest paths. Sorting each equal-distance run by node ID makes
	// the tree (and any load aggregation over it) a pure function of the
	// inputs. Runs are typically tiny, so insertion sort per run is cheap
	// and allocation-free.
	order := t.Order
	for i := 1; i < len(order); i++ {
		u := order[i]
		du := t.Dist[u]
		j := i
		for j > 0 && t.Dist[order[j-1]] == du && order[j-1] > u {
			order[j] = order[j-1]
			j--
		}
		order[j] = u
	}

	// ECMP DAG: arc (u,v) is on a shortest path iff w + Dist[v] == Dist[u].
	// Arc-ID iteration order makes every Next list deterministic.
	for id := 0; id < len(w); id++ {
		if w[id] == Disabled {
			continue
		}
		dv := t.Dist[csr.To[id]]
		if dv == unreachable {
			continue
		}
		if from := csr.From[id]; dv+int64(w[id]) == t.Dist[from] {
			t.Next[from] = append(t.Next[from], graph.EdgeID(id))
		}
	}
}

// AddLoads routes demand (volume per source node, destined to t.Dest) over
// the ECMP DAG and accumulates the resulting per-arc volume into loads.
// Traffic splits evenly across equal-cost next hops at every node. It
// returns an error if a positive demand originates at a node that cannot
// reach the destination.
func (c *Computer) AddLoads(t *Tree, demand []float64, loads []float64) error {
	flow := c.flow
	for i := range flow {
		flow[i] = 0
	}
	for u, d := range demand {
		if d == 0 {
			continue
		}
		if !t.Reaches(graph.NodeID(u)) {
			return fmt.Errorf("spf: node %d has demand %g but no path to %d", u, d, t.Dest)
		}
		flow[u] = d
	}
	// Process nodes farthest-first so all upstream contributions to a node
	// are accumulated before its own flow is split. Order is canonical, so
	// the floating-point accumulation sequence — and thus the exact load
	// values — depend only on (graph, weights, demand).
	to := c.csr.To
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		f := flow[u]
		if f == 0 || u == t.Dest {
			continue
		}
		share := f / float64(len(t.Next[u]))
		for _, id := range t.Next[u] {
			loads[id] += share
			flow[to[id]] += share
		}
	}
	return nil
}

// Delays fills xi with the expected end-to-end delay from every node to
// t.Dest, where arcDelay holds the per-arc delay (e.g. queueing +
// propagation, Eq. 3). The expectation is over the even ECMP split:
// xi(u) = mean over next hops (u,v) of (arcDelay(u,v) + xi(v)).
// Unreachable nodes get +Inf. The returned slice aliases xi when it has
// sufficient capacity.
func (t *Tree) Delays(g *graph.Graph, arcDelay []float64, xi []float64) []float64 {
	n := g.NumNodes()
	if cap(xi) < n {
		xi = make([]float64, n)
	}
	xi = xi[:n]
	for u := range xi {
		xi[u] = math.Inf(1)
	}
	xi[t.Dest] = 0
	// Increasing-distance order guarantees xi of all next hops is final
	// (arcs in the DAG strictly decrease distance since weights >= 1).
	for _, u := range t.Order {
		if u == t.Dest {
			continue
		}
		sum := 0.0
		for _, id := range t.Next[u] {
			sum += arcDelay[id] + xi[g.Edge(id).To]
		}
		xi[u] = sum / float64(len(t.Next[u]))
	}
	return xi
}

// nodeHeap is a lazy-deletion binary min-heap of (node, dist) entries.
type nodeHeap struct {
	nodes []graph.NodeID
	dists []int64
}

func newNodeHeap(n int) nodeHeap {
	return nodeHeap{nodes: make([]graph.NodeID, 0, n), dists: make([]int64, 0, n)}
}

func (h *nodeHeap) reset() {
	h.nodes = h.nodes[:0]
	h.dists = h.dists[:0]
}

func (h *nodeHeap) len() int { return len(h.nodes) }

func (h *nodeHeap) push(u graph.NodeID, d int64) {
	h.nodes = append(h.nodes, u)
	h.dists = append(h.dists, d)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.dists[parent] <= h.dists[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) pop() (graph.NodeID, int64) {
	u, d := h.nodes[0], h.dists[0]
	last := len(h.nodes) - 1
	h.nodes[0], h.dists[0] = h.nodes[last], h.dists[last]
	h.nodes = h.nodes[:last]
	h.dists = h.dists[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.dists[l] < h.dists[smallest] {
			smallest = l
		}
		if r < last && h.dists[r] < h.dists[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return u, d
}

func (h *nodeHeap) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.dists[i], h.dists[j] = h.dists[j], h.dists[i]
}
