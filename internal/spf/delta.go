package spf

import (
	"fmt"

	"dualtopo/internal/graph"
	"dualtopo/internal/traffic"
)

// DeltaStats counts what the incremental engine actually did — the
// observability hook for tests and benchmarks pinning the delta/full ratio.
type DeltaStats struct {
	// Applies counts Apply calls served incrementally.
	Applies int64
	// FullRoutes counts from-scratch recomputations (initial Route, error
	// recovery, Apply on an invalid router).
	FullRoutes int64
	// TreesRecomputed and TreesReused count per-destination SPF outcomes
	// across incremental Applies.
	TreesRecomputed int64
	TreesReused     int64
	// TreesPartial counts recomputed trees served by the pure-increase
	// partial path (TreeIncrease) instead of a full Dijkstra.
	TreesPartial int64
	// Reverts counts Checkpoint rollbacks.
	Reverts int64
}

// DeltaRouter incrementally maintains per-destination shortest-path trees
// and per-arc load aggregates for one or more traffic matrices under an
// evolving weight setting.
//
// A full Route computes every destination tree. Apply takes the set of arcs
// whose weights changed and recomputes only the trees the change can
// invalidate, per the dynamic-SPF rule:
//
//   - a changed arc lying on the stored ECMP DAG (Dist[to]+w_old == Dist[from])
//     invalidates the tree, whatever the direction of the change;
//   - a changed arc with Dist[to]+w_new <= Dist[from] (a weight decrease, or
//     a repaired arc, creating a shorter or new equal-cost path) invalidates
//     the tree;
//   - every other tree keeps both its distances and its ECMP DAG, so its
//     routed loads are bitwise-unchanged (Tree.Order is canonical).
//
// Dirty destinations have their old load contribution subtracted exactly —
// per-destination load vectors are retained, and touched arcs are
// re-aggregated in the same floating-point order MultiPlan.Route uses — so
// incremental results are bitwise-equal to a fresh full Route.
//
// A DeltaRouter is not safe for concurrent use. After any error the router
// is invalid and the next Apply falls back to a full Route.
type DeltaRouter struct {
	g    *graph.Graph
	csr  *graph.CSR
	comp *Computer
	tms  []*traffic.Matrix

	dests []graph.NodeID
	byID  []int32
	trees []Tree
	w     Weights
	valid bool

	// perDest[di][mi] is destination di's per-arc contribution to matrix
	// mi's loads; nil when di receives no demand from mi.
	perDest [][][]float64
	// supports[di][mi] lists the arcs with nonzero perDest[di][mi] load, in
	// load-discovery order — the key to support-sized (instead of
	// arc-count-sized) zeroing, marking and re-aggregation passes.
	supports [][][]graph.EdgeID
	// demands[di][mi] caches the demand column toward di (nil when zero).
	demands [][][]float64

	// Loads[mi] is the aggregate per-arc load of matrix mi, maintained
	// bitwise-equal to what MultiPlan.Route would produce.
	Loads [][]float64

	changedBuf []graph.EdgeID
	moved      []graph.EdgeID
	movedMark  []bool
	touched    []bool
	touchList  []graph.EdgeID
	dirty      []bool
	dirtyList  []int
	sumBuf     []float64
	allArcs    []graph.EdgeID
	xiBuf      []float64

	// Checkpoint state (see Checkpoint/Revert): pre-images of everything an
	// Apply mutates, captured lazily per dirtied destination.
	cpActive    bool
	cpW         Weights
	cpLoads     [][]float64
	cpSaved     []bool
	cpSavedList []int
	cpDest      []destSave

	stats DeltaStats
}

// destSave is one destination's checkpointed routing state: a deep tree
// copy (the tree's flat arrays copy with three memmoves) plus, per matrix,
// the support list and its load values.
type destSave struct {
	dest      graph.NodeID
	dist      []int32
	order     []graph.NodeID
	nextStart []int32
	nextArcs  []graph.EdgeID
	sup       [][]graph.EdgeID
	vals      [][]float64
}

// NewDeltaRouter prepares incremental routing state for the union of
// destinations active in the given matrices. The matrices must not be
// mutated afterwards (their demand columns are cached). Call Route before
// the first Apply, or let Apply fall back to a full Route.
func NewDeltaRouter(g *graph.Graph, tms ...*traffic.Matrix) *DeltaRouter {
	m := g.NumEdges()
	r := &DeltaRouter{
		g:    g,
		csr:  g.CSR(),
		comp: NewComputer(g),
		tms:  tms,
		byID: make([]int32, g.NumNodes()),
		w:    make(Weights, m),
	}
	for i := range r.byID {
		r.byID[i] = -1
	}
	for _, tm := range tms {
		for _, d := range tm.ActiveDestinations() {
			if r.byID[d] == -1 {
				r.byID[d] = int32(len(r.dests))
				r.dests = append(r.dests, d)
			}
		}
	}
	nd := len(r.dests)
	r.trees = make([]Tree, nd)
	r.perDest = make([][][]float64, nd)
	r.supports = make([][][]graph.EdgeID, nd)
	r.demands = make([][][]float64, nd)
	for di, dest := range r.dests {
		r.perDest[di] = make([][]float64, len(tms))
		r.supports[di] = make([][]graph.EdgeID, len(tms))
		r.demands[di] = make([][]float64, len(tms))
		for mi, tm := range tms {
			col := tm.DemandsTo(dest, nil)
			any := false
			for _, d := range col {
				if d != 0 {
					any = true
					break
				}
			}
			if any {
				r.demands[di][mi] = col
				r.perDest[di][mi] = make([]float64, m)
			}
		}
	}
	r.Loads = make([][]float64, len(tms))
	for mi := range r.Loads {
		r.Loads[mi] = make([]float64, m)
	}
	r.touched = make([]bool, m)
	r.movedMark = make([]bool, m)
	r.sumBuf = make([]float64, m)
	r.dirty = make([]bool, nd)
	r.allArcs = make([]graph.EdgeID, m)
	for a := range r.allArcs {
		r.allArcs[a] = graph.EdgeID(a)
	}
	return r
}

// Destinations returns the active destination union. Callers must not
// modify it.
func (r *DeltaRouter) Destinations() []graph.NodeID { return r.dests }

// Weights returns the router's current weight setting. Callers must not
// modify it.
func (r *DeltaRouter) Weights() Weights { return r.w }

// Valid reports whether the router holds a consistent routed state.
func (r *DeltaRouter) Valid() bool { return r.valid }

// Stats returns cumulative incremental-engine counters.
func (r *DeltaRouter) Stats() DeltaStats { return r.stats }

// Tree returns the routing tree toward dest, or nil if dest is inactive.
// Valid after a successful Route or Apply.
func (r *DeltaRouter) Tree(dest graph.NodeID) *Tree {
	i := r.byID[dest]
	if i < 0 {
		return nil
	}
	return &r.trees[i]
}

// TreeDirty reports whether dest's tree was recomputed by the last
// successful Route (always true) or Apply. Inactive destinations are never
// dirty.
func (r *DeltaRouter) TreeDirty(dest graph.NodeID) bool {
	i := r.byID[dest]
	return i >= 0 && r.dirty[i]
}

// TreeUsesArc reports whether arc id lies on the ECMP DAG toward dest under
// the current weights. It panics on an inactive destination.
func (r *DeltaRouter) TreeUsesArc(dest graph.NodeID, id graph.EdgeID) bool {
	i := r.byID[dest]
	if i < 0 {
		panic("spf: TreeUsesArc on inactive destination")
	}
	t := &r.trees[i]
	w := r.w[id]
	if w == Disabled {
		return false
	}
	dv := t.Dist[r.csr.To[id]]
	return dv != unreachable && dv+int32(w) == t.Dist[r.csr.From[id]]
}

// DelaysTo returns expected delays from every node to dst given per-arc
// delays. The returned slice is reused by the next DelaysTo call. It panics
// on an inactive destination.
func (r *DeltaRouter) DelaysTo(dst graph.NodeID, arcDelay []float64) []float64 {
	t := r.Tree(dst)
	if t == nil {
		panic("spf: DelaysTo on inactive destination")
	}
	r.xiBuf = t.Delays(r.g, arcDelay, r.xiBuf)
	return r.xiBuf
}

// Route recomputes every tree and load vector from scratch under w and
// snapshots w as the router's current setting. This is both the
// initialization path and the fallback when incremental state is unusable.
func (r *DeltaRouter) Route(w Weights) error {
	if len(w) != len(r.w) {
		return fmt.Errorf("spf: delta router has %d arcs, weights cover %d", len(r.w), len(w))
	}
	copy(r.w, w)
	r.valid = false
	r.cpActive = false // wholesale rewrite: any checkpoint is stale
	r.stats.FullRoutes++
	met.fullRoutes.Inc()
	for mi := range r.Loads {
		loads := r.Loads[mi]
		for a := range loads {
			loads[a] = 0
		}
	}
	maxW := maxWeight(r.w)
	if err := checkDistRange(r.g.NumNodes(), maxW); err != nil {
		return err
	}
	for di, dest := range r.dests {
		r.dirty[di] = true
		t := &r.trees[di]
		r.comp.tree(dest, r.w, t, maxW)
		for mi := range r.tms {
			dem := r.demands[di][mi]
			if dem == nil {
				continue
			}
			pd := r.perDest[di][mi]
			for _, a := range r.supports[di][mi] {
				pd[a] = 0
			}
			sup, err := r.comp.addLoadsTracked(t, dem, pd, r.supports[di][mi][:0])
			r.supports[di][mi] = sup
			if err != nil {
				return err
			}
			loads := r.Loads[mi]
			for _, a := range sup {
				loads[a] += pd[a]
			}
		}
	}
	r.valid = true
	return nil
}

// Apply transitions the router to w, where changed lists every arc whose
// weight differs from the router's current setting (a superset is fine:
// unchanged listed arcs are skipped). It recomputes only invalidated trees
// and returns the arcs whose aggregate Loads changed; the slice is reused by
// the next call. After an initial Route, results are bitwise-equal to a
// fresh full Route(w).
//
// On an invalid router, Apply falls back to a full Route and reports every
// arc as moved. On error the router becomes invalid; the caller must treat
// its state as unspecified until the next successful call.
func (r *DeltaRouter) Apply(w Weights, changed []graph.EdgeID) ([]graph.EdgeID, error) {
	if !r.valid {
		if err := r.Route(w); err != nil {
			return nil, err
		}
		return r.allArcs, nil
	}
	// Keep only arcs that actually changed, noting whether every change is
	// an increase (Disabled counts as +inf) — the precondition for the
	// partial-recompute path.
	actual := r.changedBuf[:0]
	pureInc := true
	for _, id := range changed {
		if w[id] != r.w[id] {
			actual = append(actual, id)
			if w[id] < r.w[id] {
				pureInc = false
			}
		}
	}
	r.changedBuf = actual
	r.stats.Applies++
	met.applies.Inc()
	for di := range r.dirty {
		r.dirty[di] = false
	}
	if len(actual) == 0 {
		r.moved = r.moved[:0]
		return r.moved, nil
	}

	// Invalidation pass against the stored trees and old weights.
	r.dirtyList = r.dirtyList[:0]
	for di := range r.dests {
		t := &r.trees[di]
		for _, id := range actual {
			wo, wn := r.w[id], w[id]
			dv := t.Dist[r.csr.To[id]]
			if dv == unreachable {
				continue // arc tail cannot reach dest: no effect either way
			}
			du := t.Dist[r.csr.From[id]]
			onDAG := wo != Disabled && dv+int32(wo) == du
			shorter := wn != Disabled && dv+int32(wn) <= du
			if onDAG || shorter {
				r.dirty[di] = true
				r.dirtyList = append(r.dirtyList, di)
				break
			}
		}
	}
	for _, id := range actual {
		r.w[id] = w[id]
	}
	r.stats.TreesRecomputed += int64(len(r.dirtyList))
	r.stats.TreesReused += int64(len(r.dests) - len(r.dirtyList))
	met.recomputed.Add(int64(len(r.dirtyList)))
	met.reused.Add(int64(len(r.dests) - len(r.dirtyList)))
	sampleApplySizes(len(r.dirtyList), len(actual))
	if len(r.dirtyList) == 0 {
		r.moved = r.moved[:0]
		return r.moved, nil
	}

	// Recompute dirty trees and their per-destination load vectors. Every
	// arc in the union of old and new supports is "touched"; all passes are
	// support-sized, never arc-count-sized. One weight scan serves both the
	// bucket-width selection of full recomputes and the int32 distance-range
	// guard (which the pure-increase path needs too: increases lengthen
	// distances).
	maxW := maxWeight(r.w)
	if err := checkDistRange(r.g.NumNodes(), maxW); err != nil {
		r.valid = false
		return nil, err
	}
	r.touchList = r.touchList[:0]
	mark := func(a graph.EdgeID) {
		if !r.touched[a] {
			r.touched[a] = true
			r.touchList = append(r.touchList, a)
		}
	}
	for _, di := range r.dirtyList {
		r.saveDest(di)
		for mi := range r.tms {
			pd := r.perDest[di][mi]
			if pd == nil {
				continue
			}
			for _, a := range r.supports[di][mi] {
				pd[a] = 0
				mark(a)
			}
		}
		t := &r.trees[di]
		if pureInc {
			r.comp.TreeIncrease(r.w, t, actual)
			r.stats.TreesPartial++
			met.treePartial.Inc()
		} else {
			r.comp.tree(r.dests[di], r.w, t, maxW)
		}
		for mi := range r.tms {
			dem := r.demands[di][mi]
			if dem == nil {
				continue
			}
			sup, err := r.comp.addLoadsTracked(t, dem, r.perDest[di][mi], r.supports[di][mi][:0])
			r.supports[di][mi] = sup
			if err != nil {
				r.valid = false
				for _, a := range r.touchList {
					r.touched[a] = false
				}
				return nil, err
			}
			for _, a := range sup {
				mark(a)
			}
		}
	}

	// Re-aggregate touched arcs in full-Route order: per arc, sum every
	// destination's contribution in ascending destination order, skipping
	// zeros — the exact floating-point sequence MultiPlan.Route performs
	// (the destination-outer loop fixes it; the iteration order of touched
	// arcs is irrelevant to the per-arc sums, so touchList stays unsorted
	// and the moved list is deterministic but unordered). The loop runs
	// destination-outer over each destination's support list, so work
	// scales with the loaded arcs, not the graph.
	r.moved = r.moved[:0]
	for mi := range r.tms {
		sums := r.sumBuf
		for _, a := range r.touchList {
			sums[a] = 0
		}
		for di := range r.dests {
			pd := r.perDest[di][mi]
			if pd == nil {
				continue
			}
			for _, a := range r.supports[di][mi] {
				if r.touched[a] {
					sums[a] += pd[a]
				}
			}
		}
		loads := r.Loads[mi]
		for _, a := range r.touchList {
			if sums[a] != loads[a] {
				loads[a] = sums[a]
				if !r.movedMark[a] {
					r.movedMark[a] = true
					r.moved = append(r.moved, a)
				}
			}
		}
	}
	for _, a := range r.touchList {
		r.touched[a] = false
	}
	for _, a := range r.moved {
		r.movedMark[a] = false
	}
	return r.moved, nil
}

// Checkpoint captures the router's current routed state so a later Revert
// can restore it bitwise without recomputation. The capture is lazy: only
// the weight and aggregate-load vectors are copied now (O(arcs)); each
// destination's tree and per-destination loads are saved the first time an
// Apply dirties it. This turns the failure-sweep repair step — and recovery
// from a disconnecting failure — into a support-sized memcpy instead of a
// Dijkstra-and-reaggregate pass (or a full fallback route).
//
// A checkpoint stays armed until Revert, a new Checkpoint (which re-bases
// it), or a full Route (which makes it stale and disarms it).
func (r *DeltaRouter) Checkpoint() error {
	if !r.valid {
		return fmt.Errorf("spf: checkpoint on an invalid router")
	}
	if r.cpW == nil {
		r.cpW = make(Weights, len(r.w))
		r.cpLoads = make([][]float64, len(r.tms))
		for mi := range r.cpLoads {
			r.cpLoads[mi] = make([]float64, len(r.w))
		}
		r.cpSaved = make([]bool, len(r.dests))
		r.cpDest = make([]destSave, len(r.dests))
	}
	copy(r.cpW, r.w)
	for mi := range r.Loads {
		copy(r.cpLoads[mi], r.Loads[mi])
	}
	for _, di := range r.cpSavedList {
		r.cpSaved[di] = false
	}
	r.cpSavedList = r.cpSavedList[:0]
	r.cpActive = true
	met.checkpoints.Inc()
	return nil
}

// saveDest records destination di's pre-image on first dirtying after a
// Checkpoint.
func (r *DeltaRouter) saveDest(di int) {
	if !r.cpActive || r.cpSaved[di] {
		return
	}
	r.cpSaved[di] = true
	r.cpSavedList = append(r.cpSavedList, di)
	ds := &r.cpDest[di]
	t := &r.trees[di]
	ds.dest = t.Dest
	ds.dist = append(ds.dist[:0], t.Dist...)
	ds.order = append(ds.order[:0], t.Order...)
	ds.nextStart = append(ds.nextStart[:0], t.NextStart...)
	ds.nextArcs = append(ds.nextArcs[:0], t.NextArcs...)
	if ds.sup == nil {
		ds.sup = make([][]graph.EdgeID, len(r.tms))
		ds.vals = make([][]float64, len(r.tms))
	}
	for mi := range r.tms {
		sup := r.supports[di][mi]
		ds.sup[mi] = append(ds.sup[mi][:0], sup...)
		vals := ds.vals[mi][:0]
		pd := r.perDest[di][mi]
		for _, a := range sup {
			vals = append(vals, pd[a])
		}
		ds.vals[mi] = vals
	}
}

// CheckpointArmed reports whether a Checkpoint is armed — captured and not
// yet consumed by Revert or invalidated by a full Route. Session pools use
// this to detect a leaked Checkpoint (armed at release time), which would
// otherwise silently poison the next reuse of the router: the stale
// pre-images would roll a future what-if back to a routing the new user
// never established.
func (r *DeltaRouter) CheckpointArmed() bool { return r.cpActive }

// Reset discards all routed state and disarms any checkpoint: the next
// Apply (or Route) recomputes everything from scratch. This is the recovery
// path for pooled routers whose incremental state can no longer be trusted —
// after a leaked checkpoint, or between logically unrelated leases.
func (r *DeltaRouter) Reset() {
	r.valid = false
	r.cpActive = false
}

// Revert restores the routed state captured by the armed checkpoint —
// trees, per-destination loads, supports, aggregate loads, and weights —
// and revalidates the router (recovering even from an error that
// invalidated it, since every mutation since the checkpoint was saved
// first). It is a no-op without an armed checkpoint, and disarms it.
func (r *DeltaRouter) Revert() {
	if !r.cpActive {
		return
	}
	r.stats.Reverts++
	met.reverts.Inc()
	for _, di := range r.cpSavedList {
		ds := &r.cpDest[di]
		t := &r.trees[di]
		t.Dest = ds.dest
		t.Dist = append(t.Dist[:0], ds.dist...)
		t.NextStart = append(t.NextStart[:0], ds.nextStart...)
		t.NextArcs = append(t.NextArcs[:0], ds.nextArcs...)
		t.Order = append(t.Order[:0], ds.order...)
		for mi := range r.tms {
			pd := r.perDest[di][mi]
			if pd == nil {
				continue
			}
			for _, a := range r.supports[di][mi] {
				pd[a] = 0
			}
			for k, a := range ds.sup[mi] {
				pd[a] = ds.vals[mi][k]
			}
			r.supports[di][mi] = append(r.supports[di][mi][:0], ds.sup[mi]...)
		}
		r.cpSaved[di] = false
	}
	r.cpSavedList = r.cpSavedList[:0]
	copy(r.w, r.cpW)
	for mi := range r.Loads {
		copy(r.Loads[mi], r.cpLoads[mi])
	}
	for di := range r.dirty {
		r.dirty[di] = false
	}
	r.valid = true
	r.cpActive = false
}

// DiffArcs appends to buf the arcs on which a and b differ, returning the
// extended slice — the changed-arc set for an Apply transitioning between
// arbitrary settings.
func DiffArcs(a, b Weights, buf []graph.EdgeID) []graph.EdgeID {
	for i := range a {
		if a[i] != b[i] {
			buf = append(buf, graph.EdgeID(i))
		}
	}
	return buf
}
