package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/resilience"
	"dualtopo/internal/scenario"
	"dualtopo/internal/spf"
)

// testSpec is the instance every engine test loads: small enough that the
// full suite stays fast, irregular enough (random topology, seeded traffic)
// that routing results are not trivially symmetric.
func testSpec() scenario.InstanceSpec {
	return scenario.InstanceSpec{
		Topology:   scenario.TopoRandom,
		Nodes:      14,
		Links:      35,
		TargetUtil: 0.6,
		Seed:       11,
	}
}

func loadTestHandle(t *testing.T, pool PoolConfig) *Handle {
	t.Helper()
	h, err := Load(Spec{Name: "test", Instance: testSpec(), Pool: pool})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// perturb derives the q-th deterministic weight setting from uniform.
func perturb(n, q int) spf.Weights {
	w := spf.Uniform(n)
	for i := range w {
		w[i] = 1 + (i*7+q*13)%9
	}
	return w
}

func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestSessionMatchesHandWiredEvaluator(t *testing.T) {
	h := loadTestHandle(t, DefaultPool())
	inst := h.Instance()

	ref, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatalf("eval.New: %v", err)
	}
	ref.SetRouteWorkers(1)

	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer func() {
		if err := h.Release(s); err != nil {
			t.Errorf("Release: %v", err)
		}
	}()

	w := perturb(inst.G.NumEdges(), 3)
	want, err := ref.EvaluateSTR(w)
	if err != nil {
		t.Fatalf("ref EvaluateSTR: %v", err)
	}
	got, err := s.EvaluateSTR(w)
	if err != nil {
		t.Fatalf("session EvaluateSTR: %v", err)
	}
	if !sameFloat(got.PhiH, want.PhiH) || !sameFloat(got.PhiL, want.PhiL) ||
		!sameFloat(got.Lambda, want.Lambda) || got.Violations != want.Violations {
		t.Fatalf("session result %+v != hand-wired %+v", got, want)
	}

	wH := perturb(inst.G.NumEdges(), 5)
	wL := perturb(inst.G.NumEdges(), 8)
	wantD, err := ref.EvaluateDTR(wH, wL)
	if err != nil {
		t.Fatalf("ref EvaluateDTR: %v", err)
	}
	gotD, err := s.EvaluateDTR(wH, wL)
	if err != nil {
		t.Fatalf("session EvaluateDTR: %v", err)
	}
	if !sameFloat(gotD.PhiH, wantD.PhiH) || !sameFloat(gotD.PhiL, wantD.PhiL) ||
		!sameFloat(gotD.Lambda, wantD.Lambda) {
		t.Fatalf("session DTR %+v != hand-wired %+v", gotD, wantD)
	}
}

// routeKey and sweepKey are the bitwise fingerprints the concurrency
// property test compares.
type routeKey struct {
	phiH, phiL, lambda uint64
	violations         int
}

type sweepKey struct {
	base       uint64
	phiL       []uint64
	surv, disc int
}

func routeFingerprint(r *eval.Result) routeKey {
	return routeKey{
		phiH:       math.Float64bits(r.PhiH),
		phiL:       math.Float64bits(r.PhiL),
		lambda:     math.Float64bits(r.Lambda),
		violations: r.Violations,
	}
}

func sweepFingerprint(sw *resilience.Sweep) sweepKey {
	k := sweepKey{
		base: math.Float64bits(sw.Base),
		surv: sw.Survivors,
		disc: sw.Disconnecting,
	}
	k.phiL = make([]uint64, len(sw.PhiL))
	for i, v := range sw.PhiL {
		k.phiL[i] = math.Float64bits(v)
	}
	return k
}

func sameSweep(a, b sweepKey) bool {
	if a.base != b.base || a.surv != b.surv || a.disc != b.disc || len(a.phiL) != len(b.phiL) {
		return false
	}
	for i := range a.phiL {
		if a.phiL[i] != b.phiL[i] {
			return false
		}
	}
	return true
}

// TestConcurrentSessionsBitwiseEqualSequential is the headline property of
// the pool: N goroutines hammering route and what-if queries on one shared
// handle produce, query for query, results bitwise equal to a sequential
// hand-wired evaluator and sweeper. Run under -race this also proves the
// lease protocol isolates session state.
func TestConcurrentSessionsBitwiseEqualSequential(t *testing.T) {
	h := loadTestHandle(t, PoolConfig{Size: 4})
	inst := h.Instance()
	nArcs := inst.G.NumEdges()

	states, err := resilience.Enumerate(inst.G, resilience.Model{Kind: "link"})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(states) > 8 {
		states = states[:8]
	}

	const queries = 24
	// Sequential baseline: one hand-wired evaluator + sweeper, all queries
	// in order.
	ref, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatalf("eval.New: %v", err)
	}
	ref.SetRouteWorkers(1)
	refSweep := resilience.NewSweeperFrom(ref, resilience.Options{RouteWorkers: 1})

	wantRoute := make([]routeKey, queries)
	wantSweep := make([]sweepKey, queries)
	for q := 0; q < queries; q++ {
		w := perturb(nArcs, q)
		r, err := ref.EvaluateSTR(w)
		if err != nil {
			t.Fatalf("baseline route %d: %v", q, err)
		}
		wantRoute[q] = routeFingerprint(r)
		sw, err := refSweep.SweepSTR(w, states)
		if err != nil {
			t.Fatalf("baseline sweep %d: %v", q, err)
		}
		wantSweep[q] = sweepFingerprint(sw)
	}

	// Concurrent replay: each query leases its own session off the shared
	// handle; goroutines interleave freely.
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			s, err := h.Session(context.Background())
			if err != nil {
				errs <- err
				return
			}
			defer func() {
				if err := h.Release(s); err != nil {
					errs <- err
				}
			}()
			w := perturb(nArcs, q)
			r, err := s.EvaluateSTR(w)
			if err != nil {
				errs <- err
				return
			}
			if routeFingerprint(r) != wantRoute[q] {
				t.Errorf("query %d: concurrent route differs from sequential", q)
			}
			sw, err := s.SweepSTR(w, states)
			if err != nil {
				errs <- err
				return
			}
			if !sameSweep(sweepFingerprint(sw), wantSweep[q]) {
				t.Errorf("query %d: concurrent sweep differs from sequential", q)
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query: %v", err)
	}
}

func TestPoolExhaustionAndLeaseTimeout(t *testing.T) {
	h := loadTestHandle(t, PoolConfig{Size: 1, LeaseTimeout: 30 * time.Millisecond})
	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("first Session: %v", err)
	}
	if _, err := h.Session(context.Background()); !errors.Is(err, ErrLeaseTimeout) {
		t.Fatalf("second Session err = %v, want ErrLeaseTimeout", err)
	}
	// Context cancellation preempts the timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Session(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Session err = %v, want context.Canceled", err)
	}
	if err := h.Release(s); err != nil {
		t.Fatalf("Release: %v", err)
	}
	// Released session is reusable.
	s2, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session after release: %v", err)
	}
	if s2 != s {
		t.Fatalf("pool did not reuse the released session")
	}
	if err := h.Release(s2); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

// TestLeakedCheckpointDetectedOnRelease is the stale-state foot-gun test: a
// session released with an armed checkpoint must be flagged AND reset, so
// the next lease of the pooled session starts clean and still routes
// bitwise-correctly.
func TestLeakedCheckpointDetectedOnRelease(t *testing.T) {
	h := loadTestHandle(t, PoolConfig{Size: 1})
	inst := h.Instance()
	w := perturb(inst.G.NumEdges(), 1)

	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if err := s.Checkpoint(w); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Single-level: a second checkpoint must refuse.
	if err := s.Checkpoint(w); !errors.Is(err, ErrCheckpointArmed) {
		t.Fatalf("second Checkpoint err = %v, want ErrCheckpointArmed", err)
	}
	// Leak it: release without Revert.
	if err := h.Release(s); !errors.Is(err, ErrLeakedCheckpoint) {
		t.Fatalf("Release err = %v, want ErrLeakedCheckpoint", err)
	}

	// The pooled session must come back disarmed and fully usable.
	s2, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session after leak: %v", err)
	}
	if s2.checkpointArmed() {
		t.Fatal("re-leased session still has an armed checkpoint")
	}
	ref, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatalf("eval.New: %v", err)
	}
	ref.SetRouteWorkers(1)
	want, err := ref.EvaluateSTR(w)
	if err != nil {
		t.Fatalf("ref EvaluateSTR: %v", err)
	}
	got, err := s2.EvaluateSTR(w)
	if err != nil {
		t.Fatalf("EvaluateSTR after reset: %v", err)
	}
	if routeFingerprint(got) != routeFingerprint(want) {
		t.Fatalf("post-leak session result differs from hand-wired evaluator")
	}
	if err := h.Release(s2); err != nil {
		t.Fatalf("clean Release err = %v", err)
	}
}

func TestCheckpointRevertRoundTrip(t *testing.T) {
	h := loadTestHandle(t, DefaultPool())
	inst := h.Instance()
	w := perturb(inst.G.NumEdges(), 2)

	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer h.Release(s) //nolint:errcheck

	if err := s.Checkpoint(w); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Mutate: fail the first arc, reroute incrementally.
	dr := s.Router()
	wf := append(spf.Weights(nil), w...)
	wf[0] = spf.Disabled
	if _, err := dr.Apply(wf, []graph.EdgeID{0}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.Revert()
	if s.checkpointArmed() {
		t.Fatal("Revert left the checkpoint armed")
	}
	if err := h.Release(s); err != nil {
		t.Fatalf("Release after Revert: %v", err)
	}
}

func TestSessionReset(t *testing.T) {
	h := loadTestHandle(t, DefaultPool())
	inst := h.Instance()
	w := perturb(inst.G.NumEdges(), 4)

	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer h.Release(s) //nolint:errcheck

	if err := s.Checkpoint(w); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.Reset()
	if s.checkpointArmed() {
		t.Fatal("Reset left the checkpoint armed")
	}
	if s.Router().Valid() {
		t.Fatal("Reset left the router valid")
	}
	if _, err := s.EvaluateSTR(w); err != nil {
		t.Fatalf("EvaluateSTR after Reset: %v", err)
	}
}

func TestHandleClose(t *testing.T) {
	h, err := Load(Spec{Name: "close-test", Instance: testSpec()})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	h.Close()
	if !h.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if _, err := h.Session(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session after Close err = %v, want ErrClosed", err)
	}
	// In-flight sessions still release cleanly (dropped, not pooled).
	if err := h.Release(s); err != nil {
		t.Fatalf("Release after Close: %v", err)
	}
	h.Close() // double Close is a no-op
}

func TestReleaseForeignSession(t *testing.T) {
	h1 := loadTestHandle(t, DefaultPool())
	h2 := loadTestHandle(t, DefaultPool())
	s, err := h1.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if err := h2.Release(s); !errors.Is(err, ErrForeignSession) {
		t.Fatalf("foreign Release err = %v, want ErrForeignSession", err)
	}
	if err := h1.Release(s); err != nil {
		t.Fatalf("home Release: %v", err)
	}
}

func TestCompareUnderFailuresMatchesDirect(t *testing.T) {
	h := loadTestHandle(t, DefaultPool())
	inst := h.Instance()
	nArcs := inst.G.NumEdges()
	wSTR := perturb(nArcs, 1)
	wH := perturb(nArcs, 2)
	wL := perturb(nArcs, 3)

	states, err := resilience.Enumerate(inst.G, resilience.Model{Kind: "link"})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(states) > 6 {
		states = states[:6]
	}

	ref, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		t.Fatalf("eval.New: %v", err)
	}
	ref.SetRouteWorkers(1)
	refSweep := resilience.NewSweeperFrom(ref, resilience.Options{RouteWorkers: 1})
	want, err := resilience.CompareSchemes(refSweep, wSTR, wH, wL, states)
	if err != nil {
		t.Fatalf("direct CompareSchemes: %v", err)
	}

	s, err := h.Session(context.Background())
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer h.Release(s) //nolint:errcheck
	got, err := s.CompareUnderFailures(wSTR, wH, wL, states)
	if err != nil {
		t.Fatalf("session CompareUnderFailures: %v", err)
	}
	if !sameFloat(got.BaseSTR, want.BaseSTR) || !sameFloat(got.BaseDTR, want.BaseDTR) ||
		got.Disconnecting != want.Disconnecting || len(got.STR) != len(want.STR) {
		t.Fatalf("session compare header differs: got %+v want %+v", got, want)
	}
	for i := range got.STR {
		if !sameFloat(got.STR[i], want.STR[i]) || !sameFloat(got.DTR[i], want.DTR[i]) {
			t.Fatalf("sample %d differs: got (%g,%g) want (%g,%g)",
				i, got.STR[i], got.DTR[i], want.STR[i], want.DTR[i])
		}
	}
}
