// Package engine isolates dual-topology routing state behind an explicit
// session/handle API — the serving core the dtrd daemon and the batch CLIs
// share.
//
// Before this package, every caller hand-wired the same stack per use: build
// a problem instance (graph + traffic matrices), construct an
// eval.Evaluator, allocate spf.DeltaRouters for incremental what-ifs, wrap a
// resilience.Sweeper for failure sweeps. That wiring conflates two very
// different lifetimes:
//
//   - instance data — the CSR graph snapshot, traffic matrices, SLA
//     configuration, high-priority pair index — is immutable after
//     construction and safely shared by any number of readers;
//   - routing state — SPF trees, per-arc loads, delta-router checkpoints —
//     is mutable, expensive to build, and must stay private to one user at
//     a time.
//
// The engine makes the split explicit. Load (or New) builds the immutable
// side once and returns a Handle. Handle.Session leases a Session — a
// pooled evaluator clone plus lazily-created delta routers and a failure
// sweeper — whose mutations are invisible to every other session. Releasing
// the session returns its warm routing state to the pool for the next
// lease, so a long-lived server answers "route this", "what if link X
// fails" queries in milliseconds without per-request construction, while
// thousands of concurrent clients share one copy of the instance data.
//
// Determinism carries through: pooled sessions route sequentially
// (RouteWorkers = 1), so the same query on any session of a handle — or on
// a hand-wired evaluator for the same instance — produces bitwise-identical
// results regardless of concurrency or lease order.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/obs"
	"dualtopo/internal/scenario"
	"dualtopo/internal/traffic"
)

// PoolConfig sizes a handle's session pool.
type PoolConfig struct {
	// Size bounds the number of concurrently leased sessions (and therefore
	// the handle's total routing-state memory: each session owns evaluator
	// plans and, once used, delta routers). 0 means GOMAXPROCS.
	Size int
	// LeaseTimeout bounds how long Session waits for a pooled session when
	// all Size are leased, before failing with ErrLeaseTimeout. The serving
	// layer maps that to 503. 0 means 5s; negative means fail immediately.
	LeaseTimeout time.Duration
}

// DefaultPool returns the default pool configuration.
func DefaultPool() PoolConfig { return PoolConfig{} }

func (p PoolConfig) size() int {
	if p.Size > 0 {
		return p.Size
	}
	return runtime.GOMAXPROCS(0)
}

func (p PoolConfig) leaseTimeout() time.Duration {
	if p.LeaseTimeout != 0 {
		return p.LeaseTimeout
	}
	return 5 * time.Second
}

// Spec describes an instance to load through the topology/traffic generator
// registries — the declarative entry point the daemon's POST /v1/topologies
// uses. Name is advisory (handles are identified by whatever key the caller
// registers them under); Instance is the same spec the scenario engine and
// the batch CLIs build from, so a daemon-loaded topology is bitwise the
// instance the equivalent dtropt/dtrfail invocation would construct.
type Spec struct {
	Name     string
	Instance scenario.InstanceSpec
	Pool     PoolConfig
}

// Errors returned by the session lifecycle.
var (
	// ErrLeaseTimeout reports that every pooled session stayed leased for
	// the whole lease timeout.
	ErrLeaseTimeout = errors.New("engine: session lease timed out (pool exhausted)")
	// ErrClosed reports a Session call on a closed handle.
	ErrClosed = errors.New("engine: handle is closed")
	// ErrLeakedCheckpoint reports that a session was released with an armed
	// checkpoint. Release recovers (the session is reset before pooling, so
	// the next lease starts clean), but the leak is a caller bug: the
	// checkpointed what-if was never rolled back.
	ErrLeakedCheckpoint = errors.New("engine: session released with an armed checkpoint (reset before reuse)")
	// ErrForeignSession reports a Release of a session that does not belong
	// to this handle.
	ErrForeignSession = errors.New("engine: released session belongs to a different handle")
)

// Handle is the immutable, shareable half of a loaded topology: the graph's
// CSR snapshot, both traffic matrices, the evaluator options, and a bounded
// pool of reusable Sessions. A Handle is safe for concurrent use by any
// number of goroutines.
type Handle struct {
	name string
	inst *scenario.Instance
	base *eval.Evaluator // template all sessions clone from; never routed on

	pool    chan *Session
	timeout time.Duration

	mu      sync.Mutex
	created int
	maxSize int
	closed  bool
}

// Load builds the instance described by spec through the generator
// registries and returns its handle. The build is exactly
// scenario.InstanceSpec.Build — same defaults, same seeded RNG streams — so
// engine-served results are comparable (bitwise) to batch runs of the same
// spec.
func Load(spec Spec) (*Handle, error) {
	inst, err := spec.Instance.Build()
	if err != nil {
		return nil, err
	}
	return New(spec.Name, inst, spec.Pool)
}

// New wraps a pre-built instance (an imported graph, a programmatically
// constructed problem) in a handle. The instance — graph, matrices, options
// — must not be mutated afterwards: every session reads it.
func New(name string, inst *scenario.Instance, pool PoolConfig) (*Handle, error) {
	base, err := eval.New(inst.G, inst.TH, inst.TL, inst.Opts)
	if err != nil {
		return nil, err
	}
	inst.G.CSR() // force the shared snapshot once, outside any session
	h := &Handle{
		name:    name,
		inst:    inst,
		base:    base,
		pool:    make(chan *Session, pool.size()),
		timeout: pool.leaseTimeout(),
		maxSize: pool.size(),
	}
	met.handles.Add(1)
	return h, nil
}

// Name returns the handle's advisory name.
func (h *Handle) Name() string { return h.name }

// Graph returns the shared immutable graph.
func (h *Handle) Graph() *graph.Graph { return h.inst.G }

// Matrices returns the shared high- and low-priority traffic matrices.
func (h *Handle) Matrices() (th, tl *traffic.Matrix) { return h.inst.TH, h.inst.TL }

// Options returns the evaluator options sessions score with.
func (h *Handle) Options() eval.Options { return h.inst.Opts }

// Instance returns the underlying problem instance. Callers must not mutate
// it.
func (h *Handle) Instance() *scenario.Instance { return h.inst }

// PoolSize returns the maximum number of concurrently leased sessions.
func (h *Handle) PoolSize() int { return h.maxSize }

// Session leases a session: a pooled one if available, a fresh one while
// the pool is below its size bound, otherwise it waits for a release until
// ctx is done or the lease timeout elapses (ErrLeaseTimeout). The caller
// must Release the session when done with it — typically per request.
func (h *Handle) Session(ctx context.Context) (*Session, error) {
	// Fast path: a warm session is waiting.
	select {
	case s := <-h.pool:
		return h.leased(s)
	default:
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	if h.created < h.maxSize {
		h.created++
		h.mu.Unlock()
		s := newSession(h)
		met.sessionsCreated.Inc()
		return h.leased(s)
	}
	h.mu.Unlock()
	if h.timeout < 0 {
		met.leaseTimeouts.Inc()
		return nil, ErrLeaseTimeout
	}
	start := time.Now()
	timer := time.NewTimer(h.timeout)
	defer timer.Stop()
	select {
	case s := <-h.pool:
		met.sessionWait.Observe(time.Since(start).Seconds())
		return h.leased(s)
	case <-timer.C:
		met.leaseTimeouts.Inc()
		return nil, ErrLeaseTimeout
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// leased finalizes a successful acquisition.
func (h *Handle) leased(s *Session) (*Session, error) {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		// Raced with Close: drop the session rather than serving a deleted
		// topology.
		return nil, ErrClosed
	}
	met.sessionsActive.Add(1)
	return s, nil
}

// Release returns a session to the pool for the next lease. It asserts the
// session's checkpoint stack is empty: a leaked Checkpoint (armed, never
// Reverted) would silently poison the next user — their first what-if could
// roll routing back to state they never established. On a leak, the session
// is Reset (all incremental state discarded, so the pool stays clean) and
// ErrLeakedCheckpoint is returned for the caller's logs.
func (h *Handle) Release(s *Session) error {
	if s == nil {
		return nil
	}
	if s.h != h {
		return ErrForeignSession
	}
	var err error
	if s.checkpointArmed() {
		s.Reset()
		met.leakedCheckpoints.Inc()
		err = ErrLeakedCheckpoint
	}
	met.sessionsActive.Add(-1)
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return err // deleted topology: let the session be collected
	}
	select {
	case h.pool <- s:
	default:
		// More releases than leases (caller bug); drop the surplus session.
	}
	return err
}

// Close marks the handle deleted: subsequent Session calls fail with
// ErrClosed and released sessions are dropped instead of pooled. Sessions
// already leased remain usable until released, so in-flight requests finish
// normally after a DELETE.
func (h *Handle) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	met.handles.Add(-1)
	// Drain pooled sessions so their routing state is collectable now.
	for {
		select {
		case <-h.pool:
		default:
			return
		}
	}
}

// Closed reports whether the handle has been closed.
func (h *Handle) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// String implements fmt.Stringer for logs.
func (h *Handle) String() string {
	return fmt.Sprintf("engine.Handle(%s: %d nodes, %d arcs, pool %d)",
		h.name, h.inst.G.NumNodes(), h.inst.G.NumEdges(), h.maxSize)
}

// met bundles the engine's pre-resolved metric handles.
var met = struct {
	handles           *obs.Gauge
	sessionsCreated   *obs.Counter
	sessionsActive    *obs.Gauge
	leaseTimeouts     *obs.Counter
	leakedCheckpoints *obs.Counter
	sessionWait       *obs.Histogram
	routes            *obs.Counter
	whatifs           *obs.Counter
	resets            *obs.Counter
}{
	handles:           obs.Default().Gauge("engine_handles", "Topology handles currently loaded."),
	sessionsCreated:   obs.Default().Counter("engine_sessions_created_total", "Sessions constructed (pool growth, not leases)."),
	sessionsActive:    obs.Default().Gauge("engine_sessions_active", "Sessions currently leased."),
	leaseTimeouts:     obs.Default().Counter("engine_lease_timeouts_total", "Session leases that timed out with the pool exhausted."),
	leakedCheckpoints: obs.Default().Counter("engine_leaked_checkpoints_total", "Sessions released with an armed checkpoint (reset before reuse)."),
	sessionWait:       obs.Default().Histogram("engine_session_wait_seconds", "Time spent waiting for a pooled session.", obs.DefBuckets),
	routes:            obs.Default().Counter("engine_session_routes_total", "Route evaluations served by sessions."),
	whatifs:           obs.Default().Counter("engine_session_whatifs_total", "Failure-sweep what-ifs served by sessions."),
	resets:            obs.Default().Counter("engine_session_resets_total", "Session Resets (incremental state discarded)."),
}
