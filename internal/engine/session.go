package engine

import (
	"errors"

	"dualtopo/internal/eval"
	"dualtopo/internal/resilience"
	"dualtopo/internal/spf"
)

// ErrCheckpointArmed reports a Checkpoint call while one is already armed.
// Session checkpoints are deliberately single-level: re-basing silently (as
// the underlying router allows) would let an outer what-if swallow an inner
// one's rollback point, which is exactly the class of bug the release-time
// leak assertion exists to catch.
var ErrCheckpointArmed = errors.New("engine: checkpoint already armed (Revert first)")

// Session is the mutable half of a topology lease: a private evaluator
// clone, a lazily-built incremental router with checkpoint/revert, and a
// lazily-built failure sweeper. Sessions are NOT safe for concurrent use —
// concurrency comes from leasing several sessions off one Handle. All
// routing inside a session is sequential (RouteWorkers = 1), so results are
// bitwise-independent of which pooled session serves a request.
type Session struct {
	h  *Handle
	ev *eval.Evaluator
	dr *spf.DeltaRouter    // lazy; carries both traffic matrices
	sw *resilience.Sweeper // lazy; owns its own per-scheme routers
}

func newSession(h *Handle) *Session {
	ev := h.base.Clone()
	ev.SetRouteWorkers(1)
	return &Session{h: h, ev: ev}
}

// Evaluator exposes the session's private evaluator for callers that need
// the full scoring surface (objective fast paths, attribution). The
// evaluator stays owned by the session: do not retain it past Release.
func (s *Session) Evaluator() *eval.Evaluator { return s.ev }

// SetRouteWorkers overrides the session's SPF worker bound (0 = automatic,
// 1 = sequential). Sessions default to sequential so pooled concurrency
// composes; a batch CLI holding a handle's only session can restore the
// parallel default. Results are bitwise-identical either way.
func (s *Session) SetRouteWorkers(n int) { s.ev.SetRouteWorkers(n) }

// EvaluateSTR scores single-topology routing under w.
func (s *Session) EvaluateSTR(w spf.Weights) (*eval.Result, error) {
	met.routes.Inc()
	return s.ev.EvaluateSTR(w)
}

// EvaluateDTR scores dual-topology routing under (wH, wL).
func (s *Session) EvaluateDTR(wH, wL spf.Weights) (*eval.Result, error) {
	met.routes.Inc()
	return s.ev.EvaluateDTR(wH, wL)
}

// ScoreSTR is the allocation-free warm path: ObjectiveSTR by value. It is
// what a serving benchmark should measure.
func (s *Session) ScoreSTR(w spf.Weights) (eval.STRObjective, error) {
	met.routes.Inc()
	return s.ev.ObjectiveSTR(w)
}

// Router returns the session's incremental router (created on first use,
// carrying both traffic matrices), for callers that drive Apply/Checkpoint
// directly. Like the evaluator, it must not outlive the lease.
func (s *Session) Router() *spf.DeltaRouter {
	if s.dr == nil {
		s.dr = spf.NewDeltaRouter(s.h.inst.G, s.h.inst.TH, s.h.inst.TL)
	}
	return s.dr
}

// Checkpoint routes the session's router at w — incrementally when its
// current state allows — and arms a rollback point, so a sequence of
// what-if Applies can be undone with one Revert. Checkpoints are
// single-level: a second Checkpoint without an intervening Revert fails
// with ErrCheckpointArmed.
func (s *Session) Checkpoint(w spf.Weights) error {
	if s.checkpointArmed() {
		return ErrCheckpointArmed
	}
	dr := s.Router()
	if dr.Valid() {
		changed := spf.DiffArcs(dr.Weights(), w, nil)
		if _, err := dr.Apply(w, changed); err != nil {
			return err
		}
	} else if err := dr.Route(w); err != nil {
		return err
	}
	return dr.Checkpoint()
}

// Revert rolls the router back to the armed checkpoint and disarms it; it
// is a no-op when nothing is armed.
func (s *Session) Revert() {
	if s.dr != nil {
		s.dr.Revert()
	}
}

// checkpointArmed reports whether the session would fail the release-time
// leak assertion.
func (s *Session) checkpointArmed() bool {
	return s.dr != nil && s.dr.CheckpointArmed()
}

// Reset discards every piece of incremental state — evaluator delta
// caches, the router's trees and any armed checkpoint, the sweeper — so
// the next operation recomputes from scratch. Use it when a request failed
// midway and the session's state can no longer be trusted; Release invokes
// it automatically on a leaked checkpoint.
func (s *Session) Reset() {
	met.resets.Inc()
	s.ev.ResetDelta()
	if s.dr != nil {
		s.dr.Reset()
	}
	s.sw = nil
}

// sweeper lazily builds the failure sweeper around the session's own
// evaluator (no clone: the session is single-user by contract).
func (s *Session) sweeper() *resilience.Sweeper {
	if s.sw == nil {
		s.sw = resilience.NewSweeperFrom(s.ev, resilience.Options{RouteWorkers: 1})
	}
	return s.sw
}

// SweepSTR evaluates single-topology routing under w across the failure
// states via the incremental disable → delta → repair path.
func (s *Session) SweepSTR(w spf.Weights, states []resilience.State) (*resilience.Sweep, error) {
	met.whatifs.Add(int64(len(states)))
	sw, err := s.sweeper().SweepSTR(w, states)
	if err != nil {
		s.sw = nil // sweep state is suspect after a failure; rebuild next time
	}
	return sw, err
}

// SweepDTR evaluates dual-topology routing under (wH, wL) across the
// failure states.
func (s *Session) SweepDTR(wH, wL spf.Weights, states []resilience.State) (*resilience.Sweep, error) {
	met.whatifs.Add(int64(len(states)))
	sw, err := s.sweeper().SweepDTR(wH, wL, states)
	if err != nil {
		s.sw = nil
	}
	return sw, err
}

// CompareUnderFailures sweeps the STR and DTR schemes over the same states
// and pairs the surviving outcomes — the session-scoped equivalent of
// resilience.CompareSchemes on a hand-wired sweeper.
func (s *Session) CompareUnderFailures(wSTR, wH, wL spf.Weights, states []resilience.State) (*resilience.Samples, error) {
	met.whatifs.Add(2 * int64(len(states)))
	out, err := resilience.CompareSchemes(s.sweeper(), wSTR, wH, wL, states)
	if err != nil {
		s.sw = nil
	}
	return out, err
}
