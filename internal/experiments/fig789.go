package experiments

import (
	"fmt"
	"sort"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/render"
)

func init() {
	register(Runner{
		ID:    "fig7",
		Title: "Fig 7: link load vs propagation delay under the SLA-based cost",
		Run:   runFig7,
	})
	register(Runner{
		ID:    "fig8a",
		Title: "Fig 8(a): sink model, Uniform vs Local clients (power-law, load-based)",
		Run:   func(p Preset) (*Report, error) { return runFig8(p, "fig8a", eval.LoadBased, 0.40, 0.80, 801) },
	})
	register(Runner{
		ID:    "fig8b",
		Title: "Fig 8(b): sink model, Uniform vs Local clients (power-law, SLA-based)",
		Run:   func(p Preset) (*Report, error) { return runFig8(p, "fig8b", eval.SLABased, 0.50, 0.80, 802) },
	})
	register(Runner{
		ID:    "fig9",
		Title: "Fig 9: impact of the SLA delay bound on STR and DTR",
		Run:   runFig9,
	})
}

// runFig7 reports per-link total utilization against propagation delay for
// the STR and DTR solutions of one SLA-based instance (k=30%, where the
// low-delay-link concentration is strongest).
func runFig7(p Preset) (*Report, error) {
	spec := InstanceSpec{Topology: TopoRandom, Kind: eval.SLABased, F: 0.30, K: 0.30, TargetUtil: 0.7, Seed: 701}
	pt, err := runPoint(spec, p)
	if err != nil {
		return nil, err
	}
	inst := pt.Inst
	strUtil := pt.STR.Result.Utilization(inst.G)
	dtrUtil := pt.DTR.Result.Utilization(inst.G)
	type linkPoint struct{ delay, str, dtr float64 }
	pts := make([]linkPoint, inst.G.NumEdges())
	for i := range pts {
		e := inst.G.Edge(graph.EdgeID(i))
		pts[i] = linkPoint{e.Delay, strUtil[i], dtrUtil[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].delay < pts[j].delay })
	xs := make([]float64, len(pts))
	strY := make([]float64, len(pts))
	dtrY := make([]float64, len(pts))
	for i, lp := range pts {
		xs[i] = lp.delay
		strY[i] = lp.str
		dtrY[i] = lp.dtr
	}
	return &Report{
		ID:     "fig7",
		Title:  "Fig 7: link utilization vs propagation delay (SLA-based, k=30%)",
		XLabel: "prop-delay-ms",
		Series: []render.Series{
			{Name: "STR util", X: xs, Y: strY},
			{Name: "DTR util", X: xs, Y: dtrY},
		},
		Notes: []string{"paper: under STR, links with low propagation delay attract disproportionate load"},
	}, nil
}

// runFig8 sweeps network load for the sink model with uniformly placed vs
// sink-local clients on the power-law topology (f=20%, k=10%, 3 sinks).
func runFig8(p Preset, id string, kind eval.Kind, loLoad, hiLoad float64, seed uint64) (*Report, error) {
	var series []render.Series
	for i, model := range []string{HPSinkLocal, HPSinkUniform} {
		base := InstanceSpec{Topology: TopoPowerLaw, Kind: kind, F: 0.20, K: 0.10, HPModel: model}
		specs := loadSweepSpecs(base, linspace(loLoad, hiLoad, p.Points), seed+10*uint64(i))
		points, err := runSweep(specs, p)
		if err != nil {
			return nil, err
		}
		xs, ys := targetRatioSeries(points, func(pt *Point) float64 { return pt.RL })
		name := "Local"
		if model == HPSinkUniform {
			name = "Uniform"
		}
		series = append(series, render.Series{Name: name, X: xs, Y: ys})
	}
	return &Report{
		ID:     id,
		Title:  fmt.Sprintf("Fig 8: sink-model RL, Uniform vs Local clients (%v)", kind),
		XLabel: "avg-util",
		Series: series,
		Notes:  []string{"paper: RL ≈ 1 when clients sit next to the sinks; DTR helps most with dispersed clients"},
	}, nil
}

// runFig9 varies the SLA delay bound θ from 25 to 35 ms at f=30%, k=30%,
// average utilization ≈ 0.5, and reports violations, low-priority cost and
// maximum utilization for both schemes.
func runFig9(p Preset) (*Report, error) {
	thetas := []float64{25, 30, 35}
	var rows [][]string
	var vioSTR, vioDTR, costSTR, costDTR, maxSTR, maxDTR []float64
	for i, theta := range thetas {
		spec := InstanceSpec{
			Topology: TopoRandom, Kind: eval.SLABased,
			F: 0.30, K: 0.30, ThetaMs: theta, TargetUtil: 0.5,
			Seed: 901 + uint64(i)*0, // same instance across θ, as in the paper
		}
		pt, err := runPoint(spec, p)
		if err != nil {
			return nil, err
		}
		sMax := pt.STR.Result.MaxUtilization(pt.Inst.G)
		dMax := pt.DTR.Result.MaxUtilization(pt.Inst.G)
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", theta),
			fmt.Sprintf("%d", pt.STR.Result.Violations),
			fmt.Sprintf("%d", pt.DTR.Result.Violations),
			fmt.Sprintf("%.4g", pt.STR.Result.PhiL),
			fmt.Sprintf("%.4g", pt.DTR.Result.PhiL),
			fmt.Sprintf("%.3f", sMax),
			fmt.Sprintf("%.3f", dMax),
		})
		vioSTR = append(vioSTR, float64(pt.STR.Result.Violations))
		vioDTR = append(vioDTR, float64(pt.DTR.Result.Violations))
		costSTR = append(costSTR, pt.STR.Result.PhiL)
		costDTR = append(costDTR, pt.DTR.Result.PhiL)
		maxSTR = append(maxSTR, sMax)
		maxDTR = append(maxDTR, dMax)
	}
	return &Report{
		ID:     "fig9",
		Title:  "Fig 9: SLA bound 25-35ms, f=30%, k=30%, avg util ~0.5",
		XLabel: "theta-ms",
		Series: []render.Series{
			{Name: "STR violations", X: thetas, Y: vioSTR},
			{Name: "DTR violations", X: thetas, Y: vioDTR},
			{Name: "STR L-cost", X: thetas, Y: costSTR},
			{Name: "DTR L-cost", X: thetas, Y: costDTR},
			{Name: "STR max-util", X: thetas, Y: maxSTR},
			{Name: "DTR max-util", X: thetas, Y: maxDTR},
		},
		Tables: []TableBlock{{
			Title:  "summary",
			Header: []string{"theta", "STR-viol", "DTR-viol", "STR-Lcost", "DTR-Lcost", "STR-maxU", "DTR-maxU"},
			Rows:   rows,
		}},
		Notes: []string{"paper: loosening θ to ~30ms lets STR approach DTR's low-priority performance"},
	}, nil
}
