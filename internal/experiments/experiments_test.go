package experiments

import (
	"math"
	"strings"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/scenario"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must be registered.
	want := []string{
		"fig1", "fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f",
		"fig3a", "fig3b", "fig3c", "fig4", "fig5a", "fig5b", "fig6",
		"fig7", "fig8a", "fig8b", "fig9", "table1", "extfail",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper", "TINY"} {
		if _, err := PresetByName(name); err != nil {
			t.Errorf("PresetByName(%q): %v", name, err)
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", Tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestLookup(t *testing.T) {
	r, ok := Lookup("fig2a")
	if !ok || r.ID != "fig2a" || r.Title == "" {
		t.Fatalf("Lookup(fig2a) = %+v, %v", r, ok)
	}
	if _, ok := Lookup("zzz"); ok {
		t.Fatal("Lookup(zzz) found")
	}
}

func TestLinspace(t *testing.T) {
	xs := linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("linspace = %v", xs)
		}
	}
	if xs := linspace(2, 4, 1); len(xs) != 1 || xs[0] != 3 {
		t.Fatalf("linspace n=1 = %v", xs)
	}
}

func TestInstanceBuildScalesToTarget(t *testing.T) {
	spec := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased, TargetUtil: 0.6, Seed: 5}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Evaluator()
	if err != nil {
		t.Fatal(err)
	}
	// Under unit weights the average utilization must hit the target.
	r, err := e.EvaluateSTR(uniformWeights(inst.G.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.AvgUtilization(inst.G); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("avg util = %v, want 0.6", got)
	}
	// The high-priority fraction survives scaling.
	etaH, etaL := inst.TH.Total(), inst.TL.Total()
	if got := etaH / (etaH + etaL); math.Abs(got-0.30) > 1e-9 {
		t.Fatalf("f = %v, want 0.30", got)
	}
}

func TestInstanceBuildErrors(t *testing.T) {
	if _, err := (InstanceSpec{Topology: "mesh"}).Build(); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := (InstanceSpec{HPModel: "flood"}).Build(); err == nil {
		t.Error("unknown HP model accepted")
	}
	if _, err := (InstanceSpec{TargetUtil: -1}).Build(); err == nil {
		t.Error("negative target util accepted")
	}
}

func TestInstanceBuildDeterministic(t *testing.T) {
	spec := InstanceSpec{Seed: 9, TargetUtil: 0.5}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.TH.Total() != b.TH.Total() || a.TL.Total() != b.TL.Total() {
		t.Fatal("same seed, different matrices")
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
}

// TestFig2aMatchesScenarioEngine drives the fig2a sweep both through the
// experiment registry and directly through the scenario engine's point
// runner, asserting identical reported metrics: the experiment layer is a
// curated scenario, not a parallel implementation.
func TestFig2aMatchesScenarioEngine(t *testing.T) {
	p := Tiny()
	rep, err := Run("fig2a", p)
	if err != nil {
		t.Fatal(err)
	}
	base := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased}
	specs := loadSweepSpecs(base, linspace(0.50, 0.90, p.Points), 201)
	points, err := scenario.RunPoints(specs, scenario.Budget{DTR: p.DTR, STR: p.STR}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rep.Series[0].Y) {
		t.Fatalf("points = %d, series = %d", len(points), len(rep.Series[0].Y))
	}
	for i, pt := range points {
		if rep.Series[0].Y[i] != pt.RH || rep.Series[1].Y[i] != pt.RL {
			t.Errorf("point %d: experiment (RH=%v, RL=%v) != engine (RH=%v, RL=%v)",
				i, rep.Series[0].Y[i], rep.Series[1].Y[i], pt.RH, pt.RL)
		}
		if rep.Series[0].X[i] != pt.MeasuredUtil {
			t.Errorf("point %d: measured util %v != %v", i, rep.Series[0].X[i], pt.MeasuredUtil)
		}
	}
}

// TestTriangleExperimentExact runs fig1 and checks the paper's exact values
// appear in the report.
func TestTriangleExperimentExact(t *testing.T) {
	rep, err := Run("fig1", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	// Joint-cost choices: α=35 keeps the direct route, α=30 flips.
	if !strings.Contains(out, "direct (A-C)") || !strings.Contains(out, "even split") {
		t.Fatalf("joint-cost choices missing:\n%s", out)
	}
	// DTR search must land on ⟨1/3, 11/9⟩ = ⟨0.3333, 1.222⟩.
	if !strings.Contains(out, "1.222") {
		t.Fatalf("DTR optimum missing:\n%s", out)
	}
}

// TestFig2aTinyShape runs the fig2a sweep at Tiny preset and checks the
// paper's qualitative claims: RH ≈ 1, RL ≥ RH.
func TestFig2aTinyShape(t *testing.T) {
	rep, err := Run("fig2a", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(rep.Series))
	}
	rh := rep.Series[0]
	rl := rep.Series[1]
	for i := range rh.Y {
		if rh.Y[i] < 0.5 || rh.Y[i] > 2.0 {
			t.Errorf("RH[%d] = %v, want ~1", i, rh.Y[i])
		}
		if rl.Y[i] < 0.8*rh.Y[i] {
			t.Errorf("RL[%d]=%v much below RH=%v; DTR should help L most", i, rl.Y[i], rh.Y[i])
		}
	}
}

// TestFig9Tiny checks fig9 produces all three θ rows.
func TestFig9Tiny(t *testing.T) {
	rep, err := Run("fig9", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("fig9 table = %+v", rep.Tables)
	}
	if len(rep.Series) != 6 {
		t.Fatalf("fig9 series = %d, want 6", len(rep.Series))
	}
}

// TestTable1Tiny checks the relaxation table renders all topologies and the
// relaxed rows hold RL,30% ≤ RL,5% ≤ RL (within formatting).
func TestTable1Tiny(t *testing.T) {
	rep, err := Run("table1", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(rep.Tables))
	}
	for _, tb := range rep.Tables {
		if len(tb.Rows) != 4 {
			t.Fatalf("table %q rows = %d, want 4 (RL, RL5, RL30, AD)", tb.Title, len(tb.Rows))
		}
		if tb.Rows[0][0] != "RL" || tb.Rows[3][0] != "AD" {
			t.Fatalf("row labels wrong: %v", tb.Rows)
		}
	}
}

// TestFig3Tiny checks histogram generation: counts conserve the arc count
// for both schemes.
func TestFig3Tiny(t *testing.T) {
	rep, err := Run("fig3a", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		total := 0.0
		for _, y := range s.Y {
			total += y
		}
		if total != 150 {
			t.Fatalf("%s histogram total = %g, want 150 arcs", s.Name, total)
		}
	}
}

// TestExtFailTiny checks the failure-robustness extension: degradation
// factors at least 1 on average and full failure coverage.
func TestExtFailTiny(t *testing.T) {
	rep, err := Run("extfail", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("extfail table shape: %+v", rep.Tables)
	}
	for _, row := range rep.Tables[0].Rows {
		if row[0] != "STR" && row[0] != "DTR" {
			t.Fatalf("unexpected scheme %q", row[0])
		}
	}
}

// TestFig6Tiny checks the sorted H-utilization series is non-increasing.
func TestFig6Tiny(t *testing.T) {
	rep, err := Run("fig6", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Fatalf("%s not sorted descending at %d: %v > %v", s.Name, i, s.Y[i], s.Y[i-1])
			}
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "t", XLabel: "load",
		Tables: []TableBlock{{Title: "tb", Header: []string{"a"}, Rows: [][]string{{"1"}}}},
		Notes:  []string{"hello"}}
	out := r.String()
	for _, want := range []string{"== x: t ==", "tb", "hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func uniformWeights(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
