package experiments

import (
	"fmt"
	"math"
	"sync"

	"dualtopo/internal/eval"
	"dualtopo/internal/search"
)

// Point is the outcome of optimizing one instance with both schemes.
type Point struct {
	Spec InstanceSpec
	// MeasuredUtil is the average link utilization of the final STR
	// solution, the paper's network-load reference (footnote 4).
	MeasuredUtil float64
	STR          *search.STRResult
	DTR          *search.DTRResult
	// RH and RL are the paper's cost ratios: class cost under STR divided
	// by class cost under DTR (Fig. 2).
	RH, RL float64
}

// runPoint builds the instance and runs both searches. DTR warm-starts from
// the STR solution: DTR evaluates {W, W} identically to STR's W, so the DTR
// search can only improve on the baseline lexicographically. This removes
// search-budget artifacts from the STR/DTR comparison (the paper's premise
// is that DTR strictly generalizes STR).
func runPoint(spec InstanceSpec, p Preset) (*Point, error) {
	inst, err := spec.Build()
	if err != nil {
		return nil, err
	}
	e, err := inst.Evaluator()
	if err != nil {
		return nil, err
	}
	strParams := p.STR
	strParams.Seed = spec.Seed*2 + 1
	strRes, err := search.STR(e, strParams)
	if err != nil {
		return nil, err
	}
	dtrParams := p.DTR
	dtrParams.Seed = spec.Seed*2 + 2
	dtrRes, err := search.DTRFrom(e, strRes.W, strRes.W, dtrParams)
	if err != nil {
		return nil, err
	}
	pt := &Point{
		Spec:         spec,
		MeasuredUtil: strRes.Result.AvgUtilization(inst.G),
		STR:          strRes,
		DTR:          dtrRes,
	}
	pt.RH = costRatio(primaryCost(spec.Kind, strRes.Result), primaryCost(spec.Kind, dtrRes.Result))
	pt.RL = costRatio(strRes.Result.PhiL, dtrRes.Result.PhiL)
	return pt, nil
}

// primaryCost extracts the class-H cost the paper ratios: ΦH for load-based
// runs, Λ for SLA-based runs.
func primaryCost(kind eval.Kind, r *eval.Result) float64 {
	if kind == eval.SLABased {
		return r.Lambda
	}
	return r.PhiH
}

// costRatio computes str/dtr, defining 0/0 as 1 (both schemes met the
// objective perfectly, e.g. zero SLA penalty on both sides).
func costRatio(str, dtr float64) float64 {
	const tiny = 1e-12
	if dtr <= tiny && str <= tiny {
		return 1
	}
	if dtr <= tiny {
		return math.Inf(1)
	}
	return str / dtr
}

// runSweep executes one point per spec, Preset.Parallel at a time,
// preserving spec order in the result.
func runSweep(specs []InstanceSpec, p Preset) ([]*Point, error) {
	points := make([]*Point, len(specs))
	errs := make([]error, len(specs))
	parallel := p.Parallel
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallel)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec InstanceSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i], errs[i] = runPoint(spec, p)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: point %d (%+v): %w", i, specs[i], err)
		}
	}
	return points, nil
}

// loadSweepSpecs builds one spec per target utilization.
func loadSweepSpecs(base InstanceSpec, targets []float64, seedBase uint64) []InstanceSpec {
	specs := make([]InstanceSpec, len(targets))
	for i, target := range targets {
		s := base
		s.TargetUtil = target
		// One topology/matrix family per sweep: same base seed, so only the
		// scaling changes across points (as in the paper, which scales one
		// matrix). The seed feeds search seeds via runPoint.
		s.Seed = seedBase
		specs[i] = s
	}
	return specs
}

// ratioSeries converts a sweep to the paper's (utilization, ratio) series,
// using the measured STR utilization as x.
func ratioSeries(points []*Point, pick func(*Point) float64) (xs, ys []float64) {
	xs = make([]float64, len(points))
	ys = make([]float64, len(points))
	for i, pt := range points {
		xs[i] = pt.MeasuredUtil
		ys[i] = pick(pt)
	}
	return xs, ys
}

// targetRatioSeries uses the target utilization as x so that several sweeps
// (different f, k or traffic patterns) share one x grid in a report table.
func targetRatioSeries(points []*Point, pick func(*Point) float64) (xs, ys []float64) {
	xs = make([]float64, len(points))
	ys = make([]float64, len(points))
	for i, pt := range points {
		xs[i] = pt.Spec.TargetUtil
		ys[i] = pick(pt)
	}
	return xs, ys
}
