package experiments

import "dualtopo/internal/scenario"

// The sweep machinery runs on the scenario engine: experiments contribute
// curated InstanceSpecs and figure-shaping, the engine contributes instance
// construction, dual optimization and the worker pool.

// Point is the outcome of optimizing one instance with both schemes.
type Point = scenario.Point

// budget extracts the preset's search budgets in engine form.
func (p Preset) budget() scenario.Budget {
	return scenario.Budget{DTR: p.DTR, STR: p.STR}
}

// runPoint builds the instance and runs both searches through the scenario
// engine (DTR warm-started from the STR solution).
func runPoint(spec InstanceSpec, p Preset) (*Point, error) {
	return scenario.RunPoint(spec, p.budget())
}

// runSweep executes one point per spec, Preset.Parallel at a time,
// preserving spec order in the result.
func runSweep(specs []InstanceSpec, p Preset) ([]*Point, error) {
	return scenario.RunPoints(specs, p.budget(), p.Parallel, nil)
}

// loadSweepSpecs builds one spec per target utilization.
func loadSweepSpecs(base InstanceSpec, targets []float64, seedBase uint64) []InstanceSpec {
	specs := make([]InstanceSpec, len(targets))
	for i, target := range targets {
		s := base
		s.TargetUtil = target
		// One topology/matrix family per sweep: same base seed, so only the
		// scaling changes across points (as in the paper, which scales one
		// matrix). The seed feeds search seeds via scenario.RunPoint.
		s.Seed = seedBase
		specs[i] = s
	}
	return specs
}

// ratioSeries converts a sweep to the paper's (utilization, ratio) series,
// using the measured STR utilization as x.
func ratioSeries(points []*Point, pick func(*Point) float64) (xs, ys []float64) {
	xs = make([]float64, len(points))
	ys = make([]float64, len(points))
	for i, pt := range points {
		xs[i] = pt.MeasuredUtil
		ys[i] = pick(pt)
	}
	return xs, ys
}

// targetRatioSeries uses the target utilization as x so that several sweeps
// (different f, k or traffic patterns) share one x grid in a report table.
func targetRatioSeries(points []*Point, pick func(*Point) float64) (xs, ys []float64) {
	xs = make([]float64, len(points))
	ys = make([]float64, len(points))
	for i, pt := range points {
		xs[i] = pt.Spec.TargetUtil
		ys[i] = pick(pt)
	}
	return xs, ys
}
