package experiments

import (
	"fmt"

	"dualtopo/internal/eval"
	"dualtopo/internal/render"
	"dualtopo/internal/stats"
)

func init() {
	register(Runner{
		ID:    "fig4",
		Title: "Fig 4: impact of high-priority volume fraction f on RL (random topology, load-based)",
		Run:   runFig4,
	})
	register(Runner{
		ID:    "fig5a",
		Title: "Fig 5(a): impact of SD-pair density k on RL (load-based)",
		Run:   func(p Preset) (*Report, error) { return runFig5(p, "fig5a", eval.LoadBased, 0.50, 0.90, 501) },
	})
	register(Runner{
		ID:    "fig5b",
		Title: "Fig 5(b): impact of SD-pair density k on RL (SLA-based)",
		Run:   func(p Preset) (*Report, error) { return runFig5(p, "fig5b", eval.SLABased, 0.50, 0.80, 502) },
	})
	register(Runner{
		ID:    "fig6",
		Title: "Fig 6: sorted link H-utilization under STR for k=10% and k=30% (load-based)",
		Run:   runFig6,
	})
}

// runFig4 sweeps network load for f = 20% and f = 40% at k = 10%.
func runFig4(p Preset) (*Report, error) {
	var series []render.Series
	for i, f := range []float64{0.20, 0.40} {
		base := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased, F: f, K: 0.10}
		specs := loadSweepSpecs(base, linspace(0.40, 0.80, p.Points), 401+uint64(i))
		points, err := runSweep(specs, p)
		if err != nil {
			return nil, err
		}
		xs, ys := targetRatioSeries(points, func(pt *Point) float64 { return pt.RL })
		series = append(series, render.Series{Name: fmt.Sprintf("f=%.0f%%", f*100), X: xs, Y: ys})
	}
	return &Report{
		ID:     "fig4",
		Title:  "Fig 4: RL vs load for f=20% and f=40%",
		XLabel: "avg-util",
		Series: series,
		Notes:  []string{"paper: RL grows with f — more high-priority traffic leaves STR's shared paths more loaded"},
	}, nil
}

// runFig5 sweeps network load for k = 10% and k = 30% at f = 30%.
func runFig5(p Preset, id string, kind eval.Kind, loLoad, hiLoad float64, seed uint64) (*Report, error) {
	var series []render.Series
	for i, k := range []float64{0.10, 0.30} {
		base := InstanceSpec{Topology: TopoRandom, Kind: kind, F: 0.30, K: k}
		specs := loadSweepSpecs(base, linspace(loLoad, hiLoad, p.Points), seed+10*uint64(i))
		points, err := runSweep(specs, p)
		if err != nil {
			return nil, err
		}
		xs, ys := targetRatioSeries(points, func(pt *Point) float64 { return pt.RL })
		series = append(series, render.Series{Name: fmt.Sprintf("k=%.0f%%", k*100), X: xs, Y: ys})
	}
	note := "paper: higher k lowers RL for the load-based cost (H spreads over more links)"
	if kind == eval.SLABased {
		note = "paper: higher k raises RL for the SLA-based cost (low-priority pairs dragged onto short-delay links)"
	}
	return &Report{
		ID:     id,
		Title:  fmt.Sprintf("Fig 5: RL vs load for k=10%% and k=30%% (%v)", kind),
		XLabel: "avg-util",
		Series: series,
		Notes:  []string{note},
	}, nil
}

// runFig6 reports per-link high-priority utilization under the STR solution,
// sorted in descending order, for two SD-pair densities.
func runFig6(p Preset) (*Report, error) {
	var series []render.Series
	for i, k := range []float64{0.10, 0.30} {
		spec := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased, F: 0.30, K: k, TargetUtil: 0.7, Seed: 601 + uint64(i)}
		pt, err := runPoint(spec, p)
		if err != nil {
			return nil, err
		}
		sorted := stats.SortedDescending(pt.STR.Result.HUtilization(pt.Inst.G))
		xs := make([]float64, len(sorted))
		for j := range xs {
			xs[j] = float64(j + 1)
		}
		series = append(series, render.Series{Name: fmt.Sprintf("k=%.0f%%", k*100), X: xs, Y: sorted})
	}
	return &Report{
		ID:     "fig6",
		Title:  "Fig 6: sorted link H-utilization under STR (load-based, f=30%)",
		XLabel: "link-rank",
		Series: series,
		Notes:  []string{"paper: the k=30% curve flattens — high-priority load spreads over more links"},
	}, nil
}
