// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each experiment is a registered runner that builds the
// paper's topology/traffic configuration, runs the STR baseline and the DTR
// heuristic, and reports the same series or rows the paper plots.
//
// Search budgets scale with a Preset: Tiny keeps integration tests fast,
// Small is the default for regenerating results on a laptop, and Paper uses
// the publication budgets (N=300000, K=800000).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dualtopo/internal/render"
	"dualtopo/internal/scenario"
	"dualtopo/internal/search"
)

// Preset scales experiment effort.
type Preset struct {
	Name string
	// DTR and STR are the search budgets applied at every sweep point.
	DTR search.Params
	STR search.STRParams
	// Points is the number of network-load points per sweep.
	Points int
	// Parallel bounds concurrently executed sweep points.
	Parallel int
	// Trials averages each point over this many seeds (≥1).
	Trials int
}

// Tiny returns the preset used by integration tests: real topologies, small
// search budgets, two load points.
func Tiny() Preset {
	b := scenario.TinyBudget()
	return Preset{Name: "tiny", DTR: b.DTR, STR: b.STR, Points: 2, Parallel: 2, Trials: 1}
}

// Smoke returns the minimal budget for exercising CLI paths on very large
// (10k-node-class) instances: just enough iterations to drive both searches'
// accept and diversification machinery, so a smoke run finishes in seconds
// where the tiny preset would take minutes.
func Smoke() Preset {
	b := scenario.TinyBudget()
	b.DTR.N, b.DTR.K, b.DTR.M, b.DTR.Neighbors = 12, 8, 6, 2
	b.STR.Iterations, b.STR.Candidates, b.STR.M = 30, 2, 10
	return Preset{Name: "smoke", DTR: b.DTR, STR: b.STR, Points: 1, Parallel: 1, Trials: 1}
}

// Small returns the default preset for regenerating results: a few minutes
// per figure on commodity hardware.
func Small() Preset {
	b := scenario.SmallBudget()
	return Preset{Name: "small", DTR: b.DTR, STR: b.STR, Points: 5, Parallel: 2, Trials: 1}
}

// PaperPreset returns the publication budgets of §5.1.3 (N=300000, K=800000
// as published). Expect very long runtimes; results in EXPERIMENTS.md use
// Small.
func PaperPreset() Preset {
	b := scenario.PaperBudget()
	return Preset{Name: "paper", DTR: b.DTR, STR: b.STR, Points: 7, Parallel: 2, Trials: 1}
}

// PresetByName resolves "smoke", "tiny", "small" or "paper".
func PresetByName(name string) (Preset, error) {
	switch strings.ToLower(name) {
	case "smoke":
		return Smoke(), nil
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "paper":
		return PaperPreset(), nil
	default:
		return Preset{}, fmt.Errorf("experiments: unknown preset %q (smoke|tiny|small|paper)", name)
	}
}

// TableBlock is a rendered-as-table result section.
type TableBlock struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the outcome of one experiment: series (figure-style results),
// tables, or both, plus free-form notes about modelling choices.
type Report struct {
	ID, Title string
	XLabel    string
	Series    []render.Series
	Tables    []TableBlock
	Notes     []string
}

// String renders the full report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		b.WriteString(render.SeriesTable(r.XLabel, r.Series, "%.4g"))
	}
	for _, tb := range r.Tables {
		if tb.Title != "" {
			fmt.Fprintf(&b, "\n-- %s --\n", tb.Title)
		}
		b.WriteString(render.Table(tb.Header, tb.Rows))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment's report under a preset.
type Runner struct {
	ID, Title string
	Run       func(Preset) (*Report, error)
}

var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.ID]; dup {
		panic("experiments: duplicate id " + r.ID)
	}
	registry[r.ID] = r
}

// IDs lists registered experiments in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the runner for id.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// Run executes the experiment with the given id.
func Run(id string, p Preset) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r.Run(p)
}

// linspace returns n evenly spaced values from lo to hi inclusive.
func linspace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
