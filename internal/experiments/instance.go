package experiments

import "dualtopo/internal/scenario"

// The problem-instance layer moved to internal/scenario, where the campaign
// engine owns it; experiments keep their historical names as aliases so the
// registered runners read as before. An experiment is now just a curated,
// code-defined scenario.

// Topology names accepted by InstanceSpec.
const (
	TopoRandom   = scenario.TopoRandom
	TopoPowerLaw = scenario.TopoPowerLaw
	TopoISP      = scenario.TopoISP
)

// High-priority traffic models accepted by InstanceSpec.
const (
	HPRandom      = scenario.HPRandom
	HPSinkUniform = scenario.HPSinkUniform
	HPSinkLocal   = scenario.HPSinkLocal
)

type (
	// InstanceSpec describes one experiment point's problem instance.
	InstanceSpec = scenario.InstanceSpec
	// Instance is a fully built problem: topology, matrices, options.
	Instance = scenario.Instance
)

// describeSpec renders the spec's effective (defaulted) parameters for
// report notes.
func describeSpec(s InstanceSpec) string { return s.Describe() }
