package experiments

import (
	"dualtopo/internal/eval"
	"dualtopo/internal/render"
)

// fig2Panel registers one panel of Fig. 2: RH and RL versus network load
// for one topology and cost function.
func fig2Panel(id, title string, base InstanceSpec, loLoad, hiLoad float64, seed uint64) {
	register(Runner{
		ID:    id,
		Title: title,
		Run: func(p Preset) (*Report, error) {
			specs := loadSweepSpecs(base, linspace(loLoad, hiLoad, p.Points), seed)
			points, err := runSweep(specs, p)
			if err != nil {
				return nil, err
			}
			hx, hy := ratioSeries(points, func(pt *Point) float64 { return pt.RH })
			lx, ly := ratioSeries(points, func(pt *Point) float64 { return pt.RL })
			return &Report{
				ID:     id,
				Title:  title,
				XLabel: "avg-util",
				Series: []render.Series{
					{Name: "H-cost ratio", X: hx, Y: hy},
					{Name: "L-cost ratio", X: lx, Y: ly},
				},
				Notes: []string{
					describeSpec(base),
					"ratio = cost under STR / cost under DTR (paper Fig. 2)",
				},
			}, nil
		},
	})
}

func init() {
	// Fig. 2 (a-c): load-based cost function; f=30%, k=10% (defaults).
	fig2Panel("fig2a", "Fig 2(a): cost ratios, 30-node/150-arc random topology, load-based",
		InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased}, 0.50, 0.90, 201)
	fig2Panel("fig2b", "Fig 2(b): cost ratios, 30-node/162-arc power-law topology, load-based",
		InstanceSpec{Topology: TopoPowerLaw, Kind: eval.LoadBased}, 0.40, 0.80, 202)
	fig2Panel("fig2c", "Fig 2(c): cost ratios, 16-node/70-arc ISP topology, load-based",
		InstanceSpec{Topology: TopoISP, Kind: eval.LoadBased}, 0.40, 0.80, 203)
	// Fig. 2 (d-f): SLA-based cost function, θ=25ms.
	fig2Panel("fig2d", "Fig 2(d): cost ratios, random topology, SLA-based",
		InstanceSpec{Topology: TopoRandom, Kind: eval.SLABased}, 0.50, 0.75, 204)
	fig2Panel("fig2e", "Fig 2(e): cost ratios, power-law topology, SLA-based",
		InstanceSpec{Topology: TopoPowerLaw, Kind: eval.SLABased}, 0.40, 0.65, 205)
	fig2Panel("fig2f", "Fig 2(f): cost ratios, ISP topology, SLA-based",
		InstanceSpec{Topology: TopoISP, Kind: eval.SLABased}, 0.40, 0.80, 206)
}
