package experiments

import (
	"fmt"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/search"
	"dualtopo/internal/spf"
	"dualtopo/internal/traffic"
)

func init() {
	register(Runner{
		ID:    "fig1",
		Title: "Fig 1 / §3.3.1: 3-node joint-cost-function example",
		Run:   runTriangle,
	})
}

// triangleInstance builds the §3.3.1 network: unit-capacity triangle with
// 1/3 high-priority and 2/3 low-priority units from A to C.
func triangleInstance() (*graph.Graph, *traffic.Matrix, *traffic.Matrix) {
	g := graph.New(3)
	g.SetName(0, "A")
	g.SetName(1, "B")
	g.SetName(2, "C")
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	g.AddLink(0, 2, 1, 1)
	th := traffic.NewMatrix(3)
	th.Set(0, 2, 1.0/3)
	tl := traffic.NewMatrix(3)
	tl.Set(0, 2, 2.0/3)
	return g, th, tl
}

// runTriangle reproduces the joint-cost-function discussion: the two STR
// routings the paper enumerates for α=35 and α=30, the resulting priority
// inversion, and the DTR solution that avoids the dilemma entirely.
func runTriangle(p Preset) (*Report, error) {
	g, th, tl := triangleInstance()
	e, err := eval.New(g, th, tl, eval.DefaultOptions())
	if err != nil {
		return nil, err
	}

	// Routing 1: both classes on the direct link A-C (unit weights).
	direct, err := e.EvaluateSTR(spf.Uniform(g.NumEdges()))
	if err != nil {
		return nil, err
	}
	// Routing 2: even split over A-C and A-B-C (wAC = 2).
	wSplit := spf.Uniform(g.NumEdges())
	ac, _ := g.ArcBetween(0, 2)
	wSplit[ac] = 2
	split, err := e.EvaluateSTR(wSplit)
	if err != nil {
		return nil, err
	}

	rows := [][]string{}
	for _, alpha := range []float64{35, 30} {
		jDirect := alpha*direct.PhiH + direct.PhiL
		jSplit := alpha*split.PhiH + split.PhiL
		choice := "direct (A-C)"
		chosen := direct
		if jSplit < jDirect {
			choice = "even split"
			chosen = split
		}
		rows = append(rows, []string{
			fmt.Sprintf("α=%.0f", alpha),
			fmt.Sprintf("%.4g", jDirect),
			fmt.Sprintf("%.4g", jSplit),
			choice,
			fmt.Sprintf("%.4g", chosen.PhiH),
			fmt.Sprintf("%.4g", chosen.PhiL),
		})
	}

	// DTR sidesteps the trade-off: run the real search to find the joint
	// lexicographic optimum ⟨1/3, 11/9⟩.
	dtrParams := p.DTR
	dtrParams.Seed = 101
	dtr, err := search.DTR(e, dtrParams)
	if err != nil {
		return nil, err
	}

	return &Report{
		ID:    "fig1",
		Title: "Fig 1 / §3.3.1: joint cost J = αΦH + ΦL on the 3-node triangle",
		Tables: []TableBlock{
			{
				Title:  "joint-cost choice (paper: α=35 picks direct; α=30 flips to split, a priority inversion)",
				Header: []string{"alpha", "J(direct)", "J(split)", "argmin", "PhiH", "PhiL"},
				Rows:   rows,
			},
			{
				Title:  "lexicographic solutions",
				Header: []string{"scheme", "PhiH", "PhiL"},
				Rows: [][]string{
					{"STR (direct)", fmt.Sprintf("%.4g", direct.PhiH), fmt.Sprintf("%.4g", direct.PhiL)},
					{"DTR (search)", fmt.Sprintf("%.4g", dtr.Result.PhiH), fmt.Sprintf("%.4g", dtr.Result.PhiL)},
				},
			},
		},
		Notes: []string{
			"paper values: direct ⟨ΦH, ΦL⟩ = ⟨1/3, 64/9⟩; split = ⟨1/2, 4/3⟩; DTR joint optimum = ⟨1/3, 11/9⟩",
		},
	}, nil
}
