package experiments

import (
	"fmt"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/stats"
)

func init() {
	register(Runner{
		ID:    "extfail",
		Title: "Extension: single-link-failure robustness of STR vs DTR weight settings",
		Run:   runExtFail,
	})
}

// runExtFail is an extension beyond the paper (suggested by its resilience
// related-work, [7-9]): how fragile are the optimized weight settings when a
// link fails and OSPF reconverges with unchanged weights? For every single
// bidirectional link failure we re-evaluate both schemes on the surviving
// topology and report the distribution of low-priority cost degradation.
func runExtFail(p Preset) (*Report, error) {
	spec := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased, TargetUtil: 0.6, Seed: 1101}
	pt, err := runPoint(spec, p)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build()
	if err != nil {
		return nil, err
	}
	e, err := inst.Evaluator()
	if err != nil {
		return nil, err
	}

	baseSTR := pt.STR.Result.PhiL
	baseDTR := pt.DTR.Result.PhiL

	var strDegr, dtrDegr []float64
	disconnected := 0
	seen := map[graph.EdgeID]bool{}
	for _, edge := range inst.G.Edges() {
		if seen[edge.ID] {
			continue
		}
		rev, ok := inst.G.Reverse(edge.ID)
		if !ok {
			continue
		}
		seen[edge.ID] = true
		seen[rev] = true

		strW := pt.STR.W.WithFailedArcs(edge.ID, rev)
		strRes, errSTR := e.EvaluateSTR(strW)
		dtrWH := pt.DTR.WH.WithFailedArcs(edge.ID, rev)
		dtrWL := pt.DTR.WL.WithFailedArcs(edge.ID, rev)
		dtrRes, errDTR := e.EvaluateDTR(dtrWH, dtrWL)
		if errSTR != nil || errDTR != nil {
			// The failure disconnected some demand; both schemes lose the
			// same physical reachability, so skip the sample.
			disconnected++
			continue
		}
		strDegr = append(strDegr, strRes.PhiL/baseSTR)
		dtrDegr = append(dtrDegr, dtrRes.PhiL/baseDTR)
	}
	if len(strDegr) == 0 {
		return nil, fmt.Errorf("experiments: every failure disconnected the network")
	}

	row := func(name string, xs []float64) []string {
		return []string{
			name,
			fmt.Sprintf("%.2f", stats.Mean(xs)),
			fmt.Sprintf("%.2f", stats.Quantile(xs, 0.5)),
			fmt.Sprintf("%.2f", stats.Quantile(xs, 0.9)),
			fmt.Sprintf("%.2f", stats.Max(xs)),
		}
	}
	// How often does DTR remain better than STR in absolute terms after the
	// same failure?
	dtrStillBetter := 0
	for i := range strDegr {
		if dtrDegr[i]*baseDTR <= strDegr[i]*baseSTR {
			dtrStillBetter++
		}
	}
	return &Report{
		ID:    "extfail",
		Title: "Extension: ΦL degradation under every single-link failure (weights unchanged)",
		Tables: []TableBlock{{
			Title:  fmt.Sprintf("degradation factor ΦL(failed)/ΦL(intact); %d failures, %d disconnecting", len(strDegr), disconnected),
			Header: []string{"scheme", "mean", "median", "p90", "max"},
			Rows: [][]string{
				row("STR", strDegr),
				row("DTR", dtrDegr),
			},
		}},
		Notes: []string{
			fmt.Sprintf("DTR keeps the lower absolute ΦL after %d/%d failures", dtrStillBetter, len(strDegr)),
			"weights stay fixed across failures (OSPF reconverges on surviving links), as operators run between re-optimizations",
		},
	}, nil
}

// Ensure spf.Disabled round-trips the public surface (compile-time check
// that WithFailedArcs stays part of Weights' API).
var _ = spf.Weights.WithFailedArcs
