package experiments

import (
	"fmt"

	"dualtopo/internal/eval"
	"dualtopo/internal/resilience"
	"dualtopo/internal/stats"
)

func init() {
	register(Runner{
		ID:    "extfail",
		Title: "Extension: single-link-failure robustness of STR vs DTR weight settings",
		Run:   runExtFail,
	})
}

// runExtFail is an extension beyond the paper (suggested by its resilience
// related-work, [7-9]): how fragile are the optimized weight settings when a
// link fails and OSPF reconverges with unchanged weights? The resilience
// sweep engine threads every single-link failure through the incremental
// routing core; this runner reports the distribution of low-priority cost
// degradation.
func runExtFail(p Preset) (*Report, error) {
	spec := InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased, TargetUtil: 0.6, Seed: 1101}
	pt, err := runPoint(spec, p)
	if err != nil {
		return nil, err
	}
	states, err := resilience.Enumerate(pt.Inst.G, resilience.Model{Kind: resilience.KindLink})
	if err != nil {
		return nil, err
	}
	e, err := pt.Inst.Evaluator()
	if err != nil {
		return nil, err
	}
	sw := resilience.NewSweeper(e, resilience.Options{})
	fs, err := resilience.CompareSchemes(sw, pt.STR.W, pt.DTR.WH, pt.DTR.WL, states)
	if err != nil {
		return nil, err
	}

	row := func(name string, xs []float64) []string {
		return []string{
			name,
			fmt.Sprintf("%.2f", stats.Mean(xs)),
			fmt.Sprintf("%.2f", stats.Quantile(xs, 0.5)),
			fmt.Sprintf("%.2f", stats.Quantile(xs, 0.9)),
			fmt.Sprintf("%.2f", stats.Max(xs)),
		}
	}
	return &Report{
		ID:    "extfail",
		Title: "Extension: ΦL degradation under every single-link failure (weights unchanged)",
		Tables: []TableBlock{{
			Title:  fmt.Sprintf("degradation factor ΦL(failed)/ΦL(intact); %d failures, %d disconnecting", len(fs.STR), fs.Disconnecting),
			Header: []string{"scheme", "mean", "median", "p90", "max"},
			Rows: [][]string{
				row("STR", fs.STR),
				row("DTR", fs.DTR),
			},
		}},
		Notes: []string{
			fmt.Sprintf("DTR keeps the lower absolute ΦL after %d/%d failures", fs.DTRStillBetter(), len(fs.STR)),
			"weights stay fixed across failures (OSPF reconverges on surviving links), as operators run between re-optimizations",
		},
	}, nil
}
