package experiments

import (
	"fmt"

	"dualtopo/internal/eval"
	"dualtopo/internal/render"
	"dualtopo/internal/stats"
)

// fig3Case registers one of Fig. 3's link-utilization histograms comparing
// STR and DTR on the 30-node random topology.
func fig3Case(id, title string, kind eval.Kind, k float64, seed uint64) {
	register(Runner{
		ID:    id,
		Title: title,
		Run: func(p Preset) (*Report, error) {
			// The paper does not state the load point for Fig. 3; a
			// moderately-high 0.7 average utilization matches the regime in
			// which the text discusses it.
			spec := InstanceSpec{Topology: TopoRandom, Kind: kind, K: k, TargetUtil: 0.7, Seed: seed}
			pt, err := runPoint(spec, p)
			if err != nil {
				return nil, err
			}
			strUtil := pt.STR.Result.Utilization(pt.Inst.G)
			dtrUtil := pt.DTR.Result.Utilization(pt.Inst.G)
			hi := stats.Max(strUtil)
			if m := stats.Max(dtrUtil); m > hi {
				hi = m
			}
			if hi < 1 {
				hi = 1
			}
			const buckets = 15
			hs := stats.NewHistogram(strUtil, 0, hi, buckets)
			hd := stats.NewHistogram(dtrUtil, 0, hi, buckets)
			centers := make([]float64, buckets)
			strCounts := make([]float64, buckets)
			dtrCounts := make([]float64, buckets)
			labels := make([]string, buckets)
			for i := 0; i < buckets; i++ {
				centers[i] = hs.BucketCenter(i)
				strCounts[i] = float64(hs.Counts[i])
				dtrCounts[i] = float64(hd.Counts[i])
				labels[i] = fmt.Sprintf("%.2f", centers[i])
			}
			return &Report{
				ID:     id,
				Title:  title,
				XLabel: "utilization-bucket",
				Series: []render.Series{
					{Name: "STR link count", X: centers, Y: strCounts},
					{Name: "DTR link count", X: centers, Y: dtrCounts},
				},
				Tables: []TableBlock{{
					Title:  "histogram",
					Header: []string{"bucket", "STR", "DTR"},
					Rows:   histogramRows(labels, strCounts, dtrCounts),
				}},
				Notes: []string{
					fmt.Sprintf("kind=%v k=%.0f%% target-util=0.7 measured-util=%.2f", kind, k*100, pt.MeasuredUtil),
					"paper Fig. 3: DTR yields significantly fewer overloaded links than STR",
				},
			}, nil
		},
	})
}

func histogramRows(labels []string, a, b []float64) [][]string {
	rows := make([][]string, len(labels))
	for i := range labels {
		rows[i] = []string{labels[i], fmt.Sprintf("%.0f", a[i]), fmt.Sprintf("%.0f", b[i])}
	}
	return rows
}

func init() {
	fig3Case("fig3a", "Fig 3(a): link utilization histogram, load-based, k=10%", eval.LoadBased, 0.10, 301)
	fig3Case("fig3b", "Fig 3(b): link utilization histogram, SLA-based, k=10%", eval.SLABased, 0.10, 302)
	fig3Case("fig3c", "Fig 3(c): link utilization histogram, SLA-based, k=30%", eval.SLABased, 0.30, 303)
}
