package experiments

import (
	"fmt"

	"dualtopo/internal/eval"
)

func init() {
	register(Runner{
		ID:    "table1",
		Title: "Table 1: low-priority performance of ε-relaxed STR vs DTR (load-based)",
		Run:   runTable1,
	})
}

// runTable1 reproduces Table 1: for each topology, a load sweep reporting
// RL (strict STR / DTR), and RL,5% and RL,30% (ε-relaxed STR / DTR).
func runTable1(p Preset) (*Report, error) {
	configs := []struct {
		name string
		base InstanceSpec
		lo   float64
		hi   float64
		seed uint64
	}{
		{"30-node, 150-link random topology", InstanceSpec{Topology: TopoRandom, Kind: eval.LoadBased}, 0.45, 0.85, 1001},
		{"30-node, 162-link power-law topology", InstanceSpec{Topology: TopoPowerLaw, Kind: eval.LoadBased}, 0.40, 0.85, 1002},
		{"ISP topology", InstanceSpec{Topology: TopoISP, Kind: eval.LoadBased}, 0.35, 0.85, 1003},
	}
	epsilons := []float64{0.05, 0.30}
	report := &Report{
		ID:    "table1",
		Title: "Table 1: STR relaxation vs DTR, f=30%, k=10%",
		Notes: []string{
			"RL = strict STR ΦL / DTR ΦL; RL,ε uses the best ΦL among settings with ΦH ≤ (1+ε)Φ*H",
			"AD = measured average link utilization of the strict STR solution",
		},
	}
	for _, cfg := range configs {
		preset := p
		preset.STR.Epsilons = epsilons
		specs := loadSweepSpecs(cfg.base, linspace(cfg.lo, cfg.hi, p.Points), cfg.seed)
		points, err := runSweep(specs, preset)
		if err != nil {
			return nil, err
		}
		rl := []string{"RL"}
		rl5 := []string{"RL,5%"}
		rl30 := []string{"RL,30%"}
		ad := []string{"AD"}
		for _, pt := range points {
			rl = append(rl, fmt.Sprintf("%.2f", pt.RL))
			rl5 = append(rl5, relaxedRatio(pt, 0.05))
			rl30 = append(rl30, relaxedRatio(pt, 0.30))
			ad = append(ad, fmt.Sprintf("%.2f", pt.MeasuredUtil))
		}
		header := []string{cfg.name}
		for i := range points {
			header = append(header, fmt.Sprintf("pt%d", i+1))
		}
		report.Tables = append(report.Tables, TableBlock{
			Title:  cfg.name,
			Header: header,
			Rows:   [][]string{rl, rl5, rl30, ad},
		})
	}
	return report, nil
}

// relaxedRatio formats ΦL(relaxed STR)/ΦL(DTR) for one ε.
func relaxedRatio(pt *Point, epsilon float64) string {
	rec, ok := pt.STR.Relaxed[epsilon]
	if !ok || !rec.Found {
		return "n/a"
	}
	dtr := pt.DTR.Result.PhiL
	if dtr <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", rec.PhiL/dtr)
}
