package qsim

import (
	"math"
	"testing"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	return math.Abs(got-want) / want
}

const simPackets = 400000

func TestRunValidatesConfig(t *testing.T) {
	base := Config{ArrivalH: 0.2, ArrivalL: 0.3, ServiceRate: 1, Packets: 100}
	bad := []func(*Config){
		func(c *Config) { c.ArrivalH = -1 },
		func(c *Config) { c.ServiceRate = 0 },
		func(c *Config) { c.ArrivalH = 0.7; c.ArrivalL = 0.5 }, // rho >= 1
		func(c *Config) { c.Packets = 0 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Run(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMM1SingleClass(t *testing.T) {
	// With no high-priority traffic the queue is a plain M/M/1:
	// T = 1/(mu - lambda).
	cfg := Config{ArrivalH: 0, ArrivalL: 0.5, ServiceRate: 1, Packets: simPackets, Warmup: 5000, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (1 - 0.5)
	if relErr(res.L.MeanSojourn, want) > 0.05 {
		t.Fatalf("M/M/1 sojourn = %.3f, want %.3f (±5%%)", res.L.MeanSojourn, want)
	}
	if relErr(res.BusyFraction, 0.5) > 0.05 {
		t.Fatalf("busy fraction = %.3f, want 0.5", res.BusyFraction)
	}
}

func TestPreemptiveMatchesTheory(t *testing.T) {
	lamH, lamL, mu := 0.25, 0.35, 1.0
	cfg := Config{ArrivalH: lamH, ArrivalL: lamL, ServiceRate: mu,
		Discipline: PreemptiveResume, Packets: simPackets, Warmup: 5000, Seed: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantH, wantL := TheoryPreemptive(lamH, lamL, mu)
	if relErr(res.H.MeanSojourn, wantH) > 0.05 {
		t.Errorf("preemptive T_H = %.3f, want %.3f", res.H.MeanSojourn, wantH)
	}
	if relErr(res.L.MeanSojourn, wantL) > 0.05 {
		t.Errorf("preemptive T_L = %.3f, want %.3f", res.L.MeanSojourn, wantL)
	}
}

func TestNonPreemptiveMatchesTheory(t *testing.T) {
	lamH, lamL, mu := 0.25, 0.35, 1.0
	cfg := Config{ArrivalH: lamH, ArrivalL: lamL, ServiceRate: mu,
		Discipline: NonPreemptive, Packets: simPackets, Warmup: 5000, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantH, wantL := TheoryNonPreemptive(lamH, lamL, mu)
	if relErr(res.H.MeanSojourn, wantH) > 0.05 {
		t.Errorf("non-preemptive T_H = %.3f, want %.3f", res.H.MeanSojourn, wantH)
	}
	if relErr(res.L.MeanSojourn, wantL) > 0.05 {
		t.Errorf("non-preemptive T_L = %.3f, want %.3f", res.L.MeanSojourn, wantL)
	}
}

// TestHighPriorityImperviousUnderPreemption verifies the paper's §5.2 claim:
// with (preemptive) priority queueing, high-priority performance does not
// depend on the low-priority load.
func TestHighPriorityImperviousUnderPreemption(t *testing.T) {
	base := Config{ArrivalH: 0.3, ServiceRate: 1, Discipline: PreemptiveResume,
		Packets: simPackets, Warmup: 5000, Seed: 4}
	light := base
	light.ArrivalL = 0.05
	heavy := base
	heavy.ArrivalL = 0.6
	resLight, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	resHeavy, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(resHeavy.H.MeanSojourn, resLight.H.MeanSojourn) > 0.05 {
		t.Fatalf("H sojourn moved with L load: %.3f (light) vs %.3f (heavy)",
			resLight.H.MeanSojourn, resHeavy.H.MeanSojourn)
	}
}

// TestResidualCapacityApproximation quantifies the abstraction behind
// C̃ = C − H: the paper's residual-capacity model underestimates the true
// (preemptive) low-priority sojourn by exactly a (1−ρH) factor.
func TestResidualCapacityApproximation(t *testing.T) {
	lamH, lamL, mu := 0.3, 0.3, 1.0
	cfg := Config{ArrivalH: lamH, ArrivalL: lamL, ServiceRate: mu,
		Discipline: PreemptiveResume, Packets: simPackets, Warmup: 5000, Seed: 5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx := TheoryResidualCapacity(lamH, lamL, mu)
	rhoH := lamH / mu
	// approx * 1/(1-rhoH) should equal the measured sojourn.
	corrected := approx / (1 - rhoH)
	if relErr(res.L.MeanSojourn, corrected) > 0.05 {
		t.Fatalf("corrected residual model %.3f vs simulated %.3f", corrected, res.L.MeanSojourn)
	}
	// And the raw approximation is optimistic (lower than measured).
	if approx >= res.L.MeanSojourn {
		t.Fatalf("residual approximation %.3f not optimistic vs %.3f", approx, res.L.MeanSojourn)
	}
}

func TestTheoryResidualCapacityUnstable(t *testing.T) {
	if got := TheoryResidualCapacity(0.6, 0.5, 1); !math.IsInf(got, 1) {
		t.Fatalf("unstable residual = %v, want +Inf", got)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := Config{ArrivalH: 0.2, ArrivalL: 0.4, ServiceRate: 1,
		Packets: 20000, Warmup: 100, Seed: 6}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.H.MeanSojourn != b.H.MeanSojourn || a.L.MeanSojourn != b.L.MeanSojourn {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 7
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.L.MeanSojourn == c.L.MeanSojourn {
		t.Fatal("different seeds produced identical results")
	}
}

func TestWaitExcludesService(t *testing.T) {
	cfg := Config{ArrivalH: 0.2, ArrivalL: 0.3, ServiceRate: 1,
		Discipline: NonPreemptive, Packets: 100000, Warmup: 1000, Seed: 8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sojourn = wait + service; mean service is 1/mu = 1.
	for _, cls := range []ClassStats{res.H, res.L} {
		if diff := cls.MeanSojourn - cls.MeanWait; relErr(diff, 1.0) > 0.1 {
			t.Fatalf("sojourn-wait = %.3f, want ~1.0 (mean service)", diff)
		}
	}
}

func TestDisciplineString(t *testing.T) {
	if PreemptiveResume.String() != "preemptive-resume" || NonPreemptive.String() != "non-preemptive" {
		t.Fatal("discipline strings wrong")
	}
	if Discipline(9).String() == "" {
		t.Fatal("unknown discipline empty")
	}
}

// TestPreemptionHurtsLowPriority: under preemption the low class waits
// longer than under non-preemptive service, and the high class waits less.
func TestPreemptionOrdering(t *testing.T) {
	mk := func(d Discipline) *Result {
		res, err := Run(Config{ArrivalH: 0.3, ArrivalL: 0.4, ServiceRate: 1,
			Discipline: d, Packets: simPackets, Warmup: 5000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pre := mk(PreemptiveResume)
	non := mk(NonPreemptive)
	if pre.H.MeanSojourn >= non.H.MeanSojourn {
		t.Fatalf("preemption should help H: %.3f vs %.3f", pre.H.MeanSojourn, non.H.MeanSojourn)
	}
}
