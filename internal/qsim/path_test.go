package qsim

import (
	"math"
	"testing"
)

func TestSimulatePathValidatesConfig(t *testing.T) {
	if _, err := SimulatePath(PathConfig{ProbeRate: 0.1, Packets: 100}); err == nil {
		t.Error("empty path accepted")
	}
	links := []PathLink{{ServiceRate: 1}}
	if _, err := SimulatePath(PathConfig{Links: links, ProbeRate: 0, Packets: 100}); err == nil {
		t.Error("zero probe rate accepted")
	}
	// Unstable link surfaces the underlying Run error.
	bad := []PathLink{{ServiceRate: 1, BackgroundH: 0.9}}
	if _, err := SimulatePath(PathConfig{Links: bad, ProbeRate: 0.2, Packets: 100}); err == nil {
		t.Error("unstable link accepted")
	}
}

// TestPathMatchesAnalyticSum: the simulated end-to-end delay must match the
// sum of per-link priority M/M/1 predictions — the additivity that the
// paper's ξ(s,t) = Σ Dl model assumes.
func TestPathMatchesAnalyticSum(t *testing.T) {
	links := []PathLink{
		{ServiceRate: 1, BackgroundH: 0.2, BackgroundL: 0.3, PropDelay: 5},
		{ServiceRate: 1, BackgroundH: 0.4, BackgroundL: 0.1, PropDelay: 8},
		{ServiceRate: 2, BackgroundH: 0.5, BackgroundL: 0.7, PropDelay: 2},
	}
	for _, probeHigh := range []bool{true, false} {
		cfg := PathConfig{
			Links: links, ProbeRate: 0.05, ProbeHigh: probeHigh,
			Packets: 300000, Warmup: 5000, Seed: 11,
		}
		res, err := SimulatePath(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(res.MeanDelay, res.AnalyticDelay) > 0.05 {
			t.Fatalf("probeHigh=%v: simulated %.3f vs analytic %.3f",
				probeHigh, res.MeanDelay, res.AnalyticDelay)
		}
		if len(res.PerLink) != len(links) {
			t.Fatalf("per-link entries = %d", len(res.PerLink))
		}
		sum := 0.0
		for _, d := range res.PerLink {
			sum += d
		}
		if math.Abs(sum-res.MeanDelay) > 1e-9 {
			t.Fatalf("per-link sum %.3f != total %.3f", sum, res.MeanDelay)
		}
	}
}

// TestPathPropagationDominatesWhenLight: on an unloaded path, the end-to-end
// delay is essentially the propagation sum plus one service time per hop —
// the regime the paper notes for its SLA experiments (§5.2.2).
func TestPathPropagationDominatesWhenLight(t *testing.T) {
	links := []PathLink{
		{ServiceRate: 100, PropDelay: 10},
		{ServiceRate: 100, PropDelay: 12},
	}
	res, err := SimulatePath(PathConfig{
		Links: links, ProbeRate: 0.1, ProbeHigh: true,
		Packets: 50000, Warmup: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 22 + 2.0/100 // propagation + two mean service times
	if relErr(res.MeanDelay, want) > 0.05 {
		t.Fatalf("light-path delay %.4f, want ~%.4f", res.MeanDelay, want)
	}
}

// TestPathHighClassIgnoresLowBackground: adding low-priority background
// must not change the high-priority probe's delay (preemptive priority).
func TestPathHighClassIgnoresLowBackground(t *testing.T) {
	mk := func(bgL float64) float64 {
		res, err := SimulatePath(PathConfig{
			Links:   []PathLink{{ServiceRate: 1, BackgroundH: 0.2, BackgroundL: bgL}},
			Packets: 300000, Warmup: 5000, Seed: 7, ProbeRate: 0.1, ProbeHigh: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanDelay
	}
	light, heavy := mk(0.05), mk(0.6)
	if relErr(heavy, light) > 0.05 {
		t.Fatalf("high-priority path delay moved with low load: %.3f vs %.3f", light, heavy)
	}
}
