// Package qsim is a discrete-event simulator of the contention-resolution
// mechanism the paper assumes (§1, §3): a single link serving two traffic
// classes under strict priority queueing. It exists to validate the analytic
// shortcuts the optimization relies on — the M/M/1 delay model of Eq. (3)
// and the residual-capacity abstraction C̃ = C − H for the low-priority
// class — against an actual packet-level simulation.
//
// Two disciplines are provided: preemptive-resume priority (the idealization
// behind "low priority sees only residual capacity") and non-preemptive
// priority (what routers implement; high priority additionally waits for the
// in-service packet's residual).
package qsim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Discipline selects how the high-priority class treats a low-priority
// packet in service.
type Discipline int

const (
	// PreemptiveResume suspends the in-service low-priority packet when a
	// high-priority packet arrives, resuming it where it stopped.
	PreemptiveResume Discipline = iota
	// NonPreemptive lets the in-service packet finish first.
	NonPreemptive
)

func (d Discipline) String() string {
	switch d {
	case PreemptiveResume:
		return "preemptive-resume"
	case NonPreemptive:
		return "non-preemptive"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config parameterizes one simulation run. Rates are in packets per unit
// time; the unit is arbitrary but must be consistent.
type Config struct {
	// ArrivalH and ArrivalL are the Poisson arrival rates of the two
	// classes.
	ArrivalH, ArrivalL float64
	// ServiceRate is the exponential service rate μ (same for both classes,
	// as in the paper's per-class M/M/1 model).
	ServiceRate float64
	Discipline  Discipline
	// Packets is the number of completed packets to measure (after warmup).
	Packets int
	// Warmup packets are simulated but not measured.
	Warmup int
	Seed   uint64
}

// ClassStats summarizes one class's measured delays.
type ClassStats struct {
	Completed   int
	MeanWait    float64 // queueing delay (excludes service)
	MeanSojourn float64 // queueing + service
}

// Result is a simulation outcome.
type Result struct {
	H, L ClassStats
	// BusyFraction is the fraction of time the server was serving.
	BusyFraction float64
	// Duration is the simulated time span.
	Duration float64
}

// packet is one queued job.
type packet struct {
	arrival   float64
	remaining float64 // remaining service requirement
	started   bool    // whether service ever began (for wait measurement)
	waitEnd   float64 // time service first began
}

// Run simulates the configured queue and returns measured statistics.
// The system must be stable (ρH + ρL < 1).
func Run(cfg Config) (*Result, error) {
	if cfg.ArrivalH < 0 || cfg.ArrivalL < 0 {
		return nil, fmt.Errorf("qsim: negative arrival rate")
	}
	if cfg.ServiceRate <= 0 {
		return nil, fmt.Errorf("qsim: service rate must be positive")
	}
	rho := (cfg.ArrivalH + cfg.ArrivalL) / cfg.ServiceRate
	if rho >= 1 {
		return nil, fmt.Errorf("qsim: unstable system (rho = %.3f >= 1)", rho)
	}
	if cfg.Packets <= 0 {
		return nil, fmt.Errorf("qsim: packets must be positive")
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9517))
	exp := func(rate float64) float64 {
		if rate <= 0 {
			return math.Inf(1)
		}
		return rng.ExpFloat64() / rate
	}

	var (
		now        float64
		nextH      = exp(cfg.ArrivalH)
		nextL      = exp(cfg.ArrivalL)
		queues     [2][]packet // 0 = H, 1 = L; the in-service job is always queues[serviceCls][0]
		serving    = false
		serviceCls int
		departAt   float64
		busy       float64
		measured   int
		discarded  int
		statH      ClassStats
		statL      ClassStats
	)

	// head returns the in-service packet. Jobs are only ever served from the
	// head of their queue (a preempted low-priority job stays at the head),
	// so indexing — unlike a held pointer — survives queue reallocation.
	head := func() *packet { return &queues[serviceCls][0] }

	startService := func() {
		// Pick the next job: H strictly first.
		switch {
		case len(queues[0]) > 0:
			serviceCls = 0
		case len(queues[1]) > 0:
			serviceCls = 1
		default:
			serving = false
			return
		}
		serving = true
		p := head()
		if !p.started {
			p.started = true
			p.waitEnd = now
		}
		departAt = now + p.remaining
	}

	record := func(p *packet, cls int) {
		if discarded < cfg.Warmup {
			discarded++
			return
		}
		measured++
		wait := p.waitEnd - p.arrival
		sojourn := now - p.arrival
		if cls == 0 {
			statH.Completed++
			statH.MeanWait += wait
			statH.MeanSojourn += sojourn
		} else {
			statL.Completed++
			statL.MeanWait += wait
			statL.MeanSojourn += sojourn
		}
	}

	for measured < cfg.Packets {
		// Next event: arrival of either class or the current departure.
		next := math.Min(nextH, nextL)
		if serving && departAt <= next {
			// Departure.
			busy += departAt - now
			now = departAt
			record(head(), serviceCls)
			queues[serviceCls] = queues[serviceCls][1:]
			startService()
			continue
		}
		if serving {
			busy += next - now
			head().remaining -= next - now
		}
		now = next
		if nextH <= nextL {
			// High-priority arrival.
			queues[0] = append(queues[0], packet{arrival: now, remaining: exp(cfg.ServiceRate)})
			nextH = now + exp(cfg.ArrivalH)
			switch {
			case !serving:
				startService()
			case serviceCls == 1 && cfg.Discipline == PreemptiveResume:
				// Suspend the low-priority job (its remaining time was
				// already decremented above) and serve the new arrival.
				startService()
			default:
				// Non-preemptive, or already serving H: keep serving; the
				// departure time is unchanged by the decrement bookkeeping.
				departAt = now + head().remaining
			}
		} else {
			// Low-priority arrival.
			queues[1] = append(queues[1], packet{arrival: now, remaining: exp(cfg.ServiceRate)})
			nextL = now + exp(cfg.ArrivalL)
			if !serving {
				startService()
			} else {
				departAt = now + head().remaining
			}
		}
	}

	if statH.Completed > 0 {
		statH.MeanWait /= float64(statH.Completed)
		statH.MeanSojourn /= float64(statH.Completed)
	}
	if statL.Completed > 0 {
		statL.MeanWait /= float64(statL.Completed)
		statL.MeanSojourn /= float64(statL.Completed)
	}
	return &Result{
		H:            statH,
		L:            statL,
		BusyFraction: busy / now,
		Duration:     now,
	}, nil
}

// Analytic mean sojourn times for the two-class M/M/1 priority queue with
// equal exponential service rates (Bertsekas & Gallager §3.5). Used by tests
// and by the model-validation example.

// TheoryPreemptive returns the mean sojourn times (T_H, T_L) under
// preemptive-resume priority.
func TheoryPreemptive(lamH, lamL, mu float64) (float64, float64) {
	rho1 := lamH / mu
	rho := (lamH + lamL) / mu
	tH := (1 / mu) / (1 - rho1)
	tL := (1 / mu) / ((1 - rho1) * (1 - rho))
	return tH, tL
}

// TheoryNonPreemptive returns the mean sojourn times (T_H, T_L) under
// non-preemptive priority.
func TheoryNonPreemptive(lamH, lamL, mu float64) (float64, float64) {
	rho1 := lamH / mu
	rho := (lamH + lamL) / mu
	r := rho / mu // mean residual work seen at arrival (exponential service)
	tH := 1/mu + r/(1-rho1)
	tL := 1/mu + r/((1-rho1)*(1-rho))
	return tH, tL
}

// TheoryResidualCapacity returns the paper's residual-capacity
// approximation for the low-priority sojourn: an M/M/1 queue with service
// capacity scaled to what the high-priority class leaves behind,
// T_L ≈ 1/(μ(1−ρH) − λL). This is the abstraction behind C̃ = C − H; it is
// optimistic by exactly a (1−ρH) factor versus the preemptive-resume truth.
func TheoryResidualCapacity(lamH, lamL, mu float64) float64 {
	residual := mu*(1-lamH/mu) - lamL
	if residual <= 0 {
		return math.Inf(1)
	}
	return 1 / residual
}
