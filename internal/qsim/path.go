package qsim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// PathLink is one hop of a tandem-queue path: a strict-priority link with
// its own background load and propagation delay. The probe flow (whose
// delay we measure) is high- or low-priority; each link also carries
// independent background traffic of both classes.
type PathLink struct {
	// ServiceRate is the link's μ in packets per unit time.
	ServiceRate float64
	// BackgroundH and BackgroundL are Poisson background arrival rates.
	BackgroundH, BackgroundL float64
	// PropDelay is added to every packet crossing the link.
	PropDelay float64
}

// PathConfig simulates a probe flow through a chain of priority queues —
// the network-path analogue of Eq. (3)'s additive end-to-end delay
// ξ(s,t) = Σ Dl. Each link is simulated as an independent priority queue
// (the Kleinrock independence approximation the paper's model implies).
type PathConfig struct {
	Links []PathLink
	// ProbeRate is the probe flow's Poisson arrival rate.
	ProbeRate float64
	// ProbeHigh selects the probe's class.
	ProbeHigh bool
	// Packets is the number of probe packets to measure per link.
	Packets int
	Warmup  int
	Seed    uint64
}

// PathResult reports the probe flow's expected end-to-end delay.
type PathResult struct {
	// MeanDelay is the simulated mean end-to-end delay (queueing + service
	// + propagation summed over links).
	MeanDelay float64
	// PerLink is the simulated mean per-link delay (including propagation).
	PerLink []float64
	// AnalyticDelay is the prediction from the per-link M/M/1 priority
	// formulas (preemptive-resume), i.e. the model behind Eq. (3).
	AnalyticDelay float64
}

// SimulatePath runs per-link priority-queue simulations with the probe flow
// added to the appropriate class and sums the probe's measured delays —
// validating the additive delay model that the SLA cost function relies on.
func SimulatePath(cfg PathConfig) (*PathResult, error) {
	if len(cfg.Links) == 0 {
		return nil, fmt.Errorf("qsim: empty path")
	}
	if cfg.ProbeRate <= 0 {
		return nil, fmt.Errorf("qsim: probe rate must be positive")
	}
	res := &PathResult{PerLink: make([]float64, len(cfg.Links))}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9a77))
	for i, link := range cfg.Links {
		lamH, lamL := link.BackgroundH, link.BackgroundL
		if cfg.ProbeHigh {
			lamH += cfg.ProbeRate
		} else {
			lamL += cfg.ProbeRate
		}
		sim, err := Run(Config{
			ArrivalH:    lamH,
			ArrivalL:    lamL,
			ServiceRate: link.ServiceRate,
			Discipline:  PreemptiveResume,
			Packets:     cfg.Packets,
			Warmup:      cfg.Warmup,
			Seed:        rng.Uint64(),
		})
		if err != nil {
			return nil, fmt.Errorf("qsim: link %d: %w", i, err)
		}
		// PASTA: the probe's mean sojourn equals its class's mean sojourn.
		sojourn := sim.H.MeanSojourn
		if !cfg.ProbeHigh {
			sojourn = sim.L.MeanSojourn
		}
		res.PerLink[i] = sojourn + link.PropDelay
		res.MeanDelay += res.PerLink[i]

		thH, thL := TheoryPreemptive(lamH, lamL, link.ServiceRate)
		if cfg.ProbeHigh {
			res.AnalyticDelay += thH + link.PropDelay
		} else {
			res.AnalyticDelay += thL + link.PropDelay
		}
	}
	if math.IsNaN(res.MeanDelay) {
		return nil, fmt.Errorf("qsim: simulation produced NaN delay")
	}
	return res, nil
}
