package search

import (
	"testing"

	"dualtopo/internal/eval"
)

// TestDTRRouteWorkersBitwiseTransparent runs the same seeded DTR search
// with the parallel full-route enabled (RouteWorkers=4) and disabled, and
// requires identical trajectories: the sharded all-destinations route must
// be bitwise-equal to sequential routing, so the heuristic cannot tell the
// difference.
func TestDTRRouteWorkersBitwiseTransparent(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			p := tinyParams()
			seq, err := DTR(randomEvaluator(t, kind, 17), p)
			if err != nil {
				t.Fatal(err)
			}
			pp := p
			pp.RouteWorkers = 4
			par, err := DTR(randomEvaluator(t, kind, 17), pp)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Best != par.Best {
				t.Fatalf("best objective: sequential %+v, route-workers %+v", seq.Best, par.Best)
			}
			if seq.Evaluations != par.Evaluations {
				t.Fatalf("evaluations: sequential %d, route-workers %d", seq.Evaluations, par.Evaluations)
			}
			for i := range seq.WH {
				if seq.WH[i] != par.WH[i] || seq.WL[i] != par.WL[i] {
					t.Fatalf("weight divergence at arc %d: sequential (%d,%d), route-workers (%d,%d)",
						i, seq.WH[i], seq.WL[i], par.WH[i], par.WL[i])
				}
			}
		})
	}
}

// TestSTRRouteWorkersBitwiseTransparent is the single-topology twin, also
// covering the ε-relaxation records (fed by full evaluations).
func TestSTRRouteWorkersBitwiseTransparent(t *testing.T) {
	p := tinySTRParams()
	seq, err := STR(randomEvaluator(t, eval.LoadBased, 19), p)
	if err != nil {
		t.Fatal(err)
	}
	pp := p
	pp.RouteWorkers = 4
	par, err := STR(randomEvaluator(t, eval.LoadBased, 19), pp)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best != par.Best {
		t.Fatalf("best objective: sequential %+v, route-workers %+v", seq.Best, par.Best)
	}
	if seq.Evaluations != par.Evaluations {
		t.Fatalf("evaluations: sequential %d, route-workers %d", seq.Evaluations, par.Evaluations)
	}
	for i := range seq.W {
		if seq.W[i] != par.W[i] {
			t.Fatalf("weight divergence at arc %d: sequential %d, route-workers %d", i, seq.W[i], par.W[i])
		}
	}
	for eps, rec := range seq.Relaxed {
		pr := par.Relaxed[eps]
		if rec.Found != pr.Found || rec.PhiH != pr.PhiH || rec.PhiL != pr.PhiL {
			t.Fatalf("relaxed record ε=%g: sequential %+v, route-workers %+v", eps, rec, pr)
		}
	}
}
