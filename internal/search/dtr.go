package search

import (
	"fmt"
	"sort"
	"sync"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/resilience"
	"dualtopo/internal/spf"
)

// DTRResult is the outcome of the Algorithm 1 search.
type DTRResult struct {
	// WH and WL are the best dual-topology weight settings found.
	WH, WL spf.Weights
	// Result is the full evaluation of (WH, WL).
	Result *eval.Result
	// Best is Result's lexicographic objective.
	Best cost.Lex
	// Evaluations counts objective evaluations performed.
	Evaluations int64
	// DeltaEvals and FullEvals split Evaluations between the incremental
	// candidate paths and from-scratch evaluations.
	DeltaEvals, FullEvals int64
	// Pruned counts candidates discarded by the routing-invariance bound
	// before any evaluation (Params.Prune).
	Pruned int64
	// Robust carries the failure-aware score of (WH, WL) when the search ran
	// with Params.Robust configured; nil otherwise.
	Robust *RobustScore
}

// DTR runs Algorithm 1 from unit initial weights.
func DTR(e *eval.Evaluator, p Params) (*DTRResult, error) {
	n := e.Graph().NumEdges()
	return DTRFrom(e, spf.Uniform(n), spf.Uniform(n), p)
}

// DTRFrom runs Algorithm 1 from the given initial weight setting W0 =
// {wH0, wL0}. The inputs are not modified.
func DTRFrom(e *eval.Evaluator, wH0, wL0 spf.Weights, p Params) (*DTRResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := e.Graph()
	if err := wH0.Validate(g); err != nil {
		return nil, fmt.Errorf("search: initial WH: %w", err)
	}
	if err := wL0.Validate(g); err != nil {
		return nil, fmt.Errorf("search: initial WL: %w", err)
	}
	s, err := newDTRSearch(e, wH0, wL0, p)
	if err != nil {
		return nil, err
	}

	// Routine 1 (lines 3-12): optimize WH with WL held at its initial value.
	s.runRoutine(1, "findH", p.N, s.stepFindH, func() { s.noteHChange(s.perturb(s.wH, p.G1)) })

	// Routine 2 (lines 13-24): fix WH at the best found, optimize WL.
	s.adoptBest()
	if err := s.refreshFull(); err != nil {
		return nil, err
	}
	s.runRoutine(2, "findL", p.N, s.stepFindL, func() { s.noteLChange(s.perturb(s.wL, p.G2)) })

	// Routine 3 (lines 25-38): joint refinement around W*.
	s.adoptBest()
	if err := s.refreshFull(); err != nil {
		return nil, err
	}
	s.runRoutine(3, "refine", p.K, s.stepRefine, func() {
		s.adoptBest()
		s.noteHChange(s.perturb(s.wH, p.G3))
		s.noteLChange(s.perturb(s.wL, p.G3))
	})

	if s.err != nil {
		return nil, s.err
	}
	s.parallelRouting(true)
	best, err := e.EvaluateDTR(s.bestWH, s.bestWL)
	s.parallelRouting(false)
	if err != nil {
		return nil, err
	}
	res := &DTRResult{
		WH:          s.bestWH,
		WL:          s.bestWL,
		Result:      best,
		Best:        best.Objective(),
		Evaluations: s.evals,
		DeltaEvals:  s.deltaEvals,
		FullEvals:   s.fullEvals,
		Pruned:      s.pruned,
	}
	if s.robust() {
		if res.Robust, err = s.finalRobust(best.PhiL); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// dtrSearch carries the mutable state of one Algorithm 1 run.
type dtrSearch struct {
	e   *eval.Evaluator
	p   Params
	rng *rng
	// sampler covers ranks [1, n-m+1] per Algorithm 2.
	sampler *rankSampler

	wH, wL spf.Weights
	cur    *eval.Result
	curLex cost.Lex

	bestWH, bestWL spf.Weights
	bestLex        cost.Lex

	order []graph.EdgeID // scratch: links sorted by decreasing cost
	aSet  []graph.EdgeID // scratch: high-cost picks
	bSet  []graph.EdgeID // scratch: low-cost picks

	// candArcs[i] lists the arcs on which candidate i differs from the
	// incumbent weights — the changed set threaded into the delta paths.
	candArcs [][2]graph.EdgeID

	// hPending[wk]/lPending[wk] conservatively list the arcs on which
	// worker wk's incremental router may differ from the incumbent wH/wL:
	// the worker's last-evaluated candidate, plus every incumbent move
	// (accept, perturbation, routine transition) since. The next delta
	// evaluation passes pending ∪ candidate arcs as its changed set, then
	// resets pending to the candidate's arcs.
	hPending, lPending [][]graph.EdgeID
	mergeBuf           [][]graph.EdgeID

	pool  []*eval.Evaluator // per-worker evaluators; pool[0] == e
	evals int64
	// deltaEvals/fullEvals split evals between the incremental candidate
	// paths and from-scratch evaluations — the ratio the trajectory trace
	// reports. Both are updated only from the coordinating goroutine, so
	// they are deterministic.
	deltaEvals, fullEvals int64
	// stepCands/stepPruned/stepAccepted describe the current step for the
	// trace: how many candidates were evaluated, how many the bound pruned,
	// and whether a move was accepted.
	stepCands    int
	stepPruned   int
	stepAccepted bool
	err          error

	// Guided-generation state: the incumbent's cached arc attribution
	// (refreshed lazily on the first guided step after an incumbent move)
	// and the candidate-pipeline tallies behind DTRResult.Pruned.
	attr      eval.Attribution
	attrFresh bool
	generated int64
	pruned    int64

	// Failure-aware scoring state (see robust.go): per-worker sweep engines,
	// the filtered failure set, per-candidate penalties, and the additive
	// penalties of the incumbent and best solutions.
	sweep           []*resilience.Sweeper
	rStates         []resilience.State
	robustAdd       []float64
	curRob, bestRob float64
}

func newDTRSearch(e *eval.Evaluator, wH0, wL0 spf.Weights, p Params) (*dtrSearch, error) {
	n := e.Graph().NumEdges()
	max := n - p.Neighbors + 1
	if max < 1 {
		return nil, fmt.Errorf("search: neighborhood size m=%d exceeds %d arcs", p.Neighbors, n)
	}
	s := &dtrSearch{
		e:       e,
		p:       p,
		rng:     newRNG(p.Seed),
		sampler: newRankSampler(max, p.Tau),
		wH:      wH0.Clone(),
		wL:      wL0.Clone(),
		order:   make([]graph.EdgeID, n),
	}
	workers := p.workers()
	if workers > p.Neighbors {
		workers = p.Neighbors
	}
	e.ResetDelta() // a reused evaluator must not leak a prior run's router position
	s.pool = make([]*eval.Evaluator, workers)
	s.pool[0] = e
	if p.FullEval {
		// In full-evaluation mode candidate scoring routes the evaluator's
		// plans at candidate weights; give worker 0 a clone so s.e's plans
		// stay anchored at the incumbent (delta mode already has this: the
		// delta paths route separate incremental routers). The anchor is
		// what the routing-invariance prune and the guided attribution
		// consult, so both modes see identical trees and make identical
		// decisions — keeping delta and full trajectories bitwise-equal.
		s.pool[0] = e.Clone()
	}
	for i := 1; i < workers; i++ {
		s.pool[i] = e.Clone()
	}
	s.hPending = make([][]graph.EdgeID, workers)
	s.lPending = make([][]graph.EdgeID, workers)
	s.mergeBuf = make([][]graph.EdgeID, workers)
	if p.Robust.enabled() {
		if err := s.initRobust(wH0, wL0); err != nil {
			return nil, err
		}
	}
	if err := s.refreshFull(); err != nil {
		return nil, err
	}
	s.bestWH = s.wH.Clone()
	s.bestWL = s.wL.Clone()
	s.bestLex = s.curLex
	s.bestRob = s.curRob
	return s, nil
}

// parallelRouting toggles the parallel full-route on the primary evaluator.
// It is scoped to the search's single-threaded phases (full refreshes, the
// final evaluation): during candidate evaluation the pool's goroutines are
// the parallelism, and s.e is pool[0], so it must route sequentially there.
func (s *dtrSearch) parallelRouting(on bool) {
	if s.p.RouteWorkers != 1 {
		w := 1
		if on {
			w = s.p.RouteWorkers // 0 = block-aware auto
		}
		s.e.SetRouteWorkers(w)
	}
}

// refreshFull re-evaluates the current solution from scratch, including its
// robust penalty when failure-aware scoring is on.
func (s *dtrSearch) refreshFull() error {
	s.parallelRouting(true)
	r, err := s.e.EvaluateDTR(s.wH, s.wL)
	s.parallelRouting(false)
	if err != nil {
		return err
	}
	s.evals++
	s.fullEvals++
	searchMet.evalsFull.Inc()
	s.cur = r
	s.curLex = r.Objective()
	s.attrFresh = false
	if s.robust() {
		if s.curRob, err = s.robustTerm(0, s.wH, s.wL); err != nil {
			return err
		}
	}
	return nil
}

// runRoutine executes one of Algorithm 1's three while-loops: step is the
// per-iteration move (FindH, FindL, or both), diversify is the escape
// action taken after M iterations without improving the incumbent. Every
// iteration (and every diversification) emits one trace event.
func (s *dtrSearch) runRoutine(routine int, kind string, iterations int, step func() bool, diversify func()) {
	if s.err != nil {
		return
	}
	iters := iterCounter(kind)
	sinceImprove := 0
	for iter := 0; iter < iterations; iter++ {
		s.stepCands = 0
		s.stepPruned = 0
		s.stepAccepted = false
		improvedBest := step()
		if s.err != nil {
			return
		}
		iters.Inc()
		if s.stepAccepted {
			searchMet.accepts.Inc()
		}
		s.emit(routine, iter, kind, improvedBest)
		if improvedBest {
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if sinceImprove >= s.p.M {
			diversify()
			if err := s.refreshFull(); err != nil {
				s.err = err
				return
			}
			searchMet.perturbs.Inc()
			s.stepCands = 0
			s.stepPruned = 0
			s.stepAccepted = false
			s.emit(routine, iter, "perturb", false)
			sinceImprove = 0
		}
	}
}

// emit delivers one trace event to the OnEvent hook. Called only from the
// coordinating goroutine, after the step's state is final.
func (s *dtrSearch) emit(routine, iter int, kind string, improved bool) {
	if s.p.OnEvent == nil {
		return
	}
	s.p.OnEvent(TraceEvent{
		Routine:     routine,
		Iter:        iter,
		Kind:        kind,
		Accepted:    s.stepAccepted,
		Improved:    improved,
		Candidates:  s.stepCands,
		Pruned:      s.stepPruned,
		PhiH:        s.cur.PhiH,
		PhiL:        s.cur.PhiL,
		BestPrimary: s.bestLex.Primary,
		BestPhiL:    s.bestLex.Secondary,
		DeltaEvals:  s.deltaEvals,
		FullEvals:   s.fullEvals,
	})
}

// betterThanBest compares the incumbent against the best-known solution
// under the active objective (composite when robust scoring is on).
func (s *dtrSearch) betterThanBest() bool {
	return s.composite(s.curLex, s.curRob).Less(s.composite(s.bestLex, s.bestRob))
}

// stepFindH performs one FindH move; reports whether the incumbent improved.
func (s *dtrSearch) stepFindH() bool {
	if s.findH() {
		if s.betterThanBest() {
			s.recordBest()
			return true
		}
	}
	return false
}

// stepFindL performs one FindL move. Per Algorithm 1 routine 2, the
// incumbent is updated on any ΦL improvement (the primary cost cannot move
// while WH is fixed).
func (s *dtrSearch) stepFindL() bool {
	if s.findL() {
		if s.betterThanBest() {
			s.recordBest()
			return true
		}
	}
	return false
}

// stepRefine performs the routine-3 composite move: FindH then FindL.
func (s *dtrSearch) stepRefine() bool {
	s.findH()
	if s.err != nil {
		return false
	}
	s.findL()
	if s.err != nil {
		return false
	}
	if s.betterThanBest() {
		s.recordBest()
		return true
	}
	return false
}

func (s *dtrSearch) recordBest() {
	copy(s.bestWH, s.wH)
	copy(s.bestWL, s.wL)
	s.bestLex = s.curLex
	s.bestRob = s.curRob
}

// adoptBest moves the incumbent weights to the best-known setting, recording
// the arc diffs so worker delta routers resync lazily on their next use.
func (s *dtrSearch) adoptBest() {
	if !s.p.FullEval {
		s.noteHChange(spf.DiffArcs(s.wH, s.bestWH, nil))
		s.noteLChange(spf.DiffArcs(s.wL, s.bestWL, nil))
	}
	copy(s.wH, s.bestWH)
	copy(s.wL, s.bestWL)
}

// noteHChange records that the incumbent wH moved on the given arcs: every
// worker's H-delta router is now stale there until its next evaluation.
func (s *dtrSearch) noteHChange(arcs []graph.EdgeID) {
	if !s.p.FullEval {
		notePending(s.hPending, arcs)
	}
}

// noteLChange is noteHChange for the incumbent wL.
func (s *dtrSearch) noteLChange(arcs []graph.EdgeID) {
	if !s.p.FullEval {
		notePending(s.lPending, arcs)
	}
}

// findH runs Algorithm 2 on the high-priority weights: build the
// neighborhood from the link-cost ranking (or, on guided steps, from the
// incumbent's arc attribution), drop the provably routing-invariant
// neighbors, evaluate the rest, and move if the best improves the current
// solution. Reports whether a move was accepted.
func (s *dtrSearch) findH() bool {
	guided := s.useGuided()
	if guided {
		s.ensureAttr()
		s.sortLinksGuided(s.attr.HScore)
	} else {
		s.sortLinks(func(id graph.EdgeID) cost.Lex { return s.cur.LinkCost(id) })
	}
	cands := s.buildNeighbors(s.wH, guided)
	cands = s.pruneCandidates(cands, s.e.HPlan(), s.wH)
	if len(cands) == 0 {
		return false
	}
	s.prepRobustAdd(len(cands))
	lexes := s.evalCandidates(cands, func(worker, idx int, w spf.Weights) (cost.Lex, error) {
		var lx cost.Lex
		var err error
		if s.p.FullEval {
			lx, err = s.pool[worker].ObjectiveH(w, s.cur.LLoads)
		} else {
			lx, err = s.pool[worker].ObjectiveHDelta(w, takePending(s.hPending, s.mergeBuf, worker, s.candArcs[idx][:]), s.cur.LLoads)
		}
		if err == nil && s.robust() {
			// A candidate whose primary objective is already worse than the
			// incumbent's can never be selected (the composite only touches
			// the secondary), so its failure sweep would be pure waste.
			if lx.Primary > s.curLex.Primary {
				s.robustAdd[idx] = 0
			} else {
				s.robustAdd[idx], err = s.robustTerm(worker, w, s.wL)
			}
		}
		return lx, err
	})
	if s.err != nil {
		return false
	}
	bestIdx := -1
	bestComp := s.composite(s.curLex, s.curRob)
	for i, lx := range lexes {
		if c := s.composite(lx, s.robAdd(i)); c.Less(bestComp) {
			bestComp = c
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return false
	}
	copy(s.wH, cands[bestIdx])
	if s.robust() {
		s.curRob = s.robustAdd[bestIdx]
	}
	s.noteHChange(s.candArcs[bestIdx][:])
	s.parallelRouting(true)
	r, err := s.e.EvaluateHWithLLoads(s.wH, s.cur.LLoads)
	s.parallelRouting(false)
	if err != nil {
		s.err = err
		return false
	}
	s.evals++
	s.fullEvals++
	searchMet.evalsFull.Inc()
	s.stepAccepted = true
	if s.p.VerifyDelta && !s.p.FullEval && lexes[bestIdx] != r.Objective() {
		s.err = fmt.Errorf("search: delta/full mismatch on FindH accept: delta %+v, full %+v",
			lexes[bestIdx], r.Objective())
		return false
	}
	s.cur = r
	s.curLex = r.Objective()
	s.attrFresh = false
	return true
}

// findL is FindH's twin on the low-priority weights, sorting links by ΦL,l
// only (WL has no effect on the high-priority class).
func (s *dtrSearch) findL() bool {
	guided := s.useGuided()
	if guided {
		s.ensureAttr()
		s.sortLinksGuided(s.attr.LScore)
	} else {
		s.sortLinks(func(id graph.EdgeID) cost.Lex {
			return cost.Lex{Primary: s.cur.LinkPhiL[id]}
		})
	}
	cands := s.buildNeighbors(s.wL, guided)
	cands = s.pruneCandidates(cands, s.e.LPlan(), s.wL)
	if len(cands) == 0 {
		return false
	}
	s.prepRobustAdd(len(cands))
	phiLs := make([]float64, len(cands))
	lexes := s.evalCandidates(cands, func(worker, idx int, w spf.Weights) (cost.Lex, error) {
		var phiL float64
		var err error
		if s.p.FullEval {
			phiL, err = s.pool[worker].ObjectiveL(w, s.cur.Residual)
		} else {
			phiL, err = s.pool[worker].ObjectiveLDelta(w, takePending(s.lPending, s.mergeBuf, worker, s.candArcs[idx][:]), s.cur.Residual)
		}
		if err == nil && s.robust() {
			s.robustAdd[idx], err = s.robustTerm(worker, s.wH, w)
		}
		return cost.Lex{Primary: s.curLex.Primary, Secondary: phiL}, err
	})
	if s.err != nil {
		return false
	}
	for i, lx := range lexes {
		phiLs[i] = lx.Secondary
	}
	bestIdx := -1
	bestPhiL := s.cur.PhiL + s.curRobIfOn()
	for i, phiL := range phiLs {
		if scored := phiL + s.robAdd(i); scored < bestPhiL {
			bestPhiL = scored
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return false
	}
	copy(s.wL, cands[bestIdx])
	if s.robust() {
		s.curRob = s.robustAdd[bestIdx]
	}
	s.noteLChange(s.candArcs[bestIdx][:])
	s.parallelRouting(true)
	r, err := s.e.EvaluateLWithBase(s.wL, s.cur)
	s.parallelRouting(false)
	if err != nil {
		s.err = err
		return false
	}
	s.evals++
	s.fullEvals++
	searchMet.evalsFull.Inc()
	s.stepAccepted = true
	if s.p.VerifyDelta && !s.p.FullEval && phiLs[bestIdx] != r.PhiL {
		s.err = fmt.Errorf("search: delta/full mismatch on FindL accept: delta ΦL %v, full %v",
			phiLs[bestIdx], r.PhiL)
		return false
	}
	s.cur = r
	s.curLex = r.Objective()
	s.attrFresh = false
	return true
}

// sortLinks fills s.order with all arcs in decreasing cost order.
func (s *dtrSearch) sortLinks(linkCost func(graph.EdgeID) cost.Lex) {
	for i := range s.order {
		s.order[i] = graph.EdgeID(i)
	}
	sort.SliceStable(s.order, func(i, j int) bool {
		return linkCost(s.order[j]).Less(linkCost(s.order[i]))
	})
}

// buildNeighbors implements Algorithm 2 lines 2-5: draw k1 and k2 from the
// heavy-tail rank distribution, slice the m-link sets A (high cost, weights
// to increase) and B (low cost, weights to decrease), and pair them without
// replacement into up to m neighbor weight settings. Guided steps differ
// only in s.order (attribution-sorted instead of cost-sorted); the rank
// draws, pairing, and clamping rules are shared, so guided candidates stay
// legal Algorithm 2 moves and consume the same rng stream.
func (s *dtrSearch) buildNeighbors(w spf.Weights, guided bool) []spf.Weights {
	n := len(s.order)
	m := s.p.Neighbors
	if guided {
		searchMet.candGuided.Inc()
	}
	k1 := s.sampler.sample(s.rng.Rand)
	k2 := s.sampler.sample(s.rng.Rand)
	s.aSet = append(s.aSet[:0], s.order[k1-1:k1-1+m]...)
	s.bSet = append(s.bSet[:0], s.order[n+1-k2-m:n-k2+1]...)
	s.rng.shuffleEdges(s.aSet)
	s.rng.shuffleEdges(s.bSet)

	cands := make([]spf.Weights, 0, m)
	s.candArcs = s.candArcs[:0]
	for j := 0; j < m; j++ {
		up, down := s.aSet[j], s.bSet[j]
		if up == down {
			continue
		}
		nw, changed := neighborOf(w, up, down, s.p.Step, s.p.WMax)
		if changed {
			cands = append(cands, nw)
			s.candArcs = append(s.candArcs, [2]graph.EdgeID{up, down})
		}
	}
	s.generated += int64(len(cands))
	searchMet.candGenerated.Add(int64(len(cands)))
	return cands
}

// neighborOf clones w with w[up] increased and w[down] decreased by step,
// clamped to [1, wMax]. changed reports whether the clone differs from w.
func neighborOf(w spf.Weights, up, down graph.EdgeID, step, wMax int) (spf.Weights, bool) {
	nw := w.Clone()
	changed := false
	if v := nw[up] + step; v <= wMax {
		nw[up] = v
		changed = true
	} else if nw[up] != wMax {
		nw[up] = wMax
		changed = true
	}
	if v := nw[down] - step; v >= 1 {
		nw[down] = v
		changed = true
	} else if nw[down] != 1 {
		nw[down] = 1
		changed = true
	}
	return nw, changed
}

// evalCandidates evaluates all candidates, in parallel when the search has
// more than one worker. Each worker owns its evaluator (and that evaluator's
// incremental routers), so the delta paths parallelize without sharing.
// Results are reduced in candidate order, keeping the search deterministic
// regardless of scheduling.
func (s *dtrSearch) evalCandidates(cands []spf.Weights, fn func(worker, idx int, w spf.Weights) (cost.Lex, error)) []cost.Lex {
	lexes := make([]cost.Lex, len(cands))
	errs := make([]error, len(cands))
	workers := len(s.pool)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, w := range cands {
			lexes[i], errs[i] = fn(0, i, w)
		}
	} else {
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := wk; i < len(cands); i += workers {
					lexes[i], errs[i] = fn(wk, i, cands[i])
				}
			}(wk)
		}
		wg.Wait()
	}
	s.evals += int64(len(cands))
	s.stepCands += len(cands)
	searchMet.candEvaluated.Add(int64(len(cands)))
	if s.p.FullEval {
		s.fullEvals += int64(len(cands))
		searchMet.evalsFull.Add(int64(len(cands)))
	} else {
		s.deltaEvals += int64(len(cands))
		searchMet.evalsDelta.Add(int64(len(cands)))
	}
	for _, err := range errs {
		if err != nil {
			s.err = err
			break
		}
	}
	return lexes
}

// perturb re-randomizes a g fraction (at least one) of the weights in w,
// returning the changed arcs for the delta bookkeeping.
func (s *dtrSearch) perturb(w spf.Weights, g float64) []graph.EdgeID {
	count := int(g*float64(len(w)) + 0.5)
	if count < 1 {
		count = 1
	}
	perm := s.rng.Perm(len(w))[:count]
	arcs := make([]graph.EdgeID, 0, count)
	for _, i := range perm {
		w[i] = 1 + s.rng.IntN(s.p.WMax)
		arcs = append(arcs, graph.EdgeID(i))
	}
	return arcs
}
